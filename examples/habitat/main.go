// Habitat monitoring — the motivating deployment class the paper cites
// from Mainwaring et al. (WSNA 2002): a field of climate sensors with
// overlapping receiver coverage, mutually-unaware research groups
// consuming the same streams, a late-arriving analyst claiming buffered
// data from the Orphanage, and a derived daily-statistics stream built by
// a multi-level consumer.
//
// Run with: go run ./examples/habitat
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	garnet "github.com/garnet-middleware/garnet"
)

const (
	tempStream = garnet.StreamIndex(0)
	humStream  = garnet.StreamIndex(1)
)

func main() {
	start := time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)
	clock := garnet.NewVirtualClock(start)
	g := garnet.New(
		garnet.WithClock(clock),
		garnet.WithSecret([]byte("habitat-secret")),
		garnet.WithRadio(garnet.RadioParams{LossProb: 0.15, DelayMin: time.Millisecond, DelayMax: 8 * time.Millisecond, Seed: 7}),
	)
	defer g.Stop()

	// Nine overlapping receivers over a 600×600 m reserve: duplication is
	// deliberate (reception robustness), the filter removes it.
	bounds := garnet.RectWH(0, 0, 600, 600)
	for i, p := range garnet.GridPositions(bounds, 9) {
		g.AddReceiver(garnet.ReceiverConfig{Name: fmt.Sprintf("rx-%d", i), Position: p, Radius: 350})
	}

	// Twelve climate sensors, each with temperature and humidity streams.
	for i, p := range garnet.RandomPositions(bounds, 12, 99) {
		id := garnet.SensorID(i + 1)
		phase := float64(i)
		if _, err := g.AddSensor(garnet.SensorConfig{
			ID:       id,
			Mobility: garnet.Static{P: p},
			TxRange:  400,
			Streams: []garnet.StreamConfig{
				{
					Index: tempStream,
					Sampler: garnet.FloatSampler(func(at time.Time) float64 {
						hours := at.Sub(start).Hours()
						return 12 + 8*math.Sin(2*math.Pi*hours/12) + phase/10
					}),
					Period:  30 * time.Second,
					Enabled: true,
				},
				{
					Index: humStream,
					Sampler: garnet.FloatSampler(func(at time.Time) float64 {
						hours := at.Sub(start).Hours()
						return 70 - 15*math.Sin(2*math.Pi*(hours-8)/24) + phase/5
					}),
					Period:  time.Minute,
					Enabled: true,
				},
			},
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Research group A: alarms on temperature extremes, unaware of B.
	tokA, err := g.Register("climate-alarms", garnet.PermSubscribe)
	if err != nil {
		log.Fatal(err)
	}
	alarms := 0
	detector := garnet.NewThresholdDetector("heat-alarm", 19.0, 0.5, func(e garnet.Event) {
		alarms++
		if alarms <= 3 {
			fmt.Printf("  [alarm] sensor %d crossed %.1f°C at %s (rising=%v)\n",
				e.Stream.Sensor(), e.Value, e.At.Format("15:04"), e.Rising)
		}
	}, nil)
	if _, err := g.Subscribe(tokA, garnet.Where(func(m garnet.Message) bool {
		return m.Stream.Index() == tempStream
	}), detector); err != nil {
		log.Fatal(err)
	}

	// Research group B: builds an hourly-mean derived stream from sensor 1
	// (a multi-level consumer; 120 temperature samples per hour).
	tokB, err := g.Register("hourly-stats", garnet.PermSubscribe)
	if err != nil {
		log.Fatal(err)
	}
	hourly, err := g.NewDerivedStream(tokB, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	agg := garnet.NewWindowAggregator("hourly-mean", hourly, 120, garnet.AggregateMean)
	if _, err := g.Subscribe(tokB, garnet.Exact(garnet.MustStreamID(1, tempStream)), agg); err != nil {
		log.Fatal(err)
	}
	if _, err := g.Subscribe(tokB, garnet.Exact(hourly.Stream()), &garnet.ConsumerFunc{
		ConsumerName: "hourly-printer",
		Fn: func(d garnet.Delivery) {
			v, at, _ := garnet.DecodeReading(d.Msg.Payload)
			fmt.Printf("  [hourly] sensor 1 mean %.2f°C at %s (derived stream %v)\n",
				v, at.Format("15:04"), d.Msg.Stream)
		},
	}); err != nil {
		log.Fatal(err)
	}

	g.Start()
	fmt.Println("habitat: simulating 6 hours of a 12-sensor reserve")
	clock.Advance(6 * time.Hour)

	// A late analyst arrives: humidity streams were never subscribed, so
	// the Orphanage has been holding them.
	tokC, err := g.Register("late-analyst", garnet.PermSubscribe)
	if err != nil {
		log.Fatal(err)
	}
	orphans, err := g.Orphans(tokC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\norphanage holds %d unclaimed streams; claiming sensor 3's humidity backlog:\n", len(orphans))
	backlog, err := g.Claim(tokC, garnet.MustStreamID(3, humStream))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recovered %d buffered humidity readings; last three:\n", len(backlog))
	for _, d := range backlog[max(0, len(backlog)-3):] {
		v, at, _ := garnet.DecodeReading(d.Msg.Payload)
		fmt.Printf("    %s  %.1f%% RH\n", at.Format("15:04"), v)
	}

	st := g.Stats()
	fmt.Printf("\nsummary: %d receptions → %d unique (%.1f× duplication removed), %d alarms, orphanage evictions=%d\n",
		st.Filter.Received, st.Filter.Delivered,
		float64(st.Filter.Received)/float64(st.Filter.Delivered),
		alarms, st.Orphanage.StreamsEvicted)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Quickstart: the smallest useful Garnet deployment — one receiver, one
// thermometer sensor, one subscribed consumer — demonstrating the
// publish/subscribe data path and stream discovery.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	garnet "github.com/garnet-middleware/garnet"
)

func main() {
	// A virtual clock makes the example deterministic and instant; swap in
	// garnet.RealClock{} (the default) for wall-clock deployments.
	clock := garnet.NewVirtualClock(time.Date(2003, 5, 19, 9, 0, 0, 0, time.UTC))
	g := garnet.New(
		garnet.WithClock(clock),
		garnet.WithSecret([]byte("quickstart-secret")),
	)
	defer g.Stop()

	// Fixed network: one receiver with a 100 m reception zone.
	g.AddReceiver(garnet.ReceiverConfig{Name: "rx-0", Position: garnet.Pt(0, 0), Radius: 100})

	// Field: one static thermometer publishing a reading every second.
	if _, err := g.AddSensor(garnet.SensorConfig{
		ID:       1,
		Mobility: garnet.Static{P: garnet.Pt(30, 40)},
		TxRange:  100,
		Streams: []garnet.StreamConfig{{
			Index: 0,
			Sampler: garnet.FloatSampler(func(at time.Time) float64 {
				return 18.0 + 4.0*float64(at.Second()%10)/10.0 // a drifting temperature
			}),
			Period:  time.Second,
			Enabled: true,
		}},
	}); err != nil {
		log.Fatal(err)
	}

	// A consumer registers, discovers and subscribes.
	tok, err := g.Register("quickstart-app", garnet.PermSubscribe)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := g.Subscribe(tok, garnet.BySensor(1), &garnet.ConsumerFunc{
		ConsumerName: "printer",
		Fn: func(d garnet.Delivery) {
			v, at, ok := garnet.DecodeReading(d.Msg.Payload)
			if ok {
				fmt.Printf("  %s  stream %v seq %3d  %.1f °C (heard by %s)\n",
					at.Format("15:04:05"), d.Msg.Stream, d.Msg.Seq, v, d.Receiver)
			}
		},
	}); err != nil {
		log.Fatal(err)
	}

	g.Start()
	fmt.Println("quickstart: 10 simulated seconds of thermometer data")
	clock.Advance(10 * time.Second)

	streams, err := g.Discover(tok)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndiscovered streams:")
	for _, s := range streams {
		fmt.Printf("  %v  messages=%d subscribed=%v\n", s.Stream, s.Count, s.Subscribed)
	}
	st := g.Stats()
	fmt.Printf("\nmiddleware: %d receptions, %d delivered, %d duplicates removed\n",
		st.Filter.Received, st.Dispatch.Delivered, st.Filter.Duplicates)
}

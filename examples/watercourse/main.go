// Water-course management — the paper's own ongoing-work scenario (§6.1):
// “the ability of the super coordinator to anticipate changes to water
// bodies and preempt actuation requests is expected to be significant.”
//
// Water-level sensors line a river. A trusted flood-watch application
// walks a calm → rising → flood state machine; each state implies sensor
// sampling-rate demands. After a learning phase, the predictive Super
// Coordinator pre-arms the next state's rates before the transition, so
// when the flood phase arrives the sensors are already sampling fast —
// the example prints the in-place latency with and without prediction.
//
// Run with: go run ./examples/watercourse
package main

import (
	"fmt"
	"log"
	"time"

	garnet "github.com/garnet-middleware/garnet"
)

var states = []string{"calm", "rising", "flood"}

var stateRates = map[string]uint32{
	"calm":   100,  // one sample per 10 s
	"rising": 1000, // 1 Hz
	"flood":  4000, // 4 Hz
}

func main() {
	fmt.Println("watercourse: predictive vs reactive super coordination (§6.1)")
	reactive := run(false)
	predictive := run(true)
	fmt.Printf("\nrate-in-place latency after a state change:\n")
	fmt.Printf("  reactive coordinator:   mean %6.0f ms\n", reactive)
	fmt.Printf("  predictive coordinator: mean %6.0f ms\n", predictive)
	fmt.Printf("  prediction removed %.0f%% of the actuation latency\n",
		(1-predictive/reactive)*100)
}

// run drives the scenario and returns the mean latency (ms) from a state
// report to the river sensors actually sampling at that state's rate.
func run(predictive bool) float64 {
	start := time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)
	clock := garnet.NewVirtualClock(start)
	opts := []garnet.Option{
		garnet.WithClock(clock),
		garnet.WithSecret([]byte("watercourse")),
		// A lossy rural downlink: half the control frames are lost, the
		// actuation service retries every 2 s.
		garnet.WithRadio(garnet.RadioParams{LossProb: 0.5, DelayMin: 20 * time.Millisecond, DelayMax: 200 * time.Millisecond, Seed: 3}),
		garnet.WithActuationRetry(2*time.Second, 8),
	}
	if predictive {
		opts = append(opts, garnet.WithPredictiveCoordination(15*time.Second, 0.5))
	}
	g := garnet.New(opts...)
	defer g.Stop()

	// Five gauging stations along a 2 km reach; receivers and transmitters
	// co-sited.
	var sensors []*garnet.SensorNode
	for i := 0; i < 5; i++ {
		pos := garnet.Pt(float64(i)*500, 0)
		g.AddReceiver(garnet.ReceiverConfig{Name: fmt.Sprintf("rx-%d", i), Position: pos, Radius: 400})
		g.AddTransmitter(garnet.TransmitterConfig{Name: fmt.Sprintf("tx-%d", i), Position: pos, Range: 400})
		n, err := g.AddSensor(garnet.SensorConfig{
			ID:           garnet.SensorID(i + 1),
			Capabilities: garnet.CapReceive,
			Mobility:     garnet.Static{P: garnet.Pt(float64(i)*500+50, 10)},
			TxRange:      400,
			Streams: []garnet.StreamConfig{{
				Index:   0,
				Sampler: garnet.FloatSampler(func(time.Time) float64 { return 1.2 }), // stage height m
				Period:  10 * time.Second,
				Enabled: true,
			}},
		})
		if err != nil {
			log.Fatal(err)
		}
		sensors = append(sensors, n)
	}

	tok, err := g.Register("flood-watch", garnet.PermTrusted|garnet.PermSubscribe|garnet.PermActuate)
	if err != nil {
		log.Fatal(err)
	}
	model := make(map[string][]garnet.Demand, len(states))
	for _, s := range states {
		var demands []garnet.Demand
		for i := range sensors {
			demands = append(demands, garnet.Demand{
				Target: garnet.MustStreamID(garnet.SensorID(i+1), 0),
				Op:     garnet.OpSetRate,
				Value:  stateRates[s],
			})
		}
		model[s] = demands
	}
	if err := g.RegisterStateModel(tok, model); err != nil {
		log.Fatal(err)
	}
	g.Start()
	clock.Advance(time.Second)

	wantPeriod := func(state string) time.Duration {
		return time.Duration(float64(time.Second) * 1000.0 / float64(stateRates[state]))
	}
	inPlace := func(state string) bool {
		for _, n := range sensors {
			if p, _ := n.StreamPeriod(0); p != wantPeriod(state) {
				return false
			}
		}
		return true
	}

	const dwell = 90 * time.Second
	var latencies []time.Duration
	cycles := 6
	for c := 0; c < cycles; c++ {
		measured := c >= cycles/2 // first half is the predictor's training
		for _, state := range states {
			if err := g.ReportState(tok, state); err != nil {
				log.Fatal(err)
			}
			var waited time.Duration
			for !inPlace(state) && waited < dwell {
				clock.Advance(100 * time.Millisecond)
				waited += 100 * time.Millisecond
			}
			if measured {
				latencies = append(latencies, waited)
			}
			clock.Advance(dwell - waited)
		}
	}

	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	mean := float64(sum.Milliseconds()) / float64(len(latencies))
	mode := "reactive"
	if predictive {
		mode = "predictive"
	}
	st := g.Stats()
	fmt.Printf("  [%s] %d state entries measured, actuations acked=%d retries=%d pre-arms=%d hits=%d misses=%d\n",
		mode, len(latencies), st.Actuation.Acked, st.Actuation.Retries,
		st.Coord.PreArms, st.Coord.Hits, st.Coord.Misses)
	return mean
}

// Military reconnaissance — the paper's second §1 motivation: mobile
// sensors with encrypted payloads patrol an area; the middleware infers
// their locations purely from reception data (no GPS on the nodes), a
// scout application adds hints, and control messages are targeted at the
// sensor's expected location area instead of flooding every transmitter.
//
// Run with: go run ./examples/reconnaissance
package main

import (
	"fmt"
	"log"
	"time"

	garnet "github.com/garnet-middleware/garnet"
)

func main() {
	start := time.Date(2003, 5, 19, 2, 0, 0, 0, time.UTC)
	clock := garnet.NewVirtualClock(start)
	g := garnet.New(
		garnet.WithClock(clock),
		garnet.WithSecret([]byte("recon-secret")),
		garnet.WithRadio(garnet.RadioParams{LossProb: 0.1, DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond, Seed: 11}),
		garnet.WithTargetedReplicator(2.0),
		garnet.WithLocationPublishing(10*time.Second),
	)
	defer g.Stop()

	// A 1 km × 400 m border strip instrumented with 8 receiver/transmitter
	// posts.
	bounds := garnet.RectWH(0, 0, 1000, 400)
	for i, p := range garnet.GridPositions(bounds, 8) {
		g.AddReceiver(garnet.ReceiverConfig{Name: fmt.Sprintf("post-rx-%d", i), Position: p, Radius: 320})
		// Downlink range is deliberately tight (full coverage, small
		// overlap) so location-targeted actuation has posts to exclude.
		g.AddTransmitter(garnet.TransmitterConfig{Name: fmt.Sprintf("post-tx-%d", i), Position: p, Range: 220})
	}

	// Three patrol sensors with end-to-end encrypted seismic streams. The
	// middleware never sees plaintext.
	keys := map[garnet.SensorID][]byte{
		1: []byte("unit-1-key-16byt"),
		2: []byte("unit-2-key-16byt"),
		3: []byte("unit-3-key-16byt"),
	}
	routes := [][]garnet.Point{
		{garnet.Pt(100, 100), garnet.Pt(900, 100)},
		{garnet.Pt(100, 300), garnet.Pt(900, 300), garnet.Pt(500, 200)},
		{garnet.Pt(500, 50), garnet.Pt(500, 350)},
	}
	for id, key := range keys {
		stream := garnet.MustStreamID(id, 0)
		if _, err := g.AddSensor(garnet.SensorConfig{
			ID:           id,
			Capabilities: garnet.CapReceive,
			Mobility: &garnet.Patrol{
				Waypoints: routes[int(id)-1],
				Speed:     3, // m/s
				Epoch:     start,
			},
			TxRange: 350,
			Streams: []garnet.StreamConfig{{
				Index: 0,
				Sampler: garnet.EncryptingSampler(key, stream,
					garnet.FloatSampler(func(time.Time) float64 { return 0.02 })), // seismic background
				Period:    2 * time.Second,
				Enabled:   true,
				Encrypted: true,
			}},
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Command post: full permissions, holds the keys.
	tok, err := g.Register("command-post",
		garnet.PermSubscribe|garnet.PermActuate|garnet.PermHint|garnet.PermLocation)
	if err != nil {
		log.Fatal(err)
	}
	ks := garnet.NewKeyStore()
	for id, key := range keys {
		if err := ks.SetKey(garnet.MustStreamID(id, 0), key); err != nil {
			log.Fatal(err)
		}
	}
	var decrypted, undecryptable int
	if _, err := g.Subscribe(tok, garnet.Where(func(m garnet.Message) bool {
		return m.Flags.Has(garnet.FlagEncrypted)
	}), &garnet.ConsumerFunc{ConsumerName: "sigint", Fn: func(d garnet.Delivery) {
		if _, err := ks.OpenMessage(d.Msg); err == nil {
			decrypted++
		} else {
			undecryptable++
		}
	}}); err != nil {
		log.Fatal(err)
	}

	g.Start()
	fmt.Println("reconnaissance: 3 encrypted patrol units on a 1 km strip")
	clock.Advance(2 * time.Minute)

	// Where does the middleware believe the units are, using reception
	// inference only?
	fmt.Println("\ninferred unit positions (no GPS on the nodes):")
	for id := garnet.SensorID(1); id <= 3; id++ {
		est, err := g.Locate(tok, id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  unit %d ≈ %v ±%.0f m (confidence %.2f, %d posts, source %v)\n",
			id, est.Pos, est.Uncertainty, est.Confidence, est.Receivers, est.Source)
	}

	// A scout reports a precise sighting of unit 2; the estimate tightens.
	if err := g.Hint(tok, 2, garnet.Pt(420, 260), 0.95, time.Minute); err != nil {
		log.Fatal(err)
	}
	est, err := g.Locate(tok, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter scout hint: unit 2 ≈ %v ±%.0f m (source %v)\n", est.Pos, est.Uncertainty, est.Source)

	// Command retasks unit 2 to high-rate sampling; the replicator
	// broadcasts only from the posts covering its expected area.
	before := g.Stats().Replicator
	if _, err := g.Actuate(tok, garnet.Demand{
		Target: garnet.MustStreamID(2, 0), Op: garnet.OpSetRate, Value: 2000,
	}); err != nil {
		log.Fatal(err)
	}
	clock.Advance(10 * time.Second)
	after := g.Stats().Replicator
	fmt.Printf("\nretasking unit 2: %d of 8 posts broadcast the request (targeted=%v)\n",
		after.Broadcasts-before.Broadcasts, after.Targeted > before.Targeted)

	st := g.Stats()
	fmt.Printf("\nsummary: %d encrypted messages decrypted by key holder, %d unreadable, acks=%d\n",
		decrypted, undecryptable, st.Actuation.Acked)
}

// Package garnet is a Go implementation of Garnet, the data-stream-centric
// middleware for wireless sensor networks described in:
//
//	L. St. Ville and P. Dickman. “Garnet: A Middleware Architecture for
//	Distributing Data Streams Originating in Wireless Sensor Networks.”
//	Proc. 23rd ICDCS Workshops, pp. 235–240, Providence, RI, May 2003.
//
// Garnet treats data streams — not devices — as the primary abstraction.
// Mobile sensors transmit over an unreliable wireless medium into a fixed
// network of overlapping receivers; the middleware reconstructs streams
// (duplicate elimination), dispatches them to mutually-unaware
// publish/subscribe consumers, infers sensor locations from reception
// evidence plus application hints, and offers a return actuation path
// through which consumers manipulate sensor behaviour, mediated by a
// resource manager and anticipated by a predictive super coordinator.
//
// A minimal deployment:
//
//	g := garnet.New(garnet.WithSecret([]byte("deployment-secret")))
//	g.AddReceiver(garnet.ReceiverConfig{Position: garnet.Pt(0, 0), Radius: 100})
//	node, _ := g.AddSensor(garnet.SensorConfig{
//		ID: 1, Mobility: garnet.Static{P: garnet.Pt(10, 10)}, TxRange: 100,
//		Streams: []garnet.StreamConfig{{
//			Index:   0,
//			Sampler: garnet.FloatSampler(readThermometer),
//			Period:  time.Second, Enabled: true,
//		}},
//	})
//	tok, _ := g.Register("my-app", garnet.PermSubscribe)
//	g.Subscribe(tok, garnet.BySensor(node.ID()), myConsumer)
//	g.Start()
//	defer g.Stop()
//
// Every privileged operation takes the bearer token issued by Register and
// is checked against the consumer's permissions, including the protected
// location streams (PermLocation) and trusted state reporting to the super
// coordinator (PermTrusted).
package garnet

import (
	"fmt"
	"time"

	"github.com/garnet-middleware/garnet/internal/actuation"
	"github.com/garnet-middleware/garnet/internal/consumer"
	"github.com/garnet-middleware/garnet/internal/coordinator"
	"github.com/garnet-middleware/garnet/internal/core"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/registry"
	"github.com/garnet-middleware/garnet/internal/resource"
	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/store/archive"
	"github.com/garnet-middleware/garnet/internal/transmit"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Option configures a Deployment.
type Option func(*core.Config)

// WithClock runs the deployment on the given clock (a VirtualClock makes
// whole deployments deterministic and replayable).
func WithClock(c Clock) Option {
	return func(cfg *core.Config) { cfg.Clock = c }
}

// WithSecret sets the registry signing secret. Required.
func WithSecret(secret []byte) Option {
	return func(cfg *core.Config) { cfg.Secret = secret }
}

// WithRadio configures the simulated wireless medium's impairments.
func WithRadio(p RadioParams) Option {
	return func(cfg *core.Config) { cfg.Radio = p }
}

// WithFieldGrid sets the cell edge length (metres) of the medium's
// spatial index, which makes a broadcast cost proportional to the
// listeners it actually reaches rather than everything attached. The
// default (0) sizes cells from the first listener's reception radius on
// each band; dense deployments mixing very different zone radii should
// set this near the dominant radius (see README, "Field density & grid
// tuning"). Compose with WithRadio by applying WithFieldGrid second, or
// set RadioParams.GridCell directly.
func WithFieldGrid(cellSize float64) Option {
	return func(cfg *core.Config) { cfg.Radio.GridCell = cellSize }
}

// WithPolicy selects the Resource Manager's conflict-mediation policy.
func WithPolicy(p Policy) Option {
	return func(cfg *core.Config) { cfg.Policy = p }
}

// WithAsyncDispatch switches consumer delivery to per-consumer bounded
// queues drained by worker goroutines (for real-time deployments where
// consumers may be slow).
func WithAsyncDispatch(queueCapacity int) Option {
	return func(cfg *core.Config) {
		cfg.Dispatch.Mode = dispatch.ModeAsync
		cfg.Dispatch.QueueCapacity = queueCapacity
	}
}

// WithDispatchShards partitions the Dispatching Service's subscription
// table into n shards so publishes on streams of different sensors never
// contend on one lock (n <= 0 selects the default; 1 restores the single
// shared table).
func WithDispatchShards(n int) Option {
	return func(cfg *core.Config) { cfg.Dispatch.Shards = n }
}

// WithBatchSize caps how many queued deliveries an asynchronous consumer
// drainer coalesces per wakeup. Consumers implementing BatchConsumer
// receive the whole batch in one ConsumeBatch call; others see the batch
// replayed through Consume in order (k <= 0 selects the default; 1
// restores delivery-at-a-time draining). Only meaningful together with
// WithAsyncDispatch.
func WithBatchSize(k int) Option {
	return func(cfg *core.Config) { cfg.Dispatch.BatchSize = k }
}

// WithIngestBatch collects up to n receptions into a bounded flush
// buffer on the receive path and drives the batched pipeline — shard
// locks taken once per batch in the filter, store and dispatcher, and
// multi-slot ring claims on async consumer queues — instead of paying
// every per-message fixed cost. The buffer flushes when full and at
// every timestamp boundary, so virtual-clock determinism and delivery
// ordering are untouched; per-message filter/retention/overflow
// decisions are identical to the unbatched path. n <= 1 (the default)
// keeps today's per-message path bit-for-bit. Larger batches raise
// throughput at the cost of up to n-1 receptions of added latency
// before a flush under a real clock; see README "Batched ingest
// tuning".
func WithIngestBatch(n int) Option {
	return func(cfg *core.Config) { cfg.IngestBatch = n }
}

// WithFilterShards partitions the Filtering Service's per-stream
// duplicate/reorder state into n shards so receptions on streams of
// different sensors never contend on one ingest lock (n <= 0 selects the
// default; 1 restores the single shared table). Pair with
// WithDispatchShards: the two services shard on the same key, so a stream
// takes at most one ingest lock and one dispatch lock end to end.
func WithFilterShards(n int) Option {
	return func(cfg *core.Config) { cfg.Filter.Shards = n }
}

// WithReorderWindow holds deliveries up to d and releases them in sequence
// order (bounded-latency ordering on top of duplicate elimination).
func WithReorderWindow(d time.Duration) Option {
	return func(cfg *core.Config) { cfg.Filter.ReorderWindow = d }
}

// WithStoreRetention bounds the Stream Store's per-stream retained
// history: at most maxMessages deliveries (<= 0 keeps the default, 256),
// at most maxBytes of payload (<= 0 unbounded) and nothing older than
// maxAge (<= 0 unbounded). Every accepted delivery tees into the store
// before dispatch, so these bounds are the memory-vs-catch-up trade-off
// for Replay, SubscribeWithReplay and the Orphanage backlog (see README,
// "Retention & replay tuning"). maxMessages is raised to at least the
// Orphanage's per-stream capacity so orphan claims always find their
// full backlog.
func WithStoreRetention(maxMessages int, maxBytes int64, maxAge time.Duration) Option {
	return func(cfg *core.Config) {
		cfg.Store.MaxMessages = maxMessages
		cfg.Store.MaxBytes = maxBytes
		cfg.Store.MaxAge = maxAge
	}
}

// WithStoreShards partitions the Stream Store's per-stream retention
// state into n shards keyed by the sensor component of the StreamID —
// the same Fibonacci partition the filter, dispatcher and control plane
// use, so a stream's whole path shards on one key (n <= 0 selects the
// default; 1 restores a single shared table).
func WithStoreShards(n int) Option {
	return func(cfg *core.Config) { cfg.Store.Shards = n }
}

// WithStoreCompression enables the Stream Store's cold compressed tier:
// deliveries pushed out of the hot ring by the WithStoreRetention bounds
// are sealed into immutable compressed blocks instead of being dropped,
// and Replay, SubscribeWithReplay, Range and the Orphanage backlog read
// them back transparently. codec selects the block codec — "auto" picks
// per block ("gorilla" for fixed 64-bit numeric series, "rle" for
// repetitive payloads, "lz" for general bytes, "raw" to store
// uncompressed); naming one pins it. coldBudget bounds the compressed
// bytes kept per stream (<= 0 keeps the default, 64 KiB); the oldest
// blocks are dropped past it and the newest always survives. New panics
// on an unknown codec name, like a malformed retention bound would — a
// typo here must not silently turn history off. See README, "Retention &
// replay tuning".
func WithStoreCompression(codec string, coldBudget int64) Option {
	return func(cfg *core.Config) {
		cfg.Store.Codec = codec
		cfg.Store.ColdBudget = coldBudget
	}
}

// ArchiveBackend is the durable block store the Stream Store's archive
// tier spills to; see the archive package for the contract. Use
// NewFSArchive for the filesystem reference implementation or
// NewMemArchive for a volatile one.
type ArchiveBackend = archive.Backend

// NewFSArchive opens (or creates) a filesystem archive backend rooted at
// dir: per-shard append-only segment files carrying the store's
// compressed block wire format, indexed by a CRC-framed manifest that
// recovery replays to the last complete record — a torn tail truncates,
// it never corrupts. The same directory re-opened by a restarted
// deployment serves the history archived before the crash.
func NewFSArchive(dir string) (ArchiveBackend, error) {
	return archive.OpenFS(dir)
}

// NewMemArchive returns an in-memory archive backend: the full Backend
// contract with no durability, for tests and experiments. Sharing one
// across two deployments stands in for a restart.
func NewMemArchive() ArchiveBackend {
	return archive.NewMem()
}

// WithArchive attaches a durable archive tier to the Stream Store: cold
// compressed blocks that the WithStoreCompression budget would discard
// are spilled to the backend by an async per-shard archiver instead, and
// Range, Replay, SubscribeWithReplay and the window queries stitch
// archive → cold → hot → live transparently. Implies
// WithStoreCompression("auto", default budget) when no codec was chosen —
// the archive files sealed blocks, so sealing must be on. On
// construction the store recovers the backend's manifest and serves
// archived history for streams it has never seen live. See README,
// "Archive tier".
func WithArchive(b ArchiveBackend) Option {
	return func(cfg *core.Config) {
		cfg.Store.Archive = b
	}
}

// WithArchiveRetention bounds the archive tier per stream: blocks whose
// newest entry is older than maxAge relative to the newest archived
// entry, or beyond maxBytes of encoded bytes, are deleted oldest-first
// at spill commit (Stats.EvictedArchive). Zero disables a bound; the
// newest archived block always survives.
func WithArchiveRetention(maxAge time.Duration, maxBytes int64) Option {
	return func(cfg *core.Config) {
		cfg.Store.ArchiveMaxAge = maxAge
		cfg.Store.ArchiveMaxBytes = maxBytes
	}
}

// WithArchiveSync makes archive spills synchronous: the sealing append
// blocks until the backend write completes instead of handing the block
// to the per-shard archiver goroutine. Deterministic (single-threaded
// tests, virtual clocks) at the cost of backend latency on the append
// path.
func WithArchiveSync() Option {
	return func(cfg *core.Config) {
		cfg.Store.ArchiveSync = true
	}
}

// WithActuationRetry tunes the Actuation Service's retry loop. It
// composes with WithControlShards and WithActuationCoalescing in any
// order.
func WithActuationRetry(interval time.Duration, maxAttempts int) Option {
	return func(cfg *core.Config) {
		cfg.Actuation.RetryInterval = interval
		cfg.Actuation.MaxAttempts = maxAttempts
	}
}

// WithControlShards partitions the return actuation path's control-plane
// state — the Resource Manager's demand ledger and the Actuation
// Service's outstanding table (whose 16-bit update-id space is carved
// into per-shard sub-spaces) — into n shards keyed by the target sensor,
// so a demand takes at most one shard-local lock per layer end to end
// and demands against different sensors never contend (n <= 0 selects
// the default; 1 restores the historical single-lock control plane; the
// actuation layer rounds n up to a power of two). Pair with
// WithFilterShards/WithDispatchShards: all four services partition on
// the same sensor key.
func WithControlShards(n int) Option {
	return func(cfg *core.Config) {
		cfg.Resource.Shards = n
		cfg.Actuation.Shards = n
	}
}

// WithActuationCoalescing absorbs bursts of stream-update requests
// against the same sensor setting: within the window only the latest
// request is transmitted (earlier ones complete with
// OutcomeSuperseded), so a storm of conflicting demand flips costs one
// trailing actuation instead of a retry storm. Pings never coalesce.
func WithActuationCoalescing(window time.Duration) Option {
	return func(cfg *core.Config) { cfg.Actuation.CoalesceWindow = window }
}

// WithLocationPublishing publishes location estimates as data streams on
// the reserved index at the given period.
func WithLocationPublishing(period time.Duration) Option {
	return func(cfg *core.Config) { cfg.LocationPublishPeriod = period }
}

// WithPredictiveCoordination turns on the Super Coordinator's predictive
// policy: the demands of a consumer's anticipated next state are pre-armed
// `horizon` before the expected transition, once predictions reach
// minConfidence.
func WithPredictiveCoordination(horizon time.Duration, minConfidence float64) Option {
	return func(cfg *core.Config) {
		cfg.Coordinator = coordinator.Options{
			Mode:          coordinator.ModePredictive,
			Horizon:       horizon,
			MinConfidence: minConfidence,
		}
	}
}

// WithCensusPolicy lets the Super Coordinator switch the Resource
// Manager's mediation policy based on the global consumer-state census —
// §4.2: “the Super Coordinator may invoke policy changes in the strategy
// used by the Resource Manager.” selector is called after every state
// report; returning 0 keeps the current policy.
func WithCensusPolicy(selector func(census map[string]int) Policy) Option {
	return func(cfg *core.Config) { cfg.Coordinator.PolicySelector = selector }
}

// WithFloodingReplicator disables location-targeted actuation: every
// control message is broadcast by every transmitter (the location-neutral
// baseline).
func WithFloodingReplicator() Option {
	return func(cfg *core.Config) { cfg.Replicator.Targeted = false }
}

// WithTargetedReplicator enables location-targeted actuation with the
// given uncertainty margin (the default behaviour; margin 0 keeps the
// default 1.5).
func WithTargetedReplicator(margin float64) Option {
	return func(cfg *core.Config) {
		cfg.Replicator.Targeted = true
		cfg.Replicator.Margin = margin
	}
}

// Deployment is a running Garnet middleware instance together with its
// (simulated) sensor field. Create one with New, populate it with
// receivers, transmitters and sensors, then Start it.
type Deployment struct {
	core *core.Deployment
}

// New assembles a Deployment. A secret must be provided via WithSecret.
func New(opts ...Option) *Deployment {
	var cfg core.Config
	cfg.Replicator.Targeted = true // location-targeted actuation by default
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Deployment{core: core.New(cfg)}
}

// Start brings the deployment up. Idempotent.
func (g *Deployment) Start() { g.core.Start() }

// Stop shuts the deployment down, draining queues. Idempotent.
func (g *Deployment) Stop() { g.core.Stop() }

// Clock returns the deployment clock.
func (g *Deployment) Clock() Clock { return g.core.Clock() }

// AddReceiver places a receiver (operator-level; no token required).
func (g *Deployment) AddReceiver(cfg ReceiverConfig) { g.core.AddReceiver(cfg) }

// AddTransmitter places a transmitter.
func (g *Deployment) AddTransmitter(cfg TransmitterConfig) { g.core.AddTransmitter(cfg) }

// AddSensor adds a sensor node to the simulated field.
func (g *Deployment) AddSensor(cfg SensorConfig) (*SensorNode, error) {
	return g.core.AddSensor(cfg)
}

// SetConstraints codifies a sensor's operating limits (see
// ParseConstraints for the textual form).
func (g *Deployment) SetConstraints(id SensorID, c Constraints) {
	g.core.ResourceManager().SetConstraints(id, c)
}

// SetDefaultConstraints applies limits to all sensors without specific
// constraints.
func (g *Deployment) SetDefaultConstraints(c Constraints) {
	g.core.ResourceManager().SetDefaultConstraints(c)
}

// Register creates a consumer identity with the given permissions and
// returns its bearer token.
func (g *Deployment) Register(name string, perms Permission) (Token, error) {
	return g.core.Registry().Register(name, perms)
}

// Revoke invalidates a consumer's tokens.
func (g *Deployment) Revoke(name string) bool { return g.core.Registry().Revoke(name) }

// Subscribe attaches consumer c to the streams matching pattern. It
// requires PermSubscribe; patterns that can select the protected location
// streams additionally require PermLocation — broad (All/Where) patterns
// from consumers without it are transparently narrowed to exclude
// location streams.
func (g *Deployment) Subscribe(tok Token, pattern Pattern, c Consumer) (SubscriptionID, error) {
	id, err := g.core.Registry().Require(tok, registry.PermSubscribe)
	if err != nil {
		return 0, err
	}
	hasLoc := id.Permissions.Has(registry.PermLocation)
	switch pattern.Kind {
	case dispatch.KindExact:
		if pattern.Stream.Index() == wire.LocationStreamIndex && !hasLoc {
			return 0, fmt.Errorf("%w: %q lacks location", registry.ErrPermission, id.Name)
		}
	case dispatch.KindSensor:
		if !hasLoc {
			// Narrow to the sensor's ordinary streams.
			sensorID := pattern.Sensor
			pattern = dispatch.Where(func(m wire.Message) bool {
				return m.Stream.Sensor() == sensorID && m.Stream.Index() != wire.LocationStreamIndex
			})
		}
	case dispatch.KindAll:
		if !hasLoc {
			pattern = dispatch.Where(func(m wire.Message) bool {
				return m.Stream.Index() != wire.LocationStreamIndex
			})
		}
	case dispatch.KindWhere:
		if !hasLoc {
			inner := pattern.Where
			pattern = dispatch.Where(func(m wire.Message) bool {
				return m.Stream.Index() != wire.LocationStreamIndex && inner(m)
			})
		}
	}
	return g.core.Dispatcher().Subscribe(c, pattern)
}

// Unsubscribe removes a subscription.
func (g *Deployment) Unsubscribe(id SubscriptionID) bool {
	return g.core.Dispatcher().Unsubscribe(id)
}

// Discover lists the streams the middleware has seen (PermSubscribe).
func (g *Deployment) Discover(tok Token) ([]StreamInfo, error) {
	if _, err := g.core.Registry().Require(tok, registry.PermSubscribe); err != nil {
		return nil, err
	}
	return g.core.Dispatcher().Discover(), nil
}

// Orphans lists the unclaimed streams held by the Orphanage
// (PermSubscribe).
func (g *Deployment) Orphans(tok Token) ([]OrphanInfo, error) {
	if _, err := g.core.Registry().Require(tok, registry.PermSubscribe); err != nil {
		return nil, err
	}
	return g.core.Orphanage().Streams(), nil
}

// Claim atomically hands over the Orphanage backlog of an unclaimed
// stream to a late subscriber (PermSubscribe).
func (g *Deployment) Claim(tok Token, stream StreamID) ([]Delivery, error) {
	if _, err := g.core.Registry().Require(tok, registry.PermSubscribe); err != nil {
		return nil, err
	}
	backlog, _ := g.core.Orphanage().Claim(stream)
	return backlog, nil
}

// requireStream checks PermSubscribe plus, for the protected location
// stream, PermLocation.
func (g *Deployment) requireStream(tok Token, stream StreamID) error {
	if _, err := g.core.Registry().Require(tok, registry.PermSubscribe); err != nil {
		return err
	}
	if stream.Index() == wire.LocationStreamIndex {
		if _, err := g.core.Registry().Require(tok, registry.PermLocation); err != nil {
			return err
		}
	}
	return nil
}

// SubscribeWithReplay subscribes c to a single stream and replays the
// Stream Store's retained history from store sequence fromSeq onwards
// (oldest first, fromSeq 0 meaning everything retained) before live
// delivery begins. Catch-up is routed through the consumer's dispatch
// port — live deliveries that race the subscription queue up behind the
// replayed history and duplicates are screened out by store sequence —
// so replayed and live messages can never invert or repeat, even under
// an asynchronous dispatcher. It returns the subscription id and how
// many messages were replayed.
func (g *Deployment) SubscribeWithReplay(tok Token, stream StreamID, fromSeq uint64, c Consumer) (SubscriptionID, int, error) {
	if err := g.requireStream(tok, stream); err != nil {
		return 0, 0, err
	}
	return g.core.SubscribeWithReplay(c, stream, fromSeq)
}

// SubscribeWithBacklog subscribes c to a single stream and, when the
// Orphanage holds a backlog for it, replays the buffered messages into c
// (oldest first) before live delivery begins — the complete late-subscriber
// handover in one call. It returns the subscription id and how many
// backlog messages were replayed.
//
// It is a thin wrapper over SubscribeWithReplay: claiming the orphan
// backlog is a store-cursor hand-off and the replay flows through the
// consumer's dispatch port, so — unlike the historical implementation —
// backlog and live delivery cannot interleave out of order under an
// asynchronous dispatcher.
func (g *Deployment) SubscribeWithBacklog(tok Token, stream StreamID, c Consumer) (SubscriptionID, int, error) {
	if err := g.requireStream(tok, stream); err != nil {
		return 0, 0, err
	}
	// Peek first, claim only after the subscription succeeded: a failed
	// subscribe (nil consumer, stopped dispatcher) must not destroy the
	// orphan backlog.
	from, _, _, held := g.core.Orphanage().PeekCursor(stream)
	if !held {
		// No orphan backlog: replay nothing, but still subscribe through
		// the catch-up gate so nothing slips between the two.
		last, _ := g.core.Store().LastSeq(stream)
		from = last + 1
	}
	id, n, err := g.core.SubscribeWithReplay(c, stream, from)
	if err == nil && held {
		g.core.Orphanage().ClaimCursor(stream)
	}
	return id, n, err
}

// Replay returns copies of the Stream Store's retained deliveries for
// stream with store sequences in [fromSeq, toSeq], oldest first
// (PermSubscribe; the location stream additionally needs PermLocation).
// Store sequences are the 64-bit extended addresses stamped on
// Delivery.StoreSeq — fromSeq 0 and toSeq ^uint64(0) select everything
// retained.
func (g *Deployment) Replay(tok Token, stream StreamID, fromSeq, toSeq uint64) ([]Delivery, error) {
	if err := g.requireStream(tok, stream); err != nil {
		return nil, err
	}
	return g.core.Store().Range(stream, fromSeq, toSeq), nil
}

// LatestValue returns the newest retained delivery of a stream — the
// last-value cache a dashboard primes from (PermSubscribe; the location
// stream additionally needs PermLocation). ok is false when nothing is
// retained.
func (g *Deployment) LatestValue(tok Token, stream StreamID) (Delivery, bool, error) {
	if err := g.requireStream(tok, stream); err != nil {
		return Delivery{}, false, err
	}
	d, ok := g.core.Store().Latest(stream)
	return d, ok, nil
}

// Actuate submits a stream-setting demand through admission control
// (PermActuate) and, when the effective sensor configuration changes,
// issues the stream-update request down the actuation path. The demand's
// Consumer field is overwritten with the token's identity.
func (g *Deployment) Actuate(tok Token, d Demand) (Decision, error) {
	id, err := g.core.Registry().Require(tok, registry.PermActuate)
	if err != nil {
		return Decision{}, err
	}
	d.Consumer = id.Name
	return g.core.SubmitDemand(d)
}

// WithdrawDemand removes the caller's standing demand on (target, class),
// actuating any relaxation (PermActuate).
func (g *Deployment) WithdrawDemand(tok Token, target StreamID, class DemandClass) (Decision, bool, error) {
	id, err := g.core.Registry().Require(tok, registry.PermActuate)
	if err != nil {
		return Decision{}, false, err
	}
	dec, ok := g.core.WithdrawDemand(id.Name, target, class)
	return dec, ok, nil
}

// Ping probes a sensor's reachability (PermActuate): it bypasses demand
// mediation (a ping changes nothing) and reports asynchronously whether
// the sensor acknowledged.
func (g *Deployment) Ping(tok Token, target StreamID, done func(acked bool)) error {
	id, err := g.core.Registry().Require(tok, registry.PermActuate)
	if err != nil {
		return err
	}
	var cb func(actuation.Result)
	if done != nil {
		cb = func(r actuation.Result) { done(r.Outcome == actuation.OutcomeAcked) }
	}
	_, err = g.core.ActuationService().Issue(actuation.Request{
		Target: target, Op: wire.OpPing, Consumer: id.Name,
	}, cb)
	return err
}

// Hint supplies a consumer-derived location hint (PermHint).
func (g *Deployment) Hint(tok Token, sensorID SensorID, pos Point, confidence float64, ttl time.Duration) error {
	id, err := g.core.Registry().Require(tok, registry.PermHint)
	if err != nil {
		return err
	}
	return g.core.Location().AddHint(sensorID, pos, confidence, ttl, id.Name)
}

// Locate returns the Location Service's estimate for a sensor
// (PermLocation).
func (g *Deployment) Locate(tok Token, sensorID SensorID) (Estimate, error) {
	if _, err := g.core.Registry().Require(tok, registry.PermLocation); err != nil {
		return Estimate{}, err
	}
	return g.core.Location().Locate(sensorID)
}

// RegisterStateModel teaches the Super Coordinator the caller's state
// machine and the demands each state implies (PermTrusted).
func (g *Deployment) RegisterStateModel(tok Token, demandsByState map[string][]Demand) error {
	id, err := g.core.Registry().Require(tok, registry.PermTrusted)
	if err != nil {
		return err
	}
	return g.core.Coordinator().Register(id.Name, demandsByState)
}

// ReportState forwards a trusted consumer's state change to the Super
// Coordinator (PermTrusted), which applies (or has pre-armed) the state's
// demands.
func (g *Deployment) ReportState(tok Token, state string) error {
	id, err := g.core.Registry().Require(tok, registry.PermTrusted)
	if err != nil {
		return err
	}
	return g.core.Coordinator().ReportState(id.Name, state)
}

// PredictNext exposes the Super Coordinator's prediction for the caller's
// next state change (PermTrusted).
func (g *Deployment) PredictNext(tok Token) (Prediction, bool, error) {
	id, err := g.core.Registry().Require(tok, registry.PermTrusted)
	if err != nil {
		return Prediction{}, false, err
	}
	p, ok := g.core.Coordinator().PredictNext(id.Name)
	return p, ok, nil
}

// NewDerivedStream allocates a virtual sensor id and returns a publisher
// for a derived stream on it (PermSubscribe — every consumer may derive).
// The derived stream flows through the same dispatching, discovery and
// orphanage machinery as physical streams.
func (g *Deployment) NewDerivedStream(tok Token, index StreamIndex, flags Flags) (*DerivedStream, error) {
	if _, err := g.core.Registry().Require(tok, registry.PermSubscribe); err != nil {
		return nil, err
	}
	vid := g.core.AllocateVirtualSensor()
	return consumer.NewDerivedStream(g.core, wire.MustStreamID(vid, index), flags), nil
}

// Stats aggregates every service's statistics.
func (g *Deployment) Stats() Snapshot { return g.core.Stats() }

// Core exposes the underlying assembly for advanced integrations and the
// experiment harness.
func (g *Deployment) Core() *core.Deployment { return g.core }

// Ensure interface satisfaction where the facade promises it.
var (
	_ consumer.Publisher = (*core.Deployment)(nil)
	_ dispatch.Consumer  = (*consumer.Recorder)(nil)
	_ sensor.Sampler     = Sampler(nil)
	_                    = filtering.DefaultWindowSize
	_                    = receiver.Config{}
	_                    = transmit.Config{}
	_                    = resource.Demand{}
)

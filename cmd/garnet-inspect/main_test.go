package main

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/store/archive"
	"github.com/garnet-middleware/garnet/internal/store/codec"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// encode helpers: golden tests round-trip frames built with the real
// codec, so the output pins both the decoder and the renderer.

func dataFrame(t *testing.T, m wire.Message) string {
	t.Helper()
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(b)
}

func controlFrame(t *testing.T, c wire.ControlMessage) string {
	t.Helper()
	b, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(b)
}

func runInspect(t *testing.T, args []string, stdin string) string {
	t.Helper()
	var out strings.Builder
	if err := run(args, strings.NewReader(stdin), &out, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestInspectDataGolden(t *testing.T) {
	frame := dataFrame(t, wire.Message{
		Stream:   wire.MustStreamID(1042, 3),
		Seq:      7,
		Flags:    wire.FlagUpdateAck | wire.FlagRelayed,
		AckID:    99,
		HopCount: 2,
		Payload:  []byte{0xde, 0xad, 0xbe, 0xef},
	})
	got := runInspect(t, []string{frame}, "")
	want := strings.Join([]string{
		"data message (18 bytes)",
		"  stream   1042/3 (sensor 1042, internal stream 3)",
		"  seq      7",
		"  flags    ack|relayed",
		"  ack-id   99",
		"  hops     2",
		"  payload  4 bytes: de ad be ef",
		"",
	}, "\n")
	if got != want {
		t.Errorf("data golden mismatch:\n got: %q\nwant: %q", got, want)
	}
	// Frames on stdin decode identically.
	if fromStdin := runInspect(t, nil, frame+"\n"); fromStdin != want {
		t.Errorf("stdin output differs from arg output:\n%q\n%q", fromStdin, want)
	}
}

func TestInspectControlGolden(t *testing.T) {
	issued := time.UnixMicro(1053302400000000) // 2003-05-19 00:00:00 UTC, µs precision
	frame := controlFrame(t, wire.ControlMessage{
		UpdateID: 5,
		Target:   wire.MustStreamID(7, 1),
		Op:       wire.OpSetParam,
		Param:    2,
		Value:    1500,
		Issued:   issued,
	})
	got := runInspect(t, []string{"-control", frame}, "")
	want := strings.Join([]string{
		"control message (23 bytes)",
		"  update-id 5",
		"  target    7/1 (sensor 7, internal stream 1)",
		"  op        set-param",
		"  param     2",
		"  value     1500",
		fmt.Sprintf("  issued    %v", time.UnixMicro(issued.UnixMicro())),
		"",
	}, "\n")
	if got != want {
		t.Errorf("control golden mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestInspectStoreDumpGolden(t *testing.T) {
	frames := []string{
		dataFrame(t, wire.Message{Stream: wire.MustStreamID(1, 0), Seq: 0, Payload: []byte{0xaa, 0xbb}}),
		dataFrame(t, wire.Message{Stream: wire.MustStreamID(1, 0), Seq: 1, Payload: []byte{0xcc}}),
		dataFrame(t, wire.Message{Stream: wire.MustStreamID(1, 0), Seq: 1, Payload: []byte{0xcc}}), // duplicate address collapses
		dataFrame(t, wire.Message{Stream: wire.MustStreamID(2, 5), Seq: 9, Payload: nil}),
	}
	got := runInspect(t, append([]string{"-store"}, frames...), "")
	want := strings.Join([]string{
		"stream store dump: 4 frames in, 2 streams, 3 retained messages, 3 payload bytes",
		"stream 1/0: 2 retained, store seq 65536..65537, next wire seq 2, 3 B, ~339 B resident",
		"  seq 65536    wire 0     flags none       2 B: aa bb",
		"  seq 65537    wire 1     flags none       1 B: cc",
		"stream 2/5: 1 retained, store seq 65545..65545, next wire seq 10, 0 B, ~240 B resident",
		"  seq 65545    wire 9     flags none       0 B",
		"",
	}, "\n")
	if got != want {
		t.Errorf("store dump golden mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestInspectStoreRetainBound(t *testing.T) {
	var frames []string
	for seq := 0; seq < 10; seq++ {
		frames = append(frames, dataFrame(t, wire.Message{
			Stream: wire.MustStreamID(3, 0), Seq: wire.Seq(seq), Payload: []byte{byte(seq)},
		}))
	}
	got := runInspect(t, append([]string{"-store", "-retain", "4"}, frames...), "")
	if !strings.Contains(got, "stream 3/0: 4 retained, store seq 65542..65545") {
		t.Errorf("retain bound not applied:\n%s", got)
	}
	if !strings.Contains(got, "evicted 6, dropped-behind 0") {
		t.Errorf("eviction accounting missing:\n%s", got)
	}
}

func TestInspectRejectsConflictingModes(t *testing.T) {
	if err := run([]string{"-control", "-store", "00"}, strings.NewReader(""), &strings.Builder{}, &strings.Builder{}); err == nil {
		t.Fatal("conflicting -control and -store accepted")
	}
	if err := run(nil, strings.NewReader(""), &strings.Builder{}, &strings.Builder{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestInspectHelpIsNotAnError(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-h"}, strings.NewReader(""), &out, &errOut); err != nil {
		t.Fatalf("-h returned error: %v", err)
	}
	if !strings.Contains(errOut.String(), "-store") {
		t.Errorf("usage not printed to stderr: %q", errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("usage leaked to stdout: %q", out.String())
	}
}

func TestInspectStoreCodecColumns(t *testing.T) {
	var frames []string
	payload := []byte{0x40, 0x35, 0x80, 0, 0, 0, 0, 0} // constant f64 21.5
	for seq := 0; seq < 20; seq++ {
		frames = append(frames, dataFrame(t, wire.Message{
			Stream: wire.MustStreamID(3, 0), Seq: wire.Seq(seq), Payload: payload,
		}))
	}
	got := runInspect(t, append([]string{"-store", "-retain", "4", "-codec", "auto"}, frames...), "")
	// Evictions seal instead of dropping: everything stays replayable.
	if !strings.Contains(got, "20 retained messages") {
		t.Errorf("sealed entries dropped from the dump:\n%s", got)
	}
	if !strings.Contains(got, "codec auto: 2 blocks sealed, 16 messages") {
		t.Errorf("cold-tier summary missing:\n%s", got)
	}
	if !strings.Contains(got, ", codec ") || !strings.Contains(got, "16 cold in ") {
		t.Errorf("per-stream codec/ratio column missing:\n%s", got)
	}
	if strings.Contains(got, "evicted ") {
		t.Errorf("compressed dump reports evictions:\n%s", got)
	}
}

// TestInspectArchiveGolden round-trips a real on-disk archive through
// the scanner: two committed blocks produce an exact report, and a
// truncated segment afterwards is flagged as torn.
func TestInspectArchiveGolden(t *testing.T) {
	dir := t.TempDir()
	b, err := archive.OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := wire.MustStreamID(7, 1)
	ref := func(first, last uint64, n int32, data []byte) archive.Ref {
		return archive.Ref{
			Codec: codec.IDRaw, FirstSeq: first, LastSeq: last,
			Count: n, RawBytes: 3 * int64(n), Bytes: int64(len(data)), LastUnix: 1e9,
		}
	}
	if err := b.Append(id, ref(65536, 65585, 50, bytes.Repeat([]byte{0xab}, 75)), bytes.Repeat([]byte{0xab}, 75)); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(id, ref(65586, 65635, 50, bytes.Repeat([]byte{0xcd}, 75)), bytes.Repeat([]byte{0xcd}, 75)); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	got := runInspect(t, []string{"-archive", dir}, "")
	if !strings.HasPrefix(got, "archive scan: 1 streams, 2 blocks, 100 messages, 150 B compressed from 300 B raw\n") {
		t.Errorf("scan summary mismatch:\n%s", got)
	}
	if !strings.Contains(got, ": 2 manifest records, 150 of 150 segment B committed\n") {
		t.Errorf("shard line mismatch:\n%s", got)
	}
	if !strings.Contains(got, "stream 7/1: 100 archived in 2 blocks, store seq 65536..65635, floor 0, 150 B from 300 B raw (×2.0)\n") {
		t.Errorf("stream line mismatch:\n%s", got)
	}
	if strings.Contains(got, "TORN") {
		t.Errorf("clean archive flagged torn:\n%s", got)
	}

	// Crash mid-spill: the segment loses its tail, the scan flags the
	// torn block and still reports the surviving one.
	var seg string
	for i := 0; ; i++ {
		p := filepath.Join(dir, fmt.Sprintf("shard-%02d.seg", i))
		if st, err := os.Stat(p); err == nil && st.Size() > 0 {
			seg = p
			break
		}
	}
	if err := os.Truncate(seg, 140); err != nil {
		t.Fatal(err)
	}
	got = runInspect(t, []string{"-archive", dir}, "")
	if !strings.Contains(got, "1 TORN block ref(s)") {
		t.Errorf("torn segment not flagged:\n%s", got)
	}
	if !strings.Contains(got, "torn state in 1 shard(s)") {
		t.Errorf("torn summary missing:\n%s", got)
	}
}

func TestInspectArchiveFlagValidation(t *testing.T) {
	if err := run([]string{"-archive", "x", "-store"}, strings.NewReader(""), &strings.Builder{}, &strings.Builder{}); err == nil {
		t.Fatal("-archive with -store accepted")
	}
	if err := run([]string{"-archive", "x", "00"}, strings.NewReader(""), &strings.Builder{}, &strings.Builder{}); err == nil {
		t.Fatal("-archive with frames accepted")
	}
}

func TestInspectCodecFlagValidation(t *testing.T) {
	frame := dataFrame(t, wire.Message{Stream: wire.MustStreamID(1, 0), Seq: 0})
	if err := run([]string{"-codec", "auto", frame}, strings.NewReader(""), &strings.Builder{}, &strings.Builder{}); err == nil {
		t.Fatal("-codec without -store accepted")
	}
	if err := run([]string{"-store", "-codec", "zstd", frame}, strings.NewReader(""), &strings.Builder{}, &strings.Builder{}); err == nil {
		t.Fatal("unknown codec name accepted")
	}
}

// Command garnet-inspect decodes hex-encoded Garnet wire frames — data
// messages (Figure 2) and downlink control messages — and prints their
// fields. It is the debugging loupe for anything captured off the
// simulated medium.
//
// Usage:
//
//	garnet-inspect 4a00000...            # decode a data frame
//	garnet-inspect -control 40001...     # decode a control frame
//	echo 4a0000... | garnet-inspect      # read hex from stdin
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/garnet-middleware/garnet/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "garnet-inspect: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	control := flag.Bool("control", false, "decode as a downlink control message")
	flag.Parse()

	inputs := flag.Args()
	if len(inputs) == 0 {
		scanner := bufio.NewScanner(os.Stdin)
		for scanner.Scan() {
			line := strings.TrimSpace(scanner.Text())
			if line != "" {
				inputs = append(inputs, line)
			}
		}
		if err := scanner.Err(); err != nil {
			return err
		}
	}
	if len(inputs) == 0 {
		return fmt.Errorf("no frames given (args or stdin)")
	}
	for _, in := range inputs {
		frame, err := hex.DecodeString(strings.ReplaceAll(in, " ", ""))
		if err != nil {
			return fmt.Errorf("bad hex %q: %w", in, err)
		}
		if *control {
			if err := inspectControl(frame); err != nil {
				return err
			}
			continue
		}
		if err := inspectData(frame); err != nil {
			return err
		}
	}
	return nil
}

func inspectData(frame []byte) error {
	msg, n, err := wire.DecodeMessage(frame)
	if err != nil {
		return fmt.Errorf("data frame: %w", err)
	}
	fmt.Printf("data message (%d bytes)\n", n)
	fmt.Printf("  stream   %v (sensor %d, internal stream %d)\n", msg.Stream, msg.Stream.Sensor(), msg.Stream.Index())
	fmt.Printf("  seq      %d\n", msg.Seq)
	fmt.Printf("  flags    %v\n", msg.Flags)
	if msg.Flags.Has(wire.FlagUpdateAck) {
		fmt.Printf("  ack-id   %d\n", msg.AckID)
	}
	if msg.Flags.Has(wire.FlagRelayed) {
		fmt.Printf("  hops     %d\n", msg.HopCount)
	}
	if msg.Flags.Has(wire.FlagFused) {
		fmt.Printf("  fused    %d sources\n", msg.FusedCount)
	}
	fmt.Printf("  payload  %d bytes", len(msg.Payload))
	if len(msg.Payload) > 0 {
		limit := len(msg.Payload)
		if limit > 32 {
			limit = 32
		}
		fmt.Printf(": % x", msg.Payload[:limit])
		if limit < len(msg.Payload) {
			fmt.Printf(" …")
		}
	}
	fmt.Println()
	return nil
}

func inspectControl(frame []byte) error {
	c, err := wire.DecodeControl(frame)
	if err != nil {
		return fmt.Errorf("control frame: %w", err)
	}
	fmt.Printf("control message (%d bytes)\n", wire.ControlSize)
	fmt.Printf("  update-id %d\n", c.UpdateID)
	fmt.Printf("  target    %v (sensor %d, internal stream %d)\n", c.Target, c.Target.Sensor(), c.Target.Index())
	fmt.Printf("  op        %v\n", c.Op)
	if c.Op == wire.OpSetParam {
		fmt.Printf("  param     %d\n", c.Param)
	}
	fmt.Printf("  value     %d\n", c.Value)
	fmt.Printf("  issued    %v\n", c.Issued)
	return nil
}

// Command garnet-inspect decodes hex-encoded Garnet wire frames — data
// messages (Figure 2) and downlink control messages — and prints their
// fields. It is the debugging loupe for anything captured off the
// simulated medium.
//
// The -store mode feeds every decoded data frame through an in-memory
// Stream Store and prints the resulting retention view: per-stream
// 64-bit extended sequences (the store's wrap-free addresses), window
// bounds, a per-stream resident-memory estimate (ring header + slot
// backing + payloads + cold blocks) and what a replaying consumer would
// receive — the quickest way to see how a captured trace lands in the
// retention layer, including duplicate collapse and eviction under a
// chosen retention bound.
//
// The -archive mode scans an on-disk archive directory (the durable
// tier a deployment spills sealed blocks into) without opening it for
// writing: segment/manifest structure per shard, per-stream archived
// ranges with compression ratios, and torn tails left by a crash —
// the post-mortem view of what a restarted deployment will recover.
//
// Usage:
//
//	garnet-inspect 4a00000...              # decode a data frame
//	garnet-inspect -control 40001...       # decode a control frame
//	garnet-inspect -store -retain 4 f1 f2  # retention view of a trace
//	garnet-inspect -store -codec auto f1   # … with the cold compressed tier on
//	garnet-inspect -archive ./archive      # scan a durable archive directory
//	echo 4a0000... | garnet-inspect        # read hex from stdin
package main

import (
	"bufio"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/store"
	"github.com/garnet-middleware/garnet/internal/store/archive"
	"github.com/garnet-middleware/garnet/internal/store/codec"
	"github.com/garnet-middleware/garnet/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "garnet-inspect: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("garnet-inspect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	control := fs.Bool("control", false, "decode as downlink control messages")
	storeDump := fs.Bool("store", false, "feed data frames through a Stream Store and dump the retention view")
	retain := fs.Int("retain", 0, "per-stream retention bound for -store (0 = default)")
	codecName := fs.String("codec", "", "cold-tier codec for -store: auto, gorilla, rle, lz or raw (\"\" = compression off)")
	archiveDir := fs.String("archive", "", "scan an on-disk archive directory instead of decoding frames")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; -h is not an error
		}
		return err
	}
	if *control && *storeDump {
		return fmt.Errorf("-control and -store are mutually exclusive")
	}
	if *archiveDir != "" {
		if *control || *storeDump {
			return fmt.Errorf("-archive is mutually exclusive with -control and -store")
		}
		if len(fs.Args()) != 0 {
			return fmt.Errorf("-archive takes a directory, not frames")
		}
		return inspectArchive(stdout, *archiveDir)
	}
	if *codecName != "" {
		if !*storeDump {
			return fmt.Errorf("-codec requires -store")
		}
		if _, err := codec.PickerFor(*codecName); err != nil {
			return err
		}
	}

	inputs := fs.Args()
	if len(inputs) == 0 {
		scanner := bufio.NewScanner(stdin)
		for scanner.Scan() {
			line := strings.TrimSpace(scanner.Text())
			if line != "" {
				inputs = append(inputs, line)
			}
		}
		if err := scanner.Err(); err != nil {
			return err
		}
	}
	if len(inputs) == 0 {
		return fmt.Errorf("no frames given (args or stdin)")
	}
	frames := make([][]byte, 0, len(inputs))
	for _, in := range inputs {
		frame, err := hex.DecodeString(strings.ReplaceAll(in, " ", ""))
		if err != nil {
			return fmt.Errorf("bad hex %q: %w", in, err)
		}
		frames = append(frames, frame)
	}
	if *storeDump {
		return inspectStore(stdout, frames, *retain, *codecName)
	}
	for _, frame := range frames {
		if *control {
			if err := inspectControl(stdout, frame); err != nil {
				return err
			}
			continue
		}
		if err := inspectData(stdout, frame); err != nil {
			return err
		}
	}
	return nil
}

func inspectData(w io.Writer, frame []byte) error {
	msg, n, err := wire.DecodeMessage(frame)
	if err != nil {
		return fmt.Errorf("data frame: %w", err)
	}
	fmt.Fprintf(w, "data message (%d bytes)\n", n)
	fmt.Fprintf(w, "  stream   %v (sensor %d, internal stream %d)\n", msg.Stream, msg.Stream.Sensor(), msg.Stream.Index())
	fmt.Fprintf(w, "  seq      %d\n", msg.Seq)
	fmt.Fprintf(w, "  flags    %v\n", msg.Flags)
	if msg.Flags.Has(wire.FlagUpdateAck) {
		fmt.Fprintf(w, "  ack-id   %d\n", msg.AckID)
	}
	if msg.Flags.Has(wire.FlagRelayed) {
		fmt.Fprintf(w, "  hops     %d\n", msg.HopCount)
	}
	if msg.Flags.Has(wire.FlagFused) {
		fmt.Fprintf(w, "  fused    %d sources\n", msg.FusedCount)
	}
	fmt.Fprintf(w, "  payload  %d bytes", len(msg.Payload))
	if len(msg.Payload) > 0 {
		limit := len(msg.Payload)
		if limit > 32 {
			limit = 32
		}
		fmt.Fprintf(w, ": % x", msg.Payload[:limit])
		if limit < len(msg.Payload) {
			fmt.Fprintf(w, " …")
		}
	}
	fmt.Fprintln(w)
	return nil
}

func inspectControl(w io.Writer, frame []byte) error {
	c, err := wire.DecodeControl(frame)
	if err != nil {
		return fmt.Errorf("control frame: %w", err)
	}
	fmt.Fprintf(w, "control message (%d bytes)\n", wire.ControlSize)
	fmt.Fprintf(w, "  update-id %d\n", c.UpdateID)
	fmt.Fprintf(w, "  target    %v (sensor %d, internal stream %d)\n", c.Target, c.Target.Sensor(), c.Target.Index())
	fmt.Fprintf(w, "  op        %v\n", c.Op)
	if c.Op == wire.OpSetParam {
		fmt.Fprintf(w, "  param     %d\n", c.Param)
	}
	fmt.Fprintf(w, "  value     %d\n", c.Value)
	fmt.Fprintf(w, "  issued    %v\n", c.Issued)
	return nil
}

// inspectArchive scans a durable archive directory read-only and prints
// what a restarted deployment would recover from it: per-shard
// segment/manifest structure (flagging torn tails a crash left behind)
// and per-stream archived ranges with compression ratios.
func inspectArchive(w io.Writer, dir string) error {
	rep, err := archive.ScanFS(dir)
	if err != nil {
		return err
	}
	var blocks int
	var count, rawBytes, compBytes int64
	for _, s := range rep.Streams {
		blocks += s.Blocks
		count += s.Count
		rawBytes += s.RawBytes
		compBytes += s.Bytes
	}
	fmt.Fprintf(w, "archive scan: %d streams, %d blocks, %d messages, %d B compressed from %d B raw\n",
		len(rep.Streams), blocks, count, compBytes, rawBytes)
	torn := 0
	for _, sh := range rep.Shards {
		if sh.Records == 0 && sh.SegBytes == 0 && !sh.TornManifest {
			continue // never written
		}
		fmt.Fprintf(w, "  shard %02d: %d manifest records, %d of %d segment B committed",
			sh.Index, sh.Records, sh.Committed, sh.SegBytes)
		if sh.TornManifest {
			fmt.Fprintf(w, ", TORN manifest tail")
			torn++
		}
		if sh.TornRefs > 0 {
			fmt.Fprintf(w, ", %d TORN block ref(s)", sh.TornRefs)
			torn++
		}
		fmt.Fprintln(w)
	}
	for _, s := range rep.Streams {
		if s.Blocks == 0 {
			fmt.Fprintf(w, "stream %v: empty (floor %d)\n", s.Stream, s.Floor)
			continue
		}
		fmt.Fprintf(w, "stream %v: %d archived in %d blocks, store seq %d..%d, floor %d, %d B from %d B raw (×%.1f)\n",
			s.Stream, s.Count, s.Blocks, s.FirstSeq, s.LastSeq, s.Floor, s.Bytes, s.RawBytes,
			float64(s.RawBytes)/float64(s.Bytes))
	}
	if torn > 0 {
		fmt.Fprintf(w, "torn state in %d shard(s): the next open recovers to the last complete block\n", torn)
	}
	return nil
}

// inspectStore appends every decoded data frame into a fresh Stream Store
// and dumps the retention view it produces. With a codec named, evictions
// seal into the cold compressed tier (small blocks, so even short traces
// seal some) and the dump grows per-stream codec and compression-ratio
// columns.
func inspectStore(w io.Writer, frames [][]byte, retain int, codecName string) error {
	st := store.New(store.Options{Shards: 1, MaxMessages: retain, Codec: codecName, BlockSize: 8})
	for i, frame := range frames {
		msg, _, err := wire.DecodeMessage(frame)
		if err != nil {
			return fmt.Errorf("data frame %d: %w", i+1, err)
		}
		st.Append(filtering.Delivery{Msg: msg, Receiver: "inspect", RSSI: 1})
	}
	stats := st.Stats()
	streams := st.Streams()
	fmt.Fprintf(w, "stream store dump: %d frames in, %d streams, %d retained messages, %d payload bytes\n",
		stats.Appended, len(streams), stats.RetainedMessages, stats.RetainedBytes)
	if evicted := stats.EvictedCount + stats.EvictedBytes + stats.EvictedAge; evicted > 0 || stats.DroppedBehind > 0 {
		fmt.Fprintf(w, "  evicted %d, dropped-behind %d\n", evicted, stats.DroppedBehind)
	}
	if stats.Codec != "" {
		fmt.Fprintf(w, "  codec %s: %d blocks sealed, %d messages, %d B compressed from %d B raw\n",
			stats.Codec, stats.SealedBlocks, stats.SealedMessages, stats.ColdBytes, stats.ColdRawBytes)
	}
	for _, id := range streams {
		ss, _ := st.StreamStats(id)
		fmt.Fprintf(w, "stream %v: %d retained, store seq %d..%d, next wire seq %d, %d B, ~%d B resident",
			id, ss.Count, ss.FirstSeq, ss.LastSeq, ss.NextWire, ss.Bytes, ss.ResidentBytes)
		if ss.ColdBlocks > 0 {
			ratio := float64(ss.ColdRawBytes) / float64(ss.ColdBytes)
			fmt.Fprintf(w, ", codec %s ×%.1f (%d cold in %d B)", ss.Codec, ratio, ss.ColdMessages, ss.ColdBytes)
		}
		fmt.Fprintln(w)
		st.RangeFunc(id, 0, ^uint64(0), func(d filtering.Delivery) bool {
			fmt.Fprintf(w, "  seq %-8d wire %-5d flags %-10v %d B", d.StoreSeq, d.Msg.Seq, d.Msg.Flags, len(d.Msg.Payload))
			if len(d.Msg.Payload) > 0 {
				limit := len(d.Msg.Payload)
				if limit > 16 {
					limit = 16
				}
				fmt.Fprintf(w, ": % x", d.Msg.Payload[:limit])
				if limit < len(d.Msg.Payload) {
					fmt.Fprintf(w, " …")
				}
			}
			fmt.Fprintln(w)
			return true
		})
	}
	return nil
}

// Command garnet-bench regenerates the paper's tables and figures as
// described in DESIGN.md §2 and EXPERIMENTS.md.
//
// Usage:
//
//	garnet-bench                  # run every experiment
//	garnet-bench -experiment E5   # run one experiment
//	garnet-bench -quick           # reduced sweeps (smoke run)
//	garnet-bench -seed 7          # change the deterministic seed
//	garnet-bench -perf            # multicore perf sweep → BENCH_*.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/garnet-middleware/garnet/internal/experiments"
	"github.com/garnet-middleware/garnet/internal/perfharness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "garnet-bench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experiment = flag.String("experiment", "all",
			"experiment id ("+experiments.FlagUsage()+") or \"all\"")
		seed  = flag.Uint64("seed", 42, "deterministic seed")
		quick = flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
		perf  = flag.Bool("perf", false,
			"run the multicore perf sweep and emit BENCH_dispatch.json / BENCH_pipeline.json instead of experiment tables")
		outDir = flag.String("out", ".", "output directory for -perf BENCH_*.json files")
	)
	flag.Parse()

	if *perf {
		dp, pp, err := perfharness.WriteReports(perfharness.Options{
			Quick:  *quick,
			OutDir: *outDir,
			Log: func(format string, a ...any) {
				fmt.Fprintf(os.Stdout, format+"\n", a...)
			},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stdout, "wrote %s\nwrote %s\n", dp, pp)
		return nil
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	if *experiment != "all" {
		table, err := experiments.Run(*experiment, cfg)
		if err != nil {
			return err
		}
		table.Render(os.Stdout)
		return nil
	}
	start := time.Now()
	for _, e := range experiments.All() {
		t0 := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		table.Render(os.Stdout)
		fmt.Fprintf(os.Stdout, "  [%s completed in %v]\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stdout, "all experiments completed in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// Command garnet-bench regenerates the paper's tables and figures as
// described in DESIGN.md §2 and EXPERIMENTS.md.
//
// Usage:
//
//	garnet-bench                  # run every experiment
//	garnet-bench -experiment E5   # run one experiment
//	garnet-bench -quick           # reduced sweeps (smoke run)
//	garnet-bench -seed 7          # change the deterministic seed
//	garnet-bench -perf            # multicore perf sweep → BENCH_*.json
//	garnet-bench -perf -scenario store_tee
//	                              # one registry scenario (local iteration)
//	garnet-bench -perf -baseline BENCH_pipeline.json
//	                              # ...and diff the fresh run against a
//	                              # committed report, per-scenario msgs/s
//	garnet-bench -perf -baseline BENCH_pipeline.json,BENCH_store.json
//	                              # ...against several committed reports
//	                              # at once (one per area)
//	garnet-bench -perf -baseline BENCH_pipeline.json -max-regress 10
//	                              # ...and exit non-zero when any cell
//	                              # regresses more than 10% (CI gate)
//	garnet-bench -scale           # 100k-1M sensor memory census
//	                              # → BENCH_scale.json
//	garnet-bench -scale -quick -max-idle-bytes 768
//	                              # CI smoke: one 100k cell, fail the job
//	                              # if bytes/idle-sensor exceeds the budget
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/garnet-middleware/garnet/internal/experiments"
	"github.com/garnet-middleware/garnet/internal/perfharness"
	"github.com/garnet-middleware/garnet/internal/scale"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "garnet-bench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experiment = flag.String("experiment", "all",
			"experiment id ("+experiments.FlagUsage()+") or \"all\"")
		seed  = flag.Uint64("seed", 42, "deterministic seed")
		quick = flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
		perf  = flag.Bool("perf", false,
			"run the multicore perf sweep and emit BENCH_dispatch.json / BENCH_pipeline.json instead of experiment tables")
		outDir   = flag.String("out", ".", "output directory for -perf/-scale BENCH_*.json files")
		baseline = flag.String("baseline", "",
			"comma-separated committed BENCH_*.json reports to diff the fresh -perf run against (per-scenario msgs/s deltas)")
		maxRegress = flag.Float64("max-regress", 0,
			"with -perf -baseline: exit non-zero when any matched cell's msgs/s drops more than this percentage")
		scenario = flag.String("scenario", "",
			"with -perf: run only the named scenario (see the registry listing; \"\" runs all)")
		scaleMode = flag.Bool("scale", false,
			"run the 100k-1M sensor memory census and emit BENCH_scale.json")
		maxIdleBytes = flag.Float64("max-idle-bytes", 0,
			"with -scale: exit non-zero when bytes/idle-sensor exceeds this ceiling (0 = no ceiling)")
	)
	flag.Parse()

	if *scaleMode {
		path, rep, err := scale.WriteReport(scale.Options{
			Quick:  *quick,
			OutDir: *outDir,
			Log: func(format string, a ...any) {
				fmt.Fprintf(os.Stdout, format+"\n", a...)
			},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stdout, "wrote %s\n", path)
		if *maxIdleBytes > 0 {
			if got := scale.MaxIdleBytes(rep); got > *maxIdleBytes {
				return fmt.Errorf("bytes/idle-sensor %.0f exceeds the -max-idle-bytes ceiling %.0f", got, *maxIdleBytes)
			}
			fmt.Fprintf(os.Stdout, "bytes/idle-sensor %.0f within ceiling %.0f\n", scale.MaxIdleBytes(rep), *maxIdleBytes)
		}
		return nil
	}

	if *perf {
		// The scenario listing comes from the harness registry — the same
		// source Run executes — so it can never drift from what actually
		// runs.
		mode := "full"
		if *quick {
			mode = "quick"
		}
		var names []string
		for _, sc := range perfharness.Scenarios() {
			names = append(names, sc.Name)
		}
		if *scenario != "" {
			fmt.Fprintf(os.Stdout, "perf scenario (%s sweep, of %s): %s\n", mode, strings.Join(names, " "), *scenario)
		} else {
			fmt.Fprintf(os.Stdout, "perf scenarios (%s sweep): %s\n", mode, strings.Join(names, " "))
		}
		// Load every baseline before the sweep runs: -out may point at
		// the directory holding the baselines themselves, and the
		// comparison must be against the committed numbers, not the
		// freshly overwritten files.
		type namedBaseline struct {
			path string
			rep  perfharness.Report
		}
		var bases []namedBaseline
		if *baseline != "" {
			for _, p := range strings.Split(*baseline, ",") {
				p = strings.TrimSpace(p)
				if p == "" {
					continue
				}
				r, err := loadReport(p)
				if err != nil {
					return fmt.Errorf("baseline: %w", err)
				}
				bases = append(bases, namedBaseline{path: p, rep: r})
			}
		}
		dp, pp, sp, err := perfharness.WriteReports(perfharness.Options{
			Quick:    *quick,
			OutDir:   *outDir,
			Scenario: *scenario,
			Log: func(format string, a ...any) {
				fmt.Fprintf(os.Stdout, format+"\n", a...)
			},
		})
		if err != nil {
			return err
		}
		for _, p := range []string{dp, pp, sp} {
			if p != "" {
				fmt.Fprintf(os.Stdout, "wrote %s\n", p)
			}
		}
		freshByArea := map[string]string{"dispatch": dp, "pipeline": pp, "store": sp}
		for _, b := range bases {
			if err := diffBaseline(b.path, b.rep, freshByArea, *maxRegress); err != nil {
				return err
			}
		}
		return nil
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	if *experiment != "all" {
		table, err := experiments.Run(*experiment, cfg)
		if err != nil {
			return err
		}
		table.Render(os.Stdout)
		return nil
	}
	start := time.Now()
	for _, e := range experiments.All() {
		t0 := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		table.Render(os.Stdout)
		fmt.Fprintf(os.Stdout, "  [%s completed in %v]\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stdout, "all experiments completed in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func loadReport(path string) (perfharness.Report, error) {
	var r perfharness.Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	return r, json.Unmarshal(data, &r)
}

// diffBaseline prints per-scenario msgs/s deltas between a committed
// baseline report (loaded before the sweep ran) and the fresh report of
// the same area, which the run just wrote to the path freshByArea maps
// the baseline's area to. When maxRegress > 0, any matched cell whose
// msgs/s dropped more than that percentage fails the run — the CI
// regression gate.
func diffBaseline(baselinePath string, base perfharness.Report, freshByArea map[string]string, maxRegress float64) error {
	freshPath := freshByArea[base.Area]
	if freshPath == "" {
		return fmt.Errorf("baseline %s is a %s report but the run produced no %s results",
			baselinePath, base.Area, base.Area)
	}
	fresh, err := loadReport(freshPath)
	if err != nil {
		return err
	}
	deltas := perfharness.Compare(base, fresh)
	if len(deltas) == 0 {
		return fmt.Errorf("baseline %s shares no cells with the fresh %s report", baselinePath, base.Area)
	}
	fmt.Fprintf(os.Stdout, "\nbaseline %s (%s, %s) vs fresh run:\n", baselinePath, base.Area, base.Date)
	var regressed []perfharness.Delta
	for _, d := range deltas {
		marker := ""
		if maxRegress > 0 && d.Pct < -maxRegress {
			regressed = append(regressed, d)
			marker = "  << regression"
		}
		fmt.Fprintf(os.Stdout, "  %-55s %8.2f → %8.2f Kmsg/s (%+.1f%%)%s\n",
			d.Key, d.Baseline/1e3, d.Current/1e3, d.Pct, marker)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d cell(s) regressed more than %.1f%% vs %s (worst: %s at %+.1f%%)",
			len(regressed), maxRegress, baselinePath, regressed[0].Key, regressed[0].Pct)
	}
	return nil
}

// Command garnet-bench regenerates the paper's tables and figures as
// described in DESIGN.md §2 and EXPERIMENTS.md.
//
// Usage:
//
//	garnet-bench                  # run every experiment
//	garnet-bench -experiment E5   # run one experiment
//	garnet-bench -quick           # reduced sweeps (smoke run)
//	garnet-bench -seed 7          # change the deterministic seed
//	garnet-bench -perf            # multicore perf sweep → BENCH_*.json
//	garnet-bench -perf -baseline BENCH_pipeline.json
//	                              # ...and diff the fresh run against a
//	                              # committed report, per-scenario msgs/s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/garnet-middleware/garnet/internal/experiments"
	"github.com/garnet-middleware/garnet/internal/perfharness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "garnet-bench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experiment = flag.String("experiment", "all",
			"experiment id ("+experiments.FlagUsage()+") or \"all\"")
		seed  = flag.Uint64("seed", 42, "deterministic seed")
		quick = flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
		perf  = flag.Bool("perf", false,
			"run the multicore perf sweep and emit BENCH_dispatch.json / BENCH_pipeline.json instead of experiment tables")
		outDir   = flag.String("out", ".", "output directory for -perf BENCH_*.json files")
		baseline = flag.String("baseline", "",
			"committed BENCH_*.json to diff the fresh -perf run against (per-scenario msgs/s deltas)")
	)
	flag.Parse()

	if *perf {
		// The scenario listing comes from the harness registry — the same
		// source Run executes — so it can never drift from what actually
		// runs.
		mode := "full"
		if *quick {
			mode = "quick"
		}
		var names []string
		for _, sc := range perfharness.Scenarios() {
			names = append(names, sc.Name)
		}
		fmt.Fprintf(os.Stdout, "perf scenarios (%s sweep): %s\n", mode, strings.Join(names, " "))
		// Load the baseline before the sweep runs: -out may point at the
		// directory holding the baseline itself, and the comparison must
		// be against the committed numbers, not the freshly overwritten
		// file.
		var base *perfharness.Report
		if *baseline != "" {
			r, err := loadReport(*baseline)
			if err != nil {
				return fmt.Errorf("baseline: %w", err)
			}
			base = &r
		}
		dp, pp, err := perfharness.WriteReports(perfharness.Options{
			Quick:  *quick,
			OutDir: *outDir,
			Log: func(format string, a ...any) {
				fmt.Fprintf(os.Stdout, format+"\n", a...)
			},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stdout, "wrote %s\nwrote %s\n", dp, pp)
		if base != nil {
			return diffBaseline(*baseline, *base, dp, pp)
		}
		return nil
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	if *experiment != "all" {
		table, err := experiments.Run(*experiment, cfg)
		if err != nil {
			return err
		}
		table.Render(os.Stdout)
		return nil
	}
	start := time.Now()
	for _, e := range experiments.All() {
		t0 := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		table.Render(os.Stdout)
		fmt.Fprintf(os.Stdout, "  [%s completed in %v]\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stdout, "all experiments completed in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func loadReport(path string) (perfharness.Report, error) {
	var r perfharness.Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	return r, json.Unmarshal(data, &r)
}

// diffBaseline prints per-scenario msgs/s deltas between a committed
// baseline report (loaded before the sweep ran) and the fresh report of
// the same area, which the run just wrote to dispatchPath/pipelinePath.
func diffBaseline(baselinePath string, base perfharness.Report, dispatchPath, pipelinePath string) error {
	freshPath := dispatchPath
	if base.Area == "pipeline" {
		freshPath = pipelinePath
	}
	fresh, err := loadReport(freshPath)
	if err != nil {
		return err
	}
	deltas := perfharness.Compare(base, fresh)
	if len(deltas) == 0 {
		return fmt.Errorf("baseline %s shares no cells with the fresh %s report", baselinePath, base.Area)
	}
	fmt.Fprintf(os.Stdout, "\nbaseline %s (%s, %s) vs fresh run:\n", baselinePath, base.Area, base.Date)
	for _, d := range deltas {
		fmt.Fprintf(os.Stdout, "  %-55s %8.2f → %8.2f Kmsg/s (%+.1f%%)\n",
			d.Key, d.Baseline/1e3, d.Current/1e3, d.Pct)
	}
	return nil
}

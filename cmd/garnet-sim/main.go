// Command garnet-sim runs a configurable end-to-end Garnet deployment on
// virtual time and reports what every middleware service did: a quick way
// to explore how receiver overlap, loss and actuation behave at different
// scales without writing code.
//
// Example:
//
//	garnet-sim -sensors 200 -receivers 9 -loss 0.2 -duration 5m -actuate
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/garnet-middleware/garnet/internal/consumer"
	"github.com/garnet-middleware/garnet/internal/core"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/field"
	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/replicator"
	"github.com/garnet-middleware/garnet/internal/resource"
	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/transmit"
	"github.com/garnet-middleware/garnet/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "garnet-sim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		sensors   = flag.Int("sensors", 50, "number of sensor nodes")
		receivers = flag.Int("receivers", 9, "number of receivers (grid)")
		txs       = flag.Int("transmitters", 4, "number of transmitters (grid)")
		duration  = flag.Duration("duration", time.Minute, "simulated duration")
		rate      = flag.Duration("period", time.Second, "sensor sampling period")
		loss      = flag.Float64("loss", 0.1, "per-delivery loss probability")
		corrupt   = flag.Float64("corrupt", 0.01, "per-delivery corruption probability")
		mobile    = flag.Bool("mobile", true, "sensors move by random waypoint")
		actuate   = flag.Bool("actuate", false, "double every stream's rate mid-run through the actuation path")
		seed      = flag.Uint64("seed", 1, "deterministic seed")
		sizeM     = flag.Float64("size", 500, "field edge length, metres")
	)
	flag.Parse()

	epoch := time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)
	clock := sim.NewVirtualClock(epoch)
	d := core.New(core.Config{
		Clock: clock,
		Radio: radio.Params{
			LossProb:    *loss,
			CorruptProb: *corrupt,
			DelayMin:    time.Millisecond,
			DelayMax:    10 * time.Millisecond,
			Seed:        *seed,
		},
		Secret:                []byte("garnet-sim"),
		LocationPublishPeriod: 10 * time.Second,
		Replicator:            replicator.Options{Targeted: true},
	})
	defer d.Stop()

	bounds := geo.RectWH(0, 0, *sizeM, *sizeM)
	zone := *sizeM / 2
	for i, p := range field.GridPositions(bounds, *receivers) {
		d.AddReceiver(receiver.Config{Name: fmt.Sprintf("rx-%d", i), Position: p, Radius: zone})
	}
	for i, p := range field.GridPositions(bounds, *txs) {
		d.AddTransmitter(transmit.Config{Name: fmt.Sprintf("tx-%d", i), Position: p, Range: zone * 1.5})
	}

	for i := 0; i < *sensors; i++ {
		var mob field.Mobility
		if *mobile {
			mob = field.NewRandomWaypoint(bounds, 0.5, 3, 5*time.Second, sim.SubSeed(*seed, fmt.Sprintf("s%d", i)))
		} else {
			mob = field.Static{P: field.RandomPositions(bounds, 1, sim.SubSeed(*seed, fmt.Sprintf("p%d", i)))[0]}
		}
		base := 15 + float64(i%10)
		if _, err := d.AddSensor(sensor.Config{
			ID:           wire.SensorID(i + 1),
			Capabilities: sensor.CapReceive,
			Mobility:     mob,
			TxRange:      zone,
			Streams: []sensor.StreamConfig{{
				Index:   0,
				Sampler: sensor.FloatSampler(func(time.Time) float64 { return base }),
				Period:  *rate,
				Enabled: true,
			}},
			Energy: sensor.EnergyParams{TxBase: 0.5, TxPerByte: 0.002, RxPerByte: 0.001, PerSample: 0.05},
		}); err != nil {
			return err
		}
	}

	all := consumer.NewRecorder("monitor", 1)
	if _, err := d.Dispatcher().Subscribe(all, dispatch.All()); err != nil {
		return err
	}

	fmt.Printf("garnet-sim: %d sensors, %d receivers, %d transmitters, %v simulated, loss %.0f%%\n",
		*sensors, *receivers, *txs, *duration, *loss*100)
	d.Start()
	wall := time.Now()

	if *actuate {
		clock.RunUntil(epoch.Add(*duration / 2))
		newRate := uint32(2 * 1000 * float64(time.Second) / float64(*rate))
		fmt.Printf("t=%v: actuating every stream to %d mHz through the return path\n", *duration/2, newRate)
		for i := 0; i < *sensors; i++ {
			if _, err := d.SubmitDemand(resource.Demand{
				Consumer: "operator",
				Target:   wire.MustStreamID(wire.SensorID(i+1), 0),
				Op:       wire.OpSetRate,
				Value:    newRate,
			}); err != nil {
				return err
			}
		}
	}
	clock.RunUntil(epoch.Add(*duration))
	d.Stop()
	elapsed := time.Since(wall)

	s := d.Stats()
	med := d.Medium().Metrics()
	fmt.Printf("\n--- results (%v wall clock) ---\n", elapsed.Round(time.Millisecond))
	fmt.Printf("medium      broadcasts=%d deliveries=%d lost=%d corrupted=%d out-of-range=%d\n",
		med.Broadcasts.Value(), med.Deliveries.Value(), med.Lost.Value(), med.Corrupted.Value(), med.OutOfRange.Value())
	fmt.Printf("filtering   received=%d delivered=%d duplicates=%d stale=%d gaps=%d recovered=%d streams=%d\n",
		s.Filter.Received, s.Filter.Delivered, s.Filter.Duplicates, s.Filter.Stale,
		s.Filter.Gaps, s.Filter.GapsRecovered, s.Filter.ActiveStreams)
	fmt.Printf("dispatching dispatched=%d delivered=%d orphaned=%d\n",
		s.Dispatch.Dispatched, s.Dispatch.Delivered, s.Dispatch.Orphaned)
	fmt.Printf("store       streams=%d retained=%d bytes=%d evicted=%d\n",
		s.Store.Streams, s.Store.RetainedMessages, s.Store.RetainedBytes,
		s.Store.EvictedCount+s.Store.EvictedBytes+s.Store.EvictedAge)
	fmt.Printf("orphanage   streams=%d held=%d evicted=%d\n",
		s.Orphanage.StreamsHeld, s.Orphanage.MessagesHeld, s.Orphanage.StreamsEvicted)
	fmt.Printf("resource    submitted=%d approved=%d modified=%d denied=%d\n",
		s.Resource.Submitted, s.Resource.Approved, s.Resource.Modified, s.Resource.Denied)
	fmt.Printf("actuation   issued=%d acked=%d expired=%d retries=%d\n",
		s.Actuation.Issued, s.Actuation.Acked, s.Actuation.Expired, s.Actuation.Retries)
	if s.Actuation.Acked > 0 {
		lat := d.ActuationService().Latency()
		fmt.Printf("            ack latency mean=%.1fms p95=%.1fms\n", lat.Mean(), lat.Percentile(95))
	}
	fmt.Printf("replicator  requests=%d targeted=%d flooded=%d broadcasts=%d\n",
		s.Replicator.Requests, s.Replicator.Targeted, s.Replicator.Flooded, s.Replicator.Broadcasts)
	fmt.Printf("consumer    received=%d unique stream messages\n", all.Count())

	var energy float64
	alive := 0
	for _, n := range d.Sensors() {
		energy += n.EnergyUsed()
		if n.Alive() {
			alive++
		}
	}
	fmt.Printf("field       energy=%.1fmJ alive=%d/%d\n", energy, alive, *sensors)
	return nil
}

package garnet_test

import (
	"fmt"
	"time"

	garnet "github.com/garnet-middleware/garnet"
)

// Example demonstrates the minimal publish/subscribe round trip: one
// receiver, one sensor, one consumer, on a deterministic virtual clock.
func Example() {
	clock := garnet.NewVirtualClock(time.Date(2003, 5, 19, 9, 0, 0, 0, time.UTC))
	g := garnet.New(
		garnet.WithClock(clock),
		garnet.WithSecret([]byte("example-secret")),
	)
	defer g.Stop()

	g.AddReceiver(garnet.ReceiverConfig{Position: garnet.Pt(0, 0), Radius: 100})
	if _, err := g.AddSensor(garnet.SensorConfig{
		ID:       1,
		Mobility: garnet.Static{P: garnet.Pt(30, 40)},
		TxRange:  100,
		Streams: []garnet.StreamConfig{{
			Index:   0,
			Sampler: garnet.FloatSampler(func(time.Time) float64 { return 21.5 }),
			Period:  time.Second,
			Enabled: true,
		}},
	}); err != nil {
		fmt.Println(err)
		return
	}
	tok, err := g.Register("example-app", garnet.PermSubscribe)
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := g.Subscribe(tok, garnet.BySensor(1), &garnet.ConsumerFunc{
		ConsumerName: "printer",
		Fn: func(d garnet.Delivery) {
			v, _, _ := garnet.DecodeReading(d.Msg.Payload)
			fmt.Printf("stream %v seq %d: %.1f\n", d.Msg.Stream, d.Msg.Seq, v)
		},
	}); err != nil {
		fmt.Println(err)
		return
	}
	g.Start()
	clock.Advance(3 * time.Second)

	// Output:
	// stream 1/0 seq 0: 21.5
	// stream 1/0 seq 1: 21.5
	// stream 1/0 seq 2: 21.5
}

// ExampleDeployment_Actuate shows the return actuation path: a consumer
// demand is admitted by the Resource Manager, delivered over the downlink,
// applied by the sensor and acknowledged.
func ExampleDeployment_Actuate() {
	clock := garnet.NewVirtualClock(time.Date(2003, 5, 19, 9, 0, 0, 0, time.UTC))
	g := garnet.New(garnet.WithClock(clock), garnet.WithSecret([]byte("example-secret")))
	defer g.Stop()

	g.AddReceiver(garnet.ReceiverConfig{Position: garnet.Pt(0, 0), Radius: 100})
	g.AddTransmitter(garnet.TransmitterConfig{Position: garnet.Pt(0, 0), Range: 100})
	node, err := g.AddSensor(garnet.SensorConfig{
		ID:           7,
		Capabilities: garnet.CapReceive,
		Mobility:     garnet.Static{P: garnet.Pt(10, 0)},
		TxRange:      100,
		Streams: []garnet.StreamConfig{{
			Index:   0,
			Sampler: garnet.SizedSampler(8),
			Period:  time.Second,
			Enabled: true,
		}},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	tok, err := g.Register("controller", garnet.PermActuate)
	if err != nil {
		fmt.Println(err)
		return
	}
	g.Start()
	clock.Advance(time.Second)

	dec, err := g.Actuate(tok, garnet.Demand{
		Target: garnet.MustStreamID(7, 0),
		Op:     garnet.OpSetRate,
		Value:  4000, // 4 Hz in millihertz
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	clock.Advance(3 * time.Second)

	period, _ := node.StreamPeriod(0)
	fmt.Println("verdict:", dec.Verdict)
	fmt.Println("sensor period:", period)
	fmt.Println("acked:", g.Stats().Actuation.Acked)

	// Output:
	// verdict: approved
	// sensor period: 250ms
	// acked: 1
}

// ExampleParseConstraints shows the codified sensor-constraint language
// the Resource Manager enforces (§8 future work, implemented here).
func ExampleParseConstraints() {
	c, err := garnet.ParseConstraints("rate<=10/s; rate>=6/min; payload<=1024; streams<=4")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(c)

	// Output:
	// rate<=10000mHz; rate>=100mHz; payload<=1024; streams<=4
}

package garnet_test

import (
	"errors"
	"testing"
	"time"

	garnet "github.com/garnet-middleware/garnet"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

// newTestDeployment builds a deterministic 200×200 m deployment with four
// receivers, one transmitter and a receive-capable thermometer sensor.
func newTestDeployment(t *testing.T, opts ...garnet.Option) (*garnet.Deployment, *garnet.VirtualClock) {
	t.Helper()
	clock := garnet.NewVirtualClock(epoch)
	opts = append([]garnet.Option{
		garnet.WithClock(clock),
		garnet.WithSecret([]byte("test-secret")),
	}, opts...)
	g := garnet.New(opts...)
	for _, p := range garnet.GridPositions(garnet.RectWH(0, 0, 200, 200), 4) {
		g.AddReceiver(garnet.ReceiverConfig{Position: p, Radius: 180})
	}
	g.AddTransmitter(garnet.TransmitterConfig{Position: garnet.Pt(100, 100), Range: 300})
	t.Cleanup(g.Stop)
	return g, clock
}

func addThermometer(t *testing.T, g *garnet.Deployment, id garnet.SensorID) *garnet.SensorNode {
	t.Helper()
	n, err := g.AddSensor(garnet.SensorConfig{
		ID:           id,
		Capabilities: garnet.CapReceive,
		Mobility:     garnet.Static{P: garnet.Pt(100, 100)},
		TxRange:      300,
		Streams: []garnet.StreamConfig{{
			Index:   0,
			Sampler: garnet.FloatSampler(func(time.Time) float64 { return 21.5 }),
			Period:  time.Second,
			Enabled: true,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	g, clock := newTestDeployment(t)
	addThermometer(t, g, 1)

	tok, err := g.Register("app", garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	rec := garnet.NewRecorder("app", 128)
	if _, err := g.Subscribe(tok, garnet.BySensor(1), rec); err != nil {
		t.Fatal(err)
	}
	g.Start()
	clock.Advance(10 * time.Second)

	if rec.Count() != 10 {
		t.Fatalf("received %d, want 10", rec.Count())
	}
	last, _ := rec.Last()
	v, _, ok := garnet.DecodeReading(last.Msg.Payload)
	if !ok || v != 21.5 {
		t.Fatalf("payload = %v %v", v, ok)
	}

	infos, err := g.Discover(tok)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Stream != garnet.MustStreamID(1, 0) {
		t.Fatalf("discover = %+v", infos)
	}
}

func TestPermissionEnforcement(t *testing.T) {
	g, clock := newTestDeployment(t)
	addThermometer(t, g, 1)
	g.Start()
	clock.Advance(2 * time.Second)

	subOnly, err := g.Register("sub-only", garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	rec := garnet.NewRecorder("r", 8)

	if _, err := g.Actuate(subOnly, garnet.Demand{
		Target: garnet.MustStreamID(1, 0), Op: garnet.OpSetRate, Value: 1000,
	}); !errors.Is(err, garnet.ErrPermission) {
		t.Errorf("Actuate without PermActuate: %v", err)
	}
	if err := g.Hint(subOnly, 1, garnet.Pt(0, 0), 0.5, time.Minute); !errors.Is(err, garnet.ErrPermission) {
		t.Errorf("Hint without PermHint: %v", err)
	}
	if _, err := g.Locate(subOnly, 1); !errors.Is(err, garnet.ErrPermission) {
		t.Errorf("Locate without PermLocation: %v", err)
	}
	if err := g.ReportState(subOnly, "calm"); !errors.Is(err, garnet.ErrPermission) {
		t.Errorf("ReportState without PermTrusted: %v", err)
	}
	if _, err := g.Subscribe(subOnly, garnet.Exact(garnet.MustStreamID(1, garnet.LocationStreamIndex)), rec); !errors.Is(err, garnet.ErrPermission) {
		t.Errorf("location-stream subscribe without PermLocation: %v", err)
	}
	if _, err := g.Subscribe(garnet.Token("forged"), garnet.All(), rec); !errors.Is(err, garnet.ErrBadToken) {
		t.Errorf("forged token: %v", err)
	}
}

func TestLocationStreamsNarrowedWithoutPermission(t *testing.T) {
	g, clock := newTestDeployment(t, garnet.WithLocationPublishing(2*time.Second))
	addThermometer(t, g, 1)

	plain, err := g.Register("plain", garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	privileged, err := g.Register("priv", garnet.PermSubscribe|garnet.PermLocation)
	if err != nil {
		t.Fatal(err)
	}
	plainRec := garnet.NewRecorder("plain", 256)
	privRec := garnet.NewRecorder("priv", 256)
	if _, err := g.Subscribe(plain, garnet.All(), plainRec); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Subscribe(privileged, garnet.All(), privRec); err != nil {
		t.Fatal(err)
	}
	g.Start()
	clock.Advance(10 * time.Second)

	for _, d := range plainRec.Deliveries() {
		if d.Msg.Stream.Index() == garnet.LocationStreamIndex {
			t.Fatal("unprivileged consumer received a location stream")
		}
	}
	sawLocation := false
	for _, d := range privRec.Deliveries() {
		if d.Msg.Stream.Index() == garnet.LocationStreamIndex {
			sawLocation = true
			if _, err := garnet.DecodeEstimate(d.Msg.Payload); err != nil {
				t.Fatalf("bad location payload: %v", err)
			}
		}
	}
	if !sawLocation {
		t.Fatal("privileged consumer received no location streams")
	}
}

func TestActuateThroughFacade(t *testing.T) {
	g, clock := newTestDeployment(t)
	n := addThermometer(t, g, 2)
	g.Start()
	clock.Advance(time.Second)

	tok, err := g.Register("ctrl", garnet.PermActuate)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := g.Actuate(tok, garnet.Demand{
		Target: garnet.MustStreamID(2, 0), Op: garnet.OpSetRate, Value: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Verdict != garnet.VerdictApproved {
		t.Fatalf("decision = %+v", dec)
	}
	clock.Advance(5 * time.Second)
	if p, _ := n.StreamPeriod(0); p != 500*time.Millisecond {
		t.Fatalf("period = %v", p)
	}

	// Withdraw relaxes nothing (sole demand) but must succeed.
	if _, ok, err := g.WithdrawDemand(tok, garnet.MustStreamID(2, 0), garnet.ClassRate); err != nil || !ok {
		t.Fatalf("withdraw = %v %v", ok, err)
	}
}

func TestPingFacade(t *testing.T) {
	g, clock := newTestDeployment(t)
	addThermometer(t, g, 3)
	g.Start()
	clock.Advance(time.Second)

	tok, err := g.Register("pinger", garnet.PermActuate)
	if err != nil {
		t.Fatal(err)
	}
	acked := false
	if err := g.Ping(tok, garnet.MustStreamID(3, 0), func(ok bool) { acked = ok }); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Second)
	if !acked {
		t.Fatal("ping not acknowledged")
	}
}

func TestHintAndLocateFacade(t *testing.T) {
	g, clock := newTestDeployment(t)
	g.Start()
	clock.Advance(time.Second)

	tok, err := g.Register("scout", garnet.PermHint|garnet.PermLocation)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Hint(tok, 9, garnet.Pt(42, 24), 0.9, time.Minute); err != nil {
		t.Fatal(err)
	}
	est, err := g.Locate(tok, 9)
	if err != nil {
		t.Fatal(err)
	}
	if est.Pos.Dist(garnet.Pt(42, 24)) > 1e-9 {
		t.Fatalf("estimate = %+v", est)
	}
	if _, err := g.Locate(tok, 999); !errors.Is(err, garnet.ErrUnknownSensor) {
		t.Fatalf("unknown sensor: %v", err)
	}
}

func TestOrphanClaimFacade(t *testing.T) {
	g, clock := newTestDeployment(t)
	addThermometer(t, g, 4)
	g.Start()
	clock.Advance(5 * time.Second) // nobody subscribed: orphaned

	tok, err := g.Register("late", garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	orphans, err := g.Orphans(tok)
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 1 || orphans[0].Seen != 5 {
		t.Fatalf("orphans = %+v", orphans)
	}
	backlog, err := g.Claim(tok, garnet.MustStreamID(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog) != 5 {
		t.Fatalf("backlog = %d", len(backlog))
	}
	// Subscribe going forward: no data is lost across the handover.
	rec := garnet.NewRecorder("late", 64)
	if _, err := g.Subscribe(tok, garnet.Exact(garnet.MustStreamID(4, 0)), rec); err != nil {
		t.Fatal(err)
	}
	clock.Advance(3 * time.Second)
	if rec.Count() != 3 {
		t.Fatalf("post-claim deliveries = %d", rec.Count())
	}
}

func TestTrustedStateReportingFacade(t *testing.T) {
	g, clock := newTestDeployment(t, garnet.WithPredictiveCoordination(time.Second, 0.5))
	n := addThermometer(t, g, 5)
	g.Start()
	clock.Advance(time.Second)

	tok, err := g.Register("flood-watch", garnet.PermTrusted|garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	target := garnet.MustStreamID(5, 0)
	model := map[string][]garnet.Demand{
		"calm":  {{Target: target, Op: garnet.OpSetRate, Value: 200}},
		"flood": {{Target: target, Op: garnet.OpSetRate, Value: 4000}},
	}
	if err := g.RegisterStateModel(tok, model); err != nil {
		t.Fatal(err)
	}
	if err := g.ReportState(tok, "flood"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Second)
	if p, _ := n.StreamPeriod(0); p != 250*time.Millisecond {
		t.Fatalf("flood period = %v", p)
	}
	// Drive cycles so the predictor can answer.
	for i := 0; i < 3; i++ {
		if err := g.ReportState(tok, "calm"); err != nil {
			t.Fatal(err)
		}
		clock.Advance(10 * time.Second)
		if err := g.ReportState(tok, "flood"); err != nil {
			t.Fatal(err)
		}
		clock.Advance(10 * time.Second)
	}
	if err := g.ReportState(tok, "calm"); err != nil {
		t.Fatal(err)
	}
	p, ok, err := g.PredictNext(tok)
	if err != nil || !ok {
		t.Fatalf("PredictNext = %v %v", ok, err)
	}
	if p.Next != "flood" {
		t.Fatalf("prediction = %+v", p)
	}
}

func TestDerivedStreamFacade(t *testing.T) {
	g, clock := newTestDeployment(t)
	addThermometer(t, g, 6)

	tok, err := g.Register("pipeline", garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	// Level 1: mean of every 3 readings, republished as a derived stream.
	derived, err := g.NewDerivedStream(tok, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	agg := garnet.NewWindowAggregator("mean3", derived, 3, garnet.AggregateMean)
	if _, err := g.Subscribe(tok, garnet.Exact(garnet.MustStreamID(6, 0)), agg); err != nil {
		t.Fatal(err)
	}
	// Level 2: recorder on the derived stream.
	rec := garnet.NewRecorder("l2", 32)
	if _, err := g.Subscribe(tok, garnet.Exact(derived.Stream()), rec); err != nil {
		t.Fatal(err)
	}
	g.Start()
	clock.Advance(9 * time.Second)

	if rec.Count() != 3 {
		t.Fatalf("derived deliveries = %d, want 3", rec.Count())
	}
	last, _ := rec.Last()
	v, _, ok := garnet.DecodeReading(last.Msg.Payload)
	if !ok || v != 21.5 {
		t.Fatalf("derived mean = %v", v)
	}
	if derived.Stream().Sensor() < garnet.VirtualSensorBase {
		t.Fatalf("derived stream %v not in virtual range", derived.Stream())
	}
}

func TestEndToEndEncryptedStream(t *testing.T) {
	g, clock := newTestDeployment(t)
	key := []byte("0123456789abcdef")
	stream := garnet.MustStreamID(7, 0)
	_, err := g.AddSensor(garnet.SensorConfig{
		ID:       7,
		Mobility: garnet.Static{P: garnet.Pt(100, 100)},
		TxRange:  300,
		Streams: []garnet.StreamConfig{{
			Index: 0,
			Sampler: garnet.EncryptingSampler(key, stream,
				garnet.FloatSampler(func(time.Time) float64 { return 4.2 })),
			Period:    time.Second,
			Enabled:   true,
			Encrypted: true,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tok, err := g.Register("secure-app", garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	rec := garnet.NewRecorder("secure", 32)
	if _, err := g.Subscribe(tok, garnet.Exact(stream), rec); err != nil {
		t.Fatal(err)
	}
	g.Start()
	clock.Advance(3 * time.Second)

	ds := rec.Deliveries()
	if len(ds) != 3 {
		t.Fatalf("deliveries = %d", len(ds))
	}
	ks := garnet.NewKeyStore()
	if err := ks.SetKey(stream, key); err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if !d.Msg.Flags.Has(garnet.FlagEncrypted) {
			t.Fatal("encrypted flag missing")
		}
		// Middleware delivered opaque bytes: naive decoding yields noise,
		// not the plaintext reading.
		if raw, _, ok := garnet.DecodeReading(d.Msg.Payload); ok && raw == 4.2 {
			t.Fatal("payload readable without key")
		}
		plain, err := ks.OpenMessage(d.Msg)
		if err != nil {
			t.Fatal(err)
		}
		v, _, ok := garnet.DecodeReading(plain)
		if !ok || v != 4.2 {
			t.Fatalf("decrypted reading = %v %v", v, ok)
		}
	}
}

func TestConstraintFacade(t *testing.T) {
	g, clock := newTestDeployment(t)
	n := addThermometer(t, g, 8)
	cons, err := garnet.ParseConstraints("rate<=2/s")
	if err != nil {
		t.Fatal(err)
	}
	g.SetConstraints(8, cons)
	g.Start()
	clock.Advance(time.Second)

	tok, err := g.Register("greedy", garnet.PermActuate)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := g.Actuate(tok, garnet.Demand{
		Target: garnet.MustStreamID(8, 0), Op: garnet.OpSetRate, Value: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Verdict != garnet.VerdictModified || dec.Effective != 2000 {
		t.Fatalf("decision = %+v", dec)
	}
	clock.Advance(5 * time.Second)
	if p, _ := n.StreamPeriod(0); p != 500*time.Millisecond {
		t.Fatalf("period = %v, want clamped 500ms", p)
	}
}

func TestSubscribeWithBacklog(t *testing.T) {
	g, clock := newTestDeployment(t)
	addThermometer(t, g, 9)
	g.Start()
	clock.Advance(7 * time.Second) // unclaimed: orphanage buffers 7

	tok, err := g.Register("late", garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	rec := garnet.NewRecorder("late", 64)
	_, replayed, err := g.SubscribeWithBacklog(tok, garnet.MustStreamID(9, 0), rec)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 7 {
		t.Fatalf("replayed = %d, want 7", replayed)
	}
	clock.Advance(3 * time.Second)
	// 7 backlog + 3 live, in order, no duplicates.
	ds := rec.Deliveries()
	if len(ds) != 10 {
		t.Fatalf("total deliveries = %d, want 10", len(ds))
	}
	for i, d := range ds {
		if d.Msg.Seq != garnet.Seq(i) {
			t.Fatalf("delivery %d has seq %d (order broken across handover)", i, d.Msg.Seq)
		}
	}
	// Location permission still enforced through this path.
	if _, _, err := g.SubscribeWithBacklog(tok, garnet.MustStreamID(9, garnet.LocationStreamIndex), rec); !errors.Is(err, garnet.ErrPermission) {
		t.Fatalf("location stream without permission: %v", err)
	}
}

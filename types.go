package garnet

import (
	"github.com/garnet-middleware/garnet/internal/actuation"
	"github.com/garnet-middleware/garnet/internal/consumer"
	"github.com/garnet-middleware/garnet/internal/coordinator"
	"github.com/garnet-middleware/garnet/internal/core"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/field"
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/location"
	"github.com/garnet-middleware/garnet/internal/orphanage"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/registry"
	"github.com/garnet-middleware/garnet/internal/resource"
	"github.com/garnet-middleware/garnet/internal/security"
	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/store"
	"github.com/garnet-middleware/garnet/internal/transmit"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// This file re-exports the library's vocabulary so downstream users never
// import internal packages directly. Aliases are used (rather than wrapper
// types) so values flow between the facade and the component accessors
// without conversion.

// Identifiers and wire format (Figure 2).
type (
	// SensorID identifies a sensor node (24 bits).
	SensorID = wire.SensorID
	// StreamIndex selects one of a sensor's internal streams (8 bits).
	StreamIndex = wire.StreamIndex
	// StreamID is the composite 32-bit stream identifier.
	StreamID = wire.StreamID
	// Seq is the 16-bit message sequence number.
	Seq = wire.Seq
	// Message is a decoded Garnet data message.
	Message = wire.Message
	// Flags is the message header flag set.
	Flags = wire.Flags
	// ControlMessage is a downlink stream-update request.
	ControlMessage = wire.ControlMessage
	// Op is a stream-update operation.
	Op = wire.Op
)

// Wire format constants (the paper's §1 capacity claims).
const (
	MaxSensorID         = wire.MaxSensorID
	MaxStreamIndex      = wire.MaxStreamIndex
	SeqCount            = wire.SeqCount
	MaxPayload          = wire.MaxPayload
	LocationStreamIndex = wire.LocationStreamIndex
)

// Header flags.
const (
	FlagUpdateAck     = wire.FlagUpdateAck
	FlagRelayed       = wire.FlagRelayed
	FlagFused         = wire.FlagFused
	FlagEncrypted     = wire.FlagEncrypted
	FlagLocationAware = wire.FlagLocationAware
)

// Stream-update operations.
const (
	OpSetRate         = wire.OpSetRate
	OpEnableStream    = wire.OpEnableStream
	OpDisableStream   = wire.OpDisableStream
	OpSetPayloadLimit = wire.OpSetPayloadLimit
	OpSetParam        = wire.OpSetParam
	OpPing            = wire.OpPing
)

// Identifier helpers.
var (
	NewStreamID   = wire.NewStreamID
	MustStreamID  = wire.MustStreamID
	ParseStreamID = wire.ParseStreamID
)

// Geometry and field.
type (
	// Point is a position on the deployment plane, metres.
	Point = geo.Point
	// Rect is an axis-aligned rectangle.
	Rect = geo.Rect
	// Mobility is a sensor movement model.
	Mobility = field.Mobility
	// Static is a motionless Mobility.
	Static = field.Static
	// Linear drifts at constant velocity (e.g. flow-borne sensors).
	Linear = field.Linear
	// Patrol loops over waypoints at constant speed.
	Patrol = field.Patrol
	// RandomWaypoint is the classic random-waypoint mobility model.
	RandomWaypoint = field.RandomWaypoint
)

// Geometry/field helpers.
var (
	Pt                = geo.Pt
	RectWH            = geo.RectWH
	GridPositions     = field.GridPositions
	RandomPositions   = field.RandomPositions
	NewRandomWaypoint = field.NewRandomWaypoint
)

// Clocks (the middleware is clock-agnostic; simulations use VirtualClock).
type (
	// Clock abstracts time.
	Clock = sim.Clock
	// RealClock is the wall clock.
	RealClock = sim.RealClock
	// VirtualClock is the deterministic simulation clock.
	VirtualClock = sim.VirtualClock
)

// NewVirtualClock creates a deterministic clock for simulations.
var NewVirtualClock = sim.NewVirtualClock

// Sensors.
type (
	// SensorConfig configures a sensor node.
	SensorConfig = sensor.Config
	// StreamConfig configures one internal stream of a node.
	StreamConfig = sensor.StreamConfig
	// Sampler produces stream payloads.
	Sampler = sensor.Sampler
	// EnergyParams models node energy costs.
	EnergyParams = sensor.EnergyParams
	// SensorNode is a simulated sensor/actuator.
	SensorNode = sensor.Node
	// Capability is a sensor capability set.
	Capability = sensor.Capability
	// RelayConfig enables §8 multi-hop relaying on a node.
	RelayConfig = sensor.RelayConfig
)

// Sensor capabilities.
const (
	CapReceive       = sensor.CapReceive
	CapLocationAware = sensor.CapLocationAware
)

// Sampler helpers and the scalar-reading payload convention.
var (
	ConstantSampler = sensor.ConstantSampler
	SizedSampler    = sensor.SizedSampler
	FloatSampler    = sensor.FloatSampler
	EncodeReading   = sensor.EncodeReading
	DecodeReading   = sensor.DecodeReading
)

// Fixed-network components.
type (
	// ReceiverConfig places one receiver.
	ReceiverConfig = receiver.Config
	// TransmitterConfig places one transmitter.
	TransmitterConfig = transmit.Config
	// RadioParams configures medium impairments (loss, jitter, corruption).
	RadioParams = radio.Params
)

// Subscriptions and delivery.
type (
	// Delivery is one reconstructed stream message.
	Delivery = filtering.Delivery
	// Consumer receives deliveries.
	Consumer = dispatch.Consumer
	// ConsumerFunc adapts a function to Consumer.
	ConsumerFunc = dispatch.ConsumerFunc
	// BatchConsumer receives coalesced delivery batches in async mode.
	BatchConsumer = dispatch.BatchConsumer
	// BatchConsumerFunc adapts a batch function to BatchConsumer.
	BatchConsumerFunc = dispatch.BatchConsumerFunc
	// Pattern selects streams for a subscription.
	Pattern = dispatch.Pattern
	// SubscriptionID identifies a subscription.
	SubscriptionID = dispatch.SubscriptionID
	// StreamInfo is a discovered stream.
	StreamInfo = dispatch.StreamInfo
	// OrphanInfo describes an unclaimed stream held by the Orphanage.
	OrphanInfo = orphanage.Info
	// StoreStats is the Stream Store's aggregate snapshot (retention,
	// eviction and replay accounting; part of Snapshot).
	StoreStats = store.Stats
	// StoreStreamStats describes one stream's retained window.
	StoreStreamStats = store.StreamStats
)

// Subscription pattern helpers.
var (
	Exact    = dispatch.Exact
	BySensor = dispatch.BySensor
	All      = dispatch.All
	Where    = dispatch.Where
)

// Registry: identity, tokens and permissions.
type (
	// Token is a consumer bearer credential.
	Token = registry.Token
	// Permission is a consumer capability set.
	Permission = registry.Permission
	// Identity is a registered consumer.
	Identity = registry.Identity
)

// Permissions.
const (
	PermSubscribe = registry.PermSubscribe
	PermActuate   = registry.PermActuate
	PermHint      = registry.PermHint
	PermLocation  = registry.PermLocation
	PermTrusted   = registry.PermTrusted
)

// Resource management.
type (
	// Demand is a standing stream-setting request.
	Demand = resource.Demand
	// Decision is an admission-control outcome.
	Decision = resource.Decision
	// Constraints codifies sensor limits.
	Constraints = resource.Constraints
	// Policy selects the conflict-mediation policy.
	Policy = resource.Policy
	// DemandClass groups competing operations.
	DemandClass = resource.Class
	// Verdict classifies a Decision.
	Verdict = resource.Verdict
)

// Policies, classes and verdicts.
const (
	PolicyMostDemanding  = resource.PolicyMostDemanding
	PolicyLeastDemanding = resource.PolicyLeastDemanding
	PolicyPriority       = resource.PolicyPriority
	PolicyFirstComeDeny  = resource.PolicyFirstComeDeny

	ClassRate    = resource.ClassRate
	ClassEnable  = resource.ClassEnable
	ClassPayload = resource.ClassPayload

	VerdictApproved = resource.VerdictApproved
	VerdictModified = resource.VerdictModified
	VerdictDenied   = resource.VerdictDenied
)

// ParseConstraints parses the textual sensor-constraint language.
var ParseConstraints = resource.ParseConstraints

// Location.
type (
	// Estimate is the Location Service's belief about a sensor position.
	Estimate = location.Estimate
)

// DecodeEstimate parses a location-stream payload.
var DecodeEstimate = location.DecodeEstimate

// Actuation.
type (
	// ActuationResult reports how an issued request ended.
	ActuationResult = actuation.Result
	// ActuationOutcome is the terminal state of a request.
	ActuationOutcome = actuation.Outcome
)

// Actuation outcomes.
const (
	OutcomeAcked      = actuation.OutcomeAcked
	OutcomeExpired    = actuation.OutcomeExpired
	OutcomeCancelled  = actuation.OutcomeCancelled
	OutcomeSuperseded = actuation.OutcomeSuperseded
)

// Super Coordinator.
type (
	// CoordinatorMode selects reactive or predictive coordination.
	CoordinatorMode = coordinator.Mode
	// Prediction is an anticipated consumer state change.
	Prediction = coordinator.Prediction
	// ConsumerState is one entry of the coordinator's global view.
	ConsumerState = coordinator.ConsumerState
)

// Coordination modes.
const (
	ModeReactive   = coordinator.ModeReactive
	ModePredictive = coordinator.ModePredictive
)

// Consumer framework.
type (
	// Recorder stores received deliveries.
	Recorder = consumer.Recorder
	// DerivedStream publishes a derived data stream.
	DerivedStream = consumer.DerivedStream
	// WindowAggregator folds reading windows into aggregates.
	WindowAggregator = consumer.WindowAggregator
	// ThresholdDetector fires events on threshold crossings.
	ThresholdDetector = consumer.ThresholdDetector
	// Event is a threshold crossing.
	Event = consumer.Event
	// Fusion merges the latest readings of several streams.
	Fusion = consumer.Fusion
	// AggregateKind selects a window aggregate.
	AggregateKind = consumer.AggregateKind
)

// Aggregates and the virtual (derived) sensor-id space.
const (
	AggregateMean = consumer.AggregateMean
	AggregateMin  = consumer.AggregateMin
	AggregateMax  = consumer.AggregateMax

	VirtualSensorBase = consumer.VirtualSensorBase
)

// Consumer helpers.
var (
	NewRecorder          = consumer.NewRecorder
	NewWindowAggregator  = consumer.NewWindowAggregator
	NewThresholdDetector = consumer.NewThresholdDetector
	NewFusion            = consumer.NewFusion
)

// End-to-end security.
type (
	// KeyStore holds per-stream payload keys.
	KeyStore = security.KeyStore
)

// Sealing helpers.
var (
	Seal              = security.Seal
	OpenPayload       = security.Open
	NewKeyStore       = security.NewKeyStore
	EncryptingSampler = security.EncryptingSampler
)

// Snapshot aggregates every service's statistics.
type Snapshot = core.Snapshot

// Errors surfaced through the facade.
var (
	ErrPermission    = registry.ErrPermission
	ErrBadToken      = registry.ErrBadToken
	ErrNameTaken     = registry.ErrNameTaken
	ErrUnknownSensor = location.ErrUnknownSensor
	ErrAuth          = security.ErrAuth
)

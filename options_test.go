package garnet_test

import (
	"sync"
	"testing"
	"time"

	garnet "github.com/garnet-middleware/garnet"
)

// Options coverage: each With* option must observably change deployment
// behaviour through the public API.

func TestWithFloodingReplicatorUsesEveryTransmitter(t *testing.T) {
	run := func(opt garnet.Option) int64 {
		clock := garnet.NewVirtualClock(epoch)
		opts := []garnet.Option{garnet.WithClock(clock), garnet.WithSecret([]byte("s"))}
		if opt != nil {
			opts = append(opts, opt)
		}
		g := garnet.New(opts...)
		defer g.Stop()
		// Transmitters spread along a strip; sensor localised at one end.
		for i := 0; i < 4; i++ {
			pos := garnet.Pt(float64(i)*400, 0)
			g.AddReceiver(garnet.ReceiverConfig{Position: pos, Radius: 250})
			g.AddTransmitter(garnet.TransmitterConfig{Position: pos, Range: 250})
		}
		if _, err := g.AddSensor(garnet.SensorConfig{
			ID: 1, Capabilities: garnet.CapReceive,
			Mobility: garnet.Static{P: garnet.Pt(100, 0)}, TxRange: 250,
			Streams: []garnet.StreamConfig{{
				Index: 0, Sampler: garnet.SizedSampler(4), Period: time.Second, Enabled: true,
			}},
		}); err != nil {
			t.Fatal(err)
		}
		tok, err := g.Register("op", garnet.PermActuate)
		if err != nil {
			t.Fatal(err)
		}
		g.Start()
		clock.Advance(3 * time.Second)
		if err := g.Ping(tok, garnet.MustStreamID(1, 0), nil); err != nil {
			t.Fatal(err)
		}
		clock.Advance(3 * time.Second)
		return g.Stats().Replicator.Broadcasts
	}
	flooded := run(garnet.WithFloodingReplicator())
	targeted := run(garnet.WithTargetedReplicator(1.5))
	if flooded != 4 {
		t.Fatalf("flooding used %d transmitters, want 4", flooded)
	}
	if targeted >= flooded {
		t.Fatalf("targeted (%d) not cheaper than flooding (%d)", targeted, flooded)
	}
}

// TestWithFieldGridDeliveryInvariant: the medium's grid cell size is a
// performance knob, never a semantics knob — the same deployment must
// deliver the same message count whatever cell size is configured.
func TestWithFieldGridDeliveryInvariant(t *testing.T) {
	run := func(opts ...garnet.Option) int64 {
		clock := garnet.NewVirtualClock(epoch)
		all := append([]garnet.Option{garnet.WithClock(clock), garnet.WithSecret([]byte("s"))}, opts...)
		g := garnet.New(all...)
		defer g.Stop()
		for i := 0; i < 6; i++ {
			g.AddReceiver(garnet.ReceiverConfig{Position: garnet.Pt(float64(i)*80, 0), Radius: 120})
		}
		if _, err := g.AddSensor(garnet.SensorConfig{
			ID: 1, Mobility: garnet.Linear{Start: garnet.Pt(0, 0), Velocity: garnet.Pt(20, 0), Epoch: epoch},
			TxRange: 150,
			Streams: []garnet.StreamConfig{{
				Index: 0, Sampler: garnet.SizedSampler(8), Period: time.Second, Enabled: true,
			}},
		}); err != nil {
			t.Fatal(err)
		}
		g.Start()
		clock.Advance(20 * time.Second)
		return g.Stats().Filter.Delivered
	}
	def := run()
	coarse := run(garnet.WithFieldGrid(500))
	fine := run(garnet.WithFieldGrid(10))
	if def == 0 {
		t.Fatal("deployment delivered nothing; invariant test is vacuous")
	}
	if coarse != def || fine != def {
		t.Fatalf("accepted counts diverge across grid cells: default=%d coarse=%d fine=%d", def, coarse, fine)
	}
}

func TestWithAsyncDispatchDeliversViaWorkers(t *testing.T) {
	clock := garnet.NewVirtualClock(epoch)
	g := garnet.New(
		garnet.WithClock(clock),
		garnet.WithSecret([]byte("s")),
		garnet.WithAsyncDispatch(64),
	)
	g.AddReceiver(garnet.ReceiverConfig{Position: garnet.Pt(0, 0), Radius: 100})
	if _, err := g.AddSensor(garnet.SensorConfig{
		ID: 1, Mobility: garnet.Static{P: garnet.Pt(1, 0)}, TxRange: 100,
		Streams: []garnet.StreamConfig{{
			Index: 0, Sampler: garnet.SizedSampler(4), Period: time.Second, Enabled: true,
		}},
	}); err != nil {
		t.Fatal(err)
	}
	tok, err := g.Register("app", garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := 0
	if _, err := g.Subscribe(tok, garnet.All(), &garnet.ConsumerFunc{
		ConsumerName: "async-app",
		Fn: func(garnet.Delivery) {
			mu.Lock()
			got++
			mu.Unlock()
		},
	}); err != nil {
		t.Fatal(err)
	}
	g.Start()
	clock.Advance(10 * time.Second)
	g.Stop() // drains worker queues
	mu.Lock()
	defer mu.Unlock()
	if got != 10 {
		t.Fatalf("async deliveries = %d, want 10", got)
	}
}

func TestWithReorderWindowOrdersJitteredDeliveries(t *testing.T) {
	run := func(reorder bool) []garnet.Seq {
		clock := garnet.NewVirtualClock(epoch)
		opts := []garnet.Option{
			garnet.WithClock(clock),
			garnet.WithSecret([]byte("s")),
			// Heavy jitter so copies overtake each other in flight.
			garnet.WithRadio(garnet.RadioParams{DelayMin: 0, DelayMax: 800 * time.Millisecond, Seed: 5}),
		}
		if reorder {
			opts = append(opts, garnet.WithReorderWindow(time.Second))
		}
		g := garnet.New(opts...)
		defer g.Stop()
		g.AddReceiver(garnet.ReceiverConfig{Position: garnet.Pt(0, 0), Radius: 100})
		if _, err := g.AddSensor(garnet.SensorConfig{
			ID: 1, Mobility: garnet.Static{P: garnet.Pt(1, 0)}, TxRange: 100,
			Streams: []garnet.StreamConfig{{
				Index: 0, Sampler: garnet.SizedSampler(4), Period: 100 * time.Millisecond, Enabled: true,
			}},
		}); err != nil {
			t.Fatal(err)
		}
		tok, err := g.Register("app", garnet.PermSubscribe)
		if err != nil {
			t.Fatal(err)
		}
		var seqs []garnet.Seq
		if _, err := g.Subscribe(tok, garnet.All(), &garnet.ConsumerFunc{
			ConsumerName: "collector",
			Fn:           func(d garnet.Delivery) { seqs = append(seqs, d.Msg.Seq) },
		}); err != nil {
			t.Fatal(err)
		}
		g.Start()
		clock.Advance(20 * time.Second)
		g.Stop()
		return seqs
	}
	unordered := run(false)
	ordered := run(true)

	countInversions := func(seqs []garnet.Seq) int {
		n := 0
		for i := 1; i < len(seqs); i++ {
			if seqs[i].Less(seqs[i-1]) {
				n++
			}
		}
		return n
	}
	if countInversions(unordered) == 0 {
		t.Fatal("jitter produced no inversions — rig not stressing ordering")
	}
	if inv := countInversions(ordered); inv != 0 {
		t.Fatalf("reorder window left %d inversions", inv)
	}
	if len(ordered) < 190 {
		t.Fatalf("reordered run delivered only %d messages", len(ordered))
	}
}

func TestWithActuationRetrySurvivesLoss(t *testing.T) {
	clock := garnet.NewVirtualClock(epoch)
	g := garnet.New(
		garnet.WithClock(clock),
		garnet.WithSecret([]byte("s")),
		garnet.WithRadio(garnet.RadioParams{LossProb: 0.7, Seed: 13}),
		garnet.WithActuationRetry(500*time.Millisecond, 30),
	)
	defer g.Stop()
	g.AddReceiver(garnet.ReceiverConfig{Position: garnet.Pt(0, 0), Radius: 100})
	g.AddTransmitter(garnet.TransmitterConfig{Position: garnet.Pt(0, 0), Range: 100})
	if _, err := g.AddSensor(garnet.SensorConfig{
		ID: 1, Capabilities: garnet.CapReceive,
		Mobility: garnet.Static{P: garnet.Pt(1, 0)}, TxRange: 100,
		Streams: []garnet.StreamConfig{{
			Index: 0, Sampler: garnet.SizedSampler(4), Period: time.Second, Enabled: true,
		}},
	}); err != nil {
		t.Fatal(err)
	}
	tok, err := g.Register("op", garnet.PermActuate)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	clock.Advance(time.Second)
	acked := false
	if err := g.Ping(tok, garnet.MustStreamID(1, 0), func(ok bool) { acked = ok }); err != nil {
		t.Fatal(err)
	}
	clock.Advance(30 * time.Second)
	if !acked {
		t.Fatalf("ping never acked despite retries: %+v", g.Stats().Actuation)
	}
	if g.Stats().Actuation.Retries == 0 {
		t.Fatal("no retries at 70% loss — loss injection broken")
	}
}

func TestRelayThroughPublicAPI(t *testing.T) {
	clock := garnet.NewVirtualClock(epoch)
	g := garnet.New(garnet.WithClock(clock), garnet.WithSecret([]byte("s")))
	defer g.Stop()
	g.AddReceiver(garnet.ReceiverConfig{Position: garnet.Pt(0, 0), Radius: 150})
	if _, err := g.AddSensor(garnet.SensorConfig{
		ID: 1, Mobility: garnet.Static{P: garnet.Pt(260, 0)}, TxRange: 160,
		Streams: []garnet.StreamConfig{{
			Index: 0, Sampler: garnet.SizedSampler(4), Period: time.Second, Enabled: true,
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddSensor(garnet.SensorConfig{
		ID: 2, Mobility: garnet.Static{P: garnet.Pt(130, 0)}, TxRange: 160,
		Relay: garnet.RelayConfig{Enabled: true},
	}); err != nil {
		t.Fatal(err)
	}
	tok, err := g.Register("app", garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	rec := garnet.NewRecorder("app", 16)
	if _, err := g.Subscribe(tok, garnet.BySensor(1), rec); err != nil {
		t.Fatal(err)
	}
	g.Start()
	clock.Advance(3 * time.Second)
	if rec.Count() != 3 {
		t.Fatalf("relayed deliveries = %d, want 3", rec.Count())
	}
	last, _ := rec.Last()
	if !last.Msg.Flags.Has(garnet.FlagRelayed) {
		t.Fatal("delivery not marked relayed")
	}
}

func TestWithDispatchShardsAndBatchSize(t *testing.T) {
	clock := garnet.NewVirtualClock(epoch)
	g := garnet.New(
		garnet.WithClock(clock),
		garnet.WithSecret([]byte("s")),
		garnet.WithDispatchShards(4),
		garnet.WithAsyncDispatch(64),
		garnet.WithBatchSize(8),
	)
	g.AddReceiver(garnet.ReceiverConfig{Position: garnet.Pt(0, 0), Radius: 100})
	// Two sensors → streams land in (very likely distinct) shards; either
	// way both must be delivered and the shard count must be observable.
	for id := garnet.SensorID(1); id <= 2; id++ {
		if _, err := g.AddSensor(garnet.SensorConfig{
			ID: id, Mobility: garnet.Static{P: garnet.Pt(float64(id), 0)}, TxRange: 100,
			Streams: []garnet.StreamConfig{{
				Index: 0, Sampler: garnet.SizedSampler(4), Period: time.Second, Enabled: true,
			}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	tok, err := g.Register("app", garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var batched, total int
	if _, err := g.Subscribe(tok, garnet.All(), &garnet.BatchConsumerFunc{
		ConsumerName: "batch-app",
		Fn: func(ds []garnet.Delivery) {
			mu.Lock()
			batched++
			total += len(ds)
			mu.Unlock()
		},
	}); err != nil {
		t.Fatal(err)
	}
	g.Start()
	clock.Advance(10 * time.Second)
	g.Stop()
	mu.Lock()
	defer mu.Unlock()
	if total != 20 {
		t.Fatalf("batched deliveries = %d, want 20 (2 sensors × 10 ticks)", total)
	}
	if batched > total {
		t.Fatalf("ConsumeBatch called %d times for %d deliveries", batched, total)
	}
	if shards := g.Stats().Dispatch.Shards; shards != 4 {
		t.Fatalf("Stats.Dispatch.Shards = %d, want 4", shards)
	}
}

func TestWithFilterShards(t *testing.T) {
	run := func(shards int, opts ...garnet.Option) garnet.Snapshot {
		clock := garnet.NewVirtualClock(epoch)
		opts = append([]garnet.Option{garnet.WithClock(clock), garnet.WithSecret([]byte("s"))}, opts...)
		g := garnet.New(opts...)
		defer g.Stop()
		// Two overlapping receivers duplicate every transmission; the
		// filter must reconstruct each stream regardless of sharding.
		g.AddReceiver(garnet.ReceiverConfig{Position: garnet.Pt(0, 0), Radius: 100})
		g.AddReceiver(garnet.ReceiverConfig{Position: garnet.Pt(1, 0), Radius: 100})
		for id := garnet.SensorID(1); id <= 3; id++ {
			if _, err := g.AddSensor(garnet.SensorConfig{
				ID: id, Mobility: garnet.Static{P: garnet.Pt(float64(id), 0)}, TxRange: 100,
				Streams: []garnet.StreamConfig{{
					Index: 0, Sampler: garnet.SizedSampler(4), Period: time.Second, Enabled: true,
				}},
			}); err != nil {
				t.Fatal(err)
			}
		}
		g.Start()
		clock.Advance(10 * time.Second)
		g.Stop()
		st := g.Stats()
		if st.Filter.Shards != shards {
			t.Fatalf("Stats.Filter.Shards = %d, want %d", st.Filter.Shards, shards)
		}
		return st
	}
	sharded := run(4, garnet.WithFilterShards(4))
	single := run(1, garnet.WithFilterShards(1))
	// Same deployment, same virtual schedule: the sharded filter must
	// make identical accept/duplicate decisions to the single table.
	if sharded.Filter.Delivered != single.Filter.Delivered ||
		sharded.Filter.Duplicates != single.Filter.Duplicates ||
		sharded.Filter.Received != single.Filter.Received {
		t.Fatalf("sharded filter stats %+v diverge from single-table %+v", sharded.Filter, single.Filter)
	}
	if sharded.Filter.Delivered != 30 { // 3 sensors × 10 ticks
		t.Fatalf("Delivered = %d, want 30", sharded.Filter.Delivered)
	}
	if sharded.Filter.Duplicates != 30 { // second overlapping receiver
		t.Fatalf("Duplicates = %d, want 30", sharded.Filter.Duplicates)
	}
}

func TestWithControlShardsDecisionInvariant(t *testing.T) {
	type step struct {
		dec garnet.Decision
		err bool
	}
	run := func(opts ...garnet.Option) ([]step, garnet.Snapshot) {
		clock := garnet.NewVirtualClock(epoch)
		opts = append([]garnet.Option{garnet.WithClock(clock), garnet.WithSecret([]byte("s"))}, opts...)
		g := garnet.New(opts...)
		defer g.Stop()
		toks := make([]garnet.Token, 3)
		for i := range toks {
			tok, err := g.Register([]string{"a", "b", "c"}[i], garnet.PermActuate)
			if err != nil {
				t.Fatal(err)
			}
			toks[i] = tok
		}
		g.SetConstraints(3, garnet.Constraints{MaxRateMilliHz: 1500})
		var steps []step
		for i := 0; i < 24; i++ {
			target := garnet.MustStreamID(garnet.SensorID(i%6), 0)
			dec, err := g.Actuate(toks[i%3], garnet.Demand{
				Target: target, Op: garnet.OpSetRate, Value: uint32(500 + i*100),
			})
			steps = append(steps, step{dec: dec, err: err != nil})
		}
		for i := 0; i < 6; i++ {
			target := garnet.MustStreamID(garnet.SensorID(i), 0)
			dec, ok, err := g.WithdrawDemand(toks[i%3], target, garnet.ClassRate)
			steps = append(steps, step{dec: dec, err: err != nil || !ok})
		}
		return steps, g.Stats()
	}
	refSteps, refStats := run(garnet.WithControlShards(1))
	for _, shards := range []int{4, 16} {
		gotSteps, gotStats := run(garnet.WithControlShards(shards))
		if len(gotSteps) != len(refSteps) {
			t.Fatalf("shards=%d: %d steps, want %d", shards, len(gotSteps), len(refSteps))
		}
		for i := range gotSteps {
			got, ref := gotSteps[i], refSteps[i]
			if got.err != ref.err || got.dec.Verdict != ref.dec.Verdict ||
				got.dec.Effective != ref.dec.Effective || got.dec.Changed != ref.dec.Changed {
				t.Fatalf("shards=%d step %d: %+v, single-lock gave %+v", shards, i, got, ref)
			}
		}
		if gotStats.Resource.Submitted != refStats.Resource.Submitted ||
			gotStats.Resource.Approved != refStats.Resource.Approved ||
			gotStats.Resource.Modified != refStats.Resource.Modified ||
			gotStats.Resource.Withdrawals != refStats.Resource.Withdrawals ||
			gotStats.Actuation.Issued != refStats.Actuation.Issued {
			t.Fatalf("shards=%d: stats %+v / %+v diverge from single-lock %+v / %+v",
				shards, gotStats.Resource, gotStats.Actuation, refStats.Resource, refStats.Actuation)
		}
		if gotStats.Resource.Shards != shards {
			t.Fatalf("Stats.Resource.Shards = %d, want %d", gotStats.Resource.Shards, shards)
		}
	}
}

func TestWithActuationCoalescingCollapsesBursts(t *testing.T) {
	clock := garnet.NewVirtualClock(epoch)
	g := garnet.New(
		garnet.WithClock(clock),
		garnet.WithSecret([]byte("s")),
		garnet.WithControlShards(4),
		garnet.WithActuationCoalescing(100*time.Millisecond),
		// Applied after coalescing: must compose, not clobber.
		garnet.WithActuationRetry(time.Hour, 1),
	)
	defer g.Stop()
	tok, err := g.Register("op", garnet.PermActuate)
	if err != nil {
		t.Fatal(err)
	}
	target := garnet.MustStreamID(1, 0)
	for i := 0; i < 5; i++ {
		// Every flip changes the effective setting, so each one reaches
		// the actuation service.
		if _, err := g.Actuate(tok, garnet.Demand{
			Target: target, Op: garnet.OpSetRate, Value: uint32(1000 + i*500),
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := g.Stats().Actuation
	if st.Issued != 1 || st.Coalesced != 4 {
		t.Fatalf("burst: actuation stats %+v, want 1 issued / 4 coalesced", st)
	}
	clock.Advance(100 * time.Millisecond)
	st = g.Stats().Actuation
	if st.Issued != 2 {
		t.Fatalf("trailing actuation missing: %+v", st)
	}
}

package garnet_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	garnet "github.com/garnet-middleware/garnet"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// TestReplayClaimedStream pins the motivating scenario of the Stream
// Store: a late subscriber to an already-claimed stream recovers history.
// Before the store, only *unclaimed* (orphaned) streams had any backlog.
func TestReplayClaimedStream(t *testing.T) {
	g, clock := newTestDeployment(t)
	addThermometer(t, g, 1)
	tok, err := g.Register("app", garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	// The stream is claimed from the start: an early subscriber exists.
	early := garnet.NewRecorder("early", 64)
	if _, err := g.Subscribe(tok, garnet.Exact(garnet.MustStreamID(1, 0)), early); err != nil {
		t.Fatal(err)
	}
	g.Start()
	clock.Advance(8 * time.Second)

	// The old world: the orphanage holds nothing (the stream is claimed),
	// so a late joiner would get zero history.
	if orphans, _ := g.Orphans(tok); len(orphans) != 0 {
		t.Fatalf("claimed stream ended up orphaned: %v", orphans)
	}

	backlog, err := g.Replay(tok, garnet.MustStreamID(1, 0), 0, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog) != 8 {
		t.Fatalf("replayed %d, want 8", len(backlog))
	}
	for i, d := range backlog {
		if d.Msg.Seq != garnet.Seq(i) || d.StoreSeq == 0 {
			t.Fatalf("entry %d: seq %d storeSeq %d", i, d.Msg.Seq, d.StoreSeq)
		}
	}

	// SubscribeWithReplay: the late joiner catches up and then rides live.
	late := garnet.NewRecorder("late", 64)
	_, replayed, err := g.SubscribeWithReplay(tok, garnet.MustStreamID(1, 0), 0, late)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 8 {
		t.Fatalf("replayed = %d, want 8", replayed)
	}
	clock.Advance(3 * time.Second)
	ds := late.Deliveries()
	if len(ds) != 11 {
		t.Fatalf("late consumer saw %d, want 11", len(ds))
	}
	for i, d := range ds {
		if d.Msg.Seq != garnet.Seq(i) {
			t.Fatalf("delivery %d has seq %d (catch-up order broken)", i, d.Msg.Seq)
		}
	}
}

func TestLatestValueAndStoreStats(t *testing.T) {
	g, clock := newTestDeployment(t)
	addThermometer(t, g, 2)
	tok, err := g.Register("app", garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()

	if _, ok, err := g.LatestValue(tok, garnet.MustStreamID(2, 0)); err != nil || ok {
		t.Fatalf("pre-traffic LatestValue = ok %v err %v", ok, err)
	}
	clock.Advance(5 * time.Second)
	d, ok, err := g.LatestValue(tok, garnet.MustStreamID(2, 0))
	if err != nil || !ok {
		t.Fatalf("LatestValue = ok %v err %v", ok, err)
	}
	if d.Msg.Seq != 4 {
		t.Fatalf("latest seq = %d, want 4", d.Msg.Seq)
	}
	st := g.Stats().Store
	if st.Appended != 5 || st.RetainedMessages != 5 || st.Streams != 1 {
		t.Fatalf("store stats = %+v", st)
	}

	// Permissions: replay APIs refuse tokens without PermSubscribe, and
	// the location stream needs PermLocation.
	if _, _, err := g.LatestValue(garnet.Token("bogus"), garnet.MustStreamID(2, 0)); err == nil {
		t.Fatal("bogus token accepted")
	}
	if _, err := g.Replay(tok, garnet.MustStreamID(2, garnet.LocationStreamIndex), 0, ^uint64(0)); !errors.Is(err, garnet.ErrPermission) {
		t.Fatalf("location replay without permission: %v", err)
	}
	if _, _, err := g.SubscribeWithReplay(tok, garnet.MustStreamID(2, garnet.LocationStreamIndex), 0, garnet.NewRecorder("x", 1)); !errors.Is(err, garnet.ErrPermission) {
		t.Fatalf("location subscribe-with-replay without permission: %v", err)
	}
}

// TestStoreRetentionOption pins WithStoreRetention: the count bound is
// floored to the Orphanage capacity (so claims always find their window)
// while the byte and age bounds cap what Replay can recover.
func TestStoreRetentionOption(t *testing.T) {
	g, clock := newTestDeployment(t,
		garnet.WithStoreRetention(4, 0, 0), garnet.WithStoreShards(4))
	addThermometer(t, g, 3)
	tok, err := g.Register("app", garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	clock.Advance(10 * time.Second)
	backlog, err := g.Replay(tok, garnet.MustStreamID(3, 0), 0, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	// MaxMessages is floored to the orphanage capacity (128) per the
	// option contract, so all 10 remain despite the nominal bound of 4.
	if len(backlog) != 10 {
		t.Fatalf("default-floored retention kept %d, want 10", len(backlog))
	}

	// An age bound genuinely limits the window: only deliveries younger
	// than 3 s (relative to the newest append) survive.
	g2, clock2 := newTestDeployment(t, garnet.WithStoreRetention(0, 0, 3*time.Second))
	addThermometer(t, g2, 3)
	tok2, err := g2.Register("app", garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	g2.Start()
	clock2.Advance(10 * time.Second)
	backlog2, err := g2.Replay(tok2, garnet.MustStreamID(3, 0), 0, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog2) != 4 { // ages 0..3 s inclusive survive the cutoff
		t.Fatalf("age-bounded retention kept %d, want 4", len(backlog2))
	}
	if st := g2.Stats().Store; st.EvictedAge != 6 {
		t.Fatalf("store stats = %+v, want 6 age evictions", st)
	}
}

// TestSubscribeWithBacklogAsyncOrdering is the facade-level regression
// for the historical replay/live interleaving race: under an async
// dispatcher, receptions keep flowing while a late joiner claims the
// orphan backlog through SubscribeWithBacklog. Every delivery the
// consumer sees must be unique and in ascending store-sequence order.
// Run under -race in CI.
func TestSubscribeWithBacklogAsyncOrdering(t *testing.T) {
	const backlog = 100
	const live = 1500
	// The queue is sized so overflow can never fire no matter how the
	// scheduler interleaves the drainer with the publisher: nothing the
	// port admits may be lost.
	g := garnet.New(
		garnet.WithSecret([]byte("test-secret")),
		garnet.WithAsyncDispatch(2*(backlog+live)),
	)
	t.Cleanup(g.Stop)
	g.Start()
	tok, err := g.Register("late", garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	stream := garnet.MustStreamID(11, 0)
	inject := func(seq int) {
		g.Core().InjectReception(receiver.Reception{
			Msg:      wire.Message{Stream: stream, Seq: wire.Seq(seq)},
			Receiver: "rx", RSSI: 1, At: epoch.Add(time.Duration(seq) * time.Millisecond),
		})
	}
	for seq := 0; seq < backlog; seq++ {
		inject(seq)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for seq := backlog; seq < backlog+live; seq++ {
			inject(seq)
		}
	}()

	var mu sync.Mutex
	var seqs []uint64
	rec := &garnet.ConsumerFunc{ConsumerName: "late", Fn: func(d garnet.Delivery) {
		mu.Lock()
		seqs = append(seqs, d.StoreSeq)
		mu.Unlock()
	}}
	_, replayed, err := g.SubscribeWithBacklog(tok, stream, rec)
	if err != nil {
		t.Fatal(err)
	}
	if replayed < backlog {
		t.Fatalf("replayed %d, want at least %d", replayed, backlog)
	}
	<-done
	g.Stop() // drain the async port

	mu.Lock()
	defer mu.Unlock()
	seen := make(map[uint64]bool, len(seqs))
	for i, s := range seqs {
		if seen[s] {
			t.Fatalf("duplicate delivery of store seq %d", s)
		}
		seen[s] = true
		if i > 0 && s <= seqs[i-1] {
			t.Fatalf("replay/live inversion at %d: %d after %d", i, s, seqs[i-1])
		}
	}
	// Losses: messages published before the claim may legitimately fall
	// out of the bounded orphan window when the publisher outruns the
	// subscribe — that is retention policy, not delivery. What the
	// dispatcher guarantees, and what must hold on every schedule: the
	// full replay batch arrives, then every live message from the claimed
	// window onward, gap-free through the end of the stream.
	if len(seqs) == 0 {
		t.Fatal("consumer saw nothing")
	}
	if len(seqs) < replayed {
		t.Fatalf("consumer saw %d < %d replayed messages", len(seqs), replayed)
	}
	first, last := seqs[0], seqs[len(seqs)-1]
	if got := uint64(len(seqs)); got != last-first+1 {
		t.Fatalf("gap after the claimed window: %d deliveries spanning [%d, %d]", got, first, last)
	}
	end, ok := g.Core().Store().LastSeq(stream)
	if !ok || last != end {
		t.Fatalf("consumer stopped at store seq %d, stream ends at %d (ok=%v)", last, end, ok)
	}
}

// TestSubscribeWithBacklogFailurePreservesBacklog pins the claim
// ordering: a failed subscription (nil consumer) must not destroy the
// orphan backlog — a retry still recovers it.
func TestSubscribeWithBacklogFailurePreservesBacklog(t *testing.T) {
	g, clock := newTestDeployment(t)
	addThermometer(t, g, 9)
	g.Start()
	clock.Advance(5 * time.Second) // unclaimed: orphanage buffers 5
	tok, err := g.Register("late", garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.SubscribeWithBacklog(tok, garnet.MustStreamID(9, 0), nil); err == nil {
		t.Fatal("nil consumer accepted")
	}
	if orphans, _ := g.Orphans(tok); len(orphans) != 1 || orphans[0].Buffered != 5 {
		t.Fatalf("backlog lost after failed subscribe: %+v", orphans)
	}
	rec := garnet.NewRecorder("late", 64)
	if _, replayed, err := g.SubscribeWithBacklog(tok, garnet.MustStreamID(9, 0), rec); err != nil || replayed != 5 {
		t.Fatalf("retry replayed %d err %v, want 5", replayed, err)
	}
}

// TestStoreCompressionOption pins WithStoreCompression end to end: with
// the cold tier on, deliveries the age bound would have dropped are
// sealed into compressed blocks instead, and Replay and
// SubscribeWithReplay recover the full history transparently — the
// retention bounds become a working-set knob, not a history limit.
func TestStoreCompressionOption(t *testing.T) {
	g, clock := newTestDeployment(t,
		garnet.WithStoreRetention(0, 0, 3*time.Second),
		garnet.WithStoreCompression("auto", 1<<20))
	addThermometer(t, g, 4)
	tok, err := g.Register("app", garnet.PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	clock.Advance(200 * time.Second)

	backlog, err := g.Replay(tok, garnet.MustStreamID(4, 0), 0, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	// Without compression the 3 s age bound keeps 4 (see
	// TestStoreRetentionOption); with it, everything is still there.
	if len(backlog) != 200 {
		t.Fatalf("compressed store replayed %d, want all 200", len(backlog))
	}
	for i, d := range backlog {
		if d.Msg.Seq != garnet.Seq(i) {
			t.Fatalf("entry %d has seq %d (cold → hot stitching broke order)", i, d.Msg.Seq)
		}
	}

	st := g.Stats().Store
	if st.Codec != "auto" || st.SealedBlocks == 0 || st.ColdBytes == 0 {
		t.Fatalf("cold tier never engaged: %+v", st)
	}
	if st.EvictedAge != 0 || st.RetainedMessages != 200 {
		t.Fatalf("sealing lost history: %+v", st)
	}
	if st.ColdRawBytes <= st.ColdBytes {
		t.Fatalf("constant series did not compress: %d raw vs %d cold B", st.ColdRawBytes, st.ColdBytes)
	}

	// A late joiner catches up through the cold tier and rides live.
	late := garnet.NewRecorder("late", 256)
	_, replayed, err := g.SubscribeWithReplay(tok, garnet.MustStreamID(4, 0), 0, late)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 200 {
		t.Fatalf("SubscribeWithReplay caught up %d, want 200", replayed)
	}
}

// TestStoreCompressionBadCodecPanics pins the option contract: a typo in
// the codec name must fail loudly at construction, not silently disable
// retention history.
func TestStoreCompressionBadCodecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown codec name did not panic")
		}
	}()
	garnet.New(garnet.WithSecret([]byte("x")), garnet.WithStoreCompression("zstd", 0))
}

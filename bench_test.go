// Benchmarks regenerating every paper artifact (see DESIGN.md §2): one
// testing.B target per figure/claim table, each executing the same code
// path as `garnet-bench -experiment <id>`, plus micro-benchmarks for the
// hot paths (wire codec, duplicate filter, dispatch fan-out, payload
// sealing).
//
// Run with: go test -bench=. -benchmem
package garnet_test

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	garnet "github.com/garnet-middleware/garnet"
	"github.com/garnet-middleware/garnet/internal/actuation"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/experiments"
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/resource"
	"github.com/garnet-middleware/garnet/internal/security"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Seed: 42, Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, cfg); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// One bench per paper artifact.

func BenchmarkF1EndToEndPipeline(b *testing.B)     { benchExperiment(b, "F1") }
func BenchmarkF2WireCodec(b *testing.B)            { benchExperiment(b, "F2") }
func BenchmarkC1CapacityLimits(b *testing.B)       { benchExperiment(b, "C1") }
func BenchmarkE1DuplicateElimination(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2DispatchFanout(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3SharedVsDirect(b *testing.B)       { benchExperiment(b, "E3") }
func BenchmarkE4RETRIComparison(b *testing.B)      { benchExperiment(b, "E4") }
func BenchmarkE5LocationInference(b *testing.B)    { benchExperiment(b, "E5") }
func BenchmarkE6TargetedActuation(b *testing.B)    { benchExperiment(b, "E6") }
func BenchmarkE7ConflictMediation(b *testing.B)    { benchExperiment(b, "E7") }
func BenchmarkE8PredictiveCoordination(b *testing.B) {
	benchExperiment(b, "E8")
}
func BenchmarkE9Scalability(b *testing.B)          { benchExperiment(b, "E9") }
func BenchmarkE10Orphanage(b *testing.B)           { benchExperiment(b, "E10") }
func BenchmarkE11MultiLevelConsumers(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkE12ReturnPathValue(b *testing.B)     { benchExperiment(b, "E12") }

// Micro-benchmarks for the hot paths.

func BenchmarkWireEncode(b *testing.B) {
	for _, size := range []int{0, 16, 256, 4096} {
		b.Run(fmt.Sprintf("payload=%d", size), func(b *testing.B) {
			msg := wire.Message{
				Stream:  wire.MustStreamID(123456, 7),
				Seq:     42,
				Payload: make([]byte, size),
			}
			buf := make([]byte, 0, msg.EncodedSize())
			b.ReportAllocs()
			b.SetBytes(int64(msg.EncodedSize()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = msg.AppendEncode(buf[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireDecode compares the three decode modes: the historical
// copying DecodeMessage (one payload allocation per frame), the reusable
// DecodeMessageInto (allocation-free once the destination's payload
// buffer has grown), and the zero-copy DecodeMessageBorrowed (payload
// aliases the frame; never allocates).
func BenchmarkWireDecode(b *testing.B) {
	for _, size := range []int{0, 16, 256, 4096} {
		msg := wire.Message{
			Stream:  wire.MustStreamID(123456, 7),
			Seq:     42,
			Payload: make([]byte, size),
		}
		frame, err := msg.Encode()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("payload=%d/mode=copy", size), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(frame)))
			for i := 0; i < b.N; i++ {
				if _, _, err := wire.DecodeMessage(frame); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("payload=%d/mode=into", size), func(b *testing.B) {
			var m wire.Message
			b.ReportAllocs()
			b.SetBytes(int64(len(frame)))
			for i := 0; i < b.N; i++ {
				if _, err := wire.DecodeMessageInto(frame, &m); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("payload=%d/mode=borrow", size), func(b *testing.B) {
			var m wire.Message
			b.ReportAllocs()
			b.SetBytes(int64(len(frame)))
			for i := 0; i < b.N; i++ {
				if _, err := wire.DecodeMessageBorrowed(frame, &m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFilterIngest is the single-stream ingest hot path: copies=1 is
// pure accept, higher copy counts mix in the duplicate-suppression path
// that overlapping receiver zones produce. shards=1 reproduces the
// historical global-mutex filter; the sharded default adds the
// single-entry stream cache and shard-local counters. Steady state must
// stay at 0 allocs/op.
func BenchmarkFilterIngest(b *testing.B) {
	for _, dup := range []int{1, 3, 6} {
		for _, shards := range []int{1, filtering.DefaultShards} {
			b.Run(fmt.Sprintf("copies=%d/shards=%d", dup, shards), func(b *testing.B) {
				f := filtering.New(func(filtering.Delivery) {}, filtering.Options{Shards: shards})
				id := wire.MustStreamID(1, 0)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rc := receiver.Reception{
						Msg: wire.Message{Stream: id, Seq: wire.Seq(i)},
					}
					for c := 0; c < dup; c++ {
						f.Ingest(rc)
					}
				}
			})
		}
	}
}

// BenchmarkFilterIngestZeroCopy measures the borrow-mode drop path: a
// borrowed payload-carrying reception whose duplicate is screened out
// must cost no payload copy and no allocation — the win the zero-copy
// decode buys under dense receiver overlap.
func BenchmarkFilterIngestZeroCopy(b *testing.B) {
	for _, size := range []int{16, 256} {
		b.Run(fmt.Sprintf("payload=%d", size), func(b *testing.B) {
			f := filtering.New(func(filtering.Delivery) {}, filtering.Options{})
			id := wire.MustStreamID(1, 0)
			payload := make([]byte, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rc := receiver.Reception{
					Msg:      wire.Message{Stream: id, Seq: wire.Seq(i), Payload: payload},
					Borrowed: true,
				}
				f.Ingest(rc) // accepted: one detaching payload copy
				f.Ingest(rc) // duplicate: dropped with zero copies
				f.Ingest(rc)
			}
		})
	}
}

// BenchmarkFilterIngestShards runs concurrent ingest across disjoint
// streams (one per publisher goroutine), sweeping the filter shard
// count. With one shard every reception serialises on one mutex; with
// the default count unrelated streams ingest without contention. On a
// single-core host only the reduced serial overhead shows; the
// structural win needs real cores.
func BenchmarkFilterIngestShards(b *testing.B) {
	for _, publishers := range []int{1, 10, 100} {
		for _, shards := range []int{1, filtering.DefaultShards} {
			b.Run(fmt.Sprintf("publishers=%d/shards=%d", publishers, shards), func(b *testing.B) {
				var sunk atomic.Int64
				f := filtering.New(func(filtering.Delivery) { sunk.Add(1) },
					filtering.Options{Shards: shards})
				streams := make([]wire.StreamID, publishers)
				for i := range streams {
					streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				for g := 0; g < publishers; g++ {
					n := b.N / publishers
					if g < b.N%publishers {
						n++
					}
					wg.Add(1)
					go func(stream wire.StreamID, n int) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							f.Ingest(receiver.Reception{
								Msg: wire.Message{Stream: stream, Seq: wire.Seq(i)},
							})
						}
					}(streams[g], n)
				}
				wg.Wait()
				b.StopTimer()
				if got := sunk.Load(); got != int64(b.N) {
					b.Fatalf("delivered %d of %d", got, b.N)
				}
			})
		}
	}
}

func BenchmarkDispatchFanout(b *testing.B) {
	for _, consumers := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("consumers=%d", consumers), func(b *testing.B) {
			clock := garnet.NewVirtualClock(time.Unix(0, 0))
			g := garnet.New(garnet.WithClock(clock), garnet.WithSecret([]byte("bench")))
			defer g.Stop()
			tok, err := g.Register("bench", garnet.PermSubscribe)
			if err != nil {
				b.Fatal(err)
			}
			sink := 0
			for c := 0; c < consumers; c++ {
				if _, err := g.Subscribe(tok, garnet.Exact(garnet.MustStreamID(1, 0)), &garnet.ConsumerFunc{
					ConsumerName: fmt.Sprintf("c%d", c),
					Fn:           func(garnet.Delivery) { sink++ },
				}); err != nil {
					b.Fatal(err)
				}
			}
			g.Start()
			core := g.Core()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.InjectReception(receiver.Reception{
					Msg: wire.Message{Stream: wire.MustStreamID(1, 0), Seq: wire.Seq(i)},
					At:  clock.Now(), Receiver: "bench", RSSI: 1,
				})
			}
		})
	}
}

// BenchmarkDispatchShards compares the single-table dispatcher (shards=1,
// the historical design) against the sharded table at 1/10/100 concurrent
// publishers, each publishing to its own stream (distinct sensors) with
// one exact subscriber per stream. With one shard every publisher
// serialises on the same mutex; with the default shard count unrelated
// streams dispatch without contention.
func BenchmarkDispatchShards(b *testing.B) {
	for _, publishers := range []int{1, 10, 100} {
		for _, shards := range []int{1, dispatch.DefaultShards} {
			b.Run(fmt.Sprintf("publishers=%d/shards=%d", publishers, shards), func(b *testing.B) {
				d := dispatch.New(dispatch.Options{Shards: shards})
				var sunk atomic.Int64
				streams := make([]wire.StreamID, publishers)
				for i := range streams {
					streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
					if _, err := d.Subscribe(&dispatch.ConsumerFunc{
						ConsumerName: fmt.Sprintf("c%d", i),
						Fn:           func(filtering.Delivery) { sunk.Add(1) },
					}, dispatch.Exact(streams[i])); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				for g := 0; g < publishers; g++ {
					n := b.N / publishers
					if g < b.N%publishers {
						n++
					}
					wg.Add(1)
					go func(stream wire.StreamID, n int) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							d.Dispatch(filtering.Delivery{
								Msg: wire.Message{Stream: stream, Seq: wire.Seq(i)},
							})
						}
					}(streams[g], n)
				}
				wg.Wait()
				b.StopTimer()
				if got := sunk.Load(); got != int64(b.N) {
					b.Fatalf("delivered %d of %d", got, b.N)
				}
			})
		}
	}
}

// BenchmarkDispatchBatchDrain measures async queue draining with and
// without batch coalescing: one publisher saturates a single consumer
// queue; the batching drainer takes up to BatchSize deliveries per
// cond-var wakeup instead of one.
func BenchmarkDispatchBatchDrain(b *testing.B) {
	for _, batch := range []int{1, dispatch.DefaultBatchSize} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			var sunk int64 // written only by the single drainer goroutine
			c := &dispatch.BatchConsumerFunc{ConsumerName: "sink", Fn: func(ds []filtering.Delivery) {
				sunk += int64(len(ds))
			}}
			d := dispatch.New(dispatch.Options{
				Mode: dispatch.ModeAsync, QueueCapacity: 8192, BatchSize: batch,
			})
			if _, err := d.Subscribe(c, dispatch.All()); err != nil {
				b.Fatal(err)
			}
			d.Start()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Dispatch(filtering.Delivery{Msg: wire.Message{Stream: wire.MustStreamID(1, 0), Seq: wire.Seq(i)}})
			}
			d.Stop() // waits for the drainer: sunk is safe to read after
			b.StopTimer()
			// Under DropOldest an admitted delivery may later be shed to
			// admit a newer one, so conservation is drained == admitted
			// minus overflow drops.
			if st := d.Stats(); sunk != st.Delivered-st.Dropped {
				b.Fatalf("drained %d, want %d admitted - %d dropped", sunk, st.Delivered, st.Dropped)
			}
		})
	}
}

func BenchmarkSealOpen(b *testing.B) {
	key := make([]byte, 32)
	stream := wire.MustStreamID(1, 0)
	payload := make([]byte, 64)
	b.Run("seal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := security.Seal(key, stream, wire.Seq(i), payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("open", func(b *testing.B) {
		sealed, err := security.Seal(key, stream, 7, payload)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := security.Open(key, stream, 7, sealed); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation benchmarks for the design choices DESIGN.md §3 calls out.

// Ablation: duplicate-window size. Larger windows tolerate older late
// arrivals at the cost of per-stream memory; ingest cost should stay flat
// because the bitmap shift is O(words).
func BenchmarkAblationFilterWindow(b *testing.B) {
	for _, window := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			f := filtering.New(func(filtering.Delivery) {}, filtering.Options{WindowSize: window})
			id := wire.MustStreamID(1, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Ingest(receiver.Reception{Msg: wire.Message{Stream: id, Seq: wire.Seq(i)}})
			}
		})
	}
}

// Ablation: bounded reordering. The reorder stage buys sequence-ordered
// delivery for one timer and one sorted insert per message.
func BenchmarkAblationReorderWindow(b *testing.B) {
	for _, reorder := range []bool{false, true} {
		name := "off"
		if reorder {
			name = "on"
		}
		b.Run("reorder="+name, func(b *testing.B) {
			clock := garnet.NewVirtualClock(time.Unix(0, 0))
			opts := filtering.Options{}
			if reorder {
				opts = filtering.Options{ReorderWindow: 50 * time.Millisecond, Clock: clock}
			}
			f := filtering.New(func(filtering.Delivery) {}, opts)
			id := wire.MustStreamID(1, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Ingest(receiver.Reception{
					Msg: wire.Message{Stream: id, Seq: wire.Seq(i)},
					At:  clock.Now(),
				})
				if reorder && i%256 == 255 {
					clock.Advance(time.Second) // drain pending buffers
				}
			}
		})
	}
}

// Ablation: synchronous vs asynchronous dispatch. Async pays queue+worker
// overhead per delivery in exchange for slow-consumer isolation.
func BenchmarkAblationDispatchMode(b *testing.B) {
	for _, mode := range []string{"sync", "async"} {
		b.Run("mode="+mode, func(b *testing.B) {
			opts := dispatch.Options{}
			if mode == "async" {
				opts = dispatch.Options{Mode: dispatch.ModeAsync, QueueCapacity: 4096}
			}
			d := dispatch.New(opts)
			var sink atomic.Int64
			for c := 0; c < 8; c++ {
				if _, err := d.Subscribe(&dispatch.ConsumerFunc{
					ConsumerName: fmt.Sprintf("c%d", c),
					Fn:           func(filtering.Delivery) { sink.Add(1) },
				}, dispatch.All()); err != nil {
					b.Fatal(err)
				}
			}
			d.Start()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Dispatch(filtering.Delivery{Msg: wire.Message{Stream: wire.MustStreamID(1, 0), Seq: wire.Seq(i)}})
			}
			b.StopTimer()
			d.Stop()
		})
	}
}

// BenchmarkRadioBroadcast measures one uplink broadcast (decision +
// delivery + drain) against a growing receiver array at two densities.
// overlap=local keeps the array spread out so a broadcast reaches ~1-2
// receivers regardless of how many are attached: with the spatial index
// the cost must stay flat as receivers grow 16× (cost tracks *reached*,
// not *attached*, listeners) and the delivery path must run at 0
// steady-state allocs. overlap=full packs every receiver inside range —
// the cost there legitimately scales with N because N copies are
// delivered.
func BenchmarkRadioBroadcast(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		for _, overlap := range []string{"local", "full"} {
			b.Run(fmt.Sprintf("receivers=%d/overlap=%s", n, overlap), func(b *testing.B) {
				const radius = 100.0
				clock := garnet.NewVirtualClock(time.Unix(0, 0))
				m := radio.NewMedium(clock, radio.Params{Seed: 42})
				side := int(math.Ceil(math.Sqrt(float64(n))))
				spacing := 2.5 * radius // local: only the nearest zone covers a point
				if overlap == "full" {
					spacing = radius / float64(side) // full: everyone covers everything
				}
				delivered := 0
				for i := 0; i < n; i++ {
					pos := geo.Pt(float64(i%side)*spacing, float64(i/side)*spacing)
					m.Attach(radio.BandUplink, &radio.Listener{
						Name:     fmt.Sprintf("rx%d", i),
						Position: func() geo.Point { return pos },
						Radius:   radius,
						Static:   true,
						Deliver: func(f radio.Frame) {
							delivered++
							f.Release()
						},
					})
				}
				payload := make([]byte, 24)
				// Just beside a middle receiver: local reaches exactly its
				// nearest zone(s); full reaches everyone.
				mid := float64(side/2) * spacing
				from := geo.Pt(mid+10, mid)
				// Warm the scratch/lease/event pools before measuring.
				for i := 0; i < 16; i++ {
					m.Broadcast(radio.BandUplink, from, radius, payload)
					clock.RunAll()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Broadcast(radio.BandUplink, from, radius, payload)
					clock.RunAll()
				}
				b.StopTimer()
				if delivered == 0 {
					b.Fatal("broadcasts reached nobody")
				}
			})
		}
	}
}

// BenchmarkE13ShardedDispatch regenerates the dispatch-sharding table.
func BenchmarkE13ShardedDispatch(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14ShardedIngest regenerates the filter-sharding table (the
// full receive → filter → dispatch pipeline under concurrent receivers).
func BenchmarkE14ShardedIngest(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15DenseFieldBroadcast regenerates the dense-field broadcast
// table (data + control traffic against a growing receiver lattice).
func BenchmarkE15DenseFieldBroadcast(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkX1MultiHopRelaying regenerates the §8 extension table.
func BenchmarkX1MultiHopRelaying(b *testing.B) { benchExperiment(b, "X1") }

// BenchmarkE17LateJoinerStorm regenerates the late-joiner replay table
// (M consumers joining mid-run with SubscribeWithReplay while publishers
// keep writing).
func BenchmarkE17LateJoinerStorm(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkE18AsyncFanoutStorm regenerates the async fan-out storm table
// (M publishers × N lock-free delivery rings with mid-run late joiners,
// swept across GOMAXPROCS).
func BenchmarkE18AsyncFanoutStorm(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkE19BatchedIngestStorm regenerates the batched-ingest table
// (E18's storm swept across WithIngestBatch sizes; ordering violations
// must stay 0 at every batch size).
func BenchmarkE19BatchedIngestStorm(b *testing.B) { benchExperiment(b, "E19") }

// BenchmarkE20ChurnStorm regenerates the churn-residue table (cohort and
// subscription churn must leave no timers, streams, orphans or subs).
func BenchmarkE20ChurnStorm(b *testing.B) { benchExperiment(b, "E20") }

// BenchmarkE21RadioPartition regenerates the partition-accounting table
// (sent must reconcile exactly against delivered plus unrecovered gaps).
func BenchmarkE21RadioPartition(b *testing.B) { benchExperiment(b, "E21") }

// BenchmarkE22SlowConsumer regenerates the backpressure table (a stalled
// consumer sheds exactly per policy; healthy consumers lose nothing).
func BenchmarkE22SlowConsumer(b *testing.B) { benchExperiment(b, "E22") }

// BenchmarkE23ArchivedLateJoiners regenerates the archived late-joiner
// table (replay from history that lives ≥90% in the durable archive
// tier, ordering enforced, restart over the same backend re-served).
func BenchmarkE23ArchivedLateJoiners(b *testing.B) { benchExperiment(b, "E23") }

// BenchmarkE16DemandStorm regenerates the control-plane demand-storm
// table (concurrent consumers churning demands plus live data traffic).
func BenchmarkE16DemandStorm(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkControlSubmit measures the return actuation path's per-demand
// cost across control shard counts.
//
// steady is the approved-no-change fast path — a consumer re-asserting a
// demand that leaves the effective setting untouched — which must stay at
// 0 allocs/op: it is the common case when millions of consumers refresh
// standing demands. actuate flips the demanded rate every iteration, so
// each submit mediates, issues an update id, transmits and is
// synchronously acked (the full issue+ack bookkeeping without timers).
func BenchmarkControlSubmit(b *testing.B) {
	epoch := time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d/steady", shards), func(b *testing.B) {
			rm := resource.NewWithOptions(resource.Options{Shards: shards})
			demand := resource.Demand{
				Consumer: "app", Target: wire.MustStreamID(7, 0),
				Op: wire.OpSetRate, Value: 2000,
			}
			if _, err := rm.Submit(demand); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec, err := rm.Submit(demand)
				if err != nil {
					b.Fatal(err)
				}
				if dec.Changed {
					b.Fatal("steady-state submit changed the effective setting")
				}
			}
		})
		b.Run(fmt.Sprintf("shards=%d/actuate", shards), func(b *testing.B) {
			clock := sim.NewVirtualClock(epoch)
			rm := resource.NewWithOptions(resource.Options{Shards: shards})
			var svc *actuation.Service
			svc = actuation.NewService(clock, func(c wire.ControlMessage) {
				svc.HandleAck(c.UpdateID, c.Issued)
			}, actuation.Options{Shards: shards, RetryInterval: time.Hour})
			target := wire.MustStreamID(7, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec, err := rm.Submit(resource.Demand{
					Consumer: "app", Target: target,
					Op: wire.OpSetRate, Value: uint32(1000 + i%2*1000),
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := svc.Issue(actuation.Request{
					Target: dec.Action.Target, Op: dec.Action.Op, Value: dec.Action.Value,
				}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("shards=%d/concurrent", shards), func(b *testing.B) {
			rm := resource.NewWithOptions(resource.Options{Shards: shards})
			var next atomic.Int64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				sensor := wire.SensorID(next.Add(1))
				demand := resource.Demand{
					Consumer: "app", Target: wire.MustStreamID(sensor, 0),
					Op: wire.OpSetRate, Value: 2000,
				}
				if _, err := rm.Submit(demand); err != nil {
					b.Error(err)
					return
				}
				for pb.Next() {
					if _, err := rm.Submit(demand); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

module github.com/garnet-middleware/garnet

go 1.24

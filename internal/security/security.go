// Package security implements Garnet's end-to-end payload protection. The
// payload field “is not interpreted and is opaque to the Garnet
// infrastructure. This provides a basic level of security and contributes
// to our security model” (§4.3); §9 lists “a high-level abstraction of
// data streams supporting end-to-end encryption” among the novel features.
//
// Sensors seal payloads with a per-stream key (AES-CTR with an
// encrypt-then-MAC HMAC-SHA256 tag); only consumers holding the key can
// open them. The middleware forwards sealed payloads untouched — tests
// assert that filtering, dispatching and the orphanage work identically on
// sealed streams, demonstrating opacity rather than asserting it.
//
// The CTR nonce is derived from (StreamID, Seq), which is unique per key
// for up to 2^16 messages per stream; deployments must rotate keys before
// a stream's sequence space wraps.
package security

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Overhead is the sealing overhead in bytes (the truncated MAC).
const Overhead = 16

// Package errors.
var (
	ErrKeySize = errors.New("security: key must be 16, 24 or 32 bytes")
	ErrAuth    = errors.New("security: payload authentication failed")
	ErrNoKey   = errors.New("security: no key for stream")
)

func checkKey(key []byte) error {
	switch len(key) {
	case 16, 24, 32:
		return nil
	default:
		return fmt.Errorf("%w: got %d", ErrKeySize, len(key))
	}
}

// nonce builds the 16-byte CTR IV from the stream identity and sequence.
func nonce(stream wire.StreamID, seq wire.Seq) [aes.BlockSize]byte {
	var iv [aes.BlockSize]byte
	binary.BigEndian.PutUint32(iv[0:], uint32(stream))
	binary.BigEndian.PutUint16(iv[4:], uint16(seq))
	return iv
}

// Seal encrypts and authenticates plaintext for one message of a stream.
// The output is ciphertext || 16-byte MAC and is Overhead bytes longer
// than the input.
func Seal(key []byte, stream wire.StreamID, seq wire.Seq, plaintext []byte) ([]byte, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}
	iv := nonce(stream, seq)
	out := make([]byte, len(plaintext)+Overhead)
	cipher.NewCTR(block, iv[:]).XORKeyStream(out, plaintext)
	mac := computeMAC(key, iv, out[:len(plaintext)])
	copy(out[len(plaintext):], mac)
	return out, nil
}

// Open authenticates and decrypts a payload produced by Seal with the
// same key, stream and sequence. It returns ErrAuth when the payload was
// tampered with, truncated, or sealed under different parameters.
func Open(key []byte, stream wire.StreamID, seq wire.Seq, sealed []byte) ([]byte, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	if len(sealed) < Overhead {
		return nil, fmt.Errorf("%w: %d bytes", ErrAuth, len(sealed))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}
	iv := nonce(stream, seq)
	ct := sealed[:len(sealed)-Overhead]
	want := sealed[len(sealed)-Overhead:]
	if !hmac.Equal(want, computeMAC(key, iv, ct)) {
		return nil, ErrAuth
	}
	out := make([]byte, len(ct))
	cipher.NewCTR(block, iv[:]).XORKeyStream(out, ct)
	return out, nil
}

// computeMAC returns the truncated encrypt-then-MAC tag over IV and
// ciphertext.
func computeMAC(key []byte, iv [aes.BlockSize]byte, ciphertext []byte) []byte {
	h := hmac.New(sha256.New, key)
	h.Write(iv[:])
	h.Write(ciphertext)
	return h.Sum(nil)[:Overhead]
}

// KeyStore maps streams to their end-to-end keys on the consumer side.
// The zero value is not usable; create with NewKeyStore.
type KeyStore struct {
	mu   sync.Mutex
	keys map[wire.StreamID][]byte
}

// NewKeyStore creates an empty KeyStore.
func NewKeyStore() *KeyStore {
	return &KeyStore{keys: make(map[wire.StreamID][]byte)}
}

// SetKey installs the key for a stream (copied).
func (k *KeyStore) SetKey(stream wire.StreamID, key []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	cp := make([]byte, len(key))
	copy(cp, key)
	k.mu.Lock()
	k.keys[stream] = cp
	k.mu.Unlock()
	return nil
}

// RemoveKey forgets a stream's key.
func (k *KeyStore) RemoveKey(stream wire.StreamID) {
	k.mu.Lock()
	delete(k.keys, stream)
	k.mu.Unlock()
}

// OpenMessage opens the payload of a sealed data message using the
// stream's installed key.
func (k *KeyStore) OpenMessage(m wire.Message) ([]byte, error) {
	k.mu.Lock()
	key, ok := k.keys[m.Stream]
	k.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoKey, m.Stream)
	}
	return Open(key, m.Stream, m.Seq, m.Payload)
}

// EncryptingSampler wraps a sensor sampler so every payload is sealed for
// the given stream before transmission — the sensor-side half of the
// end-to-end channel. Sealing failures yield an empty payload rather than
// leaking plaintext.
func EncryptingSampler(key []byte, stream wire.StreamID, inner sensor.Sampler) sensor.Sampler {
	return func(now time.Time, seq wire.Seq) []byte {
		sealed, err := Seal(key, stream, seq, inner(now, seq))
		if err != nil {
			return nil
		}
		return sealed
	}
}

package security

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var (
	key16  = bytes.Repeat([]byte{0x11}, 16)
	key32  = bytes.Repeat([]byte{0x22}, 32)
	stream = wire.MustStreamID(42, 3)
)

func TestSealOpenRoundTrip(t *testing.T) {
	for _, key := range [][]byte{key16, bytes.Repeat([]byte{9}, 24), key32} {
		sealed, err := Seal(key, stream, 7, []byte("secret reading"))
		if err != nil {
			t.Fatal(err)
		}
		if len(sealed) != len("secret reading")+Overhead {
			t.Fatalf("sealed length = %d", len(sealed))
		}
		got, err := Open(key, stream, 7, sealed)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "secret reading" {
			t.Fatalf("opened = %q", got)
		}
	}
}

func TestSealedPayloadNotPlaintext(t *testing.T) {
	plain := []byte("water level 4.2m")
	sealed, err := Seal(key16, stream, 0, plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, plain) {
		t.Fatal("plaintext visible in sealed payload")
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	sealed, err := Seal(key16, stream, 1, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(sealed); pos++ {
		bad := bytes.Clone(sealed)
		bad[pos] ^= 0x01
		if _, err := Open(key16, stream, 1, bad); !errors.Is(err, ErrAuth) {
			t.Fatalf("tampered byte %d accepted: %v", pos, err)
		}
	}
}

func TestOpenRejectsWrongContext(t *testing.T) {
	sealed, err := Seal(key16, stream, 1, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		key    []byte
		stream wire.StreamID
		seq    wire.Seq
	}{
		{"wrong key", key32, stream, 1},
		{"wrong stream", key16, wire.MustStreamID(42, 4), 1},
		{"wrong seq", key16, stream, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Open(tt.key, tt.stream, tt.seq, sealed); !errors.Is(err, ErrAuth) {
				t.Errorf("err = %v, want ErrAuth", err)
			}
		})
	}
}

func TestOpenRejectsTruncated(t *testing.T) {
	if _, err := Open(key16, stream, 0, make([]byte, Overhead-1)); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestBadKeySizes(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 33} {
		if _, err := Seal(make([]byte, n), stream, 0, nil); !errors.Is(err, ErrKeySize) {
			t.Errorf("Seal with %d-byte key: %v", n, err)
		}
		if _, err := Open(make([]byte, n), stream, 0, make([]byte, Overhead)); !errors.Is(err, ErrKeySize) {
			t.Errorf("Open with %d-byte key: %v", n, err)
		}
	}
}

func TestEmptyPlaintext(t *testing.T) {
	sealed, err := Seal(key16, stream, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(key16, stream, 0, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("opened %d bytes", len(got))
	}
}

func TestDistinctSeqsDistinctCiphertexts(t *testing.T) {
	a, err := Seal(key16, stream, 1, []byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Seal(key16, stream, 2, []byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a[:4], b[:4]) && bytes.Equal(a, b) {
		t.Fatal("identical ciphertexts for different sequences")
	}
}

// Property: Seal→Open is the identity for random payloads and contexts.
func TestSealOpenProperty(t *testing.T) {
	f := func(sensorID uint32, index uint8, seq uint16, payload []byte) bool {
		id := wire.MustStreamID(wire.SensorID(sensorID)&wire.MaxSensorID, wire.StreamIndex(index))
		sealed, err := Seal(key32, id, wire.Seq(seq), payload)
		if err != nil {
			return false
		}
		got, err := Open(key32, id, wire.Seq(seq), sealed)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKeyStore(t *testing.T) {
	ks := NewKeyStore()
	if err := ks.SetKey(stream, key16); err != nil {
		t.Fatal(err)
	}
	if err := ks.SetKey(stream, []byte("short")); !errors.Is(err, ErrKeySize) {
		t.Fatalf("bad key accepted: %v", err)
	}
	sealed, err := Seal(key16, stream, 5, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	msg := wire.Message{Stream: stream, Seq: 5, Payload: sealed, Flags: wire.FlagEncrypted}
	got, err := ks.OpenMessage(msg)
	if err != nil || string(got) != "x" {
		t.Fatalf("OpenMessage = %q, %v", got, err)
	}
	ks.RemoveKey(stream)
	if _, err := ks.OpenMessage(msg); !errors.Is(err, ErrNoKey) {
		t.Fatalf("err = %v, want ErrNoKey", err)
	}
}

func TestKeyStoreCopiesKey(t *testing.T) {
	ks := NewKeyStore()
	key := bytes.Clone(key16)
	if err := ks.SetKey(stream, key); err != nil {
		t.Fatal(err)
	}
	key[0] ^= 0xFF // caller clobbers its buffer
	sealed, err := Seal(key16, stream, 0, []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ks.OpenMessage(wire.Message{Stream: stream, Seq: 0, Payload: sealed}); err != nil {
		t.Fatal("key store aliased the caller's key")
	}
}

func TestEncryptingSampler(t *testing.T) {
	epoch := time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)
	inner := sensor.FloatSampler(func(time.Time) float64 { return 21.5 })
	s := EncryptingSampler(key16, stream, inner)
	sealed := s(epoch, 9)
	plain, err := Open(key16, stream, 9, sealed)
	if err != nil {
		t.Fatal(err)
	}
	v, _, ok := sensor.DecodeReading(plain)
	if !ok || v != 21.5 {
		t.Fatalf("decoded %v %v", v, ok)
	}
	// Wrong seq must not open: the sampler binds to the sequence.
	if _, err := Open(key16, stream, 10, sealed); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong-seq open: %v", err)
	}
}

func TestEncryptingSamplerBadKeyYieldsEmpty(t *testing.T) {
	epoch := time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)
	s := EncryptingSampler([]byte("bad"), stream, sensor.ConstantSampler([]byte("p")))
	if got := s(epoch, 0); got != nil {
		t.Fatalf("bad key should yield nil payload, got %d bytes", len(got))
	}
}

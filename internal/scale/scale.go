// Package scale is the million-sensor census behind `garnet-bench
// -scale`: it stands up a full Deployment on the virtual clock, walks it
// through 100k–1M simulated sensors, and measures what each plane of the
// middleware actually costs per stream — bytes per *idle* sensor (one
// message ever, the dominant population of a large WSN field), bytes per
// *active* stream (a warmed retention ring plus filter/dispatch state),
// and the ingest rate while the field is that large. The numbers come
// from forced-GC-settled runtime.ReadMemStats deltas, so they are live
// heap, not allocation churn.
//
// The census is the regression bar for ROADMAP item 5's scale half:
// BENCH_scale.json is schema-stable, committed, and CI re-runs the quick
// sweep with a bytes/idle-sensor ceiling so a future PR that fattens the
// per-stream structures fails loudly instead of silently costing
// gigabytes at a million sensors.
package scale

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/garnet-middleware/garnet/internal/core"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Schema identifies the report layout; bump only with a migration note
// in the README, because re-anchor tooling diffs these files across PRs.
const Schema = "garnet-bench-scale/v1"

// ActiveMsgs is how many messages each active stream sends during the
// active phase — enough to grow the store ring well past its lazy
// minimum, so bytes/active-stream reflects a warmed retention window.
const ActiveMsgs = 64

// Result is one measured census cell.
type Result struct {
	Sensors       int     `json:"sensors"`
	ActivePct     float64 `json:"active_pct"`
	ActiveStreams int     `json:"active_streams"`
	MsgsPerActive int     `json:"msgs_per_active"`

	// IdleBytesPerSensor is the settled live-heap delta of attaching one
	// sensor that sends a single in-order message: filter stream state,
	// store retention header and slot, dispatch advertising record, and
	// their map entries.
	IdleBytesPerSensor float64 `json:"idle_bytes_per_sensor"`
	// ActiveBytesPerStream is the additional settled live-heap delta per
	// stream after ActiveMsgs further messages (grown retention ring,
	// retained payloads).
	IdleHeapBytes        uint64  `json:"idle_heap_bytes"`
	ActiveBytesPerStream float64 `json:"active_bytes_per_stream"`
	// IngestMsgsPerSec is the wall-clock ingest rate measured during the
	// active phase, with the full idle population resident.
	IngestMsgsPerSec float64 `json:"ingest_msgs_per_sec"`
	// LiveHeapBytes is the settled live heap after the whole census —
	// what a deployment this size actually occupies.
	LiveHeapBytes uint64 `json:"live_heap_bytes"`
}

// Report is the emitted BENCH_scale.json document.
type Report struct {
	Schema   string   `json:"schema"`
	Area     string   `json:"area"`
	Date     string   `json:"date"`
	Go       string   `json:"go"`
	HostCPUs int      `json:"host_cpus"`
	Quick    bool     `json:"quick"`
	Results  []Result `json:"results"`
}

// Options configures a census run.
type Options struct {
	// Quick shrinks the sweep to one 100k-sensor cell for CI smoke jobs.
	Quick bool
	// OutDir receives BENCH_scale.json; empty means the current
	// directory.
	OutDir string
	// Log, when non-nil, receives one line per measured cell.
	Log func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

func (o Options) sensorSweep() []int {
	if o.Quick {
		return []int{100_000}
	}
	return []int{100_000, 1_000_000}
}

func (o Options) activeSweep() []float64 {
	if o.Quick {
		return []float64{0.01}
	}
	return []float64{0.001, 0.01}
}

// settledHeap forces the collector until the live heap stops moving and
// returns HeapAlloc — the census wants resident structures, not
// allocation churn. Two extra cycles let finalizer-driven frees (none in
// Garnet today, but cheap insurance) settle.
func settledHeap() uint64 {
	var ms runtime.MemStats
	prev := uint64(0)
	for i := 0; i < 5; i++ {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		if i >= 2 && ms.HeapAlloc == prev {
			break
		}
		prev = ms.HeapAlloc
	}
	return ms.HeapAlloc
}

// census runs one cell: sensors idle streams, activeFrac of them sending
// ActiveMsgs more messages each.
func census(sensors int, activeFrac float64) Result {
	clock := sim.NewVirtualClock(time.Unix(0, 0).UTC())
	dep := core.New(core.Config{Clock: clock, Secret: []byte("scale-census")})
	// A standing wildcard subscriber keeps every stream claimed, so the
	// census measures the filter/store/dispatch planes rather than
	// orphanage policy (whose MaxStreams bound would otherwise forget
	// most of the field).
	if _, err := dep.Dispatcher().Subscribe(&dispatch.ConsumerFunc{
		ConsumerName: "census-sink",
		Fn:           func(filtering.Delivery) {},
	}, dispatch.All()); err != nil {
		panic(err)
	}
	dep.Start()
	defer dep.Stop()
	now := clock.Now()

	heap0 := settledHeap()

	// Idle phase: every sensor attaches with a single in-order message.
	for i := 0; i < sensors; i++ {
		dep.InjectReception(receiver.Reception{
			Msg:      wire.Message{Stream: wire.MustStreamID(wire.SensorID(i+1), 0), Seq: 1},
			Receiver: "rx-census",
			RSSI:     0.5,
			At:       now,
		})
	}
	heap1 := settledHeap()

	active := int(float64(sensors) * activeFrac)
	if active < 1 {
		active = 1
	}
	// Active phase: the first `active` sensors each send ActiveMsgs more
	// in-order messages, stream-major so the run also exercises the
	// shard lookup caches the hot path depends on.
	start := time.Now()
	for i := 0; i < active; i++ {
		id := wire.MustStreamID(wire.SensorID(i+1), 0)
		for m := 0; m < ActiveMsgs; m++ {
			dep.InjectReception(receiver.Reception{
				Msg:      wire.Message{Stream: id, Seq: wire.Seq(2 + m)},
				Receiver: "rx-census",
				RSSI:     0.5,
				At:       now,
			})
		}
	}
	elapsed := time.Since(start)
	heap2 := settledHeap()

	return Result{
		Sensors:              sensors,
		ActivePct:            activeFrac * 100,
		ActiveStreams:        active,
		MsgsPerActive:        ActiveMsgs,
		IdleBytesPerSensor:   float64(heap1-heap0) / float64(sensors),
		IdleHeapBytes:        heap1 - heap0,
		ActiveBytesPerStream: float64(heap2-heap1) / float64(active),
		IngestMsgsPerSec:     float64(active*ActiveMsgs) / elapsed.Seconds(),
		LiveHeapBytes:        heap2,
	}
}

// Run executes the sweep and returns the report.
func Run(opts Options) Report {
	rep := Report{
		Schema:   Schema,
		Area:     "scale",
		Date:     time.Now().UTC().Format("2006-01-02"),
		Go:       runtime.Version(),
		HostCPUs: runtime.NumCPU(),
		Quick:    opts.Quick,
	}
	for _, sensors := range opts.sensorSweep() {
		for _, frac := range opts.activeSweep() {
			res := census(sensors, frac)
			opts.logf("scale sensors=%d active=%.1f%%: %.0f B/idle-sensor, %.0f B/active-stream, %.2f Mmsg/s, live heap %.1f MB",
				res.Sensors, res.ActivePct, res.IdleBytesPerSensor, res.ActiveBytesPerStream,
				res.IngestMsgsPerSec/1e6, float64(res.LiveHeapBytes)/(1<<20))
			rep.Results = append(rep.Results, res)
		}
	}
	return rep
}

// Validate checks a report against the schema.
func Validate(r Report) error {
	if r.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", r.Schema, Schema)
	}
	if r.Area != "scale" || r.Date == "" || r.Go == "" || r.HostCPUs <= 0 {
		return fmt.Errorf("missing header fields: %+v", r)
	}
	if len(r.Results) == 0 {
		return fmt.Errorf("report has no results")
	}
	for _, res := range r.Results {
		if res.Sensors <= 0 || res.ActiveStreams <= 0 || res.MsgsPerActive <= 0 {
			return fmt.Errorf("malformed result: %+v", res)
		}
		if res.IdleBytesPerSensor <= 0 || res.IngestMsgsPerSec <= 0 {
			return fmt.Errorf("non-positive measurement in result: %+v", res)
		}
	}
	return nil
}

// MaxIdleBytes returns the largest bytes/idle-sensor across the report's
// cells — the number the CI ceiling assertion gates on.
func MaxIdleBytes(r Report) float64 {
	max := 0.0
	for _, res := range r.Results {
		if res.IdleBytesPerSensor > max {
			max = res.IdleBytesPerSensor
		}
	}
	return max
}

// WriteReport runs the sweep, validates the report and writes
// BENCH_scale.json into opts.OutDir, returning the path and the report.
func WriteReport(opts Options) (string, Report, error) {
	if opts.OutDir != "" {
		if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
			return "", Report{}, err
		}
	}
	rep := Run(opts)
	if err := Validate(rep); err != nil {
		return "", rep, fmt.Errorf("scale report invalid: %w", err)
	}
	path := filepath.Join(opts.OutDir, "BENCH_scale.json")
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", rep, err
	}
	return path, rep, os.WriteFile(path, append(data, '\n'), 0o644)
}

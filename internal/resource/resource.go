// Package resource implements the Resource Manager of §4.2: the admission
// controller on the return actuation path. Consumers are mutually unaware
// and “may lead to conflicting interaction with the sensor field” (§2), so
// every stream-update request is first submitted here: the manager keeps a
// standing-demand ledger per (stream, demand class), merges competing
// demands under a pluggable mediation policy, clamps the result to the
// codified sensor constraints (the §8 constraint language), and reports
// whether the sensor's effective configuration actually changed.
//
// The ledger doubles as the paper's “approximate overview of the sensors'
// configuration” (§6): it records what the fixed network believes each
// sensor has been told to do.
//
// # Sharding
//
// With millions of mutually-unaware consumers churning demands, mediation
// itself becomes the contention point, so the ledger is partitioned into N
// shards (Options.Shards) keyed by the sensor component of the target
// StreamID — the same wire.SensorID.Shard function the Filtering and
// Dispatching Services partition on — with shard-local mutexes, counters,
// constraint tables and consumer-ownership indexes. A demand takes exactly
// one shard lock; demands against different sensors' streams never
// contend. The mediation policy is an atomic value, so the Super
// Coordinator's policy flips never stall in-flight submissions, and the
// approved-no-change fast path allocates nothing.
package resource

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/garnet-middleware/garnet/internal/wire"
)

// Class groups the operations that compete for the same sensor setting.
type Class int

const (
	// ClassRate competes over a stream's sampling rate (OpSetRate).
	ClassRate Class = iota + 1
	// ClassEnable competes over whether a stream runs (OpEnable/OpDisable).
	ClassEnable
	// ClassPayload competes over the stream's payload limit
	// (OpSetPayloadLimit).
	ClassPayload
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassRate:
		return "rate"
	case ClassEnable:
		return "enable"
	case ClassPayload:
		return "payload"
	default:
		return "class(?)"
	}
}

// ClassOf maps a wire operation to its demand class; ok is false for
// operations that need no mediation (ping, device params).
func ClassOf(op wire.Op) (Class, bool) {
	switch op {
	case wire.OpSetRate:
		return ClassRate, true
	case wire.OpEnableStream, wire.OpDisableStream:
		return ClassEnable, true
	case wire.OpSetPayloadLimit:
		return ClassPayload, true
	default:
		return 0, false
	}
}

// Demand is one consumer's standing request about one stream setting.
type Demand struct {
	Consumer string
	Target   wire.StreamID
	Op       wire.Op // OpSetRate, OpEnableStream, OpDisableStream, OpSetPayloadLimit
	Value    uint32  // rate in mHz, or payload limit in bytes; unused for enable/disable
	Priority int     // larger wins under PolicyPriority
}

// Policy selects how competing demands merge.
type Policy int

const (
	// PolicyMostDemanding takes the maximum rate / enables if anyone wants
	// the stream / largest payload limit: no consumer starves.
	PolicyMostDemanding Policy = iota + 1
	// PolicyLeastDemanding takes the minimum rate / disables unless
	// everyone wants the stream / smallest payload: conserves energy.
	PolicyLeastDemanding
	// PolicyPriority lets the highest-priority demand win outright
	// (ties broken towards the most demanding).
	PolicyPriority
	// PolicyFirstComeDeny approves the first demand and denies any
	// conflicting later demand from another consumer.
	PolicyFirstComeDeny
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyMostDemanding:
		return "most-demanding"
	case PolicyLeastDemanding:
		return "least-demanding"
	case PolicyPriority:
		return "priority"
	case PolicyFirstComeDeny:
		return "first-come-deny"
	default:
		return "policy(?)"
	}
}

// Verdict is the admission-control outcome for one submission.
type Verdict int

const (
	// VerdictApproved means the demand was accepted as submitted.
	VerdictApproved Verdict = iota + 1
	// VerdictModified means the demand was accepted but the effective
	// setting differs (mediation with other consumers, or constraint
	// clamping).
	VerdictModified
	// VerdictDenied means the demand was rejected and not recorded.
	VerdictDenied
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictApproved:
		return "approved"
	case VerdictModified:
		return "modified"
	case VerdictDenied:
		return "denied"
	default:
		return "verdict(?)"
	}
}

// Action is the concrete operation the Actuation Service should now send
// to the sensor, present when a decision changed the effective setting.
type Action struct {
	Target wire.StreamID
	Op     wire.Op
	Value  uint32
}

// Decision is the result of Submit or Withdraw.
type Decision struct {
	Verdict Verdict
	Reason  string
	// Effective is the post-decision effective setting for the class
	// (rate in mHz, payload bytes, or 0/1 for enable).
	Effective uint32
	// Changed reports whether the effective setting moved, i.e. whether an
	// actuation is required; Action describes it.
	Changed bool
	Action  *Action
}

// Manager errors.
var (
	ErrBadDemand = errors.New("resource: invalid demand")
	ErrConflict  = errors.New("resource: conflicting demand denied")
	ErrForbidden = errors.New("resource: constraint forbids demand")
)

type ledgerKey struct {
	target wire.StreamID
	class  Class
}

type entry struct {
	demands map[string]Demand // by consumer
	// effective is the currently actuated setting; valid is false until
	// the first demand arrives.
	effective uint32
	valid     bool
	order     []string // consumer arrival order, for PolicyFirstComeDeny
}

// Stats is a snapshot of manager counters, summed across shards.
type Stats struct {
	Submitted   int64
	Approved    int64
	Modified    int64
	Denied      int64
	Withdrawals int64
	Ledger      int // live (stream, class) entries
	Shards      int // ledger partitions
}

// DefaultShards partitions the demand ledger unless Options.Shards says
// otherwise. Matches the filtering/dispatch default so one sensor's
// control-plane and data-plane state partition identically.
const DefaultShards = 16

// Options configures a Manager. The zero value uses PolicyMostDemanding
// and DefaultShards.
type Options struct {
	// Policy is the initial mediation policy; 0 selects
	// PolicyMostDemanding.
	Policy Policy
	// Shards partitions the demand ledger by target sensor; <= 0 selects
	// DefaultShards. 1 restores the historical single-lock ledger.
	Shards int
}

// Manager is the Resource Manager.
type Manager struct {
	// policy is the current mediation Policy, read atomically on every
	// decision so SetPolicy never blocks (or is blocked by) submissions.
	policy atomic.Int32
	// defaults holds the deployment-wide default constraints; nil until
	// SetDefaultConstraints is called.
	defaults atomic.Pointer[Constraints]
	shards   []*mshard
}

// NewManager creates a Manager with the given mediation policy
// (PolicyMostDemanding when zero) and the default shard count.
func NewManager(policy Policy) *Manager {
	return NewWithOptions(Options{Policy: policy})
}

// NewWithOptions creates a Manager from opts.
func NewWithOptions(opts Options) *Manager {
	if opts.Policy == 0 {
		opts.Policy = PolicyMostDemanding
	}
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	m := &Manager{shards: newShards(opts.Shards)}
	m.policy.Store(int32(opts.Policy))
	return m
}

// Policy returns the current mediation policy.
func (m *Manager) Policy() Policy {
	return Policy(m.policy.Load())
}

// SetPolicy switches the mediation policy at runtime — the hook the Super
// Coordinator uses to “invoke policy changes in the strategy used by the
// Resource Manager” (§4.2). The policy is an atomic value: a flip never
// stalls concurrent submissions, and each decision uses the policy it
// loaded on entry. Existing effective settings are not recomputed until
// the next submission touches them.
func (m *Manager) SetPolicy(p Policy) {
	m.policy.Store(int32(p))
}

// SetDefaultConstraints applies c to every sensor without specific
// constraints.
func (m *Manager) SetDefaultConstraints(c Constraints) {
	m.defaults.Store(&c)
}

// SetConstraints codifies the limits of one sensor.
func (m *Manager) SetConstraints(sensor wire.SensorID, c Constraints) {
	sh := m.shardFor(sensor)
	sh.mu.Lock()
	sh.constraints[sensor] = c
	sh.mu.Unlock()
}

// validate screens a demand before it reaches the ledger; class is the
// demand's mediation class from ClassOf.
func validate(d Demand, class Class) error {
	if d.Consumer == "" {
		return fmt.Errorf("%w: empty consumer", ErrBadDemand)
	}
	if class == ClassRate && d.Value == 0 {
		return fmt.Errorf("%w: zero rate", ErrBadDemand)
	}
	if class == ClassPayload && (d.Value == 0 || d.Value > wire.MaxPayload) {
		return fmt.Errorf("%w: payload limit %d", ErrBadDemand, d.Value)
	}
	return nil
}

// Submit runs admission control for one demand. Approved and modified
// demands join the standing ledger; the decision reports the effective
// setting and whether actuation is needed. The fast path — an approved
// resubmission that leaves the effective setting unchanged — takes one
// shard lock and allocates nothing.
func (m *Manager) Submit(d Demand) (Decision, error) {
	class, ok := ClassOf(d.Op)
	if !ok {
		return Decision{}, fmt.Errorf("%w: op %v needs no mediation", ErrBadDemand, d.Op)
	}
	if err := validate(d, class); err != nil {
		return Decision{}, err
	}
	policy := m.Policy()
	sh := m.shardFor(d.Target.Sensor())
	sh.mu.Lock()
	dec := m.submitLocked(sh, d, class, policy)
	sh.mu.Unlock()
	return dec, nil
}

// submitLocked runs the admission/mediation core for a pre-validated
// demand. Caller holds sh.mu.
func (m *Manager) submitLocked(sh *mshard, d Demand, class Class, policy Policy) Decision {
	sh.submitted++

	// Hard constraint screening that cannot be satisfied by clamping.
	cons, hasCons := sh.constraintsFor(m, d.Target.Sensor())
	if hasCons {
		if class == ClassEnable && d.Op == wire.OpEnableStream && cons.MaxActiveStreams > 0 {
			if active := sh.activeStreamsLocked(d.Target.Sensor(), d.Target); active >= cons.MaxActiveStreams {
				sh.denied++
				return Decision{
					Verdict: VerdictDenied,
					Reason:  fmt.Sprintf("sensor constraint streams<=%d", cons.MaxActiveStreams),
				}
			}
		}
	}

	key := ledgerKey{target: d.Target, class: class}
	e, exists := sh.ledger[key]
	if !exists {
		e = &entry{demands: make(map[string]Demand)}
		sh.ledger[key] = e
	}

	if policy == PolicyFirstComeDeny {
		for owner, other := range e.demands {
			if owner != d.Consumer && conflicts(class, other, d) {
				sh.denied++
				return Decision{
					Verdict: VerdictDenied,
					Reason: fmt.Sprintf("conflicts with standing demand of %q (%s)",
						owner, describeDemand(class, other)),
				}
			}
		}
	}

	if _, had := e.demands[d.Consumer]; !had {
		e.order = append(e.order, d.Consumer)
		sh.ownKey(d.Consumer, key)
	}
	e.demands[d.Consumer] = d

	return decide(sh, key, e, &d, cons, hasCons, policy)
}

// Withdraw removes one consumer's standing demand on a (target, class) and
// recomputes the effective setting. It reports the new decision (Changed
// set if actuation is needed to relax the sensor) and whether a demand was
// present. When the last demand goes away the entry is removed and no
// relaxation is actuated — the sensor keeps its last setting, matching the
// paper's minimal-sensor model (no implicit defaults on the device).
func (m *Manager) Withdraw(consumer string, target wire.StreamID, class Class) (Decision, bool) {
	policy := m.Policy()
	sh := m.shardFor(target.Sensor())
	sh.mu.Lock()
	dec, ok := m.withdrawLocked(sh, consumer, target, class, policy)
	sh.mu.Unlock()
	return dec, ok
}

// withdrawLocked is the locked core of Withdraw. Caller holds sh.mu.
func (m *Manager) withdrawLocked(sh *mshard, consumer string, target wire.StreamID, class Class, policy Policy) (Decision, bool) {
	key := ledgerKey{target: target, class: class}
	e, ok := sh.ledger[key]
	if !ok {
		return Decision{}, false
	}
	if _, had := e.demands[consumer]; !had {
		return Decision{}, false
	}
	delete(e.demands, consumer)
	for i, name := range e.order {
		if name == consumer {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	sh.disownKey(consumer, key)
	sh.withdrawn++
	if len(e.demands) == 0 {
		delete(sh.ledger, key)
		return Decision{Verdict: VerdictApproved, Effective: e.effective}, true
	}
	cons, hasCons := sh.constraintsFor(m, target.Sensor())
	return decide(sh, key, e, nil, cons, hasCons, policy), true
}

// WithdrawAll removes every standing demand of a consumer (a consumer
// leaving the system) and returns the actions needed to re-actuate the
// affected streams. Each shard is visited once, its keys withdrawn in
// (target, class) order under a single lock acquisition.
func (m *Manager) WithdrawAll(consumer string) []Action {
	policy := m.Policy()
	var actions []Action
	for _, sh := range m.shards {
		sh.mu.Lock()
		for _, key := range sh.ownedKeysLocked(consumer) {
			if dec, ok := m.withdrawLocked(sh, consumer, key.target, key.class, policy); ok && dec.Changed && dec.Action != nil {
				actions = append(actions, *dec.Action)
			}
		}
		sh.mu.Unlock()
	}
	return actions
}

// Apply replaces every standing demand held under owner with the given
// set and returns the actions needed to re-actuate the streams whose
// effective settings changed — the Super Coordinator's demand sink.
// Demands in the set are submitted (tagged with owner as their consumer);
// standing demands of owner absent from the set are withdrawn. The work
// fans out per shard: every shard is peeked under its own lock (a
// constant-time ownership check), but withdrawals and submissions run
// only in the shards the owner actually touches, each under a single
// shard-local lock acquisition — so a state report touching K streams
// never serialises behind unrelated owners' demands on other sensors.
// Invalid demands are skipped, matching the fire-and-forget contract of
// the coordinator path.
func (m *Manager) Apply(owner string, demands []Demand) []Action {
	if owner == "" {
		return nil
	}
	policy := m.Policy()

	// Dedupe on (target, class) — the last demand for a key wins — and
	// group the additions by home shard. Demands that fail validation
	// still claim their key (so an owner's standing demand is not
	// withdrawn just because its replacement was malformed — the
	// fire-and-forget contract drops the bad value, not the stream) but
	// are never submitted.
	next := make(map[ledgerKey]Demand, len(demands))
	invalid := make(map[ledgerKey]bool)
	for _, d := range demands {
		class, ok := ClassOf(d.Op)
		if !ok {
			continue
		}
		d.Consumer = owner
		key := ledgerKey{target: d.Target, class: class}
		next[key] = d
		invalid[key] = validate(d, class) != nil
	}
	perShard := make(map[int][]ledgerKey, len(m.shards))
	for key := range next {
		idx := key.target.Sensor().Shard(len(m.shards))
		perShard[idx] = append(perShard[idx], key)
	}

	var actions []Action
	for i, sh := range m.shards {
		adds := perShard[i]
		sortLedgerKeys(adds)
		sh.mu.Lock()
		if len(adds) == 0 && len(sh.owners[owner]) == 0 {
			sh.mu.Unlock()
			continue
		}
		// Withdraw the owner's demands that are no longer in the set.
		for _, key := range sh.ownedKeysLocked(owner) {
			if _, still := next[key]; still {
				continue
			}
			if dec, ok := m.withdrawLocked(sh, owner, key.target, key.class, policy); ok && dec.Changed && dec.Action != nil {
				actions = append(actions, *dec.Action)
			}
		}
		// Submit the new set.
		for _, key := range adds {
			if invalid[key] {
				continue
			}
			dec := m.submitLocked(sh, next[key], key.class, policy)
			if dec.Changed && dec.Action != nil {
				actions = append(actions, *dec.Action)
			}
		}
		sh.mu.Unlock()
	}
	return actions
}

// decide merges the entry's demands under policy, clamps to constraints,
// updates the effective setting, and builds the Decision. submitted is
// the demand that triggered the decision (nil for withdrawals). Caller
// holds sh.mu.
func decide(sh *mshard, key ledgerKey, e *entry, submitted *Demand, cons Constraints, hasCons bool, policy Policy) Decision {
	merged := merge(policy, key.class, e)
	clamped, clampReason := merged, ""
	if hasCons {
		clamped, clampReason = cons.clamp(key.class, merged)
	}

	changed := !e.valid || clamped != e.effective
	e.effective = clamped
	e.valid = true

	dec := Decision{Effective: clamped, Changed: changed}
	if changed {
		dec.Action = &Action{Target: key.target, Value: clamped}
		switch key.class {
		case ClassRate:
			dec.Action.Op = wire.OpSetRate
		case ClassEnable:
			if clamped != 0 {
				dec.Action.Op = wire.OpEnableStream
			} else {
				dec.Action.Op = wire.OpDisableStream
			}
			dec.Action.Value = 0
		case ClassPayload:
			dec.Action.Op = wire.OpSetPayloadLimit
		}
	}

	switch {
	case submitted == nil:
		dec.Verdict = VerdictApproved
	case demandSatisfied(key.class, *submitted, clamped):
		dec.Verdict = VerdictApproved
		sh.approved++
	default:
		dec.Verdict = VerdictModified
		dec.Reason = fmt.Sprintf("mediated under %v policy", policy)
		if clampReason != "" {
			dec.Reason = clampReason
		}
		sh.modified++
	}
	return dec
}

func demandSatisfied(class Class, d Demand, effective uint32) bool {
	switch class {
	case ClassEnable:
		want := uint32(0)
		if d.Op == wire.OpEnableStream {
			want = 1
		}
		return effective == want
	default:
		return effective == d.Value
	}
}

// merge folds the demands of one entry into a single value under policy
// (rate mHz / payload bytes / 0-1 for enable). It walks the arrival order
// directly — no scratch slices — so the decision path allocates nothing.
func merge(policy Policy, class Class, e *entry) uint32 {
	switch policy {
	case PolicyLeastDemanding:
		v := demandValue(class, e.demands[e.order[0]])
		for _, name := range e.order[1:] {
			if x := demandValue(class, e.demands[name]); x < v {
				v = x
			}
		}
		return v
	case PolicyPriority:
		first := e.demands[e.order[0]]
		best, bestPrio := demandValue(class, first), first.Priority
		for _, name := range e.order[1:] {
			d := e.demands[name]
			x := demandValue(class, d)
			if d.Priority > bestPrio || (d.Priority == bestPrio && x > best) {
				best, bestPrio = x, d.Priority
			}
		}
		return best
	case PolicyFirstComeDeny:
		// Conflicts were denied on entry; all demands agree (or are from
		// the same consumer, whose latest value stands).
		return demandValue(class, e.demands[e.order[len(e.order)-1]])
	default: // PolicyMostDemanding
		v := demandValue(class, e.demands[e.order[0]])
		for _, name := range e.order[1:] {
			if x := demandValue(class, e.demands[name]); x > v {
				v = x
			}
		}
		return v
	}
}

func demandValue(class Class, d Demand) uint32 {
	if class == ClassEnable {
		if d.Op == wire.OpEnableStream {
			return 1
		}
		return 0
	}
	return d.Value
}

func conflicts(class Class, a, b Demand) bool {
	return demandValue(class, a) != demandValue(class, b)
}

func describeDemand(class Class, d Demand) string {
	switch class {
	case ClassEnable:
		return d.Op.String()
	default:
		return fmt.Sprintf("%v=%d", d.Op, d.Value)
	}
}

// Effective returns the current effective setting for (target, class).
func (m *Manager) Effective(target wire.StreamID, class Class) (uint32, bool) {
	sh := m.shardFor(target.Sensor())
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.ledger[ledgerKey{target: target, class: class}]
	if !ok || !e.valid {
		return 0, false
	}
	return e.effective, true
}

// StreamOverview is the manager's belief about one stream's configuration.
type StreamOverview struct {
	Target   wire.StreamID
	Class    Class
	Demands  int
	Setting  uint32
	Policies Policy
}

// Overview returns the approximate sensor-configuration overview: every
// ledger entry with its effective setting, sorted by stream then class.
func (m *Manager) Overview() []StreamOverview {
	policy := m.Policy()
	var out []StreamOverview
	for _, sh := range m.shards {
		sh.mu.Lock()
		for key, e := range sh.ledger {
			out = append(out, StreamOverview{
				Target:   key.target,
				Class:    key.class,
				Demands:  len(e.demands),
				Setting:  e.effective,
				Policies: policy,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Target != out[j].Target {
			return out[i].Target < out[j].Target
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// Stats returns a snapshot of manager counters summed across shards.
func (m *Manager) Stats() Stats {
	st := Stats{Shards: len(m.shards)}
	for _, sh := range m.shards {
		sh.mu.Lock()
		st.Submitted += sh.submitted
		st.Approved += sh.approved
		st.Modified += sh.modified
		st.Denied += sh.denied
		st.Withdrawals += sh.withdrawn
		st.Ledger += len(sh.ledger)
		sh.mu.Unlock()
	}
	return st
}

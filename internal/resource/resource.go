// Package resource implements the Resource Manager of §4.2: the admission
// controller on the return actuation path. Consumers are mutually unaware
// and “may lead to conflicting interaction with the sensor field” (§2), so
// every stream-update request is first submitted here: the manager keeps a
// standing-demand ledger per (stream, demand class), merges competing
// demands under a pluggable mediation policy, clamps the result to the
// codified sensor constraints (the §8 constraint language), and reports
// whether the sensor's effective configuration actually changed.
//
// The ledger doubles as the paper's “approximate overview of the sensors'
// configuration” (§6): it records what the fixed network believes each
// sensor has been told to do.
package resource

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Class groups the operations that compete for the same sensor setting.
type Class int

const (
	// ClassRate competes over a stream's sampling rate (OpSetRate).
	ClassRate Class = iota + 1
	// ClassEnable competes over whether a stream runs (OpEnable/OpDisable).
	ClassEnable
	// ClassPayload competes over the stream's payload limit
	// (OpSetPayloadLimit).
	ClassPayload
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassRate:
		return "rate"
	case ClassEnable:
		return "enable"
	case ClassPayload:
		return "payload"
	default:
		return "class(?)"
	}
}

// ClassOf maps a wire operation to its demand class; ok is false for
// operations that need no mediation (ping, device params).
func ClassOf(op wire.Op) (Class, bool) {
	switch op {
	case wire.OpSetRate:
		return ClassRate, true
	case wire.OpEnableStream, wire.OpDisableStream:
		return ClassEnable, true
	case wire.OpSetPayloadLimit:
		return ClassPayload, true
	default:
		return 0, false
	}
}

// Demand is one consumer's standing request about one stream setting.
type Demand struct {
	Consumer string
	Target   wire.StreamID
	Op       wire.Op // OpSetRate, OpEnableStream, OpDisableStream, OpSetPayloadLimit
	Value    uint32  // rate in mHz, or payload limit in bytes; unused for enable/disable
	Priority int     // larger wins under PolicyPriority
}

// Policy selects how competing demands merge.
type Policy int

const (
	// PolicyMostDemanding takes the maximum rate / enables if anyone wants
	// the stream / largest payload limit: no consumer starves.
	PolicyMostDemanding Policy = iota + 1
	// PolicyLeastDemanding takes the minimum rate / disables unless
	// everyone wants the stream / smallest payload: conserves energy.
	PolicyLeastDemanding
	// PolicyPriority lets the highest-priority demand win outright
	// (ties broken towards the most demanding).
	PolicyPriority
	// PolicyFirstComeDeny approves the first demand and denies any
	// conflicting later demand from another consumer.
	PolicyFirstComeDeny
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyMostDemanding:
		return "most-demanding"
	case PolicyLeastDemanding:
		return "least-demanding"
	case PolicyPriority:
		return "priority"
	case PolicyFirstComeDeny:
		return "first-come-deny"
	default:
		return "policy(?)"
	}
}

// Verdict is the admission-control outcome for one submission.
type Verdict int

const (
	// VerdictApproved means the demand was accepted as submitted.
	VerdictApproved Verdict = iota + 1
	// VerdictModified means the demand was accepted but the effective
	// setting differs (mediation with other consumers, or constraint
	// clamping).
	VerdictModified
	// VerdictDenied means the demand was rejected and not recorded.
	VerdictDenied
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictApproved:
		return "approved"
	case VerdictModified:
		return "modified"
	case VerdictDenied:
		return "denied"
	default:
		return "verdict(?)"
	}
}

// Action is the concrete operation the Actuation Service should now send
// to the sensor, present when a decision changed the effective setting.
type Action struct {
	Target wire.StreamID
	Op     wire.Op
	Value  uint32
}

// Decision is the result of Submit or Withdraw.
type Decision struct {
	Verdict Verdict
	Reason  string
	// Effective is the post-decision effective setting for the class
	// (rate in mHz, payload bytes, or 0/1 for enable).
	Effective uint32
	// Changed reports whether the effective setting moved, i.e. whether an
	// actuation is required; Action describes it.
	Changed bool
	Action  *Action
}

// Manager errors.
var (
	ErrBadDemand = errors.New("resource: invalid demand")
	ErrConflict  = errors.New("resource: conflicting demand denied")
	ErrForbidden = errors.New("resource: constraint forbids demand")
)

type ledgerKey struct {
	target wire.StreamID
	class  Class
}

type entry struct {
	demands map[string]Demand // by consumer
	// effective is the currently actuated setting; valid is false until
	// the first demand arrives.
	effective uint32
	valid     bool
	order     []string // consumer arrival order, for PolicyFirstComeDeny
}

// Stats is a snapshot of manager counters.
type Stats struct {
	Submitted   int64
	Approved    int64
	Modified    int64
	Denied      int64
	Withdrawals int64
	Ledger      int // live (stream, class) entries
}

// Manager is the Resource Manager.
type Manager struct {
	mu          sync.Mutex
	policy      Policy
	ledger      map[ledgerKey]*entry
	constraints map[wire.SensorID]Constraints
	defaults    Constraints
	hasDefaults bool

	submitted metrics.Counter
	approved  metrics.Counter
	modified  metrics.Counter
	denied    metrics.Counter
	withdrawn metrics.Counter
}

// NewManager creates a Manager with the given mediation policy
// (PolicyMostDemanding when zero).
func NewManager(policy Policy) *Manager {
	if policy == 0 {
		policy = PolicyMostDemanding
	}
	return &Manager{
		policy:      policy,
		ledger:      make(map[ledgerKey]*entry),
		constraints: make(map[wire.SensorID]Constraints),
	}
}

// Policy returns the current mediation policy.
func (m *Manager) Policy() Policy {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.policy
}

// SetPolicy switches the mediation policy at runtime — the hook the Super
// Coordinator uses to “invoke policy changes in the strategy used by the
// Resource Manager” (§4.2). Existing effective settings are not recomputed
// until the next submission touches them.
func (m *Manager) SetPolicy(p Policy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.policy = p
}

// SetDefaultConstraints applies c to every sensor without specific
// constraints.
func (m *Manager) SetDefaultConstraints(c Constraints) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.defaults = c
	m.hasDefaults = true
}

// SetConstraints codifies the limits of one sensor.
func (m *Manager) SetConstraints(sensor wire.SensorID, c Constraints) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.constraints[sensor] = c
}

func (m *Manager) constraintsFor(sensor wire.SensorID) (Constraints, bool) {
	if c, ok := m.constraints[sensor]; ok {
		return c, true
	}
	if m.hasDefaults {
		return m.defaults, true
	}
	return Constraints{}, false
}

// Submit runs admission control for one demand. Approved and modified
// demands join the standing ledger; the decision reports the effective
// setting and whether actuation is needed.
func (m *Manager) Submit(d Demand) (Decision, error) {
	if d.Consumer == "" {
		return Decision{}, fmt.Errorf("%w: empty consumer", ErrBadDemand)
	}
	class, ok := ClassOf(d.Op)
	if !ok {
		return Decision{}, fmt.Errorf("%w: op %v needs no mediation", ErrBadDemand, d.Op)
	}
	if class == ClassRate && d.Value == 0 {
		return Decision{}, fmt.Errorf("%w: zero rate", ErrBadDemand)
	}
	if class == ClassPayload && (d.Value == 0 || d.Value > wire.MaxPayload) {
		return Decision{}, fmt.Errorf("%w: payload limit %d", ErrBadDemand, d.Value)
	}
	m.submitted.Inc()

	m.mu.Lock()
	defer m.mu.Unlock()

	// Hard constraint screening that cannot be satisfied by clamping.
	cons, hasCons := m.constraintsFor(d.Target.Sensor())
	if hasCons {
		if class == ClassEnable && d.Op == wire.OpEnableStream && cons.MaxActiveStreams > 0 {
			if active := m.activeStreamsLocked(d.Target.Sensor(), d.Target); active >= cons.MaxActiveStreams {
				m.denied.Inc()
				return Decision{
					Verdict: VerdictDenied,
					Reason:  fmt.Sprintf("sensor constraint streams<=%d", cons.MaxActiveStreams),
				}, nil
			}
		}
	}

	key := ledgerKey{target: d.Target, class: class}
	e, exists := m.ledger[key]
	if !exists {
		e = &entry{demands: make(map[string]Demand)}
		m.ledger[key] = e
	}

	if m.policy == PolicyFirstComeDeny {
		for owner, other := range e.demands {
			if owner != d.Consumer && conflicts(class, other, d) {
				m.denied.Inc()
				return Decision{
					Verdict: VerdictDenied,
					Reason: fmt.Sprintf("conflicts with standing demand of %q (%s)",
						owner, describeDemand(class, other)),
				}, nil
			}
		}
	}

	if _, had := e.demands[d.Consumer]; !had {
		e.order = append(e.order, d.Consumer)
	}
	e.demands[d.Consumer] = d

	return m.decideLocked(key, e, &d, cons, hasCons), nil
}

// Withdraw removes one consumer's standing demand on a (target, class) and
// recomputes the effective setting. It reports the new decision (Changed
// set if actuation is needed to relax the sensor) and whether a demand was
// present. When the last demand goes away the entry is removed and no
// relaxation is actuated — the sensor keeps its last setting, matching the
// paper's minimal-sensor model (no implicit defaults on the device).
func (m *Manager) Withdraw(consumer string, target wire.StreamID, class Class) (Decision, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := ledgerKey{target: target, class: class}
	e, ok := m.ledger[key]
	if !ok {
		return Decision{}, false
	}
	if _, had := e.demands[consumer]; !had {
		return Decision{}, false
	}
	delete(e.demands, consumer)
	for i, name := range e.order {
		if name == consumer {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	m.withdrawn.Inc()
	if len(e.demands) == 0 {
		delete(m.ledger, key)
		return Decision{Verdict: VerdictApproved, Effective: e.effective}, true
	}
	cons, hasCons := m.constraintsFor(target.Sensor())
	return m.decideLocked(key, e, nil, cons, hasCons), true
}

// WithdrawAll removes every standing demand of a consumer (a consumer
// leaving the system) and returns the actions needed to re-actuate the
// affected streams.
func (m *Manager) WithdrawAll(consumer string) []Action {
	m.mu.Lock()
	keys := make([]ledgerKey, 0)
	for key, e := range m.ledger {
		if _, ok := e.demands[consumer]; ok {
			keys = append(keys, key)
		}
	}
	m.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].target != keys[j].target {
			return keys[i].target < keys[j].target
		}
		return keys[i].class < keys[j].class
	})
	var actions []Action
	for _, key := range keys {
		if dec, ok := m.Withdraw(consumer, key.target, key.class); ok && dec.Changed && dec.Action != nil {
			actions = append(actions, *dec.Action)
		}
	}
	return actions
}

// decideLocked merges the entry's demands under the current policy, clamps
// to constraints, updates the effective setting, and builds the Decision.
// submitted is the demand that triggered the decision (nil for
// withdrawals).
func (m *Manager) decideLocked(key ledgerKey, e *entry, submitted *Demand, cons Constraints, hasCons bool) Decision {
	merged := m.mergeLocked(key.class, e)
	clamped, clampReason := merged, ""
	if hasCons {
		clamped, clampReason = cons.clamp(key.class, merged)
	}

	changed := !e.valid || clamped != e.effective
	e.effective = clamped
	e.valid = true

	dec := Decision{Effective: clamped, Changed: changed}
	if changed {
		dec.Action = &Action{Target: key.target, Value: clamped}
		switch key.class {
		case ClassRate:
			dec.Action.Op = wire.OpSetRate
		case ClassEnable:
			if clamped != 0 {
				dec.Action.Op = wire.OpEnableStream
			} else {
				dec.Action.Op = wire.OpDisableStream
			}
			dec.Action.Value = 0
		case ClassPayload:
			dec.Action.Op = wire.OpSetPayloadLimit
		}
	}

	switch {
	case submitted == nil:
		dec.Verdict = VerdictApproved
	case demandSatisfied(key.class, *submitted, clamped):
		dec.Verdict = VerdictApproved
		m.approved.Inc()
	default:
		dec.Verdict = VerdictModified
		dec.Reason = fmt.Sprintf("mediated under %v policy", m.policy)
		if clampReason != "" {
			dec.Reason = clampReason
		}
		m.modified.Inc()
	}
	return dec
}

func demandSatisfied(class Class, d Demand, effective uint32) bool {
	switch class {
	case ClassEnable:
		want := uint32(0)
		if d.Op == wire.OpEnableStream {
			want = 1
		}
		return effective == want
	default:
		return effective == d.Value
	}
}

// mergeLocked folds the demands of one entry into a single value under the
// current policy (rate mHz / payload bytes / 0-1 for enable).
func (m *Manager) mergeLocked(class Class, e *entry) uint32 {
	values := make([]uint32, 0, len(e.demands))
	prios := make([]int, 0, len(e.demands))
	for _, name := range e.order {
		d := e.demands[name]
		values = append(values, demandValue(class, d))
		prios = append(prios, d.Priority)
	}
	switch m.policy {
	case PolicyLeastDemanding:
		v := values[0]
		for _, x := range values[1:] {
			if x < v {
				v = x
			}
		}
		return v
	case PolicyPriority:
		best, bestPrio := values[0], prios[0]
		for i := 1; i < len(values); i++ {
			if prios[i] > bestPrio || (prios[i] == bestPrio && values[i] > best) {
				best, bestPrio = values[i], prios[i]
			}
		}
		return best
	case PolicyFirstComeDeny:
		// Conflicts were denied on entry; all demands agree (or are from
		// the same consumer, whose latest value stands).
		return values[len(values)-1]
	default: // PolicyMostDemanding
		v := values[0]
		for _, x := range values[1:] {
			if x > v {
				v = x
			}
		}
		return v
	}
}

func demandValue(class Class, d Demand) uint32 {
	if class == ClassEnable {
		if d.Op == wire.OpEnableStream {
			return 1
		}
		return 0
	}
	return d.Value
}

func conflicts(class Class, a, b Demand) bool {
	return demandValue(class, a) != demandValue(class, b)
}

func describeDemand(class Class, d Demand) string {
	switch class {
	case ClassEnable:
		return d.Op.String()
	default:
		return fmt.Sprintf("%v=%d", d.Op, d.Value)
	}
}

// activeStreamsLocked counts streams of a sensor whose effective enable
// setting is on, excluding `except`.
func (m *Manager) activeStreamsLocked(sensor wire.SensorID, except wire.StreamID) int {
	n := 0
	for key, e := range m.ledger {
		if key.class == ClassEnable && key.target.Sensor() == sensor &&
			key.target != except && e.valid && e.effective == 1 {
			n++
		}
	}
	return n
}

// Effective returns the current effective setting for (target, class).
func (m *Manager) Effective(target wire.StreamID, class Class) (uint32, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.ledger[ledgerKey{target: target, class: class}]
	if !ok || !e.valid {
		return 0, false
	}
	return e.effective, true
}

// StreamOverview is the manager's belief about one stream's configuration.
type StreamOverview struct {
	Target   wire.StreamID
	Class    Class
	Demands  int
	Setting  uint32
	Policies Policy
}

// Overview returns the approximate sensor-configuration overview: every
// ledger entry with its effective setting, sorted by stream then class.
func (m *Manager) Overview() []StreamOverview {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]StreamOverview, 0, len(m.ledger))
	for key, e := range m.ledger {
		out = append(out, StreamOverview{
			Target:   key.target,
			Class:    key.class,
			Demands:  len(e.demands),
			Setting:  e.effective,
			Policies: m.policy,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Target != out[j].Target {
			return out[i].Target < out[j].Target
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// Stats returns a snapshot of manager counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	ledger := len(m.ledger)
	m.mu.Unlock()
	return Stats{
		Submitted:   m.submitted.Value(),
		Approved:    m.approved.Value(),
		Modified:    m.modified.Value(),
		Denied:      m.denied.Value(),
		Withdrawals: m.withdrawn.Value(),
		Ledger:      ledger,
	}
}

package resource

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/garnet-middleware/garnet/internal/wire"
)

// Constraints codifies a sensor's operating limits — the “expressive
// language [for the] codification of sensor constraints” the paper lists
// as future work (§8), in the minimal form the Resource Manager needs to
// enforce limits automatically. The zero value imposes no limits.
type Constraints struct {
	// MaxRateMilliHz caps any stream's sampling rate (0 = unlimited).
	MaxRateMilliHz uint32
	// MinRateMilliHz floors any stream's sampling rate (0 = no floor).
	MinRateMilliHz uint32
	// MaxPayloadBytes caps payload limits (0 = unlimited).
	MaxPayloadBytes uint32
	// MaxActiveStreams caps simultaneously enabled streams (0 = unlimited).
	MaxActiveStreams int
}

// ParseConstraints parses the textual constraint language: a
// semicolon-separated list of clauses
//
//	rate <= 10/s      (also /min and /h, or a bare milli-hertz integer)
//	rate >= 6/min
//	payload <= 1024
//	streams <= 4
//
// Whitespace is insignificant. Unknown clauses or malformed values are
// errors, so misspelled constraints fail loudly at configuration time.
func ParseConstraints(s string) (Constraints, error) {
	var c Constraints
	for _, rawClause := range strings.Split(s, ";") {
		clause := strings.TrimSpace(rawClause)
		if clause == "" {
			continue
		}
		var subject, op, value string
		for _, candidate := range []string{"<=", ">="} {
			if i := strings.Index(clause, candidate); i >= 0 {
				subject = strings.TrimSpace(clause[:i])
				op = candidate
				value = strings.TrimSpace(clause[i+len(candidate):])
				break
			}
		}
		if op == "" {
			return Constraints{}, fmt.Errorf("resource: clause %q: want <= or >=", clause)
		}
		switch subject {
		case "rate":
			mhz, err := parseRate(value)
			if err != nil {
				return Constraints{}, fmt.Errorf("resource: clause %q: %w", clause, err)
			}
			if op == "<=" {
				c.MaxRateMilliHz = mhz
			} else {
				c.MinRateMilliHz = mhz
			}
		case "payload":
			n, err := strconv.ParseUint(value, 10, 32)
			if err != nil || n == 0 || n > wire.MaxPayload {
				return Constraints{}, fmt.Errorf("resource: clause %q: bad payload size", clause)
			}
			if op != "<=" {
				return Constraints{}, fmt.Errorf("resource: clause %q: payload supports only <=", clause)
			}
			c.MaxPayloadBytes = uint32(n)
		case "streams":
			n, err := strconv.Atoi(value)
			if err != nil || n <= 0 || n > wire.MaxStreamIndex+1 {
				return Constraints{}, fmt.Errorf("resource: clause %q: bad stream count", clause)
			}
			if op != "<=" {
				return Constraints{}, fmt.Errorf("resource: clause %q: streams supports only <=", clause)
			}
			c.MaxActiveStreams = n
		default:
			return Constraints{}, fmt.Errorf("resource: clause %q: unknown subject %q", clause, subject)
		}
	}
	if c.MaxRateMilliHz > 0 && c.MinRateMilliHz > c.MaxRateMilliHz {
		return Constraints{}, fmt.Errorf("resource: rate floor %d exceeds cap %d", c.MinRateMilliHz, c.MaxRateMilliHz)
	}
	return c, nil
}

// parseRate converts "10/s", "6/min", "2/h" or a bare milli-hertz count to
// milli-hertz.
func parseRate(s string) (uint32, error) {
	num, unit, hasUnit := strings.Cut(s, "/")
	n, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad rate number %q", num)
	}
	if !hasUnit {
		return uint32(n), nil // bare value: already milli-hertz
	}
	var mhz float64
	switch strings.TrimSpace(unit) {
	case "s":
		mhz = n * 1000
	case "min":
		mhz = n * 1000 / 60
	case "h":
		mhz = n * 1000 / 3600
	default:
		return 0, fmt.Errorf("bad rate unit %q", unit)
	}
	if mhz < 1 {
		mhz = 1
	}
	return uint32(mhz), nil
}

// String renders c in the constraint language.
func (c Constraints) String() string {
	var parts []string
	if c.MaxRateMilliHz > 0 {
		parts = append(parts, fmt.Sprintf("rate<=%dmHz", c.MaxRateMilliHz))
	}
	if c.MinRateMilliHz > 0 {
		parts = append(parts, fmt.Sprintf("rate>=%dmHz", c.MinRateMilliHz))
	}
	if c.MaxPayloadBytes > 0 {
		parts = append(parts, fmt.Sprintf("payload<=%d", c.MaxPayloadBytes))
	}
	if c.MaxActiveStreams > 0 {
		parts = append(parts, fmt.Sprintf("streams<=%d", c.MaxActiveStreams))
	}
	if len(parts) == 0 {
		return "unconstrained"
	}
	return strings.Join(parts, "; ")
}

// clamp forces a merged setting inside the constraints, returning the
// clamped value and a human-readable reason when clamping occurred.
func (c Constraints) clamp(class Class, v uint32) (uint32, string) {
	switch class {
	case ClassRate:
		if c.MaxRateMilliHz > 0 && v > c.MaxRateMilliHz {
			return c.MaxRateMilliHz, fmt.Sprintf("clamped to constraint rate<=%dmHz", c.MaxRateMilliHz)
		}
		if c.MinRateMilliHz > 0 && v < c.MinRateMilliHz {
			return c.MinRateMilliHz, fmt.Sprintf("raised to constraint rate>=%dmHz", c.MinRateMilliHz)
		}
	case ClassPayload:
		if c.MaxPayloadBytes > 0 && v > c.MaxPayloadBytes {
			return c.MaxPayloadBytes, fmt.Sprintf("clamped to constraint payload<=%d", c.MaxPayloadBytes)
		}
	}
	return v, ""
}

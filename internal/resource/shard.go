package resource

import (
	"sort"
	"sync"
	"unsafe"

	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// mshard is one partition of the demand ledger. The partition key is the
// sensor component of the demand's target StreamID — the same
// wire.SensorID.Shard function the Filtering and Dispatching Services
// partition on — so every (stream, class) entry of a sensor lands in one
// shard and a Submit or Withdraw takes exactly one shard mutex. Sensor
// constraints are keyed by sensor too, so they live in the sensor's home
// shard and constraint lookups never leave the shard; only the
// deployment-wide defaults and the mediation policy are global, and both
// are atomic values read without any lock.
type mshard struct {
	mu     sync.Mutex
	ledger map[ledgerKey]*entry
	// constraints holds the codified limits of the sensors homed here.
	constraints map[wire.SensorID]Constraints
	// owners indexes the ledger keys each consumer holds a standing
	// demand on, so WithdrawAll and Apply replace a consumer's demand set
	// without scanning the ledger. This is the single source of truth for
	// demand ownership — the deployment core keeps no duplicate map.
	owners map[string]map[ledgerKey]struct{}

	// Hot-path counters are plain ints mutated only under mu — cheaper
	// than atomics on every submission, and shard-locality keeps
	// unrelated consumers off each other's cache lines. Stats sums them.
	submitted int64
	approved  int64
	modified  int64
	denied    int64
	withdrawn int64
}

// paddedMShard rounds an mshard up to whole cache lines, keeping at
// least 8 bytes of trailing padding, so live fields of adjacent shards
// in the contiguous backing array never share a line even when the
// runtime's 8-byte allocation header shifts the array base off line
// alignment (see the dispatch package's paddedShard for the full
// rationale).
type paddedMShard struct {
	mshard
	_ [(unsafe.Sizeof(mshard{})+metrics.CacheLine+7)/metrics.CacheLine*metrics.CacheLine - unsafe.Sizeof(mshard{})]byte
}

// newShards builds the ledger shards as one contiguous padded array.
func newShards(n int) []*mshard {
	backing := make([]paddedMShard, n)
	shards := make([]*mshard, n)
	for i := range shards {
		sh := &backing[i].mshard
		sh.ledger = make(map[ledgerKey]*entry)
		sh.constraints = make(map[wire.SensorID]Constraints)
		sh.owners = make(map[string]map[ledgerKey]struct{})
		shards[i] = sh
	}
	return shards
}

// shardFor picks a sensor's home shard.
func (m *Manager) shardFor(sensor wire.SensorID) *mshard {
	return m.shards[sensor.Shard(len(m.shards))]
}

// constraintsFor resolves the constraints in force for a sensor: its own
// codified limits, else the deployment defaults. Caller holds sh.mu (the
// defaults pointer itself is atomic and needs no lock).
func (sh *mshard) constraintsFor(m *Manager, sensor wire.SensorID) (Constraints, bool) {
	if c, ok := sh.constraints[sensor]; ok {
		return c, true
	}
	if p := m.defaults.Load(); p != nil {
		return *p, true
	}
	return Constraints{}, false
}

// ownKey records that consumer holds a standing demand on key. Caller
// holds sh.mu.
func (sh *mshard) ownKey(consumer string, key ledgerKey) {
	set := sh.owners[consumer]
	if set == nil {
		set = make(map[ledgerKey]struct{})
		sh.owners[consumer] = set
	}
	set[key] = struct{}{}
}

// disownKey removes key from consumer's owned set. Caller holds sh.mu.
func (sh *mshard) disownKey(consumer string, key ledgerKey) {
	set := sh.owners[consumer]
	delete(set, key)
	if len(set) == 0 {
		delete(sh.owners, consumer)
	}
}

// ownedKeysLocked returns consumer's keys in this shard, sorted by
// (target, class) for deterministic withdrawal order. Caller holds sh.mu.
func (sh *mshard) ownedKeysLocked(consumer string) []ledgerKey {
	set := sh.owners[consumer]
	if len(set) == 0 {
		return nil
	}
	keys := make([]ledgerKey, 0, len(set))
	for key := range set {
		keys = append(keys, key)
	}
	sortLedgerKeys(keys)
	return keys
}

func sortLedgerKeys(keys []ledgerKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].target != keys[j].target {
			return keys[i].target < keys[j].target
		}
		return keys[i].class < keys[j].class
	})
}

// activeStreamsLocked counts streams of a sensor whose effective enable
// setting is on, excluding `except`. Every stream of a sensor is homed in
// the sensor's shard, so the scan never leaves it. Caller holds sh.mu.
func (sh *mshard) activeStreamsLocked(sensor wire.SensorID, except wire.StreamID) int {
	n := 0
	for key, e := range sh.ledger {
		if key.class == ClassEnable && key.target.Sensor() == sensor &&
			key.target != except && e.valid && e.effective == 1 {
			n++
		}
	}
	return n
}

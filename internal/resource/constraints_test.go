package resource

import (
	"strings"
	"testing"
)

func TestParseConstraints(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want Constraints
	}{
		{"empty", "", Constraints{}},
		{"rate per second", "rate<=10/s", Constraints{MaxRateMilliHz: 10_000}},
		{"rate per minute", "rate>=6/min", Constraints{MinRateMilliHz: 100}},
		{"rate per hour", "rate<=36/h", Constraints{MaxRateMilliHz: 10}},
		{"bare millihertz", "rate<=500", Constraints{MaxRateMilliHz: 500}},
		{"payload", "payload<=1024", Constraints{MaxPayloadBytes: 1024}},
		{"streams", "streams<=4", Constraints{MaxActiveStreams: 4}},
		{"combined with spaces", " rate <= 2/s ; payload <= 64 ; streams <= 8 ",
			Constraints{MaxRateMilliHz: 2000, MaxPayloadBytes: 64, MaxActiveStreams: 8}},
		{"trailing semicolon", "rate<=1/s;", Constraints{MaxRateMilliHz: 1000}},
		{"sub-millihertz floors to 1", "rate<=1/h; rate>=1/h", Constraints{MaxRateMilliHz: 1, MinRateMilliHz: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseConstraints(tt.in)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("ParseConstraints(%q) = %+v, want %+v", tt.in, got, tt.want)
			}
		})
	}
}

func TestParseConstraintsErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"unknown subject", "power<=5"},
		{"no operator", "rate 10"},
		{"bad number", "rate<=abc/s"},
		{"bad unit", "rate<=10/fortnight"},
		{"negative rate", "rate<=-1/s"},
		{"zero payload", "payload<=0"},
		{"oversize payload", "payload<=99999999"},
		{"payload floor unsupported", "payload>=10"},
		{"streams floor unsupported", "streams>=1"},
		{"zero streams", "streams<=0"},
		{"too many streams", "streams<=300"},
		{"floor above cap", "rate<=1/s; rate>=10/s"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseConstraints(tt.in); err == nil {
				t.Errorf("ParseConstraints(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestConstraintsString(t *testing.T) {
	if got := (Constraints{}).String(); got != "unconstrained" {
		t.Errorf("zero value String = %q", got)
	}
	c := Constraints{MaxRateMilliHz: 2000, MinRateMilliHz: 10, MaxPayloadBytes: 64, MaxActiveStreams: 2}
	s := c.String()
	for _, want := range []string{"rate<=2000mHz", "rate>=10mHz", "payload<=64", "streams<=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestClamp(t *testing.T) {
	c := Constraints{MaxRateMilliHz: 1000, MinRateMilliHz: 100, MaxPayloadBytes: 256}
	tests := []struct {
		name   string
		class  Class
		in     uint32
		want   uint32
		reason bool
	}{
		{"rate in range", ClassRate, 500, 500, false},
		{"rate above cap", ClassRate, 5000, 1000, true},
		{"rate below floor", ClassRate, 10, 100, true},
		{"payload above cap", ClassPayload, 1024, 256, true},
		{"payload ok", ClassPayload, 64, 64, false},
		{"enable untouched", ClassEnable, 1, 1, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, reason := c.clamp(tt.class, tt.in)
			if got != tt.want || (reason != "") != tt.reason {
				t.Errorf("clamp(%v, %d) = %d, %q", tt.class, tt.in, got, reason)
			}
		})
	}
}

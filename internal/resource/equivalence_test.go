package resource

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/garnet-middleware/garnet/internal/wire"
)

// Sharded-vs-single-lock equivalence: the ledger partition is a pure
// performance structure, so any interleaving of submissions, withdrawals,
// policy flips and demand-set applications must produce identical
// decisions, effective settings, actions and summed stats for every shard
// count. Reason strings are excluded: a first-come denial names *a*
// conflicting owner, which legitimately depends on map iteration order.

type controlOp struct {
	kind     int // 0 submit, 1 withdraw, 2 policy flip, 3 apply, 4 withdraw-all
	demand   Demand
	consumer string
	target   wire.StreamID
	class    Class
	policy   Policy
	owner    string
	demands  []Demand
}

func randomDemand(rng *rand.Rand, consumer string) Demand {
	target := wire.MustStreamID(wire.SensorID(rng.Intn(10)), wire.StreamIndex(rng.Intn(2)))
	d := Demand{Consumer: consumer, Target: target, Priority: rng.Intn(3)}
	switch rng.Intn(4) {
	case 0:
		d.Op = wire.OpSetRate
		d.Value = uint32(rng.Intn(5) + 1)
	case 1:
		d.Op = wire.OpEnableStream
	case 2:
		d.Op = wire.OpDisableStream
	case 3:
		d.Op = wire.OpSetPayloadLimit
		d.Value = uint32(rng.Intn(4)*128 + 64)
	}
	return d
}

func randomScript(rng *rand.Rand, n int) []controlOp {
	consumers := []string{"a", "b", "c", "d"}
	owners := []string{"sc/app1", "sc/app2"}
	policies := []Policy{PolicyMostDemanding, PolicyLeastDemanding, PolicyPriority, PolicyFirstComeDeny}
	ops := make([]controlOp, 0, n)
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); {
		case k < 5:
			ops = append(ops, controlOp{kind: 0, demand: randomDemand(rng, consumers[rng.Intn(len(consumers))])})
		case k < 7:
			ops = append(ops, controlOp{
				kind:     1,
				consumer: consumers[rng.Intn(len(consumers))],
				target:   wire.MustStreamID(wire.SensorID(rng.Intn(10)), wire.StreamIndex(rng.Intn(2))),
				class:    Class(rng.Intn(3) + 1),
			})
		case k < 8:
			ops = append(ops, controlOp{kind: 2, policy: policies[rng.Intn(len(policies))]})
		case k < 9:
			owner := owners[rng.Intn(len(owners))]
			set := make([]Demand, rng.Intn(6))
			for j := range set {
				set[j] = randomDemand(rng, owner)
			}
			ops = append(ops, controlOp{kind: 3, owner: owner, demands: set})
		default:
			ops = append(ops, controlOp{kind: 4, consumer: consumers[rng.Intn(len(consumers))]})
		}
	}
	return ops
}

func sortActions(as []Action) {
	sort.Slice(as, func(i, j int) bool {
		if as[i].Target != as[j].Target {
			return as[i].Target < as[j].Target
		}
		if as[i].Op != as[j].Op {
			return as[i].Op < as[j].Op
		}
		return as[i].Value < as[j].Value
	})
}

func decisionsEqual(a, b Decision) bool {
	if a.Verdict != b.Verdict || a.Effective != b.Effective || a.Changed != b.Changed {
		return false
	}
	if (a.Action == nil) != (b.Action == nil) {
		return false
	}
	return a.Action == nil || *a.Action == *b.Action
}

func TestShardedVsSingleLockEquivalenceProperty(t *testing.T) {
	cons, err := ParseConstraints("rate<=4000; rate>=1; payload<=512; streams<=3")
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 7))
		script := randomScript(rng, 120)

		shardCounts := []int{1, 4, 16}
		managers := make([]*Manager, len(shardCounts))
		for i, n := range shardCounts {
			managers[i] = NewWithOptions(Options{Shards: n})
			managers[i].SetDefaultConstraints(Constraints{MaxRateMilliHz: 8000})
			managers[i].SetConstraints(wire.SensorID(3), cons)
		}

		for step, op := range script {
			switch op.kind {
			case 0:
				ref, refErr := managers[0].Submit(op.demand)
				for i := 1; i < len(managers); i++ {
					got, gotErr := managers[i].Submit(op.demand)
					if (refErr == nil) != (gotErr == nil) || !decisionsEqual(ref, got) {
						t.Fatalf("trial %d step %d shards=%d: Submit(%+v) = (%+v, %v), shards=1 gave (%+v, %v)",
							trial, step, shardCounts[i], op.demand, got, gotErr, ref, refErr)
					}
				}
			case 1:
				ref, refOK := managers[0].Withdraw(op.consumer, op.target, op.class)
				for i := 1; i < len(managers); i++ {
					got, gotOK := managers[i].Withdraw(op.consumer, op.target, op.class)
					if refOK != gotOK || (refOK && !decisionsEqual(ref, got)) {
						t.Fatalf("trial %d step %d shards=%d: Withdraw = (%+v, %v), shards=1 gave (%+v, %v)",
							trial, step, shardCounts[i], got, gotOK, ref, refOK)
					}
				}
			case 2:
				for _, m := range managers {
					m.SetPolicy(op.policy)
				}
			case 3:
				ref := managers[0].Apply(op.owner, op.demands)
				sortActions(ref)
				for i := 1; i < len(managers); i++ {
					got := managers[i].Apply(op.owner, op.demands)
					sortActions(got)
					if len(got) != len(ref) {
						t.Fatalf("trial %d step %d shards=%d: Apply returned %d actions, shards=1 gave %d",
							trial, step, shardCounts[i], len(got), len(ref))
					}
					for j := range got {
						if got[j] != ref[j] {
							t.Fatalf("trial %d step %d shards=%d: Apply action %d = %+v, shards=1 gave %+v",
								trial, step, shardCounts[i], j, got[j], ref[j])
						}
					}
				}
			case 4:
				ref := managers[0].WithdrawAll(op.consumer)
				sortActions(ref)
				for i := 1; i < len(managers); i++ {
					got := managers[i].WithdrawAll(op.consumer)
					sortActions(got)
					if len(got) != len(ref) {
						t.Fatalf("trial %d step %d shards=%d: WithdrawAll returned %d actions, shards=1 gave %d",
							trial, step, shardCounts[i], len(got), len(ref))
					}
					for j := range got {
						if got[j] != ref[j] {
							t.Fatalf("trial %d step %d shards=%d: WithdrawAll action %d = %+v, shards=1 gave %+v",
								trial, step, shardCounts[i], j, got[j], ref[j])
						}
					}
				}
			}
		}

		// Terminal state: summed stats, overview and per-stream effective
		// settings must agree exactly.
		refStats := managers[0].Stats()
		refOverview := managers[0].Overview()
		for i := 1; i < len(managers); i++ {
			st := managers[i].Stats()
			st.Shards = refStats.Shards // partition count is the only allowed difference
			if st != refStats {
				t.Fatalf("trial %d shards=%d: stats %+v, shards=1 gave %+v", trial, shardCounts[i], st, refStats)
			}
			ov := managers[i].Overview()
			if len(ov) != len(refOverview) {
				t.Fatalf("trial %d shards=%d: overview has %d entries, shards=1 has %d",
					trial, shardCounts[i], len(ov), len(refOverview))
			}
			for j := range ov {
				if ov[j] != refOverview[j] {
					t.Fatalf("trial %d shards=%d: overview[%d] = %+v, shards=1 gave %+v",
						trial, shardCounts[i], j, ov[j], refOverview[j])
				}
			}
			for sensor := 0; sensor < 10; sensor++ {
				for index := 0; index < 2; index++ {
					target := wire.MustStreamID(wire.SensorID(sensor), wire.StreamIndex(index))
					for class := ClassRate; class <= ClassPayload; class++ {
						refEff, refOK := managers[0].Effective(target, class)
						gotEff, gotOK := managers[i].Effective(target, class)
						if refOK != gotOK || refEff != gotEff {
							t.Fatalf("trial %d shards=%d: Effective(%v, %v) = (%d, %v), shards=1 gave (%d, %v)",
								trial, shardCounts[i], target, class, gotEff, gotOK, refEff, refOK)
						}
					}
				}
			}
		}
	}
}

// TestControlPlaneRaceStress hammers one sharded manager from many
// goroutines — submissions, withdrawals, policy flips, coordinator-style
// demand-set applications and stats readers — and checks the summed
// counters balance. Run with -race.
func TestControlPlaneRaceStress(t *testing.T) {
	m := NewWithOptions(Options{Shards: 8})
	m.SetDefaultConstraints(Constraints{MaxRateMilliHz: 4000})

	const perWorker = 1500
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			consumer := string(rune('a' + seed))
			for i := 0; i < perWorker; i++ {
				d := randomDemand(rng, consumer)
				if _, err := m.Submit(d); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if rng.Intn(4) == 0 {
					class, _ := ClassOf(d.Op)
					m.Withdraw(consumer, d.Target, class)
				}
			}
			m.WithdrawAll(consumer)
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < perWorker; i++ {
			set := make([]Demand, rng.Intn(4))
			for j := range set {
				set[j] = randomDemand(rng, "sc/app")
			}
			m.Apply("sc/app", set)
		}
		m.Apply("sc/app", nil)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		policies := []Policy{PolicyMostDemanding, PolicyLeastDemanding, PolicyPriority, PolicyFirstComeDeny}
		for i := 0; i < perWorker; i++ {
			m.SetPolicy(policies[i%len(policies)])
			_ = m.Stats()
			if i%64 == 0 {
				_ = m.Overview()
			}
		}
	}()
	wg.Wait()

	st := m.Stats()
	if st.Submitted != st.Approved+st.Modified+st.Denied {
		t.Fatalf("counters unbalanced: %+v", st)
	}
	// Every worker withdrew everything it owned, so the ledger only holds
	// whatever the final Apply left (nothing).
	if st.Ledger != 0 {
		t.Fatalf("ledger not empty after withdraw-all: %+v", st)
	}
}

// A malformed replacement demand must not withdraw the owner's standing
// demand on the same key: the fire-and-forget coordinator contract drops
// the bad value, not the stream.
func TestApplyInvalidReplacementKeepsStandingDemand(t *testing.T) {
	target := wire.MustStreamID(5, 0)
	m := NewWithOptions(Options{Shards: 4})
	if got := m.Apply("sc/app", []Demand{{Target: target, Op: wire.OpSetRate, Value: 2000}}); len(got) != 1 {
		t.Fatalf("initial apply actions = %+v", got)
	}
	// Value 0 is an invalid rate: the demand is dropped, the standing
	// 2000 mHz demand survives, and nothing is actuated.
	if got := m.Apply("sc/app", []Demand{{Target: target, Op: wire.OpSetRate, Value: 0}}); len(got) != 0 {
		t.Fatalf("invalid replacement produced actions %+v", got)
	}
	if eff, ok := m.Effective(target, ClassRate); !ok || eff != 2000 {
		t.Fatalf("effective = (%d, %v), want standing 2000", eff, ok)
	}
	// An empty set still withdraws it.
	m.Apply("sc/app", nil)
	if _, ok := m.Effective(target, ClassRate); ok {
		t.Fatal("standing demand survived an empty replacement set")
	}
}

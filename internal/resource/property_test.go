package resource

import (
	"testing"
	"testing/quick"

	"github.com/garnet-middleware/garnet/internal/wire"
)

// Additional property tests on the demand ledger.

// Property: after WithdrawAll(consumer), no ledger entry mentions the
// consumer, and effective settings equal a fresh manager fed only the
// remaining consumers' demands.
func TestWithdrawAllEquivalenceProperty(t *testing.T) {
	f := func(values []uint16, victimRaw uint8) bool {
		if len(values) == 0 {
			return true
		}
		consumers := []string{"a", "b", "c"}
		victim := consumers[int(victimRaw)%len(consumers)]

		full := NewManager(PolicyMostDemanding)
		rest := NewManager(PolicyMostDemanding)
		for i, v := range values {
			d := Demand{
				Consumer: consumers[i%len(consumers)],
				Target:   wire.MustStreamID(wire.SensorID(i%4), 0),
				Op:       wire.OpSetRate,
				Value:    uint32(v) + 1,
			}
			if _, err := full.Submit(d); err != nil {
				return false
			}
			if d.Consumer != victim {
				if _, err := rest.Submit(d); err != nil {
					return false
				}
			}
		}
		full.WithdrawAll(victim)
		for sensor := 0; sensor < 4; sensor++ {
			target := wire.MustStreamID(wire.SensorID(sensor), 0)
			gotEff, gotOK := full.Effective(target, ClassRate)
			wantEff, wantOK := rest.Effective(target, ClassRate)
			if gotOK != wantOK {
				return false
			}
			if gotOK && gotEff != wantEff {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: submissions never return an Action that violates the
// registered constraints, for any demand sequence.
func TestActionsRespectConstraintsProperty(t *testing.T) {
	cons := Constraints{MinRateMilliHz: 50, MaxRateMilliHz: 2000, MaxPayloadBytes: 512}
	f := func(ops []bool, values []uint16) bool {
		m := NewManager(PolicyMostDemanding)
		m.SetDefaultConstraints(cons)
		n := len(ops)
		if len(values) < n {
			n = len(values)
		}
		for i := 0; i < n; i++ {
			d := Demand{
				Consumer: "c" + string(rune('a'+i%7)),
				Target:   wire.MustStreamID(1, 0),
				Value:    uint32(values[i]) + 1,
			}
			if ops[i] {
				d.Op = wire.OpSetRate
			} else {
				d.Op = wire.OpSetPayloadLimit
				if d.Value > wire.MaxPayload {
					d.Value = wire.MaxPayload
				}
			}
			dec, err := m.Submit(d)
			if err != nil {
				return false
			}
			if dec.Action == nil {
				continue
			}
			switch dec.Action.Op {
			case wire.OpSetRate:
				if dec.Action.Value < cons.MinRateMilliHz || dec.Action.Value > cons.MaxRateMilliHz {
					return false
				}
			case wire.OpSetPayloadLimit:
				if dec.Action.Value > cons.MaxPayloadBytes {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the ledger size equals the number of distinct (target, class)
// pairs with at least one standing demand.
func TestLedgerSizeProperty(t *testing.T) {
	f := func(targets []uint8) bool {
		m := NewManager(PolicyMostDemanding)
		distinct := map[wire.StreamID]bool{}
		for i, raw := range targets {
			target := wire.MustStreamID(wire.SensorID(raw%8), 0)
			distinct[target] = true
			if _, err := m.Submit(Demand{
				Consumer: "c" + string(rune('a'+i%3)),
				Target:   target,
				Op:       wire.OpSetRate,
				Value:    100,
			}); err != nil {
				return false
			}
		}
		return m.Stats().Ledger == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

package resource

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/garnet-middleware/garnet/internal/wire"
)

var target = wire.MustStreamID(7, 1)

func rateDemand(consumer string, mHz uint32, prio int) Demand {
	return Demand{Consumer: consumer, Target: target, Op: wire.OpSetRate, Value: mHz, Priority: prio}
}

func TestSubmitFirstDemandApproved(t *testing.T) {
	m := NewManager(PolicyMostDemanding)
	dec, err := m.Submit(rateDemand("a", 1000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Verdict != VerdictApproved || dec.Effective != 1000 || !dec.Changed {
		t.Fatalf("decision = %+v", dec)
	}
	if dec.Action == nil || dec.Action.Op != wire.OpSetRate || dec.Action.Value != 1000 {
		t.Fatalf("action = %+v", dec.Action)
	}
}

func TestMostDemandingMediation(t *testing.T) {
	m := NewManager(PolicyMostDemanding)
	if _, err := m.Submit(rateDemand("a", 1000, 0)); err != nil {
		t.Fatal(err)
	}
	// A second, hungrier consumer raises the effective rate.
	dec, err := m.Submit(rateDemand("b", 4000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Verdict != VerdictApproved || dec.Effective != 4000 || !dec.Changed {
		t.Fatalf("hungrier demand: %+v", dec)
	}
	// A third, slower consumer is accepted but modified: the stream keeps
	// running at 4 Hz for the hungrier consumer.
	dec, err = m.Submit(rateDemand("c", 500, 0))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Verdict != VerdictModified || dec.Effective != 4000 || dec.Changed {
		t.Fatalf("slower demand: %+v", dec)
	}
}

func TestLeastDemandingMediation(t *testing.T) {
	m := NewManager(PolicyLeastDemanding)
	if _, err := m.Submit(rateDemand("a", 4000, 0)); err != nil {
		t.Fatal(err)
	}
	dec, err := m.Submit(rateDemand("b", 1000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Effective != 1000 || !dec.Changed {
		t.Fatalf("decision = %+v", dec)
	}
}

func TestPriorityMediation(t *testing.T) {
	m := NewManager(PolicyPriority)
	if _, err := m.Submit(rateDemand("low", 8000, 1)); err != nil {
		t.Fatal(err)
	}
	dec, err := m.Submit(rateDemand("high", 2000, 10))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Verdict != VerdictApproved || dec.Effective != 2000 {
		t.Fatalf("high priority should win: %+v", dec)
	}
}

func TestFirstComeDenyConflicts(t *testing.T) {
	m := NewManager(PolicyFirstComeDeny)
	if _, err := m.Submit(rateDemand("a", 1000, 0)); err != nil {
		t.Fatal(err)
	}
	dec, err := m.Submit(rateDemand("b", 2000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Verdict != VerdictDenied || dec.Reason == "" {
		t.Fatalf("conflicting demand: %+v", dec)
	}
	// An agreeing demand is fine.
	dec, err = m.Submit(rateDemand("c", 1000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Verdict != VerdictApproved {
		t.Fatalf("agreeing demand: %+v", dec)
	}
	// The sole holder may revise its own demand (fresh manager: no other
	// standing demands to conflict with).
	m2 := NewManager(PolicyFirstComeDeny)
	if _, err := m2.Submit(rateDemand("a", 1000, 0)); err != nil {
		t.Fatal(err)
	}
	dec, err = m2.Submit(rateDemand("a", 3000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Verdict == VerdictDenied {
		t.Fatalf("self-revision denied: %+v", dec)
	}
	if dec.Effective != 3000 {
		t.Fatalf("self-revision effective = %d", dec.Effective)
	}
}

func TestEnableMediation(t *testing.T) {
	m := NewManager(PolicyMostDemanding)
	enable := Demand{Consumer: "a", Target: target, Op: wire.OpEnableStream}
	disable := Demand{Consumer: "b", Target: target, Op: wire.OpDisableStream}
	dec, err := m.Submit(enable)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Effective != 1 || dec.Action.Op != wire.OpEnableStream {
		t.Fatalf("enable: %+v", dec)
	}
	// Under most-demanding, one enabler outvotes a disabler.
	dec, err = m.Submit(disable)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Verdict != VerdictModified || dec.Effective != 1 || dec.Changed {
		t.Fatalf("disable while another wants it on: %+v", dec)
	}
	// When the enabler withdraws, the stream turns off.
	wd, ok := m.Withdraw("a", target, ClassEnable)
	if !ok {
		t.Fatal("withdraw reported no demand")
	}
	if !wd.Changed || wd.Action == nil || wd.Action.Op != wire.OpDisableStream {
		t.Fatalf("withdraw decision: %+v", wd)
	}
}

func TestConstraintClamping(t *testing.T) {
	m := NewManager(PolicyMostDemanding)
	cons, err := ParseConstraints("rate<=2/s; rate>=1/min")
	if err != nil {
		t.Fatal(err)
	}
	m.SetConstraints(target.Sensor(), cons)

	dec, err := m.Submit(rateDemand("greedy", 10_000, 0)) // 10 Hz > 2 Hz cap
	if err != nil {
		t.Fatal(err)
	}
	if dec.Verdict != VerdictModified || dec.Effective != 2000 {
		t.Fatalf("clamped decision: %+v", dec)
	}
	if dec.Reason == "" {
		t.Fatal("clamp must carry a reason")
	}

	dec, err = m.Submit(rateDemand("sleepy", 1, 0)) // below 1/min floor
	if err != nil {
		t.Fatal(err)
	}
	// Most-demanding keeps 2000 anyway (mediated with greedy), so still
	// modified; check floor via a fresh manager.
	m2 := NewManager(PolicyMostDemanding)
	m2.SetConstraints(target.Sensor(), cons)
	dec, err = m2.Submit(rateDemand("sleepy", 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Effective < 16 { // 1/min ≈ 16 mHz
		t.Fatalf("floor not applied: %+v", dec)
	}
}

func TestMaxActiveStreamsDeniesEnable(t *testing.T) {
	m := NewManager(PolicyMostDemanding)
	cons, err := ParseConstraints("streams<=2")
	if err != nil {
		t.Fatal(err)
	}
	m.SetDefaultConstraints(cons)

	for i := 0; i < 2; i++ {
		st := wire.MustStreamID(7, wire.StreamIndex(i))
		dec, err := m.Submit(Demand{Consumer: "a", Target: st, Op: wire.OpEnableStream})
		if err != nil {
			t.Fatal(err)
		}
		if dec.Verdict == VerdictDenied {
			t.Fatalf("stream %d denied prematurely", i)
		}
	}
	dec, err := m.Submit(Demand{Consumer: "a", Target: wire.MustStreamID(7, 2), Op: wire.OpEnableStream})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Verdict != VerdictDenied {
		t.Fatalf("third enable should be denied: %+v", dec)
	}
	// A different sensor is unaffected.
	dec, err = m.Submit(Demand{Consumer: "a", Target: wire.MustStreamID(8, 0), Op: wire.OpEnableStream})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Verdict == VerdictDenied {
		t.Fatal("constraint leaked to another sensor")
	}
}

func TestWithdrawRecomputes(t *testing.T) {
	m := NewManager(PolicyMostDemanding)
	if _, err := m.Submit(rateDemand("a", 1000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(rateDemand("b", 4000, 0)); err != nil {
		t.Fatal(err)
	}
	dec, ok := m.Withdraw("b", target, ClassRate)
	if !ok {
		t.Fatal("withdraw failed")
	}
	if dec.Effective != 1000 || !dec.Changed || dec.Action.Value != 1000 {
		t.Fatalf("after withdraw: %+v", dec)
	}
	// Withdrawing the last demand empties the ledger without actuation.
	dec, ok = m.Withdraw("a", target, ClassRate)
	if !ok {
		t.Fatal("second withdraw failed")
	}
	if _, live := m.Effective(target, ClassRate); live {
		t.Fatal("ledger entry survived last withdrawal")
	}
}

func TestWithdrawUnknown(t *testing.T) {
	m := NewManager(PolicyMostDemanding)
	if _, ok := m.Withdraw("ghost", target, ClassRate); ok {
		t.Fatal("withdraw of unknown demand reported ok")
	}
	if _, err := m.Submit(rateDemand("a", 1000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Withdraw("ghost", target, ClassRate); ok {
		t.Fatal("withdraw by non-holder reported ok")
	}
}

func TestWithdrawAll(t *testing.T) {
	m := NewManager(PolicyMostDemanding)
	t2 := wire.MustStreamID(7, 2)
	if _, err := m.Submit(rateDemand("a", 4000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(rateDemand("b", 1000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Demand{Consumer: "a", Target: t2, Op: wire.OpEnableStream}); err != nil {
		t.Fatal(err)
	}
	actions := m.WithdrawAll("a")
	// Rate drops to b's 1000; enable entry disappears without action.
	if len(actions) != 1 || actions[0].Op != wire.OpSetRate || actions[0].Value != 1000 {
		t.Fatalf("actions = %+v", actions)
	}
	if st := m.Stats(); st.Ledger != 1 {
		t.Fatalf("ledger = %d, want 1", st.Ledger)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := NewManager(PolicyMostDemanding)
	tests := []struct {
		name string
		d    Demand
	}{
		{"empty consumer", Demand{Target: target, Op: wire.OpSetRate, Value: 1}},
		{"unmediated op", Demand{Consumer: "a", Target: target, Op: wire.OpPing}},
		{"zero rate", Demand{Consumer: "a", Target: target, Op: wire.OpSetRate}},
		{"zero payload", Demand{Consumer: "a", Target: target, Op: wire.OpSetPayloadLimit}},
		{"huge payload", Demand{Consumer: "a", Target: target, Op: wire.OpSetPayloadLimit, Value: 1 << 20}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := m.Submit(tt.d); !errors.Is(err, ErrBadDemand) {
				t.Errorf("err = %v, want ErrBadDemand", err)
			}
		})
	}
}

func TestSetPolicyAffectsNextDecision(t *testing.T) {
	m := NewManager(PolicyMostDemanding)
	if _, err := m.Submit(rateDemand("a", 1000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(rateDemand("b", 9000, 0)); err != nil {
		t.Fatal(err)
	}
	m.SetPolicy(PolicyLeastDemanding)
	if m.Policy() != PolicyLeastDemanding {
		t.Fatal("Policy getter wrong")
	}
	dec, err := m.Submit(rateDemand("c", 5000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Effective != 1000 {
		t.Fatalf("least-demanding after switch: %+v", dec)
	}
}

func TestOverview(t *testing.T) {
	m := NewManager(PolicyMostDemanding)
	if _, err := m.Submit(rateDemand("a", 1000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(rateDemand("b", 2000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Demand{Consumer: "a", Target: target, Op: wire.OpEnableStream}); err != nil {
		t.Fatal(err)
	}
	ov := m.Overview()
	if len(ov) != 2 {
		t.Fatalf("overview = %d entries, want 2", len(ov))
	}
	if ov[0].Class != ClassRate || ov[0].Demands != 2 || ov[0].Setting != 2000 {
		t.Fatalf("rate overview: %+v", ov[0])
	}
	if ov[1].Class != ClassEnable || ov[1].Setting != 1 {
		t.Fatalf("enable overview: %+v", ov[1])
	}
}

// Property: under most-demanding / least-demanding, the effective rate is
// exactly the max / min of the standing demands, regardless of order.
func TestMergePolicyProperty(t *testing.T) {
	f := func(values []uint16) bool {
		if len(values) == 0 {
			return true
		}
		max := NewManager(PolicyMostDemanding)
		min := NewManager(PolicyLeastDemanding)
		var wantMax, wantMin uint32
		for i, v := range values {
			val := uint32(v) + 1 // rates must be non-zero
			if i == 0 || val > wantMax {
				wantMax = val
			}
			if i == 0 || val < wantMin {
				wantMin = val
			}
			name := "c" + string(rune('0'+i%10)) + string(rune('a'+(i/10)%26))
			if _, err := max.Submit(rateDemand(name, val, 0)); err != nil {
				return false
			}
			if _, err := min.Submit(rateDemand(name, val, 0)); err != nil {
				return false
			}
		}
		gotMax, ok1 := max.Effective(target, ClassRate)
		gotMin, ok2 := min.Effective(target, ClassRate)
		return ok1 && ok2 && gotMax == wantMax && gotMin == wantMin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: with constraints set, the effective rate never violates them.
func TestConstraintInvariantProperty(t *testing.T) {
	cons := Constraints{MinRateMilliHz: 100, MaxRateMilliHz: 5000}
	f := func(values []uint16) bool {
		m := NewManager(PolicyMostDemanding)
		m.SetDefaultConstraints(cons)
		for i, v := range values {
			val := uint32(v) + 1
			name := "c" + string(rune('a'+i%26))
			if _, err := m.Submit(rateDemand(name, val, 0)); err != nil {
				return false
			}
			eff, ok := m.Effective(target, ClassRate)
			if !ok || eff < cons.MinRateMilliHz || eff > cons.MaxRateMilliHz {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStatsCounters(t *testing.T) {
	m := NewManager(PolicyFirstComeDeny)
	if _, err := m.Submit(rateDemand("a", 1000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(rateDemand("b", 2000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Withdraw("a", target, ClassRate); !ok {
		t.Fatal("withdraw failed")
	}
	st := m.Stats()
	if st.Submitted != 2 || st.Approved != 1 || st.Denied != 1 || st.Withdrawals != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

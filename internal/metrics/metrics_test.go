package metrics

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value should read 0")
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Fatalf("Value = %d, want 16000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
	g.Set(0)
	if got := g.Value(); got != 0 {
		t.Fatalf("Value after Set(0) = %d, want 0", got)
	}
}

// TestGaugeConcurrent exercises the pattern the Stream Store relies on:
// per-shard gauges adjusted up and down under concurrent load, summed by
// a Stats reader. Balanced add/remove pairs must net to zero.
func TestGaugeConcurrent(t *testing.T) {
	const shards, workers, perWorker = 4, 8, 1000
	gauges := make([]Gauge, shards)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := &gauges[w%shards]
			for i := 0; i < perWorker; i++ {
				g.Add(5)
				g.Add(-5)
			}
		}(w)
	}
	// Concurrent summed reads must never panic or tear.
	for i := 0; i < 100; i++ {
		var sum int64
		for s := range gauges {
			sum += gauges[s].Value()
		}
		_ = sum
	}
	wg.Wait()
	var sum int64
	for s := range gauges {
		sum += gauges[s].Value()
	}
	if sum != 0 {
		t.Fatalf("balanced adds summed to %d, want 0", sum)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 {
		t.Fatal("empty count")
	}
	if !math.IsNaN(h.Mean()) || !math.IsNaN(h.Percentile(50)) || !math.IsNaN(h.Min()) || !math.IsNaN(h.Max()) {
		t.Fatal("empty histogram statistics should be NaN")
	}
}

func TestHistogramStatistics(t *testing.T) {
	var h Histogram
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Mean(); got != 3 {
		t.Fatalf("Mean = %v, want 3", got)
	}
	if got := h.Min(); got != 1 {
		t.Fatalf("Min = %v, want 1", got)
	}
	if got := h.Max(); got != 5 {
		t.Fatalf("Max = %v, want 5", got)
	}
	if got := h.Percentile(50); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if got := h.Percentile(90); got != 5 {
		t.Fatalf("p90 = %v, want 5", got)
	}
	if got := h.Percentile(20); got != 1 {
		t.Fatalf("p20 = %v, want 1", got)
	}
}

func TestHistogramObserveAfterPercentile(t *testing.T) {
	// Percentile sorts in place; later observations must still be seen.
	var h Histogram
	h.Observe(10)
	_ = h.Percentile(50)
	h.Observe(1)
	if got := h.Min(); got != 1 {
		t.Fatalf("Min after late observe = %v, want 1", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(1500 * time.Microsecond)
	if got := h.Mean(); got != 1.5 {
		t.Fatalf("Mean = %v ms, want 1.5", got)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("Reset did not clear samples")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(float64(j))
				if j%100 == 0 {
					_ = h.Percentile(50)
				}
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 4000 {
		t.Fatalf("Count = %d, want 4000", got)
	}
}

func TestLabeledCounter(t *testing.T) {
	var lc LabeledCounter
	a := lc.With("a")
	a.Inc()
	a.Add(2)
	lc.With("b").Inc()
	if lc.With("a") != a {
		t.Fatal("With must return a stable pointer per label")
	}
	snap := lc.Snapshot()
	if snap["a"] != 3 || snap["b"] != 1 {
		t.Fatalf("Snapshot = %v, want a=3 b=1", snap)
	}
	if _, ok := snap["c"]; ok {
		t.Fatal("Snapshot invented a label")
	}
}

func TestLabeledCounterConcurrent(t *testing.T) {
	var lc LabeledCounter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			label := fmt.Sprintf("l%d", i%2)
			for j := 0; j < 1000; j++ {
				lc.With(label).Inc()
			}
		}(i)
	}
	wg.Wait()
	snap := lc.Snapshot()
	if snap["l0"] != 4000 || snap["l1"] != 4000 {
		t.Fatalf("Snapshot = %v, want l0=l1=4000", snap)
	}
}

// Package metrics provides the small set of instrumentation primitives the
// middleware services and the experiment harness share: atomic counters,
// gauges and an exact sample-recording histogram for latency and error
// distributions. The experiments are bounded, so the histogram keeps every
// sample and reports exact percentiles rather than bucket approximations.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// CacheLine is the coherence granularity the padded primitives assume.
// 64 bytes is correct for every amd64 and most arm64 parts; on CPUs with
// a larger effective granularity (adjacent-line prefetchers pairing two
// lines) padding to one line still removes the worst of the ping-pong.
const CacheLine = 64

// VerifyPadding checks the layout invariant behind the padded shard
// tables: given the addresses of consecutive padded cells and the size
// of the live (unpadded) struct inside each, no cell's live bytes may
// share a cache line with another's. This is what stops cross-shard
// false sharing; it deliberately does not require the base address to
// be line-aligned, because the runtime's 8-byte allocation header can
// shift a pointer-bearing array to 8 mod CacheLine — the ≥8-byte tail
// padding in each cell absorbs exactly that shift. Returns a
// description of the first violation, or "" when the layout is sound.
func VerifyPadding(addrs []uintptr, liveSize uintptr) string {
	for i := 1; i < len(addrs); i++ {
		prevLast := (addrs[i-1] + liveSize - 1) / CacheLine
		first := addrs[i] / CacheLine
		if first <= prevLast {
			return fmt.Sprintf("cells %d and %d share cache line %d (addrs %#x+%d, %#x)",
				i-1, i, first, addrs[i-1], liveSize, addrs[i])
		}
	}
	return ""
}

// Counter is a monotonically increasing atomic counter.
// The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter to stay monotonic;
// this is not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value.
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// PaddedCounter is a Counter occupying a whole cache line, for per-shard
// or per-consumer counter cells that live adjacent in one array or are
// allocated back to back: without the padding, two cells updated by
// different cores ping-pong one line between them (false sharing) even
// though the cells are logically independent. Use the embedded Counter's
// methods; the padding is invisible to callers.
type PaddedCounter struct {
	Counter
	_ [CacheLine - 8]byte
}

// PaddedGauge is a Gauge occupying a whole cache line; see PaddedCounter.
type PaddedGauge struct {
	Gauge
	_ [CacheLine - 8]byte
}

// LabeledCounter is a set of Counters keyed by a string label (for
// per-consumer or per-stream accounting). The zero value is ready to use.
// With returns a stable *Counter per label, so hot paths resolve their
// label once and then increment lock-free. Each label's cell is padded to
// a full cache line: per-label counters are hot (every async overflow
// drop hits one), and without padding the tiny allocations pack several
// labels' cells into one line, so unrelated consumers' accounting would
// contend.
type LabeledCounter struct {
	mu sync.Mutex
	m  map[string]*PaddedCounter
}

// With returns the counter for label, creating it on first use. The
// returned pointer stays valid for the LabeledCounter's lifetime.
func (lc *LabeledCounter) With(label string) *Counter {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.m == nil {
		lc.m = make(map[string]*PaddedCounter)
	}
	c, ok := lc.m[label]
	if !ok {
		c = &PaddedCounter{}
		lc.m[label] = c
	}
	return &c.Counter
}

// Snapshot returns the current value of every label's counter.
func (lc *LabeledCounter) Snapshot() map[string]int64 {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := make(map[string]int64, len(lc.m))
	for label, c := range lc.m {
		out[label] = c.Value()
	}
	return out
}

// Histogram records every observed sample and reports exact order
// statistics. The zero value is ready to use. Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sorted = false
	h.mu.Unlock()
}

// ObserveDuration records a duration sample in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Merge appends every sample of src into h. The two histograms are
// locked one at a time, never together, so shard-local histograms can be
// merged into a snapshot while writers keep observing.
func (h *Histogram) Merge(src *Histogram) {
	src.mu.Lock()
	samples := append([]float64(nil), src.samples...)
	src.mu.Unlock()
	if len(samples) == 0 {
		return
	}
	h.mu.Lock()
	h.samples = append(h.samples, samples...)
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the arithmetic mean, or NaN when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0, 100]) by
// nearest-rank, or NaN when empty.
func (h *Histogram) Percentile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return math.NaN()
	}
	h.sortLocked()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	return h.samples[rank-1]
}

// Min returns the smallest sample, or NaN when empty.
func (h *Histogram) Min() float64 { return h.Percentile(0) }

// Max returns the largest sample, or NaN when empty.
func (h *Histogram) Max() float64 { return h.Percentile(100) }

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sorted = false
	h.mu.Unlock()
}

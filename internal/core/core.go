// Package core assembles the complete Garnet middleware of Figure 1: the
// simulated wireless medium, the receiver array feeding the Filtering and
// Location Services, the Dispatching Service with its Orphanage, and the
// return actuation path (Resource Manager → Actuation Service → Message
// Replicator → Transmitters), coordinated by the Super Coordinator and
// guarded by the consumer registry.
//
// A Deployment owns every component's lifecycle. The data path is
//
//	sensors ⇒ medium ⇒ receivers ⇒ (location service, filter) ⇒
//	dispatcher ⇒ consumers | orphanage
//
// and the control path is
//
//	consumer demand ⇒ resource manager (admission + mediation) ⇒
//	actuation service (ids, timestamps, checksums, retries) ⇒
//	replicator (location-area targeting) ⇒ transmitters ⇒ medium ⇒ sensor
//
// with sensor acknowledgements detected on the data path and fed back to
// the actuation service.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/garnet-middleware/garnet/internal/actuation"
	"github.com/garnet-middleware/garnet/internal/consumer"
	"github.com/garnet-middleware/garnet/internal/coordinator"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/location"
	"github.com/garnet-middleware/garnet/internal/orphanage"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/registry"
	"github.com/garnet-middleware/garnet/internal/replicator"
	"github.com/garnet-middleware/garnet/internal/resource"
	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/store"
	"github.com/garnet-middleware/garnet/internal/transmit"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Config assembles a Deployment. Zero values select sensible defaults:
// real clock, perfect radio, synchronous dispatch, most-demanding
// mediation.
type Config struct {
	Clock sim.Clock
	// Radio configures medium impairments and the medium's spatial index
	// (Radio.GridCell; the garnet.WithFieldGrid facade option threads it
	// here).
	Radio       radio.Params
	Filter      filtering.Options
	Dispatch    dispatch.Options
	Orphanage   orphanage.Options
	Location    location.Options
	Actuation   actuation.Options
	Replicator  replicator.Options
	Coordinator coordinator.Options
	// Resource configures the Resource Manager (control-plane sharding;
	// the garnet.WithControlShards facade option threads Shards here).
	Resource resource.Options
	// Store configures the Stream Store, the retention layer every
	// accepted delivery tees into before dispatch (the
	// garnet.WithStoreRetention / WithStoreShards facade options thread
	// fields here). Its per-stream count bound is raised to at least the
	// Orphanage's per-stream capacity so orphan claims always find their
	// full backlog window.
	Store store.Options
	// Policy is the initial mediation policy; it is folded into
	// Resource.Policy when that field is zero.
	Policy resource.Policy
	// Secret signs registry tokens. Required.
	Secret []byte
	// LocationPublishPeriod, when positive, publishes location estimates
	// as data streams (reserved index) at this period.
	LocationPublishPeriod time.Duration
	// IngestBatch, when > 1, collects receptions into a bounded flush
	// buffer of this size and drives the batched pipeline — one
	// filter.IngestBatch → store.AppendBatch → dispatcher.DispatchBatch
	// chain per flush, amortizing every per-message lock and CAS on the
	// producer side. The buffer flushes when full and whenever the next
	// reception carries a different timestamp (the same-instant
	// boundary), so virtual-clock schedules and delivery ordering are
	// bit-for-bit those of the default per-message path (IngestBatch
	// <= 1, which bypasses the buffer entirely).
	IngestBatch int
}

// Deployment is a fully wired Garnet fixed-network instance plus the
// simulated field attached to it.
type Deployment struct {
	clock  sim.Clock
	medium *radio.Medium

	filter     *filtering.Filter
	ingestBuf  *ingestBuffer // nil unless Config.IngestBatch > 1
	dispatcher *dispatch.Dispatcher
	st         *store.Store
	orphan     *orphanage.Orphanage
	locSvc     *location.Service
	registry   *registry.Registry
	rm         *resource.Manager
	acts       *actuation.Service
	repl       *replicator.Replicator
	coord      *coordinator.Coordinator

	// mu guards the component registries and lifecycle flags only — the
	// control path (demand submission, application, actuation) never
	// takes it; ownership bookkeeping lives in the resource manager's
	// sharded ledger.
	mu           sync.Mutex
	receivers    []*receiver.Receiver
	transmitters []*transmit.Transmitter
	sensors      []*sensor.Node
	nextVirtual  wire.SensorID
	locTicker    *sim.Ticker
	started      bool
	stopped      bool
}

// ErrLifecycle is returned for operations against a stopped deployment.
var ErrLifecycle = errors.New("core: deployment stopped")

// New builds a Deployment from cfg. New panics on a missing Secret (a
// deployment configuration error surfaced at startup, not at first use).
func New(cfg Config) *Deployment {
	if cfg.Clock == nil {
		cfg.Clock = sim.RealClock{}
	}
	if len(cfg.Secret) == 0 {
		panic("core: Config.Secret required")
	}
	d := &Deployment{
		clock:       cfg.Clock,
		nextVirtual: consumer.VirtualSensorBase,
	}
	d.medium = radio.NewMedium(cfg.Clock, cfg.Radio)
	storeOpts := cfg.Store
	if storeOpts.MaxMessages <= 0 {
		storeOpts.MaxMessages = store.DefaultMaxMessages
	}
	orphCap := cfg.Orphanage.PerStreamCapacity
	if orphCap <= 0 {
		orphCap = orphanage.DefaultPerStreamCapacity
	}
	if storeOpts.MaxMessages < orphCap {
		storeOpts.MaxMessages = orphCap
	}
	d.st = store.New(storeOpts)
	d.orphan = orphanage.NewWithStore(cfg.Orphanage, d.st)
	d.dispatcher = dispatch.New(cfg.Dispatch)
	d.dispatcher.SetOrphanSink(d.orphan.Consume)

	filterOpts := cfg.Filter
	if filterOpts.ReorderWindow > 0 && filterOpts.Clock == nil {
		filterOpts.Clock = cfg.Clock
	}
	if cfg.IngestBatch > 1 {
		d.ingestBuf = newIngestBuffer(d, cfg.IngestBatch)
		filterOpts.BatchSink = d.onFilteredBatch
	}
	d.filter = filtering.New(d.onFiltered, filterOpts)

	d.locSvc = location.New(cfg.Clock, cfg.Location)
	d.registry = registry.New(cfg.Secret, cfg.Clock)
	resOpts := cfg.Resource
	if resOpts.Policy == 0 {
		resOpts.Policy = cfg.Policy
	}
	d.rm = resource.NewWithOptions(resOpts)
	d.repl = replicator.New(d.locSvc, cfg.Replicator)
	d.acts = actuation.NewService(cfg.Clock, func(c wire.ControlMessage) {
		// ErrNoTransmitters is visible through replicator stats; the
		// actuation retry loop covers transient emptiness.
		_, _ = d.repl.Send(c)
	}, cfg.Actuation)
	coordOpts := cfg.Coordinator
	if coordOpts.PolicySelector != nil && coordOpts.SetPolicy == nil {
		coordOpts.SetPolicy = d.rm.SetPolicy
	}
	d.coord = coordinator.New(cfg.Clock, coordinator.DemandSinkFunc(d.ApplyDemands), coordOpts)

	if cfg.LocationPublishPeriod > 0 {
		d.locTicker = sim.NewTicker(cfg.Clock, cfg.LocationPublishPeriod, func(now time.Time) {
			for _, msg := range d.locSvc.ComposeUpdates() {
				d.publish(filtering.Delivery{
					Msg: msg, At: now, Receiver: "location-service", RSSI: 1,
				})
			}
		})
	}
	return d
}

// publish tees one delivery into the Stream Store — stamping its 64-bit
// retention address onto Delivery.StoreSeq — and hands it to the
// Dispatching Service. Every delivery entering the dispatcher (filtered
// receptions, derived streams, location updates) funnels through here,
// so retained history and live delivery share one address space.
func (d *Deployment) publish(del filtering.Delivery) {
	del.StoreSeq = d.st.Append(del)
	d.dispatcher.Dispatch(del)
}

// onFiltered is the filter's sink: it surfaces sensor acknowledgements to
// the Actuation Service and forwards the delivery to the store tee and
// the dispatcher.
func (d *Deployment) onFiltered(del filtering.Delivery) {
	if del.Msg.Flags.Has(wire.FlagUpdateAck) {
		d.acts.HandleAck(del.Msg.AckID, del.At)
	}
	d.publish(del)
}

// onFilteredBatch is the filter's batch sink (Config.IngestBatch > 1):
// one store AppendBatch stamps every StoreSeq in place, then one
// DispatchBatch fans the run out. Ack surfacing stays per message and,
// as on the serial path, precedes the message's dispatch.
func (d *Deployment) onFilteredBatch(ds []filtering.Delivery) {
	for i := range ds {
		if ds[i].Msg.Flags.Has(wire.FlagUpdateAck) {
			d.acts.HandleAck(ds[i].Msg.AckID, ds[i].At)
		}
	}
	d.st.AppendBatch(ds)
	d.dispatcher.DispatchBatch(ds)
}

// ingest routes one reception into the pipeline: directly into the
// filter by default, or through the bounded flush buffer when batched
// ingest is configured.
func (d *Deployment) ingest(rc receiver.Reception) {
	if d.ingestBuf == nil {
		d.filter.Ingest(rc)
		return
	}
	d.ingestBuf.add(rc)
}

// AddReceiver creates, registers and (if the deployment is running)
// starts a receiver. Its reception records feed both the Location Service
// (pre-filter, duplicates included) and the Filtering Service.
func (d *Deployment) AddReceiver(cfg receiver.Config) *receiver.Receiver {
	rx := receiver.New(d.medium, cfg, func(rc receiver.Reception) {
		// Relayed copies (§8 multi-hop) carry the relay's bearing, not the
		// source's, so they feed the filter but never location inference.
		if !rc.Msg.Flags.Has(wire.FlagRelayed) {
			_ = d.locSvc.ObserveReception(rc) // receiver registered below; cannot fail
		}
		d.ingest(rc)
	})
	d.locSvc.RegisterReceiver(rx.Name(), rx.Position(), rx.Radius())
	d.mu.Lock()
	d.receivers = append(d.receivers, rx)
	started := d.started
	d.mu.Unlock()
	if started {
		rx.Start()
	}
	return rx
}

// AddTransmitter creates a transmitter and attaches it to the replicator.
func (d *Deployment) AddTransmitter(cfg transmit.Config) *transmit.Transmitter {
	tx := transmit.New(d.medium, cfg)
	d.repl.AddTransmitter(tx)
	d.mu.Lock()
	d.transmitters = append(d.transmitters, tx)
	d.mu.Unlock()
	return tx
}

// AddSensor creates a sensor node in the simulated field and (if the
// deployment is running) starts it.
func (d *Deployment) AddSensor(cfg sensor.Config) (*sensor.Node, error) {
	n, err := sensor.New(d.clock, d.medium, cfg)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.sensors = append(d.sensors, n)
	started := d.started
	d.mu.Unlock()
	if started {
		n.Start()
	}
	return n, nil
}

// Start brings every registered component up. Idempotent.
func (d *Deployment) Start() {
	d.mu.Lock()
	if d.started || d.stopped {
		d.mu.Unlock()
		return
	}
	d.started = true
	receivers := append([]*receiver.Receiver(nil), d.receivers...)
	sensors := append([]*sensor.Node(nil), d.sensors...)
	d.mu.Unlock()

	d.dispatcher.Start()
	for _, rx := range receivers {
		rx.Start()
	}
	for _, n := range sensors {
		n.Start()
	}
}

// Stop tears the deployment down: sensors first (no new uplink), then
// receivers, the filter's reorder buffers, the dispatcher and the
// actuation service. Idempotent.
func (d *Deployment) Stop() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	receivers := append([]*receiver.Receiver(nil), d.receivers...)
	sensors := append([]*sensor.Node(nil), d.sensors...)
	locTicker := d.locTicker
	d.mu.Unlock()

	for _, n := range sensors {
		n.Stop()
	}
	for _, rx := range receivers {
		rx.Stop()
	}
	if locTicker != nil {
		locTicker.Stop()
	}
	if d.ingestBuf != nil {
		d.ingestBuf.flush()
	}
	d.filter.Flush()
	d.acts.Stop()
	d.dispatcher.Stop()
	d.st.Close()
}

// SubmitDemand runs one demand through admission control and actuates the
// resulting action when the effective sensor setting changed.
func (d *Deployment) SubmitDemand(dem resource.Demand) (resource.Decision, error) {
	dec, err := d.rm.Submit(dem)
	if err != nil {
		return dec, err
	}
	if dec.Changed && dec.Action != nil {
		d.actuateAction(*dec.Action, dem.Consumer)
	}
	return dec, nil
}

// WithdrawDemand removes a standing demand and actuates any relaxation.
func (d *Deployment) WithdrawDemand(consumerName string, target wire.StreamID, class resource.Class) (resource.Decision, bool) {
	dec, ok := d.rm.Withdraw(consumerName, target, class)
	if ok && dec.Changed && dec.Action != nil {
		d.actuateAction(*dec.Action, consumerName)
	}
	return dec, ok
}

func (d *Deployment) actuateAction(a resource.Action, owner string) {
	_, _ = d.acts.Issue(actuation.Request{
		Target:   a.Target,
		Op:       a.Op,
		Value:    a.Value,
		Consumer: owner,
	}, nil)
}

// ApplyDemands replaces an owner's standing demand set — the Super
// Coordinator's sink. Demands present in the new set are submitted;
// demands the owner held before but not any more are withdrawn; every
// changed effective setting is actuated. The replacement fans out per
// ledger shard inside the resource manager (which owns the ownership
// bookkeeping): the mutation work runs under the shard-local locks of
// the touched shards only, and Deployment.mu is never taken.
func (d *Deployment) ApplyDemands(owner string, demands []resource.Demand) {
	for _, a := range d.rm.Apply(owner, demands) {
		d.actuateAction(a, owner)
	}
}

// PublishDerived implements consumer.Publisher: derived messages enter the
// Dispatching Service directly (their publisher already guarantees unique
// ascending sequence numbers, so the duplicate filter is unnecessary).
// They tee through the Stream Store like physical streams, so derived
// history replays the same way.
func (d *Deployment) PublishDerived(msg wire.Message, at time.Time) {
	d.publish(filtering.Delivery{Msg: msg, At: at, Receiver: "derived", RSSI: 1})
}

// SubscribeWithReplay subscribes c to a single stream, replaying the
// retained history from store sequence fromSeq onwards through c's
// dispatch port ahead of live delivery — the late-joiner catch-up path.
// The facade performs permission checks and calls this.
func (d *Deployment) SubscribeWithReplay(c dispatch.Consumer, stream wire.StreamID, fromSeq uint64) (dispatch.SubscriptionID, int, error) {
	return d.dispatcher.SubscribeWithReplay(c, stream, func() []filtering.Delivery {
		return d.st.Range(stream, fromSeq, ^uint64(0))
	})
}

// AllocateVirtualSensor reserves the next virtual sensor id for a
// derived-stream publisher.
func (d *Deployment) AllocateVirtualSensor() wire.SensorID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextVirtual
	d.nextVirtual++
	return id
}

// InjectReception feeds a hand-built reception into the pipeline exactly
// as a receiver would (used by tests and the experiment harness to drive
// the fixed network without a radio field).
func (d *Deployment) InjectReception(rc receiver.Reception) {
	d.ingest(rc)
}

// Component accessors. The facade package and the experiment harness
// reach individual services through these.

// Clock returns the deployment clock.
func (d *Deployment) Clock() sim.Clock { return d.clock }

// Medium returns the simulated wireless medium.
func (d *Deployment) Medium() *radio.Medium { return d.medium }

// Filter returns the Filtering Service.
func (d *Deployment) Filter() *filtering.Filter { return d.filter }

// Dispatcher returns the Dispatching Service.
func (d *Deployment) Dispatcher() *dispatch.Dispatcher { return d.dispatcher }

// Store returns the Stream Store.
func (d *Deployment) Store() *store.Store { return d.st }

// Orphanage returns the Orphanage.
func (d *Deployment) Orphanage() *orphanage.Orphanage { return d.orphan }

// Location returns the Location Service.
func (d *Deployment) Location() *location.Service { return d.locSvc }

// Registry returns the consumer registry.
func (d *Deployment) Registry() *registry.Registry { return d.registry }

// ResourceManager returns the Resource Manager.
func (d *Deployment) ResourceManager() *resource.Manager { return d.rm }

// ActuationService returns the Actuation Service.
func (d *Deployment) ActuationService() *actuation.Service { return d.acts }

// Replicator returns the Message Replicator.
func (d *Deployment) Replicator() *replicator.Replicator { return d.repl }

// Coordinator returns the Super Coordinator.
func (d *Deployment) Coordinator() *coordinator.Coordinator { return d.coord }

// Sensors returns the registered sensor nodes.
func (d *Deployment) Sensors() []*sensor.Node {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*sensor.Node, len(d.sensors))
	copy(out, d.sensors)
	return out
}

// Snapshot aggregates the headline statistics of every service.
type Snapshot struct {
	Filter     filtering.Stats
	Dispatch   dispatch.Stats
	Store      store.Stats
	Orphanage  orphanage.Stats
	Resource   resource.Stats
	Actuation  actuation.Stats
	Replicator replicator.Stats
	Coord      coordinator.Stats
	Receivers  int
	Txs        int
	Sensors    int
}

// Stats returns a consistent-enough snapshot for dashboards and the
// experiment harness.
func (d *Deployment) Stats() Snapshot {
	d.mu.Lock()
	rx, tx, sn := len(d.receivers), len(d.transmitters), len(d.sensors)
	d.mu.Unlock()
	return Snapshot{
		Filter:     d.filter.Stats(),
		Dispatch:   d.dispatcher.Stats(),
		Store:      d.st.Stats(),
		Orphanage:  d.orphan.Stats(),
		Resource:   d.rm.Stats(),
		Actuation:  d.acts.Stats(),
		Replicator: d.repl.Stats(),
		Coord:      d.coord.Stats(),
		Receivers:  rx,
		Txs:        tx,
		Sensors:    sn,
	}
}

// String summarises the deployment.
func (d *Deployment) String() string {
	s := d.Stats()
	return fmt.Sprintf("garnet deployment: %d sensors, %d receivers, %d transmitters, %d streams seen",
		s.Sensors, s.Receivers, s.Txs, s.Filter.ActiveStreams)
}

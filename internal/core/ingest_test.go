package core

import (
	"reflect"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/consumer"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/field"
	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// TestIngestBatchEndToEndMatchesSerial pins the batched deployment
// pipeline to the per-message one: the same deterministic virtual-clock
// schedule must yield identical consumer delivery sequences (message,
// StoreSeq) and identical filter/store/dispatch accounting at every
// batch size, including batch=1 (which must bypass the buffer).
func TestIngestBatchEndToEndMatchesSerial(t *testing.T) {
	run := func(batch int) ([]wire.Seq, []uint64, Snapshot) {
		clock := sim.NewVirtualClock(epoch)
		d := New(Config{
			Clock:       clock,
			Radio:       radio.Params{LossProb: 0.15, DelayMin: time.Millisecond, DelayMax: 8 * time.Millisecond, Seed: 7},
			Secret:      []byte("test-secret"),
			IngestBatch: batch,
		})
		for _, p := range field.GridPositions(geo.RectWH(0, 0, 200, 200), 4) {
			d.AddReceiver(receiver.Config{Position: p, Radius: 180})
		}
		addSensor(t, d, 1, 0, 250*time.Millisecond)
		addSensor(t, d, 2, 0, 400*time.Millisecond)
		rec := consumer.NewRecorder("app", 8192)
		if _, err := d.Dispatcher().Subscribe(rec, dispatch.BySensor(1)); err != nil {
			t.Fatal(err)
		}
		d.Start()
		clock.Advance(20 * time.Second)
		d.Stop()
		var seqs []wire.Seq
		var stores []uint64
		for _, dd := range rec.Deliveries() {
			seqs = append(seqs, dd.Msg.Seq)
			stores = append(stores, dd.StoreSeq)
		}
		return seqs, stores, d.Stats()
	}
	refSeqs, refStores, refSnap := run(0)
	for _, batch := range []int{1, 8, 64} {
		gotSeqs, gotStores, gotSnap := run(batch)
		if !reflect.DeepEqual(refSeqs, gotSeqs) {
			t.Fatalf("batch=%d: consumer sequence diverges from serial", batch)
		}
		if !reflect.DeepEqual(refStores, gotStores) {
			t.Fatalf("batch=%d: StoreSeq stamping diverges from serial", batch)
		}
		if refSnap.Filter != gotSnap.Filter {
			t.Fatalf("batch=%d: filter stats diverge: serial %+v, batched %+v",
				batch, refSnap.Filter, gotSnap.Filter)
		}
		if refSnap.Store != gotSnap.Store {
			t.Fatalf("batch=%d: store stats diverge: serial %+v, batched %+v",
				batch, refSnap.Store, gotSnap.Store)
		}
		if refSnap.Dispatch.Dispatched != gotSnap.Dispatch.Dispatched ||
			refSnap.Dispatch.Delivered != gotSnap.Dispatch.Delivered ||
			refSnap.Dispatch.Orphaned != gotSnap.Dispatch.Orphaned {
			t.Fatalf("batch=%d: dispatch stats diverge: serial %+v, batched %+v",
				batch, refSnap.Dispatch, gotSnap.Dispatch)
		}
	}
}

// TestIngestBufferFlushesOnInstantBoundary pins the same-instant rule
// directly: receptions at one instant ride one flush; the first
// reception of a new instant forces the previous run out first.
func TestIngestBufferFlushesOnInstantBoundary(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	d := New(Config{Clock: clock, Secret: []byte("s"), IngestBatch: 16})
	rec := consumer.NewRecorder("app", 64)
	if _, err := d.Dispatcher().Subscribe(rec, dispatch.BySensor(1)); err != nil {
		t.Fatal(err)
	}
	id := wire.MustStreamID(1, 0)
	for i := 0; i < 3; i++ {
		d.InjectReception(receiver.Reception{
			Msg: wire.Message{Stream: id, Seq: wire.Seq(i)}, Receiver: "rx", At: epoch,
		})
	}
	if rec.Count() != 0 {
		t.Fatalf("same-instant receptions flushed early: %d delivered", rec.Count())
	}
	// A reception at a later instant must flush the buffered run before
	// being buffered itself.
	d.InjectReception(receiver.Reception{
		Msg: wire.Message{Stream: id, Seq: 3}, Receiver: "rx", At: epoch.Add(time.Millisecond),
	})
	if rec.Count() != 3 {
		t.Fatalf("instant boundary flushed %d deliveries, want 3", rec.Count())
	}
	d.Stop() // drains the remaining buffered reception
	if rec.Count() != 4 {
		t.Fatalf("Stop flushed %d deliveries total, want 4", rec.Count())
	}
}

package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/actuation"
	"github.com/garnet-middleware/garnet/internal/consumer"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/field"
	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/resource"
	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/transmit"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

// buildRig assembles a small but complete Figure 1 deployment on a virtual
// clock: 4 receivers with overlapping zones, 2 transmitters, and the given
// radio parameters.
func buildRig(t *testing.T, params radio.Params) (*Deployment, *sim.VirtualClock) {
	t.Helper()
	clock := sim.NewVirtualClock(epoch)
	d := New(Config{
		Clock:  clock,
		Radio:  params,
		Secret: []byte("test-secret"),
	})
	for _, p := range field.GridPositions(geo.RectWH(0, 0, 200, 200), 4) {
		d.AddReceiver(receiver.Config{Position: p, Radius: 180})
	}
	d.AddTransmitter(transmit.Config{Name: "tx-west", Position: geo.Pt(50, 100), Range: 300})
	d.AddTransmitter(transmit.Config{Name: "tx-east", Position: geo.Pt(150, 100), Range: 300})
	return d, clock
}

func addSensor(t *testing.T, d *Deployment, id wire.SensorID, caps sensor.Capability, period time.Duration) *sensor.Node {
	t.Helper()
	n, err := d.AddSensor(sensor.Config{
		ID:           id,
		Capabilities: caps,
		Mobility:     field.Static{P: geo.Pt(100, 100)},
		TxRange:      300,
		Streams: []sensor.StreamConfig{{
			Index:   0,
			Sampler: sensor.FloatSampler(func(time.Time) float64 { return 20 }),
			Period:  period,
			Enabled: true,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestFigure1EndToEndDataPath drives the complete uplink: sensor →
// overlapping receivers (duplication) → filter (dedup) → dispatcher →
// subscribed consumer, with the unclaimed remainder in the orphanage.
func TestFigure1EndToEndDataPath(t *testing.T) {
	d, clock := buildRig(t, radio.Params{LossProb: 0.1, DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond, Seed: 42})
	defer d.Stop()

	addSensor(t, d, 1, 0, time.Second)
	addSensor(t, d, 2, 0, time.Second) // nobody subscribes: orphaned

	rec := consumer.NewRecorder("app", 4096)
	if _, err := d.Dispatcher().Subscribe(rec, dispatch.Exact(wire.MustStreamID(1, 0))); err != nil {
		t.Fatal(err)
	}
	d.Start()
	clock.Advance(30 * time.Second)

	// With 4 overlapping receivers and 10% loss, virtually every message
	// arrives at least once: expect ≥ 28 of 30 unique deliveries.
	if got := rec.Count(); got < 28 || got > 30 {
		t.Fatalf("consumer received %d unique messages, want ≈30", got)
	}
	fs := d.Filter().Stats()
	if fs.Duplicates == 0 {
		t.Fatal("overlapping receivers produced no duplicates — rig is wrong")
	}
	if fs.Delivered+fs.Duplicates+fs.Stale != fs.Received {
		t.Fatalf("filter accounting broken: %+v", fs)
	}
	// Sensor 2's stream must be held by the orphanage.
	os := d.Orphanage().Stats()
	if os.StreamsHeld != 1 {
		t.Fatalf("orphanage holds %d streams, want 1", os.StreamsHeld)
	}
	infos := d.Orphanage().Streams()
	if infos[0].Stream != wire.MustStreamID(2, 0) {
		t.Fatalf("orphaned stream = %v", infos[0].Stream)
	}
}

// TestFigure1ActuationRoundTrip drives the complete control path: demand →
// Resource Manager → Actuation Service → Replicator → Transmitter →
// sensor applies and acks → ack detected on the data path.
func TestFigure1ActuationRoundTrip(t *testing.T) {
	d, clock := buildRig(t, radio.Params{})
	defer d.Stop()
	n := addSensor(t, d, 5, sensor.CapReceive, time.Second)
	d.Start()
	clock.Advance(2 * time.Second) // let some data flow (location track forms)

	target := wire.MustStreamID(5, 0)
	dec, err := d.SubmitDemand(resource.Demand{
		Consumer: "app", Target: target, Op: wire.OpSetRate, Value: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Verdict != resource.VerdictApproved || !dec.Changed {
		t.Fatalf("decision = %+v", dec)
	}
	clock.Advance(5 * time.Second)

	if p, _ := n.StreamPeriod(0); p != 250*time.Millisecond {
		t.Fatalf("sensor period = %v, want 250ms", p)
	}
	as := d.ActuationService().Stats()
	if as.Acked != 1 || as.Outstanding != 0 {
		t.Fatalf("actuation stats = %+v", as)
	}
	if d.ActuationService().Latency().Count() != 1 {
		t.Fatal("ack latency not recorded")
	}
	// The replicator targeted rather than flooded: sensor 5 was locatable.
	rs := d.Replicator().Stats()
	if rs.Requests == 0 {
		t.Fatal("replicator never used")
	}
}

func TestMediationAcrossMutuallyUnawareConsumers(t *testing.T) {
	d, clock := buildRig(t, radio.Params{})
	defer d.Stop()
	n := addSensor(t, d, 5, sensor.CapReceive, time.Second)
	d.Start()
	clock.Advance(time.Second)

	target := wire.MustStreamID(5, 0)
	if _, err := d.SubmitDemand(resource.Demand{Consumer: "a", Target: target, Op: wire.OpSetRate, Value: 2000}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SubmitDemand(resource.Demand{Consumer: "b", Target: target, Op: wire.OpSetRate, Value: 500}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Second)
	// Most-demanding policy: 2 Hz wins; b's lower demand modified.
	if p, _ := n.StreamPeriod(0); p != 500*time.Millisecond {
		t.Fatalf("period = %v, want 500ms", p)
	}
	// b withdraws: no change (a still demands 2 Hz). a withdraws: rate
	// relaxes to b's... b already withdrew, so entry empties: no actuation.
	d.WithdrawDemand("b", target, resource.ClassRate)
	clock.Advance(3 * time.Second)
	if p, _ := n.StreamPeriod(0); p != 500*time.Millisecond {
		t.Fatalf("period after b withdraw = %v, want unchanged", p)
	}
}

func TestCoordinatorDrivenActuation(t *testing.T) {
	d, clock := buildRig(t, radio.Params{})
	defer d.Stop()
	n := addSensor(t, d, 7, sensor.CapReceive, time.Second)
	d.Start()
	clock.Advance(time.Second)

	target := wire.MustStreamID(7, 0)
	model := map[string][]resource.Demand{
		"calm":  {{Target: target, Op: wire.OpSetRate, Value: 500}},
		"flood": {{Target: target, Op: wire.OpSetRate, Value: 5000}},
	}
	if err := d.Coordinator().Register("water-app", model); err != nil {
		t.Fatal(err)
	}
	if err := d.Coordinator().ReportState("water-app", "flood"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Second)
	if p, _ := n.StreamPeriod(0); p != 200*time.Millisecond {
		t.Fatalf("flood-state period = %v, want 200ms", p)
	}
	if err := d.Coordinator().ReportState("water-app", "calm"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Second)
	if p, _ := n.StreamPeriod(0); p != 2*time.Second {
		t.Fatalf("calm-state period = %v, want 2s", p)
	}
}

func TestLocationPipelineAndPublishing(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	d := New(Config{
		Clock:                 clock,
		Secret:                []byte("s"),
		LocationPublishPeriod: 5 * time.Second,
	})
	defer d.Stop()
	for _, p := range field.GridPositions(geo.RectWH(0, 0, 200, 200), 4) {
		d.AddReceiver(receiver.Config{Position: p, Radius: 180})
	}
	addSensor(t, d, 3, 0, time.Second)

	locRec := consumer.NewRecorder("loc-watcher", 64)
	if _, err := d.Dispatcher().Subscribe(locRec, dispatch.Exact(wire.MustStreamID(3, wire.LocationStreamIndex))); err != nil {
		t.Fatal(err)
	}
	d.Start()
	clock.Advance(11 * time.Second)

	est, err := d.Location().Locate(3)
	if err != nil {
		t.Fatal(err)
	}
	// True position (100,100); 4 receivers triangulate exactly.
	if est.Pos.Dist(geo.Pt(100, 100)) > 30 {
		t.Fatalf("inferred %v, truth (100,100)", est.Pos)
	}
	if locRec.Count() < 2 {
		t.Fatalf("location stream deliveries = %d, want ≥2", locRec.Count())
	}
}

func TestDerivedStreamThroughDispatcher(t *testing.T) {
	d, clock := buildRig(t, radio.Params{})
	defer d.Stop()
	d.Start()

	vid := d.AllocateVirtualSensor()
	if !consumer.IsVirtual(vid) {
		t.Fatalf("allocated id %d not virtual", vid)
	}
	ds := consumer.NewDerivedStream(d, wire.MustStreamID(vid, 0), 0)

	rec := consumer.NewRecorder("l2", 16)
	if _, err := d.Dispatcher().Subscribe(rec, dispatch.Exact(ds.Stream())); err != nil {
		t.Fatal(err)
	}
	ds.Emit([]byte("derived!"), clock.Now())
	if rec.Count() != 1 {
		t.Fatalf("derived deliveries = %d", rec.Count())
	}
	// Distinct allocations never collide.
	if d.AllocateVirtualSensor() == vid {
		t.Fatal("virtual sensor id reused")
	}
}

func TestActuationRetriesUnderLossyDownlink(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	d := New(Config{
		Clock:     clock,
		Radio:     radio.Params{LossProb: 0.6, Seed: 9},
		Secret:    []byte("s"),
		Actuation: actuation.Options{RetryInterval: time.Second, MaxAttempts: 10},
	})
	defer d.Stop()
	for _, p := range field.GridPositions(geo.RectWH(0, 0, 200, 200), 4) {
		d.AddReceiver(receiver.Config{Position: p, Radius: 250})
	}
	d.AddTransmitter(transmit.Config{Position: geo.Pt(100, 100), Range: 300})
	n := addSensor(t, d, 4, sensor.CapReceive, time.Second)
	d.Start()
	clock.Advance(time.Second)

	if _, err := d.SubmitDemand(resource.Demand{Consumer: "app", Target: wire.MustStreamID(4, 0), Op: wire.OpSetRate, Value: 2000}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(30 * time.Second)
	if p, _ := n.StreamPeriod(0); p != 500*time.Millisecond {
		t.Fatalf("period = %v despite retries", p)
	}
	if d.ActuationService().Stats().Acked != 1 {
		t.Fatalf("actuation not acked: %+v", d.ActuationService().Stats())
	}
}

func TestStopIsCleanAndIdempotent(t *testing.T) {
	d, clock := buildRig(t, radio.Params{})
	addSensor(t, d, 1, 0, time.Second)
	d.Start()
	d.Start() // idempotent
	clock.Advance(3 * time.Second)
	d.Stop()
	d.Stop() // idempotent

	before := d.Filter().Stats().Received
	clock.Advance(10 * time.Second)
	if got := d.Filter().Stats().Received; got != before {
		t.Fatalf("traffic after Stop: %d → %d", before, got)
	}
}

func TestStatsSnapshotAndString(t *testing.T) {
	d, clock := buildRig(t, radio.Params{})
	defer d.Stop()
	addSensor(t, d, 1, 0, time.Second)
	d.Start()
	clock.Advance(5 * time.Second)
	s := d.Stats()
	if s.Sensors != 1 || s.Receivers != 4 || s.Txs != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Filter.Received == 0 || s.Dispatch.Dispatched == 0 {
		t.Fatalf("no traffic in snapshot: %+v", s)
	}
	if d.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestInjectReception(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	d := New(Config{Clock: clock, Secret: []byte("s")})
	defer d.Stop()
	rec := consumer.NewRecorder("app", 16)
	if _, err := d.Dispatcher().Subscribe(rec, dispatch.All()); err != nil {
		t.Fatal(err)
	}
	d.Start()
	d.InjectReception(receiver.Reception{
		Msg: wire.Message{Stream: wire.MustStreamID(1, 0), Seq: 0},
		At:  clock.Now(), Receiver: "synthetic", RSSI: 1,
	})
	if rec.Count() != 1 {
		t.Fatal("injected reception not delivered")
	}
}

func TestNewRequiresSecret(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic without secret")
		}
	}()
	New(Config{Clock: sim.NewVirtualClock(epoch)})
}

// TestDispatchShardingThreadsThroughConfig: Config.Dispatch sharding and
// batching options reach the assembled dispatcher and deliveries flow
// end-to-end through the sharded, batch-draining engine.
func TestDispatchShardingThreadsThroughConfig(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	d := New(Config{
		Clock:  clock,
		Secret: []byte("test-secret"),
		Dispatch: dispatch.Options{
			Mode:          dispatch.ModeAsync,
			Shards:        4,
			BatchSize:     8,
			QueueCapacity: 256,
		},
	})
	recs := make([]*consumer.Recorder, 3)
	for i := range recs {
		recs[i] = consumer.NewRecorder(fmt.Sprintf("app-%d", i), 64)
		// Distinct sensors: streams home to (very likely) different shards.
		id := wire.MustStreamID(wire.SensorID(i+1), 0)
		if _, err := d.Dispatcher().Subscribe(recs[i], dispatch.Exact(id)); err != nil {
			t.Fatal(err)
		}
	}
	d.Start()
	for i := range recs {
		for seq := 0; seq < 20; seq++ {
			d.PublishDerived(wire.Message{
				Stream: wire.MustStreamID(wire.SensorID(i+1), 0), Seq: wire.Seq(seq),
			}, clock.Now())
		}
	}
	d.Stop() // drains async queues
	for i, r := range recs {
		if r.Count() != 20 {
			t.Fatalf("consumer %d got %d of 20", i, r.Count())
		}
	}
	if st := d.Stats().Dispatch; st.Shards != 4 || st.Delivered != 60 {
		t.Fatalf("Shards=%d Delivered=%d, want 4/60", st.Shards, st.Delivered)
	}
}

package core

import (
	"sync"
	"time"

	"github.com/garnet-middleware/garnet/internal/receiver"
)

// ingestBuffer collects receptions into a small bounded run and drives
// the batched pipeline (filter.IngestBatch → store.AppendBatch →
// dispatcher.DispatchBatch) one flush at a time. It flushes when the
// buffer fills and whenever the next reception carries a different
// timestamp: under a virtual clock every buffered reception shares one
// instant, so batching never reorders deliveries across clock steps and
// the schedule stays bit-for-bit deterministic.
//
// The mutex is held across the flush itself. That is deliberate:
// correctness first — a reception arriving mid-flush must not start a
// second flush and interleave per-stream order. Under a virtual clock
// there is exactly one driving goroutine, so the lock is uncontended;
// under a real clock concurrent receivers serialise here the same way
// they already serialise on a filter shard. The flush path must not
// re-enter add (a synchronous consumer injecting receptions from
// Consume would deadlock; inject from a separate goroutine instead).
//
// Borrowed payloads alias leased radio frames that are only valid for
// the duration of the receiver's sink call, so add copies them into
// per-slot recycled storage. Borrowed stays true on the buffered copy:
// the slot storage is reused across flushes, so the filter must still
// detach the payloads it accepts, exactly as on the serial path. A
// warmed-up buffer allocates nothing per reception.
type ingestBuffer struct {
	d *Deployment

	mu    sync.Mutex
	buf   []receiver.Reception
	owned [][]byte // recycled payload storage per slot, for borrowed frames
	n     int
	at    time.Time // shared instant of the buffered receptions
}

func newIngestBuffer(d *Deployment, size int) *ingestBuffer {
	return &ingestBuffer{
		d:     d,
		buf:   make([]receiver.Reception, size),
		owned: make([][]byte, size),
	}
}

// add buffers one reception, flushing first when rc breaks the buffered
// instant and after when the buffer is full.
func (b *ingestBuffer) add(rc receiver.Reception) {
	b.mu.Lock()
	if b.n > 0 && !rc.At.Equal(b.at) {
		b.flushLocked()
	}
	if b.n == 0 {
		b.at = rc.At
	}
	slot := &b.buf[b.n]
	*slot = rc
	if rc.Borrowed && len(rc.Msg.Payload) > 0 {
		b.owned[b.n] = append(b.owned[b.n][:0], rc.Msg.Payload...)
		slot.Msg.Payload = b.owned[b.n]
	}
	b.n++
	if b.n == len(b.buf) {
		b.flushLocked()
	}
	b.mu.Unlock()
}

// flush empties the buffer through the batched pipeline.
func (b *ingestBuffer) flush() {
	b.mu.Lock()
	b.flushLocked()
	b.mu.Unlock()
}

func (b *ingestBuffer) flushLocked() {
	if b.n == 0 {
		return
	}
	n := b.n
	b.n = 0
	b.d.filter.IngestBatch(b.buf[:n])
	// Slots keep their recycled payload storage (b.owned); the message
	// payload references left in b.buf are overwritten before reuse and
	// hold only buffer-owned or caller-owned memory, never leased
	// frames, so nothing here pins a radio buffer past its lease.
}

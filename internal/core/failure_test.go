package core

import (
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/actuation"
	"github.com/garnet-middleware/garnet/internal/consumer"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/field"
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/orphanage"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/transmit"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Failure-injection tests: the middleware must degrade cleanly when the
// field misbehaves — batteries die, sensors roam away mid-actuation,
// unclaimed streams flood the orphanage, and whole frames arrive
// corrupted.

func TestSensorBatteryDeathStopsStreamCleanly(t *testing.T) {
	d, clock := buildRig(t, radio.Params{})
	defer d.Stop()
	n, err := d.AddSensor(sensor.Config{
		ID:       1,
		Mobility: field.Static{P: geo.Pt(100, 100)},
		TxRange:  300,
		Streams: []sensor.StreamConfig{{
			Index: 0, Sampler: sensor.SizedSampler(8), Period: time.Second, Enabled: true,
		}},
		Energy:  sensor.EnergyParams{TxBase: 1},
		Battery: 5.5, // five transmissions
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := consumer.NewRecorder("app", 64)
	if _, err := d.Dispatcher().Subscribe(rec, dispatch.Exact(wire.MustStreamID(1, 0))); err != nil {
		t.Fatal(err)
	}
	d.Start()
	clock.Advance(time.Minute)

	if n.Alive() {
		t.Fatal("node should be dead")
	}
	if got := rec.Count(); got != 5 {
		t.Fatalf("deliveries = %d, want 5 then silence", got)
	}
	// The stream's filter state survives; the pipeline itself is healthy.
	if st := d.Filter().Stats(); st.ActiveStreams != 1 {
		t.Fatalf("filter streams = %d", st.ActiveStreams)
	}
}

func TestActuationExpiresWhenSensorRoamsAway(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	d := New(Config{
		Clock:     clock,
		Secret:    []byte("s"),
		Actuation: actuation.Options{RetryInterval: time.Second, MaxAttempts: 3},
	})
	defer d.Stop()
	d.AddReceiver(receiver.Config{Name: "rx", Position: geo.Pt(0, 0), Radius: 200})
	d.AddTransmitter(transmit.Config{Name: "tx", Position: geo.Pt(0, 0), Range: 200})

	// The sensor walks straight out of coverage at 50 m/s.
	if _, err := d.AddSensor(sensor.Config{
		ID:           1,
		Capabilities: sensor.CapReceive,
		Mobility:     field.Linear{Start: geo.Pt(100, 0), Velocity: geo.Pt(50, 0), Epoch: epoch},
		TxRange:      200,
		Streams: []sensor.StreamConfig{{
			Index: 0, Sampler: sensor.SizedSampler(8), Period: time.Second, Enabled: true,
		}},
	}); err != nil {
		t.Fatal(err)
	}
	d.Start()
	clock.Advance(5 * time.Second) // sensor now at x=350, far out of range

	var outcome actuation.Outcome
	if _, err := d.ActuationService().Issue(actuation.Request{
		Target: wire.MustStreamID(1, 0), Op: wire.OpPing, Consumer: "app",
	}, func(r actuation.Result) { outcome = r.Outcome }); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)

	if outcome != actuation.OutcomeExpired {
		t.Fatalf("outcome = %v, want expired (sensor unreachable)", outcome)
	}
	st := d.ActuationService().Stats()
	if st.Expired != 1 || st.Outstanding != 0 {
		t.Fatalf("actuation stats = %+v", st)
	}
}

func TestOrphanageUnderStreamPressure(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	d := New(Config{
		Clock:     clock,
		Secret:    []byte("s"),
		Orphanage: orphanage.Options{MaxStreams: 8, PerStreamCapacity: 4},
	})
	defer d.Stop()
	d.AddReceiver(receiver.Config{Name: "rx", Position: geo.Pt(0, 0), Radius: 1e6})
	// 32 unclaimed sensors compete for 8 orphanage slots.
	for i := 0; i < 32; i++ {
		if _, err := d.AddSensor(sensor.Config{
			ID:       wire.SensorID(i + 1),
			Mobility: field.Static{P: geo.Pt(1, 0)},
			TxRange:  1e6,
			Streams: []sensor.StreamConfig{{
				Index: 0, Sampler: sensor.SizedSampler(4), Period: time.Second, Enabled: true,
			}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	d.Start()
	clock.Advance(10 * time.Second)

	st := d.Orphanage().Stats()
	if st.StreamsHeld != 8 {
		t.Fatalf("held %d streams, want capped 8", st.StreamsHeld)
	}
	if st.StreamsEvicted == 0 {
		t.Fatal("no evictions under pressure")
	}
	if st.MessagesHeld > 8*4 {
		t.Fatalf("held %d messages, cap is 32", st.MessagesHeld)
	}
	// Claims still work for surviving streams.
	infos := d.Orphanage().Streams()
	if backlog, ok := d.Orphanage().Claim(infos[0].Stream); !ok || len(backlog) == 0 {
		t.Fatal("claim failed under pressure")
	}
}

func TestHeavyCorruptionScreenedEndToEnd(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	d := New(Config{
		Clock:  clock,
		Radio:  radio.Params{CorruptProb: 0.5, Seed: 3},
		Secret: []byte("s"),
	})
	defer d.Stop()
	d.AddReceiver(receiver.Config{Name: "rx", Position: geo.Pt(0, 0), Radius: 1e6})
	if _, err := d.AddSensor(sensor.Config{
		ID:       1,
		Mobility: field.Static{P: geo.Pt(1, 0)},
		TxRange:  1e6,
		Streams: []sensor.StreamConfig{{
			Index: 0, Sampler: sensor.ConstantSampler([]byte("payload")), Period: time.Second, Enabled: true,
		}},
	}); err != nil {
		t.Fatal(err)
	}
	var got []string
	if _, err := d.Dispatcher().Subscribe(&dispatch.ConsumerFunc{
		ConsumerName: "app",
		Fn:           func(del filtering.Delivery) { got = append(got, string(del.Msg.Payload)) },
	}, dispatch.All()); err != nil {
		t.Fatal(err)
	}
	d.Start()
	clock.Advance(100 * time.Second)

	// Half the frames were corrupted; every survivor must be intact.
	if len(got) < 30 || len(got) > 70 {
		t.Fatalf("delivered %d of 100 at 50%% corruption", len(got))
	}
	for _, p := range got {
		if p != "payload" {
			t.Fatalf("corrupted payload delivered: %q", p)
		}
	}
}

func TestMultiHopRelayEndToEnd(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	d := New(Config{Clock: clock, Secret: []byte("s")})
	defer d.Stop()
	// Receiver with a 150 m zone at the origin; source sensor 400 m out;
	// two relay nodes bridging the gap.
	d.AddReceiver(receiver.Config{Name: "rx", Position: geo.Pt(0, 0), Radius: 150})
	if _, err := d.AddSensor(sensor.Config{
		ID:       1,
		Mobility: field.Static{P: geo.Pt(400, 0)},
		TxRange:  160,
		Streams: []sensor.StreamConfig{{
			Index: 0, Sampler: sensor.ConstantSampler([]byte("deep-field")), Period: time.Second, Enabled: true,
		}},
	}); err != nil {
		t.Fatal(err)
	}
	for i, x := range []float64{260, 130} {
		if _, err := d.AddSensor(sensor.Config{
			ID:       wire.SensorID(100 + i),
			Mobility: field.Static{P: geo.Pt(x, 0)},
			TxRange:  160,
			Relay:    sensor.RelayConfig{Enabled: true},
		}); err != nil {
			t.Fatal(err)
		}
	}
	rec := consumer.NewRecorder("app", 64)
	if _, err := d.Dispatcher().Subscribe(rec, dispatch.Exact(wire.MustStreamID(1, 0))); err != nil {
		t.Fatal(err)
	}
	d.Start()
	clock.Advance(5 * time.Second)

	if rec.Count() != 5 {
		t.Fatalf("multi-hop deliveries = %d, want 5", rec.Count())
	}
	last, _ := rec.Last()
	if !last.Msg.Flags.Has(wire.FlagRelayed) || last.Msg.HopCount != 2 {
		t.Fatalf("delivery not two-hop relayed: flags=%v hops=%d", last.Msg.Flags, last.Msg.HopCount)
	}
	// Relayed receptions must not have polluted location inference: the
	// source sensor is outside every zone, so it stays unlocatable.
	if _, err := d.Location().Locate(1); err == nil {
		t.Fatal("relayed frames leaked into location inference")
	}
}

package wire

import (
	"testing"
	"testing/quick"
)

func TestStreamIDComposition(t *testing.T) {
	tests := []struct {
		name   string
		sensor SensorID
		index  StreamIndex
	}{
		{"zero", 0, 0},
		{"small", 42, 3},
		{"max sensor", MaxSensorID, 0},
		{"max index", 0, MaxStreamIndex},
		{"both max", MaxSensorID, MaxStreamIndex},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			id, err := NewStreamID(tt.sensor, tt.index)
			if err != nil {
				t.Fatal(err)
			}
			if id.Sensor() != tt.sensor {
				t.Errorf("Sensor = %d, want %d", id.Sensor(), tt.sensor)
			}
			if id.Index() != tt.index {
				t.Errorf("Index = %d, want %d", id.Index(), tt.index)
			}
		})
	}
}

func TestStreamIDRejectsOversizedSensor(t *testing.T) {
	if _, err := NewStreamID(MaxSensorID+1, 0); err == nil {
		t.Fatal("want ErrSensorRange for 2^24")
	}
}

func TestMustStreamIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	MustStreamID(MaxSensorID+1, 0)
}

func TestStreamIDStringRoundTrip(t *testing.T) {
	tests := []StreamID{
		MustStreamID(0, 0),
		MustStreamID(42, 3),
		MustStreamID(MaxSensorID, MaxStreamIndex),
	}
	for _, id := range tests {
		parsed, err := ParseStreamID(id.String())
		if err != nil {
			t.Fatalf("ParseStreamID(%q): %v", id.String(), err)
		}
		if parsed != id {
			t.Errorf("round trip %q: got %v", id.String(), parsed)
		}
	}
}

func TestParseStreamIDErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"no slash", "42"},
		{"bad sensor", "x/1"},
		{"bad index", "1/x"},
		{"index too big", "1/256"},
		{"sensor too big", "16777216/0"},
		{"empty", ""},
		{"negative", "-1/0"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseStreamID(tt.in); err == nil {
				t.Errorf("ParseStreamID(%q) succeeded, want error", tt.in)
			}
		})
	}
}

// TestCapacityClaims pins the four numeric capacity claims from §1 of the
// paper: “supports up to 16.7M sensors, 256 internal-streams/sensor, 64K
// sequence counts and payloads of 64K bytes”.
func TestCapacityClaims(t *testing.T) {
	if got, want := MaxSensorID+1, 1<<24; got != want {
		t.Errorf("sensor capacity = %d, want %d (16.7M)", got, want)
	}
	if got, want := MaxStreamIndex+1, 256; got != want {
		t.Errorf("streams/sensor = %d, want %d", got, want)
	}
	if got, want := SeqCount, 1<<16; got != want {
		t.Errorf("sequence counts = %d, want %d (64K)", got, want)
	}
	if got, want := MaxPayload, 1<<16-1; got != want {
		t.Errorf("max payload = %d, want %d", got, want)
	}
}

func TestSeqLess(t *testing.T) {
	tests := []struct {
		name string
		a, b Seq
		want bool
	}{
		{"adjacent", 0, 1, true},
		{"reverse adjacent", 1, 0, false},
		{"equal", 7, 7, false},
		{"wraparound", 65535, 0, true},
		{"wraparound reverse", 0, 65535, false},
		{"large forward", 0, 32767, true},
		{"large backward", 0, 32769, false},
		{"across wrap", 65000, 1000, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Less(tt.b); got != tt.want {
				t.Errorf("%d.Less(%d) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestSeqOppositeValuesUnordered(t *testing.T) {
	// RFC 1982: values exactly 2^15 apart are unordered in both directions.
	var a, b Seq = 0, 1 << 15
	if a.Less(b) || b.Less(a) {
		t.Errorf("opposite values should be unordered: a<b=%v b<a=%v", a.Less(b), b.Less(a))
	}
}

func TestSeqDistance(t *testing.T) {
	tests := []struct {
		a, b Seq
		want int
	}{
		{0, 1, 1},
		{1, 0, -1},
		{5, 5, 0},
		{65535, 0, 1},
		{0, 65535, -1},
		{65000, 1000, 1536},
	}
	for _, tt := range tests {
		if got := tt.a.Distance(tt.b); got != tt.want {
			t.Errorf("Distance(%d, %d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSeqNextWraps(t *testing.T) {
	if got := Seq(65535).Next(); got != 0 {
		t.Errorf("Next(65535) = %d, want 0", got)
	}
}

// Property: Less is antisymmetric and consistent with Distance, and Next
// always advances by serial distance 1.
func TestSeqSerialArithmeticProperties(t *testing.T) {
	f := func(a, b uint16) bool {
		sa, sb := Seq(a), Seq(b)
		if sa.Less(sb) && sb.Less(sa) {
			return false // antisymmetry
		}
		d := sa.Distance(sb)
		if sa.Less(sb) != (d > 0) {
			return false // Less agrees with positive forward distance
		}
		if sa.Distance(sa.Next()) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamIDStringFormat(t *testing.T) {
	if got := MustStreamID(1042, 3).String(); got != "1042/3" {
		t.Errorf("String = %q, want \"1042/3\"", got)
	}
}

package wire

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Op identifies the action a stream-update request asks a sensor to take.
// Receive-capable sensors apply the operation and acknowledge it with the
// update id on their next data message (FlagUpdateAck); simple
// transmit-only sensors never see downlink traffic.
type Op uint8

const (
	// OpSetRate sets the sampling rate of the target stream; Value is the
	// new rate in millihertz (1000 = one sample per second).
	OpSetRate Op = iota + 1
	// OpEnableStream starts the target internal stream.
	OpEnableStream
	// OpDisableStream stops the target internal stream.
	OpDisableStream
	// OpSetPayloadLimit caps the payload size of the target stream; Value
	// is the limit in bytes.
	OpSetPayloadLimit
	// OpSetParam sets a device-specific parameter: Param is the key,
	// Value the value. The middleware does not interpret either.
	OpSetParam
	// OpPing requests an acknowledgement without changing anything, used
	// to probe whether a sensor is reachable (and receive-capable).
	OpPing

	opSentinel // one past the last valid op
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpSetRate:
		return "set-rate"
	case OpEnableStream:
		return "enable-stream"
	case OpDisableStream:
		return "disable-stream"
	case OpSetPayloadLimit:
		return "set-payload-limit"
	case OpSetParam:
		return "set-param"
	case OpPing:
		return "ping"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Valid reports whether o is a defined operation.
func (o Op) Valid() bool { return o >= OpSetRate && o < opSentinel }

// ControlSize is the fixed encoded size of a control message: a version
// byte, 16-bit update id, 32-bit target StreamID, op, param, 32-bit value,
// 64-bit issue timestamp (µs since the Unix epoch) and the Fletcher-16
// checksum. The Actuation Service stamps the timestamp and checksum before
// handing the frame to the Message Replicator (§4.2).
const ControlSize = 1 + 2 + 4 + 1 + 1 + 4 + 8 + ChecksumSize

// ErrBadOp is returned when a control frame carries an undefined op.
var ErrBadOp = fmt.Errorf("wire: invalid control op")

// ControlMessage is a decoded stream-update request travelling the return
// actuation path (consumer → Resource Manager → Actuation Service →
// Message Replicator → Transmitters → sensor).
type ControlMessage struct {
	UpdateID uint16 // id echoed back in the sensor's acknowledgement
	Target   StreamID
	Op       Op
	Param    uint8
	Value    uint32
	Issued   time.Time // stamped by the Actuation Service, µs precision
}

// AppendEncode appends the encoded control frame to dst.
func (c *ControlMessage) AppendEncode(dst []byte) ([]byte, error) {
	if !c.Op.Valid() {
		return dst, fmt.Errorf("%w: %d", ErrBadOp, uint8(c.Op))
	}
	start := len(dst)
	dst = append(dst, byte(Version<<6))
	dst = binary.BigEndian.AppendUint16(dst, c.UpdateID)
	dst = binary.BigEndian.AppendUint32(dst, uint32(c.Target))
	dst = append(dst, byte(c.Op), c.Param)
	dst = binary.BigEndian.AppendUint32(dst, c.Value)
	dst = binary.BigEndian.AppendUint64(dst, uint64(c.Issued.UnixMicro()))
	sum := Fletcher16(dst[start:])
	dst = binary.BigEndian.AppendUint16(dst, sum)
	return dst, nil
}

// Encode returns the encoded control frame as a fresh slice.
func (c *ControlMessage) Encode() ([]byte, error) {
	return c.AppendEncode(make([]byte, 0, ControlSize))
}

// DecodeControl decodes a control frame. It validates length, version,
// reserved bits, op and checksum.
func DecodeControl(b []byte) (ControlMessage, error) {
	if len(b) < ControlSize {
		return ControlMessage{}, fmt.Errorf("%w: %d bytes, need %d", ErrTruncated, len(b), ControlSize)
	}
	b = b[:ControlSize]
	if v := b[0] >> 6; v != Version {
		return ControlMessage{}, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, Version)
	}
	if b[0]&0x3F != 0 {
		return ControlMessage{}, ErrReservedFlags
	}
	body := b[:ControlSize-ChecksumSize]
	want := binary.BigEndian.Uint16(b[ControlSize-ChecksumSize:])
	if got := Fletcher16(body); got != want {
		return ControlMessage{}, fmt.Errorf("%w: computed %#04x, frame carries %#04x", ErrChecksum, got, want)
	}
	c := ControlMessage{
		UpdateID: binary.BigEndian.Uint16(b[1:]),
		Target:   StreamID(binary.BigEndian.Uint32(b[3:])),
		Op:       Op(b[7]),
		Param:    b[8],
		Value:    binary.BigEndian.Uint32(b[9:]),
		Issued:   time.UnixMicro(int64(binary.BigEndian.Uint64(b[13:]))).UTC(),
	}
	if !c.Op.Valid() {
		return ControlMessage{}, fmt.Errorf("%w: %d", ErrBadOp, uint8(c.Op))
	}
	return c, nil
}

package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Version is the current wire format version, carried in the top two bits
// of the message header byte.
const Version = 1

// Figure 2 layout: the fixed header is 72 bits (9 bytes) — an 8-bit
// message header, a 32-bit StreamID, a 16-bit sequence and a 16-bit
// payload size — followed by the opaque payload. Optional fields flagged
// in the header byte sit between the fixed header and the payload, and a
// Fletcher-16 checksum (present but elided in the paper's figure) closes
// the frame.
const (
	HeaderSize   = 9
	ChecksumSize = 2

	offHeader      = 0 // bit 0
	offStreamID    = 1 // bit 8
	offSeq         = 5 // bit 40
	offPayloadSize = 7 // bit 56
	offPayload     = 9 // bit 72 (when no optional fields are present)
)

// Flags is the 6-bit capability/information field of the message header
// byte. Bits mirror §4.3: “bit-fields which flag additional capabilities
// and information such as the presence of other data fields, and fused or
// relayed data”.
type Flags uint8

const (
	// FlagUpdateAck marks the presence of a 16-bit stream-update-request
	// acknowledgement id — “expected to appear in data messages generated
	// by receive-capable sensors” (§4.3).
	FlagUpdateAck Flags = 1 << iota
	// FlagRelayed marks multi-hop/relayed data (§8) and the presence of an
	// 8-bit hop count.
	FlagRelayed
	// FlagFused marks fused data and the presence of an 8-bit count of
	// fused sources.
	FlagFused
	// FlagEncrypted marks an end-to-end encrypted payload; the middleware
	// treats the payload as opaque either way.
	FlagEncrypted
	// FlagLocationAware advertises that the originating sensor is
	// location-aware (information only, no extra field: the paper
	// deliberately keeps location data out of the message header, §5).
	FlagLocationAware

	// flagReserved must be zero in version 1 frames.
	flagReserved

	flagsMask Flags = 1<<6 - 1
)

// Has reports whether every bit of g is set in f.
func (f Flags) Has(g Flags) bool { return f&g == g }

// flagNames[i] names bit 1<<i. The internal reserved bit is deliberately
// absent: it is not part of the public flag vocabulary and frames carrying
// it never decode, so user-facing output omits it.
var flagNames = [...]string{"ack", "relayed", "fused", "encrypted", "locaware"}

// String lists the set flags, e.g. "ack|relayed".
func (f Flags) String() string {
	f &= flagsMask &^ flagReserved
	if f == 0 {
		return "none"
	}
	var b strings.Builder
	b.Grow(len("ack|relayed|fused|encrypted|locaware")) // the all-flags case
	for i, name := range flagNames {
		if f&(1<<i) != 0 {
			if b.Len() > 0 {
				b.WriteByte('|')
			}
			b.WriteString(name)
		}
	}
	return b.String()
}

// Codec errors.
var (
	ErrTruncated     = errors.New("wire: truncated frame")
	ErrVersion       = errors.New("wire: unsupported version")
	ErrReservedFlags = errors.New("wire: reserved flag bits set")
	ErrChecksum      = errors.New("wire: checksum mismatch")
	ErrPayloadSize   = errors.New("wire: payload exceeds 64K limit")
)

// Message is a decoded Garnet data message (Figure 2). A data stream is a
// sequence of Messages sharing a StreamID, ordered by Seq.
//
// AckID, HopCount and FusedCount are meaningful only when the
// corresponding flag is set.
type Message struct {
	Flags      Flags
	Stream     StreamID
	Seq        Seq
	AckID      uint16 // valid iff Flags.Has(FlagUpdateAck)
	HopCount   uint8  // valid iff Flags.Has(FlagRelayed)
	FusedCount uint8  // valid iff Flags.Has(FlagFused)
	Payload    []byte // opaque to the middleware; nil and empty are equivalent
}

func (m *Message) extSize() int {
	n := 0
	if m.Flags.Has(FlagUpdateAck) {
		n += 2
	}
	if m.Flags.Has(FlagRelayed) {
		n++
	}
	if m.Flags.Has(FlagFused) {
		n++
	}
	return n
}

// EncodedSize returns the number of bytes Encode will produce for m.
func (m *Message) EncodedSize() int {
	return HeaderSize + m.extSize() + len(m.Payload) + ChecksumSize
}

// AppendEncode appends the encoded frame to dst and returns the extended
// slice. It fails if the payload exceeds MaxPayload or reserved flag bits
// are set.
func (m *Message) AppendEncode(dst []byte) ([]byte, error) {
	if len(m.Payload) > MaxPayload {
		return dst, fmt.Errorf("%w: %d bytes", ErrPayloadSize, len(m.Payload))
	}
	if m.Flags&^flagsMask != 0 || m.Flags.Has(flagReserved) {
		return dst, ErrReservedFlags
	}
	start := len(dst)
	dst = append(dst, byte(Version<<6)|byte(m.Flags))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.Stream))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.Seq))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Payload)))
	if m.Flags.Has(FlagUpdateAck) {
		dst = binary.BigEndian.AppendUint16(dst, m.AckID)
	}
	if m.Flags.Has(FlagRelayed) {
		dst = append(dst, m.HopCount)
	}
	if m.Flags.Has(FlagFused) {
		dst = append(dst, m.FusedCount)
	}
	dst = append(dst, m.Payload...)
	sum := Fletcher16(dst[start:])
	dst = binary.BigEndian.AppendUint16(dst, sum)
	return dst, nil
}

// Encode returns the encoded frame as a fresh slice.
func (m *Message) Encode() ([]byte, error) {
	return m.AppendEncode(make([]byte, 0, m.EncodedSize()))
}

// DecodeMessage decodes one data message from the front of b, returning
// the message, the number of bytes consumed, and any validation error.
// The returned Message owns a copy of the payload, so b may be reused.
func DecodeMessage(b []byte) (Message, int, error) {
	var m Message
	n, err := decodeInto(b, &m, false)
	if err != nil {
		return Message{}, 0, err
	}
	return m, n, nil
}

// DecodeMessageInto decodes one data message from the front of b into *m,
// returning the number of bytes consumed. The payload is copied into
// m.Payload, reusing its backing array when the capacity suffices — a
// caller that recycles the same Message across frames decodes without
// allocating once the payload buffer has grown to the working-set size.
// On error *m is left in an unspecified state.
//
// Because the backing array is reused unconditionally, never pass a
// Message last filled by DecodeMessageBorrowed: its payload aliases a
// frame buffer this call would scribble into. Set m.Payload = nil first
// when switching a Message from borrow-mode to copy-mode decoding.
func DecodeMessageInto(b []byte, m *Message) (int, error) {
	return decodeInto(b, m, false)
}

// DecodeMessageBorrowed decodes like DecodeMessageInto but aliases the
// frame instead of copying: m.Payload points directly into b. It never
// allocates.
//
// Lifetime rule: the message is only valid while b is. A caller that
// reuses or releases the frame buffer (e.g. back to a pool) must first
// either drop the message or detach the payload with an explicit copy;
// handing a borrowed Message to code that retains it (queues, backlogs)
// without detaching corrupts the payload silently.
func DecodeMessageBorrowed(b []byte, m *Message) (int, error) {
	return decodeInto(b, m, true)
}

func decodeInto(b []byte, m *Message, borrow bool) (int, error) {
	if len(b) < HeaderSize+ChecksumSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	hdr := b[offHeader]
	version := hdr >> 6
	if version != Version {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrVersion, version, Version)
	}
	flags := Flags(hdr) & flagsMask
	if flags.Has(flagReserved) {
		return 0, ErrReservedFlags
	}
	m.Flags = flags
	m.Stream = StreamID(binary.BigEndian.Uint32(b[offStreamID:]))
	m.Seq = Seq(binary.BigEndian.Uint16(b[offSeq:]))
	m.AckID, m.HopCount, m.FusedCount = 0, 0, 0
	payloadLen := int(binary.BigEndian.Uint16(b[offPayloadSize:]))
	off := HeaderSize
	if flags.Has(FlagUpdateAck) {
		if len(b) < off+2 {
			return 0, ErrTruncated
		}
		m.AckID = binary.BigEndian.Uint16(b[off:])
		off += 2
	}
	if flags.Has(FlagRelayed) {
		if len(b) < off+1 {
			return 0, ErrTruncated
		}
		m.HopCount = b[off]
		off++
	}
	if flags.Has(FlagFused) {
		if len(b) < off+1 {
			return 0, ErrTruncated
		}
		m.FusedCount = b[off]
		off++
	}
	total := off + payloadLen + ChecksumSize
	if len(b) < total {
		return 0, fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, total, len(b))
	}
	body := b[:total-ChecksumSize]
	want := binary.BigEndian.Uint16(b[total-ChecksumSize:])
	if got := Fletcher16(body); got != want {
		return 0, fmt.Errorf("%w: computed %#04x, frame carries %#04x", ErrChecksum, got, want)
	}
	switch {
	case borrow:
		if payloadLen == 0 {
			m.Payload = nil // never retain an alias, even an empty one
		} else {
			m.Payload = b[off : off+payloadLen : off+payloadLen]
		}
	default:
		// Truncate-and-append keeps a grown destination buffer across
		// frames, including empty-payload ones, so interleaved heartbeat
		// and data frames stay allocation-free. A fresh Message decodes
		// an empty payload to nil (slicing nil yields nil), matching
		// DecodeMessage's historical behaviour.
		m.Payload = append(m.Payload[:0], b[off:off+payloadLen]...)
	}
	return total, nil
}

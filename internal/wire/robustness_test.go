package wire

import (
	"testing"
	"testing/quick"
)

// Robustness: the decoders must never panic, whatever bytes the medium
// hands them — they either return a message or an error.

func TestDecodeMessageNeverPanicsOnArbitraryBytes(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		msg, n, err := DecodeMessage(data)
		if err == nil {
			// A successful decode must be internally consistent.
			if n <= 0 || n > len(data) {
				return false
			}
			if msg.Flags.Has(flagReserved) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeControlNeverPanicsOnArbitraryBytes(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		c, err := DecodeControl(data)
		if err == nil && !c.Op.Valid() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Random bytes that happen to satisfy version/flags/length constraints
// must still fail the checksum almost always: a valid-looking frame from
// noise is effectively impossible.
func TestRandomBytesRarelyDecode(t *testing.T) {
	okCount := 0
	const trials = 5000
	f := func(data []byte) bool {
		if len(data) < HeaderSize+ChecksumSize {
			return true
		}
		if _, _, err := DecodeMessage(data); err == nil {
			okCount++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: trials}); err != nil {
		t.Fatal(err)
	}
	// The version bits alone reject 3/4; the checksum rejects ~65535/65536
	// of the rest. Even a handful of accepts would indicate a weak screen.
	if okCount > 2 {
		t.Errorf("%d of %d random byte strings decoded successfully", okCount, trials)
	}
}

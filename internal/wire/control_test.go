package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestControlRoundTrip(t *testing.T) {
	issued := time.Date(2003, 5, 20, 12, 30, 45, 123456000, time.UTC)
	tests := []struct {
		name string
		msg  ControlMessage
	}{
		{"set rate", ControlMessage{UpdateID: 1, Target: MustStreamID(42, 1), Op: OpSetRate, Value: 2000, Issued: issued}},
		{"enable", ControlMessage{UpdateID: 2, Target: MustStreamID(7, 3), Op: OpEnableStream, Issued: issued}},
		{"disable", ControlMessage{UpdateID: 3, Target: MustStreamID(7, 3), Op: OpDisableStream, Issued: issued}},
		{"payload limit", ControlMessage{UpdateID: 4, Target: MustStreamID(9, 0), Op: OpSetPayloadLimit, Value: 1024, Issued: issued}},
		{"param", ControlMessage{UpdateID: 5, Target: MustStreamID(9, 0), Op: OpSetParam, Param: 17, Value: 0xDEADBEEF, Issued: issued}},
		{"ping", ControlMessage{UpdateID: 65535, Target: MustStreamID(MaxSensorID, 255), Op: OpPing, Issued: issued}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			frame, err := tt.msg.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if len(frame) != ControlSize {
				t.Errorf("frame length = %d, want %d", len(frame), ControlSize)
			}
			got, err := DecodeControl(frame)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.msg {
				t.Errorf("got %+v, want %+v", got, tt.msg)
			}
		})
	}
}

func TestControlTimestampPrecision(t *testing.T) {
	// Sub-microsecond precision is truncated by the 64-bit µs field.
	c := ControlMessage{UpdateID: 1, Target: MustStreamID(1, 0), Op: OpPing,
		Issued: time.Date(2003, 5, 20, 0, 0, 0, 1500, time.UTC)} // 1.5µs
	frame, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeControl(frame)
	if err != nil {
		t.Fatal(err)
	}
	if want := c.Issued.Truncate(time.Microsecond); !got.Issued.Equal(want) {
		t.Errorf("Issued = %v, want %v", got.Issued, want)
	}
}

func TestControlEncodeRejectsBadOp(t *testing.T) {
	for _, op := range []Op{0, opSentinel, 200} {
		c := ControlMessage{Target: MustStreamID(1, 0), Op: op}
		if _, err := c.Encode(); !errors.Is(err, ErrBadOp) {
			t.Errorf("op %d: err = %v, want ErrBadOp", op, err)
		}
	}
}

func TestControlDecodeErrors(t *testing.T) {
	valid, err := (&ControlMessage{UpdateID: 9, Target: MustStreamID(3, 1), Op: OpSetRate, Value: 1000, Issued: time.UnixMicro(1).UTC()}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeControl(valid[:ControlSize-1]); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := bytes.Clone(valid)
		bad[0] = 0x80
		if _, err := DecodeControl(bad); !errors.Is(err, ErrVersion) {
			t.Errorf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("reserved bits", func(t *testing.T) {
		bad := bytes.Clone(valid)
		bad[0] |= 0x01
		if _, err := DecodeControl(bad); err == nil {
			t.Error("want error for reserved bits")
		}
	})
	t.Run("corrupt body", func(t *testing.T) {
		bad := bytes.Clone(valid)
		bad[10] ^= 0x40
		if _, err := DecodeControl(bad); !errors.Is(err, ErrChecksum) {
			t.Errorf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("bad op with fixed checksum", func(t *testing.T) {
		bad := bytes.Clone(valid)
		bad[7] = 0xEE
		body := bad[:ControlSize-ChecksumSize]
		sum := Fletcher16(body)
		bad[ControlSize-2] = byte(sum >> 8)
		bad[ControlSize-1] = byte(sum)
		if _, err := DecodeControl(bad); !errors.Is(err, ErrBadOp) {
			t.Errorf("err = %v, want ErrBadOp", err)
		}
	})
}

func TestOpStringAndValid(t *testing.T) {
	wantNames := map[Op]string{
		OpSetRate: "set-rate", OpEnableStream: "enable-stream",
		OpDisableStream: "disable-stream", OpSetPayloadLimit: "set-payload-limit",
		OpSetParam: "set-param", OpPing: "ping",
	}
	for op, want := range wantNames {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
		if !op.Valid() {
			t.Errorf("Op(%d) should be valid", op)
		}
	}
	if Op(0).Valid() || opSentinel.Valid() {
		t.Error("0 and sentinel should be invalid")
	}
	if got := Op(99).String(); got != "op(99)" {
		t.Errorf("unknown op String = %q", got)
	}
}

// Property: control encode→decode round-trips for all valid inputs.
func TestControlRoundTripProperty(t *testing.T) {
	f := func(updateID uint16, sensor uint32, index uint8, opRaw uint8, param uint8, value uint32, micros int64) bool {
		op := Op(opRaw%uint8(opSentinel-1)) + 1
		c := ControlMessage{
			UpdateID: updateID,
			Target:   MustStreamID(SensorID(sensor)&MaxSensorID, StreamIndex(index)),
			Op:       op,
			Param:    param,
			Value:    value,
			Issued:   time.UnixMicro(micros % (1 << 50)).UTC(),
		}
		frame, err := c.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeControl(frame)
		return err == nil && got == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

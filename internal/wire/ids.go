// Package wire implements Garnet's on-air formats: the Figure 2
// data-message layout (8-bit message header, 32-bit composite StreamID,
// 16-bit sequence, 16-bit payload size, opaque payload) and the downlink
// control-message format used by the actuation path, together with the
// identifier and sequence-number arithmetic both depend on.
//
// The bit widths reproduce the paper's proof-of-concept exactly, giving
// the published capacities: 16.7M sensors (2^24), 256 internal streams per
// sensor (2^8), 64K sequence counts (2^16) and payloads of up to 64K bytes
// (2^16 - 1).
package wire

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Capacity limits of the wire format, as claimed in §1 of the paper.
const (
	// MaxSensorID is the largest addressable sensor: 2^24-1 (“16.7M sensors”).
	MaxSensorID = 1<<24 - 1
	// MaxStreamIndex is the largest internal stream index per sensor
	// (“256 internal-streams/sensor”).
	MaxStreamIndex = 1<<8 - 1
	// SeqCount is the number of distinct sequence values (“64K sequence counts”).
	SeqCount = 1 << 16
	// MaxPayload is the largest payload a message can carry, limited by the
	// 16-bit payload-size field (“payloads of 64K bytes”).
	MaxPayload = 1<<16 - 1
)

// SensorID identifies a physical (or virtual) sensor node. Valid values
// occupy 24 bits.
type SensorID uint32

// StreamIndex selects one of a sensor's internal data streams.
type StreamIndex uint8

// LocationStreamIndex is the reserved internal stream index on which the
// middleware publishes inferred location estimates for a sensor, so that —
// per §2 of the paper — location data is “treated as any other data
// stream” and can be guarded by the same subscription permissions.
const LocationStreamIndex StreamIndex = 0xFF

// StreamID is the composite stream identifier from Figure 2: the high 24
// bits name the originating sensor and the low 8 bits the sensor-internal
// stream.
type StreamID uint32

// ErrSensorRange is returned when a sensor id does not fit in 24 bits.
var ErrSensorRange = errors.New("wire: sensor id exceeds 24 bits")

// NewStreamID composes a StreamID from a sensor id and an internal stream
// index. It returns ErrSensorRange if sensor exceeds MaxSensorID.
func NewStreamID(sensor SensorID, index StreamIndex) (StreamID, error) {
	if sensor > MaxSensorID {
		return 0, fmt.Errorf("%w: %d", ErrSensorRange, sensor)
	}
	return StreamID(uint32(sensor)<<8 | uint32(index)), nil
}

// MustStreamID is NewStreamID for compile-time-known ids; it panics on a
// sensor id out of range.
func MustStreamID(sensor SensorID, index StreamIndex) StreamID {
	id, err := NewStreamID(sensor, index)
	if err != nil {
		panic(err)
	}
	return id
}

// Shard maps the sensor id to a partition in [0, n) with the 32-bit
// Fibonacci multiplier (2^32/φ): sensor ids are often small and
// sequential, and the multiply-shift spreads them uniformly even for
// power-of-two shard counts. Both the Filtering and the Dispatching
// Service partition their per-stream state with this single function, so
// a stream contends on at most one ingest lock and one dispatch lock end
// to end — keep it the one source of truth for state partitioning.
func (id SensorID) Shard(n int) int {
	h := uint32(id) * 0x9e3779b9
	return int((uint64(h) * uint64(n)) >> 32)
}

// Sensor returns the 24-bit sensor component of the id.
func (id StreamID) Sensor() SensorID { return SensorID(id >> 8) }

// Index returns the 8-bit internal stream component of the id.
func (id StreamID) Index() StreamIndex { return StreamIndex(id & 0xFF) }

// String renders the id as "sensor/index", e.g. "1042/3".
func (id StreamID) String() string {
	return strconv.FormatUint(uint64(id.Sensor()), 10) + "/" +
		strconv.FormatUint(uint64(id.Index()), 10)
}

// ParseStreamID parses the "sensor/index" form produced by String.
func ParseStreamID(s string) (StreamID, error) {
	sensorPart, indexPart, ok := strings.Cut(s, "/")
	if !ok {
		return 0, fmt.Errorf("wire: stream id %q: missing '/'", s)
	}
	sensor, err := strconv.ParseUint(sensorPart, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("wire: stream id %q: bad sensor: %w", s, err)
	}
	if sensor > MaxSensorID {
		return 0, fmt.Errorf("wire: stream id %q: %w", s, ErrSensorRange)
	}
	index, err := strconv.ParseUint(indexPart, 10, 8)
	if err != nil {
		return 0, fmt.Errorf("wire: stream id %q: bad index: %w", s, err)
	}
	return MustStreamID(SensorID(sensor), StreamIndex(index)), nil
}

// Seq is a 16-bit message sequence number. Because only 64K sequence
// counts exist (Figure 2), long-lived streams wrap; comparisons therefore
// use RFC 1982 serial-number arithmetic so ordering and duplicate
// detection survive wrap-around.
type Seq uint16

// Next returns the sequence number following s, wrapping at 2^16.
func (s Seq) Next() Seq { return s + 1 }

// Less reports whether s precedes t in serial-number order. Exactly
// opposite values (distance 2^15) are unordered; Less reports false for
// both orderings of such a pair.
func (s Seq) Less(t Seq) bool {
	d := uint16(t - s)
	return d != 0 && d < 1<<15
}

// Distance returns the forward serial distance from s to t in
// [-32768, 32767]: positive when t is ahead of s.
func (s Seq) Distance(t Seq) int {
	return int(int16(t - s))
}

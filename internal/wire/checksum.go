package wire

// Fletcher16 computes the Fletcher-16 checksum of data. The paper notes
// that “the usual checksums associated with the data messages” exist but
// are elided from Figure 2; this implementation appends a Fletcher-16 to
// every frame so the receivers can screen out frames corrupted in the
// wireless medium. Fletcher-16 detects all single-byte errors and almost
// all burst errors while staying trivially cheap on an 8-bit sensor MCU,
// matching the paper's minimal-sensor-requirements design choice (§5).
func Fletcher16(data []byte) uint16 {
	var sum1, sum2 uint32
	for len(data) > 0 {
		// Process in blocks of at most 5802 bytes, the largest count for
		// which the uint32 accumulators cannot overflow before reduction.
		n := len(data)
		if n > 5802 {
			n = 5802
		}
		for _, b := range data[:n] {
			sum1 += uint32(b)
			sum2 += sum1
		}
		sum1 %= 255
		sum2 %= 255
		data = data[n:]
	}
	return uint16(sum2<<8 | sum1)
}

package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
)

// TestFigure2Layout pins the exact bit offsets of Figure 2: message header
// at bit 0, StreamID at bit 8, sequence at bit 40, payload size at bit 56
// and the payload from bit 72.
func TestFigure2Layout(t *testing.T) {
	m := Message{
		Stream:  MustStreamID(0xABCDEF, 0x12),
		Seq:     0x3456,
		Payload: []byte{0xDE, 0xAD},
	}
	frame, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if frame[0]>>6 != Version {
		t.Errorf("version bits = %d, want %d", frame[0]>>6, Version)
	}
	if got := binary.BigEndian.Uint32(frame[1:5]); got != 0xABCDEF12 {
		t.Errorf("StreamID at bit 8 = %#08x, want 0xABCDEF12", got)
	}
	if got := binary.BigEndian.Uint16(frame[5:7]); got != 0x3456 {
		t.Errorf("sequence at bit 40 = %#04x, want 0x3456", got)
	}
	if got := binary.BigEndian.Uint16(frame[7:9]); got != 2 {
		t.Errorf("payload size at bit 56 = %d, want 2", got)
	}
	if !bytes.Equal(frame[9:11], []byte{0xDE, 0xAD}) {
		t.Errorf("payload at bit 72 = % x, want de ad", frame[9:11])
	}
	if len(frame) != HeaderSize+2+ChecksumSize {
		t.Errorf("frame length = %d, want %d", len(frame), HeaderSize+2+ChecksumSize)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		msg  Message
	}{
		{"empty payload", Message{Stream: MustStreamID(1, 1), Seq: 1}},
		{"basic", Message{Stream: MustStreamID(42, 7), Seq: 100, Payload: []byte("hello")}},
		{"with ack", Message{Flags: FlagUpdateAck, Stream: MustStreamID(9, 0), Seq: 65535, AckID: 0xBEEF, Payload: []byte{1}}},
		{"relayed", Message{Flags: FlagRelayed, Stream: MustStreamID(8, 1), Seq: 2, HopCount: 3, Payload: []byte{2}}},
		{"fused", Message{Flags: FlagFused, Stream: MustStreamID(7, 2), Seq: 3, FusedCount: 5, Payload: []byte{3}}},
		{"encrypted locaware", Message{Flags: FlagEncrypted | FlagLocationAware, Stream: MustStreamID(6, 3), Seq: 4, Payload: []byte{4, 5, 6}}},
		{"all extensions", Message{
			Flags:  FlagUpdateAck | FlagRelayed | FlagFused | FlagEncrypted | FlagLocationAware,
			Stream: MustStreamID(MaxSensorID, MaxStreamIndex), Seq: 12345,
			AckID: 1, HopCount: 2, FusedCount: 3, Payload: bytes.Repeat([]byte{0xAA}, 100),
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			frame, err := tt.msg.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if len(frame) != tt.msg.EncodedSize() {
				t.Errorf("EncodedSize = %d, actual %d", tt.msg.EncodedSize(), len(frame))
			}
			got, n, err := DecodeMessage(frame)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(frame) {
				t.Errorf("consumed %d, want %d", n, len(frame))
			}
			if got.Flags != tt.msg.Flags || got.Stream != tt.msg.Stream || got.Seq != tt.msg.Seq ||
				got.AckID != tt.msg.AckID || got.HopCount != tt.msg.HopCount || got.FusedCount != tt.msg.FusedCount {
				t.Errorf("fields mismatch: got %+v, want %+v", got, tt.msg)
			}
			if !bytes.Equal(got.Payload, tt.msg.Payload) {
				t.Errorf("payload mismatch: got % x, want % x", got.Payload, tt.msg.Payload)
			}
		})
	}
}

func TestMessageMaxPayload(t *testing.T) {
	m := Message{Stream: MustStreamID(1, 0), Payload: make([]byte, MaxPayload)}
	frame, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeMessage(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != MaxPayload {
		t.Fatalf("payload length = %d, want %d", len(got.Payload), MaxPayload)
	}
}

func TestMessagePayloadTooLarge(t *testing.T) {
	m := Message{Stream: MustStreamID(1, 0), Payload: make([]byte, MaxPayload+1)}
	if _, err := m.Encode(); !errors.Is(err, ErrPayloadSize) {
		t.Fatalf("err = %v, want ErrPayloadSize", err)
	}
}

func TestMessageReservedFlagRejected(t *testing.T) {
	m := Message{Flags: flagReserved, Stream: MustStreamID(1, 0)}
	if _, err := m.Encode(); !errors.Is(err, ErrReservedFlags) {
		t.Fatalf("encode err = %v, want ErrReservedFlags", err)
	}
	// And on decode: craft a frame with the reserved bit set.
	good, err := (&Message{Stream: MustStreamID(1, 0)}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	good[0] |= byte(flagReserved)
	// Fix the checksum so only the reserved bit is at fault.
	body := good[:len(good)-ChecksumSize]
	binary.BigEndian.PutUint16(good[len(good)-ChecksumSize:], Fletcher16(body))
	if _, _, err := DecodeMessage(good); !errors.Is(err, ErrReservedFlags) {
		t.Fatalf("decode err = %v, want ErrReservedFlags", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	valid, err := (&Message{Stream: MustStreamID(5, 1), Seq: 9, Payload: []byte("xyz")}).Encode()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated short", func(t *testing.T) {
		if _, _, err := DecodeMessage(valid[:5]); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		if _, _, err := DecodeMessage(valid[:len(valid)-3]); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := bytes.Clone(valid)
		bad[0] = (Version + 1) << 6
		if _, _, err := DecodeMessage(bad); !errors.Is(err, ErrVersion) {
			t.Errorf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("corrupt payload byte", func(t *testing.T) {
		bad := bytes.Clone(valid)
		bad[10] ^= 0xFF
		if _, _, err := DecodeMessage(bad); !errors.Is(err, ErrChecksum) {
			t.Errorf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("corrupt checksum itself", func(t *testing.T) {
		bad := bytes.Clone(valid)
		bad[len(bad)-1] ^= 0x01
		if _, _, err := DecodeMessage(bad); !errors.Is(err, ErrChecksum) {
			t.Errorf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("truncated ack extension", func(t *testing.T) {
		m := Message{Flags: FlagUpdateAck, Stream: MustStreamID(1, 0), AckID: 7}
		frame, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := DecodeMessage(frame[:10]); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v, want ErrTruncated", err)
		}
	})
}

func TestDecodeConsumesExactFrameFromStream(t *testing.T) {
	// Two back-to-back frames in one buffer must decode independently.
	m1 := Message{Stream: MustStreamID(1, 1), Seq: 1, Payload: []byte("first")}
	m2 := Message{Stream: MustStreamID(2, 2), Seq: 2, Payload: []byte("second!")}
	buf, err := m1.AppendEncode(nil)
	if err != nil {
		t.Fatal(err)
	}
	buf, err = m2.AppendEncode(buf)
	if err != nil {
		t.Fatal(err)
	}
	got1, n1, err := DecodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	got2, n2, err := DecodeMessage(buf[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if n1+n2 != len(buf) {
		t.Errorf("consumed %d+%d, want %d", n1, n2, len(buf))
	}
	if string(got1.Payload) != "first" || string(got2.Payload) != "second!" {
		t.Errorf("payloads %q, %q", got1.Payload, got2.Payload)
	}
}

func TestDecodedPayloadIsACopy(t *testing.T) {
	m := Message{Stream: MustStreamID(1, 0), Payload: []byte("immutable")}
	frame, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeMessage(frame)
	if err != nil {
		t.Fatal(err)
	}
	frame[9] ^= 0xFF // clobber the buffer after decode
	if string(got.Payload) != "immutable" {
		t.Error("decoded payload aliases the input buffer")
	}
}

// Property: encode→decode is the identity for all valid messages.
func TestMessageRoundTripProperty(t *testing.T) {
	f := func(sensor uint32, index, flagBits uint8, seq, ackID uint16, hop, fused uint8, payload []byte) bool {
		flags := Flags(flagBits) & (FlagUpdateAck | FlagRelayed | FlagFused | FlagEncrypted | FlagLocationAware)
		m := Message{
			Flags:   flags,
			Stream:  MustStreamID(SensorID(sensor)&MaxSensorID, StreamIndex(index)),
			Seq:     Seq(seq),
			Payload: payload,
		}
		if flags.Has(FlagUpdateAck) {
			m.AckID = ackID
		}
		if flags.Has(FlagRelayed) {
			m.HopCount = hop
		}
		if flags.Has(FlagFused) {
			m.FusedCount = fused
		}
		frame, err := m.Encode()
		if err != nil {
			return false
		}
		got, n, err := DecodeMessage(frame)
		if err != nil || n != len(frame) {
			return false
		}
		return got.Flags == m.Flags && got.Stream == m.Stream && got.Seq == m.Seq &&
			got.AckID == m.AckID && got.HopCount == m.HopCount && got.FusedCount == m.FusedCount &&
			bytes.Equal(got.Payload, m.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: flipping any single byte of a frame is always detected — the
// decode either fails or, when the flip hits version/reserved/length
// fields, reports a structural error; it never silently yields a different
// valid message.
func TestSingleByteCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	m := Message{
		Flags:  FlagUpdateAck,
		Stream: MustStreamID(123456, 9),
		Seq:    4242,
		AckID:  77,
	}
	m.Payload = make([]byte, 64)
	for i := range m.Payload {
		m.Payload[i] = byte(rng.UintN(256))
	}
	frame, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(frame); pos++ {
		for trial := 0; trial < 3; trial++ {
			bad := bytes.Clone(frame)
			flip := byte(1 + rng.UintN(255))
			bad[pos] ^= flip
			got, _, err := DecodeMessage(bad)
			if err != nil {
				continue // detected: good
			}
			// Undetected decode must at least differ from silent acceptance
			// of the original message — that would mean corruption passed
			// completely unnoticed.
			if got.Stream == m.Stream && got.Seq == m.Seq && bytes.Equal(got.Payload, m.Payload) && got.AckID == m.AckID {
				t.Fatalf("flip of byte %d (xor %#02x) was silently accepted", pos, flip)
			}
		}
	}
}

func TestFlagsString(t *testing.T) {
	tests := []struct {
		f    Flags
		want string
	}{
		{0, "none"},
		{FlagUpdateAck, "ack"},
		{FlagUpdateAck | FlagRelayed, "ack|relayed"},
		{FlagEncrypted | FlagLocationAware, "encrypted|locaware"},
		{FlagUpdateAck | FlagRelayed | FlagFused | FlagEncrypted | FlagLocationAware,
			"ack|relayed|fused|encrypted|locaware"},
		// The internal reserved bit is not part of the public vocabulary
		// and must never leak into user-facing output.
		{flagReserved, "none"},
		{FlagUpdateAck | flagReserved, "ack"},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Errorf("Flags(%d).String() = %q, want %q", tt.f, got, tt.want)
		}
	}
}

func TestFlagsStringAllocs(t *testing.T) {
	// All five flags: the longest output, which must still fit the
	// builder's preallocation. One allocation: the returned string itself
	// (strings.Builder's buffer becomes the string). The per-call name
	// table and join scratch of the old implementation are gone.
	f := FlagUpdateAck | FlagRelayed | FlagFused | FlagEncrypted | FlagLocationAware
	if got := testing.AllocsPerRun(100, func() { _ = f.String() }); got > 1 {
		t.Errorf("Flags.String allocates %v per call, want <= 1", got)
	}
}

// TestDecodeMessageInto: the reusable-destination decoder must agree with
// DecodeMessage bit for bit, reuse the payload buffer once grown, and
// reset extension fields left over from a previous frame.
func TestDecodeMessageInto(t *testing.T) {
	big := Message{
		Flags:  FlagUpdateAck | FlagRelayed | FlagFused,
		Stream: MustStreamID(77, 3), Seq: 9,
		AckID: 0xBEEF, HopCount: 2, FusedCount: 4,
		Payload: bytes.Repeat([]byte{0xAB}, 64),
	}
	small := Message{Stream: MustStreamID(78, 0), Seq: 10, Payload: []byte("hi")}
	bigFrame, err := big.Encode()
	if err != nil {
		t.Fatal(err)
	}
	smallFrame, err := small.Encode()
	if err != nil {
		t.Fatal(err)
	}

	var m Message
	n, err := DecodeMessageInto(bigFrame, &m)
	if err != nil || n != len(bigFrame) {
		t.Fatalf("DecodeMessageInto: n=%d err=%v", n, err)
	}
	ref, _, _ := DecodeMessage(bigFrame)
	if !reflect.DeepEqual(m, ref) {
		t.Fatalf("DecodeMessageInto = %+v, DecodeMessage = %+v", m, ref)
	}

	grown := &m.Payload[0]
	n, err = DecodeMessageInto(smallFrame, &m)
	if err != nil || n != len(smallFrame) {
		t.Fatalf("reuse decode: n=%d err=%v", n, err)
	}
	if m.AckID != 0 || m.HopCount != 0 || m.FusedCount != 0 {
		t.Fatalf("stale extension fields survived reuse: %+v", m)
	}
	if string(m.Payload) != "hi" {
		t.Fatalf("payload = %q", m.Payload)
	}
	if &m.Payload[0] != grown {
		t.Error("payload buffer was not reused despite sufficient capacity")
	}

	// An interleaved empty-payload frame must not drop the grown buffer.
	empty := Message{Stream: MustStreamID(79, 0), Seq: 11}
	emptyFrame, err := empty.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMessageInto(emptyFrame, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Payload) != 0 || cap(m.Payload) == 0 {
		t.Fatalf("empty frame dropped the reusable buffer (len=%d cap=%d)", len(m.Payload), cap(m.Payload))
	}
	// Steady state: decoding into a warmed-up Message never allocates.
	if got := testing.AllocsPerRun(100, func() {
		if _, err := DecodeMessageInto(bigFrame, &m); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("warmed-up DecodeMessageInto allocates %v per call, want 0", got)
	}
}

// TestDecodeMessageBorrowed: borrow mode aliases the frame instead of
// copying, never allocates, and still validates the checksum.
func TestDecodeMessageBorrowed(t *testing.T) {
	msg := Message{Stream: MustStreamID(5, 1), Seq: 3, Payload: []byte("borrowed-payload")}
	frame, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	n, err := DecodeMessageBorrowed(frame, &m)
	if err != nil || n != len(frame) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if string(m.Payload) != "borrowed-payload" {
		t.Fatalf("payload = %q", m.Payload)
	}
	if &m.Payload[0] != &frame[HeaderSize] {
		t.Error("borrowed payload does not alias the frame")
	}
	// The alias is capacity-clamped: appending to it must not scribble
	// over the checksum trailer.
	if cap(m.Payload) != len(m.Payload) {
		t.Errorf("borrowed payload capacity %d leaks past its length %d", cap(m.Payload), len(m.Payload))
	}
	if got := testing.AllocsPerRun(100, func() {
		if _, err := DecodeMessageBorrowed(frame, &m); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("DecodeMessageBorrowed allocates %v per call, want 0", got)
	}
	// Corruption is still caught in borrow mode.
	frame[len(frame)-1] ^= 0xFF
	if _, err := DecodeMessageBorrowed(frame, &m); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted frame: err = %v, want ErrChecksum", err)
	}
}

func TestFletcher16KnownVectors(t *testing.T) {
	tests := []struct {
		in   string
		want uint16
	}{
		{"abcde", 0xC8F0},
		{"abcdef", 0x2057},
		{"abcdefgh", 0x0627},
	}
	for _, tt := range tests {
		if got := Fletcher16([]byte(tt.in)); got != tt.want {
			t.Errorf("Fletcher16(%q) = %#04x, want %#04x", tt.in, got, tt.want)
		}
	}
}

func TestFletcher16LargeInputMatchesNaive(t *testing.T) {
	// The block-reduction optimisation must agree with the naive definition.
	naive := func(data []byte) uint16 {
		var s1, s2 uint32
		for _, b := range data {
			s1 = (s1 + uint32(b)) % 255
			s2 = (s2 + s1) % 255
		}
		return uint16(s2<<8 | s1)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{0, 1, 5801, 5802, 5803, 20000, 70000} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.UintN(256))
		}
		if got, want := Fletcher16(data), naive(data); got != want {
			t.Errorf("n=%d: Fletcher16 = %#04x, naive = %#04x", n, got, want)
		}
	}
}

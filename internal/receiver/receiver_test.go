package receiver

import (
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

func broadcastMsg(t *testing.T, m *radio.Medium, from geo.Point, msg wire.Message) {
	t.Helper()
	frame, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m.Broadcast(radio.BandUplink, from, 1e9, frame)
}

func TestReceiverDecodesAndStamps(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{DelayMin: 3 * time.Millisecond, DelayMax: 3 * time.Millisecond})
	var got []Reception
	r := New(medium, Config{Name: "rx-1", Position: geo.Pt(0, 0), Radius: 100}, func(rc Reception) {
		got = append(got, rc)
	})
	r.Start()
	defer r.Stop()

	broadcastMsg(t, medium, geo.Pt(30, 40), wire.Message{Stream: wire.MustStreamID(5, 2), Seq: 9, Payload: []byte("p")})
	clock.RunAll()

	if len(got) != 1 {
		t.Fatalf("receptions = %d, want 1", len(got))
	}
	rc := got[0]
	if rc.Receiver != "rx-1" {
		t.Errorf("Receiver = %q", rc.Receiver)
	}
	if rc.Msg.Stream != wire.MustStreamID(5, 2) || rc.Msg.Seq != 9 {
		t.Errorf("message fields wrong: %+v", rc.Msg)
	}
	if want := epoch.Add(3 * time.Millisecond); !rc.At.Equal(want) {
		t.Errorf("At = %v, want %v", rc.At, want)
	}
	// Distance 50 of radius 100 → RSSI 0.5.
	if rc.RSSI < 0.49 || rc.RSSI > 0.51 {
		t.Errorf("RSSI = %v, want ≈0.5", rc.RSSI)
	}
}

func TestReceiverScreensCorruptFrames(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{CorruptProb: 1, Seed: 5})
	var got []Reception
	r := New(medium, Config{Name: "rx", Position: geo.Pt(0, 0), Radius: 100}, func(rc Reception) {
		got = append(got, rc)
	})
	r.Start()
	defer r.Stop()

	for i := 0; i < 20; i++ {
		broadcastMsg(t, medium, geo.Pt(1, 0), wire.Message{Stream: wire.MustStreamID(1, 0), Seq: wire.Seq(i)})
	}
	clock.RunAll()

	st := r.Stats()
	if st.FramesHeard != 20 {
		t.Fatalf("FramesHeard = %d, want 20", st.FramesHeard)
	}
	// Every frame had one flipped bit; Fletcher-16 catches bit flips except
	// (rarely) flips inside the checksum trailer that keep it consistent —
	// in practice all 20 here must be screened.
	if st.Corrupt != 20 || len(got) != 0 {
		t.Fatalf("Corrupt = %d, sunk = %d; want 20 screened", st.Corrupt, len(got))
	}
}

func TestReceiverRSSIMonotonicInDistance(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	var got []Reception
	r := New(medium, Config{Name: "rx", Position: geo.Pt(0, 0), Radius: 100}, func(rc Reception) {
		got = append(got, rc)
	})
	r.Start()
	defer r.Stop()

	for _, x := range []float64{10, 40, 70, 99} {
		broadcastMsg(t, medium, geo.Pt(x, 0), wire.Message{Stream: wire.MustStreamID(1, 0), Seq: 0})
		clock.RunAll()
	}
	if len(got) != 4 {
		t.Fatalf("receptions = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].RSSI >= got[i-1].RSSI {
			t.Fatalf("RSSI not monotonic: %v then %v", got[i-1].RSSI, got[i].RSSI)
		}
	}
	for _, rc := range got {
		if rc.RSSI <= 0 || rc.RSSI > 1 {
			t.Fatalf("RSSI out of range: %v", rc.RSSI)
		}
	}
}

// TestReceiverRSSITracksPosition: the RSSI proxy is derived from the
// squared distance the medium precomputes per delivery (Frame.DistSq).
// Repeated frames from one spot must agree exactly, and a moved
// transmitter must be reflected immediately (a stale distance would
// corrupt location inference).
func TestReceiverRSSITracksPosition(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	var got []Reception
	r := New(medium, Config{Name: "rx", Position: geo.Pt(0, 0), Radius: 100}, func(rc Reception) {
		got = append(got, rc)
	})
	r.Start()
	defer r.Stop()

	for seq := 0; seq < 3; seq++ { // static: repeated frames, one position
		broadcastMsg(t, medium, geo.Pt(30, 40), wire.Message{Stream: wire.MustStreamID(1, 0), Seq: wire.Seq(seq)})
		clock.RunAll()
	}
	broadcastMsg(t, medium, geo.Pt(60, 80), wire.Message{Stream: wire.MustStreamID(1, 0), Seq: 3}) // moved
	clock.RunAll()

	if len(got) != 4 {
		t.Fatalf("receptions = %d, want 4", len(got))
	}
	for i := 0; i < 3; i++ { // distance 50 of radius 100 → 0.5
		if rssi := got[i].RSSI; rssi < 0.49 || rssi > 0.51 {
			t.Fatalf("frame %d RSSI = %v, want ≈0.5", i, rssi)
		}
	}
	if rssi := got[3].RSSI; rssi > 0.01 { // distance 100 = zone edge → floor
		t.Fatalf("moved-transmitter RSSI = %v, want the 0.01 floor (cache must not serve the old position)", rssi)
	}
}

// TestReceiverBorrowedReception: receptions are flagged Borrowed and the
// payload is intact for the duration of the sink call — the receiver
// releases the frame buffer only after the sink returns.
func TestReceiverBorrowedReception(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	var payloads []string
	var borrowed []bool
	r := New(medium, Config{Name: "rx", Position: geo.Pt(0, 0), Radius: 100}, func(rc Reception) {
		payloads = append(payloads, string(rc.Msg.Payload)) // copy while valid
		borrowed = append(borrowed, rc.Borrowed)
	})
	r.Start()
	defer r.Stop()

	for seq := 0; seq < 8; seq++ {
		broadcastMsg(t, medium, geo.Pt(1, 0), wire.Message{
			Stream: wire.MustStreamID(1, 0), Seq: wire.Seq(seq),
			Payload: []byte{byte('a' + seq)},
		})
		clock.RunAll() // delivery recycles pooled buffers between frames
	}
	if len(payloads) != 8 {
		t.Fatalf("receptions = %d, want 8", len(payloads))
	}
	for i, p := range payloads {
		if want := string(byte('a' + i)); p != want {
			t.Fatalf("frame %d payload = %q, want %q (pooled buffer corrupted)", i, p, want)
		}
		if !borrowed[i] {
			t.Fatalf("frame %d not marked Borrowed", i)
		}
	}
}

func TestReceiverOutOfZoneHearsNothing(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	var got []Reception
	r := New(medium, Config{Name: "rx", Position: geo.Pt(0, 0), Radius: 50}, func(rc Reception) {
		got = append(got, rc)
	})
	r.Start()
	defer r.Stop()
	broadcastMsg(t, medium, geo.Pt(60, 0), wire.Message{Stream: wire.MustStreamID(1, 0)})
	clock.RunAll()
	if len(got) != 0 {
		t.Fatal("receiver heard a transmission outside its zone")
	}
}

func TestReceiverStartStopIdempotent(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	r := New(medium, Config{Name: "rx", Position: geo.Pt(0, 0), Radius: 50}, func(Reception) {})
	r.Start()
	r.Start()
	if medium.Listeners(radio.BandUplink) != 1 {
		t.Fatal("double Start attached twice")
	}
	r.Stop()
	r.Stop()
	if medium.Listeners(radio.BandUplink) != 0 {
		t.Fatal("Stop did not detach")
	}
}

func TestReceiverDefaultName(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	r := New(medium, Config{Position: geo.Pt(1, 2), Radius: 10}, func(Reception) {})
	if r.Name() == "" {
		t.Fatal("empty default name")
	}
}

func TestReceiverValidation(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	t.Run("nil sink", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		New(medium, Config{Radius: 1}, nil)
	})
	t.Run("bad radius", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		New(medium, Config{Radius: 0}, func(Reception) {})
	})
}

func TestReceiverAccessors(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	r := New(medium, Config{Name: "n", Position: geo.Pt(1, 2), Radius: 10}, func(Reception) {})
	if r.Name() != "n" || r.Position() != geo.Pt(1, 2) || r.Radius() != 10 {
		t.Fatal("accessors wrong")
	}
}

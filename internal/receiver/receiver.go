// Package receiver implements the fixed-network receiver array of §4.2:
// receivers “are arranged such that their effective receiving areas may
// overlap. Such coverage improves data reception but causes potential
// duplication of data messages.”
//
// Each Receiver owns a reception zone on the uplink band, screens frames
// through the wire checksum, stamps every surviving message with a
// reception record — receiver identity, a received-signal-strength proxy
// and the reception time — and hands it to its sink (the Filtering
// Service, with a copy of the reception metadata feeding the Location
// Service).
package receiver

import (
	"fmt"
	"time"

	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Reception is one decoded data message together with the reception
// metadata the rest of the fixed network relies on. The transmit position
// itself is deliberately absent: the middleware only ever sees receiver
// identity and signal strength, from which location must be inferred (§5
// “inferred location data”).
type Reception struct {
	Msg      wire.Message
	Receiver string    // name of the receiver that heard this copy
	RSSI     float64   // signal-strength proxy in (0, 1]; larger = closer
	At       time.Time // reception time at the fixed network
}

// Config configures a Receiver.
type Config struct {
	Name     string
	Position geo.Point
	Radius   float64 // reception zone radius, metres
}

// Stats is a snapshot of one receiver's counters.
type Stats struct {
	FramesHeard int64 // raw frames delivered by the medium
	Corrupt     int64 // frames failing decode or checksum
	Decoded     int64 // receptions passed to the sink
}

// Receiver is one element of the receiver array.
type Receiver struct {
	cfg    Config
	medium *radio.Medium
	sink   func(Reception)
	detach func()

	heard   metrics.Counter
	corrupt metrics.Counter
	decoded metrics.Counter
}

// New creates a stopped Receiver delivering to sink. New panics on a nil
// sink or a non-positive radius (programming errors).
func New(medium *radio.Medium, cfg Config, sink func(Reception)) *Receiver {
	if sink == nil {
		panic("receiver: nil sink")
	}
	if cfg.Radius <= 0 {
		panic("receiver: radius must be positive")
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("rx@%s", cfg.Position)
	}
	return &Receiver{cfg: cfg, medium: medium, sink: sink}
}

// Name returns the receiver's name.
func (r *Receiver) Name() string { return r.cfg.Name }

// Position returns the receiver's fixed position.
func (r *Receiver) Position() geo.Point { return r.cfg.Position }

// Radius returns the reception zone radius.
func (r *Receiver) Radius() float64 { return r.cfg.Radius }

// Start attaches the receiver to the medium. Idempotent.
func (r *Receiver) Start() {
	if r.detach != nil {
		return
	}
	r.detach = r.medium.Attach(radio.BandUplink, &radio.Listener{
		Name:     r.cfg.Name,
		Position: func() geo.Point { return r.cfg.Position },
		Radius:   r.cfg.Radius,
		Deliver:  r.onFrame,
	})
}

// Stop detaches the receiver. Idempotent.
func (r *Receiver) Stop() {
	if r.detach != nil {
		r.detach()
		r.detach = nil
	}
}

func (r *Receiver) onFrame(f radio.Frame) {
	r.heard.Inc()
	msg, _, err := wire.DecodeMessage(f.Data)
	if err != nil {
		r.corrupt.Inc()
		return
	}
	r.decoded.Inc()
	r.sink(Reception{
		Msg:      msg,
		Receiver: r.cfg.Name,
		RSSI:     r.rssi(f.From),
		At:       f.At,
	})
}

// rssi converts transmitter distance into the signal-strength proxy: 1 at
// the receiver itself falling linearly to a small floor at the zone edge.
// A real deployment would read this from the radio hardware; the linear
// proxy preserves the only property the location service needs, namely
// that strength decreases monotonically with distance.
func (r *Receiver) rssi(from geo.Point) float64 {
	const floor = 0.01
	d := r.cfg.Position.Dist(from)
	if d >= r.cfg.Radius {
		return floor
	}
	v := 1 - d/r.cfg.Radius
	if v < floor {
		return floor
	}
	return v
}

// Stats returns a snapshot of the receiver's counters.
func (r *Receiver) Stats() Stats {
	return Stats{
		FramesHeard: r.heard.Value(),
		Corrupt:     r.corrupt.Value(),
		Decoded:     r.decoded.Value(),
	}
}

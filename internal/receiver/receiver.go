// Package receiver implements the fixed-network receiver array of §4.2:
// receivers “are arranged such that their effective receiving areas may
// overlap. Such coverage improves data reception but causes potential
// duplication of data messages.”
//
// Each Receiver owns a reception zone on the uplink band, screens frames
// through the wire checksum, stamps every surviving message with a
// reception record — receiver identity, a received-signal-strength proxy
// and the reception time — and hands it to its sink (the Filtering
// Service, with a copy of the reception metadata feeding the Location
// Service).
package receiver

import (
	"fmt"
	"math"
	"time"

	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/intern"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Reception is one decoded data message together with the reception
// metadata the rest of the fixed network relies on. The transmit position
// itself is deliberately absent: the middleware only ever sees receiver
// identity and signal strength, from which location must be inferred (§5
// “inferred location data”).
type Reception struct {
	Msg      wire.Message
	Receiver string    // name of the receiver that heard this copy
	RSSI     float64   // signal-strength proxy in (0, 1]; larger = closer
	At       time.Time // reception time at the fixed network
	// Borrowed marks a zero-copy reception: Msg.Payload aliases the radio
	// frame buffer and is only valid for the duration of the sink call.
	// A sink that keeps the message past its return must detach the
	// payload with a copy first (the Filtering Service does this for
	// accepted receptions; dropped duplicates are never copied).
	Borrowed bool
}

// Config configures a Receiver.
type Config struct {
	Name     string
	Position geo.Point
	Radius   float64 // reception zone radius, metres
}

// Stats is a snapshot of one receiver's counters.
type Stats struct {
	FramesHeard int64 // raw frames delivered by the medium
	Corrupt     int64 // frames failing decode or checksum
	Decoded     int64 // receptions passed to the sink
}

// Receiver is one element of the receiver array.
type Receiver struct {
	cfg    Config
	medium *radio.Medium
	sink   func(Reception)
	detach func()

	heard   metrics.Counter
	corrupt metrics.Counter
	decoded metrics.Counter
}

// New creates a stopped Receiver delivering to sink. New panics on a nil
// sink or a non-positive radius (programming errors).
func New(medium *radio.Medium, cfg Config, sink func(Reception)) *Receiver {
	if sink == nil {
		panic("receiver: nil sink")
	}
	if cfg.Radius <= 0 {
		panic("receiver: radius must be positive")
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("rx@%s", cfg.Position)
	}
	// Every Reception this receiver stamps carries cfg.Name, and the
	// store retains those deliveries by the million. Interning here makes
	// the canonical backing the one the codec's decode path also resolves
	// to, so receiver identity costs its bytes once per deployment.
	cfg.Name = intern.String(cfg.Name)
	return &Receiver{cfg: cfg, medium: medium, sink: sink}
}

// Name returns the receiver's name.
func (r *Receiver) Name() string { return r.cfg.Name }

// Position returns the receiver's fixed position.
func (r *Receiver) Position() geo.Point { return r.cfg.Position }

// Radius returns the reception zone radius.
func (r *Receiver) Radius() float64 { return r.cfg.Radius }

// Start attaches the receiver to the medium. Idempotent.
func (r *Receiver) Start() {
	if r.detach != nil {
		return
	}
	r.detach = r.medium.Attach(radio.BandUplink, &radio.Listener{
		Name:     r.cfg.Name,
		Position: func() geo.Point { return r.cfg.Position },
		Radius:   r.cfg.Radius,
		Deliver:  r.onFrame,
		// Receivers are fixed infrastructure: the medium indexes the
		// reception zone once and never position-checks it again, so a
		// dense array costs a broadcast only the receivers it reaches.
		Static: true,
	})
}

// Stop detaches the receiver. Idempotent.
func (r *Receiver) Stop() {
	if r.detach != nil {
		r.detach()
		r.detach = nil
	}
}

func (r *Receiver) onFrame(f radio.Frame) {
	r.heard.Inc()
	// Borrow-mode decode: the payload aliases the frame buffer, so a
	// duplicate that the filter drops is screened out without a single
	// payload copy. The filter detaches the payload of accepted
	// receptions before Ingest returns, which keeps the Release below —
	// returning the leased buffer to the radio pool — sound.
	var msg wire.Message
	if _, err := wire.DecodeMessageBorrowed(f.Data, &msg); err != nil {
		r.corrupt.Inc()
		f.Release()
		return
	}
	r.decoded.Inc()
	d2 := f.DistSq
	if d2 == 0 && f.From != r.cfg.Position {
		// Hand-built frame without the medium's precomputed distance.
		d2 = r.cfg.Position.DistSq(f.From)
	}
	r.sink(Reception{
		Msg:      msg,
		Receiver: r.cfg.Name,
		RSSI:     r.rssi(d2),
		At:       f.At,
		Borrowed: true,
	})
	f.Release()
}

// rssi converts squared transmitter distance into the signal-strength
// proxy: 1 at the receiver itself falling linearly to a small floor at
// the zone edge. A real deployment would read this from the radio
// hardware; the linear proxy preserves the only property the location
// service needs, namely that strength decreases monotonically with
// distance.
//
// The frame's squared distance — computed once by the medium for its
// range check and carried on the frame — gates the square root behind a
// cheap squared compare, so no per-frame distance recomputation happens
// here for any transmitter, static or mobile.
func (r *Receiver) rssi(d2 float64) float64 {
	const floor = 0.01
	if d2 >= r.cfg.Radius*r.cfg.Radius {
		return floor
	}
	v := 1 - math.Sqrt(d2)/r.cfg.Radius
	if v < floor {
		return floor
	}
	return v
}

// Stats returns a snapshot of the receiver's counters.
func (r *Receiver) Stats() Stats {
	return Stats{
		FramesHeard: r.heard.Value(),
		Corrupt:     r.corrupt.Value(),
		Decoded:     r.decoded.Value(),
	}
}

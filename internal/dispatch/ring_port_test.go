package dispatch

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/store"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// scriptOp is one step of a generated differential-test script, applied
// identically to the ring-backed and mutex-backed dispatchers.
type scriptOp struct {
	kind     int // 0 publish, 1 subscribe-with-replay, 2 unsubscribe churn
	stream   int // publish: which stream
	storeSeq uint64
}

const (
	opPublish = iota
	opReplaySub
	opChurnUnsub
)

// genScript builds a randomized op sequence: a heavy publish stream over
// two streams with up to two mid-stream catch-up subscriptions (gate
// open/close against a ring that already holds deliveries) and a
// mid-stream unsubscribe (port close against a non-empty ring).
func genScript(rng *rand.Rand, ops int) []scriptOp {
	var script []scriptOp
	var nextSeq uint64
	gates := 0
	churned := false
	for i := 0; i < ops; i++ {
		r := rng.Intn(100)
		switch {
		case r < 3 && gates < 2 && i > ops/4:
			gates++
			script = append(script, scriptOp{kind: opReplaySub})
		case r < 5 && !churned && i > ops/2:
			churned = true
			script = append(script, scriptOp{kind: opChurnUnsub})
		default:
			nextSeq++
			script = append(script, scriptOp{
				kind:     opPublish,
				stream:   rng.Intn(2),
				storeSeq: nextSeq,
			})
		}
	}
	return script
}

// scriptOutcome is everything observable after one script run.
type scriptOutcome struct {
	consumers map[string][]uint64
	dropped   int64
	droppedBy map[string]int64
	delivered int64
}

// runScript applies a script to one freshly built async dispatcher. The
// dispatcher is NOT started until the script completes, so every
// overflow and gate decision happens under a deterministic serial
// schedule — the drainers then deliver the accumulated queues in FIFO
// order and Stop waits them out. The ring and mutex variants therefore
// must produce byte-identical outcomes.
func runScript(t *testing.T, script []scriptOp, overflow OverflowPolicy, forceLocked bool) scriptOutcome {
	t.Helper()
	streams := []wire.StreamID{wire.MustStreamID(1, 0), wire.MustStreamID(2, 0)}
	d := New(Options{
		Mode:             ModeAsync,
		QueueCapacity:    4, // tiny: overflow constantly
		Overflow:         overflow,
		ForceLockedQueue: forceLocked,
	})

	recs := map[string]*seqRecorder{}
	sub := func(name string, pattern Pattern) *seqRecorder {
		rec := &seqRecorder{}
		recs[name] = rec
		if _, err := d.Subscribe(&ConsumerFunc{ConsumerName: name, Fn: rec.Consume}, pattern); err != nil {
			t.Fatal(err)
		}
		return rec
	}
	sub("standing", BySensor(1))
	sub("both", BySensor(2))
	var churnID SubscriptionID
	{
		rec := &seqRecorder{}
		recs["churn"] = rec
		var err error
		churnID, err = d.Subscribe(&ConsumerFunc{ConsumerName: "churn", Fn: rec.Consume}, Exact(streams[0]))
		if err != nil {
			t.Fatal(err)
		}
	}

	// published[s] mirrors the store tee: what a replay fetch would
	// return for stream s at this point of the script.
	published := make([][]filtering.Delivery, 2)
	lateN := 0
	for _, op := range script {
		switch op.kind {
		case opPublish:
			del := filtering.Delivery{
				Msg:      wire.Message{Stream: streams[op.stream], Seq: wire.Seq(op.storeSeq)},
				At:       epoch,
				StoreSeq: op.storeSeq,
			}
			published[op.stream] = append(published[op.stream], del)
			d.Dispatch(del)
		case opReplaySub:
			lateN++
			name := fmt.Sprintf("late%d", lateN)
			rec := &seqRecorder{}
			recs[name] = rec
			backlog := append([]filtering.Delivery(nil), published[0]...)
			_, _, err := d.SubscribeWithReplay(
				&ConsumerFunc{ConsumerName: name, Fn: rec.Consume},
				streams[0],
				func() []filtering.Delivery { return backlog },
			)
			if err != nil {
				t.Fatal(err)
			}
		case opChurnUnsub:
			d.Unsubscribe(churnID)
		}
	}

	d.Start()
	d.Stop()

	st := d.Stats()
	out := scriptOutcome{
		consumers: map[string][]uint64{},
		dropped:   st.Dropped,
		droppedBy: st.DroppedByConsumer,
		delivered: st.Delivered,
	}
	for name, rec := range recs {
		out.consumers[name] = rec.snapshot()
	}
	return out
}

// TestRingMutexPortEquivalenceProperty is the differential property test
// behind the lock-free port: under randomized publisher interleavings,
// both overflow policies, catch-up gates opening and closing mid-stream
// and a port closing with deliveries in flight, the ring-backed port and
// the retained mutex-queue port must produce identical delivery
// sequences per consumer, identical Delivered/Dropped totals and
// identical DroppedByConsumer accounting. Run under -race in CI.
func TestRingMutexPortEquivalenceProperty(t *testing.T) {
	for _, overflow := range []OverflowPolicy{DropOldest, DropNewest} {
		for seed := int64(0); seed < 12; seed++ {
			script := genScript(rand.New(rand.NewSource(seed)), 400)
			ringOut := runScript(t, script, overflow, false)
			lockOut := runScript(t, script, overflow, true)
			if !reflect.DeepEqual(ringOut, lockOut) {
				t.Fatalf("overflow=%v seed=%d: ring and mutex ports diverged\nring: %+v\nmutex: %+v",
					overflow, seed, ringOut, lockOut)
			}
			// The script publishes, so the outcome must not be trivially
			// empty for the property to mean anything.
			if ringOut.delivered == 0 {
				t.Fatalf("overflow=%v seed=%d: degenerate script delivered nothing", overflow, seed)
			}
		}
	}
}

// TestGateRingHandoffStress storms the locked↔lock-free transition: a
// publisher keeps dispatching (with a store tee) while consumers join
// via SubscribeWithReplay — each join forces its fresh ring-mode port
// into the locked path mid-flight — and leave via Unsubscribe, closing
// ports with deliveries still in the ring. Each joiner must observe a
// strictly ascending, duplicate-free, gap-free prefix of the stream
// starting at its replay start: a duplicate means the floor failed
// across the handoff, an inversion means ring and queue reordered, and
// a gap means a delivery was lost in the transition (the queue is sized
// so overflow cannot drop). Run under -race in CI.
func TestGateRingHandoffStress(t *testing.T) {
	const total = 6000
	const joiners = 40

	st := store.New(store.Options{MaxMessages: total + 16})
	d := New(Options{Mode: ModeAsync, QueueCapacity: total + 16})
	d.Start()
	defer d.Stop()
	stream := wire.MustStreamID(3, 0)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for seq := 0; seq < total; seq++ {
			del := filtering.Delivery{
				Msg: wire.Message{Stream: stream, Seq: wire.Seq(seq)},
				At:  epoch,
			}
			del.StoreSeq = st.Append(del)
			d.Dispatch(del)
		}
	}()

	recs := make([]*seqRecorder, joiners)
	for j := 0; j < joiners; j++ {
		rec := &seqRecorder{}
		recs[j] = rec
		from, _ := st.FirstSeq(stream)
		id, _, err := d.SubscribeWithReplay(
			&ConsumerFunc{ConsumerName: fmt.Sprintf("joiner%d", j), Fn: rec.Consume},
			stream,
			func() []filtering.Delivery { return st.Range(stream, from, ^uint64(0)) },
		)
		if err != nil {
			t.Fatal(err)
		}
		// Let some live deliveries flow through the post-gate port, then
		// leave, closing the port with traffic still arriving.
		if j%2 == 1 {
			d.Unsubscribe(id)
		}
	}
	<-done
	d.Stop()

	for j, rec := range recs {
		seqs := rec.snapshot()
		if len(seqs) == 0 {
			// A joiner that unsubscribed immediately can race its own
			// replay and legitimately see nothing; one that stayed until
			// Stop must have seen the stream.
			if j%2 == 0 {
				t.Fatalf("joiner %d saw nothing", j)
			}
			continue
		}
		for i := 1; i < len(seqs); i++ {
			switch {
			case seqs[i] == seqs[i-1]:
				t.Fatalf("joiner %d: duplicate delivery of %d", j, seqs[i])
			case seqs[i] < seqs[i-1]:
				t.Fatalf("joiner %d: inversion %d after %d", j, seqs[i], seqs[i-1])
			case seqs[i] != seqs[i-1]+1:
				t.Fatalf("joiner %d: lost deliveries between %d and %d", j, seqs[i-1], seqs[i])
			}
		}
	}
}

// TestRingPortEnqueueDrainZeroAllocs pins the acceptance bar for the
// async hot path: once the port is warm, enqueue→drain allocates
// nothing — on the lock-free ring and on the locked fallback alike.
func TestRingPortEnqueueDrainZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name     string
		lockFree bool
	}{
		{"ring", true},
		{"locked", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var dropped, selfDrop metrics.Counter
			sink := &BatchConsumerFunc{ConsumerName: "sink", Fn: func([]filtering.Delivery) {}}
			p := newPort(sink, 1024, 32, DropOldest, tc.lockFree, &dropped, &selfDrop)
			go p.run()
			d := del(wire.MustStreamID(1, 0), 0)
			// AllocsPerRun's measurement window includes the concurrent
			// drainer goroutine, so this enforces zero allocations across
			// the whole enqueue→drain path, not just the producer side.
			allocs := testing.AllocsPerRun(5000, func() { p.enqueue(d) })
			p.close()
			if allocs != 0 {
				t.Fatalf("%s enqueue→drain: %.2f allocs/op, want 0", tc.name, allocs)
			}
		})
	}
}

package dispatch

import (
	"sync"

	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// shard is one partition of the subscription table. Exact and by-sensor
// subscriptions are shard-local: the partition key is the sensor component
// of the StreamID, so every stream of a sensor — and therefore every
// subscription that can match it by id — lands in the same shard, and a
// Dispatch call takes exactly one shard lock. Wildcard (All/Where)
// subscriptions live in the dispatcher's shared read-mostly index instead.
//
// Stream advertising state (StreamInfo) is kept per shard too, so the
// discovery bookkeeping on the hot path never touches a global lock.
type shard struct {
	mu      sync.Mutex
	exact   map[wire.StreamID]map[SubscriptionID]*subscription
	sensor  map[wire.SensorID]map[SubscriptionID]*subscription
	streams map[wire.StreamID]*StreamInfo

	// Hot-path counters are shard-local so concurrent publishes on
	// different shards never bounce a shared counter cache line; Stats
	// sums them. Each shard is its own heap allocation, so counters of
	// different shards live on different cache lines.
	dispatched metrics.Counter
	delivered  metrics.Counter
	orphaned   metrics.Counter
}

func newShards(n int) []*shard {
	shards := make([]*shard, n)
	for i := range shards {
		shards[i] = &shard{
			exact:   make(map[wire.StreamID]map[SubscriptionID]*subscription),
			sensor:  make(map[wire.SensorID]map[SubscriptionID]*subscription),
			streams: make(map[wire.StreamID]*StreamInfo),
		}
	}
	return shards
}

// The partition function lives on wire.SensorID (SensorID.Shard) so the
// Filtering Service shards on the identical key and a stream contends on
// at most one ingest lock and one dispatch lock end to end.

// addExactLocked inserts sub into the shard's exact index.
func (s *shard) addExactLocked(sub *subscription) {
	m := s.exact[sub.pattern.Stream]
	if m == nil {
		m = make(map[SubscriptionID]*subscription)
		s.exact[sub.pattern.Stream] = m
	}
	m[sub.id] = sub
}

// addSensorLocked inserts sub into the shard's by-sensor index.
func (s *shard) addSensorLocked(sub *subscription) {
	m := s.sensor[sub.pattern.Sensor]
	if m == nil {
		m = make(map[SubscriptionID]*subscription)
		s.sensor[sub.pattern.Sensor] = m
	}
	m[sub.id] = sub
}

// removeLocked deletes sub from whichever shard index holds it.
func (s *shard) removeLocked(sub *subscription) {
	switch sub.pattern.Kind {
	case KindExact:
		delete(s.exact[sub.pattern.Stream], sub.id)
		if len(s.exact[sub.pattern.Stream]) == 0 {
			delete(s.exact, sub.pattern.Stream)
		}
	case KindSensor:
		delete(s.sensor[sub.pattern.Sensor], sub.id)
		if len(s.sensor[sub.pattern.Sensor]) == 0 {
			delete(s.sensor, sub.pattern.Sensor)
		}
	}
}

package dispatch

import (
	"sync"
	"unsafe"

	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// shard is one partition of the subscription table. Exact and by-sensor
// subscriptions are shard-local: the partition key is the sensor component
// of the StreamID, so every stream of a sensor — and therefore every
// subscription that can match it by id — lands in the same shard, and a
// Dispatch call takes exactly one shard lock. Wildcard (All/Where)
// subscriptions live in the dispatcher's shared read-mostly index instead.
//
// Stream advertising state (StreamInfo) is kept per shard too, so the
// discovery bookkeeping on the hot path never touches a global lock.
type shard struct {
	mu      sync.Mutex
	exact   map[wire.StreamID]map[SubscriptionID]*subscription
	sensor  map[wire.SensorID]map[SubscriptionID]*subscription
	streams map[wire.StreamID]*StreamInfo

	// Hot-path counters are shard-local so concurrent publishes on
	// different shards never bounce a shared counter cache line; Stats
	// sums them. The backing array pads each shard to whole cache lines
	// (paddedShard), so one shard's mutex and counters never share a
	// line with a neighbour's.
	dispatched metrics.Counter
	delivered  metrics.Counter
	orphaned   metrics.Counter
}

// paddedShard rounds a shard up to a whole number of cache lines while
// keeping at least 8 bytes of trailing padding. The shard table is one
// contiguous backing array; without the padding, adjacent shards'
// mutexes and hot counters can straddle one line and concurrent
// publishes on different shards would ping-pong it anyway. The ≥8-byte
// tail matters because the runtime prepends an 8-byte allocation header
// to pointer-bearing heap objects, shifting the array base to 8 mod
// CacheLine: each boundary line then holds one shard's dead tail
// padding plus the next shard's head, so live fields of two shards
// still never share a line.
type paddedShard struct {
	shard
	_ [(unsafe.Sizeof(shard{})+metrics.CacheLine+7)/metrics.CacheLine*metrics.CacheLine - unsafe.Sizeof(shard{})]byte
}

// newShards builds the shard table as one contiguous padded array.
func newShards(n int) []*shard {
	backing := make([]paddedShard, n)
	shards := make([]*shard, n)
	for i := range shards {
		sh := &backing[i].shard
		sh.exact = make(map[wire.StreamID]map[SubscriptionID]*subscription)
		sh.sensor = make(map[wire.SensorID]map[SubscriptionID]*subscription)
		sh.streams = make(map[wire.StreamID]*StreamInfo)
		shards[i] = sh
	}
	return shards
}

// The partition function lives on wire.SensorID (SensorID.Shard) so the
// Filtering Service shards on the identical key and a stream contends on
// at most one ingest lock and one dispatch lock end to end.

// addExactLocked inserts sub into the shard's exact index.
func (s *shard) addExactLocked(sub *subscription) {
	m := s.exact[sub.pattern.Stream]
	if m == nil {
		m = make(map[SubscriptionID]*subscription)
		s.exact[sub.pattern.Stream] = m
	}
	m[sub.id] = sub
}

// addSensorLocked inserts sub into the shard's by-sensor index.
func (s *shard) addSensorLocked(sub *subscription) {
	m := s.sensor[sub.pattern.Sensor]
	if m == nil {
		m = make(map[SubscriptionID]*subscription)
		s.sensor[sub.pattern.Sensor] = m
	}
	m[sub.id] = sub
}

// removeLocked deletes sub from whichever shard index holds it.
func (s *shard) removeLocked(sub *subscription) {
	switch sub.pattern.Kind {
	case KindExact:
		delete(s.exact[sub.pattern.Stream], sub.id)
		if len(s.exact[sub.pattern.Stream]) == 0 {
			delete(s.exact, sub.pattern.Stream)
		}
	case KindSensor:
		delete(s.sensor[sub.pattern.Sensor], sub.id)
		if len(s.sensor[sub.pattern.Sensor]) == 0 {
			delete(s.sensor, sub.pattern.Sensor)
		}
	}
}

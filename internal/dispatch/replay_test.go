package dispatch

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/store"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// closeOnConsume records deliveries and closes its own port from inside
// the first Consume call, then diverts one more delivery into the gate —
// the shape of an Unsubscribe racing a sync held-batch flush.
type closeOnConsume struct {
	p      *port
	stream wire.StreamID
	rec    seqRecorder
	once   sync.Once
}

func (c *closeOnConsume) Name() string { return "close-on-consume" }
func (c *closeOnConsume) Consume(d filtering.Delivery) {
	c.rec.Consume(d)
	c.once.Do(func() {
		c.p.close()
		c.p.tryHold(filtering.Delivery{Msg: wire.Message{Stream: c.stream}, StoreSeq: 51})
	})
}

// seqRecorder records the StoreSeq of every delivery it consumes.
type seqRecorder struct {
	mu   sync.Mutex
	seqs []uint64
}

func (r *seqRecorder) Name() string { return "seq-recorder" }
func (r *seqRecorder) Consume(d filtering.Delivery) {
	r.mu.Lock()
	r.seqs = append(r.seqs, d.StoreSeq)
	r.mu.Unlock()
}
func (r *seqRecorder) snapshot() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.seqs...)
}

// TestSubscribeWithReplayOrderingUnderAsync is the regression test for
// the historical SubscribeWithBacklog race: in async mode the backlog was
// replayed via direct Consume while the port drainer concurrently
// delivered live messages, so replayed and live deliveries could
// interleave out of order. With the catch-up gate, every delivery the
// consumer sees must be in strictly ascending store-sequence order with
// no duplicates, no matter how the replay races live publishing. Run
// under -race in CI.
func TestSubscribeWithReplayOrderingUnderAsync(t *testing.T) {
	const backlog = 200
	const live = 2000

	st := store.New(store.Options{MaxMessages: backlog + live})
	d := New(Options{Mode: ModeAsync, QueueCapacity: backlog + live + 16})
	d.Start()
	stream := wire.MustStreamID(7, 0)

	publish := func(seq int) {
		del := filtering.Delivery{
			Msg: wire.Message{Stream: stream, Seq: wire.Seq(seq)},
			At:  time.Unix(int64(seq), 0),
		}
		del.StoreSeq = st.Append(del) // the core deployment's store tee
		d.Dispatch(del)
	}

	for seq := 0; seq < backlog; seq++ {
		publish(seq)
	}

	// Publisher keeps writing while the late joiner subscribes with
	// replay — the window where the old implementation interleaved.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for seq := backlog; seq < backlog+live; seq++ {
			publish(seq)
		}
	}()

	rec := &seqRecorder{}
	from, _ := st.FirstSeq(stream)
	_, replayed, err := d.SubscribeWithReplay(rec, stream, func() []filtering.Delivery {
		return st.Range(stream, from, ^uint64(0))
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed < backlog {
		t.Fatalf("replayed %d, want at least the %d-message backlog", replayed, backlog)
	}
	<-done
	d.Stop() // drains the port

	seqs := rec.snapshot()
	if len(seqs) == 0 {
		t.Fatal("consumer saw nothing")
	}
	seen := make(map[uint64]bool, len(seqs))
	for i, s := range seqs {
		if seen[s] {
			t.Fatalf("duplicate delivery of store seq %d (position %d)", s, i)
		}
		seen[s] = true
		if i > 0 && s <= seqs[i-1] {
			t.Fatalf("ordering inverted at position %d: %d after %d", i, s, seqs[i-1])
		}
	}
	// Nothing was lost either: the queue was sized for the whole run, so
	// the consumer must have seen every message exactly once.
	if len(seqs) != backlog+live {
		t.Fatalf("consumer saw %d messages, want %d", len(seqs), backlog+live)
	}
}

// TestSubscribeWithReplaySyncMode pins the synchronous path: replay goes
// ahead of live, the held live deliveries flush behind it, and later
// dispatches reach the consumer directly.
func TestSubscribeWithReplaySyncMode(t *testing.T) {
	st := store.New(store.Options{})
	d := New(Options{})
	stream := wire.MustStreamID(3, 1)
	for seq := 0; seq < 5; seq++ {
		del := filtering.Delivery{Msg: wire.Message{Stream: stream, Seq: wire.Seq(seq)}}
		del.StoreSeq = st.Append(del)
	}
	rec := &seqRecorder{}
	_, replayed, err := d.SubscribeWithReplay(rec, stream, func() []filtering.Delivery {
		return st.Range(stream, 0, ^uint64(0))
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 5 {
		t.Fatalf("replayed = %d, want 5", replayed)
	}
	del := filtering.Delivery{Msg: wire.Message{Stream: stream, Seq: 5}}
	del.StoreSeq = st.Append(del)
	d.Dispatch(del)
	seqs := rec.snapshot()
	if len(seqs) != 6 {
		t.Fatalf("saw %d deliveries, want 6", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("ordering broken: %v", seqs)
		}
	}
}

// TestSubscribeWithReplayDedupesClaimBoundary pins the seq dedupe: a live
// delivery that raced into the gate but was already part of the replay
// batch is dropped, not delivered twice.
func TestSubscribeWithReplayDedupesClaimBoundary(t *testing.T) {
	st := store.New(store.Options{})
	d := New(Options{Mode: ModeAsync, QueueCapacity: 64})
	d.Start()
	stream := wire.MustStreamID(9, 0)
	var inFlight filtering.Delivery
	for seq := 0; seq < 3; seq++ {
		del := filtering.Delivery{Msg: wire.Message{Stream: stream, Seq: wire.Seq(seq)}}
		del.StoreSeq = st.Append(del)
		inFlight = del
	}
	rec := &seqRecorder{}
	_, _, err := d.SubscribeWithReplay(rec, stream, func() []filtering.Delivery {
		// While the fetch is running the in-flight copy of the newest
		// stored message arrives at the gate — the exact claim-boundary
		// race the dedupe exists for.
		d.Dispatch(inFlight)
		return st.Range(stream, 0, ^uint64(0))
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Stop()
	seqs := rec.snapshot()
	if len(seqs) != 3 {
		t.Fatalf("saw %v, want exactly the 3 stored messages once each", seqs)
	}
}

// TestReplayFloorScreensPostGateDuplicates pins the tail of the
// claim-boundary race: a delivery teed into the store before the replay
// fetch but dispatched only after the catch-up gate closed (publisher
// preempted between store append and Dispatch) must be screened out by
// the port's replay floor, in both delivery modes — it was already part
// of the replay batch.
func TestReplayFloorScreensPostGateDuplicates(t *testing.T) {
	for _, mode := range []Mode{ModeSync, ModeAsync} {
		st := store.New(store.Options{})
		d := New(Options{Mode: mode, QueueCapacity: 64})
		d.Start()
		stream := wire.MustStreamID(4, 0)
		var inFlight filtering.Delivery
		for seq := 0; seq < 3; seq++ {
			del := filtering.Delivery{Msg: wire.Message{Stream: stream, Seq: wire.Seq(seq)}}
			del.StoreSeq = st.Append(del)
			inFlight = del // appended, not yet dispatched
		}
		rec := &seqRecorder{}
		if _, _, err := d.SubscribeWithReplay(rec, stream, func() []filtering.Delivery {
			return st.Range(stream, 0, ^uint64(0))
		}); err != nil {
			t.Fatal(err)
		}
		// The gate is closed now; the stale in-flight copy arrives late.
		d.Dispatch(inFlight)
		// Fresh data still flows.
		fresh := filtering.Delivery{Msg: wire.Message{Stream: stream, Seq: 3}}
		fresh.StoreSeq = st.Append(fresh)
		d.Dispatch(fresh)
		d.Stop()
		seqs := rec.snapshot()
		if len(seqs) != 4 {
			t.Fatalf("mode %v: saw %v, want the 3 replayed + 1 fresh exactly once", mode, seqs)
		}
		for i := 1; i < len(seqs); i++ {
			if seqs[i] <= seqs[i-1] {
				t.Fatalf("mode %v: ordering broken: %v", mode, seqs)
			}
		}
	}
}

// TestReplayLargerThanQueueCapacity pins the catch-up burst behaviour: a
// replay batch bigger than the consumer's queue capacity must not evict
// itself while being placed — the ring grows for the burst and drains
// back under the bound.
func TestReplayLargerThanQueueCapacity(t *testing.T) {
	const retained = 100
	st := store.New(store.Options{MaxMessages: retained})
	d := New(Options{Mode: ModeAsync, QueueCapacity: 8})
	d.Start()
	stream := wire.MustStreamID(5, 0)
	for seq := 0; seq < retained; seq++ {
		del := filtering.Delivery{Msg: wire.Message{Stream: stream, Seq: wire.Seq(seq)}}
		del.StoreSeq = st.Append(del)
	}
	rec := &seqRecorder{}
	_, replayed, err := d.SubscribeWithReplay(rec, stream, func() []filtering.Delivery {
		return st.Range(stream, 0, ^uint64(0))
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed != retained {
		t.Fatalf("replayed = %d, want %d", replayed, retained)
	}
	d.Stop()
	if seqs := rec.snapshot(); len(seqs) != retained {
		t.Fatalf("consumer saw %d of %d replayed messages (batch evicted itself)", len(seqs), retained)
	}
	if dropped := d.Stats().Dropped; dropped != 0 {
		t.Fatalf("catch-up burst recorded %d drops", dropped)
	}
}

// TestNestedCatchUpGatesDoNotFlushEarly reproduces the overlapping
// catch-up bug: with two SubscribeWithReplay calls on the same consumer
// in flight (gateCount 2), the first endGate must NOT flush the held
// backlog — a live delivery for the second stream would otherwise go out
// before that stream's replay batch, then be re-delivered by it.
func TestNestedCatchUpGatesDoNotFlushEarly(t *testing.T) {
	for _, mode := range []Mode{ModeSync, ModeAsync} {
		st := store.New(store.Options{})
		d := New(Options{Mode: mode, QueueCapacity: 64})
		d.Start()
		a, b := wire.MustStreamID(1, 0), wire.MustStreamID(2, 0)
		app := func(stream wire.StreamID, seq int) filtering.Delivery {
			del := filtering.Delivery{Msg: wire.Message{Stream: stream, Seq: wire.Seq(seq)}}
			del.StoreSeq = st.Append(del)
			return del
		}
		for seq := 0; seq < 3; seq++ {
			app(a, seq)
		}
		// B starts at a different wire seq so its extended sequences are
		// disjoint from A's and the recorder can attribute them.
		var bLive filtering.Delivery
		for seq := 100; seq < 103; seq++ {
			bLive = app(b, seq)
		}
		rec := &seqRecorder{}
		// B's fetch races: a live copy of B's newest message arrives at
		// the gate, and a whole nested catch-up for A runs start to
		// finish, before B's replay batch is returned.
		if _, _, err := d.SubscribeWithReplay(rec, b, func() []filtering.Delivery {
			d.Dispatch(bLive)
			if _, _, err := d.SubscribeWithReplay(rec, a, func() []filtering.Delivery {
				return st.Range(a, 0, ^uint64(0))
			}); err != nil {
				t.Fatal(err)
			}
			return st.Range(b, 0, ^uint64(0))
		}); err != nil {
			t.Fatal(err)
		}
		d.Stop()
		seqs := rec.snapshot()
		if len(seqs) != 6 {
			t.Fatalf("mode %v: saw %v, want each of the 6 stored messages exactly once", mode, seqs)
		}
		perStream := map[uint64]bool{}
		var lastA, lastB uint64
		for _, s := range seqs {
			if perStream[s] {
				t.Fatalf("mode %v: duplicate %d in %v", mode, s, seqs)
			}
			perStream[s] = true
		}
		// Per-stream order must be ascending (streams may interleave).
		stA, _ := st.FirstSeq(a)
		for _, s := range seqs {
			if s >= stA && s < stA+3 {
				if s <= lastA && lastA != 0 {
					t.Fatalf("mode %v: stream A inverted in %v", mode, seqs)
				}
				lastA = s
			} else {
				if s <= lastB && lastB != 0 {
					t.Fatalf("mode %v: stream B inverted in %v", mode, seqs)
				}
				lastB = s
			}
		}
	}
}

// TestReplayFloorPassesGapFills pins the hole-aware floor: a sequence
// missing from the replay batch (lost on the radio at fetch time) that
// is later gap-recovered must reach the replay subscriber — it is new
// data, not a duplicate — while true duplicates of replayed history stay
// suppressed.
func TestReplayFloorPassesGapFills(t *testing.T) {
	for _, mode := range []Mode{ModeSync, ModeAsync} {
		st := store.New(store.Options{})
		d := New(Options{Mode: mode, QueueCapacity: 64})
		d.Start()
		stream := wire.MustStreamID(6, 0)
		var stale filtering.Delivery
		for _, seq := range []int{0, 1, 3, 4} { // 2 is lost for now
			del := filtering.Delivery{Msg: wire.Message{Stream: stream, Seq: wire.Seq(seq)}}
			del.StoreSeq = st.Append(del)
			stale = del
		}
		rec := &seqRecorder{}
		if _, replayed, err := d.SubscribeWithReplay(rec, stream, func() []filtering.Delivery {
			return st.Range(stream, 0, ^uint64(0))
		}); err != nil || replayed != 4 {
			t.Fatalf("mode %v: replayed %d err %v", mode, replayed, err)
		}
		// The lost copy of seq 2 finally arrives (filter gap recovery):
		// the store assigns it its original address inside the floor.
		fill := filtering.Delivery{Msg: wire.Message{Stream: stream, Seq: 2}}
		fill.StoreSeq = st.Append(fill)
		d.Dispatch(fill)
		// A stale duplicate of replayed history stays suppressed.
		d.Dispatch(stale)
		d.Stop()
		seqs := rec.snapshot()
		if len(seqs) != 5 {
			t.Fatalf("mode %v: saw %v, want 4 replayed + the gap fill", mode, seqs)
		}
		if got := seqs[4]; got != fill.StoreSeq {
			t.Fatalf("mode %v: last delivery %d, want the gap fill %d", mode, got, fill.StoreSeq)
		}
	}
}

// TestEndGateOnClosedPortSync is the deterministic white-box regression
// for the sync-mode close race: endGate used to deliver the replay batch
// and flush the held backlog through Consume without checking closed, so
// a consumer whose last subscription was removed mid catch-up could keep
// receiving deliveries after Unsubscribe returned. A closed port's
// endGate must deliver nothing, account every suppressed delivery as a
// drop, and still release the gate.
func TestEndGateOnClosedPortSync(t *testing.T) {
	var dropped, selfDrop metrics.Counter
	rec := &seqRecorder{}
	p := newPort(rec, 8, 8, DropOldest, false, &dropped, &selfDrop)
	stream := wire.MustStreamID(5, 0)

	p.beginGate()
	p.held = append(p.held, filtering.Delivery{StoreSeq: 100})
	p.close() // accounts the one held delivery as a drop
	if got := dropped.Value(); got != 1 {
		t.Fatalf("drops after close: %d, want 1", got)
	}
	// A live delivery diverted by tryHold between close and endGate
	// (the gate is still open, so Dispatch still holds).
	if !p.tryHold(filtering.Delivery{Msg: wire.Message{Stream: stream}, StoreSeq: 101}) {
		t.Fatal("tryHold should divert while the gate is open")
	}

	replay := []filtering.Delivery{{StoreSeq: 1}, {StoreSeq: 2}, {StoreSeq: 3}}
	p.endGate(replay, stream, true, &shard{})

	if got := rec.snapshot(); len(got) != 0 {
		t.Fatalf("closed port consumed %v, want nothing", got)
	}
	// 1 held at close + 3 replay + 1 held after close.
	if got := dropped.Value(); got != 5 {
		t.Fatalf("drops: %d, want 5", got)
	}
	if got := selfDrop.Value(); got != 5 {
		t.Fatalf("self drops: %d, want 5", got)
	}
	p.mu.Lock()
	gateCount, gated, heldLen := p.gateCount, p.gated.Load(), len(p.held)
	p.mu.Unlock()
	if gateCount != 0 || gated || heldLen != 0 {
		t.Fatalf("gate not released: count=%d gated=%v held=%d", gateCount, gated, heldLen)
	}
}

// TestEndGateClosedMidFlushSync covers the second window: the port
// closes while a held batch is being consumed outside the lock, and new
// held deliveries accumulate; the next loop iteration must drop them
// instead of delivering.
func TestEndGateClosedMidFlushSync(t *testing.T) {
	var dropped, selfDrop metrics.Counter
	stream := wire.MustStreamID(5, 1)
	// The consumer closes its own port mid-flush, as if Unsubscribe ran
	// while the batch was being consumed, then one more live delivery
	// diverts into the still-open gate.
	closer := &closeOnConsume{stream: stream}
	p := newPort(closer, 8, 8, DropOldest, false, &dropped, &selfDrop)
	closer.p = p
	p.beginGate()
	p.held = append(p.held, filtering.Delivery{Msg: wire.Message{Stream: stream}, StoreSeq: 50})
	p.endGate(nil, stream, true, &shard{})
	seqs := closer.rec.snapshot()
	if len(seqs) != 1 || seqs[0] != 50 {
		t.Fatalf("flushed %v, want just the pre-close 50", seqs)
	}
	if got := dropped.Value(); got != 1 {
		t.Fatalf("drops: %d, want 1 (the post-close hold)", got)
	}
}

// TestSubscribeWithReplayRacesUnsubscribe drives the close race through
// the public API in both modes: Unsubscribe removes the catch-up
// subscription while fetch is still materialising the backlog, so the
// port is closed by the time endGate places the replay. The consumer
// must see nothing and the batch must be accounted as drops. Runs under
// -race in CI.
func TestSubscribeWithReplayRacesUnsubscribe(t *testing.T) {
	for _, mode := range []Mode{ModeSync, ModeAsync} {
		d := New(Options{Mode: mode, QueueCapacity: 64})
		d.Start()
		stream := wire.MustStreamID(9, 0)
		rec := &seqRecorder{}

		fetchStarted := make(chan struct{})
		unsubDone := make(chan struct{})
		go func() {
			<-fetchStarted
			// The catch-up subscription is registered before fetch runs
			// and is this dispatcher's first id.
			for !d.Unsubscribe(1) {
				runtime.Gosched()
			}
			close(unsubDone)
		}()
		backlog := []filtering.Delivery{
			{Msg: wire.Message{Stream: stream, Seq: 1}, StoreSeq: 65537},
			{Msg: wire.Message{Stream: stream, Seq: 2}, StoreSeq: 65538},
		}
		_, n, err := d.SubscribeWithReplay(rec, stream, func() []filtering.Delivery {
			close(fetchStarted)
			<-unsubDone
			return backlog
		})
		if err != nil || n != len(backlog) {
			t.Fatalf("mode %v: n=%d err=%v", mode, n, err)
		}
		d.Stop()
		if got := rec.snapshot(); len(got) != 0 {
			t.Fatalf("mode %v: closed consumer saw %v", mode, got)
		}
		if got := d.Stats().Dropped; got != int64(len(backlog)) {
			t.Fatalf("mode %v: dropped %d, want %d", mode, got, len(backlog))
		}
	}
}

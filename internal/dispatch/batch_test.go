package dispatch

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// dispatchPlan builds a deterministic randomised delivery schedule
// across several sensors and streams, StoreSeq stamped ascending per
// stream so replay floors engage.
func dispatchPlan(seed int64, sensors, msgs int) []filtering.Delivery {
	rng := rand.New(rand.NewSource(seed))
	next := make(map[wire.StreamID]uint64)
	plan := make([]filtering.Delivery, 0, msgs)
	for i := 0; i < msgs; i++ {
		id := wire.MustStreamID(wire.SensorID(rng.Intn(sensors)+1), wire.StreamIndex(rng.Intn(2)))
		next[id]++
		d := del(id, wire.Seq(next[id]))
		d.StoreSeq = 65536 + next[id]
		plan = append(plan, d)
	}
	return plan
}

// feedBatches replays plan through DispatchBatch in randomized splits.
func feedBatches(d *Dispatcher, plan []filtering.Delivery, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	ds := append([]filtering.Delivery(nil), plan...)
	for off := 0; off < len(ds); {
		n := rng.Intn(65) + 1
		if n > len(ds)-off {
			n = len(ds) - off
		}
		d.DispatchBatch(ds[off : off+n])
		off += n
	}
}

// subscribeMix registers one consumer of every pattern kind plus an
// orphan sink, returning the recorders keyed by name.
func subscribeMix(t *testing.T, d *Dispatcher, orphans *[]wire.StreamID) map[string]*recorder {
	t.Helper()
	recs := map[string]*recorder{}
	for _, name := range []string{"exact", "sensor", "all", "where", "multi"} {
		recs[name] = &recorder{name: name}
	}
	mustSub := func(c Consumer, p Pattern) {
		t.Helper()
		if _, err := d.Subscribe(c, p); err != nil {
			t.Fatal(err)
		}
	}
	mustSub(recs["exact"], Exact(wire.MustStreamID(1, 0)))
	mustSub(recs["sensor"], BySensor(2))
	mustSub(recs["all"], All())
	mustSub(recs["where"], Where(func(m wire.Message) bool { return m.Seq%3 == 0 }))
	// One consumer holding overlapping subscriptions: compaction must
	// deliver once per message on both paths.
	mustSub(recs["multi"], Exact(wire.MustStreamID(3, 0)))
	mustSub(recs["multi"], BySensor(3))
	d.SetOrphanSink(func(dd filtering.Delivery) {
		*orphans = append(*orphans, dd.Msg.Stream)
	})
	return recs
}

func recordedSeqs(recs map[string]*recorder) map[string][]filtering.Delivery {
	out := map[string][]filtering.Delivery{}
	for name, r := range recs {
		r.mu.Lock()
		out[name] = append([]filtering.Delivery(nil), r.got...)
		r.mu.Unlock()
	}
	return out
}

// TestDispatchBatchMatchesSerialSync pins DispatchBatch to serial
// Dispatch in synchronous mode: same plan, randomized batch splits,
// identical per-consumer delivery sequences, orphan routing and stats
// across every pattern kind including per-message Where wildcards.
func TestDispatchBatchMatchesSerialSync(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		plan := dispatchPlan(seed, 5, 1500) // sensors 4,5 orphan
		run := func(batched bool) (map[string][]filtering.Delivery, []wire.StreamID, Stats) {
			d := New(Options{Shards: 4})
			var orphans []wire.StreamID
			recs := subscribeMix(t, d, &orphans)
			if batched {
				feedBatches(d, plan, seed*31)
			} else {
				for _, dd := range plan {
					d.Dispatch(dd)
				}
			}
			return recordedSeqs(recs), orphans, d.Stats()
		}
		refSeqs, refOrphans, refStats := run(false)
		gotSeqs, gotOrphans, gotStats := run(true)
		if !reflect.DeepEqual(refSeqs, gotSeqs) {
			t.Fatalf("seed %d: batched per-consumer deliveries diverge from serial", seed)
		}
		if !reflect.DeepEqual(refOrphans, gotOrphans) {
			t.Fatalf("seed %d: orphan routing diverges", seed)
		}
		if refStats.Dispatched != gotStats.Dispatched ||
			refStats.Delivered != gotStats.Delivered ||
			refStats.Orphaned != gotStats.Orphaned ||
			refStats.Dropped != gotStats.Dropped {
			t.Fatalf("seed %d: stats diverge: serial %+v, batched %+v", seed, refStats, gotStats)
		}
	}
}

// TestDispatchBatchMatchesSerialAsync runs the same property through
// the async ring ports (ample capacity, drained by Stop): per-consumer
// sequences must match serial exactly.
func TestDispatchBatchMatchesSerialAsync(t *testing.T) {
	for seed := int64(6); seed <= 8; seed++ {
		plan := dispatchPlan(seed, 5, 1500)
		run := func(batched bool) map[string][]filtering.Delivery {
			d := New(Options{Mode: ModeAsync, Shards: 4, QueueCapacity: 4096})
			var orphans []wire.StreamID
			recs := subscribeMix(t, d, &orphans)
			d.Start()
			if batched {
				feedBatches(d, plan, seed*31)
			} else {
				for _, dd := range plan {
					d.Dispatch(dd)
				}
			}
			d.Stop()
			return recordedSeqs(recs)
		}
		ref := run(false)
		got := run(true)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("seed %d: async batched per-consumer deliveries diverge from serial", seed)
		}
	}
}

// TestPortEnqueueBatchMatchesSerial pins enqueueBatch to serial enqueue
// at the port level with no drainer running, where overflow decisions
// are deterministic: same deliveries in, same queue contents and drop
// counts out, for both overflow policies on both the lock-free ring and
// the locked fallback.
func TestPortEnqueueBatchMatchesSerial(t *testing.T) {
	plan := dispatchPlan(11, 3, 400)
	for _, policy := range []OverflowPolicy{DropOldest, DropNewest} {
		for _, lockFree := range []bool{true, false} {
			name := fmt.Sprintf("policy=%d/lockFree=%v", policy, lockFree)
			t.Run(name, func(t *testing.T) {
				run := func(batched bool) ([]filtering.Delivery, int64) {
					var dropped, selfDrop metrics.Counter
					sink := &recorder{name: "sink"}
					p := newPort(sink, 64, 32, policy, lockFree, &dropped, &selfDrop)
					if batched {
						rng := rand.New(rand.NewSource(99))
						ds := append([]filtering.Delivery(nil), plan...)
						for off := 0; off < len(ds); {
							n := rng.Intn(17) + 1
							if n > len(ds)-off {
								n = len(ds) - off
							}
							p.enqueueBatch(ds[off : off+n])
							off += n
						}
					} else {
						for _, dd := range plan {
							p.enqueue(dd)
						}
					}
					// Drain without running the worker goroutine.
					var out []filtering.Delivery
					buf := make([]filtering.Delivery, 16)
					for {
						n := 0
						if p.ring != nil {
							n = p.ring.DequeueBatch(buf)
						}
						if n == 0 {
							n, _ = p.takeLockedBatch(buf)
						}
						if n == 0 {
							break
						}
						out = append(out, buf[:n]...)
					}
					return out, dropped.Value()
				}
				refOut, refDrops := run(false)
				gotOut, gotDrops := run(true)
				if !reflect.DeepEqual(refOut, gotOut) {
					t.Fatalf("batched queue contents diverge from serial")
				}
				if refDrops != gotDrops {
					t.Fatalf("drop accounting diverges: serial %d, batched %d", refDrops, gotDrops)
				}
			})
		}
	}
}

// TestDispatchBatchMidBatchReplayGate exercises the catch-up gate
// against batched dispatch: the replay fetch itself dispatches batches
// (fetch runs without dispatcher locks, so this is exactly a batch
// racing the gate), which must be held behind the replay and flushed
// after it minus floor-covered duplicates — identically to serial
// dispatch racing a serial gate.
func TestDispatchBatchMidBatchReplayGate(t *testing.T) {
	id := wire.MustStreamID(1, 0)
	mk := func(seq wire.Seq, store uint64) filtering.Delivery {
		d := del(id, seq)
		d.StoreSeq = store
		return d
	}
	history := []filtering.Delivery{mk(1, 65537), mk(2, 65538), mk(3, 65539)}
	// Mid-gate live traffic: a late copy of retained history (StoreSeq
	// 65539, must be suppressed by the floor) and fresh deliveries.
	live := []filtering.Delivery{mk(3, 65539), mk(4, 65540), mk(5, 65541)}
	for _, mode := range []Mode{ModeSync, ModeAsync} {
		for _, batched := range []bool{false, true} {
			t.Run(fmt.Sprintf("mode=%d/batched=%v", mode, batched), func(t *testing.T) {
				d := New(Options{Mode: mode, Shards: 4})
				c := &recorder{name: "c"}
				if mode == ModeAsync {
					d.Start()
				}
				_, n, err := d.SubscribeWithReplay(c, id, func() []filtering.Delivery {
					if batched {
						d.DispatchBatch(live)
					} else {
						for _, dd := range live {
							d.Dispatch(dd)
						}
					}
					return history
				})
				if err != nil {
					t.Fatal(err)
				}
				if n != len(history) {
					t.Fatalf("replayed %d, want %d", n, len(history))
				}
				if mode == ModeAsync {
					d.Stop()
				}
				var got []uint64
				c.mu.Lock()
				for _, dd := range c.got {
					got = append(got, dd.StoreSeq)
				}
				c.mu.Unlock()
				want := []uint64{65537, 65538, 65539, 65540, 65541}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("delivery order %v, want %v (replay first, held flushed minus floor dup)", got, want)
				}
			})
		}
	}
}

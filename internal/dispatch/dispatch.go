// Package dispatch implements the Dispatching Service of §4.2: delivery of
// reconstructed data streams to subscribed consumer processes through a
// publish/subscribe mechanism that keeps consumers mutually unaware of one
// another, and detection of un-configured streams, which are routed to the
// Orphanage.
//
// The StreamID in a data message “implicitly identifies the source of the
// message, while the end destinations are inferred” (§5, delayed delivery
// decision-making): sensors never address consumers; the dispatcher's
// subscription table is the sole place delivery decisions are made.
//
// # Sharding
//
// The subscription table is partitioned into N shards (Options.Shards) so
// concurrent publishes on different streams never contend on one lock. The
// partition key is the sensor component of the StreamID: every stream of a
// sensor, and therefore every Exact or BySensor subscription that can
// match it, lands in the same shard, so a Dispatch call takes exactly one
// shard mutex. Wildcard subscriptions (All/Where) cannot be assigned to a
// shard; they live in a small shared read-mostly index published as an
// atomic snapshot, which the hot path reads without locking. Control-plane
// operations (Subscribe, Unsubscribe, Start, Stop) serialise on one
// dispatcher mutex and rebuild the wildcard snapshot; the data plane never
// takes it.
//
// Two delivery modes exist. Synchronous mode invokes consumers inline and
// is used by the deterministic simulation and the benchmarks; asynchronous
// mode gives every consumer a bounded queue drained by a dedicated,
// lifecycle-managed goroutine, with an explicit overflow policy
// (drop-oldest by default) so one slow consumer can never stall the
// pipeline or another consumer. The steady-state async queue is a
// lock-free ring (internal/ring): publishing shards enqueue with a
// CAS-claimed slot and wake a parked drainer through a two-state atomic,
// so concurrent publishers to one consumer never serialise on a queue
// mutex; during a catch-up gate or while replay floors are active the
// port transparently falls back to a mutex-guarded queue with identical
// semantics (see port). The drainer coalesces up to
// Options.BatchSize pending deliveries per wakeup and hands them to the
// consumer in one ConsumeBatch call when the consumer implements
// BatchConsumer, or replays them through Consume one by one otherwise;
// either way per-stream FIFO order is preserved.
package dispatch

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Consumer is a destination for stream deliveries. Implementations must be
// comparable (use pointer receivers) because the dispatcher de-duplicates
// deliveries per consumer, and must not block in Consume when the
// dispatcher runs in synchronous mode.
type Consumer interface {
	// Name identifies the consumer in diagnostics and keys per-consumer
	// accounting (Stats.DroppedByConsumer): consumers sharing a name
	// share those counters.
	Name() string
	// Consume handles one delivery.
	Consume(d filtering.Delivery)
}

// BatchConsumer is a Consumer that can accept several queued deliveries in
// one call. In asynchronous mode the drainer coalesces up to
// Options.BatchSize pending deliveries per wakeup and hands them to
// ConsumeBatch in queue (per-stream FIFO) order. The slice is reused
// between calls: implementations must not retain it or its backing array
// past the call.
type BatchConsumer interface {
	Consumer
	// ConsumeBatch handles a batch of deliveries in order.
	ConsumeBatch(ds []filtering.Delivery)
}

// ConsumerFunc adapts a function to the Consumer interface.
type ConsumerFunc struct {
	ConsumerName string
	Fn           func(filtering.Delivery)
}

// Name implements Consumer.
func (c *ConsumerFunc) Name() string { return c.ConsumerName }

// Consume implements Consumer.
func (c *ConsumerFunc) Consume(d filtering.Delivery) { c.Fn(d) }

// BatchConsumerFunc adapts a batch function to the BatchConsumer
// interface. Consume wraps single deliveries into one-element batches, so
// the same implementation serves both delivery modes.
type BatchConsumerFunc struct {
	ConsumerName string
	Fn           func(ds []filtering.Delivery)
}

// Name implements Consumer.
func (c *BatchConsumerFunc) Name() string { return c.ConsumerName }

// Consume implements Consumer.
func (c *BatchConsumerFunc) Consume(d filtering.Delivery) {
	c.Fn([]filtering.Delivery{d})
}

// ConsumeBatch implements BatchConsumer.
func (c *BatchConsumerFunc) ConsumeBatch(ds []filtering.Delivery) { c.Fn(ds) }

// PatternKind selects the subscription matching rule.
type PatternKind int

const (
	// KindExact matches one StreamID.
	KindExact PatternKind = iota + 1
	// KindSensor matches every stream of one sensor.
	KindSensor
	// KindAll matches every stream.
	KindAll
	// KindWhere matches streams by predicate.
	KindWhere
)

// Pattern describes which streams a subscription selects.
type Pattern struct {
	Kind   PatternKind
	Stream wire.StreamID             // KindExact
	Sensor wire.SensorID             // KindSensor
	Where  func(m wire.Message) bool // KindWhere
}

// Exact subscribes to a single stream.
func Exact(id wire.StreamID) Pattern { return Pattern{Kind: KindExact, Stream: id} }

// BySensor subscribes to every stream of a sensor.
func BySensor(id wire.SensorID) Pattern { return Pattern{Kind: KindSensor, Sensor: id} }

// All subscribes to every stream.
func All() Pattern { return Pattern{Kind: KindAll} }

// Where subscribes by predicate over the message (stream id, flags, seq —
// the payload is opaque but its length is visible).
func Where(fn func(m wire.Message) bool) Pattern { return Pattern{Kind: KindWhere, Where: fn} }

// Mode selects the delivery mechanism.
type Mode int

const (
	// ModeSync delivers inline on the dispatching goroutine.
	ModeSync Mode = iota + 1
	// ModeAsync delivers through per-consumer bounded queues.
	ModeAsync
)

// OverflowPolicy says what happens when an async consumer queue is full.
type OverflowPolicy int

const (
	// DropOldest discards the queue head to admit the new delivery.
	DropOldest OverflowPolicy = iota + 1
	// DropNewest discards the incoming delivery.
	DropNewest
)

// DefaultQueueCapacity bounds each async consumer queue. The buffer is a
// deliberate, documented decision: it absorbs fan-out bursts while the
// overflow policy guarantees a slow consumer only ever harms itself.
const DefaultQueueCapacity = 256

// DefaultShards partitions the subscription table unless Options.Shards
// says otherwise. Sixteen single-cache-line shard headers cost nothing at
// rest and remove essentially all lock contention up to a few dozen
// concurrently publishing streams.
const DefaultShards = 16

// DefaultBatchSize bounds how many queued deliveries an async drainer
// hands to a consumer per wakeup.
const DefaultBatchSize = 32

// Options configures a Dispatcher. The zero value means synchronous mode
// with DefaultShards table shards.
type Options struct {
	Mode          Mode
	QueueCapacity int            // per-consumer, ModeAsync only
	Overflow      OverflowPolicy // ModeAsync only; default DropOldest
	// Shards partitions the subscription table; <= 0 selects
	// DefaultShards. 1 restores the single-table behaviour.
	Shards int
	// BatchSize caps deliveries coalesced per async drain wakeup; <= 0
	// selects DefaultBatchSize. 1 restores delivery-at-a-time draining.
	BatchSize int
	// ForceLockedQueue makes async ports use the mutex-guarded queue for
	// every delivery instead of the lock-free ring fast path. The two are
	// behaviourally identical (pinned by the differential property test);
	// this knob exists so benchmarks and tests can compare them and is
	// not useful in production.
	ForceLockedQueue bool
}

// StreamInfo is one advertised stream, for discovery. The dispatcher
// holds one per stream it has ever routed, so field order matters at
// census scale: the two times and the count lead, and the 32-bit id
// packs with the flag — 64 bytes, one size class below the naive
// layout. The footprint test pins the ceiling.
type StreamInfo struct {
	FirstSeen  time.Time
	LastSeen   time.Time
	Count      int64
	Stream     wire.StreamID
	Subscribed bool // whether at least one subscription currently matches it
}

// Stats is a snapshot of dispatcher counters.
type Stats struct {
	Dispatched    int64 // deliveries entering the dispatcher
	Delivered     int64 // per-consumer deliveries out
	Orphaned      int64 // deliveries with no matching subscription
	Dropped       int64 // async overflow discards
	Subscriptions int
	Consumers     int
	Shards        int
	// DroppedByConsumer breaks queue-level drops down per consumer
	// name, so a deployment can tell which slow consumer is shedding
	// load. Accounting keys on Consumer.Name(): give consumers unique
	// names or their drop counts merge. Deliveries discarded because
	// the whole dispatcher was stopped reach no consumer queue and are
	// counted only in Dropped, so the per-consumer values can sum to
	// less than Dropped.
	DroppedByConsumer map[string]int64
}

// SubscriptionID identifies a subscription for Unsubscribe.
type SubscriptionID uint64

type subscription struct {
	id      SubscriptionID
	pattern Pattern
	port    *port
}

// Dispatcher is the Dispatching Service.
type Dispatcher struct {
	opts Options

	// Data-plane state: per-shard tables, the wildcard snapshot, the
	// orphan sink and the stop flag are all reachable without the
	// control-plane mutex.
	shards  []*shard
	wild    atomic.Pointer[[]*subscription] // All/Where, read-mostly
	orphan  atomic.Pointer[func(filtering.Delivery)]
	stopped atomic.Bool

	// Control plane, serialised on mu.
	mu       sync.Mutex
	nextSub  SubscriptionID
	subs     map[SubscriptionID]*subscription
	wildSubs map[SubscriptionID]*subscription // source of truth behind wild
	ports    map[Consumer]*port
	started  bool
	wg       sync.WaitGroup

	// dispatched/delivered/orphaned live on the shards (summed by Stats);
	// only drop accounting is dispatcher-global because ports share it.
	dropped   metrics.Counter
	droppedBy metrics.LabeledCounter
}

// Errors returned by Subscribe.
var (
	ErrStopped    = errors.New("dispatch: dispatcher stopped")
	ErrBadPattern = errors.New("dispatch: invalid pattern")
)

// New creates a Dispatcher. Synchronous dispatchers are ready immediately;
// asynchronous ones need Start.
func New(opts Options) *Dispatcher {
	if opts.Mode == 0 {
		opts.Mode = ModeSync
	}
	if opts.QueueCapacity <= 0 {
		opts.QueueCapacity = DefaultQueueCapacity
	}
	if opts.Overflow == 0 {
		opts.Overflow = DropOldest
	}
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultBatchSize
	}
	d := &Dispatcher{
		opts:     opts,
		shards:   newShards(opts.Shards),
		subs:     make(map[SubscriptionID]*subscription),
		wildSubs: make(map[SubscriptionID]*subscription),
		ports:    make(map[Consumer]*port),
	}
	empty := make([]*subscription, 0)
	d.wild.Store(&empty)
	return d
}

// SetOrphanSink routes un-configured data (no matching subscription) to fn
// — in a full deployment, the Orphanage. A nil fn discards orphans.
func (d *Dispatcher) SetOrphanSink(fn func(filtering.Delivery)) {
	if fn == nil {
		d.orphan.Store(nil)
		return
	}
	d.orphan.Store(&fn)
}

// Start launches async consumer workers. It is a no-op in ModeSync and
// idempotent otherwise.
func (d *Dispatcher) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.started || d.opts.Mode != ModeAsync {
		d.started = true
		return
	}
	d.started = true
	for _, p := range d.ports {
		d.startPortLocked(p)
	}
}

// portForLocked returns c's delivery port, creating it — and, in a
// started async dispatcher, launching its worker — on first use. Caller
// holds mu and manages the reference count.
func (d *Dispatcher) portForLocked(c Consumer) *port {
	p, ok := d.ports[c]
	if !ok {
		p = newPort(c, d.opts.QueueCapacity, d.opts.BatchSize, d.opts.Overflow,
			d.opts.Mode == ModeAsync && !d.opts.ForceLockedQueue,
			&d.dropped, d.droppedBy.With(c.Name()))
		d.ports[c] = p
		if d.opts.Mode == ModeAsync && d.started {
			d.startPortLocked(p)
		}
	}
	return p
}

func (d *Dispatcher) startPortLocked(p *port) {
	if p.running {
		return
	}
	p.running = true
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		p.run()
	}()
}

// Stop halts delivery. In async mode it closes all consumer queues and
// waits for the workers to drain. Deliveries arriving after Stop are
// counted as dropped.
func (d *Dispatcher) Stop() {
	d.mu.Lock()
	if d.stopped.Load() {
		d.mu.Unlock()
		return
	}
	d.stopped.Store(true)
	ports := make([]*port, 0, len(d.ports))
	for _, p := range d.ports {
		ports = append(ports, p)
	}
	d.mu.Unlock()
	for _, p := range ports {
		p.close()
	}
	d.wg.Wait()
}

// publishWildLocked rebuilds the read-mostly wildcard snapshot from
// wildSubs. Caller holds mu.
func (d *Dispatcher) publishWildLocked() {
	snap := make([]*subscription, 0, len(d.wildSubs))
	for _, sub := range d.wildSubs {
		snap = append(snap, sub)
	}
	// Stable iteration order keeps the snapshot deterministic for tests
	// that inspect fan-out order (ports are sorted again per dispatch).
	sort.Slice(snap, func(i, j int) bool { return snap[i].id < snap[j].id })
	d.wild.Store(&snap)
}

// Subscribe registers consumer c for streams matching pattern. The same
// consumer may hold several subscriptions; a message matching more than
// one is still delivered to c once.
func (d *Dispatcher) Subscribe(c Consumer, pattern Pattern) (SubscriptionID, error) {
	if c == nil {
		return 0, fmt.Errorf("%w: nil consumer", ErrBadPattern)
	}
	switch pattern.Kind {
	case KindExact, KindSensor, KindAll:
	case KindWhere:
		if pattern.Where == nil {
			return 0, fmt.Errorf("%w: KindWhere needs a predicate", ErrBadPattern)
		}
	default:
		return 0, fmt.Errorf("%w: kind %d", ErrBadPattern, pattern.Kind)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped.Load() {
		return 0, ErrStopped
	}
	p := d.portForLocked(c)
	p.refs++

	d.nextSub++
	sub := &subscription{id: d.nextSub, pattern: pattern, port: p}
	d.subs[sub.id] = sub
	switch pattern.Kind {
	case KindExact:
		sh := d.shardFor(pattern.Stream.Sensor())
		sh.mu.Lock()
		sh.addExactLocked(sub)
		sh.mu.Unlock()
	case KindSensor:
		sh := d.shardFor(pattern.Sensor)
		sh.mu.Lock()
		sh.addSensorLocked(sub)
		sh.mu.Unlock()
	default:
		d.wildSubs[sub.id] = sub
		d.publishWildLocked()
	}
	return sub.id, nil
}

// Unsubscribe removes a subscription; it reports whether the id was live.
// When a consumer's last subscription goes away its queue is closed.
func (d *Dispatcher) Unsubscribe(id SubscriptionID) bool {
	d.mu.Lock()
	sub, ok := d.subs[id]
	if !ok {
		d.mu.Unlock()
		return false
	}
	delete(d.subs, id)
	switch sub.pattern.Kind {
	case KindExact:
		sh := d.shardFor(sub.pattern.Stream.Sensor())
		sh.mu.Lock()
		sh.removeLocked(sub)
		sh.mu.Unlock()
	case KindSensor:
		sh := d.shardFor(sub.pattern.Sensor)
		sh.mu.Lock()
		sh.removeLocked(sub)
		sh.mu.Unlock()
	default:
		delete(d.wildSubs, id)
		d.publishWildLocked()
	}
	sub.port.refs--
	var toClose *port
	if sub.port.refs == 0 {
		delete(d.ports, sub.port.consumer)
		toClose = sub.port
	}
	d.mu.Unlock()
	if toClose != nil {
		toClose.close()
	}
	return true
}

func (d *Dispatcher) shardFor(id wire.SensorID) *shard {
	return d.shards[id.Shard(len(d.shards))]
}

// Dispatch delivers one reconstructed message to every matching consumer,
// or to the orphan sink when nothing matches. Concurrent Dispatch calls on
// streams of different sensors proceed on disjoint shards without
// contending; calls on the same stream serialise briefly on its shard
// mutex, and per-stream delivery order follows Dispatch call order as
// before.
func (d *Dispatcher) Dispatch(del filtering.Delivery) {
	sh := d.shardFor(del.Msg.Stream.Sensor())
	sh.dispatched.Inc()
	if d.stopped.Load() {
		d.dropped.Inc()
		return
	}

	sh.mu.Lock()
	// Advertising: record the stream for discovery.
	info, ok := sh.streams[del.Msg.Stream]
	if !ok {
		info = &StreamInfo{Stream: del.Msg.Stream, FirstSeen: del.At}
		sh.streams[del.Msg.Stream] = info
	}
	info.LastSeen = del.At
	info.Count++

	// Collect matching ports; duplicates (one consumer holding several
	// matching subscriptions) are removed after the sort below, so the
	// hot path allocates nothing beyond the slice itself.
	var targets []*port
	for _, sub := range sh.exact[del.Msg.Stream] {
		targets = append(targets, sub.port)
	}
	for _, sub := range sh.sensor[del.Msg.Stream.Sensor()] {
		targets = append(targets, sub.port)
	}
	sh.mu.Unlock()

	// Wildcard subscriptions: lock-free read of the shared snapshot.
	for _, sub := range *d.wild.Load() {
		if sub.pattern.Kind == KindAll || sub.pattern.Where(del.Msg) {
			targets = append(targets, sub.port)
		}
	}
	// Deterministic fan-out order for the synchronous mode; equal seq
	// means same port, so after sorting duplicates are adjacent and one
	// Compact pass de-duplicates per consumer in O(n log n) total.
	targets = sortPorts(targets)
	d.deliverTargets(sh, del, targets)
}

// sortPorts orders a fan-out set deterministically by port creation
// order and removes duplicates (one consumer holding several matching
// subscriptions), in place.
func sortPorts(targets []*port) []*port {
	slices.SortFunc(targets, func(a, b *port) int { return cmp.Compare(a.seq, b.seq) })
	return slices.Compact(targets)
}

// deliverTargets fans one delivery out to a sorted, de-duplicated target
// set, or hands it to the orphan sink when the set is empty. Shared by
// Dispatch and DispatchBatch's per-message paths.
func (d *Dispatcher) deliverTargets(sh *shard, del filtering.Delivery, targets []*port) {
	if len(targets) == 0 {
		sh.orphaned.Inc()
		if orphan := d.orphan.Load(); orphan != nil {
			(*orphan)(del)
		}
		return
	}
	for _, p := range targets {
		if d.opts.Mode == ModeSync {
			// A port mid catch-up (SubscribeWithReplay) diverts live
			// deliveries behind its gate — they are delivered, and
			// counted, once the replay batch has gone ahead of them —
			// and a port with replay floors drops late copies of
			// history a replay batch already covered.
			if (p.gated.Load() || p.hasFloors.Load()) && p.tryHold(del) {
				continue
			}
			sh.delivered.Inc()
			p.consumer.Consume(del)
			continue
		}
		if p.enqueue(del) {
			sh.delivered.Inc()
		}
	}
}

// DispatchBatch delivers a run of reconstructed messages, amortizing
// the per-message fixed costs Dispatch pays: the wildcard snapshot is
// loaded once per batch, each consecutive same-shard run takes its
// shard mutex once, subscriber sets are resolved once per same-stream
// run within it, and async ports admit each run with multi-slot ring
// claims (~1 CAS per run, port.enqueueBatch). Per-message semantics are
// unchanged: duplicate-port compaction, orphan routing, catch-up
// gates/floors and both overflow policies all decide per delivery
// exactly as len(ds) serial Dispatch calls would, and per-consumer
// delivery order is identical — a port's queue state depends only on
// its own enqueue order, which batching preserves.
func (d *Dispatcher) DispatchBatch(ds []filtering.Delivery) {
	if len(ds) == 0 {
		return
	}
	if len(ds) == 1 {
		d.Dispatch(ds[0])
		return
	}
	// One snapshot load per batch; Where predicates force per-message
	// wildcard matching below, plain All wildcards do not.
	wild := *d.wild.Load()
	wildWhere := false
	for _, sub := range wild {
		if sub.pattern.Kind == KindWhere {
			wildWhere = true
			break
		}
	}
	stopped := d.stopped.Load()
	for i := 0; i < len(ds); {
		sh := d.shardFor(ds[i].Msg.Stream.Sensor())
		j := i + 1
		for j < len(ds) && d.shardFor(ds[j].Msg.Stream.Sensor()) == sh {
			j++
		}
		run := ds[i:j]
		i = j
		sh.dispatched.Add(int64(len(run)))
		if stopped {
			d.dropped.Add(int64(len(run)))
			continue
		}
		d.dispatchRun(sh, run, wild, wildWhere)
	}
}

// portSlices pools DispatchBatch's fan-out scratch so batched dispatch
// resolves targets without allocating at steady state.
var portSlices = sync.Pool{
	New: func() any { return new([]*port) },
}

func getPortSlice() *[]*port { return portSlices.Get().(*[]*port) }

func putPortSlice(p *[]*port) {
	clear(*p) // do not pin ports of unsubscribed consumers
	*p = (*p)[:0]
	portSlices.Put(p)
}

// dispatchRun fans one same-shard run out stream by stream. Caller has
// already counted the run as dispatched on sh.
func (d *Dispatcher) dispatchRun(sh *shard, run []filtering.Delivery, wild []*subscription, wildWhere bool) {
	tp := getPortSlice()
	targets := *tp
	wp := (*[]*port)(nil)
	if wildWhere {
		wp = getPortSlice()
	}
	for i := 0; i < len(run); {
		stream := run[i].Msg.Stream
		j := i + 1
		for j < len(run) && run[j].Msg.Stream == stream {
			j++
		}
		sub := run[i:j]
		i = j

		targets = targets[:0]
		sh.mu.Lock()
		// Advertising: one record update per same-stream run lands the
		// same final state as per-message updates.
		info, ok := sh.streams[stream]
		if !ok {
			info = &StreamInfo{Stream: stream, FirstSeen: sub[0].At}
			sh.streams[stream] = info
		}
		info.LastSeen = sub[len(sub)-1].At
		info.Count += int64(len(sub))
		for _, s := range sh.exact[stream] {
			targets = append(targets, s.port)
		}
		for _, s := range sh.sensor[stream.Sensor()] {
			targets = append(targets, s.port)
		}
		sh.mu.Unlock()

		if wildWhere {
			// Predicates read the message, so the wildcard set can differ
			// within the run: fall back to per-message resolution on top
			// of the cached shard-local set.
			for k := range sub {
				per := append((*wp)[:0], targets...)
				for _, s := range wild {
					if s.pattern.Kind == KindAll || s.pattern.Where(sub[k].Msg) {
						per = append(per, s.port)
					}
				}
				per = sortPorts(per)
				*wp = per
				d.deliverTargets(sh, sub[k], per)
			}
			continue
		}
		for _, s := range wild {
			targets = append(targets, s.port)
		}
		targets = sortPorts(targets)
		if d.opts.Mode != ModeSync && len(targets) > 0 {
			// Async fast path: one multi-slot admission per (port, run).
			for _, p := range targets {
				sh.delivered.Add(int64(p.enqueueBatch(sub)))
			}
			continue
		}
		for k := range sub {
			d.deliverTargets(sh, sub[k], targets)
		}
	}
	*tp = targets
	putPortSlice(tp)
	if wp != nil {
		putPortSlice(wp)
	}
}

// SubscribeWithReplay subscribes c to a single stream and replays a
// backlog ahead of live delivery, through the same consumer port, so the
// two can never invert or interleave: the subscription is registered with
// the port's catch-up gate closed, fetch() is then called (typically a
// Stream Store range read) to materialise the backlog, the backlog is
// placed, and finally the live deliveries that arrived during catch-up
// are flushed behind it — minus any that carry a store sequence already
// covered by the replay batch, the seq-based dedupe at the claim
// boundary. fetch runs without dispatcher locks held and must return
// deliveries in ascending StoreSeq order. It returns the subscription id
// and the number of backlog messages replayed.
func (d *Dispatcher) SubscribeWithReplay(c Consumer, stream wire.StreamID, fetch func() []filtering.Delivery) (SubscriptionID, int, error) {
	if c == nil {
		return 0, 0, fmt.Errorf("%w: nil consumer", ErrBadPattern)
	}
	d.mu.Lock()
	if d.stopped.Load() {
		d.mu.Unlock()
		return 0, 0, ErrStopped
	}
	p := d.portForLocked(c)
	p.refs++
	p.beginGate()
	d.nextSub++
	sub := &subscription{id: d.nextSub, pattern: Exact(stream), port: p}
	d.subs[sub.id] = sub
	sh := d.shardFor(stream.Sensor())
	sh.mu.Lock()
	sh.addExactLocked(sub)
	sh.mu.Unlock()
	d.mu.Unlock()

	replay := fetch()
	p.endGate(replay, stream, d.opts.Mode == ModeSync, sh)
	return sub.id, len(replay), nil
}

// Discover lists every stream the dispatcher has seen, sorted by id — the
// advertising/discovery mechanism consumers use to find streams of
// interest, including un-configured ones currently flowing to the
// Orphanage.
func (d *Dispatcher) Discover() []StreamInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []StreamInfo
	for _, sh := range d.shards {
		sh.mu.Lock()
		for id, info := range sh.streams {
			cp := *info
			cp.Subscribed = d.matchedShardLocked(sh, id)
			out = append(out, cp)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stream < out[j].Stream })
	return out
}

// matchedShardLocked reports whether any live subscription matches id.
// Caller holds mu and sh.mu; sh is id's home shard.
func (d *Dispatcher) matchedShardLocked(sh *shard, id wire.StreamID) bool {
	if len(sh.exact[id]) > 0 || len(sh.sensor[id.Sensor()]) > 0 {
		return true
	}
	for _, sub := range d.wildSubs {
		if sub.pattern.Kind == KindAll {
			return true
		}
		if sub.pattern.Where(wire.Message{Stream: id}) {
			return true
		}
	}
	return false
}

// Stats returns a snapshot of dispatcher counters.
func (d *Dispatcher) Stats() Stats {
	d.mu.Lock()
	subs, consumers := len(d.subs), len(d.ports)
	d.mu.Unlock()
	st := Stats{
		Dropped:           d.dropped.Value(),
		Subscriptions:     subs,
		Consumers:         consumers,
		Shards:            len(d.shards),
		DroppedByConsumer: d.droppedBy.Snapshot(),
	}
	for _, sh := range d.shards {
		st.Dispatched += sh.dispatched.Value()
		st.Delivered += sh.delivered.Value()
		st.Orphaned += sh.orphaned.Value()
	}
	return st
}

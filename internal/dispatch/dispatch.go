// Package dispatch implements the Dispatching Service of §4.2: delivery of
// reconstructed data streams to subscribed consumer processes through a
// publish/subscribe mechanism that keeps consumers mutually unaware of one
// another, and detection of un-configured streams, which are routed to the
// Orphanage.
//
// The StreamID in a data message “implicitly identifies the source of the
// message, while the end destinations are inferred” (§5, delayed delivery
// decision-making): sensors never address consumers; the dispatcher's
// subscription table is the sole place delivery decisions are made.
//
// Two delivery modes exist. Synchronous mode invokes consumers inline and
// is used by the deterministic simulation and the benchmarks; asynchronous
// mode gives every consumer a bounded queue drained by a dedicated,
// lifecycle-managed goroutine, with an explicit overflow policy
// (drop-oldest by default) so one slow consumer can never stall the
// pipeline or another consumer.
package dispatch

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Consumer is a destination for stream deliveries. Implementations must be
// comparable (use pointer receivers) because the dispatcher de-duplicates
// deliveries per consumer, and must not block in Consume when the
// dispatcher runs in synchronous mode.
type Consumer interface {
	// Name identifies the consumer in diagnostics.
	Name() string
	// Consume handles one delivery.
	Consume(d filtering.Delivery)
}

// ConsumerFunc adapts a function to the Consumer interface.
type ConsumerFunc struct {
	ConsumerName string
	Fn           func(filtering.Delivery)
}

// Name implements Consumer.
func (c *ConsumerFunc) Name() string { return c.ConsumerName }

// Consume implements Consumer.
func (c *ConsumerFunc) Consume(d filtering.Delivery) { c.Fn(d) }

// PatternKind selects the subscription matching rule.
type PatternKind int

const (
	// KindExact matches one StreamID.
	KindExact PatternKind = iota + 1
	// KindSensor matches every stream of one sensor.
	KindSensor
	// KindAll matches every stream.
	KindAll
	// KindWhere matches streams by predicate.
	KindWhere
)

// Pattern describes which streams a subscription selects.
type Pattern struct {
	Kind   PatternKind
	Stream wire.StreamID             // KindExact
	Sensor wire.SensorID             // KindSensor
	Where  func(m wire.Message) bool // KindWhere
}

// Exact subscribes to a single stream.
func Exact(id wire.StreamID) Pattern { return Pattern{Kind: KindExact, Stream: id} }

// BySensor subscribes to every stream of a sensor.
func BySensor(id wire.SensorID) Pattern { return Pattern{Kind: KindSensor, Sensor: id} }

// All subscribes to every stream.
func All() Pattern { return Pattern{Kind: KindAll} }

// Where subscribes by predicate over the message (stream id, flags, seq —
// the payload is opaque but its length is visible).
func Where(fn func(m wire.Message) bool) Pattern { return Pattern{Kind: KindWhere, Where: fn} }

// Mode selects the delivery mechanism.
type Mode int

const (
	// ModeSync delivers inline on the dispatching goroutine.
	ModeSync Mode = iota + 1
	// ModeAsync delivers through per-consumer bounded queues.
	ModeAsync
)

// OverflowPolicy says what happens when an async consumer queue is full.
type OverflowPolicy int

const (
	// DropOldest discards the queue head to admit the new delivery.
	DropOldest OverflowPolicy = iota + 1
	// DropNewest discards the incoming delivery.
	DropNewest
)

// DefaultQueueCapacity bounds each async consumer queue. The buffer is a
// deliberate, documented decision: it absorbs fan-out bursts while the
// overflow policy guarantees a slow consumer only ever harms itself.
const DefaultQueueCapacity = 256

// Options configures a Dispatcher. The zero value means synchronous mode.
type Options struct {
	Mode          Mode
	QueueCapacity int            // per-consumer, ModeAsync only
	Overflow      OverflowPolicy // ModeAsync only; default DropOldest
}

// StreamInfo is one advertised stream, for discovery.
type StreamInfo struct {
	Stream     wire.StreamID
	FirstSeen  time.Time
	LastSeen   time.Time
	Count      int64
	Subscribed bool // whether at least one subscription currently matches it
}

// Stats is a snapshot of dispatcher counters.
type Stats struct {
	Dispatched    int64 // deliveries entering the dispatcher
	Delivered     int64 // per-consumer deliveries out
	Orphaned      int64 // deliveries with no matching subscription
	Dropped       int64 // async overflow discards
	Subscriptions int
	Consumers     int
}

// SubscriptionID identifies a subscription for Unsubscribe.
type SubscriptionID uint64

type subscription struct {
	id      SubscriptionID
	pattern Pattern
	port    *port
}

// Dispatcher is the Dispatching Service.
type Dispatcher struct {
	opts Options

	mu      sync.Mutex
	nextSub SubscriptionID
	subs    map[SubscriptionID]*subscription
	exact   map[wire.StreamID]map[SubscriptionID]*subscription
	sensor  map[wire.SensorID]map[SubscriptionID]*subscription
	global  map[SubscriptionID]*subscription // KindAll and KindWhere
	ports   map[Consumer]*port
	streams map[wire.StreamID]*StreamInfo
	orphan  func(filtering.Delivery)
	started bool
	stopped bool
	wg      sync.WaitGroup

	dispatched metrics.Counter
	delivered  metrics.Counter
	orphaned   metrics.Counter
	dropped    metrics.Counter
}

// Errors returned by Subscribe.
var (
	ErrStopped    = errors.New("dispatch: dispatcher stopped")
	ErrBadPattern = errors.New("dispatch: invalid pattern")
)

// New creates a Dispatcher. Synchronous dispatchers are ready immediately;
// asynchronous ones need Start.
func New(opts Options) *Dispatcher {
	if opts.Mode == 0 {
		opts.Mode = ModeSync
	}
	if opts.QueueCapacity <= 0 {
		opts.QueueCapacity = DefaultQueueCapacity
	}
	if opts.Overflow == 0 {
		opts.Overflow = DropOldest
	}
	return &Dispatcher{
		opts:    opts,
		subs:    make(map[SubscriptionID]*subscription),
		exact:   make(map[wire.StreamID]map[SubscriptionID]*subscription),
		sensor:  make(map[wire.SensorID]map[SubscriptionID]*subscription),
		global:  make(map[SubscriptionID]*subscription),
		ports:   make(map[Consumer]*port),
		streams: make(map[wire.StreamID]*StreamInfo),
	}
}

// SetOrphanSink routes un-configured data (no matching subscription) to fn
// — in a full deployment, the Orphanage. A nil fn discards orphans.
func (d *Dispatcher) SetOrphanSink(fn func(filtering.Delivery)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.orphan = fn
}

// Start launches async consumer workers. It is a no-op in ModeSync and
// idempotent otherwise.
func (d *Dispatcher) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.started || d.opts.Mode != ModeAsync {
		d.started = true
		return
	}
	d.started = true
	for _, p := range d.ports {
		d.startPortLocked(p)
	}
}

func (d *Dispatcher) startPortLocked(p *port) {
	if p.running {
		return
	}
	p.running = true
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		p.run()
	}()
}

// Stop halts delivery. In async mode it closes all consumer queues and
// waits for the workers to drain. Deliveries arriving after Stop are
// counted as dropped.
func (d *Dispatcher) Stop() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	ports := make([]*port, 0, len(d.ports))
	for _, p := range d.ports {
		ports = append(ports, p)
	}
	d.mu.Unlock()
	for _, p := range ports {
		p.close()
	}
	d.wg.Wait()
}

// Subscribe registers consumer c for streams matching pattern. The same
// consumer may hold several subscriptions; a message matching more than
// one is still delivered to c once.
func (d *Dispatcher) Subscribe(c Consumer, pattern Pattern) (SubscriptionID, error) {
	if c == nil {
		return 0, fmt.Errorf("%w: nil consumer", ErrBadPattern)
	}
	switch pattern.Kind {
	case KindExact, KindSensor, KindAll:
	case KindWhere:
		if pattern.Where == nil {
			return 0, fmt.Errorf("%w: KindWhere needs a predicate", ErrBadPattern)
		}
	default:
		return 0, fmt.Errorf("%w: kind %d", ErrBadPattern, pattern.Kind)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return 0, ErrStopped
	}
	p, ok := d.ports[c]
	if !ok {
		p = newPort(c, d.opts.QueueCapacity, d.opts.Overflow, &d.dropped)
		d.ports[c] = p
		if d.opts.Mode == ModeAsync && d.started {
			d.startPortLocked(p)
		}
	}
	p.refs++

	d.nextSub++
	sub := &subscription{id: d.nextSub, pattern: pattern, port: p}
	d.subs[sub.id] = sub
	switch pattern.Kind {
	case KindExact:
		m := d.exact[pattern.Stream]
		if m == nil {
			m = make(map[SubscriptionID]*subscription)
			d.exact[pattern.Stream] = m
		}
		m[sub.id] = sub
	case KindSensor:
		m := d.sensor[pattern.Sensor]
		if m == nil {
			m = make(map[SubscriptionID]*subscription)
			d.sensor[pattern.Sensor] = m
		}
		m[sub.id] = sub
	default:
		d.global[sub.id] = sub
	}
	return sub.id, nil
}

// Unsubscribe removes a subscription; it reports whether the id was live.
// When a consumer's last subscription goes away its queue is closed.
func (d *Dispatcher) Unsubscribe(id SubscriptionID) bool {
	d.mu.Lock()
	sub, ok := d.subs[id]
	if !ok {
		d.mu.Unlock()
		return false
	}
	delete(d.subs, id)
	switch sub.pattern.Kind {
	case KindExact:
		delete(d.exact[sub.pattern.Stream], id)
		if len(d.exact[sub.pattern.Stream]) == 0 {
			delete(d.exact, sub.pattern.Stream)
		}
	case KindSensor:
		delete(d.sensor[sub.pattern.Sensor], id)
		if len(d.sensor[sub.pattern.Sensor]) == 0 {
			delete(d.sensor, sub.pattern.Sensor)
		}
	default:
		delete(d.global, id)
	}
	sub.port.refs--
	var toClose *port
	if sub.port.refs == 0 {
		delete(d.ports, sub.port.consumer)
		toClose = sub.port
	}
	d.mu.Unlock()
	if toClose != nil {
		toClose.close()
	}
	return true
}

// Dispatch delivers one reconstructed message to every matching consumer,
// or to the orphan sink when nothing matches.
func (d *Dispatcher) Dispatch(del filtering.Delivery) {
	d.dispatched.Inc()

	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		d.dropped.Inc()
		return
	}
	// Advertising: record the stream for discovery.
	info, ok := d.streams[del.Msg.Stream]
	if !ok {
		info = &StreamInfo{Stream: del.Msg.Stream, FirstSeen: del.At}
		d.streams[del.Msg.Stream] = info
	}
	info.LastSeen = del.At
	info.Count++

	// Collect matching ports, de-duplicated per consumer.
	seen := make(map[*port]bool)
	var targets []*port
	add := func(sub *subscription) {
		if !seen[sub.port] {
			seen[sub.port] = true
			targets = append(targets, sub.port)
		}
	}
	for _, sub := range d.exact[del.Msg.Stream] {
		add(sub)
	}
	for _, sub := range d.sensor[del.Msg.Stream.Sensor()] {
		add(sub)
	}
	for _, sub := range d.global {
		if sub.pattern.Kind == KindAll || sub.pattern.Where(del.Msg) {
			add(sub)
		}
	}
	// Deterministic fan-out order for the synchronous mode.
	sort.Slice(targets, func(i, j int) bool { return targets[i].seq < targets[j].seq })
	orphan := d.orphan
	mode := d.opts.Mode
	d.mu.Unlock()

	if len(targets) == 0 {
		d.orphaned.Inc()
		if orphan != nil {
			orphan(del)
		}
		return
	}
	for _, p := range targets {
		if mode == ModeSync {
			d.delivered.Inc()
			p.consumer.Consume(del)
			continue
		}
		if p.enqueue(del) {
			d.delivered.Inc()
		}
	}
}

// Discover lists every stream the dispatcher has seen, sorted by id — the
// advertising/discovery mechanism consumers use to find streams of
// interest, including un-configured ones currently flowing to the
// Orphanage.
func (d *Dispatcher) Discover() []StreamInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]StreamInfo, 0, len(d.streams))
	for id, info := range d.streams {
		cp := *info
		cp.Subscribed = d.matchedLocked(id)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stream < out[j].Stream })
	return out
}

func (d *Dispatcher) matchedLocked(id wire.StreamID) bool {
	if len(d.exact[id]) > 0 || len(d.sensor[id.Sensor()]) > 0 {
		return true
	}
	for _, sub := range d.global {
		if sub.pattern.Kind == KindAll {
			return true
		}
		if sub.pattern.Where(wire.Message{Stream: id}) {
			return true
		}
	}
	return false
}

// Stats returns a snapshot of dispatcher counters.
func (d *Dispatcher) Stats() Stats {
	d.mu.Lock()
	subs, consumers := len(d.subs), len(d.ports)
	d.mu.Unlock()
	return Stats{
		Dispatched:    d.dispatched.Value(),
		Delivered:     d.delivered.Value(),
		Orphaned:      d.orphaned.Value(),
		Dropped:       d.dropped.Value(),
		Subscriptions: subs,
		Consumers:     consumers,
	}
}

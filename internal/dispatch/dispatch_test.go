package dispatch

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

type recorder struct {
	name string
	mu   sync.Mutex
	got  []filtering.Delivery
}

func (r *recorder) Name() string { return r.name }
func (r *recorder) Consume(d filtering.Delivery) {
	r.mu.Lock()
	r.got = append(r.got, d)
	r.mu.Unlock()
}
func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.got)
}

func del(stream wire.StreamID, seq wire.Seq) filtering.Delivery {
	return filtering.Delivery{
		Msg: wire.Message{Stream: stream, Seq: seq},
		At:  epoch,
	}
}

func TestExactSubscription(t *testing.T) {
	d := New(Options{})
	c := &recorder{name: "c"}
	if _, err := d.Subscribe(c, Exact(wire.MustStreamID(1, 0))); err != nil {
		t.Fatal(err)
	}
	d.Dispatch(del(wire.MustStreamID(1, 0), 0))
	d.Dispatch(del(wire.MustStreamID(1, 1), 0)) // other stream, same sensor
	d.Dispatch(del(wire.MustStreamID(2, 0), 0)) // other sensor
	if c.count() != 1 {
		t.Fatalf("delivered %d, want 1", c.count())
	}
}

func TestBySensorSubscription(t *testing.T) {
	d := New(Options{})
	c := &recorder{name: "c"}
	if _, err := d.Subscribe(c, BySensor(1)); err != nil {
		t.Fatal(err)
	}
	d.Dispatch(del(wire.MustStreamID(1, 0), 0))
	d.Dispatch(del(wire.MustStreamID(1, 7), 0))
	d.Dispatch(del(wire.MustStreamID(2, 0), 0))
	if c.count() != 2 {
		t.Fatalf("delivered %d, want 2", c.count())
	}
}

func TestAllSubscription(t *testing.T) {
	d := New(Options{})
	c := &recorder{name: "c"}
	if _, err := d.Subscribe(c, All()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		d.Dispatch(del(wire.MustStreamID(wire.SensorID(i), 0), 0))
	}
	if c.count() != 5 {
		t.Fatalf("delivered %d, want 5", c.count())
	}
}

func TestWhereSubscription(t *testing.T) {
	d := New(Options{})
	c := &recorder{name: "c"}
	// Subscribe to location streams only.
	_, err := d.Subscribe(c, Where(func(m wire.Message) bool {
		return m.Stream.Index() == wire.LocationStreamIndex
	}))
	if err != nil {
		t.Fatal(err)
	}
	d.Dispatch(del(wire.MustStreamID(1, 0), 0))
	d.Dispatch(del(wire.MustStreamID(1, wire.LocationStreamIndex), 0))
	if c.count() != 1 {
		t.Fatalf("delivered %d, want 1", c.count())
	}
}

func TestMutuallyUnawareConsumersBothReceive(t *testing.T) {
	d := New(Options{})
	a, b := &recorder{name: "a"}, &recorder{name: "b"}
	id := wire.MustStreamID(1, 0)
	if _, err := d.Subscribe(a, Exact(id)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe(b, Exact(id)); err != nil {
		t.Fatal(err)
	}
	d.Dispatch(del(id, 0))
	if a.count() != 1 || b.count() != 1 {
		t.Fatalf("a=%d b=%d, want 1 and 1", a.count(), b.count())
	}
}

func TestOverlappingSubscriptionsDeliverOnce(t *testing.T) {
	d := New(Options{})
	c := &recorder{name: "c"}
	id := wire.MustStreamID(1, 0)
	if _, err := d.Subscribe(c, Exact(id)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe(c, BySensor(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe(c, All()); err != nil {
		t.Fatal(err)
	}
	d.Dispatch(del(id, 0))
	if c.count() != 1 {
		t.Fatalf("delivered %d, want 1 (per-consumer dedup)", c.count())
	}
}

func TestOrphanRouting(t *testing.T) {
	d := New(Options{})
	var orphans []filtering.Delivery
	d.SetOrphanSink(func(dd filtering.Delivery) { orphans = append(orphans, dd) })
	c := &recorder{name: "c"}
	if _, err := d.Subscribe(c, Exact(wire.MustStreamID(1, 0))); err != nil {
		t.Fatal(err)
	}
	d.Dispatch(del(wire.MustStreamID(9, 9), 0)) // nobody subscribed
	d.Dispatch(del(wire.MustStreamID(1, 0), 0))
	if len(orphans) != 1 || orphans[0].Msg.Stream != wire.MustStreamID(9, 9) {
		t.Fatalf("orphans = %v", orphans)
	}
	if st := d.Stats(); st.Orphaned != 1 {
		t.Fatalf("Orphaned = %d", st.Orphaned)
	}
}

func TestUnsubscribe(t *testing.T) {
	d := New(Options{})
	c := &recorder{name: "c"}
	id, err := d.Subscribe(c, All())
	if err != nil {
		t.Fatal(err)
	}
	d.Dispatch(del(wire.MustStreamID(1, 0), 0))
	if !d.Unsubscribe(id) {
		t.Fatal("Unsubscribe returned false")
	}
	if d.Unsubscribe(id) {
		t.Fatal("second Unsubscribe returned true")
	}
	d.Dispatch(del(wire.MustStreamID(1, 0), 1))
	if c.count() != 1 {
		t.Fatalf("delivered %d after unsubscribe, want 1", c.count())
	}
	if st := d.Stats(); st.Subscriptions != 0 || st.Consumers != 0 {
		t.Fatalf("stats after unsubscribe: %+v", st)
	}
}

func TestSubscribeValidation(t *testing.T) {
	d := New(Options{})
	if _, err := d.Subscribe(nil, All()); !errors.Is(err, ErrBadPattern) {
		t.Errorf("nil consumer err = %v", err)
	}
	c := &recorder{name: "c"}
	if _, err := d.Subscribe(c, Pattern{Kind: KindWhere}); !errors.Is(err, ErrBadPattern) {
		t.Errorf("nil predicate err = %v", err)
	}
	if _, err := d.Subscribe(c, Pattern{Kind: 99}); !errors.Is(err, ErrBadPattern) {
		t.Errorf("bad kind err = %v", err)
	}
}

func TestDiscover(t *testing.T) {
	d := New(Options{})
	c := &recorder{name: "c"}
	if _, err := d.Subscribe(c, Exact(wire.MustStreamID(1, 0))); err != nil {
		t.Fatal(err)
	}
	d.Dispatch(del(wire.MustStreamID(1, 0), 0))
	d.Dispatch(del(wire.MustStreamID(1, 0), 1))
	d.Dispatch(del(wire.MustStreamID(5, 2), 0)) // unclaimed

	infos := d.Discover()
	if len(infos) != 2 {
		t.Fatalf("discovered %d streams, want 2", len(infos))
	}
	if infos[0].Stream != wire.MustStreamID(1, 0) || infos[0].Count != 2 || !infos[0].Subscribed {
		t.Errorf("first stream info: %+v", infos[0])
	}
	if infos[1].Stream != wire.MustStreamID(5, 2) || infos[1].Subscribed {
		t.Errorf("second stream info: %+v", infos[1])
	}
}

func TestAsyncDelivery(t *testing.T) {
	d := New(Options{Mode: ModeAsync})
	c := &recorder{name: "c"}
	if _, err := d.Subscribe(c, All()); err != nil {
		t.Fatal(err)
	}
	d.Start()
	for i := 0; i < 100; i++ {
		d.Dispatch(del(wire.MustStreamID(1, 0), wire.Seq(i)))
	}
	d.Stop() // drains queues
	if c.count() != 100 {
		t.Fatalf("delivered %d, want 100", c.count())
	}
}

func TestAsyncSubscribeAfterStart(t *testing.T) {
	d := New(Options{Mode: ModeAsync})
	d.Start()
	c := &recorder{name: "late"}
	if _, err := d.Subscribe(c, All()); err != nil {
		t.Fatal(err)
	}
	d.Dispatch(del(wire.MustStreamID(1, 0), 0))
	d.Stop()
	if c.count() != 1 {
		t.Fatalf("late subscriber got %d, want 1", c.count())
	}
}

func TestAsyncOverflowDropOldest(t *testing.T) {
	d := New(Options{Mode: ModeAsync, QueueCapacity: 4, Overflow: DropOldest})
	block := make(chan struct{})
	var mu sync.Mutex
	var got []wire.Seq
	slow := &ConsumerFunc{ConsumerName: "slow", Fn: func(dd filtering.Delivery) {
		<-block
		mu.Lock()
		got = append(got, dd.Msg.Seq)
		mu.Unlock()
	}}
	if _, err := d.Subscribe(slow, All()); err != nil {
		t.Fatal(err)
	}
	d.Start()
	// Fill beyond capacity while the worker is blocked. The worker takes
	// one delivery immediately, the queue holds 4, so dispatch 8: at least
	// 3 must be dropped (oldest first).
	for i := 0; i < 8; i++ {
		d.Dispatch(del(wire.MustStreamID(1, 0), wire.Seq(i)))
	}
	close(block)
	d.Stop()

	mu.Lock()
	defer mu.Unlock()
	if len(got) >= 8 {
		t.Fatalf("nothing dropped: got %d", len(got))
	}
	// The newest delivery must survive under DropOldest.
	last := got[len(got)-1]
	if last != 7 {
		t.Fatalf("newest delivery lost: last = %d, want 7", last)
	}
	if st := d.Stats(); st.Dropped == 0 {
		t.Fatal("Dropped not counted")
	}
}

func TestAsyncOverflowDropNewest(t *testing.T) {
	d := New(Options{Mode: ModeAsync, QueueCapacity: 2, Overflow: DropNewest})
	block := make(chan struct{})
	var mu sync.Mutex
	var got []wire.Seq
	slow := &ConsumerFunc{ConsumerName: "slow", Fn: func(dd filtering.Delivery) {
		<-block
		mu.Lock()
		got = append(got, dd.Msg.Seq)
		mu.Unlock()
	}}
	if _, err := d.Subscribe(slow, All()); err != nil {
		t.Fatal(err)
	}
	d.Start()
	for i := 0; i < 6; i++ {
		d.Dispatch(del(wire.MustStreamID(1, 0), wire.Seq(i)))
	}
	close(block)
	d.Stop()

	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 || got[0] != 0 {
		t.Fatalf("oldest delivery must survive DropNewest; got %v", got)
	}
}

func TestSlowConsumerDoesNotStallOthers(t *testing.T) {
	d := New(Options{Mode: ModeAsync}) // default queue capacity: no overflow for 50 messages
	release := make(chan struct{})
	slow := &ConsumerFunc{ConsumerName: "slow", Fn: func(filtering.Delivery) { <-release }}
	fast := &recorder{name: "fast"}
	if _, err := d.Subscribe(slow, All()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe(fast, All()); err != nil {
		t.Fatal(err)
	}
	d.Start()
	for i := 0; i < 50; i++ {
		d.Dispatch(del(wire.MustStreamID(1, 0), wire.Seq(i)))
	}
	// The fast consumer must see all 50 promptly despite the slow one.
	deadline := time.Now().Add(5 * time.Second)
	for fast.count() < 50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fast.count() != 50 {
		t.Fatalf("fast consumer got %d/50 while slow consumer blocked", fast.count())
	}
	close(release)
	d.Stop()
}

func TestDispatchAfterStopDropped(t *testing.T) {
	d := New(Options{Mode: ModeAsync})
	c := &recorder{name: "c"}
	if _, err := d.Subscribe(c, All()); err != nil {
		t.Fatal(err)
	}
	d.Start()
	d.Stop()
	d.Dispatch(del(wire.MustStreamID(1, 0), 0))
	if st := d.Stats(); st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
	if _, err := d.Subscribe(c, All()); !errors.Is(err, ErrStopped) {
		t.Fatalf("Subscribe after Stop err = %v", err)
	}
}

func TestStatsDeliveredCount(t *testing.T) {
	d := New(Options{})
	a, b := &recorder{name: "a"}, &recorder{name: "b"}
	if _, err := d.Subscribe(a, All()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe(b, All()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		d.Dispatch(del(wire.MustStreamID(1, 0), wire.Seq(i)))
	}
	st := d.Stats()
	if st.Dispatched != 3 || st.Delivered != 6 {
		t.Fatalf("Dispatched=%d Delivered=%d, want 3/6", st.Dispatched, st.Delivered)
	}
}

func TestSyncFanoutDeterministicOrder(t *testing.T) {
	d := New(Options{})
	var order []string
	mk := func(name string) Consumer {
		return &ConsumerFunc{ConsumerName: name, Fn: func(filtering.Delivery) { order = append(order, name) }}
	}
	for _, name := range []string{"first", "second", "third"} {
		if _, err := d.Subscribe(mk(name), All()); err != nil {
			t.Fatal(err)
		}
	}
	d.Dispatch(del(wire.MustStreamID(1, 0), 0))
	if len(order) != 3 || order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Fatalf("fan-out order = %v, want subscription order", order)
	}
}

package dispatch

import (
	"testing"
	"unsafe"

	"github.com/garnet-middleware/garnet/internal/metrics"
)

// TestShardPadding pins the anti-false-sharing layout: padded shards
// occupy whole cache lines with at least 8 bytes of tail slack (so the
// runtime's allocation header cannot make neighbours' live fields share
// a line), and in the live backing array no two shards' live bytes
// touch one line.
func TestShardPadding(t *testing.T) {
	sz, live := unsafe.Sizeof(paddedShard{}), unsafe.Sizeof(shard{})
	if sz%metrics.CacheLine != 0 {
		t.Fatalf("paddedShard size %d is not a multiple of %d", sz, metrics.CacheLine)
	}
	if sz-live < 8 {
		t.Fatalf("tail padding %d < 8: a shifted array base could share a boundary line", sz-live)
	}
	shards := newShards(4)
	addrs := make([]uintptr, len(shards))
	for i, sh := range shards {
		addrs[i] = uintptr(unsafe.Pointer(sh))
	}
	if msg := metrics.VerifyPadding(addrs, live); msg != "" {
		t.Fatal(msg)
	}
}

package dispatch

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// TestShardIndexInRange pins the multiply-shift hash to its contract:
// every sensor id maps into [0, n) for every shard count.
func TestShardIndexInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 16, 17, 100} {
		for _, id := range []wire.SensorID{0, 1, 2, 255, 1 << 20, wire.MaxSensorID} {
			got := id.Shard(n)
			if got < 0 || got >= n {
				t.Fatalf("SensorID(%d).Shard(%d) = %d, out of range", id, n, got)
			}
		}
	}
}

// TestShardSpread guards against a degenerate hash: 1024 sequential
// sensor ids across 16 shards must not pile into a few shards.
func TestShardSpread(t *testing.T) {
	const n = 16
	var hist [n]int
	for id := wire.SensorID(0); id < 1024; id++ {
		hist[id.Shard(n)]++
	}
	for i, c := range hist {
		if c == 0 {
			t.Fatalf("shard %d got no sensors out of 1024", i)
		}
		if c > 1024/n*3 {
			t.Fatalf("shard %d got %d of 1024 sensors (degenerate spread: %v)", i, c, hist)
		}
	}
}

// TestSingleShardEquivalence runs the sync suite's core expectations at
// Shards: 1 (the historical single-table configuration).
func TestSingleShardEquivalence(t *testing.T) {
	d := New(Options{Shards: 1})
	a, b := &recorder{name: "a"}, &recorder{name: "b"}
	if _, err := d.Subscribe(a, Exact(wire.MustStreamID(1, 0))); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe(b, All()); err != nil {
		t.Fatal(err)
	}
	d.Dispatch(del(wire.MustStreamID(1, 0), 0))
	d.Dispatch(del(wire.MustStreamID(2, 0), 0))
	if a.count() != 1 || b.count() != 2 {
		t.Fatalf("a=%d b=%d, want 1 and 2", a.count(), b.count())
	}
	if st := d.Stats(); st.Shards != 1 {
		t.Fatalf("Shards = %d, want 1", st.Shards)
	}
}

// TestConcurrentSubscribeUnsubscribePublish is the -race stress test:
// publishers hammer streams across every shard while other goroutines
// churn subscriptions (exact, by-sensor and wildcard) on the same
// dispatcher. Invariants: no data race, and the counter identity
// dispatched == delivered-causing + orphaned holds for a quiesced
// synchronous dispatcher.
func TestConcurrentSubscribeUnsubscribePublish(t *testing.T) {
	const (
		sensors    = 64
		publishers = 8
		churners   = 4
		msgsPer    = 500
	)
	d := New(Options{Shards: 8})
	keep := &recorder{name: "keep"} // one stable wildcard consumer
	if _, err := d.Subscribe(keep, All()); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < publishers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < msgsPer; i++ {
				sensor := wire.SensorID(i%sensors + 1)
				d.Dispatch(del(wire.MustStreamID(sensor, wire.StreamIndex(g)), wire.Seq(i)))
			}
		}(g)
	}
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			c := &recorder{name: fmt.Sprintf("churn-%d", g)}
			for i := 0; i < msgsPer; i++ {
				var pat Pattern
				switch i % 3 {
				case 0:
					pat = Exact(wire.MustStreamID(wire.SensorID(rng.Intn(sensors)+1), 0))
				case 1:
					pat = BySensor(wire.SensorID(rng.Intn(sensors) + 1))
				default:
					pat = Where(func(m wire.Message) bool { return m.Stream.Sensor()%2 == 0 })
				}
				id, err := d.Subscribe(c, pat)
				if err != nil {
					t.Error(err)
					return
				}
				if !d.Unsubscribe(id) {
					t.Error("Unsubscribe returned false for live id")
					return
				}
			}
		}(g)
	}
	wg.Wait()

	total := int64(publishers * msgsPer)
	st := d.Stats()
	if st.Dispatched != total {
		t.Fatalf("Dispatched = %d, want %d", st.Dispatched, total)
	}
	// The stable wildcard consumer saw every message.
	if keep.count() != int(total) {
		t.Fatalf("stable consumer got %d of %d", keep.count(), total)
	}
	if st.Orphaned != 0 {
		t.Fatalf("Orphaned = %d with an All() subscriber live", st.Orphaned)
	}
	if st.Subscriptions != 1 || st.Consumers != 1 {
		t.Fatalf("after churn: %d subs, %d consumers, want 1/1", st.Subscriptions, st.Consumers)
	}
}

// batchRecorder records deliveries and the size of each batch it got.
type batchRecorder struct {
	name    string
	mu      sync.Mutex
	got     []filtering.Delivery
	batches []int
}

func (r *batchRecorder) Name() string { return r.name }
func (r *batchRecorder) Consume(d filtering.Delivery) {
	r.ConsumeBatch([]filtering.Delivery{d})
}
func (r *batchRecorder) ConsumeBatch(ds []filtering.Delivery) {
	r.mu.Lock()
	r.got = append(r.got, ds...) // copies: the slice is reused by the drainer
	r.batches = append(r.batches, len(ds))
	r.mu.Unlock()
}
func (r *batchRecorder) seqs() []wire.Seq {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]wire.Seq, len(r.got))
	for i, d := range r.got {
		out[i] = d.Msg.Seq
	}
	return out
}

// TestBatchedDrainCoalesces verifies the drainer hands a BatchConsumer
// multi-delivery batches (bounded by BatchSize) once a backlog exists,
// in FIFO order.
func TestBatchedDrainCoalesces(t *testing.T) {
	const n = 200
	d := New(Options{Mode: ModeAsync, QueueCapacity: n, BatchSize: 16})
	release := make(chan struct{})
	r := &batchRecorder{name: "batcher"}
	gate := &gatedBatchConsumer{inner: r, release: release}
	if _, err := d.Subscribe(gate, All()); err != nil {
		t.Fatal(err)
	}
	d.Start()
	for i := 0; i < n; i++ {
		d.Dispatch(del(wire.MustStreamID(1, 0), wire.Seq(i)))
	}
	close(release) // let the drainer rip through the backlog
	d.Stop()

	seqs := r.seqs()
	if len(seqs) != n {
		t.Fatalf("delivered %d of %d", len(seqs), n)
	}
	for i, s := range seqs {
		if s != wire.Seq(i) {
			t.Fatalf("order broken at %d: got seq %d", i, s)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	maxBatch, coalesced := 0, false
	for _, b := range r.batches {
		if b > maxBatch {
			maxBatch = b
		}
		if b > 1 {
			coalesced = true
		}
	}
	if !coalesced {
		t.Fatalf("no batch larger than 1 despite a %d-message backlog (batches: %v)", n, r.batches)
	}
	if maxBatch > 16 {
		t.Fatalf("batch of %d exceeds BatchSize 16", maxBatch)
	}
}

// gatedBatchConsumer blocks the first batch until release is closed, so a
// backlog builds behind it.
type gatedBatchConsumer struct {
	inner   *batchRecorder
	release chan struct{}
	once    sync.Once
}

func (g *gatedBatchConsumer) Name() string { return g.inner.Name() }
func (g *gatedBatchConsumer) Consume(d filtering.Delivery) {
	g.ConsumeBatch([]filtering.Delivery{d})
}
func (g *gatedBatchConsumer) ConsumeBatch(ds []filtering.Delivery) {
	g.once.Do(func() { <-g.release })
	g.inner.ConsumeBatch(ds)
}

// TestBatchFallbackAdapter: a plain Consumer on a batching dispatcher
// still receives every delivery one Consume call at a time, in order.
func TestBatchFallbackAdapter(t *testing.T) {
	const n = 100
	d := New(Options{Mode: ModeAsync, QueueCapacity: n, BatchSize: 16})
	c := &recorder{name: "plain"}
	if _, err := d.Subscribe(c, All()); err != nil {
		t.Fatal(err)
	}
	d.Start()
	for i := 0; i < n; i++ {
		d.Dispatch(del(wire.MustStreamID(1, 0), wire.Seq(i)))
	}
	d.Stop()
	if c.count() != n {
		t.Fatalf("delivered %d of %d", c.count(), n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, dd := range c.got {
		if dd.Msg.Seq != wire.Seq(i) {
			t.Fatalf("order broken at %d: got seq %d", i, dd.Msg.Seq)
		}
	}
}

// TestShardedBatchedMatchesSingleTableSync is the equivalence property
// test: the same randomised subscription set and publish sequence run
// through (a) the synchronous single-shard (historical single-table) path
// and (b) the sharded asynchronous batched path must produce the
// identical per-consumer delivery sequence. Queues are sized so nothing
// overflows; async consumers are independent drainers, so equality is
// per consumer, not global.
func TestShardedBatchedMatchesSingleTableSync(t *testing.T) {
	const (
		consumers = 12
		sensors   = 10
		msgs      = 2000
	)
	rng := rand.New(rand.NewSource(7))

	type plan struct {
		patterns [][]Pattern // per consumer
		streams  []wire.StreamID
		seqs     []wire.Seq
	}
	p := plan{patterns: make([][]Pattern, consumers)}
	for c := 0; c < consumers; c++ {
		nsubs := rng.Intn(3) + 1
		for s := 0; s < nsubs; s++ {
			switch rng.Intn(4) {
			case 0:
				p.patterns[c] = append(p.patterns[c],
					Exact(wire.MustStreamID(wire.SensorID(rng.Intn(sensors)+1), wire.StreamIndex(rng.Intn(2)))))
			case 1:
				p.patterns[c] = append(p.patterns[c], BySensor(wire.SensorID(rng.Intn(sensors)+1)))
			case 2:
				p.patterns[c] = append(p.patterns[c], All())
			default:
				k := wire.SensorID(rng.Intn(3))
				p.patterns[c] = append(p.patterns[c], Where(func(m wire.Message) bool {
					return m.Stream.Sensor()%3 == k
				}))
			}
		}
	}
	for i := 0; i < msgs; i++ {
		p.streams = append(p.streams,
			wire.MustStreamID(wire.SensorID(rng.Intn(sensors)+1), wire.StreamIndex(rng.Intn(2))))
		p.seqs = append(p.seqs, wire.Seq(i))
	}

	run := func(opts Options) [][]wire.Seq {
		d := New(opts)
		recs := make([]*batchRecorder, consumers)
		for c := 0; c < consumers; c++ {
			recs[c] = &batchRecorder{name: fmt.Sprintf("c%d", c)}
			for _, pat := range p.patterns[c] {
				if _, err := d.Subscribe(recs[c], pat); err != nil {
					t.Fatal(err)
				}
			}
		}
		d.Start()
		for i := range p.streams {
			d.Dispatch(del(p.streams[i], p.seqs[i]))
		}
		d.Stop()
		out := make([][]wire.Seq, consumers)
		for c := range recs {
			out[c] = recs[c].seqs()
		}
		return out
	}

	ref := run(Options{Mode: ModeSync, Shards: 1})
	got := run(Options{Mode: ModeAsync, Shards: 8, BatchSize: 16, QueueCapacity: msgs})
	for c := range ref {
		if !reflect.DeepEqual(ref[c], got[c]) {
			t.Fatalf("consumer %d: sharded+batched sequence (%d msgs) diverges from sync single-table (%d msgs)",
				c, len(got[c]), len(ref[c]))
		}
	}
}

// TestDroppedByConsumerAccounting: overflow drops are attributed to the
// consumer that shed them. A blocked consumer with a tiny queue must shed
// most of a burst; a roomy consumer must shed nothing; the per-consumer
// breakdown must sum to the total and conserve deliveries per consumer.
func TestDroppedByConsumerAccounting(t *testing.T) {
	const n = 50
	d := New(Options{Mode: ModeAsync, QueueCapacity: 2, Overflow: DropNewest})
	block := make(chan struct{})
	var slowGot, fastGot atomic.Int64
	slow := &ConsumerFunc{ConsumerName: "slow", Fn: func(filtering.Delivery) {
		<-block
		slowGot.Add(1)
	}}
	// The roomy consumer absorbs the whole burst in one ConsumeBatch-able
	// queue: gate the first delivery so the publisher finishes first, with
	// capacity for everything — it must record zero drops.
	roomyGate := make(chan struct{})
	roomy := &ConsumerFunc{ConsumerName: "roomy", Fn: func(filtering.Delivery) {
		<-roomyGate
		fastGot.Add(1)
	}}
	if _, err := d.Subscribe(slow, All()); err != nil {
		t.Fatal(err)
	}
	rd := New(Options{Mode: ModeAsync, QueueCapacity: n + 1})
	if _, err := rd.Subscribe(roomy, All()); err != nil {
		t.Fatal(err)
	}
	d.Start()
	rd.Start()
	for i := 0; i < n; i++ {
		dd := del(wire.MustStreamID(1, 0), wire.Seq(i))
		d.Dispatch(dd)
		rd.Dispatch(dd)
	}
	close(block)
	close(roomyGate)
	d.Stop()
	rd.Stop()

	st, rst := d.Stats(), rd.Stats()
	if st.Dropped == 0 {
		t.Fatal("expected overflow drops from the slow consumer")
	}
	if got := st.DroppedByConsumer["slow"]; got != st.Dropped {
		t.Fatalf("DroppedByConsumer[slow] = %d, want all %d drops", got, st.Dropped)
	}
	if rst.Dropped != 0 || rst.DroppedByConsumer["roomy"] != 0 {
		t.Fatalf("roomy consumer dropped: %d (by-consumer %v)", rst.Dropped, rst.DroppedByConsumer)
	}
	// Conservation per consumer: admitted + dropped == dispatched.
	if admitted := slowGot.Load(); admitted+st.Dropped != n {
		t.Fatalf("slow consumer: admitted %d + dropped %d != %d dispatched", admitted, st.Dropped, n)
	}
	if fastGot.Load() != n {
		t.Fatalf("roomy consumer got %d of %d", fastGot.Load(), n)
	}
}

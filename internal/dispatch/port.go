package dispatch

import (
	"sync"
	"sync/atomic"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/metrics"
)

var portSeq atomic.Uint64

// port is one consumer's delivery endpoint: in async mode a bounded FIFO
// drained by a dedicated worker goroutine; in sync mode just the consumer
// reference (the queue fields stay unused).
type port struct {
	seq      uint64 // creation order, for deterministic sync fan-out
	consumer Consumer
	refs     int // live subscriptions; guarded by Dispatcher.mu

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []filtering.Delivery // ring buffer
	head     int
	count    int
	capacity int
	overflow OverflowPolicy
	closed   bool
	running  bool

	dropped *metrics.Counter // shared dispatcher counter
}

func newPort(c Consumer, capacity int, overflow OverflowPolicy, dropped *metrics.Counter) *port {
	p := &port{
		seq:      portSeq.Add(1),
		consumer: c,
		queue:    make([]filtering.Delivery, capacity),
		capacity: capacity,
		overflow: overflow,
		dropped:  dropped,
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// enqueue adds a delivery, applying the overflow policy when full. It
// reports whether the new delivery was admitted.
func (p *port) enqueue(d filtering.Delivery) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.dropped.Inc()
		return false
	}
	if p.count == p.capacity {
		p.dropped.Inc()
		if p.overflow == DropNewest {
			return false
		}
		// DropOldest: advance head, overwrite.
		p.head = (p.head + 1) % p.capacity
		p.count--
	}
	p.queue[(p.head+p.count)%p.capacity] = d
	p.count++
	p.cond.Signal()
	return true
}

// run drains the queue until the port is closed and empty.
func (p *port) run() {
	for {
		p.mu.Lock()
		for p.count == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.count == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		d := p.queue[p.head]
		p.queue[p.head] = filtering.Delivery{} // release payload reference
		p.head = (p.head + 1) % p.capacity
		p.count--
		p.mu.Unlock()
		p.consumer.Consume(d)
	}
}

// close marks the port finished; the worker exits after draining.
func (p *port) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

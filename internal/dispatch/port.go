package dispatch

import (
	"sync"
	"sync/atomic"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/metrics"
)

var portSeq atomic.Uint64

// port is one consumer's delivery endpoint: in async mode a bounded FIFO
// drained by a dedicated worker goroutine; in sync mode just the consumer
// reference (the queue fields stay unused).
//
// The drainer coalesces up to batchSize queued deliveries per wakeup.
// Consumers implementing BatchConsumer receive the whole batch in one
// ConsumeBatch call; others get the batch replayed through Consume one
// delivery at a time, so batching is transparent to existing consumers.
type port struct {
	seq      uint64 // creation order, for deterministic sync fan-out
	consumer Consumer
	batcher  BatchConsumer // non-nil when consumer supports batches
	refs     int           // live subscriptions; guarded by Dispatcher.mu

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []filtering.Delivery // ring buffer
	head      int
	count     int
	capacity  int
	batchSize int
	overflow  OverflowPolicy
	closed    bool
	running   bool

	dropped  *metrics.Counter // shared dispatcher total
	selfDrop *metrics.Counter // this consumer's overflow discards
}

func newPort(c Consumer, capacity, batchSize int, overflow OverflowPolicy, dropped, selfDrop *metrics.Counter) *port {
	if batchSize > capacity {
		batchSize = capacity
	}
	p := &port{
		seq:       portSeq.Add(1),
		consumer:  c,
		queue:     make([]filtering.Delivery, capacity),
		capacity:  capacity,
		batchSize: batchSize,
		overflow:  overflow,
		dropped:   dropped,
		selfDrop:  selfDrop,
	}
	p.batcher, _ = c.(BatchConsumer)
	p.cond = sync.NewCond(&p.mu)
	return p
}

// enqueue adds a delivery, applying the overflow policy when full. It
// reports whether the new delivery was admitted.
func (p *port) enqueue(d filtering.Delivery) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.dropped.Inc()
		p.selfDrop.Inc()
		return false
	}
	if p.count == p.capacity {
		p.dropped.Inc()
		p.selfDrop.Inc()
		if p.overflow == DropNewest {
			return false
		}
		// DropOldest: advance head, overwrite.
		p.head = (p.head + 1) % p.capacity
		p.count--
	}
	p.queue[(p.head+p.count)%p.capacity] = d
	p.count++
	p.cond.Signal()
	return true
}

// run drains the queue until the port is closed and empty, taking up to
// batchSize deliveries per wakeup. The batch buffer is reused between
// wakeups; BatchConsumer implementations must not retain it.
func (p *port) run() {
	batch := make([]filtering.Delivery, 0, p.batchSize)
	for {
		p.mu.Lock()
		for p.count == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.count == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		n := p.count
		if n > p.batchSize {
			n = p.batchSize
		}
		batch = batch[:0]
		for i := 0; i < n; i++ {
			batch = append(batch, p.queue[p.head])
			p.queue[p.head] = filtering.Delivery{} // release payload reference
			p.head = (p.head + 1) % p.capacity
		}
		p.count -= n
		p.mu.Unlock()

		if p.batcher != nil {
			p.batcher.ConsumeBatch(batch)
			continue
		}
		for _, d := range batch {
			p.consumer.Consume(d)
		}
	}
}

// close marks the port finished; the worker exits after draining.
func (p *port) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

package dispatch

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/ring"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var portSeq atomic.Uint64

// port is one consumer's delivery endpoint: in async mode a bounded FIFO
// drained by a dedicated worker goroutine; in sync mode just the consumer
// reference (the queue fields stay unused).
//
// # Async fast path
//
// The steady-state async queue is a lock-free MPSC ring: publishing
// shards CAS-claim a slot and publish it with a sequence stamp, and the
// single drainer batch-consumes without taking any lock. Waking a parked
// drainer is a two-state atomic plus a buffered-channel token
// (ring.Waiter) — one atomic load per enqueue while the drainer runs —
// instead of a sync.Cond signal (an internal lock acquisition) per
// enqueue.
//
// # Locked fallback
//
// The catch-up machinery (SubscribeWithReplay's gate, the per-stream
// replay floors) and port shutdown need enqueue-time decisions that read
// mutable per-port state, so while any of them is active the port falls
// back to the retained mutex-guarded queue: enterFallback flips the mode
// atomically and waits out in-flight ring enqueues, after which every
// producer observes fallback and goes through mu. Once a port has gated
// it stays on the locked path: a non-empty replay leaves floors, which
// live for the port's lifetime, and the catch-up cases are rare,
// consumer-initiated transitions where the ring's per-message win is
// noise. The drainer consumes the ring before the locked queue; because
// queue entries are only produced after enterFallback's barrier, every
// ring entry predates every queue entry and FIFO order is preserved
// across the handoff (pinned by TestRingMutexPortEquivalenceProperty and
// the gate↔ring stress tests).
//
// The drainer coalesces up to batchSize queued deliveries per wakeup.
// Consumers implementing BatchConsumer receive the whole batch in one
// ConsumeBatch call; others get the batch replayed through Consume one
// delivery at a time, so batching is transparent to existing consumers.
type port struct {
	seq      uint64 // creation order, for deterministic sync fan-out
	consumer Consumer
	batcher  BatchConsumer // non-nil when consumer supports batches
	refs     int           // live subscriptions; guarded by Dispatcher.mu

	// Lock-free delivery ring (async mode without ForceLockedQueue; nil
	// otherwise). fallback routes producers to the locked path below;
	// inflight counts producers inside a ring enqueue so enterFallback
	// can wait them out. waiter parks/wakes the drainer for both paths.
	ring     *ring.Ring[filtering.Delivery]
	fallback atomic.Bool
	inflight atomic.Int64
	waiter   *ring.Waiter

	mu        sync.Mutex
	queue     []filtering.Delivery // locked-path ring buffer, lazily sized
	head      int
	count     int
	capacity  int
	batchSize int
	overflow  OverflowPolicy
	closed    bool
	running   bool

	// Catch-up gate (SubscribeWithReplay): while gateCount > 0, incoming
	// deliveries divert to held instead of the queue (async) or the
	// consumer (sync), so a replay batch can be placed ahead of every
	// live delivery that raced the subscription. gated mirrors
	// gateCount != 0 so the sync hot path checks it without taking mu.
	gateCount int
	gated     atomic.Bool
	held      []filtering.Delivery

	// Replay floors, one per stream this port ever caught up on: a
	// delivery whose StoreSeq is at or below the floor was already
	// covered by a replay batch and is dropped — including deliveries
	// teed into the store before the replay fetch but dispatched only
	// after the gate closed, the tail of the claim-boundary race.
	// hasFloors mirrors len(floors) > 0 for the lock-free sync check.
	floors    []streamFloor
	hasFloors atomic.Bool

	dropped  *metrics.Counter // shared dispatcher total
	selfDrop *metrics.Counter // this consumer's overflow discards
}

func newPort(c Consumer, capacity, batchSize int, overflow OverflowPolicy, lockFree bool, dropped, selfDrop *metrics.Counter) *port {
	if batchSize > capacity {
		batchSize = capacity
	}
	p := &port{
		seq:       portSeq.Add(1),
		consumer:  c,
		capacity:  capacity,
		batchSize: batchSize,
		overflow:  overflow,
		waiter:    ring.NewWaiter(),
		dropped:   dropped,
		selfDrop:  selfDrop,
	}
	if lockFree {
		p.ring = ring.New[filtering.Delivery](capacity)
	}
	p.batcher, _ = c.(BatchConsumer)
	return p
}

// seqRange is an inclusive store-sequence interval.
type seqRange struct{ lo, hi uint64 }

// streamFloor records what replay batches have covered on one stream:
// every sequence at or below upto EXCEPT the holes — sequence gaps the
// batches did not contain (radio losses at fetch time). A delivery below
// the floor and not in a hole is a duplicate of replayed history; a
// hole-filling delivery (late gap recovery) is new data and passes.
type streamFloor struct {
	stream wire.StreamID
	upto   uint64
	holes  []seqRange // ascending, non-overlapping
}

func holesContain(holes []seqRange, seq uint64) bool {
	for _, h := range holes {
		if seq < h.lo {
			return false
		}
		if seq <= h.hi {
			return true
		}
	}
	return false
}

// batchHoles returns the sequence gaps between consecutive entries of an
// ascending replay batch that lie strictly above the "above" mark.
func batchHoles(batch []filtering.Delivery, above uint64) []seqRange {
	var out []seqRange
	for i := 1; i < len(batch); i++ {
		lo, hi := batch[i-1].StoreSeq+1, batch[i].StoreSeq-1
		if lo <= above {
			lo = above + 1
		}
		if lo <= hi {
			out = append(out, seqRange{lo, hi})
		}
	}
	return out
}

// subtractSeq removes one sequence from a hole set (a replay batch
// re-delivered it, so it is covered now), splitting ranges as needed.
func subtractSeq(holes []seqRange, seq uint64) []seqRange {
	for i, h := range holes {
		if seq < h.lo || seq > h.hi {
			continue
		}
		out := append([]seqRange(nil), holes[:i]...)
		if h.lo < seq {
			out = append(out, seqRange{h.lo, seq - 1})
		}
		if seq < h.hi {
			out = append(out, seqRange{seq + 1, h.hi})
		}
		return append(out, holes[i+1:]...)
	}
	return holes
}

// belowFloorLocked reports whether d was already covered by a replay
// batch on its stream. Caller holds mu.
func (p *port) belowFloorLocked(d filtering.Delivery) bool {
	if d.StoreSeq == 0 {
		return false
	}
	for i := range p.floors {
		if p.floors[i].stream == d.Msg.Stream {
			return d.StoreSeq <= p.floors[i].upto &&
				!holesContain(p.floors[i].holes, d.StoreSeq)
		}
	}
	return false
}

// raiseFloorLocked folds an ascending non-empty replay batch into the
// stream's floor. A fresh floor covers everything up to the batch's last
// sequence except the gaps inside the batch (never-replayed hole fills
// must still be deliverable). Merging an existing floor removes old
// holes the new batch re-delivered and marks as holes both the new
// batch's gaps and any span between the old floor and the new batch that
// neither covered. Caller holds mu.
func (p *port) raiseFloorLocked(stream wire.StreamID, batch []filtering.Delivery) {
	lo, hi := batch[0].StoreSeq, batch[len(batch)-1].StoreSeq
	for i := range p.floors {
		f := &p.floors[i]
		if f.stream != stream {
			continue
		}
		for _, d := range batch {
			if d.StoreSeq <= f.upto {
				f.holes = subtractSeq(f.holes, d.StoreSeq)
			}
		}
		if hi <= f.upto {
			return
		}
		if lo > f.upto+1 {
			f.holes = append(f.holes, seqRange{f.upto + 1, lo - 1})
		}
		f.holes = append(f.holes, batchHoles(batch, f.upto)...)
		f.upto = hi
		return
	}
	p.floors = append(p.floors, streamFloor{
		stream: stream, upto: hi, holes: batchHoles(batch, 0),
	})
	p.hasFloors.Store(true)
}

// enterFallback routes all subsequent producers to the locked path and
// waits out producers already inside a ring enqueue. On return, every
// new enqueue observes the gate/floor/closed state under mu, and the
// only deliveries still reaching the consumer via the ring predate the
// barrier — the drainer consumes them before anything the caller
// enqueues under mu afterwards. The wait is bounded: a ring enqueue is a
// handful of atomic operations with no locks or callbacks inside.
func (p *port) enterFallback() {
	if p.ring == nil {
		return
	}
	p.fallback.Store(true)
	for p.inflight.Load() != 0 {
		runtime.Gosched()
	}
}

// enqueue adds a delivery, applying the overflow policy when full. It
// reports whether the new delivery was admitted; deliveries diverted to
// the catch-up gate report false and are accounted when the gate flushes,
// and deliveries below a replay floor are silently suppressed as
// duplicates of already-replayed history.
//
// Steady state takes the lock-free ring: one fallback load, a CAS-claimed
// slot, a publication store and a parked-check on the waiter — no mutex,
// no cond. Gated/floored/closing ports (fallback set, with the inflight
// barrier making the flip safe) take the retained locked path, whose
// behaviour is unchanged.
func (p *port) enqueue(d filtering.Delivery) bool {
	if p.ring != nil && !p.fallback.Load() {
		p.inflight.Add(1)
		if !p.fallback.Load() {
			admitted := p.enqueueRing(d)
			p.inflight.Add(-1)
			return admitted
		}
		// enterFallback won the race: this producer is counted in
		// inflight but must not touch the ring anymore.
		p.inflight.Add(-1)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gateCount > 0 {
		p.held = append(p.held, d)
		return false
	}
	if p.belowFloorLocked(d) {
		return false
	}
	return p.enqueueLocked(d)
}

// enqueueBatch adds a run of deliveries and reports how many were
// admitted. Per-message decisions — gate diversion, floor suppression,
// both overflow policies — are identical to len(ds) serial enqueue
// calls; what is amortized is the fixed cost: the ring path claims
// multi-slot runs with one CAS (ring.TryEnqueueN) and wakes the drainer
// once per run, and the locked fallback takes mu once per run instead
// of once per message. The inflight barrier spans the whole run, which
// keeps enterFallback's wait bounded by one batch instead of one
// enqueue — still lock-free and callback-free throughout.
func (p *port) enqueueBatch(ds []filtering.Delivery) int {
	if len(ds) == 0 {
		return 0
	}
	if p.ring != nil && !p.fallback.Load() {
		p.inflight.Add(1)
		if !p.fallback.Load() {
			admitted := p.enqueueRingBatch(ds)
			p.inflight.Add(-1)
			return admitted
		}
		// enterFallback won the race: this producer is counted in
		// inflight but must not touch the ring anymore.
		p.inflight.Add(-1)
	}
	admitted := 0
	p.mu.Lock()
	for _, d := range ds {
		if p.gateCount > 0 {
			p.held = append(p.held, d)
			continue
		}
		if p.belowFloorLocked(d) {
			continue
		}
		if p.enqueueLocked(d) {
			admitted++
		}
	}
	p.mu.Unlock()
	return admitted
}

// enqueueRingBatch is the lock-free batch admission path: multi-slot
// claims, with the overflow policy applied per message at the full
// boundary exactly as enqueueRing would — DropNewest discards the
// message that found the ring full and moves on (a concurrent drain may
// admit the next), DropOldest dequeues from the head until the message
// fits.
func (p *port) enqueueRingBatch(ds []filtering.Delivery) int {
	admitted := 0
	for i := 0; i < len(ds); {
		n := p.ring.TryEnqueueN(ds[i:])
		if n > 0 {
			admitted += n
			i += n
			continue
		}
		if p.overflow == DropNewest {
			p.dropped.Inc()
			p.selfDrop.Inc()
			i++
			continue
		}
		// DropOldest: discard from the head until the run fits again.
		if _, ok := p.ring.TryDequeue(); ok {
			p.dropped.Inc()
			p.selfDrop.Inc()
		}
	}
	if admitted > 0 {
		p.waiter.Wake()
	}
	return admitted
}

// enqueueRing is the lock-free admission path. Gate, floor and closed
// checks are not needed here: any of those conditions sets fallback
// (with the barrier) before becoming observable, so a producer that got
// this far predates them all.
func (p *port) enqueueRing(d filtering.Delivery) bool {
	if p.overflow == DropNewest {
		if !p.ring.TryEnqueue(d) {
			p.dropped.Inc()
			p.selfDrop.Inc()
			return false
		}
	} else {
		// DropOldest: discard from the head until the new delivery fits.
		// The producer performs the dequeue itself (the ring supports
		// concurrent dequeuers), keeping the policy lock-free.
		for !p.ring.TryEnqueue(d) {
			if _, ok := p.ring.TryDequeue(); ok {
				p.dropped.Inc()
				p.selfDrop.Inc()
			}
		}
	}
	p.waiter.Wake()
	return true
}

// queueBufLocked sizes the locked-path buffer on first use: ring-mode
// ports only need it after a catch-up gate, and sync-mode ports never
// do. Caller holds mu.
func (p *port) queueBufLocked() {
	if len(p.queue) == 0 {
		p.queue = make([]filtering.Delivery, p.capacity)
	}
}

// enqueueLocked is enqueue past the gate and floor checks. Caller holds
// mu. The queue's physical ring can be larger than the capacity bound
// after a catch-up burst (see enqueueGrowLocked); the overflow policy
// keys on the logical capacity.
func (p *port) enqueueLocked(d filtering.Delivery) bool {
	if p.closed {
		p.dropped.Inc()
		p.selfDrop.Inc()
		return false
	}
	p.queueBufLocked()
	if p.count >= p.capacity {
		p.dropped.Inc()
		p.selfDrop.Inc()
		if p.overflow == DropNewest {
			return false
		}
		// DropOldest: advance head, overwrite.
		p.head = (p.head + 1) % len(p.queue)
		p.count--
	}
	p.queue[(p.head+p.count)%len(p.queue)] = d
	p.count++
	p.waiter.Wake()
	return true
}

// enqueueGrowLocked admits d unconditionally, doubling the physical ring
// when full instead of applying the overflow policy — used for the
// catch-up replay batch and its held backlog, which must not evict each
// other while being placed. The queue drains back under the capacity
// bound as the worker catches up. Caller holds mu.
func (p *port) enqueueGrowLocked(d filtering.Delivery) bool {
	if p.closed {
		p.dropped.Inc()
		p.selfDrop.Inc()
		return false
	}
	p.queueBufLocked()
	if p.count == len(p.queue) {
		grown := make([]filtering.Delivery, 2*len(p.queue))
		for i := 0; i < p.count; i++ {
			grown[i] = p.queue[(p.head+i)%len(p.queue)]
		}
		p.queue = grown
		p.head = 0
	}
	p.queue[(p.head+p.count)%len(p.queue)] = d
	p.count++
	p.waiter.Wake()
	return true
}

// tryHold diverts a sync-mode delivery into the catch-up gate, or drops
// it when a replay floor already covers it. It reports false when
// neither applies — the gate closed between the caller's lock-free check
// and the lock acquisition — in which case the caller delivers normally.
func (p *port) tryHold(d filtering.Delivery) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gateCount > 0 {
		p.held = append(p.held, d)
		return true
	}
	return p.belowFloorLocked(d)
}

// beginGate opens the catch-up gate. Called under Dispatcher.mu before
// the subscription becomes visible to Dispatch, so no live delivery for
// it can reach the consumer ahead of the replay batch. On ring-mode
// ports it first forces the locked path, so every delivery from here on
// makes its gate/floor decision under mu; deliveries already in the ring
// predate the gate and drain ahead of the replay batch, exactly like
// pre-gate entries of the locked queue.
func (p *port) beginGate() {
	p.enterFallback()
	p.mu.Lock()
	p.gateCount++
	p.gated.Store(true)
	p.mu.Unlock()
}

// endGate raises the stream's replay floor to the batch's high-water
// mark, places the replay batch, flushes the held live deliveries that
// are not duplicates of it, and closes the gate. The floor outlives the
// gate, so a delivery teed into the store before the replay fetch but
// dispatched only after the gate closed is still screened out — the
// seq-based dedupe at the claim boundary. Replayed deliveries are not
// counted as dispatcher deliveries (they never entered Dispatch);
// flushed held ones are, on sh. In async mode everything goes through
// the queue under one lock acquisition, growing the ring past the
// capacity bound rather than letting the batch evict itself. In sync
// mode the replay and held batches are delivered inline on the calling
// goroutine, draining repeatedly until no new deliveries arrived while
// the previous batch was being consumed.
func (p *port) endGate(replay []filtering.Delivery, stream wire.StreamID, syncMode bool, sh *shard) {
	if !syncMode {
		p.mu.Lock()
		if len(replay) > 0 {
			p.raiseFloorLocked(stream, replay)
		}
		for _, d := range replay {
			p.enqueueGrowLocked(d)
		}
		if p.gateCount > 1 {
			// Another catch-up on this port is still mid-replay: its
			// endGate flushes the held backlog once every floor is in
			// place. Flushing now would deliver its stream's held live
			// messages ahead of its replay batch.
			p.gateCount--
			p.mu.Unlock()
			return
		}
		for _, d := range p.held {
			if p.belowFloorLocked(d) {
				continue
			}
			if p.enqueueGrowLocked(d) {
				sh.delivered.Inc()
			}
		}
		p.held = nil
		p.gateCount = 0
		p.gated.Store(false)
		p.mu.Unlock()
		return
	}
	p.mu.Lock()
	if p.closed {
		// Unsubscribe raced the catch-up: the consumer must not see the
		// replay batch or the held backlog after close. Account both as
		// drops, the way close() drains held, and release the gate.
		p.dropClosedGateLocked(len(replay))
		p.mu.Unlock()
		return
	}
	if len(replay) > 0 {
		p.raiseFloorLocked(stream, replay)
	}
	p.mu.Unlock()
	for _, d := range replay {
		p.consumer.Consume(d)
	}
	for {
		p.mu.Lock()
		if p.closed {
			// Closed while the previous batch was being consumed; any
			// held deliveries that accumulated since close() reach no
			// consumer.
			p.dropClosedGateLocked(0)
			p.mu.Unlock()
			return
		}
		if p.gateCount > 1 {
			// See the async branch: the last gate standing drains held.
			p.gateCount--
			p.mu.Unlock()
			return
		}
		held := p.held
		p.held = nil
		if len(held) == 0 {
			p.gateCount = 0
			p.gated.Store(false)
			p.mu.Unlock()
			return
		}
		var keep []filtering.Delivery
		for _, d := range held {
			if !p.belowFloorLocked(d) {
				keep = append(keep, d)
			}
		}
		p.mu.Unlock()
		for _, d := range keep {
			sh.delivered.Inc()
			p.consumer.Consume(d)
		}
	}
}

// dropClosedGateLocked accounts a raced-out catch-up on a closed port:
// nReplay replay deliveries plus whatever held backlog accumulated after
// close() count as drops, and the gate this endGate owned is released.
// Caller holds mu; p.closed is true.
func (p *port) dropClosedGateLocked(nReplay int) {
	for i := 0; i < nReplay+len(p.held); i++ {
		p.dropped.Inc()
		p.selfDrop.Inc()
	}
	p.held = nil
	if p.gateCount > 1 {
		p.gateCount--
		return
	}
	p.gateCount = 0
	p.gated.Store(false)
}

// takeLockedBatch moves up to len(batch) deliveries from the locked
// queue into batch and reports how many it took plus whether the port is
// closed with the queue drained.
func (p *port) takeLockedBatch(batch []filtering.Delivery) (n int, done bool) {
	p.mu.Lock()
	for n < len(batch) && p.count > 0 {
		batch[n] = p.queue[p.head]
		p.queue[p.head] = filtering.Delivery{} // release payload reference
		p.head = (p.head + 1) % len(p.queue)
		p.count--
		n++
	}
	done = p.closed && p.count == 0
	p.mu.Unlock()
	return n, done
}

// hasWork reports whether the drainer has anything to do (or must exit),
// re-checked between Waiter.Prepare and Waiter.Wait so a wakeup racing
// the park is never lost.
func (p *port) hasWork() bool {
	if p.ring != nil && !p.ring.Empty() {
		return true
	}
	p.mu.Lock()
	has := p.count > 0 || p.closed
	p.mu.Unlock()
	return has
}

// run drains the port until it is closed and empty, taking up to
// batchSize deliveries per wakeup — from the lock-free ring first, then
// from the locked queue. Every queue entry is produced after
// enterFallback's barrier, i.e. after every ring entry, so ring-first
// consumption preserves FIFO across the locked↔lock-free handoff; at
// steady state exactly one of the two holds data and the other costs one
// atomic load (ring) or one uncontended lock (queue) per wakeup. The
// batch buffer is reused between wakeups; BatchConsumer implementations
// must not retain it.
func (p *port) run() {
	batch := make([]filtering.Delivery, p.batchSize)
	for {
		n := 0
		if p.ring != nil {
			n = p.ring.DequeueBatch(batch)
		}
		if n == 0 {
			var done bool
			n, done = p.takeLockedBatch(batch)
			if n == 0 {
				if done && (p.ring == nil || p.ring.Empty()) {
					return
				}
				p.waiter.Prepare()
				if p.hasWork() {
					p.waiter.Cancel()
					continue
				}
				p.waiter.Wait()
				continue
			}
		}
		if p.batcher != nil {
			p.batcher.ConsumeBatch(batch[:n])
			continue
		}
		for _, d := range batch[:n] {
			p.consumer.Consume(d)
		}
	}
}

// close marks the port finished; the worker exits after draining. Held
// catch-up deliveries reach no consumer and count as drops. Producers
// are forced onto the locked path first, so an enqueue racing close is
// either fully in the ring (delivered: it happened-before the close) or
// observes closed under mu and is dropped — never stranded.
func (p *port) close() {
	p.enterFallback()
	p.mu.Lock()
	p.closed = true
	for range p.held {
		p.dropped.Inc()
		p.selfDrop.Inc()
	}
	p.held = nil
	p.mu.Unlock()
	p.waiter.Wake()
}

package dispatch

import (
	"testing"
	"unsafe"
)

// TestRecordFootprints pins the dispatcher's long-lived record sizes.
// StreamInfo is the one that scales — one per stream ever routed, so at
// a million sensors its 64-byte size class (vs 80 for the naive field
// order) is 16 MB of headroom. Subscription records are per-subscriber,
// but they ride the wildcard snapshot slice, so they stay pinned too.
func TestRecordFootprints(t *testing.T) {
	for _, c := range []struct {
		name   string
		got    uintptr
		budget uintptr
	}{
		{"StreamInfo", unsafe.Sizeof(StreamInfo{}), 64},
		{"subscription", unsafe.Sizeof(subscription{}), 40},
		{"Pattern", unsafe.Sizeof(Pattern{}), 24},
	} {
		if c.got > c.budget {
			t.Errorf("%s is %d bytes, budget %d — repack before growing it", c.name, c.got, c.budget)
		}
	}
}

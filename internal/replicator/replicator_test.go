package replicator

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/location"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/transmit"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

type fakeLocator struct {
	estimates map[wire.SensorID]location.Estimate
}

func (f *fakeLocator) Locate(id wire.SensorID) (location.Estimate, error) {
	est, ok := f.estimates[id]
	if !ok {
		return location.Estimate{}, location.ErrUnknownSensor
	}
	return est, nil
}

func ctrl(sensor wire.SensorID) wire.ControlMessage {
	return wire.ControlMessage{UpdateID: 1, Target: wire.MustStreamID(sensor, 0), Op: wire.OpPing, Issued: epoch}
}

// rig builds a medium with three transmitters at x = 0, 1000, 2000, each
// with 400 m range, and a downlink listener counting frames per region.
func rig(t *testing.T) (*sim.VirtualClock, *radio.Medium, []*transmit.Transmitter) {
	t.Helper()
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	var txs []*transmit.Transmitter
	for i, x := range []float64{0, 1000, 2000} {
		txs = append(txs, transmit.New(medium, transmit.Config{
			Name:     "tx-" + string(rune('a'+i)),
			Position: geo.Pt(x, 0),
			Range:    400,
		}))
	}
	return clock, medium, txs
}

func TestSendWithoutTransmitters(t *testing.T) {
	r := New(nil, Options{})
	if _, err := r.Send(ctrl(1)); !errors.Is(err, ErrNoTransmitters) {
		t.Fatalf("err = %v, want ErrNoTransmitters", err)
	}
}

func TestFloodWhenLocationUnknown(t *testing.T) {
	_, _, txs := rig(t)
	r := New(&fakeLocator{estimates: map[wire.SensorID]location.Estimate{}}, Options{Targeted: true})
	for _, tx := range txs {
		r.AddTransmitter(tx)
	}
	n, err := r.Send(ctrl(42))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("used %d transmitters, want all 3 (flood)", n)
	}
	st := r.Stats()
	if st.Flooded != 1 || st.Targeted != 0 || st.Broadcasts != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTargetedSubset(t *testing.T) {
	_, _, txs := rig(t)
	loc := &fakeLocator{estimates: map[wire.SensorID]location.Estimate{
		42: {Sensor: 42, Pos: geo.Pt(0, 100), Uncertainty: 50, Confidence: 0.8},
	}}
	r := New(loc, Options{Targeted: true})
	for _, tx := range txs {
		r.AddTransmitter(tx)
	}
	n, err := r.Send(ctrl(42))
	if err != nil {
		t.Fatal(err)
	}
	// Area circle (0,100) r≈76 touches only tx-a at (0,0) range 400.
	if n != 1 {
		t.Fatalf("used %d transmitters, want 1 (targeted)", n)
	}
	st := r.Stats()
	if st.Targeted != 1 || st.Broadcasts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUncertaintyWidensSelection(t *testing.T) {
	_, _, txs := rig(t)
	loc := &fakeLocator{estimates: map[wire.SensorID]location.Estimate{
		42: {Sensor: 42, Pos: geo.Pt(500, 0), Uncertainty: 300, Confidence: 0.3},
	}}
	r := New(loc, Options{Targeted: true, Margin: 1.5})
	for _, tx := range txs {
		r.AddTransmitter(tx)
	}
	n, err := r.Send(ctrl(42))
	if err != nil {
		t.Fatal(err)
	}
	// Area circle (500,0) r=451 overlaps tx-a (dist 500 < 400+451) and
	// tx-b (dist 500 < 400+451) but not tx-c (dist 1500).
	if n != 2 {
		t.Fatalf("used %d transmitters, want 2", n)
	}
}

func TestEstimateOutsideAllCoverageFloods(t *testing.T) {
	_, _, txs := rig(t)
	loc := &fakeLocator{estimates: map[wire.SensorID]location.Estimate{
		42: {Sensor: 42, Pos: geo.Pt(0, 99_999), Uncertainty: 10, Confidence: 0.9},
	}}
	r := New(loc, Options{Targeted: true})
	for _, tx := range txs {
		r.AddTransmitter(tx)
	}
	n, err := r.Send(ctrl(42))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("used %d transmitters, want 3 (fallback flood)", n)
	}
	if st := r.Stats(); st.Flooded != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNewFloodingNeverTargets(t *testing.T) {
	_, _, txs := rig(t)
	r := NewFlooding()
	for _, tx := range txs {
		r.AddTransmitter(tx)
	}
	n, err := r.Send(ctrl(42))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("flooding replicator used %d", n)
	}
}

func TestFramesActuallyReachMedium(t *testing.T) {
	clock, medium, txs := rig(t)
	got := 0
	medium.Attach(radio.BandDownlink, &radio.Listener{
		Name:     "sensor",
		Position: func() geo.Point { return geo.Pt(0, 50) },
		Radius:   1e9,
		Deliver: func(f radio.Frame) {
			if _, err := wire.DecodeControl(f.Data); err == nil {
				got++
			}
		},
	})
	r := New(nil, Options{})
	for _, tx := range txs {
		r.AddTransmitter(tx)
	}
	if _, err := r.Send(ctrl(42)); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	// Only tx-a covers (0,50) within its 400 m range.
	if got != 1 {
		t.Fatalf("sensor received %d control frames, want 1", got)
	}
	if st := txs[0].Stats(); st.Broadcasts != 1 || st.Bytes != int64(wire.ControlSize) {
		t.Fatalf("transmitter stats = %+v", st)
	}
}

func TestSendRejectsUnencodableControl(t *testing.T) {
	_, _, txs := rig(t)
	r := New(nil, Options{})
	r.AddTransmitter(txs[0])
	bad := wire.ControlMessage{Target: wire.MustStreamID(1, 0), Op: 0}
	if _, err := r.Send(bad); err == nil {
		t.Fatal("want encode error")
	}
}

func TestTransmitterValidation(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for zero range")
		}
	}()
	transmit.New(medium, transmit.Config{Position: geo.Pt(0, 0)})
}

// TestTargetedSelectionEqualsBruteForceProperty pins the grid-backed
// transmitter selection to the definition it replaced: the set of
// transmitters whose coverage intersects the inflated estimate circle,
// over random layouts and estimates.
func TestTargetedSelectionEqualsBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(2003, 523))
	for trial := 0; trial < 50; trial++ {
		clock := sim.NewVirtualClock(epoch)
		medium := radio.NewMedium(clock, radio.Params{})
		n := 1 + rng.IntN(24)
		txs := make([]*transmit.Transmitter, n)
		for i := range txs {
			txs[i] = transmit.New(medium, transmit.Config{
				Name:     fmt.Sprintf("tx%d", i),
				Position: geo.Pt(rng.Float64()*4000-2000, rng.Float64()*4000-2000),
				Range:    50 + rng.Float64()*500,
			})
		}
		est := location.Estimate{
			Sensor:      42,
			Pos:         geo.Pt(rng.Float64()*4000-2000, rng.Float64()*4000-2000),
			Uncertainty: rng.Float64() * 400,
			Confidence:  1,
		}
		loc := &fakeLocator{estimates: map[wire.SensorID]location.Estimate{42: est}}
		const margin = 1.5
		r := New(loc, Options{Targeted: true, Margin: margin})
		for _, tx := range txs {
			r.AddTransmitter(tx)
		}

		area := geo.Circle{Center: est.Pos, R: est.Uncertainty*margin + 1}
		want := 0
		for _, tx := range txs {
			if tx.Coverage().IntersectsCircle(area) {
				want++
			}
		}
		if want == 0 {
			want = n // estimate outside all coverage: fallback flood
		}
		got, err := r.Send(ctrl(42))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: selected %d transmitters, brute force wants %d", trial, got, want)
		}
		// Per-transmitter broadcast counts confirm the *same* subset was
		// chosen, not just the same count.
		for _, tx := range txs {
			covers := tx.Coverage().IntersectsCircle(area)
			st := tx.Stats()
			switch {
			case covers && st.Broadcasts != 1:
				t.Fatalf("trial %d: covering %s broadcast %d times, want 1", trial, tx.Name(), st.Broadcasts)
			case !covers && want != n && st.Broadcasts != 0:
				t.Fatalf("trial %d: non-covering %s broadcast %d times, want 0", trial, tx.Name(), st.Broadcasts)
			}
		}
	}
}

// TestConcurrentSendDuringAttach exercises the copy-on-write snapshot:
// replication keeps running lock-free while transmitters attach. Run
// with -race this pins the Send path reading only immutable snapshots.
func TestConcurrentSendDuringAttach(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	r := NewFlooding()
	r.AddTransmitter(transmit.New(medium, transmit.Config{Position: geo.Pt(0, 0), Range: 100}))

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := r.Send(ctrl(wire.SensorID(i % 5))); err != nil {
				panic(err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.AddTransmitter(transmit.New(medium, transmit.Config{
				Position: geo.Pt(float64(i)*10, 0), Range: 100,
			}))
		}
	}()
	wg.Wait()
	if got := r.Transmitters(); got != 51 {
		t.Fatalf("transmitters = %d, want 51", got)
	}
	st := r.Stats()
	if st.Requests != 200 || st.Broadcasts < 200 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTransmitterDefaultsAndCoverage(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	tx := transmit.New(medium, transmit.Config{Position: geo.Pt(3, 4), Range: 10})
	if tx.Name() == "" {
		t.Fatal("empty default name")
	}
	cov := tx.Coverage()
	if cov.Center != geo.Pt(3, 4) || cov.R != 10 {
		t.Fatalf("coverage = %+v", cov)
	}
}

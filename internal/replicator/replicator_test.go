package replicator

import (
	"errors"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/location"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/transmit"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

type fakeLocator struct {
	estimates map[wire.SensorID]location.Estimate
}

func (f *fakeLocator) Locate(id wire.SensorID) (location.Estimate, error) {
	est, ok := f.estimates[id]
	if !ok {
		return location.Estimate{}, location.ErrUnknownSensor
	}
	return est, nil
}

func ctrl(sensor wire.SensorID) wire.ControlMessage {
	return wire.ControlMessage{UpdateID: 1, Target: wire.MustStreamID(sensor, 0), Op: wire.OpPing, Issued: epoch}
}

// rig builds a medium with three transmitters at x = 0, 1000, 2000, each
// with 400 m range, and a downlink listener counting frames per region.
func rig(t *testing.T) (*sim.VirtualClock, *radio.Medium, []*transmit.Transmitter) {
	t.Helper()
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	var txs []*transmit.Transmitter
	for i, x := range []float64{0, 1000, 2000} {
		txs = append(txs, transmit.New(medium, transmit.Config{
			Name:     "tx-" + string(rune('a'+i)),
			Position: geo.Pt(x, 0),
			Range:    400,
		}))
	}
	return clock, medium, txs
}

func TestSendWithoutTransmitters(t *testing.T) {
	r := New(nil, Options{})
	if _, err := r.Send(ctrl(1)); !errors.Is(err, ErrNoTransmitters) {
		t.Fatalf("err = %v, want ErrNoTransmitters", err)
	}
}

func TestFloodWhenLocationUnknown(t *testing.T) {
	_, _, txs := rig(t)
	r := New(&fakeLocator{estimates: map[wire.SensorID]location.Estimate{}}, Options{Targeted: true})
	for _, tx := range txs {
		r.AddTransmitter(tx)
	}
	n, err := r.Send(ctrl(42))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("used %d transmitters, want all 3 (flood)", n)
	}
	st := r.Stats()
	if st.Flooded != 1 || st.Targeted != 0 || st.Broadcasts != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTargetedSubset(t *testing.T) {
	_, _, txs := rig(t)
	loc := &fakeLocator{estimates: map[wire.SensorID]location.Estimate{
		42: {Sensor: 42, Pos: geo.Pt(0, 100), Uncertainty: 50, Confidence: 0.8},
	}}
	r := New(loc, Options{Targeted: true})
	for _, tx := range txs {
		r.AddTransmitter(tx)
	}
	n, err := r.Send(ctrl(42))
	if err != nil {
		t.Fatal(err)
	}
	// Area circle (0,100) r≈76 touches only tx-a at (0,0) range 400.
	if n != 1 {
		t.Fatalf("used %d transmitters, want 1 (targeted)", n)
	}
	st := r.Stats()
	if st.Targeted != 1 || st.Broadcasts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUncertaintyWidensSelection(t *testing.T) {
	_, _, txs := rig(t)
	loc := &fakeLocator{estimates: map[wire.SensorID]location.Estimate{
		42: {Sensor: 42, Pos: geo.Pt(500, 0), Uncertainty: 300, Confidence: 0.3},
	}}
	r := New(loc, Options{Targeted: true, Margin: 1.5})
	for _, tx := range txs {
		r.AddTransmitter(tx)
	}
	n, err := r.Send(ctrl(42))
	if err != nil {
		t.Fatal(err)
	}
	// Area circle (500,0) r=451 overlaps tx-a (dist 500 < 400+451) and
	// tx-b (dist 500 < 400+451) but not tx-c (dist 1500).
	if n != 2 {
		t.Fatalf("used %d transmitters, want 2", n)
	}
}

func TestEstimateOutsideAllCoverageFloods(t *testing.T) {
	_, _, txs := rig(t)
	loc := &fakeLocator{estimates: map[wire.SensorID]location.Estimate{
		42: {Sensor: 42, Pos: geo.Pt(0, 99_999), Uncertainty: 10, Confidence: 0.9},
	}}
	r := New(loc, Options{Targeted: true})
	for _, tx := range txs {
		r.AddTransmitter(tx)
	}
	n, err := r.Send(ctrl(42))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("used %d transmitters, want 3 (fallback flood)", n)
	}
	if st := r.Stats(); st.Flooded != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNewFloodingNeverTargets(t *testing.T) {
	_, _, txs := rig(t)
	r := NewFlooding()
	for _, tx := range txs {
		r.AddTransmitter(tx)
	}
	n, err := r.Send(ctrl(42))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("flooding replicator used %d", n)
	}
}

func TestFramesActuallyReachMedium(t *testing.T) {
	clock, medium, txs := rig(t)
	got := 0
	medium.Attach(radio.BandDownlink, &radio.Listener{
		Name:     "sensor",
		Position: func() geo.Point { return geo.Pt(0, 50) },
		Radius:   1e9,
		Deliver: func(f radio.Frame) {
			if _, err := wire.DecodeControl(f.Data); err == nil {
				got++
			}
		},
	})
	r := New(nil, Options{})
	for _, tx := range txs {
		r.AddTransmitter(tx)
	}
	if _, err := r.Send(ctrl(42)); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	// Only tx-a covers (0,50) within its 400 m range.
	if got != 1 {
		t.Fatalf("sensor received %d control frames, want 1", got)
	}
	if st := txs[0].Stats(); st.Broadcasts != 1 || st.Bytes != int64(wire.ControlSize) {
		t.Fatalf("transmitter stats = %+v", st)
	}
}

func TestSendRejectsUnencodableControl(t *testing.T) {
	_, _, txs := rig(t)
	r := New(nil, Options{})
	r.AddTransmitter(txs[0])
	bad := wire.ControlMessage{Target: wire.MustStreamID(1, 0), Op: 0}
	if _, err := r.Send(bad); err == nil {
		t.Fatal("want encode error")
	}
}

func TestTransmitterValidation(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for zero range")
		}
	}()
	transmit.New(medium, transmit.Config{Position: geo.Pt(0, 0)})
}

func TestTransmitterDefaultsAndCoverage(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	tx := transmit.New(medium, transmit.Config{Position: geo.Pt(3, 4), Range: 10})
	if tx.Name() == "" {
		t.Fatal("empty default name")
	}
	cov := tx.Coverage()
	if cov.Center != geo.Pt(3, 4) || cov.R != 10 {
		t.Fatalf("coverage = %+v", cov)
	}
}

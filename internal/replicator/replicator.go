// Package replicator implements the Message Replicator of §4.2: it
// “determines the expected location area of the target sensor. Based on
// the location area, the appropriate set of Transmitters broadcast the
// request, whereupon it may be received by the sensor node.”
//
// When the Location Service can bound the target's position, only the
// transmitters whose coverage intersects the expected area broadcast —
// the §5 rationale for inferred location (“a refinement … required to
// reduce transmission costs when forwarding control messages”). When the
// target's location is unknown, the replicator falls back to flooding
// every transmitter, preserving the location-neutral delivery guarantee.
package replicator

import (
	"errors"
	"sync"

	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/location"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/transmit"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Locator answers expected-location queries; satisfied by
// *location.Service.
type Locator interface {
	Locate(sensor wire.SensorID) (location.Estimate, error)
}

// Options configures a Replicator.
type Options struct {
	// Margin inflates the estimate's uncertainty radius before matching
	// transmitter coverage, to absorb sensor movement since the estimate.
	// Default 1.5.
	Margin float64
	// Targeted disables the location lookup entirely when false, flooding
	// every control message — the location-neutral baseline in the
	// targeted-actuation experiment (E6). Default true.
	Targeted bool
}

// Stats is a snapshot of replicator counters.
type Stats struct {
	Requests   int64 // control messages replicated
	Targeted   int64 // requests sent to a located subset
	Flooded    int64 // requests broadcast by every transmitter
	Broadcasts int64 // transmitter broadcasts used in total
}

// Replicator fans control frames out to the right transmitters.
type Replicator struct {
	locator Locator
	opts    Options

	mu           sync.Mutex
	transmitters []*transmit.Transmitter

	requests   metrics.Counter
	targeted   metrics.Counter
	flooded    metrics.Counter
	broadcasts metrics.Counter
}

// ErrNoTransmitters is returned when Send has nowhere to broadcast.
var ErrNoTransmitters = errors.New("replicator: no transmitters attached")

// New creates a Replicator. locator may be nil, in which case every
// request floods.
func New(locator Locator, opts Options) *Replicator {
	if opts.Margin <= 0 {
		opts.Margin = 1.5
	}
	return &Replicator{locator: locator, opts: opts}
}

// NewFlooding creates a location-neutral replicator (the E6 baseline).
func NewFlooding() *Replicator {
	return &Replicator{opts: Options{Margin: 1.5, Targeted: false}}
}

// AddTransmitter attaches one transmitter to the array.
func (r *Replicator) AddTransmitter(t *transmit.Transmitter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.transmitters = append(r.transmitters, t)
}

// Transmitters returns the attached transmitter count.
func (r *Replicator) Transmitters() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.transmitters)
}

// Send encodes the control message once and broadcasts it from the
// transmitter subset covering the target's expected location area
// (falling back to flooding). It returns the number of transmitters used.
func (r *Replicator) Send(c wire.ControlMessage) (int, error) {
	frame, err := c.Encode()
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	txs := make([]*transmit.Transmitter, len(r.transmitters))
	copy(txs, r.transmitters)
	r.mu.Unlock()
	if len(txs) == 0 {
		return 0, ErrNoTransmitters
	}
	r.requests.Inc()

	chosen := txs
	targeted := false
	if r.locator != nil && r.opts.Targeted {
		if est, err := r.locator.Locate(c.Target.Sensor()); err == nil {
			area := geo.Circle{Center: est.Pos, R: est.Uncertainty*r.opts.Margin + 1}
			var subset []*transmit.Transmitter
			for _, t := range txs {
				if t.Coverage().IntersectsCircle(area) {
					subset = append(subset, t)
				}
			}
			if len(subset) > 0 {
				chosen = subset
				targeted = true
			}
		}
	}
	if targeted {
		r.targeted.Inc()
	} else {
		r.flooded.Inc()
	}
	for _, t := range chosen {
		t.Broadcast(frame)
		r.broadcasts.Inc()
	}
	return len(chosen), nil
}

// Stats returns a snapshot of the replicator counters.
func (r *Replicator) Stats() Stats {
	return Stats{
		Requests:   r.requests.Value(),
		Targeted:   r.targeted.Value(),
		Flooded:    r.flooded.Value(),
		Broadcasts: r.broadcasts.Value(),
	}
}

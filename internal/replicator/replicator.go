// Package replicator implements the Message Replicator of §4.2: it
// “determines the expected location area of the target sensor. Based on
// the location area, the appropriate set of Transmitters broadcast the
// request, whereupon it may be received by the sensor node.”
//
// When the Location Service can bound the target's position, only the
// transmitters whose coverage intersects the expected area broadcast —
// the §5 rationale for inferred location (“a refinement … required to
// reduce transmission costs when forwarding control messages”). When the
// target's location is unknown, the replicator falls back to flooding
// every transmitter, preserving the location-neutral delivery guarantee.
package replicator

import (
	"errors"
	"sync"
	"sync/atomic"

	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/location"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/transmit"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Locator answers expected-location queries; satisfied by
// *location.Service.
type Locator interface {
	Locate(sensor wire.SensorID) (location.Estimate, error)
}

// Options configures a Replicator.
type Options struct {
	// Margin inflates the estimate's uncertainty radius before matching
	// transmitter coverage, to absorb sensor movement since the estimate.
	// Default 1.5.
	Margin float64
	// Targeted disables the location lookup entirely when false, flooding
	// every control message — the location-neutral baseline in the
	// targeted-actuation experiment (E6). Default true.
	Targeted bool
}

// Stats is a snapshot of replicator counters.
type Stats struct {
	Requests   int64 // control messages replicated
	Targeted   int64 // requests sent to a located subset
	Flooded    int64 // requests broadcast by every transmitter
	Broadcasts int64 // transmitter broadcasts used in total
}

// txSnapshot is an immutable view of the transmitter array: the attach-
// ordered slice plus a spatial index of the coverage circles (grid ids
// are indices into txs). Attach replaces the whole snapshot under the
// writer lock; Send loads it with one atomic read — attach is rare,
// replicate is hot, so the hot path takes no lock and copies nothing.
type txSnapshot struct {
	txs  []*transmit.Transmitter
	grid *geo.Grid
}

// Replicator fans control frames out to the right transmitters.
type Replicator struct {
	locator Locator
	opts    Options

	mu   sync.Mutex // serialises writers (AddTransmitter)
	snap atomic.Pointer[txSnapshot]

	requests   metrics.Counter
	targeted   metrics.Counter
	flooded    metrics.Counter
	broadcasts metrics.Counter
}

// idScratch pools the per-Send candidate-id buffer for the coverage
// query, keeping the targeted hot path allocation-free.
var idScratch = sync.Pool{New: func() any {
	s := make([]int, 0, 16)
	return &s
}}

// ErrNoTransmitters is returned when Send has nowhere to broadcast.
var ErrNoTransmitters = errors.New("replicator: no transmitters attached")

// New creates a Replicator. locator may be nil, in which case every
// request floods.
func New(locator Locator, opts Options) *Replicator {
	if opts.Margin <= 0 {
		opts.Margin = 1.5
	}
	return &Replicator{locator: locator, opts: opts}
}

// NewFlooding creates a location-neutral replicator (the E6 baseline).
func NewFlooding() *Replicator {
	return &Replicator{opts: Options{Margin: 1.5, Targeted: false}}
}

// AddTransmitter attaches one transmitter to the array. The snapshot and
// its coverage index are rebuilt copy-on-write: in-flight Sends keep the
// old snapshot, later Sends atomically observe the new one.
func (r *Replicator) AddTransmitter(t *transmit.Transmitter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load()
	var txs []*transmit.Transmitter
	if old != nil {
		txs = append(txs, old.txs...)
	}
	txs = append(txs, t)
	// Cell size: the largest coverage radius, so every circle spans only
	// a handful of cells and an estimate-area query touches few buckets.
	maxR := 0.0
	for _, tx := range txs {
		if r := tx.Coverage().R; r > maxR {
			maxR = r
		}
	}
	if maxR <= 0 {
		maxR = 1
	}
	grid := geo.NewGrid(maxR)
	for i, tx := range txs {
		grid.Insert(i, tx.Coverage())
	}
	r.snap.Store(&txSnapshot{txs: txs, grid: grid})
}

// Transmitters returns the attached transmitter count.
func (r *Replicator) Transmitters() int {
	snap := r.snap.Load()
	if snap == nil {
		return 0
	}
	return len(snap.txs)
}

// Send encodes the control message once and broadcasts it from the
// transmitter subset covering the target's expected location area
// (falling back to flooding). It returns the number of transmitters used.
//
// Selection queries the snapshot's coverage index with the inflated
// location-estimate circle, so a targeted send costs O(transmitters
// actually near the estimate) and takes no lock: the snapshot is one
// atomic load and its grid is immutable.
func (r *Replicator) Send(c wire.ControlMessage) (int, error) {
	frame, err := c.Encode()
	if err != nil {
		return 0, err
	}
	snap := r.snap.Load()
	if snap == nil || len(snap.txs) == 0 {
		return 0, ErrNoTransmitters
	}
	r.requests.Inc()

	used := 0
	targeted := false
	if r.locator != nil && r.opts.Targeted {
		if est, err := r.locator.Locate(c.Target.Sensor()); err == nil {
			area := geo.Circle{Center: est.Pos, R: est.Uncertainty*r.opts.Margin + 1}
			idsp := idScratch.Get().(*[]int)
			ids := snap.grid.AppendIntersecting((*idsp)[:0], area)
			if len(ids) > 0 {
				targeted = true
				for _, id := range ids {
					snap.txs[id].Broadcast(frame)
					r.broadcasts.Inc()
				}
				used = len(ids)
			}
			*idsp = ids[:0]
			idScratch.Put(idsp)
		}
	}
	if targeted {
		r.targeted.Inc()
	} else {
		r.flooded.Inc()
		for _, t := range snap.txs {
			t.Broadcast(frame)
			r.broadcasts.Inc()
		}
		used = len(snap.txs)
	}
	return used, nil
}

// Stats returns a snapshot of the replicator counters.
func (r *Replicator) Stats() Stats {
	return Stats{
		Requests:   r.requests.Value(),
		Targeted:   r.targeted.Value(),
		Flooded:    r.flooded.Value(),
		Broadcasts: r.broadcasts.Value(),
	}
}

package ring

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkWakeup pins the satellite claim behind the Waiter: notifying
// a running drainer through the two-state atomic is cheaper than
// sync.Cond.Signal, which acquires the cond's internal lock on every
// call whether or not anyone waits. Both benchmarks measure the
// producer-side cost with the consumer awake — the dispatcher's steady
// state, where the drainer is busy and every enqueue still has to offer
// a wakeup.
func BenchmarkWakeup(b *testing.B) {
	b.Run("cond_signal", func(b *testing.B) {
		var mu sync.Mutex
		cond := sync.NewCond(&mu)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				cond.Signal()
			}
		})
	})
	b.Run("atomic_park", func(b *testing.B) {
		w := NewWaiter()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				w.Wake()
			}
		})
	})
}

// BenchmarkWakeupParked measures the full park/unpark round trip: the
// consumer actually sleeps between wakeups, so the producer pays the
// CAS + channel send and the consumer the channel receive. This is the
// idle-consumer edge, not the steady state.
func BenchmarkWakeupParked(b *testing.B) {
	b.Run("cond_signal", func(b *testing.B) {
		var mu sync.Mutex
		cond := sync.NewCond(&mu)
		work := 0
		done := false
		go func() {
			mu.Lock()
			for !done {
				for work == 0 && !done {
					cond.Wait()
				}
				work = 0
			}
			mu.Unlock()
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mu.Lock()
			work++
			mu.Unlock()
			cond.Signal()
		}
		b.StopTimer()
		mu.Lock()
		done = true
		mu.Unlock()
		cond.Signal()
	})
	b.Run("atomic_park", func(b *testing.B) {
		w := NewWaiter()
		var work sync.Mutex
		pending := 0
		finished := false
		go func() {
			for {
				work.Lock()
				n, fin := pending, finished
				pending = 0
				work.Unlock()
				if fin && n == 0 {
					return
				}
				if n > 0 {
					continue
				}
				w.Prepare()
				work.Lock()
				n, fin = pending, finished
				work.Unlock()
				if n > 0 || fin {
					w.Cancel()
					continue
				}
				w.Wait()
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			work.Lock()
			pending++
			work.Unlock()
			w.Wake()
		}
		b.StopTimer()
		work.Lock()
		finished = true
		work.Unlock()
		w.Wake()
	})
}

// BenchmarkRingEnqueueDequeue measures the raw queue hot pair.
func BenchmarkRingEnqueueDequeue(b *testing.B) {
	r := New[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.TryEnqueue(i)
		r.TryDequeue()
	}
}

// BenchmarkRingEnqueueN measures the multi-slot claim against repeated
// single enqueues at several batch sizes (per-op = per value).
func BenchmarkRingEnqueueN(b *testing.B) {
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			r := New[int](1024)
			vs := make([]int, batch)
			buf := make([]int, batch)
			b.ReportAllocs()
			for i := 0; i < b.N; i += batch {
				r.TryEnqueueN(vs)
				r.DequeueBatch(buf)
			}
		})
	}
}

// BenchmarkRingProducers measures contended enqueue with a draining
// consumer, the dispatcher's fan-in shape.
func BenchmarkRingProducers(b *testing.B) {
	r := New[int](1024)
	stop := make(chan struct{})
	go func() {
		buf := make([]int, 64)
		for {
			if r.DequeueBatch(buf) == 0 {
				select {
				case <-stop:
					return
				default:
				}
			}
		}
	}()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			for !r.TryEnqueue(1) {
				r.TryDequeue()
			}
		}
	})
	close(stop)
}

package ring

import (
	"runtime"
	"sync"
	"testing"
	"unsafe"
)

func TestRingFIFO(t *testing.T) {
	r := New[int](8)
	if r.Cap() != 8 {
		t.Fatalf("Cap() = %d, want 8", r.Cap())
	}
	for i := 0; i < 8; i++ {
		if !r.TryEnqueue(i) {
			t.Fatalf("enqueue %d refused below capacity", i)
		}
	}
	if r.TryEnqueue(99) {
		t.Fatal("enqueue admitted past capacity")
	}
	for i := 0; i < 8; i++ {
		v, ok := r.TryDequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := r.TryDequeue(); ok {
		t.Fatal("dequeue from empty ring succeeded")
	}
	if !r.Empty() {
		t.Fatal("drained ring not Empty")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := New[int](4)
	next := 0
	// Many laps around the physical ring, enqueueing and dequeueing in
	// mixed-size bursts, so the sequence stamps cross the wrap boundary
	// repeatedly.
	expect := 0
	for lap := 0; lap < 100; lap++ {
		burst := 1 + lap%4
		for i := 0; i < burst; i++ {
			if !r.TryEnqueue(next) {
				t.Fatalf("lap %d: enqueue %d refused with Len=%d", lap, next, r.Len())
			}
			next++
		}
		for i := 0; i < burst; i++ {
			v, ok := r.TryDequeue()
			if !ok || v != expect {
				t.Fatalf("lap %d: dequeue got %d ok=%v, want %d", lap, v, ok, expect)
			}
			expect++
		}
	}
}

func TestRingNonPowerOfTwoCapacity(t *testing.T) {
	r := New[int](6)
	if r.Cap() != 6 {
		t.Fatalf("Cap() = %d, want 6", r.Cap())
	}
	n := 0
	for r.TryEnqueue(n) {
		n++
	}
	// Under a serial producer the logical bound is exact even though the
	// physical ring has 8 slots.
	if n != 6 {
		t.Fatalf("serial producer admitted %d, want 6", n)
	}
}

func TestRingCapacityFloor(t *testing.T) {
	r := New[int](0)
	if r.Cap() != 1 {
		t.Fatalf("Cap() = %d, want 1", r.Cap())
	}
	if !r.TryEnqueue(7) {
		t.Fatal("capacity-1 ring refused first enqueue")
	}
	if r.TryEnqueue(8) {
		t.Fatal("capacity-1 ring admitted a second value")
	}
}

func TestRingDequeueBatch(t *testing.T) {
	r := New[int](16)
	for i := 0; i < 10; i++ {
		r.TryEnqueue(i)
	}
	buf := make([]int, 4)
	if n := r.DequeueBatch(buf); n != 4 {
		t.Fatalf("first batch: %d, want 4", n)
	}
	for i, v := range buf {
		if v != i {
			t.Fatalf("batch[%d] = %d, want %d", i, v, i)
		}
	}
	if n := r.DequeueBatch(make([]int, 16)); n != 6 {
		t.Fatalf("second batch: %d, want 6", n)
	}
}

// TestRingDequeueReleasesPayload pins the slot-zeroing behaviour: a
// dequeued slot must not keep the payload pointer alive until the slot's
// next lap.
func TestRingDequeueReleasesPayload(t *testing.T) {
	r := New[[]byte](4)
	r.TryEnqueue(make([]byte, 1))
	r.TryDequeue()
	if r.slots[0].val != nil {
		t.Fatal("dequeued slot still references the payload")
	}
}

// TestRingMPMCStress hammers the ring from many producers and a few
// consumers (the drop-oldest policy makes producers dequeue too) and
// checks that every value is delivered at most once and nothing is
// delivered that was not enqueued. Run with -race.
func TestRingMPMCStress(t *testing.T) {
	const (
		producers = 8
		perProd   = 2000
	)
	r := New[int](64)
	var mu sync.Mutex
	got := make(map[int]int)
	var wg sync.WaitGroup
	var consumed sync.WaitGroup
	stop := make(chan struct{})

	record := func(v int) {
		mu.Lock()
		got[v]++
		mu.Unlock()
	}

	consumed.Add(2)
	for c := 0; c < 2; c++ {
		go func() {
			defer consumed.Done()
			buf := make([]int, 32)
			for {
				n := r.DequeueBatch(buf)
				for _, v := range buf[:n] {
					record(v)
				}
				if n == 0 {
					select {
					case <-stop:
						// Final drain after producers finished.
						for {
							v, ok := r.TryDequeue()
							if !ok {
								return
							}
							record(v)
						}
					default:
					}
				}
			}
		}()
	}

	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				v := p*perProd + i
				for !r.TryEnqueue(v) {
					// Full: discard the oldest, like DropOldest does.
					if old, ok := r.TryDequeue(); ok {
						record(old)
					}
				}
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	consumed.Wait()

	for v, n := range got {
		if n != 1 {
			t.Fatalf("value %d delivered %d times", v, n)
		}
		if v < 0 || v >= producers*perProd {
			t.Fatalf("value %d was never enqueued", v)
		}
	}
	if len(got) != producers*perProd {
		t.Fatalf("delivered %d distinct values, want %d", len(got), producers*perProd)
	}
}

// TestRingSPSCOrderStress checks per-producer FIFO with a single
// consumer: values from one producer must arrive in enqueue order even
// while other producers interleave. Run with -race.
func TestRingSPSCOrderStress(t *testing.T) {
	const (
		producers = 4
		perProd   = 5000
	)
	r := New[[2]int](128)
	lastSeen := make([]int, producers)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		seen := 0
		for seen < producers*perProd {
			v, ok := r.TryDequeue()
			if !ok {
				runtime.Gosched() // single-core friendliness
				continue
			}
			p, i := v[0], v[1]
			if i <= lastSeen[p] {
				panic("producer order inverted")
			}
			lastSeen[p] = i
			seen++
		}
	}()
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				for !r.TryEnqueue([2]int{p, i}) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	wg.Wait()
	<-done
	for p, last := range lastSeen {
		if last != perProd-1 {
			t.Fatalf("producer %d: last index %d, want %d", p, last, perProd-1)
		}
	}
}

func TestRingEnqueueNFIFO(t *testing.T) {
	r := New[int](16)
	if n := r.TryEnqueueN([]int{0, 1, 2, 3, 4}); n != 5 {
		t.Fatalf("TryEnqueueN admitted %d, want 5", n)
	}
	if n := r.TryEnqueueN(nil); n != 0 {
		t.Fatalf("TryEnqueueN(nil) = %d, want 0", n)
	}
	for i := 0; i < 5; i++ {
		v, ok := r.TryDequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d: got %d ok=%v", i, v, ok)
		}
	}
}

func TestRingEnqueueNPartialAdmit(t *testing.T) {
	r := New[int](8)
	for i := 0; i < 5; i++ {
		r.TryEnqueue(i)
	}
	// Only 3 of 6 fit; the admitted values must be the prefix.
	if n := r.TryEnqueueN([]int{5, 6, 7, 8, 9, 10}); n != 3 {
		t.Fatalf("TryEnqueueN admitted %d, want 3", n)
	}
	if n := r.TryEnqueueN([]int{99}); n != 0 {
		t.Fatalf("TryEnqueueN on full ring admitted %d, want 0", n)
	}
	for i := 0; i < 8; i++ {
		v, ok := r.TryDequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d: got %d ok=%v", i, v, ok)
		}
	}
}

// TestRingEnqueueNWrapAround laps the physical ring with mixed batch
// sizes so multi-slot claims cross the stamp wrap boundary repeatedly.
func TestRingEnqueueNWrapAround(t *testing.T) {
	r := New[int](8)
	next, expect := 0, 0
	buf := make([]int, 8)
	for lap := 0; lap < 200; lap++ {
		batch := 1 + lap%7
		vs := make([]int, batch)
		for i := range vs {
			vs[i] = next + i
		}
		n := r.TryEnqueueN(vs)
		if n != batch {
			t.Fatalf("lap %d: admitted %d of %d with Len=%d", lap, n, batch, r.Len())
		}
		next += n
		for got := 0; got < n; {
			k := r.DequeueBatch(buf[:n-got])
			for _, v := range buf[:k] {
				if v != expect {
					t.Fatalf("lap %d: dequeued %d, want %d", lap, v, expect)
				}
				expect++
			}
			got += k
		}
	}
}

// TestRingEnqueueNVsSerialModel runs a deterministic mixed script of
// TryEnqueueN / TryEnqueue / DequeueBatch against a plain slice model:
// admitted counts and dequeued values must match exactly.
func TestRingEnqueueNVsSerialModel(t *testing.T) {
	r := New[int](13) // non-power-of-two logical capacity
	var model []int
	next := 0
	rng := uint64(42)
	rand := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	buf := make([]int, 32)
	for step := 0; step < 5000; step++ {
		switch rand(3) {
		case 0: // batch enqueue
			batch := 1 + rand(9)
			vs := make([]int, batch)
			for i := range vs {
				vs[i] = next + i
			}
			n := r.TryEnqueueN(vs)
			wantN := 13 - len(model)
			if wantN > batch {
				wantN = batch
			}
			if n != wantN {
				t.Fatalf("step %d: TryEnqueueN admitted %d, model wants %d", step, n, wantN)
			}
			model = append(model, vs[:n]...)
			next += n
		case 1: // single enqueue
			ok := r.TryEnqueue(next)
			wantOK := len(model) < 13
			if ok != wantOK {
				t.Fatalf("step %d: TryEnqueue = %v, model wants %v", step, ok, wantOK)
			}
			if ok {
				model = append(model, next)
				next++
			}
		default: // batch dequeue
			k := 1 + rand(8)
			n := r.DequeueBatch(buf[:k])
			wantN := len(model)
			if wantN > k {
				wantN = k
			}
			if n != wantN {
				t.Fatalf("step %d: DequeueBatch took %d, model wants %d", step, n, wantN)
			}
			for i := 0; i < n; i++ {
				if buf[i] != model[i] {
					t.Fatalf("step %d: dequeued %d, model wants %d", step, buf[i], model[i])
				}
			}
			model = model[n:]
		}
	}
}

// TestRingEnqueueNOrderStress checks per-producer FIFO under concurrent
// multi-slot claims: each producer's batches must arrive in order and
// contiguously batch-internally. Run with -race.
func TestRingEnqueueNOrderStress(t *testing.T) {
	const (
		producers = 4
		perProd   = 4000
	)
	r := New[[2]int](128)
	lastSeen := make([]int, producers)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		seen := 0
		for seen < producers*perProd {
			v, ok := r.TryDequeue()
			if !ok {
				runtime.Gosched()
				continue
			}
			p, i := v[0], v[1]
			if i != lastSeen[p]+1 {
				panic("producer order broken across batch claims")
			}
			lastSeen[p] = i
			seen++
		}
	}()
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			i := 0
			for i < perProd {
				batch := 1 + (i+p)%7
				if batch > perProd-i {
					batch = perProd - i
				}
				vs := make([][2]int, batch)
				for j := range vs {
					vs[j] = [2]int{p, i + j}
				}
				for len(vs) > 0 {
					n := r.TryEnqueueN(vs)
					i += n
					vs = vs[n:]
					if n == 0 {
						runtime.Gosched()
					}
				}
			}
		}(p)
	}
	wg.Wait()
	<-done
	for p, last := range lastSeen {
		if last != perProd-1 {
			t.Fatalf("producer %d: last index %d, want %d", p, last, perProd-1)
		}
	}
}

// TestRingEnqueueNVsConcurrentDequeue races multi-slot claims against
// dequeuers on both sides of the ring: a drain goroutine plus the
// producers themselves, which discard-oldest whenever a claim is refused
// — the dispatch port's DropOldest pattern, where the publisher dequeues
// mid-claim to make room. The order-stress test above covers racing
// producers; this one adds racing consumers. Conservation is exact:
// every value admitted by TryEnqueueN must surface exactly once, at the
// drain goroutine or as a producer-side discard, never twice and never
// lost to a half-visible slot.
func TestRingEnqueueNVsConcurrentDequeue(t *testing.T) {
	const (
		producers = 4
		perProd   = 4000
	)
	r := New[int](64) // small: claims wrap constantly and refusals are common
	stop := make(chan struct{})
	var drained []int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			v, ok := r.TryDequeue()
			if ok {
				drained = append(drained, v)
				continue
			}
			select {
			case <-stop:
				// Producers are finished: drain what's left and exit.
				for {
					v, ok := r.TryDequeue()
					if !ok {
						return
					}
					drained = append(drained, v)
				}
			default:
				runtime.Gosched()
			}
		}
	}()
	discards := make([][]int, producers)
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			i := 0
			for i < perProd {
				batch := 1 + (i+p)%7
				if batch > perProd-i {
					batch = perProd - i
				}
				vs := make([]int, batch)
				for j := range vs {
					vs[j] = p*perProd + i + j
				}
				for len(vs) > 0 {
					n := r.TryEnqueueN(vs)
					i += n
					vs = vs[n:]
					if n == 0 {
						// Refused claim: discard-oldest to make room,
						// racing the drain goroutine for the same slot.
						if v, ok := r.TryDequeue(); ok {
							discards[p] = append(discards[p], v)
						}
					}
				}
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	<-done

	const total = producers * perProd
	seen := make([]int, total)
	count := func(vs []int) {
		for _, v := range vs {
			if v < 0 || v >= total {
				t.Fatalf("value %d out of range — corrupted slot", v)
			}
			seen[v]++
		}
	}
	count(drained)
	for _, d := range discards {
		count(d)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d surfaced %d times, want exactly once", v, n)
		}
	}
}

// TestRingEnqueueNZeroAlloc pins the batched claim at 0 allocs/op.
func TestRingEnqueueNZeroAlloc(t *testing.T) {
	r := New[int](256)
	vs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	buf := make([]int, 8)
	allocs := testing.AllocsPerRun(1000, func() {
		r.TryEnqueueN(vs)
		r.DequeueBatch(buf)
	})
	if allocs != 0 {
		t.Fatalf("TryEnqueueN/DequeueBatch allocates %.1f/op, want 0", allocs)
	}
}

// TestWaiterNoLostWakeup stresses the park/unpark handshake: a producer
// that publishes work and calls Wake must always unblock a waiter that
// Prepared before re-checking. Run with -race.
func TestWaiterNoLostWakeup(t *testing.T) {
	const rounds = 20000
	w := NewWaiter()
	var work int64 // accessed via w's protocol only
	var mu sync.Mutex

	done := make(chan struct{})
	go func() {
		defer close(done)
		consumed := 0
		for consumed < rounds {
			mu.Lock()
			n := work
			work = 0
			mu.Unlock()
			consumed += int(n)
			if n > 0 {
				continue
			}
			w.Prepare()
			mu.Lock()
			pending := work
			mu.Unlock()
			if pending > 0 {
				w.Cancel()
				continue
			}
			w.Wait()
		}
	}()
	for i := 0; i < rounds; i++ {
		mu.Lock()
		work++
		mu.Unlock()
		w.Wake()
	}
	<-done
}

// TestRingZeroAlloc pins that the hot enqueue/dequeue pair allocates
// nothing.
func TestRingZeroAlloc(t *testing.T) {
	r := New[int](64)
	allocs := testing.AllocsPerRun(1000, func() {
		r.TryEnqueue(1)
		r.TryDequeue()
	})
	if allocs != 0 {
		t.Fatalf("enqueue/dequeue allocates %.1f/op, want 0", allocs)
	}
}

// TestRingCursorPadding pins the anti-false-sharing layout: the enqueue
// cursor, dequeue cursor and length must each sit on their own cache
// line.
func TestRingCursorPadding(t *testing.T) {
	var r Ring[int]
	base := uintptr(unsafe.Pointer(&r))
	offs := map[string]uintptr{
		"enq":    uintptr(unsafe.Pointer(&r.enq)) - base,
		"deq":    uintptr(unsafe.Pointer(&r.deq)) - base,
		"length": uintptr(unsafe.Pointer(&r.length)) - base,
	}
	lines := make(map[uintptr]string)
	for name, off := range offs {
		line := off / cacheLine
		if prev, clash := lines[line]; clash {
			t.Fatalf("%s and %s share cache line %d", prev, name, line)
		}
		lines[line] = name
	}
}

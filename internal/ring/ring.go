// Package ring provides the bounded lock-free queue the dispatcher's
// asynchronous delivery path runs on, plus the two-state atomic parker
// that replaces per-enqueue sync.Cond signalling. Both are generic and
// dependency-free so future drainers (gateway sessions, rule engines)
// can reuse them.
//
// # Queue
//
// Ring is a bounded multi-producer queue in the style of Dmitry Vyukov's
// bounded MPMC queue: each slot carries an atomic sequence stamp, a
// producer claims a slot by CAS-advancing the enqueue cursor, writes the
// value, and publishes it by storing the slot's next stamp. Consumption
// symmetrically claims the dequeue cursor, so occasional producer-side
// dequeues (the drop-oldest overflow policy) coexist with the single
// batch-draining consumer. FIFO order is claim order: a slot claimed but
// not yet published stalls later slots' consumption, it never reorders
// them.
//
// Enqueue and dequeue are allocation-free; dequeue zeroes the vacated
// slot so pooled payload buffers referenced by queued values are not
// pinned past delivery.
//
// # Parker
//
// Waiter is the drainer-side park/unpark primitive: one two-state atomic
// plus a 1-buffered channel. Producers pay a single atomic load per
// enqueue while the drainer is running (the common case) and exactly one
// CAS + non-blocking channel send when it is parked — unlike
// sync.Cond.Signal, which takes the cond's internal lock on every call
// whether or not anyone is waiting. BenchmarkWakeup pins the difference.
package ring

import (
	"sync/atomic"
)

const cacheLine = 64

// slot is one ring cell. seq is the Vyukov stamp: it equals the cell's
// logical position when the cell is free for the producer of that
// position, and position+1 once the value is published for the consumer.
type slot[T any] struct {
	seq atomic.Uint64
	val T
}

// Ring is a bounded lock-free multi-producer queue. The zero value is
// not usable; call New. Methods never block and never allocate.
//
// The capacity bound is exact under a serial producer. Under concurrent
// producers the admission check and the slot claim are two separate
// atomic steps, so the occupancy can transiently overshoot a
// non-power-of-two capacity by up to the number of racing producers,
// hard-bounded by the next power of two (the physical slot count).
type Ring[T any] struct {
	mask     uint64
	capacity int64
	slots    []slot[T]

	// The cursors and the length live on their own cache lines: the
	// enqueue cursor is contended by producers, the dequeue cursor is
	// owned by the consumer, and pinning them apart keeps a draining
	// consumer from stalling publication.
	_      [cacheLine]byte
	enq    atomic.Uint64
	_      [cacheLine - 8]byte
	deq    atomic.Uint64
	_      [cacheLine - 8]byte
	length atomic.Int64
	_      [cacheLine - 8]byte
}

// New creates a ring admitting up to capacity values. The physical slot
// count is capacity rounded up to a power of two.
func New[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	phys := 1
	for phys < capacity {
		phys <<= 1
	}
	r := &Ring[T]{
		mask:     uint64(phys - 1),
		capacity: int64(capacity),
		slots:    make([]slot[T], phys),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the logical capacity.
func (r *Ring[T]) Cap() int { return int(r.capacity) }

// Len returns the current occupancy. It is exact when producers and the
// consumer are quiescent and a bounded-lag estimate otherwise.
func (r *Ring[T]) Len() int { return int(r.length.Load()) }

// Empty reports whether the ring holds no published values. A false
// negative is impossible for a value whose enqueue completed before the
// call began, which is what the parker protocol relies on.
func (r *Ring[T]) Empty() bool { return r.length.Load() <= 0 }

// TryEnqueue appends v and reports whether it was admitted; false means
// the ring is full (the caller applies its overflow policy).
func (r *Ring[T]) TryEnqueue(v T) bool {
	if r.length.Load() >= r.capacity {
		return false
	}
	pos := r.enq.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch diff := int64(seq) - int64(pos); {
		case diff == 0:
			// The slot is free for this position: claim it.
			if r.enq.CompareAndSwap(pos, pos+1) {
				s.val = v
				s.seq.Store(pos + 1) // publish
				r.length.Add(1)
				return true
			}
			pos = r.enq.Load()
		case diff < 0:
			// The slot still holds the value from one lap ago: the ring
			// is physically full.
			return false
		default:
			// Another producer claimed pos; reload and retry.
			pos = r.enq.Load()
		}
	}
}

// TryEnqueueN appends a prefix of vs with a single claim: one CAS
// advances the enqueue cursor over the whole run, then the slots are
// written and published individually in position order, so a batch of n
// values costs ~1 CAS instead of n. It returns how many values were
// admitted; 0 means the ring is full (the caller applies its overflow
// policy to the remainder per value, exactly as with TryEnqueue).
//
// FIFO and publication semantics are identical to n repeated TryEnqueue
// calls from one producer: the consumer sees the values in vs order, and
// a slot claimed but not yet published stalls later slots' consumption
// without reordering them.
func (r *Ring[T]) TryEnqueueN(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	free := r.capacity - r.length.Load()
	if free <= 0 {
		return 0
	}
	want := len(vs)
	if int64(want) > free {
		want = int(free)
	}
	pos := r.enq.Load()
	for {
		// The claimable run is a prefix: the consumer frees slots in
		// position order, so slot pos+k can only be free when every slot
		// before it is. A slot observed free (stamp == position) can only
		// be taken by a producer winning the enqueue-cursor CAS, so a
		// successful CAS below owns the whole scanned prefix.
		k := 0
		for k < want && r.slots[(pos+uint64(k))&r.mask].seq.Load() == pos+uint64(k) {
			k++
		}
		if k == 0 {
			if int64(r.slots[pos&r.mask].seq.Load())-int64(pos) < 0 {
				// The slot still holds the value from one lap ago: the
				// ring is physically full.
				return 0
			}
			// Another producer claimed pos; reload and retry.
			pos = r.enq.Load()
			continue
		}
		if r.enq.CompareAndSwap(pos, pos+uint64(k)) {
			r.length.Add(int64(k))
			for i := 0; i < k; i++ {
				s := &r.slots[(pos+uint64(i))&r.mask]
				s.val = vs[i]
				s.seq.Store(pos + uint64(i) + 1) // publish
			}
			return k
		}
		pos = r.enq.Load()
	}
}

// TryDequeue removes and returns the oldest value. ok is false when the
// ring is empty. Safe to call concurrently with the draining consumer
// (producer-side drop-oldest), though values then interleave by claim
// order across the callers.
func (r *Ring[T]) TryDequeue() (v T, ok bool) {
	pos := r.deq.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch diff := int64(seq) - int64(pos+1); {
		case diff == 0:
			if r.deq.CompareAndSwap(pos, pos+1) {
				v = s.val
				var zero T
				s.val = zero // release payload references
				s.seq.Store(pos + r.mask + 1)
				r.length.Add(-1)
				return v, true
			}
			pos = r.deq.Load()
		case diff < 0:
			// Slot pos is not published: the ring is empty (or the
			// producer of pos has claimed but not yet published, which
			// for FIFO purposes is the same thing).
			return v, false
		default:
			pos = r.deq.Load()
		}
	}
}

// DequeueBatch fills buf with up to len(buf) oldest values and returns
// how many it took. The single draining consumer uses this to coalesce
// one wakeup into one batch delivery.
func (r *Ring[T]) DequeueBatch(buf []T) int {
	n := 0
	for n < len(buf) {
		v, ok := r.TryDequeue()
		if !ok {
			break
		}
		buf[n] = v
		n++
	}
	return n
}

// Waiter parking states.
const (
	awake  uint32 = 0
	parked uint32 = 1
)

// Waiter is a two-state atomic park/unpark primitive for a single
// waiting goroutine (the queue drainer) woken by many producers.
//
// Protocol — waiter side:
//
//	w.Prepare()
//	if workAvailable() { w.Cancel(); /* consume */ } else { w.Wait() }
//
// Producer side, after making work visible:
//
//	w.Wake()
//
// Prepare publishes the intent to sleep before the waiter re-checks for
// work; Wake re-checks the state after publishing work. Both sides use
// sequentially consistent atomics, so at least one of them observes the
// other (the classic Dekker handshake) and a wakeup can never be lost.
// Wait can return spuriously (a stale token from a cancelled park); the
// waiter must re-check its work condition after every return.
type Waiter struct {
	state atomic.Uint32
	ch    chan struct{}
}

// NewWaiter returns a ready Waiter.
func NewWaiter() *Waiter {
	return &Waiter{ch: make(chan struct{}, 1)}
}

// Prepare announces that the caller is about to Wait. The caller must
// re-check its work condition between Prepare and Wait.
func (w *Waiter) Prepare() { w.state.Store(parked) }

// Cancel withdraws a Prepare without waiting.
func (w *Waiter) Cancel() { w.state.Store(awake) }

// Wait blocks until a producer's Wake (or consumes a stale token from an
// earlier cancelled park — callers re-check work regardless).
func (w *Waiter) Wait() {
	<-w.ch
	w.state.Store(awake)
}

// Wake unparks the waiter if it is parked (or mid-Prepare). When the
// waiter is running this is a single atomic load — the per-enqueue cost
// that replaces sync.Cond.Signal's lock acquisition. Only the one caller
// that wins the CAS sends the token, so the 1-buffered channel never
// grows a backlog of wakeups.
func (w *Waiter) Wake() {
	if w.state.Load() == parked && w.state.CompareAndSwap(parked, awake) {
		select {
		case w.ch <- struct{}{}:
		default:
		}
	}
}

// Package consumer provides the consumer-process framework of §4.2:
// building blocks for applications that subscribe to Garnet streams, and
// the multi-level consumption mechanism — “consumer processes may generate
// further derived data streams by performing additional processing on
// received data”, forming “an essentially arbitrary graph of consumer
// processes and data streams over the Garnet middleware” (§6).
//
// Derived streams are published under virtual sensor ids (the range from
// VirtualSensorBase up) so they flow through the same filtering,
// dispatching, discovery and orphanage machinery as physical streams, and
// higher-level consumers subscribe to them exactly as they would to a
// sensor.
package consumer

import (
	"sync"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// VirtualSensorBase is the first sensor id reserved for derived-stream
// publishers. Physical sensors must use ids below it.
const VirtualSensorBase wire.SensorID = 0xF0_0000

// IsVirtual reports whether a sensor id belongs to the derived range.
func IsVirtual(id wire.SensorID) bool { return id >= VirtualSensorBase }

// Publisher injects derived messages into the middleware; the deployment
// core implements it by feeding the Dispatching Service.
type Publisher interface {
	PublishDerived(msg wire.Message, at time.Time)
}

// PublisherFunc adapts a function to Publisher.
type PublisherFunc func(msg wire.Message, at time.Time)

// PublishDerived implements Publisher.
func (f PublisherFunc) PublishDerived(msg wire.Message, at time.Time) { f(msg, at) }

// DerivedStream manages sequence numbering and flags for one derived
// stream. Safe for concurrent use.
type DerivedStream struct {
	pub    Publisher
	stream wire.StreamID
	flags  wire.Flags

	mu  sync.Mutex
	seq wire.Seq
}

// NewDerivedStream creates a derived stream publisher. Panics on a nil
// Publisher (programming error).
func NewDerivedStream(pub Publisher, stream wire.StreamID, flags wire.Flags) *DerivedStream {
	if pub == nil {
		panic("consumer: nil publisher")
	}
	return &DerivedStream{pub: pub, stream: stream, flags: flags}
}

// Stream returns the derived stream's id.
func (d *DerivedStream) Stream() wire.StreamID { return d.stream }

// Emit publishes one derived message with the next sequence number.
func (d *DerivedStream) Emit(payload []byte, at time.Time) {
	d.emit(payload, at, 0)
}

// EmitFused publishes one derived message marked as fused from n sources.
func (d *DerivedStream) EmitFused(payload []byte, at time.Time, n int) {
	if n > 255 {
		n = 255
	}
	d.emit(payload, at, uint8(n))
}

func (d *DerivedStream) emit(payload []byte, at time.Time, fused uint8) {
	d.mu.Lock()
	seq := d.seq
	d.seq = d.seq.Next()
	d.mu.Unlock()
	msg := wire.Message{
		Flags:   d.flags,
		Stream:  d.stream,
		Seq:     seq,
		Payload: payload,
	}
	if fused > 0 {
		msg.Flags |= wire.FlagFused
		msg.FusedCount = fused
	}
	d.pub.PublishDerived(msg, at)
}

// Recorder is a consumer that stores the deliveries it receives, keeping
// at most its capacity (oldest discarded). It is the workhorse of tests,
// examples and the experiment harness.
type Recorder struct {
	name string
	cap  int

	mu         sync.Mutex
	deliveries []filtering.Delivery
	total      int64
}

// NewRecorder creates a Recorder keeping up to capacity deliveries
// (default 1024 when capacity <= 0).
func NewRecorder(name string, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{name: name, cap: capacity}
}

// Name implements dispatch.Consumer.
func (r *Recorder) Name() string { return r.name }

// Consume implements dispatch.Consumer.
func (r *Recorder) Consume(d filtering.Delivery) {
	r.mu.Lock()
	if len(r.deliveries) >= r.cap {
		r.deliveries = r.deliveries[1:]
	}
	r.deliveries = append(r.deliveries, d)
	r.total++
	r.mu.Unlock()
}

// Deliveries returns a copy of the retained deliveries, oldest first.
func (r *Recorder) Deliveries() []filtering.Delivery {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]filtering.Delivery, len(r.deliveries))
	copy(out, r.deliveries)
	return out
}

// Count returns the total number of deliveries ever consumed.
func (r *Recorder) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Last returns the most recent delivery.
func (r *Recorder) Last() (filtering.Delivery, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.deliveries) == 0 {
		return filtering.Delivery{}, false
	}
	return r.deliveries[len(r.deliveries)-1], true
}

// AggregateKind selects a window aggregate.
type AggregateKind int

const (
	// AggregateMean emits the arithmetic mean of the window.
	AggregateMean AggregateKind = iota + 1
	// AggregateMin emits the smallest reading.
	AggregateMin
	// AggregateMax emits the largest reading.
	AggregateMax
)

// WindowAggregator is a level-1 consumer: it consumes scalar readings
// (sensor.EncodeReading payloads), folds every `window` of them into one
// aggregate, and emits the aggregate on a derived stream — the canonical
// multi-level consumption example.
type WindowAggregator struct {
	name   string
	out    *DerivedStream
	window int
	kind   AggregateKind

	mu     sync.Mutex
	values []float64
	lastAt time.Time
}

// NewWindowAggregator creates an aggregator emitting on out every window
// readings. Panics on window < 1 or nil out (programming errors).
func NewWindowAggregator(name string, out *DerivedStream, window int, kind AggregateKind) *WindowAggregator {
	if window < 1 {
		panic("consumer: window must be >= 1")
	}
	if out == nil {
		panic("consumer: nil derived stream")
	}
	return &WindowAggregator{name: name, out: out, window: window, kind: kind}
}

// Name implements dispatch.Consumer.
func (w *WindowAggregator) Name() string { return w.name }

// Consume implements dispatch.Consumer. Non-reading payloads are ignored.
func (w *WindowAggregator) Consume(d filtering.Delivery) {
	v, at, ok := sensor.DecodeReading(d.Msg.Payload)
	if !ok {
		return
	}
	w.mu.Lock()
	w.values = append(w.values, v)
	w.lastAt = at
	if len(w.values) < w.window {
		w.mu.Unlock()
		return
	}
	agg := aggregate(w.kind, w.values)
	emitAt := w.lastAt
	w.values = w.values[:0]
	w.mu.Unlock()
	w.out.Emit(sensor.EncodeReading(agg, emitAt), emitAt)
}

func aggregate(kind AggregateKind, values []float64) float64 {
	switch kind {
	case AggregateMin:
		m := values[0]
		for _, v := range values[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case AggregateMax:
		m := values[0]
		for _, v := range values[1:] {
			if v > m {
				m = v
			}
		}
		return m
	default: // AggregateMean
		var sum float64
		for _, v := range values {
			sum += v
		}
		return sum / float64(len(values))
	}
}

// Event is a threshold crossing detected by a ThresholdDetector.
type Event struct {
	Stream wire.StreamID // source stream that crossed
	Value  float64
	At     time.Time
	Rising bool // true when crossing above the threshold
}

// ThresholdDetector is a consumer that watches scalar readings and fires
// events on threshold crossings with hysteresis: a rising event at
// value >= Threshold, and a falling event only after the value drops below
// Threshold - Hysteresis. State is tracked per source stream.
type ThresholdDetector struct {
	name       string
	threshold  float64
	hysteresis float64
	onEvent    func(Event)
	out        *DerivedStream // optional: events also published as a derived stream

	mu    sync.Mutex
	above map[wire.StreamID]bool
}

// NewThresholdDetector creates a detector. onEvent may be nil when out is
// set, and vice versa; panics if both are nil (the detector would be
// pointless).
func NewThresholdDetector(name string, threshold, hysteresis float64, onEvent func(Event), out *DerivedStream) *ThresholdDetector {
	if onEvent == nil && out == nil {
		panic("consumer: detector needs onEvent or a derived stream")
	}
	return &ThresholdDetector{
		name:       name,
		threshold:  threshold,
		hysteresis: hysteresis,
		onEvent:    onEvent,
		out:        out,
		above:      make(map[wire.StreamID]bool),
	}
}

// Name implements dispatch.Consumer.
func (t *ThresholdDetector) Name() string { return t.name }

// Consume implements dispatch.Consumer.
func (t *ThresholdDetector) Consume(d filtering.Delivery) {
	v, at, ok := sensor.DecodeReading(d.Msg.Payload)
	if !ok {
		return
	}
	t.mu.Lock()
	above := t.above[d.Msg.Stream]
	var ev *Event
	switch {
	case !above && v >= t.threshold:
		t.above[d.Msg.Stream] = true
		ev = &Event{Stream: d.Msg.Stream, Value: v, At: at, Rising: true}
	case above && v < t.threshold-t.hysteresis:
		t.above[d.Msg.Stream] = false
		ev = &Event{Stream: d.Msg.Stream, Value: v, At: at, Rising: false}
	}
	t.mu.Unlock()
	if ev == nil {
		return
	}
	if t.onEvent != nil {
		t.onEvent(*ev)
	}
	if t.out != nil {
		t.out.Emit(sensor.EncodeReading(ev.Value, ev.At), ev.At)
	}
}

// Fusion is a consumer that tracks the latest reading from each source
// stream and, whenever every expected source has reported, emits
// reduce(latest values) as a fused derived message (wire.FlagFused).
type Fusion struct {
	name    string
	out     *DerivedStream
	sources []wire.StreamID
	reduce  func([]float64) float64

	mu     sync.Mutex
	latest map[wire.StreamID]float64
}

// NewFusion creates a fusion consumer over the given source streams.
// Panics on empty sources, nil reduce or nil out (programming errors).
func NewFusion(name string, out *DerivedStream, sources []wire.StreamID, reduce func([]float64) float64) *Fusion {
	if len(sources) == 0 || reduce == nil || out == nil {
		panic("consumer: fusion needs sources, reduce and an output stream")
	}
	cp := make([]wire.StreamID, len(sources))
	copy(cp, sources)
	return &Fusion{
		name:    name,
		out:     out,
		sources: cp,
		reduce:  reduce,
		latest:  make(map[wire.StreamID]float64),
	}
}

// Name implements dispatch.Consumer.
func (f *Fusion) Name() string { return f.name }

// Consume implements dispatch.Consumer.
func (f *Fusion) Consume(d filtering.Delivery) {
	v, at, ok := sensor.DecodeReading(d.Msg.Payload)
	if !ok {
		return
	}
	relevant := false
	for _, s := range f.sources {
		if s == d.Msg.Stream {
			relevant = true
			break
		}
	}
	if !relevant {
		return
	}
	f.mu.Lock()
	f.latest[d.Msg.Stream] = v
	if len(f.latest) < len(f.sources) {
		f.mu.Unlock()
		return
	}
	values := make([]float64, 0, len(f.sources))
	for _, s := range f.sources {
		values = append(values, f.latest[s])
	}
	f.mu.Unlock()
	f.out.EmitFused(sensor.EncodeReading(f.reduce(values), at), at, len(values))
}

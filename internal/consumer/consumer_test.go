package consumer

import (
	"sync"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

type pubRecorder struct {
	mu   sync.Mutex
	msgs []wire.Message
	ats  []time.Time
}

func (p *pubRecorder) PublishDerived(msg wire.Message, at time.Time) {
	p.mu.Lock()
	p.msgs = append(p.msgs, msg)
	p.ats = append(p.ats, at)
	p.mu.Unlock()
}

func (p *pubRecorder) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.msgs)
}

func reading(stream wire.StreamID, seq wire.Seq, v float64, at time.Time) filtering.Delivery {
	return filtering.Delivery{
		Msg: wire.Message{Stream: stream, Seq: seq, Payload: sensor.EncodeReading(v, at)},
		At:  at,
	}
}

func TestVirtualSensorRange(t *testing.T) {
	if IsVirtual(0) || IsVirtual(VirtualSensorBase-1) {
		t.Fatal("physical ids classified as virtual")
	}
	if !IsVirtual(VirtualSensorBase) || !IsVirtual(wire.MaxSensorID) {
		t.Fatal("virtual ids not recognised")
	}
}

func TestDerivedStreamSequencesAndFlags(t *testing.T) {
	var pub pubRecorder
	id := wire.MustStreamID(VirtualSensorBase, 0)
	ds := NewDerivedStream(&pub, id, wire.FlagEncrypted)
	ds.Emit([]byte("a"), epoch)
	ds.Emit([]byte("b"), epoch.Add(time.Second))
	if pub.count() != 2 {
		t.Fatalf("published %d", pub.count())
	}
	if pub.msgs[0].Seq != 0 || pub.msgs[1].Seq != 1 {
		t.Fatalf("seqs = %d, %d", pub.msgs[0].Seq, pub.msgs[1].Seq)
	}
	if pub.msgs[0].Stream != id || !pub.msgs[0].Flags.Has(wire.FlagEncrypted) {
		t.Fatalf("msg = %+v", pub.msgs[0])
	}
}

func TestDerivedStreamEmitFused(t *testing.T) {
	var pub pubRecorder
	ds := NewDerivedStream(&pub, wire.MustStreamID(VirtualSensorBase, 1), 0)
	ds.EmitFused([]byte("f"), epoch, 3)
	ds.EmitFused([]byte("g"), epoch, 500) // clamps to 255
	if !pub.msgs[0].Flags.Has(wire.FlagFused) || pub.msgs[0].FusedCount != 3 {
		t.Fatalf("fused msg = %+v", pub.msgs[0])
	}
	if pub.msgs[1].FusedCount != 255 {
		t.Fatalf("fused count = %d, want clamped 255", pub.msgs[1].FusedCount)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder("rec", 3)
	if r.Name() != "rec" {
		t.Fatal("name")
	}
	if _, ok := r.Last(); ok {
		t.Fatal("empty recorder has a last delivery")
	}
	src := wire.MustStreamID(1, 0)
	for i := 0; i < 5; i++ {
		r.Consume(reading(src, wire.Seq(i), float64(i), epoch))
	}
	if r.Count() != 5 {
		t.Fatalf("Count = %d", r.Count())
	}
	ds := r.Deliveries()
	if len(ds) != 3 {
		t.Fatalf("retained %d, want 3", len(ds))
	}
	if ds[0].Msg.Seq != 2 {
		t.Fatalf("oldest retained = %d, want 2", ds[0].Msg.Seq)
	}
	last, ok := r.Last()
	if !ok || last.Msg.Seq != 4 {
		t.Fatalf("Last = %+v, %v", last, ok)
	}
}

func TestWindowAggregatorMean(t *testing.T) {
	var pub pubRecorder
	ds := NewDerivedStream(&pub, wire.MustStreamID(VirtualSensorBase, 0), 0)
	agg := NewWindowAggregator("agg", ds, 3, AggregateMean)
	src := wire.MustStreamID(1, 0)

	for i, v := range []float64{1, 2, 3, 10, 20, 30} {
		agg.Consume(reading(src, wire.Seq(i), v, epoch.Add(time.Duration(i)*time.Second)))
	}
	if pub.count() != 2 {
		t.Fatalf("aggregates = %d, want 2", pub.count())
	}
	v0, _, _ := sensor.DecodeReading(pub.msgs[0].Payload)
	v1, _, _ := sensor.DecodeReading(pub.msgs[1].Payload)
	if v0 != 2 || v1 != 20 {
		t.Fatalf("aggregates = %v, %v; want 2 and 20", v0, v1)
	}
}

func TestWindowAggregatorMinMax(t *testing.T) {
	for _, tt := range []struct {
		kind AggregateKind
		want float64
	}{{AggregateMin, -5}, {AggregateMax, 9}} {
		var pub pubRecorder
		ds := NewDerivedStream(&pub, wire.MustStreamID(VirtualSensorBase, 0), 0)
		agg := NewWindowAggregator("agg", ds, 3, tt.kind)
		src := wire.MustStreamID(1, 0)
		for i, v := range []float64{2, -5, 9} {
			agg.Consume(reading(src, wire.Seq(i), v, epoch))
		}
		got, _, _ := sensor.DecodeReading(pub.msgs[0].Payload)
		if got != tt.want {
			t.Errorf("kind %v: got %v, want %v", tt.kind, got, tt.want)
		}
	}
}

func TestWindowAggregatorIgnoresNonReadings(t *testing.T) {
	var pub pubRecorder
	ds := NewDerivedStream(&pub, wire.MustStreamID(VirtualSensorBase, 0), 0)
	agg := NewWindowAggregator("agg", ds, 1, AggregateMean)
	agg.Consume(filtering.Delivery{Msg: wire.Message{Stream: wire.MustStreamID(1, 0), Payload: []byte("junk")}})
	if pub.count() != 0 {
		t.Fatal("non-reading payload aggregated")
	}
}

func TestThresholdDetectorHysteresis(t *testing.T) {
	var events []Event
	det := NewThresholdDetector("flood", 3.0, 0.5, func(e Event) { events = append(events, e) }, nil)
	src := wire.MustStreamID(1, 0)

	seq := wire.Seq(0)
	feed := func(v float64) {
		det.Consume(reading(src, seq, v, epoch))
		seq++
	}
	feed(1.0) // below: nothing
	feed(3.2) // rising event
	feed(3.8) // still above: nothing
	feed(2.8) // inside hysteresis band [2.5, 3): nothing
	feed(2.2) // below band: falling event
	feed(3.5) // rising again

	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if !events[0].Rising || events[1].Rising || !events[2].Rising {
		t.Fatalf("event directions = %+v", events)
	}
	if events[0].Value != 3.2 || events[1].Value != 2.2 {
		t.Fatalf("event values = %+v", events)
	}
}

func TestThresholdDetectorPerStreamState(t *testing.T) {
	var events []Event
	det := NewThresholdDetector("d", 5, 0, func(e Event) { events = append(events, e) }, nil)
	a, b := wire.MustStreamID(1, 0), wire.MustStreamID(2, 0)
	det.Consume(reading(a, 0, 9, epoch)) // a rises
	det.Consume(reading(b, 0, 9, epoch)) // b rises independently
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2 (per-stream state)", len(events))
	}
}

func TestThresholdDetectorPublishesDerived(t *testing.T) {
	var pub pubRecorder
	ds := NewDerivedStream(&pub, wire.MustStreamID(VirtualSensorBase, 2), 0)
	det := NewThresholdDetector("d", 5, 0, nil, ds)
	det.Consume(reading(wire.MustStreamID(1, 0), 0, 7, epoch))
	if pub.count() != 1 {
		t.Fatalf("derived events = %d", pub.count())
	}
}

func TestFusionEmitsWhenAllSourcesPresent(t *testing.T) {
	var pub pubRecorder
	ds := NewDerivedStream(&pub, wire.MustStreamID(VirtualSensorBase, 0), 0)
	a, b, c := wire.MustStreamID(1, 0), wire.MustStreamID(2, 0), wire.MustStreamID(3, 0)
	sum := func(vs []float64) float64 {
		var s float64
		for _, v := range vs {
			s += v
		}
		return s
	}
	fu := NewFusion("fuse", ds, []wire.StreamID{a, b, c}, sum)

	fu.Consume(reading(a, 0, 1, epoch))
	fu.Consume(reading(b, 0, 2, epoch))
	if pub.count() != 0 {
		t.Fatal("fused before all sources reported")
	}
	fu.Consume(reading(c, 0, 4, epoch))
	if pub.count() != 1 {
		t.Fatalf("fused = %d", pub.count())
	}
	v, _, _ := sensor.DecodeReading(pub.msgs[0].Payload)
	if v != 7 {
		t.Fatalf("fused value = %v, want 7", v)
	}
	if !pub.msgs[0].Flags.Has(wire.FlagFused) || pub.msgs[0].FusedCount != 3 {
		t.Fatalf("fused flags = %+v", pub.msgs[0])
	}
	// Subsequent updates re-emit with the latest values.
	fu.Consume(reading(a, 1, 10, epoch))
	v, _, _ = sensor.DecodeReading(pub.msgs[1].Payload)
	if v != 16 {
		t.Fatalf("refused value = %v, want 16", v)
	}
}

func TestFusionIgnoresUnrelatedStreams(t *testing.T) {
	var pub pubRecorder
	ds := NewDerivedStream(&pub, wire.MustStreamID(VirtualSensorBase, 0), 0)
	a := wire.MustStreamID(1, 0)
	fu := NewFusion("fuse", ds, []wire.StreamID{a}, func(vs []float64) float64 { return vs[0] })
	fu.Consume(reading(wire.MustStreamID(9, 9), 0, 5, epoch))
	if pub.count() != 0 {
		t.Fatal("unrelated stream fused")
	}
}

func TestConstructorValidation(t *testing.T) {
	var pub pubRecorder
	ds := NewDerivedStream(&pub, wire.MustStreamID(VirtualSensorBase, 0), 0)
	for name, fn := range map[string]func(){
		"nil publisher":    func() { NewDerivedStream(nil, 0, 0) },
		"zero window":      func() { NewWindowAggregator("a", ds, 0, AggregateMean) },
		"nil agg stream":   func() { NewWindowAggregator("a", nil, 1, AggregateMean) },
		"pointless det":    func() { NewThresholdDetector("d", 1, 0, nil, nil) },
		"fusion no source": func() { NewFusion("f", ds, nil, func([]float64) float64 { return 0 }) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		})
	}
}

// Multi-level pipeline: raw readings → window mean (level 1) → threshold
// detector (level 2) — the §6 hierarchy, wired by hand.
func TestTwoLevelPipeline(t *testing.T) {
	var events []Event
	var level1 pubRecorder

	meanStream := NewDerivedStream(&level1, wire.MustStreamID(VirtualSensorBase, 0), 0)
	agg := NewWindowAggregator("mean", meanStream, 2, AggregateMean)
	det := NewThresholdDetector("alarm", 5, 0, func(e Event) { events = append(events, e) }, nil)

	src := wire.MustStreamID(1, 0)
	for i, v := range []float64{2, 4, 8, 10} { // means: 3, 9
		agg.Consume(reading(src, wire.Seq(i), v, epoch))
		// Hand-wire level-1 output into level-2 input, as the dispatcher
		// would via a derived-stream subscription.
		for len(level1.msgs) > 0 {
			m := level1.msgs[0]
			level1.msgs = level1.msgs[1:]
			det.Consume(filtering.Delivery{Msg: m, At: epoch})
		}
	}
	if len(events) != 1 || !events[0].Rising || events[0].Value != 9 {
		t.Fatalf("pipeline events = %+v", events)
	}
	if events[0].Stream != meanStream.Stream() {
		t.Fatalf("event source = %v, want derived stream", events[0].Stream)
	}
}

package location

import (
	"errors"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

func newService(clock sim.Clock) *Service {
	s := New(clock, Options{})
	s.RegisterReceiver("rx-a", geo.Pt(0, 0), 100)
	s.RegisterReceiver("rx-b", geo.Pt(100, 0), 100)
	s.RegisterReceiver("rx-c", geo.Pt(50, 100), 100)
	return s
}

func obs(sensor wire.SensorID, rx string, rssi float64, at time.Time) receiver.Reception {
	return receiver.Reception{
		Msg:      wire.Message{Stream: wire.MustStreamID(sensor, 0)},
		Receiver: rx,
		RSSI:     rssi,
		At:       at,
	}
}

func TestLocateUnknownSensor(t *testing.T) {
	s := newService(sim.NewVirtualClock(epoch))
	if _, err := s.Locate(42); !errors.Is(err, ErrUnknownSensor) {
		t.Fatalf("err = %v, want ErrUnknownSensor", err)
	}
}

func TestObserveRejectsUnregisteredReceiver(t *testing.T) {
	s := newService(sim.NewVirtualClock(epoch))
	if err := s.ObserveReception(obs(1, "ghost", 0.5, epoch)); !errors.Is(err, ErrUnknownRx) {
		t.Fatalf("err = %v, want ErrUnknownRx", err)
	}
}

func TestSingleReceiverEstimateAtReceiver(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := newService(clock)
	if err := s.ObserveReception(obs(1, "rx-a", 0.8, clock.Now())); err != nil {
		t.Fatal(err)
	}
	est, err := s.Locate(1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Pos != geo.Pt(0, 0) {
		t.Fatalf("Pos = %v, want receiver position", est.Pos)
	}
	if est.Source != SourceInferred || est.Receivers != 1 {
		t.Fatalf("est = %+v", est)
	}
	// With a single receiver the sensor could be anywhere in the zone:
	// uncertainty must be a large fraction of the zone radius.
	if est.Uncertainty < 20 || est.Uncertainty > 100 {
		t.Fatalf("Uncertainty = %v, want within (20,100]", est.Uncertainty)
	}
}

func TestMultiReceiverCentroidWeightedTowardsStrongerSignal(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := newService(clock)
	// Sensor much closer to rx-a than rx-b.
	if err := s.ObserveReception(obs(1, "rx-a", 0.9, clock.Now())); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveReception(obs(1, "rx-b", 0.1, clock.Now())); err != nil {
		t.Fatal(err)
	}
	est, err := s.Locate(1)
	if err != nil {
		t.Fatal(err)
	}
	// Weighted centroid: 100*0.1/(0.9+0.1) = 10.
	if est.Pos.X < 5 || est.Pos.X > 15 {
		t.Fatalf("Pos.X = %v, want ≈10 (pulled towards rx-a)", est.Pos.X)
	}
	if est.Receivers != 2 || est.Source != SourceInferred {
		t.Fatalf("est = %+v", est)
	}
}

func TestConfidenceGrowsWithReceivers(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := newService(clock)
	var prev float64
	for i, rx := range []string{"rx-a", "rx-b", "rx-c"} {
		if err := s.ObserveReception(obs(1, rx, 0.5, clock.Now())); err != nil {
			t.Fatal(err)
		}
		est, err := s.Locate(1)
		if err != nil {
			t.Fatal(err)
		}
		if est.Confidence <= prev {
			t.Fatalf("confidence did not grow at receiver %d: %v then %v", i+1, prev, est.Confidence)
		}
		prev = est.Confidence
	}
}

func TestObservationsExpireOutsideWindow(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := New(clock, Options{ObservationWindow: 5 * time.Second})
	s.RegisterReceiver("rx-a", geo.Pt(0, 0), 100)
	if err := s.ObserveReception(obs(1, "rx-a", 0.5, clock.Now())); err != nil {
		t.Fatal(err)
	}
	clock.Advance(10 * time.Second)
	if _, err := s.Locate(1); !errors.Is(err, ErrUnknownSensor) {
		t.Fatalf("stale observation still used: %v", err)
	}
}

func TestLatestObservationPerReceiverWins(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := newService(clock)
	if err := s.ObserveReception(obs(1, "rx-a", 0.2, clock.Now())); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	if err := s.ObserveReception(obs(1, "rx-a", 0.9, clock.Now())); err != nil {
		t.Fatal(err)
	}
	est, err := s.Locate(1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Receivers != 1 {
		t.Fatalf("Receivers = %d, want 1 (same receiver twice)", est.Receivers)
	}
}

func TestHintOnlyEstimate(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := newService(clock)
	if err := s.AddHint(7, geo.Pt(30, 40), 0.9, time.Minute, "app"); err != nil {
		t.Fatal(err)
	}
	est, err := s.Locate(7)
	if err != nil {
		t.Fatal(err)
	}
	if est.Pos != geo.Pt(30, 40) || est.Source != SourceHint || est.Hints != 1 {
		t.Fatalf("est = %+v", est)
	}
	if est.Confidence != 0.9 {
		t.Fatalf("Confidence = %v", est.Confidence)
	}
	// High-confidence hints are tight.
	if est.Uncertainty > 10 {
		t.Fatalf("Uncertainty = %v, want small", est.Uncertainty)
	}
}

func TestHintExpires(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := newService(clock)
	if err := s.AddHint(7, geo.Pt(30, 40), 0.9, time.Second, "app"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second)
	if _, err := s.Locate(7); !errors.Is(err, ErrUnknownSensor) {
		t.Fatalf("expired hint still used: %v", err)
	}
}

func TestHintValidation(t *testing.T) {
	s := newService(sim.NewVirtualClock(epoch))
	tests := []struct {
		name string
		conf float64
		ttl  time.Duration
	}{
		{"zero confidence", 0, time.Second},
		{"confidence above one", 1.5, time.Second},
		{"negative confidence", -0.5, time.Second},
		{"zero ttl", 0.5, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := s.AddHint(1, geo.Pt(0, 0), tt.conf, tt.ttl, "x"); !errors.Is(err, ErrBadHint) {
				t.Errorf("err = %v, want ErrBadHint", err)
			}
		})
	}
}

func TestMergedEstimateImprovesOnBoth(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := newService(clock)
	// Ground truth: sensor at (25, 0). Inference sees rx-a strongly.
	if err := s.ObserveReception(obs(1, "rx-a", 0.75, clock.Now())); err != nil {
		t.Fatal(err)
	}
	if err := s.AddHint(1, geo.Pt(25, 0), 0.8, time.Minute, "app"); err != nil {
		t.Fatal(err)
	}
	est, err := s.Locate(1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Source != SourceMerged {
		t.Fatalf("Source = %v, want merged", est.Source)
	}
	// Merged confidence exceeds either input (probabilistic OR).
	if est.Confidence <= 0.8 {
		t.Fatalf("Confidence = %v, want > 0.8", est.Confidence)
	}
	// Estimate pulled from receiver position towards the hint.
	if est.Pos.X <= 0 || est.Pos.X >= 25 {
		t.Fatalf("Pos.X = %v, want in (0, 25)", est.Pos.X)
	}
	truth := geo.Pt(25, 0)
	hintOnlyErr := truth.Dist(geo.Pt(25, 0))
	if est.Pos.Dist(truth) > 25 {
		t.Fatalf("merged error %v too large (hint-only err %v)", est.Pos.Dist(truth), hintOnlyErr)
	}
}

func TestObservationHistoryBounded(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := New(clock, Options{MaxObservationsPerSensor: 4})
	s.RegisterReceiver("rx-a", geo.Pt(0, 0), 100)
	for i := 0; i < 100; i++ {
		if err := s.ObserveReception(obs(1, "rx-a", 0.5, clock.Now())); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Locate(1); err != nil {
		t.Fatal(err)
	}
}

func TestSensorsListing(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := newService(clock)
	for _, id := range []wire.SensorID{5, 1, 9} {
		if err := s.ObserveReception(obs(id, "rx-a", 0.5, clock.Now())); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Sensors()
	if len(got) != 3 || got[0] != 1 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("Sensors = %v", got)
	}
}

func TestComposeUpdates(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := newService(clock)
	if err := s.ObserveReception(obs(3, "rx-a", 0.5, clock.Now())); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveReception(obs(8, "rx-b", 0.5, clock.Now())); err != nil {
		t.Fatal(err)
	}
	msgs := s.ComposeUpdates()
	if len(msgs) != 2 {
		t.Fatalf("updates = %d, want 2", len(msgs))
	}
	for _, m := range msgs {
		if m.Stream.Index() != wire.LocationStreamIndex {
			t.Fatalf("stream index = %d, want reserved location index", m.Stream.Index())
		}
		est, err := DecodeEstimate(m.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if est.Confidence <= 0 {
			t.Fatal("decoded estimate has no confidence")
		}
	}
	// Sequence numbers advance per sensor.
	again := s.ComposeUpdates()
	if again[0].Seq != msgs[0].Seq.Next() {
		t.Fatalf("seq did not advance: %d then %d", msgs[0].Seq, again[0].Seq)
	}
}

func TestEstimateCodecRoundTrip(t *testing.T) {
	e := Estimate{
		Pos:         geo.Pt(12.5, -3.25),
		Confidence:  0.75,
		Uncertainty: 42,
		At:          epoch.Add(90 * time.Minute),
	}
	got, err := DecodeEstimate(EncodeEstimate(e))
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos != e.Pos || got.Confidence != e.Confidence || got.Uncertainty != e.Uncertainty || !got.At.Equal(e.At) {
		t.Fatalf("round trip: %+v vs %+v", got, e)
	}
}

func TestDecodeEstimateTooShort(t *testing.T) {
	if _, err := DecodeEstimate(make([]byte, 10)); !errors.Is(err, ErrEstimateFormat) {
		t.Fatalf("err = %v, want ErrEstimateFormat", err)
	}
}

// Inference accuracy: with a dense receiver grid, the inferred position of
// a sensor should land within a small multiple of the grid pitch.
func TestInferenceAccuracyOnGrid(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	s := New(clock, Options{})
	// 5×5 receiver grid with 25 m pitch over a 125 m square, radius 60 m.
	const pitch, radius = 25.0, 60.0
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			pos := geo.Pt(float64(i)*pitch+12.5, float64(j)*pitch+12.5)
			s.RegisterReceiver(rxName(i, j), pos, radius)
		}
	}
	truth := geo.Pt(55, 70)
	// Simulate receptions: every receiver within radius hears with linear
	// RSSI (mirroring the receiver package's model).
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			pos := geo.Pt(float64(i)*pitch+12.5, float64(j)*pitch+12.5)
			d := pos.Dist(truth)
			if d < radius {
				if err := s.ObserveReception(obs(1, rxName(i, j), 1-d/radius, clock.Now())); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	est, err := s.Locate(1)
	if err != nil {
		t.Fatal(err)
	}
	if e := est.Pos.Dist(truth); e > pitch {
		t.Fatalf("inference error %.1f m exceeds grid pitch %v", e, pitch)
	}
}

func rxName(i, j int) string { return "rx-" + string(rune('a'+i)) + string(rune('0'+j)) }

// Package location implements the Location Service of §4.2: it “receives
// location information which is inferred by the Receivers”, merges it with
// location hints supplied by consumers processing location-aware streams,
// and answers the Message Replicator's queries when control messages must
// be targeted at a sensor's expected location area.
//
// Per §5, location is inferred “without the active involvement of the
// sensors”: the only inputs are which receivers heard a sensor and how
// strongly (an RSSI-weighted centroid of receiver positions), plus
// consumer hints with explicit confidence and expiry. Location estimates
// are themselves published as data streams on the reserved stream index
// wire.LocationStreamIndex, protected by registry.PermLocation — “location
// data [treated] as any other data stream … protected by additional
// security mechanisms” (§2).
package location

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Source records what produced an estimate.
type Source int

const (
	// SourceInferred means only reception data contributed.
	SourceInferred Source = iota + 1
	// SourceHint means only consumer hints contributed.
	SourceHint
	// SourceMerged means both contributed.
	SourceMerged
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceInferred:
		return "inferred"
	case SourceHint:
		return "hint"
	case SourceMerged:
		return "merged"
	default:
		return "source(?)"
	}
}

// Estimate is the service's belief about one sensor's position.
type Estimate struct {
	Sensor      wire.SensorID
	Pos         geo.Point
	Uncertainty float64 // radius (metres) of the expected location area
	Confidence  float64 // (0, 1]
	At          time.Time
	Source      Source
	Receivers   int // distinct receivers contributing
	Hints       int // unexpired hints contributing
}

// Options configures the Service. The zero value uses the defaults.
type Options struct {
	// ObservationWindow is how long a reception contributes to estimates.
	// Default 10s.
	ObservationWindow time.Duration
	// MaxObservationsPerSensor bounds per-sensor reception history.
	// Default 64.
	MaxObservationsPerSensor int
	// HintUncertaintyBase scales hint uncertainty: a hint with confidence
	// c has uncertainty (1-c)*HintUncertaintyBase + 1 metres. Default 50.
	HintUncertaintyBase float64
}

// Service errors.
var (
	ErrUnknownSensor  = errors.New("location: no data for sensor")
	ErrUnknownRx      = errors.New("location: reception from unregistered receiver")
	ErrBadHint        = errors.New("location: invalid hint")
	ErrEstimateFormat = errors.New("location: bad estimate payload")
)

type observation struct {
	receiver string
	rssi     float64
	at       time.Time
}

type hint struct {
	pos        geo.Point
	confidence float64
	expires    time.Time
	from       string
}

type track struct {
	obs    []observation // FIFO, bounded
	hints  []hint
	locSeq wire.Seq // sequence counter for published location messages
}

// Service is the Location Service.
type Service struct {
	clock sim.Clock
	opts  Options

	mu        sync.Mutex
	receivers map[string]receiverSite
	sensors   map[wire.SensorID]*track
}

type receiverSite struct {
	pos    geo.Point
	radius float64
}

// New creates a Service.
func New(clock sim.Clock, opts Options) *Service {
	if opts.ObservationWindow <= 0 {
		opts.ObservationWindow = 10 * time.Second
	}
	if opts.MaxObservationsPerSensor <= 0 {
		opts.MaxObservationsPerSensor = 64
	}
	if opts.HintUncertaintyBase <= 0 {
		opts.HintUncertaintyBase = 50
	}
	return &Service{
		clock:     clock,
		opts:      opts,
		receivers: make(map[string]receiverSite),
		sensors:   make(map[wire.SensorID]*track),
	}
}

// RegisterReceiver teaches the service where a receiver sits and how far
// its zone reaches. Receptions from unregistered receivers are rejected.
func (s *Service) RegisterReceiver(name string, pos geo.Point, radius float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.receivers[name] = receiverSite{pos: pos, radius: radius}
}

// ObserveReception folds one reception record into the sensor's track.
// Duplicate copies from overlapping receivers are valuable here (each
// contributes an independent bearing), so the core feeds this from the
// receivers directly, before duplicate elimination.
func (s *Service) ObserveReception(rc receiver.Reception) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.receivers[rc.Receiver]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRx, rc.Receiver)
	}
	tr := s.trackLocked(rc.Msg.Stream.Sensor())
	tr.obs = append(tr.obs, observation{receiver: rc.Receiver, rssi: rc.RSSI, at: rc.At})
	if len(tr.obs) > s.opts.MaxObservationsPerSensor {
		tr.obs = tr.obs[len(tr.obs)-s.opts.MaxObservationsPerSensor:]
	}
	return nil
}

func (s *Service) trackLocked(id wire.SensorID) *track {
	tr, ok := s.sensors[id]
	if !ok {
		tr = &track{}
		s.sensors[id] = tr
	}
	return tr
}

// AddHint records a consumer-supplied location hint. Confidence must lie
// in (0, 1] and ttl must be positive.
func (s *Service) AddHint(sensor wire.SensorID, pos geo.Point, confidence float64, ttl time.Duration, from string) error {
	if confidence <= 0 || confidence > 1 {
		return fmt.Errorf("%w: confidence %v", ErrBadHint, confidence)
	}
	if ttl <= 0 {
		return fmt.Errorf("%w: ttl %v", ErrBadHint, ttl)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tr := s.trackLocked(sensor)
	tr.hints = append(tr.hints, hint{
		pos:        pos,
		confidence: confidence,
		expires:    s.clock.Now().Add(ttl),
		from:       from,
	})
	return nil
}

// Locate computes the current estimate for a sensor by merging fresh
// reception evidence with unexpired hints.
func (s *Service) Locate(sensor wire.SensorID) (Estimate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.locateLocked(sensor)
}

func (s *Service) locateLocked(sensor wire.SensorID) (Estimate, error) {
	tr, ok := s.sensors[sensor]
	if !ok {
		return Estimate{}, fmt.Errorf("%w: %d", ErrUnknownSensor, sensor)
	}
	now := s.clock.Now()
	cutoff := now.Add(-s.opts.ObservationWindow)

	// Latest fresh observation per receiver, weighted by RSSI × freshness.
	latest := make(map[string]observation)
	for _, o := range tr.obs {
		if o.at.Before(cutoff) {
			continue
		}
		if prev, ok := latest[o.receiver]; !ok || o.at.After(prev.at) {
			latest[o.receiver] = o
		}
	}
	var (
		pts      []geo.Point
		wts      []float64
		radiusWt float64
	)
	names := make([]string, 0, len(latest))
	for name := range latest {
		names = append(names, name)
	}
	sort.Strings(names) // determinism
	for _, name := range names {
		o := latest[name]
		site := s.receivers[o.receiver]
		freshness := 1 - float64(now.Sub(o.at))/float64(s.opts.ObservationWindow)
		if freshness < 0.05 {
			freshness = 0.05
		}
		w := o.rssi * freshness
		pts = append(pts, site.pos)
		wts = append(wts, w)
		radiusWt += site.radius * w
	}

	// Unexpired hints.
	live := tr.hints[:0]
	for _, h := range tr.hints {
		if h.expires.After(now) {
			live = append(live, h)
		}
	}
	tr.hints = live

	est := Estimate{Sensor: sensor, At: now, Receivers: len(pts), Hints: len(live)}
	var inferred *Estimate
	if len(pts) > 0 {
		c, err := geo.WeightedCentroid(pts, wts)
		if err == nil {
			var totalW float64
			for _, w := range wts {
				totalW += w
			}
			e := Estimate{
				Pos:        c,
				Confidence: float64(len(pts)) / float64(len(pts)+1),
			}
			if len(pts) == 1 {
				// One receiver: the sensor is somewhere in its zone, biased
				// towards the RSSI-implied range ring.
				e.Uncertainty = (radiusWt / totalW) * (1 - wts[0]*0.5)
			} else {
				e.Uncertainty = spread(pts, wts, c)
				if e.Uncertainty < 5 {
					e.Uncertainty = 5
				}
			}
			inferred = &e
		}
	}

	var hinted *Estimate
	if len(live) > 0 {
		hp := make([]geo.Point, len(live))
		hw := make([]float64, len(live))
		var bestConf float64
		for i, h := range live {
			hp[i], hw[i] = h.pos, h.confidence
			if h.confidence > bestConf {
				bestConf = h.confidence
			}
		}
		c, err := geo.WeightedCentroid(hp, hw)
		if err == nil {
			hinted = &Estimate{
				Pos:         c,
				Confidence:  bestConf,
				Uncertainty: (1-bestConf)*s.opts.HintUncertaintyBase + 1,
			}
		}
	}

	switch {
	case inferred != nil && hinted != nil:
		wi, wh := inferred.Confidence, hinted.Confidence
		c, err := geo.WeightedCentroid(
			[]geo.Point{inferred.Pos, hinted.Pos}, []float64{wi, wh})
		if err != nil {
			return Estimate{}, fmt.Errorf("%w: %d", ErrUnknownSensor, sensor)
		}
		est.Pos = c
		est.Confidence = 1 - (1-wi)*(1-wh) // probabilistic OR
		est.Uncertainty = (inferred.Uncertainty*wi + hinted.Uncertainty*wh) / (wi + wh)
		est.Source = SourceMerged
	case inferred != nil:
		est.Pos, est.Confidence, est.Uncertainty = inferred.Pos, inferred.Confidence, inferred.Uncertainty
		est.Source = SourceInferred
	case hinted != nil:
		est.Pos, est.Confidence, est.Uncertainty = hinted.Pos, hinted.Confidence, hinted.Uncertainty
		est.Source = SourceHint
	default:
		return Estimate{}, fmt.Errorf("%w: %d (no fresh data)", ErrUnknownSensor, sensor)
	}
	return est, nil
}

// spread is the weighted RMS distance of points from c — the service's
// uncertainty proxy when several receivers triangulate a sensor.
func spread(pts []geo.Point, wts []float64, c geo.Point) float64 {
	var sum, total float64
	for i, p := range pts {
		d := p.Dist(c)
		sum += wts[i] * d * d
		total += wts[i]
	}
	if total == 0 {
		return 0
	}
	return math.Sqrt(sum / total)
}

// Sensors lists every sensor with any track state, sorted.
func (s *Service) Sensors() []wire.SensorID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]wire.SensorID, 0, len(s.sensors))
	for id := range s.sensors {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EstimatePayloadSize is the encoded size of a published location
// estimate payload.
const EstimatePayloadSize = 8*4 + 8

// ComposeUpdates builds one location data message per locatable sensor,
// on the reserved stream index, with per-sensor sequence numbers — the
// mechanism by which location data becomes “any other data stream”. The
// caller (the deployment core) injects these into the Dispatching Service.
func (s *Service) ComposeUpdates() []wire.Message {
	s.mu.Lock()
	ids := make([]wire.SensorID, 0, len(s.sensors))
	for id := range s.sensors {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var msgs []wire.Message
	for _, id := range ids {
		est, err := s.locateLocked(id)
		if err != nil {
			continue
		}
		tr := s.sensors[id]
		msg := wire.Message{
			Stream:  wire.MustStreamID(id, wire.LocationStreamIndex),
			Seq:     tr.locSeq,
			Payload: EncodeEstimate(est),
		}
		tr.locSeq = tr.locSeq.Next()
		msgs = append(msgs, msg)
	}
	s.mu.Unlock()
	return msgs
}

// EncodeEstimate serialises an estimate into the location stream payload
// convention: X, Y, Confidence, Uncertainty as IEEE-754 doubles, then the
// estimate time in µs since the Unix epoch; all big-endian.
func EncodeEstimate(e Estimate) []byte {
	buf := make([]byte, EstimatePayloadSize)
	binary.BigEndian.PutUint64(buf[0:], math.Float64bits(e.Pos.X))
	binary.BigEndian.PutUint64(buf[8:], math.Float64bits(e.Pos.Y))
	binary.BigEndian.PutUint64(buf[16:], math.Float64bits(e.Confidence))
	binary.BigEndian.PutUint64(buf[24:], math.Float64bits(e.Uncertainty))
	binary.BigEndian.PutUint64(buf[32:], uint64(e.At.UnixMicro()))
	return buf
}

// DecodeEstimate parses a payload produced by EncodeEstimate. The Sensor,
// Source, Receivers and Hints fields are not carried on the wire.
func DecodeEstimate(payload []byte) (Estimate, error) {
	if len(payload) < EstimatePayloadSize {
		return Estimate{}, fmt.Errorf("%w: %d bytes", ErrEstimateFormat, len(payload))
	}
	return Estimate{
		Pos: geo.Pt(
			math.Float64frombits(binary.BigEndian.Uint64(payload[0:])),
			math.Float64frombits(binary.BigEndian.Uint64(payload[8:])),
		),
		Confidence:  math.Float64frombits(binary.BigEndian.Uint64(payload[16:])),
		Uncertainty: math.Float64frombits(binary.BigEndian.Uint64(payload[24:])),
		At:          time.UnixMicro(int64(binary.BigEndian.Uint64(payload[32:]))).UTC(),
	}, nil
}

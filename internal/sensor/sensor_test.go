package sensor

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/field"
	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

type uplinkTap struct {
	mu   sync.Mutex
	msgs []wire.Message
}

func (u *uplinkTap) attach(m *radio.Medium) {
	m.Attach(radio.BandUplink, &radio.Listener{
		Name:     "tap",
		Position: func() geo.Point { return geo.Pt(0, 0) },
		Radius:   1e9,
		Deliver: func(f radio.Frame) {
			msg, _, err := wire.DecodeMessage(f.Data)
			if err != nil {
				return
			}
			u.mu.Lock()
			u.msgs = append(u.msgs, msg)
			u.mu.Unlock()
		},
	})
}

func (u *uplinkTap) all() []wire.Message {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make([]wire.Message, len(u.msgs))
	copy(out, u.msgs)
	return out
}

func testRig(t *testing.T) (*sim.VirtualClock, *radio.Medium, *uplinkTap) {
	t.Helper()
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	tap := &uplinkTap{}
	tap.attach(medium)
	return clock, medium, tap
}

func basicConfig(id wire.SensorID) Config {
	return Config{
		ID:       id,
		Mobility: field.Static{P: geo.Pt(0, 0)},
		TxRange:  100,
		Streams: []StreamConfig{{
			Index:   0,
			Sampler: ConstantSampler([]byte("data")),
			Period:  time.Second,
			Enabled: true,
		}},
	}
}

func sendControl(t *testing.T, clock sim.Clock, medium *radio.Medium, c wire.ControlMessage) {
	t.Helper()
	c.Issued = clock.Now()
	frame, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	medium.Broadcast(radio.BandDownlink, geo.Pt(0, 0), 1e9, frame)
}

func TestNodeSamplesPeriodically(t *testing.T) {
	clock, medium, tap := testRig(t)
	n, err := New(clock, medium, basicConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	clock.Advance(5 * time.Second)
	msgs := tap.all()
	if len(msgs) != 5 {
		t.Fatalf("received %d messages, want 5", len(msgs))
	}
	for i, m := range msgs {
		if m.Stream != wire.MustStreamID(7, 0) {
			t.Errorf("msg %d stream = %v", i, m.Stream)
		}
		if m.Seq != wire.Seq(i) {
			t.Errorf("msg %d seq = %d, want %d", i, m.Seq, i)
		}
		if string(m.Payload) != "data" {
			t.Errorf("msg %d payload = %q", i, m.Payload)
		}
	}
}

func TestNodeMultipleStreams(t *testing.T) {
	clock, medium, tap := testRig(t)
	cfg := basicConfig(3)
	cfg.Streams = append(cfg.Streams, StreamConfig{
		Index:   5,
		Sampler: ConstantSampler([]byte("fast")),
		Period:  250 * time.Millisecond,
		Enabled: true,
	})
	n, err := New(clock, medium, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	clock.Advance(2 * time.Second)
	var slow, fast int
	for _, m := range tap.all() {
		switch m.Stream.Index() {
		case 0:
			slow++
		case 5:
			fast++
		}
	}
	if slow != 2 || fast != 8 {
		t.Fatalf("slow=%d fast=%d, want 2 and 8", slow, fast)
	}
}

func TestDisabledStreamDoesNotTransmit(t *testing.T) {
	clock, medium, tap := testRig(t)
	cfg := basicConfig(3)
	cfg.Streams[0].Enabled = false
	n, err := New(clock, medium, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	clock.Advance(10 * time.Second)
	if len(tap.all()) != 0 {
		t.Fatal("disabled stream transmitted")
	}
}

func TestSimpleNodeIgnoresDownlink(t *testing.T) {
	clock, medium, tap := testRig(t)
	n, err := New(clock, medium, basicConfig(9)) // no CapReceive
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	sendControl(t, clock, medium, wire.ControlMessage{
		UpdateID: 1, Target: wire.MustStreamID(9, 0), Op: wire.OpSetRate, Value: 10_000, // 10 Hz
	})
	clock.Advance(3 * time.Second)

	if got := len(tap.all()); got != 3 {
		t.Fatalf("got %d messages, want 3 (rate change must be ignored)", got)
	}
	if st := n.Stats(); st.ControlsReceived != 0 {
		t.Fatalf("simple node received %d controls", st.ControlsReceived)
	}
}

func TestReceiveCapableNodeAppliesSetRate(t *testing.T) {
	clock, medium, tap := testRig(t)
	cfg := basicConfig(9)
	cfg.Capabilities = CapReceive
	n, err := New(clock, medium, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	clock.Advance(2 * time.Second) // 2 messages at 1 Hz
	sendControl(t, clock, medium, wire.ControlMessage{
		UpdateID: 42, Target: wire.MustStreamID(9, 0), Op: wire.OpSetRate, Value: 4000, // 4 Hz
	})
	clock.Advance(2 * time.Second) // 8 more at 4 Hz

	msgs := tap.all()
	if len(msgs) != 10 {
		t.Fatalf("got %d messages, want 10", len(msgs))
	}
	if p, _ := n.StreamPeriod(0); p != 250*time.Millisecond {
		t.Fatalf("period = %v, want 250ms", p)
	}
	// The first message after the control carries the ack.
	ackMsg := msgs[2]
	if !ackMsg.Flags.Has(wire.FlagUpdateAck) || ackMsg.AckID != 42 {
		t.Fatalf("first post-control message: flags=%v ackID=%d, want ack 42", ackMsg.Flags, ackMsg.AckID)
	}
	// Later messages do not repeat the ack.
	if msgs[3].Flags.Has(wire.FlagUpdateAck) {
		t.Fatal("ack repeated on subsequent message")
	}
}

func TestEnableDisableStream(t *testing.T) {
	clock, medium, tap := testRig(t)
	cfg := basicConfig(4)
	cfg.Capabilities = CapReceive
	n, err := New(clock, medium, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	sendControl(t, clock, medium, wire.ControlMessage{
		UpdateID: 1, Target: wire.MustStreamID(4, 0), Op: wire.OpDisableStream,
	})
	clock.Advance(5 * time.Second)
	afterDisable := len(tap.all())
	if afterDisable != 0 {
		t.Fatalf("%d messages after disable, want 0", afterDisable)
	}
	if n.StreamEnabled(0) {
		t.Fatal("stream still enabled")
	}

	sendControl(t, clock, medium, wire.ControlMessage{
		UpdateID: 2, Target: wire.MustStreamID(4, 0), Op: wire.OpEnableStream,
	})
	clock.Advance(3 * time.Second)
	if got := len(tap.all()); got != 3 {
		t.Fatalf("%d messages after enable, want 3", got)
	}
	if !n.StreamEnabled(0) {
		t.Fatal("stream not re-enabled")
	}
}

func TestPayloadLimitTruncates(t *testing.T) {
	clock, medium, tap := testRig(t)
	cfg := basicConfig(5)
	cfg.Capabilities = CapReceive
	cfg.Streams[0].Sampler = ConstantSampler([]byte("0123456789"))
	n, err := New(clock, medium, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	sendControl(t, clock, medium, wire.ControlMessage{
		UpdateID: 1, Target: wire.MustStreamID(5, 0), Op: wire.OpSetPayloadLimit, Value: 4,
	})
	clock.Advance(time.Second)
	msgs := tap.all()
	if len(msgs) != 1 {
		t.Fatalf("got %d messages", len(msgs))
	}
	if string(msgs[0].Payload) != "0123" {
		t.Fatalf("payload = %q, want truncated \"0123\"", msgs[0].Payload)
	}
}

func TestSetParamAndPing(t *testing.T) {
	clock, medium, tap := testRig(t)
	cfg := basicConfig(6)
	cfg.Capabilities = CapReceive
	n, err := New(clock, medium, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	sendControl(t, clock, medium, wire.ControlMessage{
		UpdateID: 10, Target: wire.MustStreamID(6, 0), Op: wire.OpSetParam, Param: 3, Value: 777,
	})
	sendControl(t, clock, medium, wire.ControlMessage{
		UpdateID: 11, Target: wire.MustStreamID(6, 0), Op: wire.OpPing,
	})
	clock.Advance(2 * time.Second)

	if v, ok := n.Param(3); !ok || v != 777 {
		t.Fatalf("Param(3) = %d,%v want 777", v, ok)
	}
	// Both acks piggyback on the next two data messages, in order.
	msgs := tap.all()
	if len(msgs) < 2 {
		t.Fatalf("got %d messages", len(msgs))
	}
	if msgs[0].AckID != 10 || !msgs[0].Flags.Has(wire.FlagUpdateAck) {
		t.Fatalf("first ack = %d", msgs[0].AckID)
	}
	if msgs[1].AckID != 11 || !msgs[1].Flags.Has(wire.FlagUpdateAck) {
		t.Fatalf("second ack = %d", msgs[1].AckID)
	}
}

func TestDuplicateControlNotDoubleAcked(t *testing.T) {
	clock, medium, tap := testRig(t)
	cfg := basicConfig(6)
	cfg.Capabilities = CapReceive
	n, err := New(clock, medium, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	// The same request delivered twice before any uplink message goes out
	// (e.g. heard via two transmitters) must queue a single ack.
	c := wire.ControlMessage{UpdateID: 9, Target: wire.MustStreamID(6, 0), Op: wire.OpPing}
	sendControl(t, clock, medium, c)
	sendControl(t, clock, medium, c)
	clock.Advance(2 * time.Second)

	acks := 0
	for _, m := range tap.all() {
		if m.Flags.Has(wire.FlagUpdateAck) {
			acks++
		}
	}
	if acks != 1 {
		t.Fatalf("acks = %d, want 1", acks)
	}
}

func TestControlForOtherSensorIgnored(t *testing.T) {
	clock, medium, _ := testRig(t)
	cfg := basicConfig(6)
	cfg.Capabilities = CapReceive
	n, err := New(clock, medium, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	sendControl(t, clock, medium, wire.ControlMessage{
		UpdateID: 1, Target: wire.MustStreamID(99, 0), Op: wire.OpPing,
	})
	clock.Advance(100 * time.Millisecond)
	if st := n.Stats(); st.ControlsReceived != 0 {
		t.Fatalf("received %d controls addressed elsewhere", st.ControlsReceived)
	}
}

func TestControlUnknownStreamIgnoredNotAcked(t *testing.T) {
	clock, medium, tap := testRig(t)
	cfg := basicConfig(6)
	cfg.Capabilities = CapReceive
	n, err := New(clock, medium, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	sendControl(t, clock, medium, wire.ControlMessage{
		UpdateID: 1, Target: wire.MustStreamID(6, 200), Op: wire.OpSetRate, Value: 1000,
	})
	clock.Advance(2 * time.Second)
	st := n.Stats()
	if st.ControlsIgnored != 1 || st.ControlsApplied != 0 {
		t.Fatalf("ignored=%d applied=%d, want 1/0", st.ControlsIgnored, st.ControlsApplied)
	}
	for _, m := range tap.all() {
		if m.Flags.Has(wire.FlagUpdateAck) {
			t.Fatal("inapplicable control was acked")
		}
	}
}

func TestLocationAwareFlag(t *testing.T) {
	clock, medium, tap := testRig(t)
	cfg := basicConfig(8)
	cfg.Capabilities = CapLocationAware
	n, err := New(clock, medium, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	clock.Advance(time.Second)
	msgs := tap.all()
	if len(msgs) != 1 || !msgs[0].Flags.Has(wire.FlagLocationAware) {
		t.Fatal("location-aware flag missing")
	}
}

func TestEnergyAccountingAndBatteryDeath(t *testing.T) {
	clock, medium, tap := testRig(t)
	cfg := basicConfig(2)
	cfg.Energy = EnergyParams{TxBase: 1, TxPerByte: 0, PerSample: 0}
	cfg.Battery = 3.5 // enough for 3 transmissions
	n, err := New(clock, medium, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	clock.Advance(10 * time.Second)
	if got := len(tap.all()); got != 3 {
		t.Fatalf("sent %d messages, want 3 before battery death", got)
	}
	if n.Alive() {
		t.Fatal("node should be dead")
	}
	if e := n.EnergyUsed(); e != 3 {
		t.Fatalf("energy used = %v, want 3", e)
	}
}

func TestEnergyPerByteCharged(t *testing.T) {
	clock, medium, _ := testRig(t)
	cfg := basicConfig(2)
	cfg.Streams[0].Sampler = ConstantSampler(make([]byte, 10))
	cfg.Energy = EnergyParams{TxPerByte: 0.5}
	n, err := New(clock, medium, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	clock.Advance(time.Second)
	// Frame = 9 header + 10 payload + 2 checksum = 21 bytes → 10.5 mJ.
	if e := n.EnergyUsed(); e != 10.5 {
		t.Fatalf("energy = %v, want 10.5", e)
	}
}

func TestRoamingOutOfRangeLosesMessages(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	tap := &uplinkTap{}
	// Receiver with a tight 50 m zone at the origin.
	medium.Attach(radio.BandUplink, &radio.Listener{
		Name:     "rx",
		Position: func() geo.Point { return geo.Pt(0, 0) },
		Radius:   50,
		Deliver: func(f radio.Frame) {
			msg, _, err := wire.DecodeMessage(f.Data)
			if err == nil {
				tap.mu.Lock()
				tap.msgs = append(tap.msgs, msg)
				tap.mu.Unlock()
			}
		},
	})
	cfg := basicConfig(1)
	// Walk straight out of coverage at 10 m/s starting at the origin.
	cfg.Mobility = field.Linear{Start: geo.Pt(0, 0), Velocity: geo.Pt(10, 0), Epoch: epoch}
	n, err := New(clock, medium, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	clock.Advance(10 * time.Second)
	// In range for the first 5 seconds (≤50 m), out after.
	got := len(tap.all())
	if got != 5 {
		t.Fatalf("received %d messages, want 5 (sensor roamed out of zone)", got)
	}
}

func TestTriggerSample(t *testing.T) {
	clock, medium, tap := testRig(t)
	cfg := basicConfig(1)
	cfg.Streams[0].Enabled = false
	n, err := New(clock, medium, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	if err := n.TriggerSample(0); err != nil {
		t.Fatal(err)
	}
	if err := n.TriggerSample(99); err == nil {
		t.Fatal("TriggerSample on unknown stream should fail")
	}
	clock.RunAll()
	if len(tap.all()) != 1 {
		t.Fatalf("got %d messages, want 1", len(tap.all()))
	}
}

func TestStopHaltsTransmission(t *testing.T) {
	clock, medium, tap := testRig(t)
	n, err := New(clock, medium, basicConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	clock.Advance(2 * time.Second)
	n.Stop()
	clock.Advance(10 * time.Second)
	if got := len(tap.all()); got != 2 {
		t.Fatalf("messages after stop: %d, want 2", got)
	}
}

func TestConfigValidation(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr error
	}{
		{"sensor id too large", func(c *Config) { c.ID = wire.MaxSensorID + 1 }, wire.ErrSensorRange},
		{"nil mobility", func(c *Config) { c.Mobility = nil }, ErrNoMobility},
		{"zero tx range", func(c *Config) { c.TxRange = 0 }, ErrBadStream},
		{"zero period", func(c *Config) { c.Streams[0].Period = 0 }, ErrBadStream},
		{"nil sampler", func(c *Config) { c.Streams[0].Sampler = nil }, ErrBadStream},
		{"duplicate index", func(c *Config) {
			c.Streams = append(c.Streams, StreamConfig{Index: 0, Sampler: ConstantSampler(nil), Period: time.Second})
		}, ErrDuplicateIx},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := basicConfig(1)
			tt.mutate(&cfg)
			if _, err := New(clock, medium, cfg); !errors.Is(err, tt.wantErr) {
				t.Errorf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestSamplerHelpers(t *testing.T) {
	t.Run("sized", func(t *testing.T) {
		if got := len(SizedSampler(32)(epoch, 0)); got != 32 {
			t.Errorf("SizedSampler length = %d", got)
		}
	})
	t.Run("reading round trip", func(t *testing.T) {
		at := epoch.Add(123456 * time.Microsecond)
		payload := EncodeReading(21.5, at)
		v, ts, ok := DecodeReading(payload)
		if !ok || v != 21.5 || !ts.Equal(at) {
			t.Errorf("DecodeReading = %v %v %v", v, ts, ok)
		}
	})
	t.Run("reading too short", func(t *testing.T) {
		if _, _, ok := DecodeReading([]byte{1, 2, 3}); ok {
			t.Error("short payload should not decode")
		}
	})
	t.Run("float sampler", func(t *testing.T) {
		s := FloatSampler(func(time.Time) float64 { return 42 })
		v, _, ok := DecodeReading(s(epoch, 0))
		if !ok || v != 42 {
			t.Errorf("FloatSampler reading = %v %v", v, ok)
		}
	})
}

func TestStatsSnapshot(t *testing.T) {
	clock, medium, _ := testRig(t)
	cfg := basicConfig(1)
	cfg.Capabilities = CapReceive
	n, err := New(clock, medium, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	sendControl(t, clock, medium, wire.ControlMessage{UpdateID: 5, Target: wire.MustStreamID(1, 0), Op: wire.OpPing})
	clock.Advance(3 * time.Second)
	st := n.Stats()
	if st.MessagesSent != 3 || st.SamplesTaken != 3 {
		t.Errorf("sent=%d samples=%d, want 3/3", st.MessagesSent, st.SamplesTaken)
	}
	if st.ControlsReceived != 1 || st.ControlsApplied != 1 || st.AcksSent != 1 {
		t.Errorf("controls: recv=%d applied=%d acks=%d, want 1/1/1", st.ControlsReceived, st.ControlsApplied, st.AcksSent)
	}
	if !st.Alive {
		t.Error("node should be alive")
	}
	if st.BytesSent == 0 {
		t.Error("BytesSent should be non-zero")
	}
}

// sendControlAt broadcasts a control message with an explicit issue
// timestamp (sendControl stamps clock.Now()), for simulating downlink
// reordering: a delayed retransmission arriving after a newer setting.
func sendControlAt(t *testing.T, medium *radio.Medium, c wire.ControlMessage, issued time.Time) {
	t.Helper()
	c.Issued = issued
	frame, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	medium.Broadcast(radio.BandDownlink, geo.Pt(0, 0), 1e9, frame)
}

// The downlink has no ordering guarantee: jitter (or a retry of a
// superseded request) can deliver an older setting after a newer one.
// The node must apply settings in issue order — a control message whose
// issue timestamp is older than the last applied for the same setting is
// ignored and not acked, so the stale value can never revert the sensor.
func TestStaleControlIgnoredByIssueOrder(t *testing.T) {
	clock, medium, _ := testRig(t)
	cfg := basicConfig(9)
	cfg.Capabilities = CapReceive
	n, err := New(clock, medium, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	target := wire.MustStreamID(9, 0)
	newer := clock.Now().Add(2 * time.Second)
	older := clock.Now().Add(1 * time.Second)

	// The newer setting (4 Hz) arrives first.
	sendControlAt(t, medium, wire.ControlMessage{
		UpdateID: 2, Target: target, Op: wire.OpSetRate, Value: 4000,
	}, newer)
	clock.Advance(time.Millisecond)
	if p, _ := n.StreamPeriod(0); p != 250*time.Millisecond {
		t.Fatalf("period = %v, want 250ms", p)
	}

	// The older setting (10 Hz) is a delayed retransmission: stale, ignored.
	sendControlAt(t, medium, wire.ControlMessage{
		UpdateID: 1, Target: target, Op: wire.OpSetRate, Value: 10_000,
	}, older)
	clock.Advance(time.Millisecond)
	if p, _ := n.StreamPeriod(0); p != 250*time.Millisecond {
		t.Fatalf("period = %v after stale control, want 250ms kept", p)
	}
	st := n.Stats()
	if st.ControlsApplied != 1 || st.ControlsIgnored != 1 {
		t.Fatalf("controls: applied=%d ignored=%d, want 1/1", st.ControlsApplied, st.ControlsIgnored)
	}

	// A retransmission of the applied setting (equal timestamp) still
	// applies and re-acks — duplicate deliveries of a retried request
	// must keep acking, or the middleware would retry forever.
	sendControlAt(t, medium, wire.ControlMessage{
		UpdateID: 2, Target: target, Op: wire.OpSetRate, Value: 4000,
	}, newer)
	clock.Advance(time.Millisecond)
	if st := n.Stats(); st.ControlsApplied != 2 || st.ControlsIgnored != 1 {
		t.Fatalf("controls after dup: applied=%d ignored=%d, want 2/1", st.ControlsApplied, st.ControlsIgnored)
	}

	// Ordering is per setting: an older-stamped control for a different
	// setting class (payload limit) is not stale.
	sendControlAt(t, medium, wire.ControlMessage{
		UpdateID: 3, Target: target, Op: wire.OpSetPayloadLimit, Value: 8,
	}, older)
	clock.Advance(time.Millisecond)
	if st := n.Stats(); st.ControlsApplied != 3 {
		t.Fatalf("payload control: applied=%d, want 3", st.ControlsApplied)
	}
}

package sensor

import (
	"encoding/binary"
	"math"
	"time"

	"github.com/garnet-middleware/garnet/internal/wire"
)

// This file provides payload conventions used by the examples and the
// experiment harness. Payloads remain opaque to the middleware (§4.3); the
// encoding here is an application-level agreement between producers and
// the consumers that subscribe to them.

// ConstantSampler returns a Sampler that always produces the same payload.
func ConstantSampler(payload []byte) Sampler {
	return func(time.Time, wire.Seq) []byte { return payload }
}

// SizedSampler returns a Sampler producing a zeroed payload of n bytes,
// useful for throughput and energy experiments where content is
// irrelevant.
func SizedSampler(n int) Sampler {
	buf := make([]byte, n)
	return func(time.Time, wire.Seq) []byte { return buf }
}

// FloatSampler returns a Sampler that encodes f(now) as a scalar reading
// (see EncodeReading).
func FloatSampler(f func(now time.Time) float64) Sampler {
	return func(now time.Time, _ wire.Seq) []byte {
		return EncodeReading(f(now), now)
	}
}

// ReadingSize is the encoded size of a scalar reading payload.
const ReadingSize = 16

// EncodeReading encodes a scalar measurement and its sample time into the
// 16-byte reading payload convention: IEEE-754 value, then the sample time
// in microseconds since the Unix epoch, both big-endian.
func EncodeReading(value float64, at time.Time) []byte {
	buf := make([]byte, ReadingSize)
	binary.BigEndian.PutUint64(buf[0:8], math.Float64bits(value))
	binary.BigEndian.PutUint64(buf[8:16], uint64(at.UnixMicro()))
	return buf
}

// DecodeReading decodes a payload produced by EncodeReading.
func DecodeReading(payload []byte) (value float64, at time.Time, ok bool) {
	if len(payload) < ReadingSize {
		return 0, time.Time{}, false
	}
	value = math.Float64frombits(binary.BigEndian.Uint64(payload[0:8]))
	at = time.UnixMicro(int64(binary.BigEndian.Uint64(payload[8:16]))).UTC()
	return value, at, true
}

// Package sensor implements the sensor/actuator nodes of the paper's §4.2:
// mobile devices that periodically sample their internal data streams and
// transmit Garnet data messages over the wireless uplink. Two classes
// coexist, exactly as the design requires (§5 “simplicity of sensor
// requirements”):
//
//   - simple, transmit-only nodes that never listen to the downlink, and
//   - sophisticated, receive-capable nodes that accept stream-update
//     requests (set rate, enable/disable stream, payload limit, device
//     parameter, ping) and acknowledge them by piggy-backing the update id
//     on their next data message (FlagUpdateAck, §4.3).
//
// Nodes carry an energy model (per-transmission, per-byte and per-sample
// costs) and an optional battery so the energy experiments (E4, E12) can
// compare middleware policies by their effect on the field's lifetime.
package sensor

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/garnet-middleware/garnet/internal/field"
	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Capability is the bit set of optional behaviours a node supports.
type Capability uint8

const (
	// CapReceive marks a sophisticated send-receive node that listens on
	// the downlink and applies stream-update requests.
	CapReceive Capability = 1 << iota
	// CapLocationAware marks a node that knows its own position; its data
	// messages carry wire.FlagLocationAware so consumers can choose to
	// supply location hints derived from its payloads.
	CapLocationAware
)

// Has reports whether every capability in q is present.
func (c Capability) Has(q Capability) bool { return c&q == q }

// Sampler produces the opaque payload for one data message of a stream.
type Sampler func(now time.Time, seq wire.Seq) []byte

// StreamConfig configures one of a node's (up to 256) internal streams.
type StreamConfig struct {
	Index        wire.StreamIndex
	Sampler      Sampler
	Period       time.Duration // sampling period; must be > 0
	Enabled      bool          // transmit from the start
	PayloadLimit int           // truncate payloads to this many bytes; 0 = wire.MaxPayload
	// Encrypted marks the stream's payloads as end-to-end sealed (the
	// sampler must produce sealed bytes, e.g. security.EncryptingSampler);
	// messages carry wire.FlagEncrypted. Note that payload-limit
	// truncation destroys sealed payloads, so constrain the plaintext
	// instead when combining the two.
	Encrypted bool
}

// EnergyParams models node energy costs in millijoules. Zero values make
// the node energy-free (useful in functional tests).
type EnergyParams struct {
	TxBase    float64 // cost to key the radio for one transmission
	TxPerByte float64 // marginal cost per transmitted byte
	RxPerByte float64 // cost per received downlink byte
	PerSample float64 // cost of taking one sample
}

// RelayConfig configures the §8 multi-hop extension: a relaying node
// re-broadcasts overheard uplink frames — tagged wire.FlagRelayed with an
// incremented hop count, exactly the header tagging §8 describes — so
// sensors outside every reception zone still reach the fixed network
// through neighbours. A bounded seen-cache and the hop limit prevent
// relay storms.
type RelayConfig struct {
	Enabled bool
	// MaxHops bounds how many relay hops a frame may accumulate
	// (default 3).
	MaxHops uint8
	// ListenRadius is the overhearing radius (default TxRange).
	ListenRadius float64
}

// Config configures a Node.
type Config struct {
	ID           wire.SensorID
	Capabilities Capability
	Mobility     field.Mobility
	TxRange      float64 // uplink transmission range, metres
	RxRadius     float64 // downlink listening radius; defaults to TxRange
	Streams      []StreamConfig
	Energy       EnergyParams
	Battery      float64 // millijoules; 0 = unlimited
	Relay        RelayConfig
}

// Stats is a snapshot of a node's activity counters.
type Stats struct {
	MessagesSent     int64
	BytesSent        int64
	SamplesTaken     int64
	ControlsReceived int64 // downlink frames addressed to this node and decoded
	ControlsApplied  int64
	ControlsIgnored  int64 // addressed here but not applicable (unknown stream, bad value)
	AcksSent         int64
	FramesRelayed    int64   // §8 multi-hop: overheard frames re-broadcast
	RelayDropsHops   int64   // frames not relayed: hop limit reached
	RelayDropsSeen   int64   // frames not relayed: already relayed recently
	EnergyUsed       float64 // millijoules
	Alive            bool
}

type streamState struct {
	cfg     StreamConfig
	seq     wire.Seq
	period  time.Duration
	limit   int
	enabled bool
	ticker  *sim.Ticker
	// lastSet holds, per mediated setting (rate, enable, payload), the
	// issue timestamp of the last applied control message. The downlink
	// has no ordering guarantee — jitter can reorder transmissions, and a
	// retry of a superseded request can reach the air after its
	// replacement — so the device applies settings in issue order, not
	// arrival order: anything older than the last applied is ignored.
	lastSet [3]time.Time
}

// Node is one simulated sensor/actuator.
type Node struct {
	cfg    Config
	clock  sim.Clock
	medium *radio.Medium

	posMu sync.Mutex // guards Mobility (stateful models are not self-synchronised)
	// Same-instant position memo: the medium polls every mobile
	// listener's position once per broadcast on its band, and a node may
	// listen twice (downlink + relay). Mobility models are deterministic
	// per query time, so repeated queries at one simulated instant reuse
	// the last answer instead of re-running the model.
	posCachedAt   time.Time
	posCached     geo.Point
	posCacheValid bool

	mu          sync.Mutex
	streams     map[wire.StreamIndex]*streamState
	pendingAcks []uint16
	params      map[uint8]uint32
	energyUsed  float64
	dead        bool
	started     bool
	detach      func()
	detachRelay func()

	// Relay seen-cache: FIFO over (stream, seq) keys.
	relaySeen  map[uint64]struct{}
	relayOrder []uint64

	msgsSent     metrics.Counter
	bytesSent    metrics.Counter
	samples      metrics.Counter
	ctrlReceived metrics.Counter
	ctrlApplied  metrics.Counter
	ctrlIgnored  metrics.Counter
	acksSent     metrics.Counter
	relayed      metrics.Counter
	relayHops    metrics.Counter
	relayDup     metrics.Counter
}

// Validation errors returned by New.
var (
	ErrNoMobility  = errors.New("sensor: config needs a Mobility")
	ErrBadStream   = errors.New("sensor: invalid stream config")
	ErrDuplicateIx = errors.New("sensor: duplicate stream index")
)

// New validates cfg and creates a stopped Node. Call Start to bring it up.
func New(clock sim.Clock, medium *radio.Medium, cfg Config) (*Node, error) {
	if cfg.ID > wire.MaxSensorID {
		return nil, fmt.Errorf("sensor %d: %w", cfg.ID, wire.ErrSensorRange)
	}
	if cfg.Mobility == nil {
		return nil, ErrNoMobility
	}
	if cfg.TxRange <= 0 {
		return nil, fmt.Errorf("%w: TxRange must be positive", ErrBadStream)
	}
	if cfg.RxRadius == 0 {
		cfg.RxRadius = cfg.TxRange
	}
	if cfg.Relay.MaxHops == 0 {
		cfg.Relay.MaxHops = 3
	}
	if cfg.Relay.ListenRadius == 0 {
		cfg.Relay.ListenRadius = cfg.TxRange
	}
	n := &Node{
		cfg:       cfg,
		clock:     clock,
		medium:    medium,
		streams:   make(map[wire.StreamIndex]*streamState, len(cfg.Streams)),
		params:    make(map[uint8]uint32),
		relaySeen: make(map[uint64]struct{}),
	}
	for _, sc := range cfg.Streams {
		if sc.Period <= 0 {
			return nil, fmt.Errorf("%w: stream %d period %v", ErrBadStream, sc.Index, sc.Period)
		}
		if sc.Sampler == nil {
			return nil, fmt.Errorf("%w: stream %d has no sampler", ErrBadStream, sc.Index)
		}
		if _, dup := n.streams[sc.Index]; dup {
			return nil, fmt.Errorf("%w: %d", ErrDuplicateIx, sc.Index)
		}
		limit := sc.PayloadLimit
		if limit <= 0 || limit > wire.MaxPayload {
			limit = wire.MaxPayload
		}
		n.streams[sc.Index] = &streamState{cfg: sc, period: sc.Period, limit: limit, enabled: sc.Enabled}
	}
	return n, nil
}

// ID returns the node's sensor id.
func (n *Node) ID() wire.SensorID { return n.cfg.ID }

// Capabilities returns the node's capability set.
func (n *Node) Capabilities() Capability { return n.cfg.Capabilities }

// Position returns the node's current ground-truth position.
func (n *Node) Position() geo.Point {
	now := n.clock.Now()
	n.posMu.Lock()
	defer n.posMu.Unlock()
	if n.posCacheValid && now.Equal(n.posCachedAt) {
		return n.posCached
	}
	p := n.cfg.Mobility.Position(now)
	n.posCachedAt, n.posCached, n.posCacheValid = now, p, true
	return p
}

// Start brings the node up: sampling tickers for enabled streams and, for
// receive-capable nodes, a downlink listener. Start is idempotent.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started || n.dead {
		n.mu.Unlock()
		return
	}
	n.started = true
	for _, st := range n.streams {
		if st.enabled {
			n.armTickerLocked(st)
		}
	}
	n.mu.Unlock()

	// Sensor listeners stay non-Static: the medium re-reads Position on
	// every broadcast and lazily re-buckets the node in its spatial
	// index when it has roamed into another grid cell.
	if n.cfg.Capabilities.Has(CapReceive) {
		n.detach = n.medium.Attach(radio.BandDownlink, &radio.Listener{
			Name:     fmt.Sprintf("sensor/%d", n.cfg.ID),
			Position: n.Position,
			Radius:   n.cfg.RxRadius,
			Deliver:  n.onDownlink,
		})
	}
	if n.cfg.Relay.Enabled {
		n.detachRelay = n.medium.Attach(radio.BandUplink, &radio.Listener{
			Name:     fmt.Sprintf("relay/%d", n.cfg.ID),
			Position: n.Position,
			Radius:   n.cfg.Relay.ListenRadius,
			Deliver:  n.onOverheard,
		})
	}
}

// Stop halts sampling and detaches from the medium. Stop is idempotent.
func (n *Node) Stop() {
	n.mu.Lock()
	n.started = false
	for _, st := range n.streams {
		if st.ticker != nil {
			st.ticker.Stop()
			st.ticker = nil
		}
	}
	detach := n.detach
	n.detach = nil
	detachRelay := n.detachRelay
	n.detachRelay = nil
	n.mu.Unlock()
	if detach != nil {
		detach()
	}
	if detachRelay != nil {
		detachRelay()
	}
}

func (n *Node) armTickerLocked(st *streamState) {
	index := st.cfg.Index
	st.ticker = sim.NewTicker(n.clock, st.period, func(now time.Time) {
		n.transmit(index, now)
	})
}

// TriggerSample forces one immediate sample+transmit on the given stream,
// independent of its ticker. It is used by tests and by event-driven
// samplers.
func (n *Node) TriggerSample(index wire.StreamIndex) error {
	n.mu.Lock()
	_, ok := n.streams[index]
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: no stream %d", ErrBadStream, index)
	}
	n.transmit(index, n.clock.Now())
	return nil
}

func (n *Node) transmit(index wire.StreamIndex, now time.Time) {
	n.mu.Lock()
	st, ok := n.streams[index]
	if !ok || n.dead || !n.started {
		n.mu.Unlock()
		return
	}
	seq := st.seq
	st.seq = st.seq.Next()

	payload := st.cfg.Sampler(now, seq)
	n.samples.Inc()
	if len(payload) > st.limit {
		payload = payload[:st.limit]
	}

	msg := wire.Message{
		Stream:  wire.MustStreamID(n.cfg.ID, index),
		Seq:     seq,
		Payload: payload,
	}
	if n.cfg.Capabilities.Has(CapLocationAware) {
		msg.Flags |= wire.FlagLocationAware
	}
	if st.cfg.Encrypted {
		msg.Flags |= wire.FlagEncrypted
	}
	ackPiggybacked := false
	if len(n.pendingAcks) > 0 {
		msg.Flags |= wire.FlagUpdateAck
		msg.AckID = n.pendingAcks[0]
		n.pendingAcks = n.pendingAcks[1:]
		ackPiggybacked = true
	}

	frame, err := msg.Encode()
	if err != nil {
		// Sampler produced an impossible payload; drop the message but keep
		// the node alive (a real node would clamp similarly).
		n.mu.Unlock()
		return
	}

	cost := n.cfg.Energy.PerSample + n.cfg.Energy.TxBase + n.cfg.Energy.TxPerByte*float64(len(frame))
	if n.cfg.Battery > 0 && n.energyUsed+cost > n.cfg.Battery {
		n.dieLocked()
		n.mu.Unlock()
		return
	}
	n.energyUsed += cost
	n.msgsSent.Inc()
	n.bytesSent.Add(int64(len(frame)))
	if ackPiggybacked {
		n.acksSent.Inc()
	}
	n.mu.Unlock()

	n.medium.Broadcast(radio.BandUplink, n.Position(), n.cfg.TxRange, frame)
}

func (n *Node) dieLocked() {
	n.dead = true
	for _, st := range n.streams {
		if st.ticker != nil {
			st.ticker.Stop()
			st.ticker = nil
		}
	}
}

// onDownlink processes a control frame heard on the downlink band.
func (n *Node) onDownlink(f radio.Frame) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead || !n.started {
		return
	}
	// Listening costs energy whether or not the frame is ours.
	rxCost := n.cfg.Energy.RxPerByte * float64(len(f.Data))
	if n.cfg.Battery > 0 && n.energyUsed+rxCost > n.cfg.Battery {
		n.dieLocked()
		return
	}
	n.energyUsed += rxCost

	ctrl, err := wire.DecodeControl(f.Data)
	if err != nil {
		return // corrupt or foreign frame
	}
	if ctrl.Target.Sensor() != n.cfg.ID {
		return // addressed to another sensor
	}
	n.ctrlReceived.Inc()

	applied := n.applyLocked(ctrl)
	if applied {
		n.ctrlApplied.Inc()
		n.queueAckLocked(ctrl.UpdateID)
	} else {
		n.ctrlIgnored.Inc()
	}
}

// settingIdx maps a mediated operation to its streamState.lastSet slot;
// mediated is false for operations outside staleness ordering (ping,
// device params).
func settingIdx(op wire.Op) (idx int, mediated bool) {
	switch op {
	case wire.OpSetRate:
		return 0, true
	case wire.OpEnableStream, wire.OpDisableStream:
		return 1, true
	case wire.OpSetPayloadLimit:
		return 2, true
	default:
		return 0, false
	}
}

func (n *Node) applyLocked(ctrl wire.ControlMessage) bool {
	st, ok := n.streams[ctrl.Target.Index()]
	idx, mediated := settingIdx(ctrl.Op)
	if mediated && ok && ctrl.Issued.Before(st.lastSet[idx]) {
		// Stale by issue order: a newer setting for this slot has already
		// been applied. Ignored without an ack, so the middleware retires
		// the stale request through its own supersede/expiry accounting.
		return false
	}
	applied := n.applyOpLocked(st, ok, ctrl)
	if applied && mediated {
		st.lastSet[idx] = ctrl.Issued
	}
	return applied
}

func (n *Node) applyOpLocked(st *streamState, ok bool, ctrl wire.ControlMessage) bool {
	switch ctrl.Op {
	case wire.OpPing:
		return true // reachability probe acks regardless of stream state
	case wire.OpSetParam:
		n.params[ctrl.Param] = ctrl.Value
		return true
	case wire.OpSetRate:
		if !ok || ctrl.Value == 0 {
			return false
		}
		period := time.Duration(float64(time.Second) * 1000.0 / float64(ctrl.Value))
		if period <= 0 {
			return false
		}
		st.period = period
		if st.ticker != nil {
			st.ticker.SetPeriod(period)
		}
		return true
	case wire.OpEnableStream:
		if !ok {
			return false
		}
		if !st.enabled {
			st.enabled = true
			if n.started && st.ticker == nil {
				n.armTickerLocked(st)
			}
		}
		return true
	case wire.OpDisableStream:
		if !ok {
			return false
		}
		if st.enabled {
			st.enabled = false
			if st.ticker != nil {
				st.ticker.Stop()
				st.ticker = nil
			}
		}
		return true
	case wire.OpSetPayloadLimit:
		if !ok || ctrl.Value == 0 {
			return false
		}
		limit := int(ctrl.Value)
		if limit > wire.MaxPayload {
			limit = wire.MaxPayload
		}
		st.limit = limit
		return true
	default:
		return false
	}
}

func (n *Node) queueAckLocked(updateID uint16) {
	for _, id := range n.pendingAcks {
		if id == updateID {
			return // already queued (duplicate delivery of a retried request)
		}
	}
	n.pendingAcks = append(n.pendingAcks, updateID)
}

// onOverheard handles an uplink frame overheard by a relaying node: it
// re-broadcasts foreign data messages with wire.FlagRelayed and an
// incremented hop count (§8), subject to the hop limit and a seen-cache
// that suppresses relay storms.
func (n *Node) onOverheard(f radio.Frame) {
	msg, _, err := wire.DecodeMessage(f.Data)
	if err != nil {
		return // corrupt or foreign-format frame
	}
	if msg.Stream.Sensor() == n.cfg.ID {
		return // never relay our own traffic (including our own relays' echoes)
	}
	hops := uint8(0)
	if msg.Flags.Has(wire.FlagRelayed) {
		hops = msg.HopCount
	}

	n.mu.Lock()
	if n.dead || !n.started {
		n.mu.Unlock()
		return
	}
	// Overhearing costs listening energy like any reception.
	rxCost := n.cfg.Energy.RxPerByte * float64(len(f.Data))
	if n.cfg.Battery > 0 && n.energyUsed+rxCost > n.cfg.Battery {
		n.dieLocked()
		n.mu.Unlock()
		return
	}
	n.energyUsed += rxCost

	if hops >= n.cfg.Relay.MaxHops {
		n.relayHops.Inc()
		n.mu.Unlock()
		return
	}
	key := uint64(msg.Stream)<<16 | uint64(msg.Seq)
	if _, dup := n.relaySeen[key]; dup {
		n.relayDup.Inc()
		n.mu.Unlock()
		return
	}
	const relayCacheSize = 512
	n.relaySeen[key] = struct{}{}
	n.relayOrder = append(n.relayOrder, key)
	if len(n.relayOrder) > relayCacheSize {
		delete(n.relaySeen, n.relayOrder[0])
		n.relayOrder = n.relayOrder[1:]
	}

	msg.Flags |= wire.FlagRelayed
	msg.HopCount = hops + 1
	frame, err := msg.Encode()
	if err != nil {
		n.mu.Unlock()
		return
	}
	txCost := n.cfg.Energy.TxBase + n.cfg.Energy.TxPerByte*float64(len(frame))
	if n.cfg.Battery > 0 && n.energyUsed+txCost > n.cfg.Battery {
		n.dieLocked()
		n.mu.Unlock()
		return
	}
	n.energyUsed += txCost
	n.relayed.Inc()
	n.bytesSent.Add(int64(len(frame)))
	n.mu.Unlock()

	n.medium.Broadcast(radio.BandUplink, n.Position(), n.cfg.TxRange, frame)
}

// Param returns the value of a device parameter set via OpSetParam.
func (n *Node) Param(key uint8) (uint32, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.params[key]
	return v, ok
}

// StreamPeriod returns the current sampling period of a stream.
func (n *Node) StreamPeriod(index wire.StreamIndex) (time.Duration, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.streams[index]
	if !ok {
		return 0, false
	}
	return st.period, true
}

// StreamEnabled reports whether a stream is currently transmitting.
func (n *Node) StreamEnabled(index wire.StreamIndex) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.streams[index]
	return ok && st.enabled
}

// EnergyUsed returns the total energy consumed so far, in millijoules.
func (n *Node) EnergyUsed() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.energyUsed
}

// Alive reports whether the node still has battery.
func (n *Node) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.dead
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	energy, dead := n.energyUsed, n.dead
	n.mu.Unlock()
	return Stats{
		MessagesSent:     n.msgsSent.Value(),
		BytesSent:        n.bytesSent.Value(),
		SamplesTaken:     n.samples.Value(),
		ControlsReceived: n.ctrlReceived.Value(),
		ControlsApplied:  n.ctrlApplied.Value(),
		ControlsIgnored:  n.ctrlIgnored.Value(),
		AcksSent:         n.acksSent.Value(),
		FramesRelayed:    n.relayed.Value(),
		RelayDropsHops:   n.relayHops.Value(),
		RelayDropsSeen:   n.relayDup.Value(),
		EnergyUsed:       energy,
		Alive:            !dead,
	}
}

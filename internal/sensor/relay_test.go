package sensor

import (
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/field"
	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// relayRig: a source sensor at x=0 with tx range 100, a receiver tap at
// x=250 with a tight 60 m zone — out of the source's direct reach — and
// an optional relay node at x=150 bridging the gap.
func relayRig(t *testing.T, withRelay bool) (*sim.VirtualClock, *radio.Medium, *uplinkTap, *Node) {
	t.Helper()
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	tap := &uplinkTap{}
	medium.Attach(radio.BandUplink, &radio.Listener{
		Name:     "rx",
		Position: func() geo.Point { return geo.Pt(250, 0) },
		Radius:   120,
		Deliver: func(f radio.Frame) {
			msg, _, err := wire.DecodeMessage(f.Data)
			if err != nil {
				return
			}
			tap.mu.Lock()
			tap.msgs = append(tap.msgs, msg)
			tap.mu.Unlock()
		},
	})

	source, err := New(clock, medium, Config{
		ID:       1,
		Mobility: field.Static{P: geo.Pt(0, 0)},
		TxRange:  160,
		Streams: []StreamConfig{{
			Index: 0, Sampler: ConstantSampler([]byte("far")), Period: time.Second, Enabled: true,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	source.Start()
	t.Cleanup(source.Stop)

	var relay *Node
	if withRelay {
		relay, err = New(clock, medium, Config{
			ID:       99,
			Mobility: field.Static{P: geo.Pt(150, 0)},
			TxRange:  160,
			Relay:    RelayConfig{Enabled: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		relay.Start()
		t.Cleanup(relay.Stop)
	}
	return clock, medium, tap, relay
}

func TestRelayExtendsCoverage(t *testing.T) {
	// Without a relay the receiver hears nothing.
	clock, _, tap, _ := relayRig(t, false)
	clock.Advance(5 * time.Second)
	if got := len(tap.all()); got != 0 {
		t.Fatalf("receiver heard %d frames without a relay", got)
	}

	// With the relay, every message arrives, tagged as relayed.
	clock, _, tap, relay := relayRig(t, true)
	clock.Advance(5 * time.Second)
	msgs := tap.all()
	if len(msgs) != 5 {
		t.Fatalf("receiver heard %d frames via relay, want 5", len(msgs))
	}
	for _, m := range msgs {
		if !m.Flags.Has(wire.FlagRelayed) {
			t.Fatal("relayed frame missing FlagRelayed")
		}
		if m.HopCount != 1 {
			t.Fatalf("hop count = %d, want 1", m.HopCount)
		}
		if m.Stream != wire.MustStreamID(1, 0) || string(m.Payload) != "far" {
			t.Fatalf("relayed content mangled: %+v", m)
		}
	}
	if st := relay.Stats(); st.FramesRelayed != 5 {
		t.Fatalf("relay stats = %+v", st)
	}
}

func TestRelayNeverRelaysOwnTraffic(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	// A relaying node that also samples: it must not relay itself.
	n, err := New(clock, medium, Config{
		ID:       5,
		Mobility: field.Static{P: geo.Pt(0, 0)},
		TxRange:  100,
		Relay:    RelayConfig{Enabled: true},
		Streams: []StreamConfig{{
			Index: 0, Sampler: ConstantSampler([]byte("own")), Period: time.Second, Enabled: true,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	clock.Advance(10 * time.Second)
	if st := n.Stats(); st.FramesRelayed != 0 {
		t.Fatalf("node relayed its own traffic %d times", st.FramesRelayed)
	}
}

func TestRelaySeenCacheStopsStorms(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	// Two relays in range of each other and of the source.
	mk := func(id wire.SensorID, x float64) *Node {
		n, err := New(clock, medium, Config{
			ID:       id,
			Mobility: field.Static{P: geo.Pt(x, 0)},
			TxRange:  1000,
			Relay:    RelayConfig{Enabled: true, MaxHops: 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		n.Start()
		t.Cleanup(n.Stop)
		return n
	}
	r1 := mk(101, 10)
	r2 := mk(102, 20)

	source, err := New(clock, medium, Config{
		ID:       1,
		Mobility: field.Static{P: geo.Pt(0, 0)},
		TxRange:  1000,
		Streams: []StreamConfig{{
			Index: 0, Sampler: ConstantSampler([]byte("x")), Period: time.Second, Enabled: true,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	source.Start()
	defer source.Stop()

	clock.Advance(3 * time.Second)
	// Each relay forwards each original exactly once; echoes are deduped.
	if st := r1.Stats(); st.FramesRelayed != 3 || st.RelayDropsSeen == 0 {
		t.Fatalf("r1 stats = %+v", st)
	}
	if st := r2.Stats(); st.FramesRelayed != 3 {
		t.Fatalf("r2 stats = %+v", st)
	}
}

func TestRelayHopLimit(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	// A chain: source — r1 — r2, where r2 only hears r1 (not the source),
	// and MaxHops = 1, so r2 must refuse the second hop.
	source, err := New(clock, medium, Config{
		ID:       1,
		Mobility: field.Static{P: geo.Pt(0, 0)},
		TxRange:  120,
		Streams: []StreamConfig{{
			Index: 0, Sampler: ConstantSampler([]byte("x")), Period: time.Second, Enabled: true,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	mkRelay := func(id wire.SensorID, x float64) *Node {
		n, err := New(clock, medium, Config{
			ID:       id,
			Mobility: field.Static{P: geo.Pt(x, 0)},
			TxRange:  120,
			Relay:    RelayConfig{Enabled: true, MaxHops: 1, ListenRadius: 120},
		})
		if err != nil {
			t.Fatal(err)
		}
		n.Start()
		t.Cleanup(n.Stop)
		return n
	}
	r1 := mkRelay(101, 100)
	r2 := mkRelay(102, 200)
	source.Start()
	defer source.Stop()

	clock.Advance(3 * time.Second)
	if st := r1.Stats(); st.FramesRelayed != 3 {
		t.Fatalf("r1 relayed %d, want 3", st.FramesRelayed)
	}
	st := r2.Stats()
	if st.FramesRelayed != 0 {
		t.Fatalf("r2 relayed %d beyond the hop limit", st.FramesRelayed)
	}
	if st.RelayDropsHops != 3 {
		t.Fatalf("r2 hop drops = %d, want 3", st.RelayDropsHops)
	}
}

func TestRelayEnergyAccounting(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	relay, err := New(clock, medium, Config{
		ID:       9,
		Mobility: field.Static{P: geo.Pt(10, 0)},
		TxRange:  100,
		Relay:    RelayConfig{Enabled: true},
		Energy:   EnergyParams{TxBase: 1, RxPerByte: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	relay.Start()
	defer relay.Stop()

	frame, err := (&wire.Message{Stream: wire.MustStreamID(1, 0), Seq: 0}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	medium.Broadcast(radio.BandUplink, geo.Pt(0, 0), 100, frame)
	clock.RunAll()

	st := relay.Stats()
	if st.FramesRelayed != 1 {
		t.Fatalf("relayed = %d", st.FramesRelayed)
	}
	// rx: 11 bytes original × 0.1 (+ its own echo 12 bytes × 0.1) and
	// tx: base 1. The relayed frame grows by the 1-byte hop extension.
	wantMin := 11*0.1 + 1
	if st.EnergyUsed < wantMin {
		t.Fatalf("energy = %v, want ≥ %v", st.EnergyUsed, wantMin)
	}
}

func TestRelayedDuplicateStillFiltered(t *testing.T) {
	// When the receiver hears both the direct copy and the relayed copy,
	// the duplicate filter must keep exactly one.
	clock := sim.NewVirtualClock(epoch)
	medium := radio.NewMedium(clock, radio.Params{})
	tap := &uplinkTap{}
	tap.attach(medium) // wide-open tap hears everything

	source, err := New(clock, medium, Config{
		ID:       1,
		Mobility: field.Static{P: geo.Pt(0, 0)},
		TxRange:  1000,
		Streams: []StreamConfig{{
			Index: 0, Sampler: ConstantSampler([]byte("x")), Period: time.Second, Enabled: true,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	relay, err := New(clock, medium, Config{
		ID:       2,
		Mobility: field.Static{P: geo.Pt(10, 0)},
		TxRange:  1000,
		Relay:    RelayConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	source.Start()
	relay.Start()
	defer source.Stop()
	defer relay.Stop()
	clock.Advance(time.Second)

	msgs := tap.all()
	if len(msgs) != 2 { // direct + relayed copy
		t.Fatalf("tap heard %d frames, want 2", len(msgs))
	}
	// Same (stream, seq): downstream dedup treats the relayed copy as a
	// duplicate of the direct one.
	if msgs[0].Stream != msgs[1].Stream || msgs[0].Seq != msgs[1].Seq {
		t.Fatalf("copies differ in identity: %+v vs %+v", msgs[0], msgs[1])
	}
}

// Package radio simulates the unreliable wireless medium between the
// mobile sensor field and the fixed network (§3 of the paper: “mobile
// sensors transmit data over an unreliable wireless medium to a fixed
// network infrastructure”).
//
// The medium is a broadcast channel with range-limited delivery: a frame
// broadcast from a point reaches every attached listener whose reception
// zone covers the transmitter and that lies within the transmitter's
// range. Overlapping receiver zones therefore duplicate frames by
// construction — the phenomenon the Filtering Service exists to undo —
// and independent per-delivery loss, delay jitter and byte corruption
// model the unreliable channel. Uplink (sensor → receivers) and downlink
// (transmitters → sensors) are separate bands.
//
// Listeners are held in a uniform-grid spatial index (geo.Grid) keyed by
// their coverage circles, so a broadcast that reaches k of N attached
// listeners costs O(cells + k), not O(N): static listeners (the receiver
// array) index once at Attach; mobile listeners (roaming sensors) are
// lazily re-bucketed by a position check at broadcast time. All
// randomness is derived per delivery from (medium seed, broadcast
// counter, listener id) and all scheduling comes from a sim.Clock, so a
// run is reproducible bit-for-bit regardless of the order the index
// yields candidates in.
package radio

import (
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/sim"
)

// Band separates uplink (data messages towards the receivers) from
// downlink (control messages towards the sensors); physically these would
// be distinct frequencies.
type Band uint8

const (
	// BandUplink carries sensor data messages to the receiver array.
	BandUplink Band = iota + 1
	// BandDownlink carries control messages from the transmitters to
	// receive-capable sensors.
	BandDownlink

	bandCount = 2
)

// String names the band.
func (b Band) String() string {
	switch b {
	case BandUplink:
		return "uplink"
	case BandDownlink:
		return "downlink"
	default:
		return "band(?)"
	}
}

// Frame is a delivered radio frame. Data is owned by the recipient (each
// delivery receives an independent copy, since corruption is simulated
// per delivery).
//
// The buffer behind Data is leased from a pool. A recipient that is done
// with the frame — including every byte Data aliases — should call
// Release to recycle the buffer; a recipient that retains Data (or hands
// it to code that does) must simply not call Release, and the buffer
// falls back to the garbage collector.
type Frame struct {
	Data []byte
	From geo.Point // transmit position (ground truth; used only by the simulator)
	At   time.Time // delivery time on the medium's clock
	// DistSq is the squared transmitter→listener distance at broadcast
	// time. The medium computes it anyway for the range check; carrying
	// it saves every recipient the recomputation (receivers derive their
	// RSSI proxy from it without a per-frame distance calculation).
	DistSq float64

	lease *frameLease // pooled backing buffer; nil once released
}

// frameLease is one pooled delivery buffer plus its release latch. The
// latch lives here — not in the Frame — because Frames are passed and
// stored by value: every copy of a delivered Frame shares the one lease,
// so Release is exactly-once no matter how many copies call it.
type frameLease struct {
	buf      []byte
	released atomic.Bool
}

// frameBufs pools delivery buffers: every listener reached by a broadcast
// receives an independent copy of the frame (corruption is per delivery),
// and a dense field delivers millions of them. Recipients that call
// Frame.Release make the whole medium → receiver → filter drop path
// allocation-free at steady state.
var frameBufs = sync.Pool{
	New: func() any { return new(frameLease) },
}

// leaseFrameBuf returns a pooled lease with a buffer of length n.
func leaseFrameBuf(n int) *frameLease {
	l := frameBufs.Get().(*frameLease)
	if cap(l.buf) < n {
		l.buf = make([]byte, n)
	}
	l.buf = l.buf[:n]
	l.released.Store(false)
	return l
}

// Release returns the frame's buffer to the delivery pool and nils Data.
// It is idempotent, including across copies of the same delivered Frame.
// After Release every alias of Data is invalid: callers must have dropped
// or copied anything they intend to keep.
func (f *Frame) Release() {
	l := f.lease
	if l == nil {
		return
	}
	f.lease, f.Data = nil, nil
	if !l.released.Swap(true) {
		frameBufs.Put(l)
	}
}

// Listener is an attachment point on the medium: a reception zone plus a
// delivery callback. Position is queried at broadcast time so mobile nodes
// (sensors on the downlink band) are heard at their current location.
//
// Deliver runs on the clock's callback goroutine and must not block.
type Listener struct {
	Name     string
	Position func() geo.Point
	Radius   float64
	Deliver  func(Frame)
	// Static promises that Position never changes after Attach. Static
	// listeners — the fixed receiver array above all — are indexed once
	// and never position-checked again, so broadcasts cost O(listeners
	// actually nearby). Leave false for anything that moves: the medium
	// then re-reads Position on every broadcast on the band and
	// re-buckets the listener when it has drifted.
	Static bool
}

// Params configures medium impairments. The zero value is a perfect,
// zero-latency channel.
type Params struct {
	// LossProb is the probability an individual delivery is lost.
	LossProb float64
	// CorruptProb is the probability an individual delivery has one byte
	// flipped (screened out downstream by the frame checksum).
	CorruptProb float64
	// DelayMin and DelayMax bound the uniform propagation+MAC delay applied
	// to each delivery.
	DelayMin, DelayMax time.Duration
	// Seed seeds the medium's private random stream.
	Seed uint64
	// GridCell is the cell edge length (metres) of the spatial index
	// holding the listeners. Zero picks a default from the first
	// listener's reception radius on each band, which suits fields whose
	// zones are of roughly one scale; deployments mixing very different
	// radii should set it near the dominant radius (see the README's
	// field-density notes).
	GridCell float64
}

// Metrics counts medium activity. Read with atomic-safe Value calls.
type Metrics struct {
	Broadcasts metrics.Counter // frames offered to the medium
	Deliveries metrics.Counter // copies delivered to listeners
	Lost       metrics.Counter // copies dropped by the loss process
	Corrupted  metrics.Counter // copies delivered with a flipped byte
	OutOfRange metrics.Counter // broadcasts that reached zero listeners
}

// listenerEntry is one attached listener plus its index bookkeeping.
type listenerEntry struct {
	id  int
	l   *Listener
	pos geo.Point // the position the band grid currently has it bucketed at
}

// bandState indexes one band's listeners.
type bandState struct {
	grid   *geo.Grid        // coverage circles; created at first Attach
	order  []*listenerEntry // attach order (reference scans, Listeners)
	mobile []*listenerEntry // attach-ordered subset with Static unset
}

// Medium is the simulated shared wireless channel.
type Medium struct {
	clock  sim.Clock
	sched  func(time.Duration, func()) // fire-and-forget scheduling
	params Params
	seed   uint64 // base for per-delivery stream derivation

	mu      sync.Mutex
	bands   [bandCount]bandState
	byID    []*listenerEntry // dense lookup by listener id; nil = detached
	freeIDs []int            // detached ids, reused so byID stays bounded by peak attachment
	nextID  int
	bcast   uint64 // broadcasts offered so far, keys per-delivery randomness

	// linearScan bypasses the spatial index and scans every listener in
	// attach order — the reference implementation the grid is
	// differentially tested against (outcomes must match bit-for-bit
	// because per-delivery randomness is iteration-order-independent).
	// Test-only; never set in production paths.
	linearScan bool

	metrics Metrics
}

// NewMedium creates a medium on the given clock. NewMedium panics if
// DelayMax < DelayMin (a configuration programming error).
func NewMedium(clock sim.Clock, p Params) *Medium {
	if p.DelayMax < p.DelayMin {
		panic("radio: DelayMax < DelayMin")
	}
	m := &Medium{
		clock:  clock,
		params: p,
		seed:   sim.SubSeed(p.Seed, "radio.medium"),
	}
	if s, ok := clock.(sim.Scheduler); ok {
		m.sched = s.ScheduleFunc
	} else {
		m.sched = func(d time.Duration, f func()) { clock.AfterFunc(d, f) }
	}
	return m
}

// gridCellFor picks the cell size for a band's index: the configured
// GridCell, or the first listener's radius (a circle then spans ~9
// cells and a point query scans one small bucket).
func (m *Medium) gridCellFor(l *Listener) float64 {
	if m.params.GridCell > 0 {
		return m.params.GridCell
	}
	if l.Radius > 0 && !math.IsInf(l.Radius, 1) {
		return l.Radius
	}
	return 1
}

// Attach registers a listener on a band and returns a function that
// detaches it. Attach panics on an undefined band or a nil Position or
// Deliver (programming errors).
func (m *Medium) Attach(band Band, l *Listener) (detach func()) {
	if band != BandUplink && band != BandDownlink {
		panic("radio: invalid band")
	}
	if l.Position == nil || l.Deliver == nil {
		panic("radio: listener needs Position and Deliver")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var id int
	if n := len(m.freeIDs); n > 0 {
		// Reuse a detached id so byID stays bounded by the peak attachment
		// count under attach/detach churn. Safe for reproducibility: id
		// assignment is a pure function of the attach/detach sequence, and
		// per-delivery randomness also keys on the broadcast counter.
		id = m.freeIDs[n-1]
		m.freeIDs = m.freeIDs[:n-1]
	} else {
		id = m.nextID
		m.nextID++
		m.byID = append(m.byID, nil) // id == len(byID)-1
	}
	bs := &m.bands[band-1]
	e := &listenerEntry{id: id, l: l, pos: l.Position()}
	if bs.grid == nil {
		bs.grid = geo.NewGrid(m.gridCellFor(l))
	}
	bs.grid.Insert(id, geo.Circle{Center: e.pos, R: l.Radius})
	bs.order = append(bs.order, e)
	if !l.Static {
		bs.mobile = append(bs.mobile, e)
	}
	m.byID[id] = e
	var once sync.Once
	return func() {
		once.Do(func() {
			m.mu.Lock()
			defer m.mu.Unlock()
			bs.grid.Remove(id)
			m.byID[id] = nil
			m.freeIDs = append(m.freeIDs, id)
			bs.order = removeEntry(bs.order, e)
			if !l.Static {
				bs.mobile = removeEntry(bs.mobile, e)
			}
		})
	}
}

// removeEntry deletes e from s preserving order (clearing the vacated
// tail slot so the slice does not retain the listener).
func removeEntry(s []*listenerEntry, e *listenerEntry) []*listenerEntry {
	if i := slices.Index(s, e); i >= 0 {
		return slices.Delete(s, i, i+1)
	}
	return s
}

// delivery is one scheduled copy, decided under the medium lock and
// dispatched outside it.
type delivery struct {
	l       *Listener
	delay   time.Duration
	distSq  float64
	corrupt bool
	flipPos int
	flipBit byte
}

// bcastScratch is the pooled per-broadcast working set: candidate ids
// from the grid query plus the decided deliveries. Pooling it keeps the
// whole broadcast path allocation-free at steady state.
type bcastScratch struct {
	ids        []int
	deliveries []delivery
}

var scratchPool = sync.Pool{New: func() any {
	return &bcastScratch{ids: make([]int, 0, 64), deliveries: make([]delivery, 0, 64)}
}}

// pendingDelivery carries one copy from the decision under the lock to
// its clock-scheduled hand-off. The fire closure is bound once per
// pooled object, so scheduling a delivery allocates nothing.
type pendingDelivery struct {
	m      *Medium
	l      *Listener
	lease  *frameLease
	from   geo.Point
	distSq float64
	fire   func()
}

var pdPool sync.Pool

func init() {
	// Assigned in init: the New hook references run, which references
	// pdPool — a package-level literal would be an initialization cycle.
	pdPool.New = func() any {
		pd := new(pendingDelivery)
		pd.fire = pd.run
		return pd
	}
}

func (pd *pendingDelivery) run() {
	m, l, lease, from, distSq := pd.m, pd.l, pd.lease, pd.from, pd.distSq
	pd.m, pd.l, pd.lease = nil, nil, nil
	pdPool.Put(pd) // locals are copied; safe even if Deliver re-broadcasts
	m.metrics.Deliveries.Inc()
	l.Deliver(Frame{Data: lease.buf, From: from, At: m.clock.Now(), DistSq: distSq, lease: lease})
}

// Broadcast offers a frame to the medium from a transmit position with a
// transmit range. Every listener on the band whose zone covers the
// transmitter and that sits within txRange receives an independent copy,
// subject to loss, delay and corruption. The data slice is copied
// immediately; the caller may reuse it.
//
// Cost is O(mobile listeners + grid cells + listeners reached): only the
// spatial-index candidates are distance-checked, and each candidate's
// loss/jitter/corruption comes from its own derived stream, so no global
// RNG serialises concurrent broadcasts.
func (m *Medium) Broadcast(band Band, from geo.Point, txRange float64, data []byte) {
	m.metrics.Broadcasts.Inc()
	sc := scratchPool.Get().(*bcastScratch)
	sc.ids = sc.ids[:0]
	sc.deliveries = sc.deliveries[:0]

	m.mu.Lock()
	m.bcast++
	bcast := m.bcast
	bs := &m.bands[band-1]
	// Lazily re-bucket mobile listeners: position functions are live (a
	// sensor roams between broadcasts), so each mobile listener gets one
	// position check per broadcast and a grid move only when it drifted.
	for _, e := range bs.mobile {
		if pos := e.l.Position(); pos != e.pos {
			bs.grid.Move(e.id, geo.Circle{Center: pos, R: e.l.Radius})
			e.pos = pos
		}
	}
	reached := 0
	txRangeSq := txRange * txRange
	if bs.grid != nil {
		if m.linearScan {
			for _, e := range bs.order {
				sc.ids = append(sc.ids, e.id)
			}
		} else {
			sc.ids = bs.grid.AppendCovering(sc.ids, from)
			// Canonical scheduling order: grid bucketing details (cell
			// size, overflow list, mobility re-bucket history) must never
			// leak into the order equal-time deliveries fire in, so the
			// candidate walk is pinned to ascending id. Grid cell size
			// stays a pure performance knob.
			slices.Sort(sc.ids)
		}
	}
	for _, id := range sc.ids {
		e := m.byID[id]
		d2 := from.DistSq(e.pos)
		if d2 > txRangeSq || d2 > e.l.Radius*e.l.Radius {
			continue
		}
		reached++
		rng := newDeliveryRand(m.seed, bcast, e.id)
		if m.params.LossProb > 0 && rng.float64() < m.params.LossProb {
			m.metrics.Lost.Inc()
			continue
		}
		dv := delivery{l: e.l, delay: m.params.DelayMin, distSq: d2}
		if jitter := m.params.DelayMax - m.params.DelayMin; jitter > 0 {
			dv.delay += time.Duration(rng.int64n(int64(jitter) + 1))
		}
		if m.params.CorruptProb > 0 && rng.float64() < m.params.CorruptProb && len(data) > 0 {
			dv.corrupt = true
			dv.flipPos = rng.intn(len(data))
			dv.flipBit = byte(1) << rng.intn(8)
		}
		sc.deliveries = append(sc.deliveries, dv)
	}
	m.mu.Unlock()

	if reached == 0 {
		m.metrics.OutOfRange.Inc()
	}
	for i := range sc.deliveries {
		dv := &sc.deliveries[i]
		lease := leaseFrameBuf(len(data))
		copy(lease.buf, data)
		if dv.corrupt {
			lease.buf[dv.flipPos] ^= dv.flipBit
			m.metrics.Corrupted.Inc()
		}
		pd := pdPool.Get().(*pendingDelivery)
		pd.m, pd.l, pd.lease, pd.from, pd.distSq = m, dv.l, lease, from, dv.distSq
		m.sched(dv.delay, pd.fire)
	}
	for i := range sc.deliveries {
		sc.deliveries[i] = delivery{} // drop listener references before pooling
	}
	scratchPool.Put(sc)
}

// Listeners returns the number of listeners attached to a band.
func (m *Medium) Listeners(band Band) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.bands[band-1].order)
}

// Metrics exposes the medium's counters.
func (m *Medium) Metrics() *Metrics { return &m.metrics }

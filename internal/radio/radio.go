// Package radio simulates the unreliable wireless medium between the
// mobile sensor field and the fixed network (§3 of the paper: “mobile
// sensors transmit data over an unreliable wireless medium to a fixed
// network infrastructure”).
//
// The medium is a broadcast channel with range-limited delivery: a frame
// broadcast from a point reaches every attached listener whose reception
// zone covers the transmitter and that lies within the transmitter's
// range. Overlapping receiver zones therefore duplicate frames by
// construction — the phenomenon the Filtering Service exists to undo —
// and independent per-delivery loss, delay jitter and byte corruption
// model the unreliable channel. Uplink (sensor → receivers) and downlink
// (transmitters → sensors) are separate bands.
//
// All randomness comes from a seeded PCG stream and all scheduling from a
// sim.Clock, so a run is reproducible bit-for-bit.
package radio

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/sim"
)

// Band separates uplink (data messages towards the receivers) from
// downlink (control messages towards the sensors); physically these would
// be distinct frequencies.
type Band uint8

const (
	// BandUplink carries sensor data messages to the receiver array.
	BandUplink Band = iota + 1
	// BandDownlink carries control messages from the transmitters to
	// receive-capable sensors.
	BandDownlink

	bandCount = 2
)

// String names the band.
func (b Band) String() string {
	switch b {
	case BandUplink:
		return "uplink"
	case BandDownlink:
		return "downlink"
	default:
		return "band(?)"
	}
}

// Frame is a delivered radio frame. Data is owned by the recipient (each
// delivery receives an independent copy, since corruption is simulated
// per delivery).
//
// The buffer behind Data is leased from a pool. A recipient that is done
// with the frame — including every byte Data aliases — should call
// Release to recycle the buffer; a recipient that retains Data (or hands
// it to code that does) must simply not call Release, and the buffer
// falls back to the garbage collector.
type Frame struct {
	Data []byte
	From geo.Point // transmit position (ground truth; used only by the simulator)
	At   time.Time // delivery time on the medium's clock
	// DistSq is the squared transmitter→listener distance at broadcast
	// time. The medium computes it anyway for the range check; carrying
	// it saves every recipient the recomputation (receivers derive their
	// RSSI proxy from it without a per-frame distance calculation).
	DistSq float64

	lease *frameLease // pooled backing buffer; nil once released
}

// frameLease is one pooled delivery buffer plus its release latch. The
// latch lives here — not in the Frame — because Frames are passed and
// stored by value: every copy of a delivered Frame shares the one lease,
// so Release is exactly-once no matter how many copies call it.
type frameLease struct {
	buf      []byte
	released atomic.Bool
}

// frameBufs pools delivery buffers: every listener reached by a broadcast
// receives an independent copy of the frame (corruption is per delivery),
// and a dense field delivers millions of them. Recipients that call
// Frame.Release make the whole medium → receiver → filter drop path
// allocation-free at steady state.
var frameBufs = sync.Pool{
	New: func() any { return new(frameLease) },
}

// leaseFrameBuf returns a pooled lease with a buffer of length n.
func leaseFrameBuf(n int) *frameLease {
	l := frameBufs.Get().(*frameLease)
	if cap(l.buf) < n {
		l.buf = make([]byte, n)
	}
	l.buf = l.buf[:n]
	l.released.Store(false)
	return l
}

// Release returns the frame's buffer to the delivery pool and nils Data.
// It is idempotent, including across copies of the same delivered Frame.
// After Release every alias of Data is invalid: callers must have dropped
// or copied anything they intend to keep.
func (f *Frame) Release() {
	l := f.lease
	if l == nil {
		return
	}
	f.lease, f.Data = nil, nil
	if !l.released.Swap(true) {
		frameBufs.Put(l)
	}
}

// Listener is an attachment point on the medium: a reception zone plus a
// delivery callback. Position is queried at broadcast time so mobile nodes
// (sensors on the downlink band) are heard at their current location.
//
// Deliver runs on the clock's callback goroutine and must not block.
type Listener struct {
	Name     string
	Position func() geo.Point
	Radius   float64
	Deliver  func(Frame)
}

// Params configures medium impairments. The zero value is a perfect,
// zero-latency channel.
type Params struct {
	// LossProb is the probability an individual delivery is lost.
	LossProb float64
	// CorruptProb is the probability an individual delivery has one byte
	// flipped (screened out downstream by the frame checksum).
	CorruptProb float64
	// DelayMin and DelayMax bound the uniform propagation+MAC delay applied
	// to each delivery.
	DelayMin, DelayMax time.Duration
	// Seed seeds the medium's private random stream.
	Seed uint64
}

// Metrics counts medium activity. Read with atomic-safe Value calls.
type Metrics struct {
	Broadcasts metrics.Counter // frames offered to the medium
	Deliveries metrics.Counter // copies delivered to listeners
	Lost       metrics.Counter // copies dropped by the loss process
	Corrupted  metrics.Counter // copies delivered with a flipped byte
	OutOfRange metrics.Counter // broadcasts that reached zero listeners
}

// Medium is the simulated shared wireless channel.
type Medium struct {
	clock  sim.Clock
	params Params

	mu        sync.Mutex
	rng       *rand.Rand
	listeners [bandCount]map[int]*Listener
	nextID    int

	metrics Metrics
}

// NewMedium creates a medium on the given clock. NewMedium panics if
// DelayMax < DelayMin (a configuration programming error).
func NewMedium(clock sim.Clock, p Params) *Medium {
	if p.DelayMax < p.DelayMin {
		panic("radio: DelayMax < DelayMin")
	}
	m := &Medium{
		clock:  clock,
		params: p,
		rng:    sim.NewRand(sim.SubSeed(p.Seed, "radio.medium")),
	}
	for i := range m.listeners {
		m.listeners[i] = make(map[int]*Listener)
	}
	return m
}

// Attach registers a listener on a band and returns a function that
// detaches it. Attach panics on an undefined band or a nil Position or
// Deliver (programming errors).
func (m *Medium) Attach(band Band, l *Listener) (detach func()) {
	if band != BandUplink && band != BandDownlink {
		panic("radio: invalid band")
	}
	if l.Position == nil || l.Deliver == nil {
		panic("radio: listener needs Position and Deliver")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextID
	m.nextID++
	m.listeners[band-1][id] = l
	var once sync.Once
	return func() {
		once.Do(func() {
			m.mu.Lock()
			defer m.mu.Unlock()
			delete(m.listeners[band-1], id)
		})
	}
}

// Broadcast offers a frame to the medium from a transmit position with a
// transmit range. Every listener on the band whose zone covers the
// transmitter and that sits within txRange receives an independent copy,
// subject to loss, delay and corruption. The data slice is copied
// immediately; the caller may reuse it.
func (m *Medium) Broadcast(band Band, from geo.Point, txRange float64, data []byte) {
	m.metrics.Broadcasts.Inc()

	m.mu.Lock()
	reached := 0
	type delivery struct {
		l       *Listener
		delay   time.Duration
		distSq  float64
		corrupt bool
		flipPos int
		flipBit byte
	}
	var deliveries []delivery
	// Iterate in attach order (not map order) so the per-delivery random
	// draws are reproducible across runs with the same seed.
	ids := make([]int, 0, len(m.listeners[band-1]))
	for id := range m.listeners[band-1] {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		l := m.listeners[band-1][id]
		pos := l.Position()
		d2 := from.DistSq(pos)
		if d2 > txRange*txRange || d2 > l.Radius*l.Radius {
			continue
		}
		reached++
		if m.params.LossProb > 0 && m.rng.Float64() < m.params.LossProb {
			m.metrics.Lost.Inc()
			continue
		}
		dv := delivery{l: l, delay: m.params.DelayMin, distSq: d2}
		if jitter := m.params.DelayMax - m.params.DelayMin; jitter > 0 {
			dv.delay += time.Duration(m.rng.Int64N(int64(jitter) + 1))
		}
		if m.params.CorruptProb > 0 && m.rng.Float64() < m.params.CorruptProb && len(data) > 0 {
			dv.corrupt = true
			dv.flipPos = m.rng.IntN(len(data))
			dv.flipBit = byte(1 << m.rng.UintN(8))
		}
		deliveries = append(deliveries, dv)
	}
	m.mu.Unlock()

	if reached == 0 {
		m.metrics.OutOfRange.Inc()
		return
	}
	for _, dv := range deliveries {
		lease := leaseFrameBuf(len(data))
		buf := lease.buf
		copy(buf, data)
		if dv.corrupt {
			buf[dv.flipPos] ^= dv.flipBit
			m.metrics.Corrupted.Inc()
		}
		l := dv.l
		m.clock.AfterFunc(dv.delay, func() {
			m.metrics.Deliveries.Inc()
			l.Deliver(Frame{Data: buf, From: from, At: m.clock.Now(), DistSq: dv.distSq, lease: lease})
		})
	}
}

// Listeners returns the number of listeners attached to a band.
func (m *Medium) Listeners(band Band) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.listeners[band-1])
}

// Metrics exposes the medium's counters.
func (m *Medium) Metrics() *Metrics { return &m.metrics }

package radio

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"sync"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/sim"
)

// recording is one delivered copy: per-delivery randomness is derived
// from (seed, broadcast, listener) and the candidate walk is pinned to
// ascending listener id, so two media replaying one script must agree
// on the full firing sequence, not merely the delivery set.
type recording struct {
	listener string
	at       time.Time
	payload  string
}

type recorder struct {
	mu   sync.Mutex
	recs []recording
}

func (r *recorder) listenerFor(name string) func(Frame) {
	return func(f Frame) {
		r.mu.Lock()
		r.recs = append(r.recs, recording{listener: name, at: f.At, payload: string(f.Data)})
		r.mu.Unlock()
		f.Release()
	}
}

// raw returns the deliveries in firing order. The candidate walk is
// pinned to ascending listener id whatever the index internals do, so
// two media replaying one script must agree on the raw order too —
// including which of two equal-time copies fires first, which decides
// duplicate-filter races downstream.
func (r *recorder) raw() []recording {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]recording(nil), r.recs...)
}

// fieldScript is a reproducible random field + broadcast schedule that
// can be replayed against any medium configuration.
type fieldScript struct {
	params     Params
	listeners  []scriptListener
	broadcasts []scriptBroadcast
}

type scriptListener struct {
	name   string
	pos    geo.Point
	radius float64
	static bool
	band   Band
	// moveTo, when set for a non-static listener, changes its position
	// after the first half of the broadcasts (mobility mid-run).
	moveTo *geo.Point
}

type scriptBroadcast struct {
	band    Band
	from    geo.Point
	txRange float64
	payload []byte
}

func randomScript(rng *rand.Rand) fieldScript {
	s := fieldScript{
		params: Params{
			LossProb:    []float64{0, 0.3, 0.7}[rng.IntN(3)],
			CorruptProb: []float64{0, 0.4}[rng.IntN(2)],
			Seed:        rng.Uint64(),
			GridCell:    []float64{0, 40, 250}[rng.IntN(3)],
		},
	}
	if rng.IntN(2) == 0 {
		s.params.DelayMin = time.Millisecond
		s.params.DelayMax = 9 * time.Millisecond
	}
	const fieldSize = 1500.0
	randPoint := func() geo.Point {
		return geo.Pt(rng.Float64()*fieldSize-fieldSize/2, rng.Float64()*fieldSize-fieldSize/2)
	}
	nListeners := 5 + rng.IntN(60)
	for i := 0; i < nListeners; i++ {
		l := scriptListener{
			name:   fmt.Sprintf("l%d", i),
			pos:    randPoint(),
			radius: 20 + rng.Float64()*200,
			static: rng.IntN(3) != 0,
			band:   Band(1 + rng.IntN(2)),
		}
		if !l.static && rng.IntN(2) == 0 {
			p := randPoint()
			l.moveTo = &p
		}
		s.listeners = append(s.listeners, l)
	}
	nBroadcasts := 20 + rng.IntN(80)
	for i := 0; i < nBroadcasts; i++ {
		payload := make([]byte, rng.IntN(32))
		for j := range payload {
			payload[j] = byte(rng.Uint64())
		}
		s.broadcasts = append(s.broadcasts, scriptBroadcast{
			band:    Band(1 + rng.IntN(2)),
			from:    randPoint(),
			txRange: 30 + rng.Float64()*400,
			payload: payload,
		})
	}
	return s
}

// play runs the script on a fresh medium and returns the sorted delivery
// record plus the metric counters.
func (s fieldScript) play(linear bool) ([]recording, [5]int64) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, s.params)
	m.linearScan = linear
	rec := &recorder{}
	moved := make([]func(), 0)
	for _, sl := range s.listeners {
		sl := sl
		pos := sl.pos
		posPtr := &pos
		m.Attach(sl.band, &Listener{
			Name:     sl.name,
			Position: func() geo.Point { return *posPtr },
			Radius:   sl.radius,
			Deliver:  rec.listenerFor(sl.name),
			Static:   sl.static,
		})
		if sl.moveTo != nil {
			target := *sl.moveTo
			moved = append(moved, func() { *posPtr = target })
		}
	}
	half := len(s.broadcasts) / 2
	for i, b := range s.broadcasts {
		if i == half {
			for _, mv := range moved {
				mv()
			}
		}
		m.Broadcast(b.band, b.from, b.txRange, b.payload)
		clock.Advance(time.Millisecond)
	}
	clock.RunAll()
	met := m.Metrics()
	return rec.raw(), [5]int64{
		met.Broadcasts.Value(), met.Deliveries.Value(), met.Lost.Value(),
		met.Corrupted.Value(), met.OutOfRange.Value(),
	}
}

// TestGridVsLinearScanEquivalenceProperty is the differential test the
// index refactor is pinned by: over random fields (mixed bands, static
// and mid-run-moving listeners, loss/jitter/corruption on), the grid
// medium and the attach-order linear reference scan must produce
// byte-identical delivery outcomes — same listeners, same delivery
// times, same payload bytes (corruption flips included), same counters.
func TestGridVsLinearScanEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xFEED, 0xFACE))
	for trial := 0; trial < 30; trial++ {
		script := randomScript(rng)
		gridRecs, gridMet := script.play(false)
		linRecs, linMet := script.play(true)
		if gridMet != linMet {
			t.Fatalf("trial %d: metrics diverge: grid %v vs linear %v", trial, gridMet, linMet)
		}
		if len(gridRecs) != len(linRecs) {
			t.Fatalf("trial %d: %d grid deliveries vs %d linear", trial, len(gridRecs), len(linRecs))
		}
		for i := range gridRecs {
			if gridRecs[i] != linRecs[i] {
				t.Fatalf("trial %d: delivery %d diverges:\n  grid:   %+v\n  linear: %+v",
					trial, i, gridRecs[i], linRecs[i])
			}
		}
	}
}

// TestSameSeedDeterminism is the regression test for reproducibility:
// two media built with the same seed and attach sequence must produce
// identical delivery times, payloads and corruption flips.
func TestSameSeedDeterminism(t *testing.T) {
	script := randomScript(rand.New(rand.NewPCG(77, 88)))
	script.params.LossProb = 0.4
	script.params.CorruptProb = 0.5
	script.params.DelayMin = time.Millisecond
	script.params.DelayMax = 20 * time.Millisecond
	script.params.Seed = 0xDECAF

	aRecs, aMet := script.play(false)
	bRecs, bMet := script.play(false)
	if aMet != bMet {
		t.Fatalf("metrics diverge across same-seed runs: %v vs %v", aMet, bMet)
	}
	if len(aRecs) == 0 {
		t.Fatal("script delivered nothing; determinism test is vacuous")
	}
	if !slices.Equal(aRecs, bRecs) {
		t.Fatal("same seed and attach sequence produced different deliveries")
	}
	// A different seed must actually change the outcome — otherwise the
	// assertions above prove nothing about the seed wiring.
	script.params.Seed = 0xBEEF
	cRecs, _ := script.play(false)
	if slices.Equal(aRecs, cRecs) {
		t.Fatal("changing the medium seed changed nothing; seed is not wired through")
	}
}

// TestDetachedListenerLeavesGrid covers detach under the index: a
// detached listener must not be found by later broadcasts, and its slot
// must not disturb its neighbours' outcomes.
func TestDetachedListenerLeavesGrid(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, Params{})
	var kept, gone collector
	m.Attach(BandUplink, &Listener{Name: "kept", Position: fixed(geo.Pt(1, 0)), Radius: 100, Deliver: kept.deliver, Static: true})
	detach := m.Attach(BandUplink, &Listener{Name: "gone", Position: fixed(geo.Pt(0, 1)), Radius: 100, Deliver: gone.deliver})
	m.Broadcast(BandUplink, geo.Pt(0, 0), 100, []byte("a"))
	detach()
	m.Broadcast(BandUplink, geo.Pt(0, 0), 100, []byte("b"))
	clock.RunAll()
	if kept.count() != 2 || gone.count() != 1 {
		t.Fatalf("kept=%d gone=%d, want 2 and 1", kept.count(), gone.count())
	}
}

// BenchmarkBroadcastGridVsLinear quantifies the index win: a sparse
// lattice where a broadcast reaches ~1 receiver, swept over attached
// counts, grid path vs the attach-order reference scan.
func BenchmarkBroadcastGridVsLinear(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		for _, mode := range []string{"grid", "linear"} {
			b.Run(fmt.Sprintf("receivers=%d/mode=%s", n, mode), func(b *testing.B) {
				const radius = 100.0
				clock := sim.NewVirtualClock(epoch)
				m := NewMedium(clock, Params{Seed: 1})
				m.linearScan = mode == "linear"
				side := 1
				for side*side < n {
					side++
				}
				const spacing = 2.5 * radius
				for i := 0; i < n; i++ {
					pos := geo.Pt(float64(i%side)*spacing, float64(i/side)*spacing)
					m.Attach(BandUplink, &Listener{
						Name:     fmt.Sprintf("rx%d", i),
						Position: func() geo.Point { return pos },
						Radius:   radius,
						Static:   true,
						Deliver:  func(f Frame) { f.Release() },
					})
				}
				payload := make([]byte, 24)
				mid := float64(side/2) * spacing
				from := geo.Pt(mid+10, mid)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Broadcast(BandUplink, from, radius, payload)
					clock.RunAll()
				}
			})
		}
	}
}

// TestAttachDetachChurnBoundsIDSpace: detached listener ids are reused,
// so a long-lived medium with attach/detach churn keeps its id-indexed
// lookup bounded by the peak attachment count instead of growing one
// slot per attachment ever made.
func TestAttachDetachChurnBoundsIDSpace(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, Params{})
	var c collector
	m.Attach(BandUplink, &Listener{Name: "anchor", Position: fixed(geo.Pt(0, 0)), Radius: 100, Deliver: c.deliver, Static: true})
	for i := 0; i < 1000; i++ {
		detach := m.Attach(BandUplink, &Listener{
			Name: "churn", Position: fixed(geo.Pt(1, 0)), Radius: 100, Deliver: func(f Frame) { f.Release() },
		})
		detach()
	}
	m.mu.Lock()
	ids, slots := m.nextID, len(m.byID)
	m.mu.Unlock()
	if ids > 2 || slots > 2 {
		t.Fatalf("id space grew under churn: nextID=%d len(byID)=%d, want ≤2", ids, slots)
	}
	// The medium still works after heavy reuse.
	m.Broadcast(BandUplink, geo.Pt(0, 0), 100, []byte("post-churn"))
	clock.RunAll()
	if c.count() != 1 || string(c.frames[0].Data) != "post-churn" {
		t.Fatalf("anchor heard %d frames after churn", c.count())
	}
}

// TestMobileListenerRebucketsAcrossCells drives a mobile listener far
// across grid cells and confirms every position change is honoured at
// broadcast time (the lazy re-bucketing path).
func TestMobileListenerRebucketsAcrossCells(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, Params{GridCell: 50})
	var c collector
	pos := geo.Pt(0, 0)
	m.Attach(BandDownlink, &Listener{
		Name: "roamer", Position: func() geo.Point { return pos }, Radius: 60, Deliver: c.deliver,
	})
	hops := []geo.Point{{X: 0, Y: 0}, {X: 400, Y: 0}, {X: 400, Y: 400}, {X: -300, Y: 100}, {X: 0, Y: 0}}
	for i, p := range hops {
		pos = p
		m.Broadcast(BandDownlink, p, 60, []byte{byte(i)}) // right on top of it
		m.Broadcast(BandDownlink, geo.Pt(p.X+1000, p.Y), 60, []byte{0xFF})
	}
	clock.RunAll()
	if c.count() != len(hops) {
		t.Fatalf("delivered %d, want %d (one per hop)", c.count(), len(hops))
	}
	for i := range hops {
		if c.frames[i].Data[0] != byte(i) {
			t.Fatalf("frame %d = %x", i, c.frames[i].Data)
		}
	}
	if got := m.Metrics().OutOfRange.Value(); got != int64(len(hops)) {
		t.Fatalf("OutOfRange = %d, want %d (the far broadcasts)", got, len(hops))
	}
}

package radio

import (
	"sync"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/sim"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

func fixed(p geo.Point) func() geo.Point { return func() geo.Point { return p } }

type collector struct {
	mu     sync.Mutex
	frames []Frame
}

func (c *collector) deliver(f Frame) {
	c.mu.Lock()
	c.frames = append(c.frames, f)
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func TestBroadcastReachesListenerInRange(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, Params{})
	var c collector
	m.Attach(BandUplink, &Listener{Name: "rx", Position: fixed(geo.Pt(10, 0)), Radius: 50, Deliver: c.deliver})

	m.Broadcast(BandUplink, geo.Pt(0, 0), 100, []byte("hello"))
	clock.RunAll()

	if c.count() != 1 {
		t.Fatalf("deliveries = %d, want 1", c.count())
	}
	if string(c.frames[0].Data) != "hello" {
		t.Fatalf("data = %q", c.frames[0].Data)
	}
}

func TestBroadcastRangeLimits(t *testing.T) {
	tests := []struct {
		name      string
		listener  geo.Point
		radius    float64
		txRange   float64
		delivered bool
	}{
		{"inside both", geo.Pt(10, 0), 50, 50, true},
		{"outside tx range", geo.Pt(60, 0), 100, 50, false},
		{"outside rx radius", geo.Pt(10, 0), 5, 50, false},
		{"boundary exact", geo.Pt(50, 0), 50, 50, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			clock := sim.NewVirtualClock(epoch)
			m := NewMedium(clock, Params{})
			var c collector
			m.Attach(BandUplink, &Listener{Name: "rx", Position: fixed(tt.listener), Radius: tt.radius, Deliver: c.deliver})
			m.Broadcast(BandUplink, geo.Pt(0, 0), tt.txRange, []byte("x"))
			clock.RunAll()
			if got := c.count() == 1; got != tt.delivered {
				t.Errorf("delivered = %v, want %v", got, tt.delivered)
			}
		})
	}
}

func TestOverlappingReceiversDuplicate(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, Params{})
	var c collector
	// Three overlapping receivers all covering the origin — the paper's
	// §4.2: overlap "improves data reception but causes potential
	// duplication of data messages".
	for _, p := range []geo.Point{geo.Pt(5, 0), geo.Pt(0, 5), geo.Pt(-5, 0)} {
		m.Attach(BandUplink, &Listener{Name: "rx", Position: fixed(p), Radius: 20, Deliver: c.deliver})
	}
	m.Broadcast(BandUplink, geo.Pt(0, 0), 100, []byte("dup"))
	clock.RunAll()
	if c.count() != 3 {
		t.Fatalf("deliveries = %d, want 3 (one per overlapping receiver)", c.count())
	}
}

func TestBandsAreIsolated(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, Params{})
	var up, down collector
	m.Attach(BandUplink, &Listener{Name: "rx", Position: fixed(geo.Pt(0, 0)), Radius: 100, Deliver: up.deliver})
	m.Attach(BandDownlink, &Listener{Name: "sensor", Position: fixed(geo.Pt(0, 0)), Radius: 100, Deliver: down.deliver})

	m.Broadcast(BandUplink, geo.Pt(1, 1), 100, []byte("data"))
	m.Broadcast(BandDownlink, geo.Pt(1, 1), 100, []byte("ctrl"))
	clock.RunAll()

	if up.count() != 1 || down.count() != 1 {
		t.Fatalf("uplink=%d downlink=%d, want 1 and 1", up.count(), down.count())
	}
	if string(up.frames[0].Data) != "data" || string(down.frames[0].Data) != "ctrl" {
		t.Fatal("bands crossed over")
	}
}

func TestLossProbability(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, Params{LossProb: 0.3, Seed: 7})
	var c collector
	m.Attach(BandUplink, &Listener{Name: "rx", Position: fixed(geo.Pt(0, 0)), Radius: 100, Deliver: c.deliver})

	const n = 2000
	for i := 0; i < n; i++ {
		m.Broadcast(BandUplink, geo.Pt(1, 0), 100, []byte("x"))
	}
	clock.RunAll()

	got := c.count()
	if got < 1200 || got > 1600 {
		t.Fatalf("delivered %d of %d with 30%% loss, want ≈1400", got, n)
	}
	met := m.Metrics()
	if met.Lost.Value()+int64(got) != n {
		t.Fatalf("lost(%d)+delivered(%d) != broadcast(%d)", met.Lost.Value(), got, n)
	}
}

func TestTotalLoss(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, Params{LossProb: 1})
	var c collector
	m.Attach(BandUplink, &Listener{Name: "rx", Position: fixed(geo.Pt(0, 0)), Radius: 100, Deliver: c.deliver})
	m.Broadcast(BandUplink, geo.Pt(1, 0), 100, []byte("x"))
	clock.RunAll()
	if c.count() != 0 {
		t.Fatal("LossProb=1 should drop everything")
	}
}

func TestDelayJitterWithinBounds(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, Params{DelayMin: 5 * time.Millisecond, DelayMax: 15 * time.Millisecond, Seed: 3})
	var c collector
	m.Attach(BandUplink, &Listener{Name: "rx", Position: fixed(geo.Pt(0, 0)), Radius: 100, Deliver: c.deliver})

	for i := 0; i < 200; i++ {
		m.Broadcast(BandUplink, geo.Pt(1, 0), 100, []byte("x"))
	}
	clock.RunAll()

	if c.count() != 200 {
		t.Fatalf("delivered %d, want 200", c.count())
	}
	var sawMin, sawSpread bool
	for _, f := range c.frames {
		d := f.At.Sub(epoch)
		if d < 5*time.Millisecond || d > 15*time.Millisecond {
			t.Fatalf("delivery delay %v outside [5ms, 15ms]", d)
		}
		if d < 8*time.Millisecond {
			sawMin = true
		}
		if d > 12*time.Millisecond {
			sawSpread = true
		}
	}
	if !sawMin || !sawSpread {
		t.Error("jitter distribution suspiciously narrow")
	}
}

func TestCorruptionFlipsExactlyOneBit(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, Params{CorruptProb: 1, Seed: 11})
	var c collector
	m.Attach(BandUplink, &Listener{Name: "rx", Position: fixed(geo.Pt(0, 0)), Radius: 100, Deliver: c.deliver})

	orig := []byte{0x00, 0x00, 0x00, 0x00}
	m.Broadcast(BandUplink, geo.Pt(1, 0), 100, orig)
	clock.RunAll()

	if c.count() != 1 {
		t.Fatalf("delivered %d, want 1", c.count())
	}
	diffBits := 0
	for i, b := range c.frames[0].Data {
		x := b ^ orig[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diffBits)
	}
}

func TestDeliveriesAreIndependentCopies(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, Params{})
	var a, b collector
	m.Attach(BandUplink, &Listener{Name: "a", Position: fixed(geo.Pt(0, 0)), Radius: 100, Deliver: a.deliver})
	m.Attach(BandUplink, &Listener{Name: "b", Position: fixed(geo.Pt(0, 1)), Radius: 100, Deliver: b.deliver})

	buf := []byte("mutate-me")
	m.Broadcast(BandUplink, geo.Pt(0, 0), 100, buf)
	buf[0] = 'X' // caller reuses its buffer immediately
	clock.RunAll()

	if string(a.frames[0].Data) != "mutate-me" || string(b.frames[0].Data) != "mutate-me" {
		t.Fatal("deliveries alias the caller's buffer")
	}
	a.frames[0].Data[0] = 'Y'
	if string(b.frames[0].Data) != "mutate-me" {
		t.Fatal("deliveries alias each other")
	}
}

// TestFrameRelease: releasing a delivered frame recycles its pooled
// buffer (later deliveries may reuse it) without invalidating frames a
// recipient chose to retain, and Release is idempotent.
func TestFrameRelease(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, Params{})
	var kept []string
	var frames []Frame
	m.Attach(BandUplink, &Listener{
		Name: "rx", Position: fixed(geo.Pt(0, 0)), Radius: 100,
		Deliver: func(f Frame) {
			kept = append(kept, string(f.Data)) // copy, then recycle
			frames = append(frames, f)
			f.Release()
			f.Release()                     // idempotent on the same copy
			frames[len(frames)-1].Release() // and across copies: the stored copy shares the lease
			if f.Data != nil {
				t.Error("Data not nilled by Release")
			}
		},
	})
	for i := 0; i < 10; i++ {
		m.Broadcast(BandUplink, geo.Pt(0, 0), 100, []byte{'0' + byte(i)})
		clock.RunAll()
	}
	for i, k := range kept {
		if want := string('0' + byte(i)); k != want {
			t.Fatalf("frame %d = %q, want %q", i, k, want)
		}
	}
	// Frames that were never released (e.g. a sensor retaining a downlink
	// frame) must stay valid: the pool only reclaims on explicit Release.
	var c collector
	m.Attach(BandDownlink, &Listener{Name: "keep", Position: fixed(geo.Pt(0, 0)), Radius: 100, Deliver: c.deliver})
	m.Broadcast(BandDownlink, geo.Pt(0, 0), 100, []byte("retained"))
	clock.RunAll()
	m.Broadcast(BandDownlink, geo.Pt(0, 0), 100, []byte("later-on!"))
	clock.RunAll()
	if string(c.frames[0].Data) != "retained" {
		t.Fatalf("unreleased frame corrupted: %q", c.frames[0].Data)
	}
}

func TestDetach(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, Params{})
	var c collector
	detach := m.Attach(BandUplink, &Listener{Name: "rx", Position: fixed(geo.Pt(0, 0)), Radius: 100, Deliver: c.deliver})
	if m.Listeners(BandUplink) != 1 {
		t.Fatal("listener not attached")
	}
	detach()
	detach() // idempotent
	if m.Listeners(BandUplink) != 0 {
		t.Fatal("listener not detached")
	}
	m.Broadcast(BandUplink, geo.Pt(0, 0), 100, []byte("x"))
	clock.RunAll()
	if c.count() != 0 {
		t.Fatal("detached listener still receives")
	}
}

func TestMovingListenerHeardAtCurrentPosition(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, Params{})
	var c collector
	pos := geo.Pt(1000, 0) // out of range now
	m.Attach(BandDownlink, &Listener{Name: "sensor", Position: func() geo.Point { return pos }, Radius: 100, Deliver: c.deliver})

	m.Broadcast(BandDownlink, geo.Pt(0, 0), 100, []byte("miss"))
	pos = geo.Pt(10, 0) // sensor roams back into range
	m.Broadcast(BandDownlink, geo.Pt(0, 0), 100, []byte("hit"))
	clock.RunAll()

	if c.count() != 1 || string(c.frames[0].Data) != "hit" {
		t.Fatalf("frames = %d, want only the in-range broadcast", c.count())
	}
	if got := m.Metrics().OutOfRange.Value(); got != 1 {
		t.Fatalf("OutOfRange = %d, want 1", got)
	}
}

func TestMetricsAccounting(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, Params{})
	var c collector
	m.Attach(BandUplink, &Listener{Name: "rx", Position: fixed(geo.Pt(0, 0)), Radius: 100, Deliver: c.deliver})
	for i := 0; i < 10; i++ {
		m.Broadcast(BandUplink, geo.Pt(0, 0), 100, []byte("x"))
	}
	clock.RunAll()
	met := m.Metrics()
	if met.Broadcasts.Value() != 10 || met.Deliveries.Value() != 10 || met.Lost.Value() != 0 {
		t.Fatalf("metrics: broadcasts=%d deliveries=%d lost=%d", met.Broadcasts.Value(), met.Deliveries.Value(), met.Lost.Value())
	}
}

// TestLossAccountingCountsLostTowardReached pins the accounting
// contract: a frame that reaches listeners but loses every copy is NOT
// out-of-range — the loss process consumed it. OutOfRange strictly means
// "nobody's zone covered the transmitter".
func TestLossAccountingCountsLostTowardReached(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, Params{LossProb: 1, Seed: 5})
	var c collector
	for _, p := range []geo.Point{geo.Pt(1, 0), geo.Pt(0, 1), geo.Pt(-1, 0)} {
		m.Attach(BandUplink, &Listener{Name: "rx", Position: fixed(p), Radius: 100, Deliver: c.deliver})
	}
	// In range of all three listeners; every copy lost.
	m.Broadcast(BandUplink, geo.Pt(0, 0), 100, []byte("doomed"))
	// In range of nobody.
	m.Broadcast(BandUplink, geo.Pt(5000, 5000), 10, []byte("nowhere"))
	clock.RunAll()

	met := m.Metrics()
	if got, want := met.Broadcasts.Value(), int64(2); got != want {
		t.Errorf("Broadcasts = %d, want %d", got, want)
	}
	if got, want := met.Lost.Value(), int64(3); got != want {
		t.Errorf("Lost = %d, want %d (one per reached listener)", got, want)
	}
	if got, want := met.Deliveries.Value(), int64(0); got != want {
		t.Errorf("Deliveries = %d, want %d", got, want)
	}
	if got, want := met.OutOfRange.Value(), int64(1); got != want {
		t.Errorf("OutOfRange = %d, want %d (total loss is not out-of-range)", got, want)
	}
	if c.count() != 0 {
		t.Errorf("delivered %d frames, want 0", c.count())
	}
}

// TestZeroLengthPayloadSkipsCorruption pins the corruption edge case: a
// zero-length payload has no byte to flip, so even CorruptProb=1
// delivers it unflipped and the Corrupted counter stays at zero.
func TestZeroLengthPayloadSkipsCorruption(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	m := NewMedium(clock, Params{CorruptProb: 1, Seed: 5})
	var c collector
	m.Attach(BandUplink, &Listener{Name: "rx", Position: fixed(geo.Pt(0, 0)), Radius: 100, Deliver: c.deliver})

	m.Broadcast(BandUplink, geo.Pt(1, 0), 100, nil)             // nothing to corrupt
	m.Broadcast(BandUplink, geo.Pt(1, 0), 100, []byte{0xAB})    // corrupted
	m.Broadcast(BandUplink, geo.Pt(1, 0), 100, []byte("hello")) // corrupted
	clock.RunAll()

	met := m.Metrics()
	if got, want := met.Deliveries.Value(), int64(3); got != want {
		t.Errorf("Deliveries = %d, want %d", got, want)
	}
	if got, want := met.Corrupted.Value(), int64(2); got != want {
		t.Errorf("Corrupted = %d, want %d (empty payload must not count)", got, want)
	}
	if len(c.frames[0].Data) != 0 {
		t.Errorf("empty payload delivered as %q", c.frames[0].Data)
	}
	if c.frames[1].Data[0] == 0xAB {
		t.Error("CorruptProb=1 delivered an unflipped byte")
	}
	if met.Lost.Value() != 0 || met.OutOfRange.Value() != 0 {
		t.Errorf("Lost = %d, OutOfRange = %d, want 0 and 0", met.Lost.Value(), met.OutOfRange.Value())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []int {
		clock := sim.NewVirtualClock(epoch)
		m := NewMedium(clock, Params{LossProb: 0.5, DelayMin: time.Millisecond, DelayMax: 10 * time.Millisecond, Seed: 99})
		var c collector
		m.Attach(BandUplink, &Listener{Name: "rx", Position: fixed(geo.Pt(0, 0)), Radius: 100, Deliver: c.deliver})
		for i := 0; i < 100; i++ {
			m.Broadcast(BandUplink, geo.Pt(1, 0), 100, []byte{byte(i)})
		}
		clock.RunAll()
		var ids []int
		for _, f := range c.frames {
			ids = append(ids, int(f.Data[0]))
		}
		return ids
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNewMediumValidatesDelays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for DelayMax < DelayMin")
		}
	}()
	NewMedium(sim.NewVirtualClock(epoch), Params{DelayMin: 2, DelayMax: 1})
}

func TestAttachValidation(t *testing.T) {
	m := NewMedium(sim.NewVirtualClock(epoch), Params{})
	for _, tt := range []struct {
		name string
		band Band
		l    Listener
	}{
		{"bad band", Band(9), Listener{Position: fixed(geo.Pt(0, 0)), Deliver: func(Frame) {}}},
		{"nil position", BandUplink, Listener{Deliver: func(Frame) {}}},
		{"nil deliver", BandUplink, Listener{Position: fixed(geo.Pt(0, 0))}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			m.Attach(tt.band, &tt.l)
		})
	}
}

package radio

import "math/bits"

// deliveryRand is the per-delivery random stream. The medium used to
// draw loss/jitter/corruption for every delivery from one shared PCG in
// listener-attach order, which serialised all broadcasts on the RNG
// mutex and welded delivery outcomes to the iteration order. Instead,
// each delivery's stream is derived purely from
//
//	(medium seed, broadcast counter, listener id)
//
// so the outcome for a given listener on a given broadcast is the same
// no matter which order — grid cell order, attach order, or anything
// else — the candidate set is walked in, and no state is shared between
// deliveries. The generator is splitmix64: 64-bit state, one multiply
// chain per draw, passes the statistical scrutiny a channel simulation
// needs.
type deliveryRand struct{ state uint64 }

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// newDeliveryRand keys a stream off the (seed, broadcast, listener)
// triple. The three inputs pass through the finalizer separately so that
// nearby counters and ids yield unrelated streams.
func newDeliveryRand(seed, bcast uint64, id int) deliveryRand {
	return deliveryRand{state: mix64(seed ^ mix64(bcast^0x9E3779B97F4A7C15) ^ mix64(uint64(id)^0xD6E8FEB86659FD93))}
}

func (r *deliveryRand) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	return mix64(r.state)
}

// float64 draws uniformly from [0, 1).
func (r *deliveryRand) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// uint64n draws uniformly from [0, n) via the multiply-shift reduction.
func (r *deliveryRand) uint64n(n uint64) uint64 {
	hi, _ := bits.Mul64(r.next(), n)
	return hi
}

// int64n draws uniformly from [0, n); n must be positive.
func (r *deliveryRand) int64n(n int64) int64 {
	return int64(r.uint64n(uint64(n)))
}

// intn draws uniformly from [0, n); n must be positive.
func (r *deliveryRand) intn(n int) int {
	return int(r.uint64n(uint64(n)))
}

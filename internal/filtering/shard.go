package filtering

import (
	"sync"
	"time"
	"unsafe"

	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// shard is one partition of the per-stream filter state. The partition
// key is the sensor component of the StreamID — the same key the
// Dispatching Service shards on — so every stream of a sensor lands in
// one shard and an Ingest call takes exactly one shard mutex. Reorder
// timers re-acquire only their own shard's mutex when they fire, so
// pending-release work on one shard never blocks ingest on another.
type shard struct {
	f  *Filter
	mu sync.Mutex

	streams map[wire.StreamID]*streamFilter

	// Single-entry lookup cache: sensors emit runs of messages on the
	// same stream, so the common case skips the map hash entirely.
	// Guarded by mu like everything else here.
	lastID wire.StreamID
	last   *streamFilter

	// Hot-path counters are plain ints mutated only under mu — cheaper
	// than atomics on every ingest, and shard-locality keeps unrelated
	// streams off each other's cache lines. Stats sums them per shard.
	received   int64
	delivered  int64
	duplicates int64
	stale      int64
	gaps       int64
	recovered  int64
}

// paddedShard rounds a shard up to whole cache lines, keeping at least
// 8 bytes of trailing padding, so live fields of adjacent shards in the
// contiguous backing array never share a line even when the runtime's
// 8-byte allocation header shifts the array base off line alignment
// (see the dispatch package's paddedShard for the full rationale).
type paddedShard struct {
	shard
	_ [(unsafe.Sizeof(shard{})+metrics.CacheLine+7)/metrics.CacheLine*metrics.CacheLine - unsafe.Sizeof(shard{})]byte
}

// newShards builds the shard table as one contiguous padded array.
func newShards(f *Filter, n int) []*shard {
	backing := make([]paddedShard, n)
	shards := make([]*shard, n)
	for i := range shards {
		sh := &backing[i].shard
		sh.f = f
		sh.streams = make(map[wire.StreamID]*streamFilter)
		shards[i] = sh
	}
	return shards
}

// shardFor picks the stream's home shard with wire.SensorID.Shard — the
// same partition function the dispatcher uses, so a stream's filter and
// dispatch state partition identically.
func (f *Filter) shardFor(id wire.StreamID) *shard {
	return f.shards[id.Sensor().Shard(len(f.shards))]
}

// shardIndexFor is shardFor returning the index, for IngestBatch's
// grouping scratch.
func (f *Filter) shardIndexFor(id wire.StreamID) uint32 {
	return uint32(id.Sensor().Shard(len(f.shards)))
}

// forceEagerWindows makes every new stream materialise its dup-window
// bitmap immediately, restoring the historical eager behaviour. Only the
// lazy-vs-eager differential property test sets it; production code must
// leave it false.
var forceEagerWindows = false

// lookupSlowLocked finds or creates the stream's filter state on a
// single-entry-cache miss and refreshes the cache. The dup-window bitmap
// is NOT allocated here: an in-order stream tracks its contiguous seen
// range with base/span alone, and the bitmap materialises on the first
// gap or out-of-order arrival (see streamFilter.accept). Caller holds
// sh.mu; the cache-hit path lives inline in Ingest.
func (sh *shard) lookupSlowLocked(id wire.StreamID, at time.Time) *streamFilter {
	sf, ok := sh.streams[id]
	if !ok {
		sf = &streamFilter{sh: sh, firstSeen: at}
		if forceEagerWindows {
			sf.window = make([]uint64, sh.f.opts.WindowSize/64)
		}
		sh.streams[id] = sf
	}
	sh.lastID, sh.last = id, sf
	return sf
}

// deliverySlices pools the scratch slices release and Flush hand
// expired deliveries through, so steady-state reordering allocates
// nothing per timer fire.
var deliverySlices = sync.Pool{
	New: func() any { return new([]Delivery) },
}

func getDeliverySlice() *[]Delivery { return deliverySlices.Get().(*[]Delivery) }

func putDeliverySlice(p *[]Delivery) {
	// Zero the entries so pooled storage does not pin payloads or
	// receiver strings until the slice is next used.
	clear(*p)
	*p = (*p)[:0]
	deliverySlices.Put(p)
}

// shardIndexSlices pools IngestBatch's grouping scratch (one shard
// index per reception), so batched ingest allocates nothing at steady
// state.
var shardIndexSlices = sync.Pool{
	New: func() any { return new([]uint32) },
}

func getShardIndexSlice(n int) *[]uint32 {
	p := shardIndexSlices.Get().(*[]uint32)
	if cap(*p) < n {
		*p = make([]uint32, n)
	}
	*p = (*p)[:n]
	return p
}

func putShardIndexSlice(p *[]uint32) {
	shardIndexSlices.Put(p)
}

package filtering

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

func rcpt(stream wire.StreamID, seq wire.Seq) receiver.Reception {
	return receiver.Reception{
		Msg:      wire.Message{Stream: stream, Seq: seq},
		Receiver: "rx",
		RSSI:     0.5,
		At:       epoch,
	}
}

func collectFilter(opts Options) (*Filter, *[]Delivery) {
	var out []Delivery
	f := New(func(d Delivery) { out = append(out, d) }, opts)
	return f, &out
}

func TestFilterPassesUniqueMessages(t *testing.T) {
	f, out := collectFilter(Options{})
	id := wire.MustStreamID(1, 0)
	for seq := 0; seq < 10; seq++ {
		f.Ingest(rcpt(id, wire.Seq(seq)))
	}
	if len(*out) != 10 {
		t.Fatalf("delivered %d, want 10", len(*out))
	}
	for i, d := range *out {
		if d.Msg.Seq != wire.Seq(i) {
			t.Fatalf("out of order at %d: %d", i, d.Msg.Seq)
		}
	}
}

func TestFilterDropsExactDuplicates(t *testing.T) {
	f, out := collectFilter(Options{})
	id := wire.MustStreamID(1, 0)
	// Three receivers hear every message: classic overlap duplication.
	for seq := 0; seq < 5; seq++ {
		for copyN := 0; copyN < 3; copyN++ {
			f.Ingest(rcpt(id, wire.Seq(seq)))
		}
	}
	if len(*out) != 5 {
		t.Fatalf("delivered %d, want 5", len(*out))
	}
	st := f.Stats()
	if st.Received != 15 || st.Delivered != 5 || st.Duplicates != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFilterAcceptsLateArrivalWithinWindow(t *testing.T) {
	f, out := collectFilter(Options{})
	id := wire.MustStreamID(1, 0)
	f.Ingest(rcpt(id, 0))
	f.Ingest(rcpt(id, 5)) // gap: 1-4 missing
	f.Ingest(rcpt(id, 3)) // late arrival fills part of the gap
	if len(*out) != 3 {
		t.Fatalf("delivered %d, want 3", len(*out))
	}
	st := f.Stats()
	if st.Gaps != 4 {
		t.Fatalf("gaps = %d, want 4", st.Gaps)
	}
	if st.GapsRecovered != 1 {
		t.Fatalf("recovered = %d, want 1", st.GapsRecovered)
	}
	// And the late copy must now be a duplicate if re-heard.
	f.Ingest(rcpt(id, 3))
	if len(*out) != 3 {
		t.Fatal("duplicate of late arrival delivered")
	}
}

func TestFilterDropsStaleBeyondWindow(t *testing.T) {
	f, out := collectFilter(Options{WindowSize: 64})
	id := wire.MustStreamID(1, 0)
	f.Ingest(rcpt(id, 0))
	f.Ingest(rcpt(id, 200)) // window slides far past 0
	f.Ingest(rcpt(id, 100)) // 100 is 100 behind base, outside 64-window
	if len(*out) != 2 {
		t.Fatalf("delivered %d, want 2", len(*out))
	}
	if st := f.Stats(); st.Stale != 1 {
		t.Fatalf("stale = %d, want 1", st.Stale)
	}
}

func TestFilterSurvivesSequenceWraparound(t *testing.T) {
	f, out := collectFilter(Options{})
	id := wire.MustStreamID(1, 0)
	// Walk a window across the 16-bit wrap boundary.
	start := wire.Seq(65530)
	for i := 0; i < 12; i++ {
		f.Ingest(rcpt(id, start+wire.Seq(i))) // 65530..65535,0..5
	}
	if len(*out) != 12 {
		t.Fatalf("delivered %d, want 12", len(*out))
	}
	// Replays from before the wrap are duplicates, not fresh messages.
	f.Ingest(rcpt(id, 65531))
	f.Ingest(rcpt(id, 2))
	if len(*out) != 12 {
		t.Fatalf("wraparound replay accepted: %d", len(*out))
	}
	if st := f.Stats(); st.Duplicates != 2 {
		t.Fatalf("duplicates = %d, want 2", st.Duplicates)
	}
}

func TestFilterStreamsAreIndependent(t *testing.T) {
	f, out := collectFilter(Options{})
	a, b := wire.MustStreamID(1, 0), wire.MustStreamID(1, 1)
	f.Ingest(rcpt(a, 0))
	f.Ingest(rcpt(b, 0)) // same seq on a different stream is not a duplicate
	f.Ingest(rcpt(a, 0))
	if len(*out) != 2 {
		t.Fatalf("delivered %d, want 2", len(*out))
	}
	if st := f.Stats(); st.ActiveStreams != 2 || st.Duplicates != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFilterLargeJumpClearsWindow(t *testing.T) {
	f, out := collectFilter(Options{WindowSize: 64})
	id := wire.MustStreamID(1, 0)
	f.Ingest(rcpt(id, 0))
	f.Ingest(rcpt(id, 10_000))
	// 10_000 - 63 is inside the new window and unseen → accept.
	f.Ingest(rcpt(id, 10_000-63))
	if len(*out) != 3 {
		t.Fatalf("delivered %d, want 3", len(*out))
	}
	// Re-ingesting an accepted one must be a duplicate (bitmap intact).
	f.Ingest(rcpt(id, 10_000-63))
	if len(*out) != 3 {
		t.Fatal("bitmap lost after large jump")
	}
}

// Property: against a brute-force set-based reference, the filter delivers
// exactly the first copy of each sequence, for any interleaving drawn from
// a window-sized range.
func TestFilterMatchesReferenceProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		filter, out := collectFilter(Options{WindowSize: 4096})
		id := wire.MustStreamID(9, 9)
		seen := map[wire.Seq]bool{}
		wantDelivered := 0
		for _, r := range raw {
			// Constrain to a window-sized range so the reference semantics
			// (set membership) and the windowed filter agree.
			seq := wire.Seq(r % 4096)
			if !seen[seq] {
				seen[seq] = true
				wantDelivered++
			}
			filter.Ingest(rcpt(id, seq))
		}
		return len(*out) == wantDelivered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: delivered messages for a stream are always unique.
//
// Sequences are constrained to half the sequence space: RFC 1982 serial
// arithmetic cannot distinguish a replay whose interleaved forward jumps
// sum to a full 2^16 wrap from a genuinely new message (no windowed
// serial filter can), and unconstrained 16-bit random draws produce such
// full wraps routinely. Within a half-space the serial order is total,
// so uniqueness must hold exactly. Bounded wrap-around behaviour is
// pinned separately by TestFilterSurvivesSequenceWraparound.
func TestFilterNeverDeliversDuplicateProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		filter, out := collectFilter(Options{WindowSize: 128})
		id := wire.MustStreamID(3, 3)
		for _, r := range raw {
			filter.Ingest(rcpt(id, wire.Seq(r%32768)))
		}
		counts := map[wire.Seq]int{}
		for _, d := range *out {
			counts[d.Msg.Seq]++
			if counts[d.Msg.Seq] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFilterAccountingInvariant(t *testing.T) {
	// received == delivered + duplicates + stale, under any input.
	f := func(raw []uint16) bool {
		filter, _ := collectFilter(Options{WindowSize: 64})
		id := wire.MustStreamID(2, 1)
		for _, r := range raw {
			filter.Ingest(rcpt(id, wire.Seq(r)))
		}
		st := filter.Stats()
		return st.Received == st.Delivered+st.Duplicates+st.Stale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReorderReleasesInSequenceOrder(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var out []Delivery
	f := New(func(d Delivery) { out = append(out, d) },
		Options{ReorderWindow: 100 * time.Millisecond, Clock: clock})
	id := wire.MustStreamID(1, 0)

	at := func(seq wire.Seq, d time.Duration) receiver.Reception {
		rc := rcpt(id, seq)
		rc.At = clock.Now().Add(d)
		return rc
	}
	// Arrive out of order: 2, 0, 1.
	f.Ingest(at(2, 0))
	f.Ingest(at(0, 0))
	f.Ingest(at(1, 0))
	if len(out) != 0 {
		t.Fatalf("released before hold expired: %d", len(out))
	}
	clock.Advance(150 * time.Millisecond)
	if len(out) != 3 {
		t.Fatalf("released %d, want 3", len(out))
	}
	for i, d := range out {
		if d.Msg.Seq != wire.Seq(i) {
			t.Fatalf("release order %v at %d, want ascending", d.Msg.Seq, i)
		}
	}
}

func TestReorderBoundsHoldTime(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var out []Delivery
	f := New(func(d Delivery) { out = append(out, d) },
		Options{ReorderWindow: 100 * time.Millisecond, Clock: clock})
	id := wire.MustStreamID(1, 0)
	// A gap that never fills must not block later messages forever.
	f.Ingest(receiver.Reception{Msg: wire.Message{Stream: id, Seq: 0}, At: clock.Now()})
	f.Ingest(receiver.Reception{Msg: wire.Message{Stream: id, Seq: 5}, At: clock.Now()})
	clock.Advance(200 * time.Millisecond)
	if len(out) != 2 {
		t.Fatalf("released %d, want 2 (gap must not block)", len(out))
	}
}

func TestReorderStaggeredArrivals(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var out []Delivery
	f := New(func(d Delivery) { out = append(out, d) },
		Options{ReorderWindow: 50 * time.Millisecond, Clock: clock})
	id := wire.MustStreamID(1, 0)

	f.Ingest(receiver.Reception{Msg: wire.Message{Stream: id, Seq: 1}, At: clock.Now()})
	clock.Advance(20 * time.Millisecond)
	// Seq 0 arrives later but must still release first.
	f.Ingest(receiver.Reception{Msg: wire.Message{Stream: id, Seq: 0}, At: clock.Now()})
	clock.Advance(100 * time.Millisecond)

	if len(out) != 2 || out[0].Msg.Seq != 0 || out[1].Msg.Seq != 1 {
		var seqs []wire.Seq
		for _, d := range out {
			seqs = append(seqs, d.Msg.Seq)
		}
		t.Fatalf("release order %v, want [0 1]", seqs)
	}
}

func TestFlushReleasesPending(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var out []Delivery
	f := New(func(d Delivery) { out = append(out, d) },
		Options{ReorderWindow: time.Hour, Clock: clock})
	id := wire.MustStreamID(1, 0)
	f.Ingest(rcpt(id, 1))
	f.Ingest(rcpt(id, 0))
	f.Flush()
	if len(out) != 2 || out[0].Msg.Seq != 0 {
		t.Fatalf("Flush released %d in wrong order", len(out))
	}
	if f.Stats().Delivered != 2 {
		t.Fatal("Flush not counted as delivered")
	}
}

func TestStreamStats(t *testing.T) {
	f, _ := collectFilter(Options{})
	id := wire.MustStreamID(4, 4)
	if _, ok := f.StreamStats(id); ok {
		t.Fatal("unknown stream should report !ok")
	}
	f.Ingest(rcpt(id, 0))
	f.Ingest(rcpt(id, 0))
	f.Ingest(rcpt(id, 1))
	st, ok := f.StreamStats(id)
	if !ok || st.Delivered != 2 || st.Duplicates != 1 || st.LastSeq != 1 {
		t.Fatalf("StreamStats = %+v ok=%v", st, ok)
	}
	if got := f.Streams(); len(got) != 1 || got[0] != id {
		t.Fatalf("Streams = %v", got)
	}
}

func TestFilterValidation(t *testing.T) {
	t.Run("nil sink", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		New(nil, Options{})
	})
	t.Run("reorder without clock", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		New(func(Delivery) {}, Options{ReorderWindow: time.Second})
	})
}

// TestBorrowedPayloadDetachedOnAccept: a Borrowed reception's payload
// aliases a frame buffer the receiver recycles after Ingest returns. The
// filter must copy the payload of accepted messages before handing them
// on — immediately or into the reorder buffer — so later reuse of the
// frame buffer cannot corrupt delivered data.
func TestBorrowedPayloadDetachedOnAccept(t *testing.T) {
	frame := []byte("payload-one")
	mk := func(seq wire.Seq) receiver.Reception {
		rc := rcpt(wire.MustStreamID(1, 0), seq)
		rc.Msg.Payload = frame
		rc.Borrowed = true
		return rc
	}

	t.Run("immediate", func(t *testing.T) {
		f, out := collectFilter(Options{})
		f.Ingest(mk(0))
		copy(frame, "SCRIBBLED!!") // receiver reuses the buffer
		if got := string((*out)[0].Msg.Payload); got != "payload-one" {
			t.Fatalf("delivered payload = %q, want the detached copy", got)
		}
		copy(frame, "payload-one")
	})

	t.Run("reorder-pending", func(t *testing.T) {
		clock := sim.NewVirtualClock(epoch)
		var out []Delivery
		f := New(func(d Delivery) { out = append(out, d) },
			Options{ReorderWindow: time.Hour, Clock: clock})
		f.Ingest(mk(0))
		copy(frame, "SCRIBBLED!!") // buffer reused while the message is held
		f.Flush()
		if len(out) != 1 || string(out[0].Msg.Payload) != "payload-one" {
			t.Fatalf("flushed payload = %q, want the detached copy", out[0].Msg.Payload)
		}
		copy(frame, "payload-one")
	})

	t.Run("duplicate-not-copied", func(t *testing.T) {
		f, out := collectFilter(Options{})
		f.Ingest(mk(0))
		f.Ingest(mk(0)) // duplicate: dropped, payload never touched
		if len(*out) != 1 {
			t.Fatalf("delivered %d, want 1", len(*out))
		}
		if st := f.Stats(); st.Duplicates != 1 {
			t.Fatalf("duplicates = %d, want 1", st.Duplicates)
		}
	})
}

func TestWindowSizeRounding(t *testing.T) {
	f, out := collectFilter(Options{WindowSize: 65}) // rounds to 128
	id := wire.MustStreamID(1, 0)
	f.Ingest(rcpt(id, 0))
	f.Ingest(rcpt(id, 127))
	f.Ingest(rcpt(id, 1)) // 126 back: inside a 128 window
	if len(*out) != 3 {
		t.Fatalf("delivered %d, want 3 (window should round up to 128)", len(*out))
	}
}

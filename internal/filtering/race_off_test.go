//go:build !race

package filtering

// raceEnabled reports whether the race detector is active. Alloc-count
// tests skip under -race: the race runtime randomly drops sync.Pool
// puts, so pooled scratch paths spuriously allocate there.
const raceEnabled = false

package filtering

import (
	"testing"
	"unsafe"
)

// TestStreamFilterFootprint pins the per-stream filter state size. The
// filter holds one of these for every stream ever heard; 144 bytes is a
// Go allocator size class, so crossing it costs every idle sensor a
// further invisible 16 bytes.
func TestStreamFilterFootprint(t *testing.T) {
	if got := unsafe.Sizeof(streamFilter{}); got > 144 {
		t.Fatalf("streamFilter is %d bytes, budget 144 — repack before growing it", got)
	}
}

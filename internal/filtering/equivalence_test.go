package filtering

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// receptionPlan is a deterministic randomised ingest schedule: streams
// across several sensors, sequences drawn near a moving head (so the
// accept, duplicate, late-recovery and stale paths all fire), every
// message heard by 1–3 overlapping receivers.
func receptionPlan(seed int64, sensors, msgs int) []receiver.Reception {
	rng := rand.New(rand.NewSource(seed))
	heads := make(map[wire.StreamID]int)
	var plan []receiver.Reception
	for i := 0; i < msgs; i++ {
		id := wire.MustStreamID(wire.SensorID(rng.Intn(sensors)+1), wire.StreamIndex(rng.Intn(2)))
		head := heads[id]
		var seq wire.Seq
		switch rng.Intn(4) {
		case 0: // in order
			head++
			seq = wire.Seq(head)
		case 1: // jump ahead, opening a gap
			head += rng.Intn(10) + 2
			seq = wire.Seq(head)
		case 2: // replay something recent (duplicate or late recovery)
			seq = wire.Seq(head - rng.Intn(70))
		default: // far past: stale beyond a 64-window once head has moved
			seq = wire.Seq(head - 64 - rng.Intn(200))
		}
		heads[id] = head
		copies := rng.Intn(3) + 1
		for c := 0; c < copies; c++ {
			plan = append(plan, receiver.Reception{
				Msg:      wire.Message{Stream: id, Seq: seq},
				Receiver: "rx",
				RSSI:     0.5,
				At:       epoch.Add(time.Duration(i) * time.Millisecond),
			})
		}
	}
	return plan
}

// perStream groups the delivered sequence numbers by stream, in sink
// order.
func perStream(out []Delivery) map[wire.StreamID][]wire.Seq {
	m := make(map[wire.StreamID][]wire.Seq)
	for _, d := range out {
		m[d.Msg.Stream] = append(m[d.Msg.Stream], d.Msg.Seq)
	}
	return m
}

// TestShardedMatchesSingleTableProperty pins the sharded filter to the
// exact accept/duplicate/stale decisions of the historical single-table
// path: the same reception schedule in, the same per-stream sink sequence
// out, and identical aggregate accounting.
func TestShardedMatchesSingleTableProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		plan := receptionPlan(seed, 9, 1500)
		run := func(shards int) (map[wire.StreamID][]wire.Seq, Stats) {
			var out []Delivery
			f := New(func(d Delivery) { out = append(out, d) },
				Options{WindowSize: 64, Shards: shards})
			for _, rc := range plan {
				f.Ingest(rc)
			}
			st := f.Stats()
			st.Shards = 0 // the one field allowed to differ
			return perStream(out), st
		}
		refSeqs, refStats := run(1)
		gotSeqs, gotStats := run(8)
		if !reflect.DeepEqual(refSeqs, gotSeqs) {
			t.Fatalf("seed %d: sharded per-stream deliveries diverge from single-table", seed)
		}
		if refStats != gotStats {
			t.Fatalf("seed %d: stats diverge: single-table %+v, sharded %+v", seed, refStats, gotStats)
		}
	}
}

// TestIngestBatchMatchesSerialProperty pins IngestBatch to the exact
// per-message decisions of serial Ingest: the same schedule — dups,
// gaps, stale drops, wrap-around — fed through randomized batch splits
// must produce identical per-stream sink sequences and identical
// aggregate accounting, with and without a BatchSink.
func TestIngestBatchMatchesSerialProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		plan := receptionPlan(seed, 9, 1500)
		serial := func() (map[wire.StreamID][]wire.Seq, Stats) {
			var out []Delivery
			f := New(func(d Delivery) { out = append(out, d) },
				Options{WindowSize: 64, Shards: 8})
			for _, rc := range plan {
				f.Ingest(rc)
			}
			return perStream(out), f.Stats()
		}
		batched := func(useBatchSink bool) (map[wire.StreamID][]wire.Seq, Stats) {
			rng := rand.New(rand.NewSource(seed * 77))
			var out []Delivery
			opts := Options{WindowSize: 64, Shards: 8}
			if useBatchSink {
				opts.BatchSink = func(ds []Delivery) { out = append(out, ds...) }
			}
			f := New(func(d Delivery) { out = append(out, d) }, opts)
			rest := append([]receiver.Reception(nil), plan...)
			for len(rest) > 0 {
				n := rng.Intn(65) + 1 // batch sizes 1..65
				if n > len(rest) {
					n = len(rest)
				}
				f.IngestBatch(rest[:n])
				rest = rest[n:]
			}
			return perStream(out), f.Stats()
		}
		refSeqs, refStats := serial()
		for _, useBatchSink := range []bool{false, true} {
			gotSeqs, gotStats := batched(useBatchSink)
			if !reflect.DeepEqual(refSeqs, gotSeqs) {
				t.Fatalf("seed %d (batchSink=%v): batched per-stream deliveries diverge from serial",
					seed, useBatchSink)
			}
			if refStats != gotStats {
				t.Fatalf("seed %d (batchSink=%v): stats diverge: serial %+v, batched %+v",
					seed, useBatchSink, refStats, gotStats)
			}
		}
	}
}

// TestIngestBatchReorderMatchesSerial runs the batched property with the
// reorder stage on a virtual clock: held messages must release in the
// same per-stream order whether they entered one at a time or in
// batches.
func TestIngestBatchReorderMatchesSerial(t *testing.T) {
	plan := receptionPlan(42, 6, 800)
	run := func(batched bool) map[wire.StreamID][]wire.Seq {
		clock := sim.NewVirtualClock(epoch)
		rng := rand.New(rand.NewSource(7))
		var out []Delivery
		f := New(func(d Delivery) { out = append(out, d) }, Options{
			WindowSize: 64, Shards: 8,
			ReorderWindow: 10 * time.Millisecond, Clock: clock,
		})
		rest := append([]receiver.Reception(nil), plan...)
		for len(rest) > 0 {
			n := 1
			if batched {
				n = rng.Intn(17) + 1
				if n > len(rest) {
					n = len(rest)
				}
				// A batch may only span one virtual instant, mirroring the
				// core's same-instant flush boundary.
				for k := 1; k < n; k++ {
					if !rest[k].At.Equal(rest[0].At) {
						n = k
						break
					}
				}
			}
			clock.RunUntil(rest[0].At)
			if batched {
				f.IngestBatch(rest[:n])
			} else {
				f.Ingest(rest[0])
			}
			rest = rest[n:]
		}
		clock.Advance(time.Second)
		f.Flush()
		return perStream(out)
	}
	ref := run(false)
	got := run(true)
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("batched reorder release order diverges from serial")
	}
}

// TestIngestBatchDetachesBorrowed pins the borrowed-payload contract on
// the batched path: accepted receptions get an owned copy, rejected
// duplicates never touch the payload.
func TestIngestBatchDetachesBorrowed(t *testing.T) {
	var out []Delivery
	f := New(func(d Delivery) { out = append(out, d) }, Options{Shards: 4})
	frame := []byte{1, 2, 3}
	id := wire.MustStreamID(1, 0)
	batch := []receiver.Reception{
		{Msg: wire.Message{Stream: id, Seq: 1, Payload: frame}, Borrowed: true, At: epoch},
		{Msg: wire.Message{Stream: id, Seq: 1, Payload: frame}, Borrowed: true, At: epoch},
	}
	f.IngestBatch(batch)
	if len(out) != 1 {
		t.Fatalf("delivered %d, want 1", len(out))
	}
	if &out[0].Msg.Payload[0] == &frame[0] {
		t.Fatalf("accepted borrowed payload still aliases the frame buffer")
	}
	frame[0] = 99
	if out[0].Msg.Payload[0] != 1 {
		t.Fatalf("detached payload mutated through the frame buffer")
	}
}

// TestIngestBatchZeroAlloc pins the batched ingest scratch (grouping
// indices, per-shard run buffer) at 0 allocs/op at steady state.
func TestIngestBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime drops sync.Pool puts; alloc counts are meaningless")
	}
	f := New(func(Delivery) {}, Options{Shards: 8})
	const n = 64
	batch := make([]receiver.Reception, n)
	seq := wire.Seq(0)
	fill := func() {
		for i := range batch {
			seq++
			batch[i] = receiver.Reception{
				Msg: wire.Message{Stream: wire.MustStreamID(wire.SensorID(i%8+1), 0), Seq: seq},
				At:  epoch,
			}
		}
	}
	fill()
	f.IngestBatch(batch) // warm pools and stream state
	allocs := testing.AllocsPerRun(200, func() {
		fill()
		f.IngestBatch(batch)
	})
	if allocs != 0 {
		t.Fatalf("IngestBatch allocates %.1f/op, want 0", allocs)
	}
}

// TestShardedReorderMatchesSingleTable runs the same property with the
// reorder stage enabled on a virtual clock: bounded-hold release order per
// stream must be identical regardless of sharding.
func TestShardedReorderMatchesSingleTable(t *testing.T) {
	plan := receptionPlan(42, 6, 800)
	run := func(shards int) map[wire.StreamID][]wire.Seq {
		clock := sim.NewVirtualClock(epoch)
		var out []Delivery
		f := New(func(d Delivery) { out = append(out, d) }, Options{
			WindowSize: 64, Shards: shards,
			ReorderWindow: 10 * time.Millisecond, Clock: clock,
		})
		for _, rc := range plan {
			clock.RunUntil(rc.At)
			f.Ingest(rc)
		}
		clock.Advance(time.Second)
		f.Flush()
		return perStream(out)
	}
	ref := run(1)
	got := run(8)
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("sharded reorder release order diverges from single-table")
	}
}

package filtering

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// receptionPlan is a deterministic randomised ingest schedule: streams
// across several sensors, sequences drawn near a moving head (so the
// accept, duplicate, late-recovery and stale paths all fire), every
// message heard by 1–3 overlapping receivers.
func receptionPlan(seed int64, sensors, msgs int) []receiver.Reception {
	rng := rand.New(rand.NewSource(seed))
	heads := make(map[wire.StreamID]int)
	var plan []receiver.Reception
	for i := 0; i < msgs; i++ {
		id := wire.MustStreamID(wire.SensorID(rng.Intn(sensors)+1), wire.StreamIndex(rng.Intn(2)))
		head := heads[id]
		var seq wire.Seq
		switch rng.Intn(4) {
		case 0: // in order
			head++
			seq = wire.Seq(head)
		case 1: // jump ahead, opening a gap
			head += rng.Intn(10) + 2
			seq = wire.Seq(head)
		case 2: // replay something recent (duplicate or late recovery)
			seq = wire.Seq(head - rng.Intn(70))
		default: // far past: stale beyond a 64-window once head has moved
			seq = wire.Seq(head - 64 - rng.Intn(200))
		}
		heads[id] = head
		copies := rng.Intn(3) + 1
		for c := 0; c < copies; c++ {
			plan = append(plan, receiver.Reception{
				Msg:      wire.Message{Stream: id, Seq: seq},
				Receiver: "rx",
				RSSI:     0.5,
				At:       epoch.Add(time.Duration(i) * time.Millisecond),
			})
		}
	}
	return plan
}

// perStream groups the delivered sequence numbers by stream, in sink
// order.
func perStream(out []Delivery) map[wire.StreamID][]wire.Seq {
	m := make(map[wire.StreamID][]wire.Seq)
	for _, d := range out {
		m[d.Msg.Stream] = append(m[d.Msg.Stream], d.Msg.Seq)
	}
	return m
}

// TestShardedMatchesSingleTableProperty pins the sharded filter to the
// exact accept/duplicate/stale decisions of the historical single-table
// path: the same reception schedule in, the same per-stream sink sequence
// out, and identical aggregate accounting.
func TestShardedMatchesSingleTableProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		plan := receptionPlan(seed, 9, 1500)
		run := func(shards int) (map[wire.StreamID][]wire.Seq, Stats) {
			var out []Delivery
			f := New(func(d Delivery) { out = append(out, d) },
				Options{WindowSize: 64, Shards: shards})
			for _, rc := range plan {
				f.Ingest(rc)
			}
			st := f.Stats()
			st.Shards = 0 // the one field allowed to differ
			return perStream(out), st
		}
		refSeqs, refStats := run(1)
		gotSeqs, gotStats := run(8)
		if !reflect.DeepEqual(refSeqs, gotSeqs) {
			t.Fatalf("seed %d: sharded per-stream deliveries diverge from single-table", seed)
		}
		if refStats != gotStats {
			t.Fatalf("seed %d: stats diverge: single-table %+v, sharded %+v", seed, refStats, gotStats)
		}
	}
}

// TestShardedReorderMatchesSingleTable runs the same property with the
// reorder stage enabled on a virtual clock: bounded-hold release order per
// stream must be identical regardless of sharding.
func TestShardedReorderMatchesSingleTable(t *testing.T) {
	plan := receptionPlan(42, 6, 800)
	run := func(shards int) map[wire.StreamID][]wire.Seq {
		clock := sim.NewVirtualClock(epoch)
		var out []Delivery
		f := New(func(d Delivery) { out = append(out, d) }, Options{
			WindowSize: 64, Shards: shards,
			ReorderWindow: 10 * time.Millisecond, Clock: clock,
		})
		for _, rc := range plan {
			clock.RunUntil(rc.At)
			f.Ingest(rc)
		}
		clock.Advance(time.Second)
		f.Flush()
		return perStream(out)
	}
	ref := run(1)
	got := run(8)
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("sharded reorder release order diverges from single-table")
	}
}

package filtering

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// TestShardIndexInRange pins the multiply-shift hash to its contract:
// every sensor id maps into [0, n) for every shard count.
func TestShardIndexInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 16, 17, 100} {
		for _, id := range []wire.SensorID{0, 1, 2, 255, 1 << 20, wire.MaxSensorID} {
			got := id.Shard(n)
			if got < 0 || got >= n {
				t.Fatalf("SensorID(%d).Shard(%d) = %d, out of range", id, n, got)
			}
		}
	}
}

// TestShardSpread guards against a degenerate hash: 1024 sequential
// sensor ids across 16 shards must not pile into a few shards.
func TestShardSpread(t *testing.T) {
	const n = 16
	var hist [n]int
	for id := wire.SensorID(0); id < 1024; id++ {
		hist[id.Shard(n)]++
	}
	for i, c := range hist {
		if c == 0 {
			t.Fatalf("shard %d got no sensors out of 1024", i)
		}
		if c > 1024/n*3 {
			t.Fatalf("shard %d got %d of 1024 sensors (degenerate spread: %v)", i, c, hist)
		}
	}
}

// TestSingleShardConfiguration runs the core expectations at Shards: 1
// (the historical single-table configuration) and checks the Stats
// surface reports the partition count.
func TestSingleShardConfiguration(t *testing.T) {
	var sunk int
	f := New(func(Delivery) { sunk++ }, Options{Shards: 1})
	for sensor := wire.SensorID(1); sensor <= 8; sensor++ {
		id := wire.MustStreamID(sensor, 0)
		f.Ingest(rcpt(id, 0))
		f.Ingest(rcpt(id, 0)) // duplicate
		f.Ingest(rcpt(id, 1))
	}
	st := f.Stats()
	if st.Shards != 1 {
		t.Fatalf("Shards = %d, want 1", st.Shards)
	}
	if sunk != 16 || st.Delivered != 16 || st.Duplicates != 8 || st.ActiveStreams != 8 {
		t.Fatalf("sunk=%d stats=%+v", sunk, st)
	}
}

// TestDefaultShardCount: the zero Options value selects DefaultShards.
func TestDefaultShardCount(t *testing.T) {
	f := New(func(Delivery) {}, Options{})
	if st := f.Stats(); st.Shards != DefaultShards {
		t.Fatalf("Shards = %d, want %d", st.Shards, DefaultShards)
	}
}

// TestConcurrentIngestFlushStats is the -race stress test, mirroring
// dispatch's TestConcurrentSubscribeUnsubscribePublish: ingesters hammer
// streams across every shard — two goroutines per sensor replaying the
// same sequences, so the duplicate path is exercised concurrently — while
// other goroutines call Flush, Stats, StreamStats and Streams against the
// same filter, with reordering enabled on a concurrently advanced virtual
// clock. Invariants: no data race, the sink only ever sees unique
// messages per stream, and after quiescing the counter identity
// received == delivered + duplicates + stale holds.
func TestConcurrentIngestFlushStats(t *testing.T) {
	const (
		sensors = 32
		msgsPer = 400
	)
	clock := sim.NewVirtualClock(epoch)
	var sunk atomic.Int64
	f := New(func(Delivery) { sunk.Add(1) },
		Options{Shards: 8, ReorderWindow: time.Millisecond, Clock: clock})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Two ingesters per sensor replay the same sequence range: overlap
	// duplication by construction.
	for g := 0; g < 2*sensors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := wire.MustStreamID(wire.SensorID(g%sensors+1), 0)
			for i := 0; i < msgsPer; i++ {
				rc := rcpt(id, wire.Seq(i))
				rc.At = clock.Now()
				f.Ingest(rc)
			}
		}(g)
	}
	// Concurrent control plane: time advancing, flushing, reading.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clock.Advance(time.Millisecond)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				if i%3 == 0 {
					f.Flush()
				}
				_ = f.Stats()
				_, _ = f.StreamStats(wire.MustStreamID(1, 0))
				_ = f.Streams()
			}
		}
	}()

	// Drive until every unique message has been released.
	deadline := time.After(30 * time.Second)
	for sunk.Load() < sensors*msgsPer {
		select {
		case <-deadline:
			t.Fatalf("timed out: sunk %d of %d", sunk.Load(), sensors*msgsPer)
		default:
		}
		f.Flush()
		clock.Advance(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	f.Flush()
	st := f.Stats()
	if st.Received != 2*sensors*msgsPer {
		t.Fatalf("Received = %d, want %d", st.Received, 2*sensors*msgsPer)
	}
	if st.Received != st.Delivered+st.Duplicates+st.Stale {
		t.Fatalf("accounting identity broken: %+v", st)
	}
	if got := sunk.Load(); got != st.Delivered {
		t.Fatalf("sink saw %d, Delivered = %d", got, st.Delivered)
	}
	if st.Delivered != sensors*msgsPer {
		t.Fatalf("Delivered = %d, want %d unique", st.Delivered, sensors*msgsPer)
	}
	if st.ActiveStreams != sensors {
		t.Fatalf("ActiveStreams = %d, want %d", st.ActiveStreams, sensors)
	}
}

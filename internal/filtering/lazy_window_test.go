package filtering

import (
	"reflect"
	"testing"

	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// TestLazyWindowMatchesEagerProperty pins the lazily-materialised dup
// window to the exact decisions of the historical eager bitmap: the same
// randomised schedule — in-order runs, gaps, far jumps, duplicates, late
// recoveries, stale drops, wrap-around — must produce identical
// per-stream sink sequences and identical aggregate accounting whether
// every stream allocates its bitmap up front (forceEagerWindows) or only
// on its first gap/out-of-order arrival.
func TestLazyWindowMatchesEagerProperty(t *testing.T) {
	for _, windowSize := range []int{64, 1024} {
		for seed := int64(1); seed <= 5; seed++ {
			plan := receptionPlan(seed, 9, 1500)
			run := func(eager bool) (map[wire.StreamID][]wire.Seq, Stats) {
				forceEagerWindows = eager
				defer func() { forceEagerWindows = false }()
				var out []Delivery
				f := New(func(d Delivery) { out = append(out, d) },
					Options{WindowSize: windowSize, Shards: 8})
				for _, rc := range plan {
					f.Ingest(rc)
				}
				return perStream(out), f.Stats()
			}
			eagerSeqs, eagerStats := run(true)
			lazySeqs, lazyStats := run(false)
			if !reflect.DeepEqual(eagerSeqs, lazySeqs) {
				t.Fatalf("window=%d seed %d: lazy per-stream deliveries diverge from eager", windowSize, seed)
			}
			if eagerStats != lazyStats {
				t.Fatalf("window=%d seed %d: stats diverge: eager %+v, lazy %+v",
					windowSize, seed, eagerStats, lazyStats)
			}
		}
	}
}

// TestLazyWindowStaysNilInOrder pins the footprint contract itself: an
// in-order stream never allocates a bitmap, a far jump (≥ window) keeps
// it lazy, and the first in-window gap or late recovery materialises it
// with the contiguous range set.
func TestLazyWindowStaysNilInOrder(t *testing.T) {
	f := New(func(Delivery) {}, Options{WindowSize: 64, Shards: 1})
	id := wire.MustStreamID(1, 0)
	ingest := func(seq wire.Seq) {
		f.Ingest(receiver.Reception{Msg: wire.Message{Stream: id, Seq: seq}})
	}
	sf := func() *streamFilter {
		sh := f.shardFor(id)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		return sh.streams[id]
	}

	for seq := wire.Seq(1); seq <= 200; seq++ {
		ingest(seq)
	}
	if w := sf().window; w != nil {
		t.Fatalf("in-order stream materialised a %d-word window", len(w))
	}
	if got := sf().span; got != 64 {
		t.Fatalf("span = %d, want clamped 64", got)
	}

	ingest(200 + 64) // far jump, flushes the whole window
	if sf().window != nil {
		t.Fatalf("far jump materialised the window")
	}
	if got := sf().span; got != 1 {
		t.Fatalf("span after far jump = %d, want 1", got)
	}

	ingest(200 + 64 + 2) // in-window gap: must materialise
	if sf().window == nil {
		t.Fatalf("in-window gap did not materialise the window")
	}

	// A second stream materialises on late recovery instead.
	id2 := wire.MustStreamID(2, 0)
	for seq := wire.Seq(10); seq <= 20; seq++ {
		f.Ingest(receiver.Reception{Msg: wire.Message{Stream: id2, Seq: seq}})
	}
	f.Ingest(receiver.Reception{Msg: wire.Message{Stream: id2, Seq: 5}})
	sh := f.shardFor(id2)
	sh.mu.Lock()
	sf2 := sh.streams[id2]
	w := sf2.window
	sh.mu.Unlock()
	if w == nil {
		t.Fatalf("late recovery did not materialise the window")
	}
	st := f.Stats()
	if st.GapsRecovered != 1 {
		t.Fatalf("GapsRecovered = %d, want 1", st.GapsRecovered)
	}
}

// TestFilterForget pins Forget: state is dropped (including the shard's
// single-entry cache) and a resumed stream re-initiates cleanly.
func TestFilterForget(t *testing.T) {
	var out []Delivery
	f := New(func(d Delivery) { out = append(out, d) }, Options{Shards: 4})
	id := wire.MustStreamID(7, 0)
	for seq := wire.Seq(1); seq <= 5; seq++ {
		f.Ingest(receiver.Reception{Msg: wire.Message{Stream: id, Seq: seq}})
	}
	if !f.Forget(id) {
		t.Fatalf("Forget found no state")
	}
	if f.Forget(id) {
		t.Fatalf("second Forget claims state existed")
	}
	if _, ok := f.StreamStats(id); ok {
		t.Fatalf("StreamStats still finds forgotten stream")
	}
	// Resuming at an "old" sequence must be accepted: the stream
	// re-initiates rather than consulting forgotten window state.
	f.Ingest(receiver.Reception{Msg: wire.Message{Stream: id, Seq: 3}})
	if len(out) != 6 {
		t.Fatalf("resumed stream delivered %d, want 6", len(out))
	}
}

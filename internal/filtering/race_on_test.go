//go:build race

package filtering

// raceEnabled: see race_off_test.go.
const raceEnabled = true

// Package filtering implements the Filtering Service of §4.2: “The
// Filtering Service reconstructs the data streams by eliminating duplicate
// data messages. Filtered data is then forwarded to the Dispatching
// Service for delivery to subscribed consumer processes.”
//
// Duplicates arise by construction from overlapping receiver zones; the
// filter removes them with per-stream sequence windows using RFC 1982
// serial arithmetic, so streams survive 16-bit sequence wrap-around. An
// optional reorder stage releases messages in sequence order after a
// bounded hold, using the message “sequence or timing information … to
// allow messages to be correctly ordered” (§4.3).
package filtering

import (
	"sync"
	"time"

	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Delivery is one reconstructed (unique) stream message on its way to the
// Dispatching Service.
type Delivery struct {
	Msg      wire.Message
	At       time.Time // reception time of the accepted copy
	Receiver string    // receiver that heard the accepted copy
	RSSI     float64
}

// DefaultWindowSize is the default per-stream duplicate-detection window,
// in sequence numbers.
const DefaultWindowSize = 1024

// Options configures a Filter. The zero value uses DefaultWindowSize and
// no reordering.
type Options struct {
	// WindowSize is the per-stream duplicate window in sequence numbers;
	// it is rounded up to a multiple of 64. 0 means DefaultWindowSize.
	WindowSize int
	// ReorderWindow, when positive, holds each message for at most this
	// long and releases messages in sequence order. Clock must be set.
	ReorderWindow time.Duration
	// Clock drives reorder timers; required iff ReorderWindow > 0.
	Clock sim.Clock
}

// Stats is an aggregate snapshot of filter activity.
type Stats struct {
	Received      int64 // receptions ingested
	Delivered     int64 // unique messages forwarded
	Duplicates    int64 // copies suppressed
	Stale         int64 // older than the window; dropped
	Gaps          int64 // sequence numbers skipped (provisionally lost)
	GapsRecovered int64 // skipped numbers later filled by a late copy
	ActiveStreams int   // streams with filter state
}

// StreamStats is a per-stream snapshot.
type StreamStats struct {
	Stream     wire.StreamID
	Delivered  int64
	Duplicates int64
	LastSeq    wire.Seq
	FirstSeen  time.Time
	LastSeen   time.Time
}

// Filter is the Filtering Service.
type Filter struct {
	opts Options
	sink func(Delivery)

	mu      sync.Mutex
	streams map[wire.StreamID]*streamFilter

	received   metrics.Counter
	delivered  metrics.Counter
	duplicates metrics.Counter
	stale      metrics.Counter
	gaps       metrics.Counter
	recovered  metrics.Counter
}

// New creates a Filter forwarding unique messages to sink. New panics on a
// nil sink, or when ReorderWindow is set without a Clock (programming
// errors).
func New(sink func(Delivery), opts Options) *Filter {
	if sink == nil {
		panic("filtering: nil sink")
	}
	if opts.WindowSize <= 0 {
		opts.WindowSize = DefaultWindowSize
	}
	opts.WindowSize = (opts.WindowSize + 63) &^ 63
	if opts.ReorderWindow > 0 && opts.Clock == nil {
		panic("filtering: ReorderWindow requires a Clock")
	}
	return &Filter{
		opts:    opts,
		sink:    sink,
		streams: make(map[wire.StreamID]*streamFilter),
	}
}

type pendingEntry struct {
	d       Delivery
	release time.Time
}

type streamFilter struct {
	f *Filter

	base      wire.Seq // highest sequence seen, in serial order
	window    []uint64 // bit i of the conceptual bitmap = (base - i) seen
	initiated bool

	delivered  int64
	duplicates int64
	firstSeen  time.Time
	lastSeen   time.Time

	// Reorder state (used only when ReorderWindow > 0): pending entries
	// sorted ascending by sequence, released front-first once held long
	// enough.
	pending []pendingEntry
	timer   sim.Timer
}

// Ingest screens one reception. Unique messages reach the sink — either
// immediately (no reordering) or in sequence order after a bounded hold.
func (f *Filter) Ingest(rc receiver.Reception) {
	f.received.Inc()
	f.mu.Lock()
	sf, ok := f.streams[rc.Msg.Stream]
	if !ok {
		sf = &streamFilter{
			f:         f,
			window:    make([]uint64, f.opts.WindowSize/64),
			firstSeen: rc.At,
		}
		f.streams[rc.Msg.Stream] = sf
	}
	sf.lastSeen = rc.At

	accepted := sf.accept(rc.Msg.Seq)
	if !accepted {
		f.mu.Unlock()
		return
	}
	sf.delivered++
	d := Delivery{Msg: rc.Msg, At: rc.At, Receiver: rc.Receiver, RSSI: rc.RSSI}

	if f.opts.ReorderWindow <= 0 {
		f.mu.Unlock()
		f.delivered.Inc()
		f.sink(d)
		return
	}
	sf.enqueueLocked(d, rc.At.Add(f.opts.ReorderWindow))
	f.mu.Unlock()
}

// accept runs the duplicate window; it reports whether seq is new. Called
// with f.mu held.
func (sf *streamFilter) accept(seq wire.Seq) bool {
	size := len(sf.window) * 64
	if !sf.initiated {
		sf.initiated = true
		sf.base = seq
		sf.window[0] = 1 // bit 0: base itself
		return true
	}
	d := sf.base.Distance(seq)
	switch {
	case d > 0:
		// New highest sequence: slide the window forward by d.
		if d-1 > 0 {
			sf.f.gaps.Add(int64(d - 1))
		}
		sf.shift(d)
		sf.base = seq
		sf.window[0] |= 1
		return true
	case d == 0:
		sf.duplicates++
		sf.f.duplicates.Inc()
		return false
	default: // d < 0: an older sequence
		back := -d
		if back >= size {
			sf.f.stale.Inc()
			return false
		}
		word, bit := back/64, uint(back%64)
		if sf.window[word]&(1<<bit) != 0 {
			sf.duplicates++
			sf.f.duplicates.Inc()
			return false
		}
		sf.window[word] |= 1 << bit
		sf.f.recovered.Inc()
		return true
	}
}

// shift slides the bitmap so that bit i becomes bit i+d (older), dropping
// bits that fall off the end. Called with f.mu held.
func (sf *streamFilter) shift(d int) {
	size := len(sf.window) * 64
	if d >= size {
		for i := range sf.window {
			sf.window[i] = 0
		}
		return
	}
	words, bits := d/64, uint(d%64)
	n := len(sf.window)
	if words > 0 {
		copy(sf.window[words:], sf.window[:n-words])
		for i := 0; i < words; i++ {
			sf.window[i] = 0
		}
	}
	if bits > 0 {
		for i := n - 1; i > 0; i-- {
			sf.window[i] = sf.window[i]<<bits | sf.window[i-1]>>(64-bits)
		}
		sf.window[0] <<= bits
	}
}

// enqueueLocked inserts d into the stream's pending list sorted by
// sequence and (re)arms the release timer.
func (sf *streamFilter) enqueueLocked(d Delivery, release time.Time) {
	// Insert sorted by serial sequence order.
	at := len(sf.pending)
	for i, p := range sf.pending {
		if d.Msg.Seq.Less(p.d.Msg.Seq) {
			at = i
			break
		}
	}
	sf.pending = append(sf.pending, pendingEntry{})
	copy(sf.pending[at+1:], sf.pending[at:])
	sf.pending[at] = pendingEntry{d: d, release: release}
	sf.armTimerLocked()
}

func (sf *streamFilter) armTimerLocked() {
	if len(sf.pending) == 0 {
		return
	}
	if sf.timer != nil {
		sf.timer.Stop()
	}
	clock := sf.f.opts.Clock
	delay := sf.pending[0].release.Sub(clock.Now())
	sf.timer = clock.AfterFunc(delay, sf.release)
}

// release forwards every front entry whose hold has expired, preserving
// sequence order (a not-yet-expired front entry blocks later ones; its
// expiry bounds the extra wait).
func (sf *streamFilter) release() {
	f := sf.f
	var out []Delivery
	f.mu.Lock()
	now := f.opts.Clock.Now()
	for len(sf.pending) > 0 && !sf.pending[0].release.After(now) {
		out = append(out, sf.pending[0].d)
		sf.pending = sf.pending[1:]
	}
	sf.timer = nil
	sf.armTimerLocked()
	f.mu.Unlock()
	for _, d := range out {
		f.delivered.Inc()
		f.sink(d)
	}
}

// Flush immediately releases all held messages (in per-stream sequence
// order). Call when shutting down a deployment with reordering enabled.
func (f *Filter) Flush() {
	var out []Delivery
	f.mu.Lock()
	for _, sf := range f.streams {
		for _, p := range sf.pending {
			out = append(out, p.d)
		}
		sf.pending = nil
		if sf.timer != nil {
			sf.timer.Stop()
			sf.timer = nil
		}
	}
	f.mu.Unlock()
	for _, d := range out {
		f.delivered.Inc()
		f.sink(d)
	}
}

// Stats returns an aggregate snapshot.
func (f *Filter) Stats() Stats {
	f.mu.Lock()
	active := len(f.streams)
	f.mu.Unlock()
	return Stats{
		Received:      f.received.Value(),
		Delivered:     f.delivered.Value(),
		Duplicates:    f.duplicates.Value(),
		Stale:         f.stale.Value(),
		Gaps:          f.gaps.Value(),
		GapsRecovered: f.recovered.Value(),
		ActiveStreams: active,
	}
}

// StreamStats returns the per-stream snapshot for id; ok is false when the
// filter has never seen the stream.
func (f *Filter) StreamStats(id wire.StreamID) (StreamStats, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	sf, ok := f.streams[id]
	if !ok {
		return StreamStats{}, false
	}
	return StreamStats{
		Stream:     id,
		Delivered:  sf.delivered,
		Duplicates: sf.duplicates,
		LastSeq:    sf.base,
		FirstSeen:  sf.firstSeen,
		LastSeen:   sf.lastSeen,
	}, true
}

// Streams lists the ids of all streams with filter state.
func (f *Filter) Streams() []wire.StreamID {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]wire.StreamID, 0, len(f.streams))
	for id := range f.streams {
		out = append(out, id)
	}
	return out
}

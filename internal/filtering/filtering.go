// Package filtering implements the Filtering Service of §4.2: “The
// Filtering Service reconstructs the data streams by eliminating duplicate
// data messages. Filtered data is then forwarded to the Dispatching
// Service for delivery to subscribed consumer processes.”
//
// Duplicates arise by construction from overlapping receiver zones; the
// filter removes them with per-stream sequence windows using RFC 1982
// serial arithmetic, so streams survive 16-bit sequence wrap-around. An
// optional reorder stage releases messages in sequence order after a
// bounded hold, using the message “sequence or timing information … to
// allow messages to be correctly ordered” (§4.3).
//
// # Sharding
//
// Every reception funnels through the filter before it can reach the
// Dispatching Service, so the per-stream duplicate/reorder state is the
// ingest-side scalability choke point. It is partitioned into N shards
// (Options.Shards) keyed by the sensor component of the StreamID — the
// same key the dispatcher shards on — with shard-local mutexes, counters
// and reorder timers, so receptions on streams of different sensors never
// contend. The hot path is allocation-free at steady state: stream state
// is found through a shard-local single-entry cache before the map,
// counters are plain ints under the shard mutex, and reorder scratch
// storage is pooled.
//
// Receivers may hand the filter receptions whose payload aliases a leased
// frame buffer (Reception.Borrowed); the filter detaches (copies) the
// payload only for the receptions it accepts, so duplicate and stale
// copies — the common case under overlapping receiver zones — are screened
// out without the payload ever being copied.
package filtering

import (
	"time"

	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Delivery is one reconstructed (unique) stream message on its way to the
// Dispatching Service.
type Delivery struct {
	Msg      wire.Message
	At       time.Time // reception time of the accepted copy
	Receiver string    // receiver that heard the accepted copy
	RSSI     float64
	// StoreSeq is the Stream Store's 64-bit extended sequence assigned
	// when the delivery was retained (the 16-bit wire Seq wraps; the
	// store unwraps it monotonically). 0 means the delivery bypassed the
	// store. The filter never sets it; the core deployment tees accepted
	// deliveries into the store before dispatch and stamps it there, so
	// consumers, the Orphanage and the replay machinery all address
	// retained history with the same monotone key.
	StoreSeq uint64
}

// DefaultWindowSize is the default per-stream duplicate-detection window,
// in sequence numbers.
const DefaultWindowSize = 1024

// DefaultShards partitions the filter state unless Options.Shards says
// otherwise. Matches the dispatcher's default so a stream contends on at
// most one ingest lock and one dispatch lock end to end.
const DefaultShards = 16

// Options configures a Filter. The zero value uses DefaultWindowSize,
// DefaultShards and no reordering.
type Options struct {
	// WindowSize is the per-stream duplicate window in sequence numbers;
	// it is rounded up to a power of two (minimum 64, maximum 65536, the
	// sequence space) so the circular bitmap indexes with a mask. 0 means
	// DefaultWindowSize.
	WindowSize int
	// Shards partitions the per-stream filter state; <= 0 selects
	// DefaultShards. 1 restores the historical single-table behaviour.
	Shards int
	// ReorderWindow, when positive, holds each message for at most this
	// long and releases messages in sequence order. Clock must be set.
	ReorderWindow time.Duration
	// Clock drives reorder timers; required iff ReorderWindow > 0.
	Clock sim.Clock
	// BatchSink, when set, receives each same-shard run of accepted
	// deliveries from IngestBatch as one call instead of len(run) sink
	// calls, so downstream stages can amortize their own per-message
	// costs (store append, dispatch resolution). The slice is scratch:
	// it is only valid during the call and is reused afterwards. Ingest
	// and the reorder/Flush paths always use the per-message sink.
	BatchSink func([]Delivery)
}

// Stats is an aggregate snapshot of filter activity.
type Stats struct {
	Received      int64 // receptions ingested
	Delivered     int64 // unique messages forwarded
	Duplicates    int64 // copies suppressed
	Stale         int64 // older than the window; dropped
	Gaps          int64 // sequence numbers skipped (provisionally lost)
	GapsRecovered int64 // skipped numbers later filled by a late copy
	ActiveStreams int   // streams with filter state
	Shards        int   // state partitions
}

// StreamStats is a per-stream snapshot.
type StreamStats struct {
	Stream     wire.StreamID
	Delivered  int64
	Duplicates int64
	LastSeq    wire.Seq
	FirstSeen  time.Time
	LastSeen   time.Time
}

// Filter is the Filtering Service.
type Filter struct {
	opts   Options
	sink   func(Delivery)
	shards []*shard
}

// New creates a Filter forwarding unique messages to sink. New panics on a
// nil sink, or when ReorderWindow is set without a Clock (programming
// errors).
func New(sink func(Delivery), opts Options) *Filter {
	if sink == nil {
		panic("filtering: nil sink")
	}
	if opts.WindowSize <= 0 {
		opts.WindowSize = DefaultWindowSize
	}
	opts.WindowSize = ceilPow2(opts.WindowSize)
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.ReorderWindow > 0 && opts.Clock == nil {
		panic("filtering: ReorderWindow requires a Clock")
	}
	f := &Filter{opts: opts, sink: sink}
	f.shards = newShards(f, opts.Shards)
	return f
}

// ceilPow2 rounds n up to a power of two in [64, 65536]. The upper bound
// is the 16-bit sequence space: a window that large can never declare a
// message stale, only duplicate.
func ceilPow2(n int) int {
	p := 64
	for p < n && p < wire.SeqCount {
		p <<= 1
	}
	return p
}

type pendingEntry struct {
	d       Delivery
	release time.Time
}

// streamFilter is one stream's duplicate/reorder state. Field order is
// deliberate: pointers and 8-byte fields first, then the time stamps,
// then the small scalars, so the struct packs into 144 bytes (a
// footprint test pins the ceiling) — at a million mostly-idle streams
// the padding of a careless layout alone costs tens of megabytes.
type streamFilter struct {
	sh *shard

	// window is a circular seen-bitmap over the last len(window)*64
	// sequence numbers: the bit for sequence s lives at position
	// s mod size (size is a power of two dividing the 16-bit sequence
	// space, so the position is stable across wrap-around). Advancing
	// the window by one — the in-order hot path — sets a single bit
	// instead of shifting the whole bitmap.
	//
	// Allocation is lazy: while every sequence has arrived in order the
	// seen set is the contiguous range [base-span+1, base] and window
	// stays nil — an idle in-order stream costs no bitmap at all. The
	// first gap or out-of-order arrival materialises the bitmap the
	// eager code would have had (exactly the span range set) and the
	// stream runs the bitmap path from then on.
	window []uint64

	// Reorder state (used only when ReorderWindow > 0): pending entries
	// sorted ascending by sequence, released front-first once held long
	// enough. The backing array is retained across pops, so a warmed-up
	// stream reorders without allocating (Flush releases it). releasing
	// serialises timer fires per stream: a second fire while one is
	// mid-sink would otherwise deliver later sequences before earlier
	// ones on a real clock (AfterFunc callbacks run on independent
	// goroutines).
	pending []pendingEntry
	timer   sim.Timer

	delivered  int64
	duplicates int64
	firstSeen  time.Time
	lastSeen   time.Time

	// span is the length of the contiguous seen range ending at base,
	// clamped to the window size; meaningful only while window is nil.
	span      int32
	base      wire.Seq // highest sequence seen, in serial order
	initiated bool
	releasing bool
}

// Ingest screens one reception. Unique messages reach the sink — either
// immediately (no reordering) or in sequence order after a bounded hold.
// Receptions marked Borrowed have their payload detached (copied) iff
// accepted; rejected copies never touch the payload.
func (f *Filter) Ingest(rc receiver.Reception) {
	sh := f.shardFor(rc.Msg.Stream)
	sh.mu.Lock()
	d, forward := sh.ingestLocked(&rc)
	sh.mu.Unlock()
	if forward {
		f.sink(d)
	}
}

// ingestLocked runs the per-message screen — dup window, payload
// detach, reorder hold — for one reception. It returns the accepted
// Delivery and forward=true when the message must reach the sink now;
// rejected and reorder-held messages return forward=false. Both Ingest
// and IngestBatch funnel through here, so batching cannot drift from
// the serial decisions. Caller holds sh.mu.
func (sh *shard) ingestLocked(rc *receiver.Reception) (d Delivery, forward bool) {
	f := sh.f
	sh.received++
	sf := sh.last
	if sf == nil || sh.lastID != rc.Msg.Stream {
		sf = sh.lookupSlowLocked(rc.Msg.Stream, rc.At)
	}
	sf.lastSeen = rc.At

	if !sf.accept(rc.Msg.Seq) {
		return Delivery{}, false
	}
	sf.delivered++
	msg := rc.Msg
	if rc.Borrowed && len(msg.Payload) > 0 {
		owned := make([]byte, len(msg.Payload))
		copy(owned, msg.Payload)
		msg.Payload = owned
	}
	d = Delivery{Msg: msg, At: rc.At, Receiver: rc.Receiver, RSSI: rc.RSSI}

	if f.opts.ReorderWindow > 0 {
		sf.enqueueLocked(d, rc.At.Add(f.opts.ReorderWindow))
		return Delivery{}, false
	}
	sh.delivered++
	return d, true
}

// IngestBatch screens a run of receptions, grouping the batch by the
// stream's home shard so each shard's mutex is taken exactly once per
// batch instead of once per message. Per-message decisions — duplicate
// window, stale drop, gap accounting, reorder hold, payload detach —
// are byte-identical to len(rcs) serial Ingest calls (both paths run
// ingestLocked). Receptions of the same stream keep their relative
// order; accepted messages of *different* shards may reach the sink in
// shard-grouped rather than arrival order, which no consumer can
// observe (all downstream ordering is per-stream).
//
// Accepted same-shard runs go to Options.BatchSink in one call when it
// is set, and to the per-message sink otherwise.
func (f *Filter) IngestBatch(rcs []receiver.Reception) {
	if len(rcs) == 0 {
		return
	}
	if len(rcs) == 1 {
		f.Ingest(rcs[0])
		return
	}
	idxp := getShardIndexSlice(len(rcs))
	idx := *idxp
	for i := range rcs {
		idx[i] = f.shardIndexFor(rcs[i].Msg.Stream)
	}
	out := getDeliverySlice()
	const claimed = ^uint32(0)
	for i := 0; i < len(rcs); i++ {
		si := idx[i]
		if si == claimed {
			continue
		}
		sh := f.shards[si]
		sh.mu.Lock()
		for j := i; j < len(rcs); j++ {
			if idx[j] != si {
				continue
			}
			idx[j] = claimed
			if d, forward := sh.ingestLocked(&rcs[j]); forward {
				*out = append(*out, d)
			}
		}
		sh.mu.Unlock()
		if len(*out) == 0 {
			continue
		}
		if f.opts.BatchSink != nil {
			f.opts.BatchSink(*out)
		} else {
			for _, d := range *out {
				f.sink(d)
			}
		}
		clear(*out) // do not pin payloads in the reused scratch
		*out = (*out)[:0]
	}
	putDeliverySlice(out)
	putShardIndexSlice(idxp)
}

// bitPos locates seq's bit in the circular bitmap. Called with sh.mu held.
func (sf *streamFilter) bitPos(seq wire.Seq) (word int, mask uint64) {
	i := uint32(seq) & uint32(len(sf.window)*64-1)
	return int(i >> 6), 1 << (i & 63)
}

// clearRange marks count consecutive sequence positions starting at from
// as unseen, clearing whole 64-bit words where the circular range spans
// them (count must be < the window size). Called with sh.mu held.
func (sf *streamFilter) clearRange(from wire.Seq, count int) {
	size := len(sf.window) * 64
	i := int(uint32(from) & uint32(size-1))
	for count > 0 {
		off := i & 63
		n := 64 - off
		if n > count {
			n = count
		}
		// n bits starting at off; off+n <= 64, and n == 64 yields a
		// full-word mask.
		mask := (^uint64(0) >> (64 - n)) << off
		sf.window[i>>6] &^= mask
		count -= n
		if i += n; i == size {
			i = 0
		}
	}
}

// setRange marks count consecutive sequence positions starting at from as
// seen — clearRange's dual, used when materialising a lazy window.
// Called with sh.mu held.
func (sf *streamFilter) setRange(from wire.Seq, count int) {
	size := len(sf.window) * 64
	i := int(uint32(from) & uint32(size-1))
	for count > 0 {
		off := i & 63
		n := 64 - off
		if n > count {
			n = count
		}
		mask := (^uint64(0) >> (64 - n)) << off
		sf.window[i>>6] |= mask
		count -= n
		if i += n; i == size {
			i = 0
		}
	}
}

// materialize allocates the bitmap for a stream leaving the contiguous
// regime, reproducing exactly the bits the eager code would have set: the
// last span in-order sequences ending at base. Called with sh.mu held.
func (sf *streamFilter) materialize() {
	sf.window = make([]uint64, sf.sh.f.opts.WindowSize/64)
	sf.setRange(sf.base-wire.Seq(sf.span)+1, int(sf.span))
}

// acceptLazy runs the duplicate screen while the stream has no bitmap —
// its seen set is the contiguous range [base-span+1, base]. It returns
// handled=false for the two decisions that need per-sequence bits (an
// in-window gap, a late recovery outside the contiguous range); the
// caller materialises the bitmap and reruns the eager path, which then
// makes the identical decision the eager code always made. Called with
// sh.mu held.
func (sf *streamFilter) acceptLazy(seq wire.Seq) (handled, ok bool) {
	size := sf.sh.f.opts.WindowSize
	if !sf.initiated {
		sf.initiated = true
		sf.base = seq
		sf.span = 1
		return true, true
	}
	d := sf.base.Distance(seq)
	switch {
	case d == 1: // in order: the contiguous range extends
		if int(sf.span) < size {
			sf.span++
		}
		sf.base = seq
		return true, true
	case d >= size:
		// The jump flushes the whole window: nothing previously seen is
		// still inside, so the seen set stays contiguous ({seq} alone)
		// and the stream stays lazy. The skipped numbers are gaps.
		sf.sh.gaps += int64(d - 1)
		sf.base = seq
		sf.span = 1
		return true, true
	case d > 1:
		return false, false // first in-window gap: needs the bitmap
	case d == 0:
		sf.duplicates++
		sf.sh.duplicates++
		return true, false
	default: // d < 0: an older sequence
		if -d >= size {
			sf.sh.stale++
			return true, false
		}
		if int32(-d) < sf.span {
			// Inside the contiguous seen range: a duplicate.
			sf.duplicates++
			sf.sh.duplicates++
			return true, false
		}
		return false, false // late recovery of a pre-span hole: needs the bitmap
	}
}

// accept runs the duplicate window; it reports whether seq is new. Called
// with sh.mu held.
func (sf *streamFilter) accept(seq wire.Seq) bool {
	if sf.window == nil {
		handled, ok := sf.acceptLazy(seq)
		if handled {
			return ok
		}
		// The stream just left the in-order regime: build the bitmap it
		// would have had and fall through to the eager decision.
		sf.materialize()
	}
	size := len(sf.window) * 64
	if !sf.initiated {
		// Reachable only with forceEagerWindows: normally initiation runs
		// on the lazy path, before any bitmap exists.
		sf.initiated = true
		sf.base = seq
		w, m := sf.bitPos(seq)
		sf.window[w] = m
		return true
	}
	d := sf.base.Distance(seq)
	switch {
	case d > 0:
		// New highest sequence: advance the window to seq. Positions for
		// the skipped numbers (base+1 .. seq-1) re-enter the window as
		// gaps and must be marked unseen; the in-order case (d == 1)
		// skips nothing and sets a single bit.
		if d >= size {
			clear(sf.window)
		} else if d > 1 {
			sf.clearRange(sf.base+1, d-1)
		}
		if d > 1 {
			sf.sh.gaps += int64(d - 1)
		}
		sf.base = seq
		w, m := sf.bitPos(seq)
		sf.window[w] |= m
		return true
	case d == 0:
		sf.duplicates++
		sf.sh.duplicates++
		return false
	default: // d < 0: an older sequence
		if -d >= size {
			sf.sh.stale++
			return false
		}
		w, m := sf.bitPos(seq)
		if sf.window[w]&m != 0 {
			sf.duplicates++
			sf.sh.duplicates++
			return false
		}
		sf.window[w] |= m
		sf.sh.recovered++
		return true
	}
}

// enqueueLocked inserts d into the stream's pending list sorted by
// sequence and (re)arms the release timer. Caller holds sh.mu.
func (sf *streamFilter) enqueueLocked(d Delivery, release time.Time) {
	// Insert sorted by serial sequence order.
	at := len(sf.pending)
	for i, p := range sf.pending {
		if d.Msg.Seq.Less(p.d.Msg.Seq) {
			at = i
			break
		}
	}
	sf.pending = append(sf.pending, pendingEntry{})
	copy(sf.pending[at+1:], sf.pending[at:])
	sf.pending[at] = pendingEntry{d: d, release: release}
	sf.armTimerLocked()
}

func (sf *streamFilter) armTimerLocked() {
	if len(sf.pending) == 0 {
		return
	}
	if sf.timer != nil {
		sf.timer.Stop()
	}
	clock := sf.sh.f.opts.Clock
	delay := sf.pending[0].release.Sub(clock.Now())
	sf.timer = clock.AfterFunc(delay, sf.release)
}

// popExpiredLocked moves every front entry whose hold has expired into
// *out, keeping the pending backing array for reuse. Caller holds sh.mu.
func (sf *streamFilter) popExpiredLocked(now time.Time, out *[]Delivery) {
	n := 0
	for n < len(sf.pending) && !sf.pending[n].release.After(now) {
		*out = append(*out, sf.pending[n].d)
		n++
	}
	if n == 0 {
		return
	}
	kept := copy(sf.pending, sf.pending[n:])
	clear(sf.pending[kept:]) // do not pin payloads in the spare capacity
	sf.pending = sf.pending[:kept]
}

// release forwards every front entry whose hold has expired, preserving
// sequence order (a not-yet-expired front entry blocks later ones; its
// expiry bounds the extra wait). It runs on the clock's timer goroutine
// and takes only its own shard's mutex. The timer is re-armed only after
// the sink calls finish, and overlapping fires bail out, so two timer
// goroutines can never sink one stream's messages out of order.
func (sf *streamFilter) release() {
	sh := sf.sh
	f := sh.f
	out := getDeliverySlice()
	sh.mu.Lock()
	if sf.releasing {
		// Another fire is mid-sink; it re-checks and re-arms on exit.
		sh.mu.Unlock()
		putDeliverySlice(out)
		return
	}
	sf.releasing = true
	now := f.opts.Clock.Now()
	sf.popExpiredLocked(now, out)
	sh.delivered += int64(len(*out))
	sf.timer = nil
	sh.mu.Unlock()
	for _, d := range *out {
		f.sink(d)
	}
	sh.mu.Lock()
	sf.releasing = false
	sf.armTimerLocked()
	sh.mu.Unlock()
	putDeliverySlice(out)
}

// Flush immediately releases all held messages (in per-stream sequence
// order) and frees the per-stream reorder backlogs — a drained stream
// keeps only its duplicate-window state, so mass-idle fields do not pin
// reorder memory. Call when shutting down a deployment with reordering
// enabled.
func (f *Filter) Flush() {
	out := getDeliverySlice()
	for _, sh := range f.shards {
		sh.mu.Lock()
		for _, sf := range sh.streams {
			for _, p := range sf.pending {
				*out = append(*out, p.d)
			}
			sh.delivered += int64(len(sf.pending))
			sf.pending = nil
			if sf.timer != nil {
				sf.timer.Stop()
				sf.timer = nil
			}
		}
		sh.mu.Unlock()
	}
	for _, d := range *out {
		f.sink(d)
	}
	putDeliverySlice(out)
}

// Forget drops the per-stream filter state for id — duplicate window,
// reorder backlog and timer — so a mass-detached sensor does not pin
// ingest-side memory forever. Held reorder entries are discarded, not
// delivered (the caller is detaching the stream; Flush first to drain).
// If the stream resumes, it re-initiates like a brand-new stream. It
// reports whether state existed.
func (f *Filter) Forget(id wire.StreamID) bool {
	sh := f.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sf, ok := sh.streams[id]
	if !ok {
		return false
	}
	if sf.timer != nil {
		sf.timer.Stop()
		sf.timer = nil
	}
	// An in-flight release() re-checks pending after its sink calls;
	// emptying it here keeps the timer from re-arming on forgotten state.
	sf.pending = nil
	delete(sh.streams, id)
	if sh.lastID == id {
		sh.last = nil
	}
	return true
}

// Stats returns an aggregate snapshot summed across shards.
func (f *Filter) Stats() Stats {
	st := Stats{Shards: len(f.shards)}
	for _, sh := range f.shards {
		sh.mu.Lock()
		st.Received += sh.received
		st.Delivered += sh.delivered
		st.Duplicates += sh.duplicates
		st.Stale += sh.stale
		st.Gaps += sh.gaps
		st.GapsRecovered += sh.recovered
		st.ActiveStreams += len(sh.streams)
		sh.mu.Unlock()
	}
	return st
}

// StreamStats returns the per-stream snapshot for id; ok is false when the
// filter has never seen the stream.
func (f *Filter) StreamStats(id wire.StreamID) (StreamStats, bool) {
	sh := f.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sf, ok := sh.streams[id]
	if !ok {
		return StreamStats{}, false
	}
	return StreamStats{
		Stream:     id,
		Delivered:  sf.delivered,
		Duplicates: sf.duplicates,
		LastSeq:    sf.base,
		FirstSeen:  sf.firstSeen,
		LastSeen:   sf.lastSeen,
	}, true
}

// Streams lists the ids of all streams with filter state.
func (f *Filter) Streams() []wire.StreamID {
	var out []wire.StreamID
	for _, sh := range f.shards {
		sh.mu.Lock()
		for id := range sh.streams {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	return out
}

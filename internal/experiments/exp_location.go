package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/garnet-middleware/garnet/internal/actuation"
	"github.com/garnet-middleware/garnet/internal/core"
	"github.com/garnet-middleware/garnet/internal/field"
	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/replicator"
	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/transmit"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// runE5 measures inferred-location accuracy against ground truth, with
// and without consumer hints, across receiver densities.
func runE5(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Inferred location accuracy and consumer hints",
		Claim: "§5: location is inferred “without the active involvement of the sensors”, and consumer “location hints” add generality",
		Columns: []string{
			"receivers", "hints", "mean err m", "p95 err m", "mean uncertainty m", "mean confidence",
		},
	}
	grids := []int{4, 9, 16, 25}
	sensors := 25
	if cfg.Quick {
		grids = []int{4, 16}
		sensors = 10
	}
	bounds := geo.RectWH(0, 0, 300, 300)
	truths := field.RandomPositions(bounds, sensors, sim.SubSeed(cfg.Seed, "e5.truth"))
	hintRng := sim.NewRand(sim.SubSeed(cfg.Seed, "e5.hints"))

	for _, rxCount := range grids {
		for _, withHints := range []bool{false, true} {
			clock := sim.NewVirtualClock(epoch)
			d := core.New(core.Config{Clock: clock, Secret: []byte("e5")})
			// Tight zones keep reception local, so density actually adds
			// triangulation information instead of averaging the field.
			for _, p := range field.GridPositions(bounds, rxCount) {
				d.AddReceiver(receiver.Config{Position: p, Radius: 130})
			}
			for i, p := range truths {
				if _, err := d.AddSensor(sensor.Config{
					ID: wire.SensorID(i + 1), Mobility: field.Static{P: p}, TxRange: 400,
					Streams: []sensor.StreamConfig{{
						Index: 0, Sampler: sensor.SizedSampler(8), Period: time.Second, Enabled: true,
					}},
				}); err != nil {
					return nil, err
				}
			}
			d.Start()
			clock.Advance(5 * time.Second)
			if withHints {
				for i, p := range truths {
					// Hints carry bounded consumer-side error (±10 m).
					noisy := geo.Pt(p.X+(hintRng.Float64()-0.5)*20, p.Y+(hintRng.Float64()-0.5)*20)
					if err := d.Location().AddHint(wire.SensorID(i+1), noisy, 0.8, time.Minute, "scout"); err != nil {
						return nil, err
					}
				}
			}
			var errs []float64
			var sumUnc, sumConf float64
			for i, truth := range truths {
				est, err := d.Location().Locate(wire.SensorID(i + 1))
				if err != nil {
					return nil, fmt.Errorf("E5: sensor %d unlocatable: %w", i+1, err)
				}
				errs = append(errs, est.Pos.Dist(truth))
				sumUnc += est.Uncertainty
				sumConf += est.Confidence
			}
			d.Stop()
			sort.Float64s(errs)
			var sum float64
			for _, e := range errs {
				sum += e
			}
			n := float64(len(errs))
			p95 := errs[int(math.Ceil(0.95*n))-1]
			t.AddRow(rxCount, withHints, sum/n, p95, sumUnc/n, sumConf/n)
		}
	}
	t.Notes = append(t.Notes,
		"error is distance from the RSSI-weighted-centroid estimate to ground truth over 25 static sensors",
		"hints carry ±10 m consumer error at confidence 0.8 and are merged with the inferred estimate")
	return t, nil
}

// runE6 compares location-targeted control delivery against the
// location-neutral flood, for increasingly mobile targets.
func runE6(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Location-targeted actuation vs flooding",
		Claim: "§5: location data is “required to reduce transmission costs when forwarding control messages to sensors”",
		Columns: []string{
			"sensor speed m/s", "mode", "pings", "acked", "broadcasts/request", "mean ack ms",
		},
	}
	speeds := []float64{0, 2, 10}
	pings := 12
	if cfg.Quick {
		speeds = []float64{0, 10}
		pings = 6
	}
	for _, speed := range speeds {
		for _, targeted := range []bool{true, false} {
			clock := sim.NewVirtualClock(epoch)
			d := core.New(core.Config{
				Clock:      clock,
				Radio:      radio.Params{DelayMin: 2 * time.Millisecond, DelayMax: 10 * time.Millisecond, Seed: sim.SubSeed(cfg.Seed, "e6")},
				Secret:     []byte("e6"),
				Replicator: replicator.Options{Targeted: targeted, Margin: 2},
			})
			// A 1000 m strip covered by 5 receiver/transmitter sites.
			for i := 0; i < 5; i++ {
				pos := geo.Pt(100+float64(i)*200, 0)
				d.AddReceiver(receiver.Config{Name: fmt.Sprintf("rx-%d", i), Position: pos, Radius: 220})
				d.AddTransmitter(transmit.Config{Name: fmt.Sprintf("tx-%d", i), Position: pos, Range: 220})
			}
			var mob field.Mobility = field.Static{P: geo.Pt(150, 0)}
			if speed > 0 {
				mob = &field.Patrol{
					Waypoints: []geo.Point{geo.Pt(100, 0), geo.Pt(900, 0)},
					Speed:     speed, Epoch: epoch,
				}
			}
			node, err := d.AddSensor(sensor.Config{
				ID: 1, Capabilities: sensor.CapReceive, Mobility: mob, TxRange: 250,
				Streams: []sensor.StreamConfig{{
					Index: 0, Sampler: sensor.SizedSampler(8), Period: time.Second, Enabled: true,
				}},
			})
			if err != nil {
				return nil, err
			}
			_ = node
			d.Start()
			clock.Advance(3 * time.Second) // build a location track

			acked := 0
			var latencySum time.Duration
			for p := 0; p < pings; p++ {
				var (
					gotAck  bool
					latency time.Duration
				)
				_, err := d.ActuationService().Issue(
					actuation.Request{Target: wire.MustStreamID(1, 0), Op: wire.OpPing, Consumer: "e6"},
					func(r actuation.Result) {
						if r.Outcome == actuation.OutcomeAcked {
							gotAck = true
							latency = r.Latency
						}
					})
				if err != nil {
					return nil, err
				}
				clock.Advance(5 * time.Second)
				if gotAck {
					acked++
					latencySum += latency
				}
			}
			d.Stop()

			rs := d.Replicator().Stats()
			perReq := float64(rs.Broadcasts) / float64(rs.Requests)
			mode := "flood"
			if targeted {
				mode = "targeted"
			}
			meanMs := 0.0
			if acked > 0 {
				meanMs = float64(latencySum.Milliseconds()) / float64(acked)
			}
			t.AddRow(speed, mode, pings, acked, perReq, meanMs)
		}
	}
	t.Notes = append(t.Notes,
		"5 transmitter sites cover a 1000 m strip; targeted mode broadcasts only from sites overlapping the expected location area",
		"flooding uses every site for every request — the transmission cost inferred location exists to avoid")
	return t, nil
}

// Package experiments is the benchmark harness that regenerates every
// measurable artifact of the paper: the two figures (F1 architecture, F2
// message format), the §1 capacity claims (C1), and the qualitative
// claims and related-work comparisons of §§2–7 as experiments E1–E12. See
// DESIGN.md §2 for the full index and EXPERIMENTS.md for recorded results.
//
// Each experiment is a pure function from a Config to a Table; tables are
// rendered as aligned text by cmd/garnet-bench and re-run as testing.B
// benchmarks from the repository-root bench_test.go. Experiments run on
// virtual time with seeded randomness, so the numbers are reproducible
// bit-for-bit; only the throughput experiments (F2, E2, E9, E11,
// E13–E16) measure wall-clock rates.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Config parameterises a run.
type Config struct {
	// Seed drives every random stream in the experiment.
	Seed uint64
	// Quick shrinks the sweeps for use in unit tests and smoke runs.
	Quick bool
}

// Table is one regenerated result table.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper statement under test
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row; values are stringified with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.3f", x)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "paper: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is one registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Table, error)
}

// All lists every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"F1", "Figure 1 — architecture walk-through", runF1},
		{"F2", "Figure 2 — data message format and codec throughput", runF2},
		{"C1", "§1 capacity claims", runC1},
		{"E1", "Duplicate elimination vs receiver overlap", runE1},
		{"E2", "Dispatch fan-out scaling", runE2},
		{"E3", "Shared stream vs per-query direct polling (Fjords, §7)", runE3},
		{"E4", "Header cost vs RETRI ephemeral ids (§7)", runE4},
		{"E5", "Inferred location accuracy and consumer hints (§5)", runE5},
		{"E6", "Location-targeted actuation vs flooding (§5)", runE6},
		{"E7", "Resource-manager conflict mediation (§4.2/§6)", runE7},
		{"E8", "Predictive vs reactive super coordination (§6.1)", runE8},
		{"E9", "End-to-end scalability (§1)", runE9},
		{"E10", "Orphanage capture and late claims (§4.2)", runE10},
		{"E11", "Multi-level consumer hierarchies (§6)", runE11},
		{"E12", "Return-path value vs transmit-only fields (§2)", runE12},
		{"E13", "Sharded dispatch under concurrent publishers", runE13},
		{"E14", "Sharded filter ingest under concurrent receivers", runE14},
		{"E15", "Dense-field broadcast: cost vs attached receivers", runE15},
		{"E16", "Demand storm: sharded control plane under churn", runE16},
		{"E17", "Late-joiner storm: replay catch-up under live load", runE17},
		{"E18", "Async fan-out storm: lock-free delivery rings under load", runE18},
		{"E19", "Batched ingest: fan-out storm vs ingest batch size", runE19},
		{"E20", "Churn storm: cohort and subscription churn leave no residue", runE20},
		{"E21", "Radio partition: exact gap accounting and replay catch-up", runE21},
		{"E22", "Slow consumer: bounded-queue backpressure accounting", runE22},
		{"E23", "Archived late-joiners: replay across the durable archive tier", runE23},
		{"X1", "Multi-hop relaying — §8 future-work extension", runX1},
	}
}

// FlagUsage summarises the experiment ids for command-line help,
// compressing the contiguous E-range so it stays accurate as
// experiments are added (the literal string in cmd/garnet-bench went
// stale twice before this existed).
func FlagUsage() string {
	var ids []string
	lowE, highE := 0, -1
	ePos := -1
	for _, e := range All() {
		var n int
		if _, err := fmt.Sscanf(e.ID, "E%d", &n); err == nil && fmt.Sprintf("E%d", n) == e.ID {
			if highE < 0 {
				lowE, highE = n, n
				ePos = len(ids)
				ids = append(ids, "") // placeholder for the compressed range
			} else {
				if n < lowE {
					lowE = n
				}
				if n > highE {
					highE = n
				}
			}
			continue
		}
		ids = append(ids, e.ID)
	}
	if ePos >= 0 {
		if lowE == highE {
			ids[ePos] = fmt.Sprintf("E%d", lowE)
		} else {
			ids[ePos] = fmt.Sprintf("E%d..E%d", lowE, highE)
		}
	}
	return strings.Join(ids, ", ")
}

// Run executes the experiment with the given id ("all" is not accepted
// here; iterate All instead).
func Run(id string, cfg Config) (*Table, error) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e.Run(cfg)
		}
	}
	ids := make([]string, 0)
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(ids, ", "))
}

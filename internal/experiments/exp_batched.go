package experiments

import "fmt"

// runE19 sweeps E18's async fan-out storm across the deployment ingest
// batch size. The workload is identical in every other respect, so the
// msgs/s deltas are attributable to the batched pipeline alone —
// shard-grouped Filter.IngestBatch, run-grouped Store.AppendBatch and
// Dispatcher.DispatchBatch with multi-slot ring claims — and the
// ordering-violation count must stay 0 at every batch size: batching
// amortises locks, it never reorders a per-stream delivery sequence.
func runE19(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E19",
		Title: "Batched ingest: fan-out storm vs ingest batch size",
		Claim: "§3 delivery cost amortises across batches: grouping receptions per shard raises storm throughput with per-message semantics intact",
		Columns: []string{
			"batch", "procs", "publishers", "consumers", "joiners", "delivered",
			"msgs/s", "p99 enq→consume µs", "violations",
		},
	}
	publishers := 4
	standing := 16
	joiners := 8
	msgsPer := 5000
	capacity := 8192
	procs := 4
	if cfg.Quick {
		standing = 4
		joiners = 2
		msgsPer = 500
		capacity = 1024
		procs = 1
	}

	for _, batch := range []int{1, 8, 64} {
		r, err := runFanStorm(procs, batch, publishers, standing, joiners, msgsPer, capacity)
		if err != nil {
			return nil, err
		}
		if r.violations > 0 {
			return nil, fmt.Errorf("E19: %d ordering violations at batch=%d", r.violations, batch)
		}
		t.AddRow(batch, procs, publishers, standing, joiners, r.delivered,
			fmt.Sprintf("%.0f", float64(r.delivered)/r.elapsed.Seconds()),
			fmt.Sprintf("%.1f", r.lat.Percentile(99)/1e3),
			r.violations)
	}
	t.Notes = append(t.Notes,
		"batch=1 is the serial per-message pipeline (WithIngestBatch off); batch>1 buffers receptions and flushes them through IngestBatch → AppendBatch → DispatchBatch",
		"p99 enq→consume includes the time a reception waits in the ingest buffer, so it is the latency cost a batch size buys throughput with",
		"violations counts per-consumer StoreSeq duplicates or inversions across the batched hand-offs — must be 0")
	return t, nil
}

package experiments

import (
	"fmt"
	"time"

	"github.com/garnet-middleware/garnet/internal/wire"
)

// runF2 regenerates Figure 2: it verifies the exact bit layout and
// measures codec throughput across payload sizes.
func runF2(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F2",
		Title: "Data message format (8-bit header, 32-bit StreamID, 16-bit seq, 16-bit size, opaque payload)",
		Claim: "Figure 2 bit offsets 0/8/40/56/72; checksums present but elided",
		Columns: []string{
			"payload B", "frame B", "overhead %", "encode ns/msg", "decode ns/msg", "round-trip ok",
		},
	}
	payloads := []int{0, 16, 64, 256, 4096, wire.MaxPayload}
	iters := 20000
	if cfg.Quick {
		payloads = []int{0, 16, 256}
		iters = 2000
	}
	for _, p := range payloads {
		msg := wire.Message{
			Flags:   wire.FlagLocationAware,
			Stream:  wire.MustStreamID(123456, 7),
			Seq:     4242,
			Payload: make([]byte, p),
		}
		frame, err := msg.Encode()
		if err != nil {
			return nil, err
		}
		overhead := float64(len(frame)-p) / float64(len(frame)) * 100

		buf := make([]byte, 0, len(frame))
		start := time.Now()
		for i := 0; i < iters; i++ {
			buf = buf[:0]
			if buf, err = msg.AppendEncode(buf); err != nil {
				return nil, err
			}
		}
		encNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

		start = time.Now()
		for i := 0; i < iters; i++ {
			if _, _, err = wire.DecodeMessage(frame); err != nil {
				return nil, err
			}
		}
		decNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

		got, _, err := wire.DecodeMessage(frame)
		ok := err == nil && got.Stream == msg.Stream && got.Seq == msg.Seq && len(got.Payload) == p
		t.AddRow(p, len(frame), overhead, encNs, decNs, ok)
	}
	t.Notes = append(t.Notes,
		"fixed header is 9 bytes (72 bits) exactly as Figure 2; +2-byte Fletcher-16 trailer",
		"throughput measured on the wall clock; all other columns deterministic")
	return t, nil
}

// runC1 verifies the §1 capacity sentence limit by limit, exercising the
// boundary value of each.
func runC1(Config) (*Table, error) {
	t := &Table{
		ID:      "C1",
		Title:   "Capacity claims",
		Claim:   "“supports up to 16.7M sensors, 256 internal-streams/sensor, 64K sequence counts and payloads of 64K bytes”",
		Columns: []string{"dimension", "paper claim", "implemented", "boundary round-trip"},
	}
	// 16.7M sensors.
	maxSensorMsg := wire.Message{Stream: wire.MustStreamID(wire.MaxSensorID, 0)}
	ok1 := roundTrips(&maxSensorMsg)
	_, errOver := wire.NewStreamID(wire.MaxSensorID+1, 0)
	t.AddRow("sensors", "16.7M", fmt.Sprintf("%d (2^24)", wire.MaxSensorID+1),
		fmt.Sprintf("id %d ok=%v, %d rejected=%v", wire.MaxSensorID, ok1, wire.MaxSensorID+1, errOver != nil))
	// 256 streams/sensor.
	maxIndexMsg := wire.Message{Stream: wire.MustStreamID(1, wire.MaxStreamIndex)}
	t.AddRow("streams/sensor", "256", fmt.Sprintf("%d (2^8)", wire.MaxStreamIndex+1),
		fmt.Sprintf("index %d ok=%v", wire.MaxStreamIndex, roundTrips(&maxIndexMsg)))
	// 64K sequence counts.
	wrapMsg := wire.Message{Stream: wire.MustStreamID(1, 0), Seq: 65535}
	serialOK := wire.Seq(65535).Less(0) && wire.Seq(65535).Next() == 0
	t.AddRow("sequence counts", "64K", fmt.Sprintf("%d (2^16)", wire.SeqCount),
		fmt.Sprintf("seq 65535 ok=%v, serial wrap ok=%v", roundTrips(&wrapMsg), serialOK))
	// 64K payloads.
	maxPayloadMsg := wire.Message{Stream: wire.MustStreamID(1, 0), Payload: make([]byte, wire.MaxPayload)}
	over := wire.Message{Stream: wire.MustStreamID(1, 0), Payload: make([]byte, wire.MaxPayload+1)}
	_, errPayload := over.Encode()
	t.AddRow("payload bytes", "64K", fmt.Sprintf("%d (2^16-1)", wire.MaxPayload),
		fmt.Sprintf("%d B ok=%v, %d rejected=%v", wire.MaxPayload, roundTrips(&maxPayloadMsg), wire.MaxPayload+1, errPayload != nil))
	return t, nil
}

func roundTrips(m *wire.Message) bool {
	frame, err := m.Encode()
	if err != nil {
		return false
	}
	got, n, err := wire.DecodeMessage(frame)
	return err == nil && n == len(frame) && got.Stream == m.Stream && got.Seq == m.Seq &&
		len(got.Payload) == len(m.Payload)
}

package experiments

import (
	"fmt"
	"time"

	"github.com/garnet-middleware/garnet/internal/actuation"
	"github.com/garnet-middleware/garnet/internal/coordinator"
	"github.com/garnet-middleware/garnet/internal/core"
	"github.com/garnet-middleware/garnet/internal/field"
	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/resource"
	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/transmit"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// runE7 exercises the Resource Manager's conflict mediation: four
// mutually-unaware consumers with incompatible rate demands on the same
// stream, under each policy, with a codified sensor constraint in force.
func runE7(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "Resource-manager conflict mediation",
		Claim: "§4.2/§6: the Resource Manager “exercises control over the permissible actions which a set of consumers may request” given “the potential for conflicting consumer requests”",
		Columns: []string{
			"policy", "demands mHz", "effective mHz", "approved", "modified", "denied",
			"constraint ok", "after top withdraws",
		},
	}
	demands := []uint32{500, 1000, 4000, 8000}
	cons, err := resource.ParseConstraints("rate<=5/s; rate>=0.1/s")
	if err != nil {
		return nil, err
	}
	target := wire.MustStreamID(7, 0)
	for _, policy := range []resource.Policy{
		resource.PolicyMostDemanding,
		resource.PolicyLeastDemanding,
		resource.PolicyPriority,
		resource.PolicyFirstComeDeny,
	} {
		m := resource.NewManager(policy)
		m.SetConstraints(target.Sensor(), cons)
		var approved, modified, denied int
		for i, v := range demands {
			dec, err := m.Submit(resource.Demand{
				Consumer: fmt.Sprintf("app-%d", i),
				Target:   target,
				Op:       wire.OpSetRate,
				Value:    v,
				Priority: i, // later consumers carry higher priority
			})
			if err != nil {
				return nil, err
			}
			switch dec.Verdict {
			case resource.VerdictApproved:
				approved++
			case resource.VerdictModified:
				modified++
			case resource.VerdictDenied:
				denied++
			}
		}
		effective, _ := m.Effective(target, resource.ClassRate)
		constraintOK := effective <= 5000 && effective >= 100

		// The hungriest consumer leaves; the ledger must relax.
		afterWithdraw := effective
		if dec, ok := m.Withdraw("app-3", target, resource.ClassRate); ok {
			afterWithdraw = dec.Effective
		}
		t.AddRow(policy.String(), fmt.Sprintf("%v", demands), effective,
			approved, modified, denied, constraintOK, afterWithdraw)
		if !constraintOK {
			return t, fmt.Errorf("E7: %v violated constraints: %d mHz", policy, effective)
		}
	}
	t.Notes = append(t.Notes,
		"constraint in force: rate<=5/s; rate>=0.1/s (the codified constraint language of §8)",
		"priorities rise with consumer index, so priority policy follows app-3 until it withdraws")
	return t, nil
}

// runE8 measures the Super Coordinator's predictive pay-off: the time from
// a consumer entering a state to the sensor actually running at that
// state's rate, reactive vs predictive, over a lossy downlink.
func runE8(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Predictive vs reactive super coordination",
		Claim: "§6/§6.1: the Super Coordinator can “predictively anticipate changes … reducing the effect of latencies arising from message-handling”; in the water-course scenario it would “anticipate changes to water bodies and preempt actuation requests”",
		Columns: []string{
			"mode", "state entries", "mean in-place ms", "p95 in-place ms",
			"already-armed entries", "prediction accuracy",
		},
	}
	warmup, measured := 3, 4
	if cfg.Quick {
		warmup, measured = 2, 2
	}
	dwell := 60 * time.Second
	states := []string{"calm", "rising", "flood"}
	rates := map[string]uint32{"calm": 200, "rising": 1000, "flood": 5000}

	for _, predictive := range []bool{false, true} {
		clock := sim.NewVirtualClock(epoch)
		coordOpts := coordinator.Options{Mode: coordinator.ModeReactive}
		if predictive {
			coordOpts = coordinator.Options{
				Mode:            coordinator.ModePredictive,
				Horizon:         10 * time.Second,
				MinConfidence:   0.5,
				MinObservations: 2,
			}
		}
		d := core.New(core.Config{
			Clock: clock,
			// A lossy, slow downlink makes reactive actuation latency
			// visible: ~50% of control frames are lost and retried.
			Radio:       radio.Params{LossProb: 0.5, DelayMin: 50 * time.Millisecond, DelayMax: 250 * time.Millisecond, Seed: sim.SubSeed(cfg.Seed, "e8")},
			Secret:      []byte("e8"),
			Coordinator: coordOpts,
			// A generous retry budget so every approved change eventually
			// lands; what differs between the arms is *when*.
			Actuation: actuation.Options{RetryInterval: 2 * time.Second, MaxAttempts: 30},
		})
		d.AddReceiver(receiver.Config{Name: "rx", Position: geo.Pt(0, 0), Radius: 1000})
		d.AddTransmitter(transmit.Config{Name: "tx", Position: geo.Pt(0, 0), Range: 1000})
		target := wire.MustStreamID(1, 0)
		node, err := d.AddSensor(sensor.Config{
			ID: 1, Capabilities: sensor.CapReceive,
			Mobility: field.Static{P: geo.Pt(10, 0)}, TxRange: 1000,
			Streams: []sensor.StreamConfig{{
				Index: 0, Sampler: sensor.SizedSampler(8), Period: 5 * time.Second, Enabled: true,
			}},
		})
		if err != nil {
			return nil, err
		}
		model := map[string][]resource.Demand{}
		for s, r := range rates {
			model[s] = []resource.Demand{{Target: target, Op: wire.OpSetRate, Value: r}}
		}
		if err := d.Coordinator().Register("water", model); err != nil {
			return nil, err
		}
		d.Start()
		clock.Advance(time.Second)

		wantPeriod := func(state string) time.Duration {
			return time.Duration(float64(time.Second) * 1000.0 / float64(rates[state]))
		}
		var latencies []float64
		alreadyArmed := 0
		entries := 0
		cycle := 0
		for c := 0; c < warmup+measured; c++ {
			for _, state := range states {
				if err := d.Coordinator().ReportState("water", state); err != nil {
					return nil, err
				}
				measuredPhase := c >= warmup
				if measuredPhase {
					entries++
					if p, _ := node.StreamPeriod(0); p == wantPeriod(state) {
						alreadyArmed++
						latencies = append(latencies, 0)
					} else {
						// Step until the sensor runs at the state's rate.
						var lat time.Duration
						for lat < dwell {
							clock.Advance(50 * time.Millisecond)
							lat += 50 * time.Millisecond
							if p, _ := node.StreamPeriod(0); p == wantPeriod(state) {
								break
							}
						}
						latencies = append(latencies, float64(lat.Milliseconds()))
						clock.Advance(dwell - lat)
						continue
					}
				}
				clock.Advance(dwell)
			}
			cycle++
		}
		d.Stop()

		var sum float64
		for _, l := range latencies {
			sum += l
		}
		mean := sum / float64(len(latencies))
		p95 := percentile(latencies, 95)
		cs := d.Coordinator().Stats()
		accuracy := "n/a"
		if cs.Hits+cs.Misses > 0 {
			accuracy = fmt.Sprintf("%.0f%%", float64(cs.Hits)/float64(cs.Hits+cs.Misses)*100)
		}
		mode := "reactive"
		if predictive {
			mode = "predictive"
		}
		t.AddRow(mode, entries, mean, p95, alreadyArmed, accuracy)
	}
	t.Notes = append(t.Notes,
		"in-place latency: consumer reports a state → sensor actually samples at that state's rate (50% downlink loss, 2s retry)",
		"predictive mode pre-arms the anticipated state 10s early after a 3-cycle warm-up, so most entries find the rate already in place")
	return t, nil
}

func percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	rank := int(p/100*float64(len(sorted))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

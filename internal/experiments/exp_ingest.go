package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// runE14 measures Filtering Service sharding under concurrent receivers:
// M goroutines each play a receiver hearing its own sensor's stream and
// drive the full receive-side pipeline — wire encode, zero-copy
// (borrowed) decode, duplicate filtering, sharded dispatch to one exact
// subscriber per stream — sweeping the filter shard count. One shard
// reproduces the historical global-mutex filter; more shards give every
// sensor's stream its own ingest lock.
func runE14(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "Sharded filter ingest under concurrent receivers",
		Claim: "§4.2: every reception funnels through the Filtering Service before dispatch — per-stream filter state partitions by sensor so unrelated receivers never contend",
		Columns: []string{
			"receivers", "filter shards", "msgs", "wall ms", "ns/msg", "msgs/s",
		},
	}
	receivers := []int{8, 64, 128}
	shardCounts := []int{1, filtering.DefaultShards}
	msgsPer := 20000
	if cfg.Quick {
		receivers = []int{4, 8}
		msgsPer = 1000
	}
	const payloadSize = 16
	for _, m := range receivers {
		for _, shards := range shardCounts {
			d := dispatch.New(dispatch.Options{})
			var sunk atomic.Int64
			f := filtering.New(d.Dispatch, filtering.Options{Shards: shards})
			streams := make([]wire.StreamID, m)
			for i := 0; i < m; i++ {
				streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
				if _, err := d.Subscribe(&dispatch.ConsumerFunc{
					ConsumerName: fmt.Sprintf("c%d", i),
					Fn:           func(filtering.Delivery) { sunk.Add(1) },
				}, dispatch.Exact(streams[i])); err != nil {
					return nil, err
				}
			}
			var wg sync.WaitGroup
			start := time.Now()
			for i := 0; i < m; i++ {
				wg.Add(1)
				go func(name string, stream wire.StreamID) {
					defer wg.Done()
					var frame []byte
					var msg wire.Message
					payload := make([]byte, payloadSize)
					for seq := 0; seq < msgsPer; seq++ {
						out := wire.Message{Stream: stream, Seq: wire.Seq(seq), Payload: payload}
						var err error
						if frame, err = out.AppendEncode(frame[:0]); err != nil {
							panic(err)
						}
						if _, err := wire.DecodeMessageBorrowed(frame, &msg); err != nil {
							panic(err)
						}
						f.Ingest(receiver.Reception{
							Msg: msg, Receiver: name, RSSI: 1,
							At: epoch, Borrowed: true,
						})
					}
				}(fmt.Sprintf("rx%d", i), streams[i])
			}
			wg.Wait()
			elapsed := time.Since(start)

			total := int64(m * msgsPer)
			if sunk.Load() != total {
				return nil, fmt.Errorf("E14: delivered %d of %d", sunk.Load(), total)
			}
			t.AddRow(m, shards, total, float64(elapsed.Milliseconds()),
				float64(elapsed.Nanoseconds())/float64(total),
				float64(total)/elapsed.Seconds())
		}
	}
	t.Notes = append(t.Notes,
		"each receiver drives encode → borrowed (zero-copy) decode → filter → dispatch for its own sensor's stream; shards=1 is the historical global-mutex filter",
		"single-core hosts show the serial+scheduling view; contention separation needs real cores")
	return t, nil
}

package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/garnet-middleware/garnet/internal/consumer"
	"github.com/garnet-middleware/garnet/internal/core"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/field"
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/orphanage"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/resource"
	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/transmit"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

// runF1 walks a message and a control request through every Figure 1
// service and reports the evidence that each participated.
func runF1(cfg Config) (*Table, error) {
	clock := sim.NewVirtualClock(epoch)
	d := core.New(core.Config{
		Clock:  clock,
		Radio:  radio.Params{LossProb: 0.05, DelayMin: time.Millisecond, DelayMax: 4 * time.Millisecond, Seed: cfg.Seed},
		Secret: []byte("f1"),
	})
	defer d.Stop()
	for _, p := range field.GridPositions(geo.RectWH(0, 0, 200, 200), 4) {
		d.AddReceiver(receiver.Config{Position: p, Radius: 170})
	}
	d.AddTransmitter(transmit.Config{Position: geo.Pt(100, 100), Range: 300})

	node, err := d.AddSensor(sensor.Config{
		ID: 1, Capabilities: sensor.CapReceive,
		Mobility: field.Static{P: geo.Pt(100, 100)}, TxRange: 300,
		Streams: []sensor.StreamConfig{{
			Index: 0, Sampler: sensor.FloatSampler(func(time.Time) float64 { return 20 }),
			Period: time.Second, Enabled: true,
		}},
	})
	if err != nil {
		return nil, err
	}
	// Unclaimed second sensor for the orphanage.
	if _, err := d.AddSensor(sensor.Config{
		ID: 2, Mobility: field.Static{P: geo.Pt(50, 50)}, TxRange: 300,
		Streams: []sensor.StreamConfig{{
			Index: 0, Sampler: sensor.SizedSampler(8), Period: 2 * time.Second, Enabled: true,
		}},
	}); err != nil {
		return nil, err
	}
	rec := consumer.NewRecorder("app", 4096)
	if _, err := d.Dispatcher().Subscribe(rec, dispatch.Exact(wire.MustStreamID(1, 0))); err != nil {
		return nil, err
	}
	d.Start()
	clock.Advance(10 * time.Second)
	if _, err := d.SubmitDemand(resource.Demand{
		Consumer: "app", Target: wire.MustStreamID(1, 0), Op: wire.OpSetRate, Value: 4000,
	}); err != nil {
		return nil, err
	}
	clock.Advance(10 * time.Second)

	s := d.Stats()
	med := d.Medium().Metrics()
	period, _ := node.StreamPeriod(0)
	t := &Table{
		ID:      "F1",
		Title:   "Every Figure 1 service on the data + actuation path",
		Claim:   "architecture of §4: receivers → filtering → dispatching → consumers, with the return path RM → actuation → replicator → transmitters → sensor",
		Columns: []string{"service", "evidence", "value"},
	}
	t.AddRow("medium", "frames broadcast / delivered / lost", fmt.Sprintf("%d / %d / %d", med.Broadcasts.Value(), med.Deliveries.Value(), med.Lost.Value()))
	t.AddRow("receivers", "receptions decoded", s.Filter.Received)
	t.AddRow("filtering", "duplicates eliminated", s.Filter.Duplicates)
	t.AddRow("dispatching", "deliveries to consumers", s.Dispatch.Delivered)
	t.AddRow("consumer", "messages received by app", rec.Count())
	t.AddRow("orphanage", "unclaimed streams held", s.Orphanage.StreamsHeld)
	t.AddRow("resource manager", "demands admitted", s.Resource.Submitted)
	t.AddRow("actuation", "requests acked", s.Actuation.Acked)
	t.AddRow("replicator", "control broadcasts", s.Replicator.Broadcasts)
	t.AddRow("sensor", "applied rate (period)", period.String())
	if s.Actuation.Acked == 0 || rec.Count() == 0 || s.Orphanage.StreamsHeld == 0 {
		return t, fmt.Errorf("F1: pipeline incomplete: %+v", s)
	}
	return t, nil
}

// runE1 sweeps receiver density over a fixed field: overlap duplicates
// messages on the way in, and the Filtering Service must remove every one
// while loss-protection improves.
func runE1(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Duplicate elimination vs receiver overlap",
		Claim: "§4.2: overlapping receivers “improve data reception but cause potential duplication”; the Filtering Service “reconstructs the data streams by eliminating duplicate data messages”",
		Columns: []string{
			"receivers", "raw receptions", "unique delivered", "dup factor",
			"delivery ratio", "dups after filter",
		},
	}
	counts := []int{1, 2, 4, 6, 9, 12}
	sensors, seconds := 20, 60
	if cfg.Quick {
		counts = []int{1, 4, 9}
		sensors, seconds = 8, 20
	}
	for _, rxCount := range counts {
		clock := sim.NewVirtualClock(epoch)
		d := core.New(core.Config{
			Clock:  clock,
			Radio:  radio.Params{LossProb: 0.2, Seed: sim.SubSeed(cfg.Seed, fmt.Sprintf("e1/%d", rxCount))},
			Secret: []byte("e1"),
		})
		bounds := geo.RectWH(0, 0, 300, 300)
		for _, p := range field.GridPositions(bounds, rxCount) {
			d.AddReceiver(receiver.Config{Position: p, Radius: 260})
		}
		seen := make(map[wire.StreamID]map[wire.Seq]bool)
		dupsOut := 0
		sink := &dispatch.ConsumerFunc{ConsumerName: "sink", Fn: func(del filtering.Delivery) {
			m := seen[del.Msg.Stream]
			if m == nil {
				m = make(map[wire.Seq]bool)
				seen[del.Msg.Stream] = m
			}
			if m[del.Msg.Seq] {
				dupsOut++
			}
			m[del.Msg.Seq] = true
		}}
		if _, err := d.Dispatcher().Subscribe(sink, dispatch.All()); err != nil {
			return nil, err
		}
		for i, p := range field.RandomPositions(bounds, sensors, sim.SubSeed(cfg.Seed, "e1.sensors")) {
			if _, err := d.AddSensor(sensor.Config{
				ID: wire.SensorID(i + 1), Mobility: field.Static{P: p}, TxRange: 400,
				Streams: []sensor.StreamConfig{{
					Index: 0, Sampler: sensor.SizedSampler(16), Period: time.Second, Enabled: true,
				}},
			}); err != nil {
				return nil, err
			}
		}
		d.Start()
		clock.RunUntil(epoch.Add(time.Duration(seconds) * time.Second))
		d.Stop()

		fs := d.Filter().Stats()
		expected := int64(sensors * seconds)
		dupFactor := float64(fs.Received) / float64(fs.Delivered)
		t.AddRow(rxCount, fs.Received, fs.Delivered, dupFactor,
			float64(fs.Delivered)/float64(expected), dupsOut)
		if fs.Received != fs.Delivered+fs.Duplicates+fs.Stale {
			return t, fmt.Errorf("E1: filter accounting broken at rx=%d", rxCount)
		}
		if dupsOut != 0 {
			return t, fmt.Errorf("E1: %d duplicates escaped the filter at rx=%d", dupsOut, rxCount)
		}
	}
	t.Notes = append(t.Notes,
		"20% per-delivery loss; delivery ratio rises with overlap while consumers still see each message once",
		"“dups after filter” counts repeated (stream, seq) pairs observed at the consumer — always 0")
	return t, nil
}

// runE9 scales the whole pipeline with sensor count.
func runE9(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "End-to-end scalability",
		Claim:   "§1: “a scalable, extensible platform”, “low performance overhead, scalable design”",
		Columns: []string{"sensors", "sim seconds", "messages", "wall ms", "msgs/s (wall)", "KiB/stream state"},
	}
	sizes := []int{10, 100, 1000, 5000}
	seconds := 30
	if cfg.Quick {
		sizes = []int{10, 100, 500}
		seconds = 10
	}
	for _, n := range sizes {
		clock := sim.NewVirtualClock(epoch)
		d := core.New(core.Config{Clock: clock, Secret: []byte("e9")})
		d.AddReceiver(receiver.Config{Name: "rx", Position: geo.Pt(0, 0), Radius: 1e6})
		count := 0
		if _, err := d.Dispatcher().Subscribe(&dispatch.ConsumerFunc{
			ConsumerName: "sink", Fn: func(filtering.Delivery) { count++ },
		}, dispatch.All()); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if _, err := d.AddSensor(sensor.Config{
				ID: wire.SensorID(i + 1), Mobility: field.Static{P: geo.Pt(1, 0)}, TxRange: 1e6,
				Streams: []sensor.StreamConfig{{
					Index: 0, Sampler: sensor.SizedSampler(16), Period: time.Second, Enabled: true,
				}},
			}); err != nil {
				return nil, err
			}
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		d.Start()
		wall := time.Now()
		clock.RunUntil(epoch.Add(time.Duration(seconds) * time.Second))
		elapsed := time.Since(wall)
		runtime.ReadMemStats(&after)
		d.Stop()

		msgs := d.Filter().Stats().Delivered
		perStream := float64(after.HeapAlloc-before.HeapAlloc) / float64(n) / 1024
		if after.HeapAlloc < before.HeapAlloc {
			perStream = 0
		}
		t.AddRow(n, seconds, msgs, float64(elapsed.Milliseconds()),
			float64(msgs)/elapsed.Seconds(), perStream)
		if msgs != int64(count) {
			return t, fmt.Errorf("E9: sink saw %d of %d", count, msgs)
		}
	}
	t.Notes = append(t.Notes, "wall-clock throughput of the full pipeline (medium → receiver → filter → dispatch) on one core")
	return t, nil
}

// runE10 measures the Orphanage: capture of un-configured data and the
// late-claim handover.
func runE10(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Orphanage capture and late claims",
		Claim: "§4.2: the Orphanage “receives un-configured data … data messages are analysed and potentially stored”",
		Columns: []string{
			"burst msgs", "per-stream cap", "seen", "buffered", "claim recovered",
			"rate est (msg/s)", "post-claim loss",
		},
	}
	bursts := []int{10, 64, 128, 500}
	if cfg.Quick {
		bursts = []int{10, 128}
	}
	for _, burst := range bursts {
		clock := sim.NewVirtualClock(epoch)
		d := core.New(core.Config{
			Clock:     clock,
			Secret:    []byte("e10"),
			Orphanage: orphanage.Options{PerStreamCapacity: 128},
		})
		d.AddReceiver(receiver.Config{Name: "rx", Position: geo.Pt(0, 0), Radius: 1e6})
		if _, err := d.AddSensor(sensor.Config{
			ID: 1, Mobility: field.Static{P: geo.Pt(1, 0)}, TxRange: 1e6,
			Streams: []sensor.StreamConfig{{
				Index: 0, Sampler: sensor.SizedSampler(8), Period: time.Second, Enabled: true,
			}},
		}); err != nil {
			return nil, err
		}
		d.Start()
		clock.Advance(time.Duration(burst) * time.Second) // burst unclaimed messages

		info, ok := d.Orphanage().StreamInfo(wire.MustStreamID(1, 0))
		if !ok {
			return t, fmt.Errorf("E10: stream not captured")
		}
		backlog, ok := d.Orphanage().Claim(wire.MustStreamID(1, 0))
		if !ok {
			return t, fmt.Errorf("E10: claim failed")
		}
		// Late subscriber continues without loss.
		rec := consumer.NewRecorder("late", 1)
		if _, err := d.Dispatcher().Subscribe(rec, dispatch.Exact(wire.MustStreamID(1, 0))); err != nil {
			return nil, err
		}
		clock.Advance(10 * time.Second)
		d.Stop()

		t.AddRow(burst, 128, info.Seen, info.Buffered, len(backlog), info.Rate,
			10-rec.Count())
	}
	t.Notes = append(t.Notes, "buffered is bounded by the per-stream capacity; the newest messages are retained")
	return t, nil
}

package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/garnet-middleware/garnet/internal/core"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/store"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// lateJoiner records the store sequences it sees and checks ordering on
// the fly: any duplicate or inversion across the replay/live hand-off is
// an ordering violation.
type lateJoiner struct {
	name string

	mu         sync.Mutex
	got        int
	last       uint64
	violations int
	caughtUp   time.Time
	liveCutoff uint64 // first delivery past this seq marks catch-up complete
}

func (c *lateJoiner) Name() string { return c.name }
func (c *lateJoiner) Consume(d filtering.Delivery) {
	c.mu.Lock()
	if d.StoreSeq <= c.last {
		c.violations++
	}
	c.last = d.StoreSeq
	c.got++
	if c.caughtUp.IsZero() && d.StoreSeq > c.liveCutoff {
		c.caughtUp = time.Now()
	}
	c.mu.Unlock()
}

// runE17 measures the late-joiner storm: P publishers keep writing their
// streams through the full receive pipeline (encode → zero-copy decode →
// filter → store tee → async dispatch) while M consumers join mid-run
// with SubscribeWithReplay and catch up on the retained backlog. The
// catch-up gate must keep every consumer's view duplicate-free and in
// store-sequence order no matter how replay races live publishing.
func runE17(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "Late-joiner storm: replay catch-up under live load",
		Claim: "§4.2 generalised: retained stream history is a first-class service — late subscribers to *claimed* streams catch up through the same dispatch port that delivers live data",
		Columns: []string{
			"publishers", "joiners", "retained/stream", "replayed total",
			"mean catch-up ms", "live msgs", "violations", "joins/s",
		},
	}
	publishers := 4
	joiners := []int{8, 64}
	backlogPer := 2000
	retention := 4096
	liveWindow := 150 * time.Millisecond
	if cfg.Quick {
		joiners = []int{4}
		backlogPer = 200
		retention = 512
		liveWindow = 5 * time.Millisecond
	}

	for _, m := range joiners {
		d := core.New(core.Config{
			Secret: []byte("e17"),
			Dispatch: dispatch.Options{
				Mode:          dispatch.ModeAsync,
				QueueCapacity: retention + backlogPer,
			},
			Store: store.Options{MaxMessages: retention},
		})
		d.Start()

		streams := make([]wire.StreamID, publishers)
		for i := range streams {
			streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
		}
		publish := func(i, seq int) {
			var msg wire.Message
			out := wire.Message{Stream: streams[i], Seq: wire.Seq(seq), Payload: []byte("reading")}
			frame, err := out.Encode()
			if err != nil {
				panic(err)
			}
			if _, err := wire.DecodeMessageBorrowed(frame, &msg); err != nil {
				panic(err)
			}
			d.InjectReception(receiver.Reception{
				Msg: msg, Receiver: fmt.Sprintf("rx%d", i), RSSI: 1,
				At: epoch, Borrowed: true,
			})
		}

		// Warm-up: build the retained backlog every joiner will replay.
		for i := range streams {
			for seq := 0; seq < backlogPer; seq++ {
				publish(i, seq)
			}
		}

		// Publishers keep writing while the joiners storm in.
		var stop atomic.Bool
		var liveCount atomic.Int64
		var pubWG sync.WaitGroup
		for i := range streams {
			pubWG.Add(1)
			go func(i int) {
				defer pubWG.Done()
				for seq := backlogPer; !stop.Load(); seq++ {
					publish(i, seq)
					liveCount.Add(1)
				}
			}(i)
		}

		consumers := make([]*lateJoiner, m)
		var joinWG sync.WaitGroup
		var replayedTotal atomic.Int64
		var catchupNanos atomic.Int64
		start := time.Now()
		for j := 0; j < m; j++ {
			joinWG.Add(1)
			go func(j int) {
				defer joinWG.Done()
				stream := streams[j%publishers]
				c := &lateJoiner{name: fmt.Sprintf("late-%d", j)}
				cutoff, _ := d.Store().LastSeq(stream)
				c.liveCutoff = cutoff
				consumers[j] = c
				joined := time.Now()
				_, replayed, err := d.SubscribeWithReplay(c, stream, 0)
				if err != nil {
					panic(err)
				}
				replayedTotal.Add(int64(replayed))
				// Wait until the consumer has crossed from replayed
				// history into live data, then record the catch-up time.
				for {
					c.mu.Lock()
					caught := c.caughtUp
					c.mu.Unlock()
					if !caught.IsZero() {
						catchupNanos.Add(caught.Sub(joined).Nanoseconds())
						return
					}
					time.Sleep(time.Millisecond)
				}
			}(j)
		}
		joinWG.Wait()
		joinElapsed := time.Since(start)
		time.Sleep(liveWindow)
		stop.Store(true)
		pubWG.Wait()
		d.Stop()

		violations := 0
		for _, c := range consumers {
			violations += c.violations
		}
		if violations > 0 {
			return nil, fmt.Errorf("E17: %d replay/live ordering violations", violations)
		}
		t.AddRow(publishers, m, retention, replayedTotal.Load(),
			float64(catchupNanos.Load())/float64(m)/1e6,
			liveCount.Load(), violations,
			float64(m)/joinElapsed.Seconds())
	}
	t.Notes = append(t.Notes,
		"joiners subscribe mid-run with SubscribeWithReplay; catch-up ms is subscribe → first delivery past the retained head at join time",
		"violations counts duplicates or inversions across the replay/live hand-off — the catch-up gate must keep it at 0")
	return t, nil
}

package experiments

import (
	"fmt"
	"time"

	"github.com/garnet-middleware/garnet/internal/baseline/directpoll"
	"github.com/garnet-middleware/garnet/internal/baseline/retri"
	"github.com/garnet-middleware/garnet/internal/baseline/txonly"
	"github.com/garnet-middleware/garnet/internal/sensor"
)

// runE3 reproduces the Fjords comparison: N simultaneous queries over one
// sensor, with and without stream sharing.
func runE3(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Shared stream vs per-query direct polling",
		Claim: "§7 (Fjords): sharing one sensor stream across queries “resulted in significant improvements to their ability to handle simultaneous queries”",
		Columns: []string{
			"queries", "sensor tx (direct)", "sensor tx (shared)", "energy mJ (direct)",
			"energy mJ (shared)", "saving ×", "deliveries equal",
		},
	}
	queries := []int{1, 2, 4, 8, 16, 32, 64}
	duration := 60 * time.Second
	if cfg.Quick {
		queries = []int{1, 4, 16}
		duration = 20 * time.Second
	}
	for _, q := range queries {
		w := directpoll.Workload{
			Queries:      q,
			SamplePeriod: time.Second,
			Duration:     duration,
			PayloadBytes: 16,
			Energy:       sensor.EnergyParams{TxBase: 1, TxPerByte: 0.01},
			Seed:         cfg.Seed,
		}
		direct, err := directpoll.DirectPolling(w)
		if err != nil {
			return nil, err
		}
		shared, err := directpoll.SharedStream(w)
		if err != nil {
			return nil, err
		}
		saving := direct.SensorEnergy / shared.SensorEnergy
		t.AddRow(q, direct.SensorTransmissions, shared.SensorTransmissions,
			direct.SensorEnergy, shared.SensorEnergy, saving,
			direct.ConsumerDeliveries == shared.ConsumerDeliveries)
		if q > 1 && saving < float64(q)*0.9 {
			return t, fmt.Errorf("E3: saving %.2f at q=%d, expected ≈%d×", saving, q, q)
		}
	}
	t.Notes = append(t.Notes, "sensor-side cost is flat under sharing (the dispatcher fans out at the fixed network), linear under direct polling")
	return t, nil
}

// runE4 reproduces the RETRI comparison: header bytes saved vs the stream
// corruption ephemeral identifiers would cause Garnet.
func runE4(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Header cost vs RETRI ephemeral ids",
		Claim: "§7: RETRI “reduces the cost of data transmission by using fewer bits” but “because Garnet depends on unique consistent stream IDs, the ephemeral nature of the RETRI identifier renders their technique inappropriate”",
		Columns: []string{
			"scheme", "header B", "saving % (16B payload)", "density", "collision p (analytic)",
			"collision p (simulated)", "stream misattribution",
		},
	}
	densities := []int{10, 100, 1000}
	rounds := 4000
	if cfg.Quick {
		densities = []int{10, 100}
		rounds = 500
	}
	t.AddRow("garnet 32-bit StreamID", retri.GarnetHeaderBytes(), 0.0, "any", 0.0, 0.0, 0.0)
	for _, bits := range []int{8, 16, 24} {
		for _, density := range densities {
			analytic := retri.AnalyticCollisionProb(bits, density)
			simulated := retri.SimulateCollisionRate(cfg.Seed, bits, density, rounds)
			misattr := retri.SimulateMisattribution(cfg.Seed, bits, density, 10, rounds/4)
			t.AddRow(fmt.Sprintf("retri %d-bit", bits), retri.HeaderBytes(bits),
				retri.HeaderSavingPercent(bits, 16), density, analytic, simulated, misattr)
		}
	}
	t.Notes = append(t.Notes,
		"RETRI saves 1–3 header bytes per message but corrupts stream identity at realistic densities",
		"misattribution = fraction of messages spliced into a stream another sensor claims")
	return t, nil
}

// runE12 quantifies the motivation for the return path: adaptive rate
// control vs a transmit-only field under intermittent consumer interest.
func runE12(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Return-path value vs transmit-only fields",
		Claim: "§2: consumers “may attempt to influence the future contents of the originating data streams”, which transmit-only deployments cannot support",
		Columns: []string{
			"mode", "samples", "useful", "wasted", "energy mJ", "mJ/useful sample",
		},
	}
	w := txonly.Workload{
		BusyPeriod:      30 * time.Second,
		IdlePeriod:      4 * time.Minute,
		Cycles:          6,
		BusyRateMilliHz: 2000,
		IdleRateMilliHz: 100,
		PayloadBytes:    16,
		Energy:          sensor.EnergyParams{TxBase: 1, TxPerByte: 0.01, PerSample: 0.1},
	}
	if cfg.Quick {
		w.Cycles = 2
		w.IdlePeriod = time.Minute
	}
	fixed, err := txonly.Run(w, false)
	if err != nil {
		return nil, err
	}
	adaptive, err := txonly.Run(w, true)
	if err != nil {
		return nil, err
	}
	for _, r := range []txonly.Result{fixed, adaptive} {
		t.AddRow(r.Mode, r.SamplesTaken, r.UsefulSamples, r.WastedSamples,
			r.SensorEnergy, r.EnergyPerUsefulSample)
	}
	if adaptive.SensorEnergy >= fixed.SensorEnergy {
		return t, fmt.Errorf("E12: adaptive arm used more energy (%v vs %v)", adaptive.SensorEnergy, fixed.SensorEnergy)
	}
	t.AddRow("saving", "", "", "",
		fmt.Sprintf("%.1f%%", (1-adaptive.SensorEnergy/fixed.SensorEnergy)*100), "")
	t.Notes = append(t.Notes, "consumers are interested 30s out of every 4.5min; the adaptive arm lowers the rate through the actuation path in between")
	return t, nil
}

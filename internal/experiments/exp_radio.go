package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/location"
	"github.com/garnet-middleware/garnet/internal/radio"
	"github.com/garnet-middleware/garnet/internal/replicator"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/transmit"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// e15Locator answers Locate with a settable estimate — the experiment
// moves the "expected location" around the field between control sends.
type e15Locator struct{ est location.Estimate }

func (l *e15Locator) Locate(wire.SensorID) (location.Estimate, error) { return l.est, nil }

// runE15 measures the dense-field broadcast cost on both traffic
// directions: the uplink data path (sensor broadcasts into a growing
// receiver array) and the downlink control path (the Message Replicator
// selecting transmitters for a location estimate). Receivers sit on a
// lattice whose area grows with their count, so the number of listeners
// a broadcast actually reaches stays constant while the attached count
// grows ~16×: with the spatial index both per-operation costs should
// stay flat — broadcast cost tracks reached, not attached, listeners
// (§3 dense overlapping fields; §4.2/§5 location-targeted replication).
func runE15(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "Dense-field broadcast: cost vs attached receivers",
		Claim: "§3/§4.2: overlapping reception zones duplicate data by construction; a broadcast must cost O(listeners reached), not O(listeners attached)",
		Columns: []string{
			"receivers", "txs", "avg reached", "data ns/bcast", "ctrl ns/send", "deliveries",
		},
	}
	counts := []int{64, 256, 1024}
	dataBcasts, ctrlSends := 2000, 2000
	if cfg.Quick {
		counts = []int{16, 64}
		dataBcasts, ctrlSends = 300, 300
	}
	const (
		radius  = 100.0 // reception zone and tx range
		spacing = 150.0 // lattice pitch: zones overlap their neighbours
		payload = 24
	)
	data := make([]byte, payload)
	for _, n := range counts {
		clock := sim.NewVirtualClock(epoch)
		m := radio.NewMedium(clock, radio.Params{Seed: cfg.Seed})
		side := int(math.Ceil(math.Sqrt(float64(n))))
		extent := float64(side) * spacing
		delivered := 0
		for i := 0; i < n; i++ {
			pos := geo.Pt(float64(i%side)*spacing, float64(i/side)*spacing)
			m.Attach(radio.BandUplink, &radio.Listener{
				Name:     fmt.Sprintf("rx%d", i),
				Position: func() geo.Point { return pos },
				Radius:   radius,
				Static:   true,
				Deliver: func(f radio.Frame) {
					delivered++
					f.Release()
				},
			})
		}

		// Data traffic: broadcasts from uniformly random field positions.
		rng := sim.NewRand(sim.SubSeed(cfg.Seed, fmt.Sprintf("e15/%d", n)))
		start := time.Now()
		for i := 0; i < dataBcasts; i++ {
			from := geo.Pt(rng.Float64()*extent, rng.Float64()*extent)
			m.Broadcast(radio.BandUplink, from, radius, data)
			clock.RunAll()
		}
		dataElapsed := time.Since(start)

		// Control traffic: one transmitter per lattice point, the
		// replicator targeting a roaming location estimate.
		loc := &e15Locator{}
		repl := replicator.New(loc, replicator.Options{Targeted: true})
		for i := 0; i < n; i++ {
			repl.AddTransmitter(transmit.New(m, transmit.Config{
				Name:     fmt.Sprintf("tx%d", i),
				Position: geo.Pt(float64(i%side)*spacing, float64(i/side)*spacing),
				Range:    radius,
			}))
		}
		ctrl := wire.ControlMessage{UpdateID: 1, Target: wire.MustStreamID(1, 0), Op: wire.OpPing, Issued: epoch}
		start = time.Now()
		for i := 0; i < ctrlSends; i++ {
			loc.est = location.Estimate{
				Sensor:      1,
				Pos:         geo.Pt(rng.Float64()*extent, rng.Float64()*extent),
				Uncertainty: 50,
				Confidence:  0.9,
			}
			if _, err := repl.Send(ctrl); err != nil {
				return nil, fmt.Errorf("E15: %w", err)
			}
			clock.RunAll()
		}
		ctrlElapsed := time.Since(start)

		t.AddRow(n, n,
			float64(delivered)/float64(dataBcasts),
			float64(dataElapsed.Nanoseconds())/float64(dataBcasts),
			float64(ctrlElapsed.Nanoseconds())/float64(ctrlSends),
			delivered)
	}
	t.Notes = append(t.Notes,
		"lattice pitch 150 m at 100 m zones: local overlap (and so avg reached) is constant while attached count grows; flat ns columns are the O(nearby) win",
		"ctrl ns/send includes the downlink broadcasts of the selected transmitters (no sensors attached: deliveries stay on the data path)")
	return t, nil
}

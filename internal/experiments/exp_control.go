package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/garnet-middleware/garnet/internal/actuation"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/resource"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// runE16 measures the sharded control plane under a demand storm: M
// consumer goroutines churn conflicting demands against their own
// sensor's stream — every flip runs the full return path (admission →
// mediation → actuation issue → instant sensor ack) — while the data
// path (encode → zero-copy decode → filter → dispatch) carries live
// traffic concurrently. One control shard reproduces the historical
// global ledger mutex and single 16-bit id table; more shards give every
// sensor's demands their own ledger lock and id sub-space.
func runE16(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E16",
		Title: "Demand storm: sharded control plane under churn",
		Claim: "§2/§4.2: millions of mutually-unaware consumers churn conflicting demands — mediation and actuation state partition by sensor so unrelated demands never contend",
		Columns: []string{
			"consumers", "control shards", "demands", "wall ms", "ns/demand", "demands/s",
		},
	}
	consumers := []int{8, 64}
	flipsPer := 5000
	if cfg.Quick {
		consumers = []int{4, 8}
		flipsPer = 500
	}
	dataPublishers, dataMsgs := 4, flipsPer
	shardCounts := []int{1, resource.DefaultShards}

	clock := sim.NewVirtualClock(epoch)
	for _, m := range consumers {
		for _, shards := range shardCounts {
			rm := resource.NewWithOptions(resource.Options{Shards: shards})
			var svc *actuation.Service
			// The loopback sink models a perfectly reachable sensor: each
			// transmission is acknowledged synchronously, so the benchmark
			// exercises issue+ack bookkeeping without arming retry timers.
			svc = actuation.NewService(clock, func(c wire.ControlMessage) {
				svc.HandleAck(c.UpdateID, c.Issued)
			}, actuation.Options{Shards: shards, RetryInterval: time.Hour})

			// Live data traffic through the receive-side pipeline.
			d := dispatch.New(dispatch.Options{})
			var sunk atomic.Int64
			f := filtering.New(d.Dispatch, filtering.Options{})
			if _, err := d.Subscribe(&dispatch.ConsumerFunc{
				ConsumerName: "sink",
				Fn:           func(filtering.Delivery) { sunk.Add(1) },
			}, dispatch.All()); err != nil {
				return nil, err
			}

			var wg sync.WaitGroup
			start := time.Now()
			for p := 0; p < dataPublishers; p++ {
				wg.Add(1)
				go func(sensor wire.SensorID, name string) {
					defer wg.Done()
					stream := wire.MustStreamID(sensor, 0)
					var frame []byte
					var msg wire.Message
					payload := make([]byte, 16)
					for seq := 0; seq < dataMsgs; seq++ {
						out := wire.Message{Stream: stream, Seq: wire.Seq(seq), Payload: payload}
						var err error
						if frame, err = out.AppendEncode(frame[:0]); err != nil {
							panic(err)
						}
						if _, err := wire.DecodeMessageBorrowed(frame, &msg); err != nil {
							panic(err)
						}
						f.Ingest(receiver.Reception{Msg: msg, Receiver: name, RSSI: 1, At: epoch, Borrowed: true})
					}
				}(wire.SensorID(10000+p), fmt.Sprintf("rx%d", p))
			}
			for c := 0; c < m; c++ {
				wg.Add(1)
				go func(idx int) {
					defer wg.Done()
					consumer := fmt.Sprintf("app-%d", idx)
					target := wire.MustStreamID(wire.SensorID(idx+1), 0)
					for i := 0; i < flipsPer; i++ {
						// Alternate between two rates: every submission
						// changes the effective setting and actuates.
						dec, err := rm.Submit(resource.Demand{
							Consumer: consumer,
							Target:   target,
							Op:       wire.OpSetRate,
							Value:    uint32(1000 + i%2*1000),
						})
						if err != nil {
							panic(err)
						}
						if dec.Changed && dec.Action != nil {
							if _, err := svc.Issue(actuation.Request{
								Target:   dec.Action.Target,
								Op:       dec.Action.Op,
								Value:    dec.Action.Value,
								Consumer: consumer,
							}, nil); err != nil {
								panic(err)
							}
						}
					}
				}(c)
			}
			wg.Wait()
			elapsed := time.Since(start)

			total := int64(m * flipsPer)
			rst, ast := rm.Stats(), svc.Stats()
			if rst.Submitted != total {
				return nil, fmt.Errorf("E16: submitted %d of %d", rst.Submitted, total)
			}
			if ast.Issued != total || ast.Acked != total || ast.Outstanding != 0 {
				return nil, fmt.Errorf("E16: actuation stats %+v, want %d issued+acked", ast, total)
			}
			if want := int64(dataPublishers * dataMsgs); sunk.Load() != want {
				return nil, fmt.Errorf("E16: data path delivered %d of %d", sunk.Load(), want)
			}
			t.AddRow(m, shards, total, float64(elapsed.Milliseconds()),
				float64(elapsed.Nanoseconds())/float64(total),
				float64(total)/elapsed.Seconds())
		}
	}
	t.Notes = append(t.Notes,
		"each consumer flips its sensor's rate demand: submit → mediate → actuate issue → synchronous ack, one shard lock per layer per demand",
		"shards=1 is the historical global ledger mutex and single update-id table; data traffic (4 publishers) runs concurrently throughout",
		"single-core hosts show the serial+scheduling view; contention separation needs real cores")
	return t, nil
}

package experiments

import (
	"time"

	"github.com/garnet-middleware/garnet/internal/core"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/field"
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// runX1 exercises the §8 future-work extension implemented in this
// repository: multi-hop relaying. Sensors sit in a line, with only the
// first segment inside the receiver's zone; each added relay extends how
// deep into the field the middleware can hear.
func runX1(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "X1",
		Title: "Multi-hop relaying (§8 future-work extension)",
		Claim: "§8: “initial support has been provided by tagging the message header to reflect multi-hop and relayed data messages”; this repo implements the relays themselves",
		Columns: []string{
			"relays", "reachable sensors", "delivery rate", "max hops seen", "relay tx total",
		},
	}
	relays := []int{0, 1, 2, 3}
	if cfg.Quick {
		relays = []int{0, 2}
	}
	const (
		segment   = 140.0 // metres between stations
		txRange   = 160.0
		sources   = 4 // one source sensor per segment depth
		seconds   = 10
		zoneRange = 150.0
	)
	for _, relayCount := range relays {
		clock := sim.NewVirtualClock(epoch)
		d := core.New(core.Config{Clock: clock, Secret: []byte("x1")})
		d.AddReceiver(receiver.Config{Name: "rx", Position: geo.Pt(0, 0), Radius: zoneRange})

		// Source sensors at increasing depth: 100, 240, 380, 520 m.
		for i := 0; i < sources; i++ {
			if _, err := d.AddSensor(sensor.Config{
				ID:       wire.SensorID(i + 1),
				Mobility: field.Static{P: geo.Pt(100+float64(i)*segment, 0)},
				TxRange:  txRange,
				Streams: []sensor.StreamConfig{{
					Index: 0, Sampler: sensor.SizedSampler(8), Period: time.Second, Enabled: true,
				}},
			}); err != nil {
				return nil, err
			}
		}
		// Relay stations every `segment` metres starting at 130 m.
		var relayNodes []*sensor.Node
		for r := 0; r < relayCount; r++ {
			n, err := d.AddSensor(sensor.Config{
				ID:       wire.SensorID(100 + r),
				Mobility: field.Static{P: geo.Pt(130+float64(r)*segment, 0)},
				TxRange:  txRange,
				Relay:    sensor.RelayConfig{Enabled: true, MaxHops: 4},
			})
			if err != nil {
				return nil, err
			}
			relayNodes = append(relayNodes, n)
		}

		reachable := map[wire.SensorID]bool{}
		maxHops := 0
		sink := &dispatch.ConsumerFunc{ConsumerName: "sink", Fn: func(del filtering.Delivery) {
			reachable[del.Msg.Stream.Sensor()] = true
			if del.Msg.Flags.Has(wire.FlagRelayed) && int(del.Msg.HopCount) > maxHops {
				maxHops = int(del.Msg.HopCount)
			}
		}}
		if _, err := d.Dispatcher().Subscribe(sink, dispatch.All()); err != nil {
			return nil, err
		}
		d.Start()
		clock.RunUntil(epoch.Add(seconds * time.Second))
		d.Stop()

		delivered := d.Filter().Stats().Delivered
		expected := int64(len(reachable)) * seconds
		rate := 0.0
		if expected > 0 {
			rate = float64(delivered) / float64(expected)
		}
		var relayTx int64
		for _, n := range relayNodes {
			relayTx += n.Stats().FramesRelayed
		}
		t.AddRow(relayCount, len(reachable), rate, maxHops, relayTx)
	}
	t.Notes = append(t.Notes,
		"4 source sensors at 100/240/380/520 m; the receiver zone ends at 150 m, so depth beyond the first sensor needs relays",
		"relayed duplicates of directly-heard frames are removed by the Filtering Service like any other duplicate")
	return t, nil
}

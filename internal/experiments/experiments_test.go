package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 42, Quick: true} }

// TestAllExperimentsRun executes every registered experiment in quick mode
// and validates table shape.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table, err := e.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if table.ID != e.ID {
				t.Errorf("table id %q, want %q", table.ID, e.ID)
			}
			if len(table.Columns) == 0 || len(table.Rows) == 0 {
				t.Fatalf("%s produced an empty table", e.ID)
			}
			for i, row := range table.Rows {
				if len(row) != len(table.Columns) {
					t.Errorf("%s row %d has %d cells, want %d", e.ID, i, len(row), len(table.Columns))
				}
			}
			var sb strings.Builder
			table.Render(&sb)
			if !strings.Contains(sb.String(), e.ID) {
				t.Error("render missing experiment id")
			}
		})
	}
}

func TestRunByID(t *testing.T) {
	if _, err := Run("c1", quickCfg()); err != nil {
		t.Fatalf("case-insensitive lookup failed: %v", err)
	}
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func cell(t *testing.T, table *Table, row int, col string) string {
	t.Helper()
	for i, c := range table.Columns {
		if c == col {
			return table.Rows[row][i]
		}
	}
	t.Fatalf("no column %q in %v", col, table.Columns)
	return ""
}

func cellFloat(t *testing.T, table *Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, table, row, col), 64)
	if err != nil {
		t.Fatalf("cell %q/%d = %q not numeric", col, row, cell(t, table, row, col))
	}
	return v
}

// The headline shape claims the experiments must reproduce.

func TestE1DuplicationGrowsWithOverlapAndFilterHolds(t *testing.T) {
	table, err := Run("E1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	first := cellFloat(t, table, 0, "dup factor")
	last := cellFloat(t, table, len(table.Rows)-1, "dup factor")
	if last <= first {
		t.Errorf("dup factor did not grow with receivers: %v → %v", first, last)
	}
	firstRatio := cellFloat(t, table, 0, "delivery ratio")
	lastRatio := cellFloat(t, table, len(table.Rows)-1, "delivery ratio")
	if lastRatio <= firstRatio {
		t.Errorf("delivery ratio did not improve with overlap: %v → %v", firstRatio, lastRatio)
	}
	for i := range table.Rows {
		if cell(t, table, i, "dups after filter") != "0" {
			t.Errorf("row %d: duplicates escaped the filter", i)
		}
	}
}

func TestE3SharedWins(t *testing.T) {
	table, err := Run("E3", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	last := len(table.Rows) - 1
	if got := cellFloat(t, table, last, "saving ×"); got < 10 {
		t.Errorf("shared-stream saving at 16 queries = %v, want ≥10×", got)
	}
}

func TestE4RETRIShape(t *testing.T) {
	table, err := Run("E4", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Garnet row first: 11-byte header, zero collisions.
	if cell(t, table, 0, "header B") != "11" {
		t.Errorf("garnet header = %s", cell(t, table, 0, "header B"))
	}
	// Every RETRI row has a smaller header but the dense rows collide.
	sawCollision := false
	for i := 1; i < len(table.Rows); i++ {
		if cellFloat(t, table, i, "header B") >= 11 {
			t.Errorf("row %d: RETRI header not smaller", i)
		}
		if cellFloat(t, table, i, "collision p (simulated)") > 0.2 {
			sawCollision = true
		}
	}
	if !sawCollision {
		t.Error("no RETRI configuration showed substantial collisions")
	}
}

func TestE5HintsImproveAccuracy(t *testing.T) {
	table, err := Run("E5", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Rows alternate (no hints, hints) per grid size.
	for i := 0; i+1 < len(table.Rows); i += 2 {
		plain := cellFloat(t, table, i, "mean err m")
		hinted := cellFloat(t, table, i+1, "mean err m")
		if hinted >= plain {
			t.Errorf("grid row %d: hints did not improve accuracy (%v vs %v)", i, plain, hinted)
		}
	}
	// Densest grid beats the sparsest (both without hints).
	if cellFloat(t, table, len(table.Rows)-2, "mean err m") >= cellFloat(t, table, 0, "mean err m") {
		t.Error("denser receiver grid did not improve inference")
	}
}

func TestE6TargetedCheaperThanFlood(t *testing.T) {
	table, err := Run("E6", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(table.Rows); i += 2 {
		targeted := cellFloat(t, table, i, "broadcasts/request")
		flood := cellFloat(t, table, i+1, "broadcasts/request")
		if targeted >= flood {
			t.Errorf("row %d: targeted %v not cheaper than flood %v", i, targeted, flood)
		}
		if a := cellFloat(t, table, i, "acked"); a == 0 {
			t.Errorf("row %d: targeted mode delivered nothing", i)
		}
	}
}

func TestE7PoliciesDiffer(t *testing.T) {
	table, err := Run("E7", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// most-demanding is clamped to 5000; least-demanding picks 500.
	if got := cell(t, table, 0, "effective mHz"); got != "5000" {
		t.Errorf("most-demanding effective = %s, want 5000 (clamped)", got)
	}
	if got := cell(t, table, 1, "effective mHz"); got != "500" {
		t.Errorf("least-demanding effective = %s, want 500", got)
	}
	for i := range table.Rows {
		if cell(t, table, i, "constraint ok") != "true" {
			t.Errorf("row %d violated constraints", i)
		}
	}
	// first-come-deny must deny at least one conflicting demand.
	if got := cellFloat(t, table, 3, "denied"); got == 0 {
		t.Error("first-come-deny denied nothing")
	}
}

func TestE8PredictiveReducesLatency(t *testing.T) {
	table, err := Run("E8", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	reactive := cellFloat(t, table, 0, "mean in-place ms")
	predictive := cellFloat(t, table, 1, "mean in-place ms")
	if predictive >= reactive {
		t.Errorf("predictive %v ms not below reactive %v ms", predictive, reactive)
	}
	if armed := cellFloat(t, table, 1, "already-armed entries"); armed == 0 {
		t.Error("predictive mode never pre-armed")
	}
}

func TestE12AdaptiveSavesEnergy(t *testing.T) {
	table, err := Run("E12", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	fixed := cellFloat(t, table, 0, "energy mJ")
	adaptive := cellFloat(t, table, 1, "energy mJ")
	if adaptive >= fixed {
		t.Errorf("adaptive %v not below transmit-only %v", adaptive, fixed)
	}
}

func TestTableRenderAlignment(t *testing.T) {
	table := &Table{
		ID: "X", Title: "T", Columns: []string{"a", "long-column"},
	}
	table.AddRow(1, 2.5)
	table.AddRow("wide-value", 3)
	var sb strings.Builder
	table.Render(&sb)
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("render lines = %d", len(lines))
	}
}

func TestTrimFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{1.0, "1"}, {2.5, "2.5"}, {0.125, "0.125"}, {0, "0"}, {1.23456, "1.235"},
	}
	for _, tt := range tests {
		if got := trimFloat(tt.in); got != tt.want {
			t.Errorf("trimFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestX1RelayReachGrows(t *testing.T) {
	table, err := Run("X1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	first := cellFloat(t, table, 0, "reachable sensors")
	last := cellFloat(t, table, len(table.Rows)-1, "reachable sensors")
	if last <= first {
		t.Errorf("relays did not extend reach: %v → %v", first, last)
	}
	for i := range table.Rows {
		if rate := cellFloat(t, table, i, "delivery rate"); rate < 0.99 {
			t.Errorf("row %d delivery rate %v, want lossless", i, rate)
		}
	}
}

// TestFlagUsage pins the derived -experiment usage summary: it must
// track All() so the cmd/garnet-bench help text can never go stale,
// compressing the contiguous E-range and keeping the other ids verbatim.
func TestFlagUsage(t *testing.T) {
	got := FlagUsage()
	highE := 0
	for _, e := range All() {
		var n int
		isE := false
		if _, err := fmt.Sscanf(e.ID, "E%d", &n); err == nil && fmt.Sprintf("E%d", n) == e.ID {
			isE = true
			if n > highE {
				highE = n
			}
		}
		if !isE && !strings.Contains(got, e.ID) {
			t.Errorf("usage %q missing id %s", got, e.ID)
		}
	}
	want := fmt.Sprintf("E1..E%d", highE)
	if !strings.Contains(got, want) {
		t.Errorf("usage %q missing compressed range %q", got, want)
	}
	if highE < 18 {
		t.Errorf("registry lost experiments: highest E id %d < 18", highE)
	}
}

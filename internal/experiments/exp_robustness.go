package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/garnet-middleware/garnet/internal/core"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/field"
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/orphanage"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/store"
	"github.com/garnet-middleware/garnet/internal/store/archive"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// The E20–E22 robustness storms close ROADMAP item 5's "robustness at
// scale" half: each drives a full deployment through a hostile regime —
// cohort and subscription churn, radio partitions, a stalled consumer —
// and then demands exact accounting identities rather than eyeballed
// health: every counter must reconcile, every plane must drain to empty,
// and per-stream delivery order must hold. A non-zero cell in any of the
// *err/violations/leak columns is a bug, and the experiments_test smoke
// run fails on them.

// runE20 is the churn storm: rounds of fresh sensor cohorts appear, emit
// a mixed in-order/reordered/duplicated schedule, are briefly subscribed
// and then dropped, and finally every plane is asked to forget them. The
// claim under test is that churn leaves no residue: no armed timers, no
// per-stream state in filter or store, no held orphans, no live
// subscriptions, and the filter/store accounting identities hold exactly.
// The store runs with its full tier stack — compression on and a durable
// archive behind a one-byte cold budget — so Forget must reclaim spilled
// blocks too, and the extended conservation identity (retained +
// archived − recovered == appended − every loss reason) is enforced as a
// hard failure, not a table cell to eyeball.
func runE20(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E20",
		Title: "Churn storm: cohort and subscription churn leave no residue",
		Claim: "§4.2 long-lived middleware: sensors and consumers come and go; per-stream state must be reclaimable exactly, not approximately",
		Columns: []string{
			"sensors", "rounds", "injected", "delivered", "archived", "stats err",
			"store err", "leaked timers", "leaked streams", "orphans held", "subs left",
		},
	}
	sweeps := []int{1000, 4000}
	if cfg.Quick {
		sweeps = []int{300}
	}
	const rounds = 4
	for _, cohort := range sweeps {
		clock := sim.NewVirtualClock(epoch)
		d := core.New(core.Config{
			Clock:  clock,
			Secret: []byte("e20"),
			Filter: filtering.Options{ReorderWindow: 50 * time.Millisecond},
			// Tight bounds force the full tier walk during churn: a
			// four-entry hot window evicts into two-entry sealed blocks,
			// and a one-byte cold budget spills every sealed block to the
			// durable archive through the async per-shard archivers.
			Orphanage: orphanage.Options{PerStreamCapacity: 4},
			Store: store.Options{
				MaxMessages: 4, Codec: "auto", BlockSize: 2, ColdBudget: 1,
				Archive: archive.NewMem(),
			},
		})
		d.Start()

		var ids []wire.StreamID
		injected, consumed := 0, 0
		for round := 0; round < rounds; round++ {
			// A quarter of the cohort is subscribed for the round; the
			// rest orphan.
			sink := &dispatch.ConsumerFunc{
				ConsumerName: fmt.Sprintf("churn-%d", round),
				Fn:           func(filtering.Delivery) { consumed++ },
			}
			var subs []dispatch.SubscriptionID
			for i := 0; i < cohort; i++ {
				sid := wire.SensorID(round*cohort + i + 1)
				if i%4 == 0 {
					sub, err := d.Dispatcher().Subscribe(sink, dispatch.BySensor(sid))
					if err != nil {
						return nil, err
					}
					subs = append(subs, sub)
				}
			}
			for i := 0; i < cohort; i++ {
				sid := wire.SensorID(round*cohort + i + 1)
				id := wire.MustStreamID(sid, 0)
				ids = append(ids, id)
				inject := func(seq wire.Seq) {
					d.InjectReception(receiver.Reception{
						Msg:      wire.Message{Stream: id, Seq: seq, Payload: []byte{byte(seq)}},
						Receiver: "rx-churn", RSSI: 0.5, At: clock.Now(),
					})
					injected++
				}
				// In-order run, an in-window gap that holds 4..5 in the
				// reorder backlog, a late fill on two streams of three
				// (the third leaves its gap to the timer), then a
				// duplicate.
				inject(1)
				inject(2)
				inject(4)
				inject(5)
				if i%3 != 0 {
					inject(3)
				}
				inject(6)
				inject(2)
				// A second in-order burst pushes every stream past one
				// sealed block, so the cold budget spills the older block
				// into the archive tier mid-churn.
				for seq := wire.Seq(7); seq <= 10; seq++ {
					inject(seq)
				}
			}
			// Let the reorder timers of the unfilled gaps fire.
			clock.Advance(100 * time.Millisecond)
			for _, sub := range subs {
				d.Dispatcher().Unsubscribe(sub)
			}
		}

		// Snapshot the archive tier before the sweep tears it down: churn
		// must actually have spilled blocks for the reclamation claim to
		// mean anything.
		pre := d.Store().Stats()
		spilled := pre.ArchivedMessages + int64(pre.ArchivePendingBlocks)
		if spilled == 0 {
			return nil, fmt.Errorf("E20: churn never reached the archive tier: %+v", pre)
		}

		// Tear down: drain the reorder backlogs, sweep the orphanage
		// (which forgets its streams in the store), then forget every
		// stream in filter and store directly — hot window, sealed cold
		// blocks and durably archived blocks alike.
		d.Filter().Flush()
		d.Orphanage().EvictBefore(clock.Now().Add(time.Hour))
		for _, id := range ids {
			d.Filter().Forget(id)
			d.Store().Forget(id)
		}
		d.Stop()

		fs := d.Filter().Stats()
		statsErr := fs.Received - fs.Delivered - fs.Duplicates - fs.Stale
		ss := d.Store().Stats()
		storeErr := (ss.RetainedMessages + ss.ArchivedMessages - ss.ArchiveRecovered) -
			(ss.Appended - ss.Duplicates - ss.DroppedBehind -
				ss.EvictedCount - ss.EvictedBytes - ss.EvictedAge - ss.EvictedCold -
				ss.EvictedArchive - ss.ArchiveFailed - ss.Forgotten)
		if storeErr != 0 {
			return nil, fmt.Errorf("E20: store conservation identity off by %d: %+v", storeErr, ss)
		}
		leakedStreams := fs.ActiveStreams + ss.Streams
		t.AddRow(cohort, rounds, injected, fs.Delivered, spilled, statsErr, storeErr,
			clock.Pending(), leakedStreams, d.Orphanage().Stats().StreamsHeld,
			d.Dispatcher().Stats().Subscriptions)
	}
	t.Notes = append(t.Notes,
		"each round injects in-order runs, held reorder gaps (some timer-released, some late-filled) and duplicates, then unsubscribes",
		"store runs hot→cold→archive: compression on, 1 B cold budget, async archiver to an in-memory archive backend",
		"stats err: filter Received − Delivered − Duplicates − Stale; store err: retained + archived − recovered vs appended − losses — both enforced 0",
		"leaked timers/streams, orphans held and subs left must all drain to 0 after Flush/EvictBefore/Forget")
	return t, nil
}

// runE21 is the radio partition: a receiver goes deaf twice mid-run while
// sensors keep transmitting, then a late joiner replays the retained
// history. Lost sequences must reconcile exactly against the filter's gap
// accounting (sent == delivered + gaps), no duplicate or inverted
// delivery may occur, and the replay must hand back the store's window in
// order.
func runE21(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E21",
		Title: "Radio partition: exact gap accounting and replay catch-up",
		Claim: "§5 duplicate filtering tracks sequence gaps; a partition's losses must be accounted, not smeared, and retention must replay what survived",
		Columns: []string{
			"partition ms", "sent", "delivered", "gaps", "dup", "stale",
			"acct err", "violations", "replayed",
		},
	}
	partitions := []time.Duration{500 * time.Millisecond, 2 * time.Second}
	if cfg.Quick {
		partitions = []time.Duration{500 * time.Millisecond}
	}
	const (
		sensors = 12
		period  = 100 * time.Millisecond
		runFor  = 12 * time.Second
	)
	for _, partition := range partitions {
		clock := sim.NewVirtualClock(epoch)
		d := core.New(core.Config{Clock: clock, Secret: []byte("e21")})
		rx := d.AddReceiver(receiver.Config{Name: "rx", Position: geo.Pt(0, 0), Radius: 150})

		var nodes []*sensor.Node
		for i := 0; i < sensors; i++ {
			n, err := d.AddSensor(sensor.Config{
				ID:       wire.SensorID(i + 1),
				Mobility: field.Static{P: geo.Pt(10+float64(i)*10, 0)},
				TxRange:  200,
				Streams: []sensor.StreamConfig{{
					Index: 0, Sampler: sensor.SizedSampler(8), Period: period, Enabled: true,
				}},
			})
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, n)
		}

		lastSeq := map[wire.StreamID]wire.Seq{}
		violations, delivered := 0, 0
		sink := &dispatch.ConsumerFunc{ConsumerName: "partition-sink", Fn: func(del filtering.Delivery) {
			if prev, ok := lastSeq[del.Msg.Stream]; ok && prev.Distance(del.Msg.Seq) <= 0 {
				violations++
			}
			lastSeq[del.Msg.Stream] = del.Msg.Seq
			delivered++
		}}
		if _, err := d.Dispatcher().Subscribe(sink, dispatch.All()); err != nil {
			return nil, err
		}

		// Two partitions, offset off the sampling grid so a stop never
		// ties with a transmission on the same virtual instant. The run
		// ends with the receiver up, so every partition loss sits between
		// heard messages and must appear in the gap accounting.
		for _, at := range []time.Duration{3*time.Second + 33*time.Millisecond, 7*time.Second + 33*time.Millisecond} {
			clock.ScheduleFunc(at, rx.Stop)
			clock.ScheduleFunc(at+partition, rx.Start)
		}

		d.Start()
		clock.RunUntil(epoch.Add(runFor))

		// Late joiner: replay one stream's retained history from the
		// beginning and check it arrives in store order.
		replayID := wire.MustStreamID(1, 0)
		var mu sync.Mutex
		var replaySeqs []uint64
		joiner := &dispatch.ConsumerFunc{ConsumerName: "late-joiner", Fn: func(del filtering.Delivery) {
			mu.Lock()
			replaySeqs = append(replaySeqs, del.StoreSeq)
			mu.Unlock()
		}}
		if _, n, err := d.SubscribeWithReplay(joiner, replayID, 0); err != nil {
			return nil, err
		} else if n == 0 {
			return nil, fmt.Errorf("E21: late joiner replayed nothing")
		}
		d.Stop()

		var sent int64
		for _, n := range nodes {
			sent += n.Stats().MessagesSent
		}
		fs := d.Filter().Stats()
		acctErr := sent - fs.Delivered - (fs.Gaps - fs.GapsRecovered)
		mu.Lock()
		for i := 1; i < len(replaySeqs); i++ {
			if replaySeqs[i] <= replaySeqs[i-1] {
				violations++
			}
		}
		replayed := len(replaySeqs)
		mu.Unlock()
		t.AddRow(int(partition/time.Millisecond), sent, fs.Delivered, fs.Gaps,
			fs.Duplicates, fs.Stale, acctErr, violations, replayed)
	}
	t.Notes = append(t.Notes,
		"acct err: sent − delivered − (gaps − recovered); every message lost to a partition must surface as a sequence gap — must be 0",
		"violations counts per-stream sequence inversions/duplicates at the consumer plus store-order breaks in the replay — must be 0",
		"the late joiner subscribes after the second partition heals and replays stream 1's full retained window")
	return t, nil
}

// runE22 is the slow-consumer storm: a stalled consumer's bounded queue
// must shed exactly per its overflow policy while a healthy consumer
// alongside it loses nothing. Conservation (delivered + dropped == sent),
// per-consumer drop attribution, FIFO order and the policy's edge
// behaviour (DropOldest keeps the newest message, DropNewest keeps the
// oldest) are all checked exactly.
func runE22(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E22",
		Title: "Slow consumer: bounded-queue backpressure accounting",
		Claim: "§4.2 consumer processes vary in speed; one stalled consumer must shed its own load exactly, never a neighbour's",
		Columns: []string{
			"policy", "queue cap", "sent", "fast got", "slow got",
			"slow dropped", "acct err", "violations", "edge ok",
		},
	}
	type sweep struct {
		policy dispatch.OverflowPolicy
		name   string
		cap    int
	}
	sweeps := []sweep{
		{dispatch.DropOldest, "DropOldest", 64},
		{dispatch.DropNewest, "DropNewest", 64},
		{dispatch.DropOldest, "DropOldest", 256},
		{dispatch.DropNewest, "DropNewest", 256},
	}
	if cfg.Quick {
		sweeps = sweeps[:2]
	}
	const sent = 4000
	for _, sw := range sweeps {
		clock := sim.NewVirtualClock(epoch)
		d := core.New(core.Config{
			Clock:  clock,
			Secret: []byte("e22"),
			Dispatch: dispatch.Options{
				Mode:          dispatch.ModeAsync,
				QueueCapacity: sw.cap,
				Overflow:      sw.policy,
			},
		})

		var mu sync.Mutex
		var fastSeqs, slowSeqs []uint64
		gate := make(chan struct{})
		fast := &dispatch.ConsumerFunc{ConsumerName: "fast", Fn: func(del filtering.Delivery) {
			mu.Lock()
			fastSeqs = append(fastSeqs, del.StoreSeq)
			mu.Unlock()
		}}
		slow := &dispatch.ConsumerFunc{ConsumerName: "slow", Fn: func(del filtering.Delivery) {
			<-gate // stalled until the injection finishes
			mu.Lock()
			slowSeqs = append(slowSeqs, del.StoreSeq)
			mu.Unlock()
		}}
		if _, err := d.Dispatcher().Subscribe(fast, dispatch.All()); err != nil {
			return nil, err
		}
		if _, err := d.Dispatcher().Subscribe(slow, dispatch.All()); err != nil {
			return nil, err
		}
		d.Start()

		id := wire.MustStreamID(1, 0)
		fastCount := func() int {
			mu.Lock()
			defer mu.Unlock()
			return len(fastSeqs)
		}
		for i := 1; i <= sent; i++ {
			d.InjectReception(receiver.Reception{
				Msg:      wire.Message{Stream: id, Seq: wire.Seq(i), Payload: []byte{byte(i)}},
				Receiver: "rx-e22", RSSI: 0.5, At: clock.Now(),
			})
			// Pace the storm to the healthy consumer so only the stalled
			// one ever sheds: never run more than half its queue ahead.
			for i-fastCount() > sw.cap/2 {
				runtime.Gosched()
			}
		}
		// Release the stalled consumer and wait for both queues to drain:
		// the slow consumer's deliveries plus its attributed drops must
		// converge on the exact send count.
		close(gate)
		deadline := time.Now().Add(30 * time.Second)
		slowTotal := func() int {
			mu.Lock()
			n := len(slowSeqs)
			mu.Unlock()
			return n + int(d.Dispatcher().Stats().DroppedByConsumer["slow"])
		}
		for (fastCount() < sent || slowTotal() < sent) && time.Now().Before(deadline) {
			runtime.Gosched()
			time.Sleep(time.Millisecond)
		}
		d.Stop()

		ds := d.Dispatcher().Stats()
		mu.Lock()
		fastGot, slowGot := len(fastSeqs), len(slowSeqs)
		violations := 0
		for i := 1; i < len(fastSeqs); i++ {
			if fastSeqs[i] <= fastSeqs[i-1] {
				violations++
			}
		}
		for i := 1; i < len(slowSeqs); i++ {
			if slowSeqs[i] <= slowSeqs[i-1] {
				violations++
			}
		}
		if fastGot != sent {
			violations++ // the healthy consumer must never shed
		}
		edgeOK := false
		if slowGot > 0 && fastGot > 0 {
			switch sw.policy {
			case dispatch.DropOldest:
				// The newest message is always admitted; it must survive.
				edgeOK = slowSeqs[slowGot-1] == fastSeqs[fastGot-1]
			case dispatch.DropNewest:
				// The queue head is never displaced; the first message
				// must survive.
				edgeOK = slowSeqs[0] == fastSeqs[0]
			}
		}
		mu.Unlock()
		dropped := ds.DroppedByConsumer["slow"]
		acctErr := int64(sent) - int64(slowGot) - dropped
		t.AddRow(sw.name, sw.cap, sent, fastGot, slowGot, dropped, acctErr, violations, edgeOK)
	}
	t.Notes = append(t.Notes,
		"the slow consumer blocks until the storm ends; the fast consumer paces the storm so only the stalled queue sheds",
		"acct err: sent − slow delivered − DroppedByConsumer[slow]; conservation must be exact — must be 0",
		"violations counts FIFO breaks at either consumer and any fast-consumer loss — must be 0",
		"edge ok: DropOldest must retain the newest message, DropNewest the oldest")
	return t, nil
}

package experiments

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/garnet-middleware/garnet/internal/core"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/store"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// fanConsumer is one async consumer in the E18 storm. Each instance
// watches exactly one stream, so its StoreSeq view must be strictly
// ascending no matter how the lock-free ring, the overflow policy and
// the catch-up gate interleave; any duplicate or inversion counts as an
// ordering violation. Live consumers also sample the enqueue→consume
// latency carried in the payload.
type fanConsumer struct {
	name    string
	base    time.Time // latency epoch; zero for late joiners (ordering only)
	mu      sync.Mutex
	got     int
	last    uint64
	seen    bool
	violate int
	lat     metrics.Histogram
}

func (c *fanConsumer) Name() string { return c.name }
func (c *fanConsumer) Consume(d filtering.Delivery) {
	c.mu.Lock()
	if c.seen && d.StoreSeq <= c.last {
		c.violate++
	}
	c.seen = true
	c.last = d.StoreSeq
	c.got++
	if !c.base.IsZero() && len(d.Msg.Payload) >= 8 {
		sent := time.Duration(binary.LittleEndian.Uint64(d.Msg.Payload))
		c.lat.Observe(float64(time.Since(c.base) - sent))
	}
	c.mu.Unlock()
}

// runE18 measures the async fan-out storm: M publishers push through the
// full receive pipeline (encode → zero-copy decode → filter → store tee
// → async dispatch) into N standing async consumers while late joiners
// storm in mid-run with SubscribeWithReplay. Each consumer's delivery
// port runs the lock-free MPSC ring on the steady state, so this is the
// end-to-end probe for that path: throughput and p99 enqueue→consume
// latency are swept across GOMAXPROCS, and the ordering-violation count
// must stay at 0 across the ring/locked hand-offs the joiners force.
func runE18(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E18",
		Title: "Async fan-out storm: lock-free delivery rings under load",
		Claim: "§3 shared-stream delivery scales with cores: per-consumer lock-free rings keep M×N async fan-out ordered while late joiners replay mid-storm",
		Columns: []string{
			"procs", "publishers", "consumers", "joiners", "delivered",
			"msgs/s", "p99 enq→consume µs", "violations",
		},
	}
	publishers := 4
	standing := 16
	joiners := 8
	msgsPer := 5000
	capacity := 8192
	procsSweep := []int{1, 4}
	if cfg.Quick {
		standing = 4
		joiners = 2
		msgsPer = 500
		capacity = 1024
		procsSweep = []int{1}
	}

	for _, procs := range procsSweep {
		r, err := runFanStorm(procs, 0, publishers, standing, joiners, msgsPer, capacity)
		if err != nil {
			return nil, err
		}
		if r.violations > 0 {
			return nil, fmt.Errorf("E18: %d ordering violations at GOMAXPROCS=%d", r.violations, procs)
		}
		t.AddRow(procs, publishers, standing, joiners, r.delivered,
			fmt.Sprintf("%.0f", float64(r.delivered)/r.elapsed.Seconds()),
			fmt.Sprintf("%.1f", r.lat.Percentile(99)/1e3),
			r.violations)
	}
	t.Notes = append(t.Notes,
		"standing consumers ride the lock-free delivery ring; joiners subscribe mid-storm with SubscribeWithReplay, pinning the ring↔locked hand-off",
		"p99 is live enqueue→consume latency from a payload timestamp; replayed history is excluded so retention delay does not skew it",
		"violations counts per-consumer StoreSeq duplicates or inversions — must be 0")
	return t, nil
}

// stormResult is one fan-out storm run's aggregate outcome.
type stormResult struct {
	delivered  int
	violations int
	elapsed    time.Duration
	lat        metrics.Histogram
}

// runFanStorm drives one fan-out storm: M publishers push the full
// receive pipeline into N standing async consumers while late joiners
// storm in mid-run with SubscribeWithReplay. batch selects the
// deployment's ingest batch size (0 or 1 is the serial per-message
// path); everything else about the workload is identical, which is what
// lets E19 attribute its deltas to batching alone.
func runFanStorm(procs, batch, publishers, standing, joiners, msgsPer, capacity int) (*stormResult, error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	d := core.New(core.Config{
		Secret:      []byte("e18"),
		IngestBatch: batch,
		Dispatch: dispatch.Options{
			Mode:          dispatch.ModeAsync,
			QueueCapacity: capacity,
		},
		Store: store.Options{MaxMessages: capacity},
	})

	streams := make([]wire.StreamID, publishers)
	for i := range streams {
		streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
	}
	base := time.Now()
	publish := func(i, seq int) {
		var payload [8]byte
		binary.LittleEndian.PutUint64(payload[:], uint64(time.Since(base)))
		var msg wire.Message
		out := wire.Message{Stream: streams[i], Seq: wire.Seq(seq), Payload: payload[:]}
		frame, err := out.Encode()
		if err != nil {
			panic(err)
		}
		if _, err := wire.DecodeMessageBorrowed(frame, &msg); err != nil {
			panic(err)
		}
		d.InjectReception(receiver.Reception{
			Msg: msg, Receiver: fmt.Sprintf("rx%d", i), RSSI: 1,
			At: epoch, Borrowed: true,
		})
	}

	consumers := make([]*fanConsumer, 0, standing+joiners)
	for n := 0; n < standing; n++ {
		c := &fanConsumer{name: fmt.Sprintf("fan-%d", n), base: base}
		consumers = append(consumers, c)
		if _, err := d.Dispatcher().Subscribe(c, dispatch.Exact(streams[n%publishers])); err != nil {
			return nil, err
		}
	}
	d.Start()

	start := time.Now()
	var published atomic.Int64
	var pubWG sync.WaitGroup
	for i := 0; i < publishers; i++ {
		pubWG.Add(1)
		go func(i int) {
			defer pubWG.Done()
			for seq := 0; seq < msgsPer; seq++ {
				publish(i, seq)
				published.Add(1)
			}
		}(i)
	}

	// Late joiners storm in once the publishers are warmed up; each
	// replays the retained backlog through the same port that then
	// hands off to live deliveries.
	late := make([]*fanConsumer, joiners)
	var joinWG sync.WaitGroup
	for j := 0; j < joiners; j++ {
		joinWG.Add(1)
		go func(j int) {
			defer joinWG.Done()
			for published.Load() < int64(publishers*msgsPer/4) {
				runtime.Gosched()
			}
			c := &fanConsumer{name: fmt.Sprintf("late-%d", j)}
			late[j] = c
			if _, _, err := d.SubscribeWithReplay(c, streams[j%publishers], 0); err != nil {
				panic(err)
			}
		}(j)
	}
	pubWG.Wait()
	joinWG.Wait()
	consumers = append(consumers, late...)
	d.Stop()
	r := &stormResult{elapsed: time.Since(start)}

	for _, c := range consumers {
		c.mu.Lock()
		r.delivered += c.got
		r.violations += c.violate
		r.lat.Merge(&c.lat)
		c.mu.Unlock()
	}
	return r, nil
}

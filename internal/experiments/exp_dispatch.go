package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/garnet-middleware/garnet/internal/consumer"
	"github.com/garnet-middleware/garnet/internal/core"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// runE2 measures Dispatching Service fan-out scaling: one stream with N
// subscribed, mutually-unaware consumers, and N distinct streams with one
// consumer each.
func runE2(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Dispatch fan-out scaling",
		Claim: "§1: “low performance overhead, scalable design”; §4.2 pub/sub delivery to mutually-unaware consumers",
		Columns: []string{
			"consumers", "pattern", "deliveries", "wall ms", "ns/delivery", "deliveries/s",
		},
	}
	sizes := []int{1, 4, 16, 64, 256, 1024}
	msgs := 20000
	if cfg.Quick {
		sizes = []int{1, 16, 128}
		msgs = 2000
	}
	for _, n := range sizes {
		for _, shared := range []bool{true, false} {
			d := dispatch.New(dispatch.Options{})
			var sunk int64
			for c := 0; c < n; c++ {
				stream := wire.MustStreamID(1, 0)
				if !shared {
					stream = wire.MustStreamID(wire.SensorID(c+1), 0)
				}
				if _, err := d.Subscribe(&dispatch.ConsumerFunc{
					ConsumerName: fmt.Sprintf("c%d", c),
					Fn:           func(filtering.Delivery) { sunk++ },
				}, dispatch.Exact(stream)); err != nil {
					return nil, err
				}
			}
			// In the shared arm every message fans out to n consumers; in
			// the distinct arm messages round-robin across streams.
			start := time.Now()
			for i := 0; i < msgs; i++ {
				stream := wire.MustStreamID(1, 0)
				if !shared {
					stream = wire.MustStreamID(wire.SensorID(i%n+1), 0)
				}
				d.Dispatch(filtering.Delivery{Msg: wire.Message{Stream: stream, Seq: wire.Seq(i)}, At: epoch})
			}
			elapsed := time.Since(start)

			pattern := "1 stream × N consumers"
			if !shared {
				pattern = "N streams × 1 consumer"
			}
			t.AddRow(n, pattern, sunk, float64(elapsed.Milliseconds()),
				float64(elapsed.Nanoseconds())/float64(sunk),
				float64(sunk)/elapsed.Seconds())
		}
	}
	t.Notes = append(t.Notes, "synchronous dispatch on one core; per-delivery cost stays flat as consumers scale")
	return t, nil
}

// runE13 measures subscription-table sharding under concurrent
// publishers: P goroutines publish to P distinct streams (distinct
// sensors, so each stream has its own home shard) with one exact
// subscriber per stream, sweeping the shard count. One shard reproduces
// the historical single-table dispatcher; more shards remove lock
// contention between unrelated streams.
func runE13(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Sharded dispatch under concurrent publishers",
		Claim: "§1: “low performance overhead, scalable design” — delivery state partitions by stream so unrelated publishes never contend",
		Columns: []string{
			"publishers", "shards", "msgs", "wall ms", "ns/msg", "msgs/s",
		},
	}
	publishers := []int{4, 16, 100}
	shardCounts := []int{1, dispatch.DefaultShards}
	msgsPer := 20000
	if cfg.Quick {
		publishers = []int{4, 16}
		msgsPer = 1000
	}
	for _, p := range publishers {
		for _, shards := range shardCounts {
			d := dispatch.New(dispatch.Options{Shards: shards})
			var sunk atomic.Int64
			streams := make([]wire.StreamID, p)
			for i := 0; i < p; i++ {
				streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
				if _, err := d.Subscribe(&dispatch.ConsumerFunc{
					ConsumerName: fmt.Sprintf("c%d", i),
					Fn:           func(filtering.Delivery) { sunk.Add(1) },
				}, dispatch.Exact(streams[i])); err != nil {
					return nil, err
				}
			}
			var wg sync.WaitGroup
			start := time.Now()
			for i := 0; i < p; i++ {
				wg.Add(1)
				go func(stream wire.StreamID) {
					defer wg.Done()
					for seq := 0; seq < msgsPer; seq++ {
						d.Dispatch(filtering.Delivery{
							Msg: wire.Message{Stream: stream, Seq: wire.Seq(seq)},
							At:  epoch,
						})
					}
				}(streams[i])
			}
			wg.Wait()
			elapsed := time.Since(start)

			total := int64(p * msgsPer)
			if sunk.Load() != total {
				return nil, fmt.Errorf("E13: delivered %d of %d", sunk.Load(), total)
			}
			t.AddRow(p, shards, total, float64(elapsed.Milliseconds()),
				float64(elapsed.Nanoseconds())/float64(total),
				float64(total)/elapsed.Seconds())
		}
	}
	t.Notes = append(t.Notes,
		"publishers target distinct sensors, so each stream dispatches through its own shard; shards=1 is the historical single-table path")
	return t, nil
}

// runE11 measures multi-level consumer hierarchies: a chain of derived
// streams of increasing depth.
func runE11(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Multi-level consumer hierarchies",
		Claim: "§6: consumers “form an essentially arbitrary graph … in practise … a hierarchy where lower level consumer processes generate derived streams … consumed by higher-level consumers”",
		Columns: []string{
			"depth", "source msgs", "top-level msgs", "wall ms", "ns/msg through chain",
		},
	}
	depths := []int{1, 2, 4, 8}
	msgs := 10000
	if cfg.Quick {
		depths = []int{1, 4}
		msgs = 1000
	}
	for _, depth := range depths {
		clock := sim.NewVirtualClock(epoch)
		d := core.New(core.Config{Clock: clock, Secret: []byte("e11")})

		source := wire.MustStreamID(1, 0)
		prev := source
		// Build the chain: each level consumes the previous level's stream
		// and republishes the pass-through mean (window 1) on a new
		// derived stream.
		for level := 0; level < depth; level++ {
			vid := d.AllocateVirtualSensor()
			out := consumer.NewDerivedStream(d, wire.MustStreamID(vid, 0), 0)
			agg := consumer.NewWindowAggregator(fmt.Sprintf("level-%d", level), out, 1, consumer.AggregateMean)
			if _, err := d.Dispatcher().Subscribe(agg, dispatch.Exact(prev)); err != nil {
				return nil, err
			}
			prev = out.Stream()
		}
		top := consumer.NewRecorder("top", 1)
		if _, err := d.Dispatcher().Subscribe(top, dispatch.Exact(prev)); err != nil {
			return nil, err
		}
		d.Start()

		payload := sensor.EncodeReading(1.5, epoch)
		start := time.Now()
		for i := 0; i < msgs; i++ {
			d.PublishDerived(wire.Message{Stream: source, Seq: wire.Seq(i), Payload: payload}, epoch)
		}
		elapsed := time.Since(start)
		d.Stop()

		if top.Count() != int64(msgs) {
			return t, fmt.Errorf("E11: depth %d delivered %d of %d", depth, top.Count(), msgs)
		}
		t.AddRow(depth, msgs, top.Count(), float64(elapsed.Milliseconds()),
			float64(elapsed.Nanoseconds())/float64(msgs))
	}
	t.Notes = append(t.Notes, "each level re-enters the Dispatching Service as a first-class stream (discovery, orphanage and subscriptions all apply)")
	return t, nil
}

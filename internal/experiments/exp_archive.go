package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/garnet-middleware/garnet/internal/core"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/orphanage"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/store"
	"github.com/garnet-middleware/garnet/internal/store/archive"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// runE23 is the archived late-joiner storm: the E17 claim — retained
// history is a first-class service — pushed through the durable archive
// tier. Publishers write far past the in-memory window (a tiny cold
// budget spills sealed blocks to an archive backend through the async
// archivers), so when M consumers join with SubscribeWithReplay from the
// beginning of history, the overwhelming share of what they replay
// exists only in the archive. Every consumer's view must still be
// duplicate-free and in store-sequence order across the
// archive→cold→hot→live hand-off, and a second deployment restarted
// over the same backend must serve the same archived ranges to
// consumers that the first one did.
func runE23(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E23",
		Title: "Archived late-joiners: replay across the durable archive tier",
		Claim: "§4.2 pushed past RAM: history a deployment spilled to durable storage replays through the same dispatch port as live data — and survives the deployment itself",
		Columns: []string{
			"publishers", "joiners", "history", "archived %", "replayed total",
			"mean catch-up ms", "read amp", "violations", "restart served",
		},
	}
	publishers := 4
	joiners := []int{8, 32}
	backlogPer := 6000
	storeOpts := store.Options{
		MaxMessages: 256, Codec: "auto", BlockSize: 64, ColdBudget: 1,
	}
	orphOpts := orphanage.Options{PerStreamCapacity: storeOpts.MaxMessages}
	liveWindow := 100 * time.Millisecond
	if cfg.Quick {
		joiners = []int{4}
		backlogPer = 600
		storeOpts.MaxMessages, storeOpts.BlockSize = 32, 8
		orphOpts.PerStreamCapacity = 32
		liveWindow = 5 * time.Millisecond
	}

	for _, m := range joiners {
		backend := archive.NewMem()
		opts := storeOpts
		opts.Archive = backend
		d := core.New(core.Config{
			Secret: []byte("e23"),
			Dispatch: dispatch.Options{
				Mode:          dispatch.ModeAsync,
				QueueCapacity: 2 * backlogPer,
			},
			Orphanage: orphOpts,
			Store:     opts,
		})
		d.Start()

		streams := make([]wire.StreamID, publishers)
		for i := range streams {
			streams[i] = wire.MustStreamID(wire.SensorID(i+1), 0)
		}
		publish := func(i, seq int) {
			var msg wire.Message
			out := wire.Message{Stream: streams[i], Seq: wire.Seq(seq), Payload: []byte("reading")}
			frame, err := out.Encode()
			if err != nil {
				panic(err)
			}
			if _, err := wire.DecodeMessageBorrowed(frame, &msg); err != nil {
				panic(err)
			}
			d.InjectReception(receiver.Reception{
				Msg: msg, Receiver: fmt.Sprintf("rx%d", i), RSSI: 1,
				At: epoch, Borrowed: true,
			})
		}

		// Warm-up: push each stream an order of magnitude past its
		// in-memory window, so the backlog the joiners replay lives
		// almost entirely in the archive tier.
		for i := range streams {
			for seq := 0; seq < backlogPer; seq++ {
				publish(i, seq)
			}
		}
		readBefore := d.Store().Stats().ArchiveReadMessages

		// Publishers keep writing while the joiners storm in.
		var stop atomic.Bool
		var pubWG sync.WaitGroup
		for i := range streams {
			pubWG.Add(1)
			go func(i int) {
				defer pubWG.Done()
				for seq := backlogPer; !stop.Load(); seq++ {
					publish(i, seq)
				}
			}(i)
		}

		consumers := make([]*lateJoiner, m)
		var joinWG sync.WaitGroup
		var replayedTotal atomic.Int64
		var catchupNanos atomic.Int64
		for j := 0; j < m; j++ {
			joinWG.Add(1)
			go func(j int) {
				defer joinWG.Done()
				stream := streams[j%publishers]
				c := &lateJoiner{name: fmt.Sprintf("arch-late-%d", j)}
				cutoff, _ := d.Store().LastSeq(stream)
				c.liveCutoff = cutoff
				consumers[j] = c
				joined := time.Now()
				_, replayed, err := d.SubscribeWithReplay(c, stream, 0)
				if err != nil {
					panic(err)
				}
				replayedTotal.Add(int64(replayed))
				for {
					c.mu.Lock()
					caught := c.caughtUp
					c.mu.Unlock()
					if !caught.IsZero() {
						catchupNanos.Add(caught.Sub(joined).Nanoseconds())
						return
					}
					time.Sleep(time.Millisecond)
				}
			}(j)
		}
		joinWG.Wait()
		time.Sleep(liveWindow)
		stop.Store(true)
		pubWG.Wait()

		// Shut down, then snapshot the per-stream archived ranges the
		// restarted deployment must serve: Stop closes the store, so
		// every still-pending spill is committed durably first.
		readAfter := d.Store().Stats().ArchiveReadMessages
		type archivedRange struct {
			first uint64
			count int64
		}
		want := make(map[wire.StreamID]archivedRange, len(streams))
		d.Stop()
		st := d.Store().Stats()
		for _, id := range streams {
			ss, ok := d.Store().StreamStats(id)
			if !ok || ss.ArchivedMessages == 0 {
				return nil, fmt.Errorf("E23: stream %v has no archived history", id)
			}
			want[id] = archivedRange{first: ss.FirstSeq, count: int64(ss.ArchivedMessages)}
		}

		total := st.RetainedMessages + st.ArchivedMessages
		archFrac := float64(st.ArchivedMessages) / float64(total)
		if archFrac < 0.9 {
			return nil, fmt.Errorf("E23: only %.1f%% of history is archive-only, want ≥90%%", 100*archFrac)
		}
		memPerStream := st.RetainedMessages / int64(publishers)
		if replayPer := replayedTotal.Load() / int64(m); replayPer < 10*memPerStream {
			return nil, fmt.Errorf("E23: joiners replayed %d per head, in-memory window is %d — not a ≥10× archive replay",
				replayPer, memPerStream)
		}
		violations := 0
		for _, c := range consumers {
			violations += c.violations
		}
		if violations > 0 {
			return nil, fmt.Errorf("E23: %d ordering violations or duplicates across the archive replay hand-off", violations)
		}

		// Restart: a fresh deployment over the same backend recovers the
		// archive index and serves the exact archived ranges — including
		// to a late joiner that was never alive when the data was.
		d2 := core.New(core.Config{
			Secret:    []byte("e23-restart"),
			Dispatch:  dispatch.Options{Mode: dispatch.ModeAsync, QueueCapacity: 2 * backlogPer},
			Orphanage: orphOpts,
			Store:     opts,
		})
		d2.Start()
		var restartServed int64
		for _, id := range streams {
			first, ok := d2.Store().FirstSeq(id)
			if !ok || first != want[id].first {
				return nil, fmt.Errorf("E23: restart serves stream %v from %d (ok=%v), want %d", id, first, ok, want[id].first)
			}
			c := &lateJoiner{name: fmt.Sprintf("restart-%v", id)}
			_, replayed, err := d2.SubscribeWithReplay(c, id, 0)
			if err != nil {
				return nil, err
			}
			if int64(replayed) != want[id].count {
				return nil, fmt.Errorf("E23: restart replayed %d for stream %v, want the %d archived", replayed, id, want[id].count)
			}
			if c.violations > 0 {
				return nil, fmt.Errorf("E23: %d ordering violations replaying stream %v after restart", c.violations, id)
			}
			restartServed += int64(replayed)
		}
		d2.Stop()

		t.AddRow(publishers, m, total, fmt.Sprintf("%.1f", 100*archFrac),
			replayedTotal.Load(),
			float64(catchupNanos.Load())/float64(m)/1e6,
			float64(readAfter-readBefore)/float64(replayedTotal.Load()),
			violations, restartServed)
	}
	t.Notes = append(t.Notes,
		"history per stream runs ≥10× the in-memory window; the rest lives only in the archive tier (async spill, 1 B cold budget)",
		"read amp: archive entries decoded ÷ deliveries replayed during the storm — near 1.0 means replay reads each archived block about once",
		"restart served: a second deployment over the same backend recovers the manifest and replays the identical archived ranges, order-checked",
		"violations counts duplicates or inversions across the archive→cold→hot→live hand-off — enforced 0")
	return t, nil
}

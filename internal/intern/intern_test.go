package intern

import (
	"fmt"
	"sync"
	"testing"
	"unsafe"
)

// same reports whether two strings share a backing pointer.
func same(a, b string) bool {
	return unsafe.StringData(a) == unsafe.StringData(b)
}

func TestCanonicalPointer(t *testing.T) {
	a := String("rx-" + fmt.Sprint(1)) // defeat constant folding
	b := String("rx-" + fmt.Sprint(1))
	if a != b || !same(a, b) {
		t.Fatalf("two String calls returned distinct backings")
	}
	c := Bytes([]byte("rx-1"))
	if !same(a, c) {
		t.Fatalf("Bytes did not return the canonical string")
	}
	if String("") != "" || Bytes(nil) != "" {
		t.Fatalf("empty forms must pass through")
	}
}

func TestBytesZeroAllocWhenInterned(t *testing.T) {
	b := []byte("rx-warm")
	Bytes(b)
	allocs := testing.AllocsPerRun(100, func() {
		if Bytes(b) == "" {
			t.Fatal("lost interned string")
		}
	})
	if allocs != 0 {
		t.Fatalf("interned Bytes lookup allocates %.1f/op, want 0", allocs)
	}
}

// TestConcurrentConverge hammers the copy-on-write publish path from
// many goroutines (run under -race) and checks every caller of the same
// spelling converges on one canonical pointer.
func TestConcurrentConverge(t *testing.T) {
	const goroutines, names = 8, 32
	out := make([][]string, goroutines)
	var wg sync.WaitGroup
	for g := range out {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out[g] = make([]string, names)
			for i := 0; i < names; i++ {
				out[g][i] = String(fmt.Sprintf("conv-%d", i))
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < names; i++ {
		for g := 1; g < goroutines; g++ {
			if !same(out[0][i], out[g][i]) {
				t.Fatalf("goroutines disagree on canonical conv-%d", i)
			}
		}
	}
}

// Package intern provides a process-wide append-only string intern
// table so identity strings that recur per message — receiver names,
// above all — are stored once and shared by every plane that holds
// them.
//
// At a million sensors every retained Delivery carries a receiver-name
// string header; without interning, decode paths that rebuild those
// names from bytes (the store's cold-block codec) would give each copy
// its own backing array. The table maps any spelling of a name to one
// canonical string, so a deployment's small fixed receiver set costs
// its bytes exactly once no matter how many deliveries reference it.
//
// The deployment's identity vocabulary is tiny and stops growing after
// start-up, which picks the design: a copy-on-write map behind an
// atomic pointer. Readers are lock-free — one atomic load and one map
// index, no allocation for the []byte form — and only the first
// occurrence of a new name takes the writer lock to publish a fresh
// copy of the table. The table is append-only and process-lived;
// nothing is ever evicted, which is exactly right for identities and
// exactly wrong for payloads, so callers must not feed it unbounded
// data.
package intern

import (
	"sync"
	"sync/atomic"
)

// table is the current canonical map. It is immutable once published:
// internSlow replaces the whole map under mu rather than mutating it,
// so readers need no lock and no happens-before beyond the atomic load.
var table atomic.Pointer[map[string]string]

// mu serialises writers (first occurrence of a new string only).
var mu sync.Mutex

func init() {
	m := make(map[string]string)
	table.Store(&m)
}

// String returns the canonical copy of s, installing s itself if it is
// the first spelling seen. The fast path is one atomic load and one map
// lookup.
func String(s string) string {
	if s == "" {
		return ""
	}
	if c, ok := (*table.Load())[s]; ok {
		return c
	}
	return internSlow(s)
}

// Bytes returns the canonical string for b. When b is already interned
// the lookup allocates nothing: the compiler recognises the
// map-index-by-converted-bytes form and skips the string copy.
func Bytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if c, ok := (*table.Load())[string(b)]; ok {
		return c
	}
	return internSlow(string(b))
}

// internSlow publishes s under the writer lock, re-checking first: two
// racing writers must converge on a single canonical pointer.
func internSlow(s string) string {
	mu.Lock()
	defer mu.Unlock()
	cur := *table.Load()
	if c, ok := cur[s]; ok {
		return c
	}
	next := make(map[string]string, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[s] = s
	table.Store(&next)
	return s
}

// Len reports how many distinct strings are interned. Diagnostic only.
func Len() int {
	return len(*table.Load())
}

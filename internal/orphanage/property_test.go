package orphanage

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Property: Claim returns the most recent messages in arrival order, with
// length min(seen, capacity), for any burst size and capacity.
func TestClaimOrderProperty(t *testing.T) {
	f := func(burstRaw, capRaw uint8) bool {
		burst := int(burstRaw)%200 + 1
		capacity := int(capRaw)%50 + 1
		o := New(Options{PerStreamCapacity: capacity})
		id := wire.MustStreamID(1, 0)
		for i := 0; i < burst; i++ {
			o.Consume(filtering.Delivery{
				Msg: wire.Message{Stream: id, Seq: wire.Seq(i)},
				At:  epoch.Add(time.Duration(i) * time.Second),
			})
		}
		backlog, ok := o.Claim(id)
		if !ok {
			return false
		}
		wantLen := burst
		if wantLen > capacity {
			wantLen = capacity
		}
		if len(backlog) != wantLen {
			return false
		}
		// Newest messages retained, ascending sequence order.
		first := burst - wantLen
		for i, d := range backlog {
			if d.Msg.Seq != wire.Seq(first+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the orphanage never holds more than MaxStreams streams and
// never more than MaxStreams × PerStreamCapacity messages, for any
// interleaving of streams.
func TestBoundsProperty(t *testing.T) {
	f := func(sensorIDs []uint8) bool {
		const maxStreams, perStream = 5, 7
		o := New(Options{MaxStreams: maxStreams, PerStreamCapacity: perStream})
		for i, raw := range sensorIDs {
			id := wire.MustStreamID(wire.SensorID(raw), 0)
			o.Consume(filtering.Delivery{
				Msg: wire.Message{Stream: id, Seq: wire.Seq(i)},
				At:  epoch.Add(time.Duration(i) * time.Millisecond),
			})
			st := o.Stats()
			if st.StreamsHeld > maxStreams || st.MessagesHeld > maxStreams*perStream {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

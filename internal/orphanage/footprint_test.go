package orphanage

import (
	"testing"
	"unsafe"
)

// TestOrphanStreamFootprint pins the per-stream view size: one of these
// per unclaimed stream held. 88 bytes is the packed layout with the
// narrow fields at the tail; a careless field addition reopens padding
// holes silently.
func TestOrphanStreamFootprint(t *testing.T) {
	if got := unsafe.Sizeof(orphanStream{}); got > 88 {
		t.Fatalf("orphanStream is %d bytes, budget 88 — repack before growing it", got)
	}
}

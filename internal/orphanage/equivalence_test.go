package orphanage

import (
	"bytes"
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// legacyOrphanage is the pre-store implementation — per-stream FIFO
// backlog slices plus the silence heap — kept verbatim as the behavioural
// reference: the store-backed Orphanage must produce the same claims,
// the same infos and the same eviction order.
type legacyOrphanage struct {
	opts    Options
	streams map[wire.StreamID]*legacyStream
	silence legacyHeap
	stats   Stats
}

type legacyStream struct {
	id        wire.StreamID
	buf       []filtering.Delivery
	bytes     int64
	seen      int64
	firstSeen time.Time
	lastSeen  time.Time
	heapIdx   int
}

type legacyHeap []*legacyStream

func (h legacyHeap) Len() int           { return len(h) }
func (h legacyHeap) Less(i, j int) bool { return h[i].lastSeen.Before(h[j].lastSeen) }
func (h legacyHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *legacyHeap) Push(x any) {
	st := x.(*legacyStream)
	st.heapIdx = len(*h)
	*h = append(*h, st)
}
func (h *legacyHeap) Pop() any {
	old := *h
	n := len(old)
	st := old[n-1]
	old[n-1] = nil
	st.heapIdx = -1
	*h = old[:n-1]
	return st
}

func newLegacy(opts Options) *legacyOrphanage {
	return &legacyOrphanage{
		opts:    withDefaults(opts),
		streams: make(map[wire.StreamID]*legacyStream),
	}
}

func (o *legacyOrphanage) consume(d filtering.Delivery) {
	o.stats.TotalSeen++
	st, ok := o.streams[d.Msg.Stream]
	if !ok {
		if len(o.streams) >= o.opts.MaxStreams {
			o.evictStalest()
		}
		st = &legacyStream{id: d.Msg.Stream, firstSeen: d.At, lastSeen: d.At}
		o.streams[d.Msg.Stream] = st
		heap.Push(&o.silence, st)
	}
	st.seen++
	st.lastSeen = d.At
	heap.Fix(&o.silence, st.heapIdx)
	if len(st.buf) >= o.opts.PerStreamCapacity {
		o.stats.MessagesDropped++
		st.bytes -= int64(len(st.buf[0].Msg.Payload))
		st.buf = st.buf[1:]
	}
	st.buf = append(st.buf, d)
	st.bytes += int64(len(d.Msg.Payload))
}

func (o *legacyOrphanage) evictStalest() {
	if len(o.silence) == 0 {
		return
	}
	st := heap.Pop(&o.silence).(*legacyStream)
	delete(o.streams, st.id)
	o.stats.StreamsEvicted++
}

func (o *legacyOrphanage) claim(id wire.StreamID) ([]filtering.Delivery, bool) {
	st, ok := o.streams[id]
	if !ok {
		return nil, false
	}
	delete(o.streams, id)
	heap.Remove(&o.silence, st.heapIdx)
	o.stats.Claims++
	return st.buf, true
}

func (o *legacyOrphanage) evictBefore(cutoff time.Time) int {
	n := 0
	for len(o.silence) > 0 && o.silence[0].lastSeen.Before(cutoff) {
		o.evictStalest()
		n++
	}
	return n
}

func (o *legacyOrphanage) info(id wire.StreamID) (Info, bool) {
	st, ok := o.streams[id]
	if !ok {
		return Info{}, false
	}
	info := Info{
		Stream: id, Seen: st.seen, Buffered: len(st.buf), Bytes: st.bytes,
		FirstSeen: st.firstSeen, LastSeen: st.lastSeen,
	}
	if st.seen >= 2 {
		if span := st.lastSeen.Sub(st.firstSeen).Seconds(); span > 0 {
			info.Rate = float64(st.seen-1) / span
		}
	}
	return info, true
}

func (o *legacyOrphanage) snapshot() Stats {
	s := o.stats
	s.StreamsHeld = len(o.streams)
	for _, st := range o.streams {
		s.MessagesHeld += len(st.buf)
	}
	return s
}

// TestStoreBackedOrphanageMatchesLegacyProperty drives the store-backed
// Orphanage and the legacy buffer-based implementation with identical
// randomized workloads — consumes across many streams (ascending
// per-stream wire seqs, random payloads and timestamps), claims of held
// and unheld streams, and age sweeps — and demands identical claims
// (message-for-message), infos, stats and eviction victims throughout.
func TestStoreBackedOrphanageMatchesLegacyProperty(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		opts := Options{
			PerStreamCapacity: []int{3, 8, 40}[trial%3],
			MaxStreams:        []int{4, 12}[trial%2],
		}
		o := New(opts)
		ref := newLegacy(opts)

		nextSeq := map[wire.StreamID]int{}
		now := epoch
		for step := 0; step < 600; step++ {
			now = now.Add(time.Duration(rng.Intn(900)+1) * time.Millisecond)
			id := wire.MustStreamID(wire.SensorID(rng.Intn(20)+1), 0)
			switch k := rng.Intn(12); {
			case k < 8:
				payload := make([]byte, rng.Intn(16))
				for i := range payload {
					payload[i] = byte(rng.Intn(256))
				}
				d := del(id, wire.Seq(nextSeq[id]), now, payload)
				nextSeq[id]++
				o.Consume(d)
				ref.consume(d)
			case k < 10:
				got, gotOK := o.Claim(id)
				want, wantOK := ref.claim(id)
				if gotOK != wantOK {
					t.Fatalf("trial %d step %d: Claim(%v) ok=%v, legacy %v", trial, step, id, gotOK, wantOK)
				}
				if err := sameBacklog(got, want); err != nil {
					t.Fatalf("trial %d step %d: Claim(%v): %v", trial, step, id, err)
				}
			default:
				cutoff := now.Add(-time.Duration(rng.Intn(5000)) * time.Millisecond)
				if got, want := o.EvictBefore(cutoff), ref.evictBefore(cutoff); got != want {
					t.Fatalf("trial %d step %d: EvictBefore evicted %d, legacy %d", trial, step, got, want)
				}
			}

			// Every step: aggregate stats and per-stream infos must agree.
			got, want := o.Stats(), ref.snapshot()
			if got != want {
				t.Fatalf("trial %d step %d: stats %+v, legacy %+v", trial, step, got, want)
			}
			gotInfo, gotOK := o.StreamInfo(id)
			wantInfo, wantOK := ref.info(id)
			if gotOK != wantOK || gotInfo != wantInfo {
				t.Fatalf("trial %d step %d: info(%v) %+v/%v, legacy %+v/%v",
					trial, step, id, gotInfo, gotOK, wantInfo, wantOK)
			}
		}

		// Drain: every remaining stream claims identically.
		for _, info := range o.Streams() {
			got, _ := o.Claim(info.Stream)
			want, _ := ref.claim(info.Stream)
			if err := sameBacklog(got, want); err != nil {
				t.Fatalf("trial %d drain %v: %v", trial, info.Stream, err)
			}
		}
	}
}

func sameBacklog(got, want []filtering.Delivery) error {
	if len(got) != len(want) {
		return fmt.Errorf("backlog length %d, legacy %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Msg.Stream != w.Msg.Stream || g.Msg.Seq != w.Msg.Seq ||
			!g.At.Equal(w.At) || !bytes.Equal(g.Msg.Payload, w.Msg.Payload) {
			return fmt.Errorf("entry %d: got seq %d at %v, legacy seq %d at %v",
				i, g.Msg.Seq, g.At, w.Msg.Seq, w.At)
		}
	}
	return nil
}

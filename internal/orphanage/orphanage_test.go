package orphanage

import (
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

func del(stream wire.StreamID, seq wire.Seq, at time.Time, payload []byte) filtering.Delivery {
	return filtering.Delivery{
		Msg: wire.Message{Stream: stream, Seq: seq, Payload: payload},
		At:  at,
	}
}

func TestConsumeAndClaim(t *testing.T) {
	o := New(Options{})
	id := wire.MustStreamID(7, 1)
	for i := 0; i < 5; i++ {
		o.Consume(del(id, wire.Seq(i), epoch.Add(time.Duration(i)*time.Second), []byte{byte(i)}))
	}
	backlog, ok := o.Claim(id)
	if !ok {
		t.Fatal("Claim reported !ok")
	}
	if len(backlog) != 5 {
		t.Fatalf("backlog = %d, want 5", len(backlog))
	}
	for i, d := range backlog {
		if d.Msg.Seq != wire.Seq(i) {
			t.Fatalf("backlog order wrong at %d: %d", i, d.Msg.Seq)
		}
	}
	// Claim removes the stream.
	if _, ok := o.Claim(id); ok {
		t.Fatal("second Claim should report !ok")
	}
	if st := o.Stats(); st.Claims != 1 || st.StreamsHeld != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPerStreamCapacityDropsOldest(t *testing.T) {
	o := New(Options{PerStreamCapacity: 3})
	id := wire.MustStreamID(1, 0)
	for i := 0; i < 10; i++ {
		o.Consume(del(id, wire.Seq(i), epoch, nil))
	}
	backlog, _ := o.Claim(id)
	if len(backlog) != 3 {
		t.Fatalf("backlog = %d, want 3", len(backlog))
	}
	if backlog[0].Msg.Seq != 7 || backlog[2].Msg.Seq != 9 {
		t.Fatalf("kept %v..%v, want 7..9 (newest)", backlog[0].Msg.Seq, backlog[2].Msg.Seq)
	}
	if st := o.Stats(); st.MessagesDropped != 7 {
		t.Fatalf("dropped = %d, want 7", st.MessagesDropped)
	}
}

func TestMaxStreamsEvictsStalest(t *testing.T) {
	o := New(Options{MaxStreams: 2})
	a := wire.MustStreamID(1, 0)
	b := wire.MustStreamID(2, 0)
	c := wire.MustStreamID(3, 0)
	o.Consume(del(a, 0, epoch, nil))                    // a last seen t0
	o.Consume(del(b, 0, epoch.Add(time.Second), nil))   // b last seen t1
	o.Consume(del(c, 0, epoch.Add(2*time.Second), nil)) // forces eviction of a
	if _, ok := o.StreamInfo(a); ok {
		t.Fatal("stalest stream not evicted")
	}
	if _, ok := o.StreamInfo(b); !ok {
		t.Fatal("wrong stream evicted")
	}
	if st := o.Stats(); st.StreamsEvicted != 1 || st.StreamsHeld != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAnalysisInfo(t *testing.T) {
	o := New(Options{})
	id := wire.MustStreamID(4, 2)
	// 11 messages, one per second: rate = 1 msg/s.
	for i := 0; i <= 10; i++ {
		o.Consume(del(id, wire.Seq(i), epoch.Add(time.Duration(i)*time.Second), []byte("abcd")))
	}
	info, ok := o.StreamInfo(id)
	if !ok {
		t.Fatal("StreamInfo !ok")
	}
	if info.Seen != 11 || info.Buffered != 11 || info.Bytes != 44 {
		t.Fatalf("info = %+v", info)
	}
	if info.Rate < 0.99 || info.Rate > 1.01 {
		t.Fatalf("rate = %v, want ≈1", info.Rate)
	}
	if !info.FirstSeen.Equal(epoch) || !info.LastSeen.Equal(epoch.Add(10*time.Second)) {
		t.Fatalf("first/last = %v/%v", info.FirstSeen, info.LastSeen)
	}
}

func TestRateUndefinedForSingleMessage(t *testing.T) {
	o := New(Options{})
	id := wire.MustStreamID(4, 2)
	o.Consume(del(id, 0, epoch, nil))
	info, _ := o.StreamInfo(id)
	if info.Rate != 0 {
		t.Fatalf("rate = %v, want 0", info.Rate)
	}
}

func TestStreamsSorted(t *testing.T) {
	o := New(Options{})
	o.Consume(del(wire.MustStreamID(5, 0), 0, epoch, nil))
	o.Consume(del(wire.MustStreamID(1, 0), 0, epoch, nil))
	o.Consume(del(wire.MustStreamID(3, 0), 0, epoch, nil))
	infos := o.Streams()
	if len(infos) != 3 {
		t.Fatalf("streams = %d", len(infos))
	}
	for i := 1; i < len(infos); i++ {
		if infos[i].Stream < infos[i-1].Stream {
			t.Fatal("Streams not sorted")
		}
	}
}

func TestEvictBefore(t *testing.T) {
	o := New(Options{})
	old := wire.MustStreamID(1, 0)
	fresh := wire.MustStreamID(2, 0)
	o.Consume(del(old, 0, epoch, nil))
	o.Consume(del(fresh, 0, epoch.Add(time.Hour), nil))
	if n := o.EvictBefore(epoch.Add(30 * time.Minute)); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if _, ok := o.StreamInfo(old); ok {
		t.Fatal("old stream survived eviction")
	}
	if _, ok := o.StreamInfo(fresh); !ok {
		t.Fatal("fresh stream evicted")
	}
}

func TestNameForDispatcherIntegration(t *testing.T) {
	o := New(Options{})
	if o.Name() != "orphanage" {
		t.Fatalf("Name = %q", o.Name())
	}
}

func TestStatsAggregate(t *testing.T) {
	o := New(Options{})
	o.Consume(del(wire.MustStreamID(1, 0), 0, epoch, []byte("xy")))
	o.Consume(del(wire.MustStreamID(1, 0), 1, epoch, []byte("zw")))
	o.Consume(del(wire.MustStreamID(2, 0), 0, epoch, nil))
	st := o.Stats()
	if st.StreamsHeld != 2 || st.MessagesHeld != 3 || st.TotalSeen != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// Package orphanage implements the Orphanage of §4.2: “a default consumer
// process which receives un-configured data. There, data messages are
// analysed and potentially stored.”
//
// The Orphanage buffers a bounded backlog per unclaimed stream, keeps
// arrival statistics (the analysis a policy layer can act on), and hands
// the backlog over atomically when a late subscriber finally claims the
// stream — so data produced before any consumer existed is not lost.
package orphanage

import (
	"container/heap"
	"sort"
	"sync"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Defaults for Options.
const (
	DefaultPerStreamCapacity = 128
	DefaultMaxStreams        = 1024
)

// Options configures an Orphanage. The zero value uses the defaults above
// with no age-based eviction.
type Options struct {
	// PerStreamCapacity bounds the buffered backlog per stream; the oldest
	// messages are discarded first.
	PerStreamCapacity int
	// MaxStreams bounds the number of simultaneously held streams; the
	// stream silent the longest is evicted first.
	MaxStreams int
}

// Info describes one orphaned stream (the Orphanage's analysis output).
type Info struct {
	Stream    wire.StreamID
	Seen      int64 // total messages observed
	Buffered  int   // messages currently held
	Bytes     int64 // payload bytes currently held
	FirstSeen time.Time
	LastSeen  time.Time
	// Rate is the observed mean message rate in messages/second, or 0
	// when fewer than two messages have been seen.
	Rate float64
}

// Stats is an aggregate snapshot.
type Stats struct {
	StreamsHeld     int
	MessagesHeld    int
	TotalSeen       int64
	MessagesDropped int64 // discarded by per-stream capacity
	StreamsEvicted  int64 // discarded by MaxStreams pressure
	Claims          int64
}

type orphanStream struct {
	id        wire.StreamID
	buf       []filtering.Delivery // FIFO backlog
	bytes     int64
	seen      int64
	firstSeen time.Time
	lastSeen  time.Time
	heapIdx   int // position in the silence heap
}

// silenceHeap orders held streams by lastSeen (oldest-silent first), so
// MaxStreams eviction pops its victim in O(log n) instead of scanning
// every held stream.
type silenceHeap []*orphanStream

func (h silenceHeap) Len() int           { return len(h) }
func (h silenceHeap) Less(i, j int) bool { return h[i].lastSeen.Before(h[j].lastSeen) }
func (h silenceHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *silenceHeap) Push(x any) {
	st := x.(*orphanStream)
	st.heapIdx = len(*h)
	*h = append(*h, st)
}
func (h *silenceHeap) Pop() any {
	old := *h
	n := len(old)
	st := old[n-1]
	old[n-1] = nil
	st.heapIdx = -1
	*h = old[:n-1]
	return st
}

// Orphanage is the default consumer for unclaimed data.
type Orphanage struct {
	opts Options

	mu      sync.Mutex
	streams map[wire.StreamID]*orphanStream
	silence silenceHeap // same streams, keyed by lastSeen

	totalSeen metrics.Counter
	dropped   metrics.Counter
	evicted   metrics.Counter
	claims    metrics.Counter
}

// New creates an Orphanage.
func New(opts Options) *Orphanage {
	if opts.PerStreamCapacity <= 0 {
		opts.PerStreamCapacity = DefaultPerStreamCapacity
	}
	if opts.MaxStreams <= 0 {
		opts.MaxStreams = DefaultMaxStreams
	}
	return &Orphanage{
		opts:    opts,
		streams: make(map[wire.StreamID]*orphanStream),
	}
}

// Name implements dispatch.Consumer.
func (o *Orphanage) Name() string { return "orphanage" }

// Consume stores one unclaimed delivery. It is the Dispatcher's orphan
// sink and also satisfies dispatch.Consumer.
func (o *Orphanage) Consume(d filtering.Delivery) {
	o.totalSeen.Inc()
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.streams[d.Msg.Stream]
	if !ok {
		if len(o.streams) >= o.opts.MaxStreams {
			o.evictStalestLocked()
		}
		st = &orphanStream{id: d.Msg.Stream, firstSeen: d.At, lastSeen: d.At}
		o.streams[d.Msg.Stream] = st
		heap.Push(&o.silence, st)
	}
	st.seen++
	st.lastSeen = d.At
	heap.Fix(&o.silence, st.heapIdx)
	if len(st.buf) >= o.opts.PerStreamCapacity {
		o.dropped.Inc()
		st.bytes -= int64(len(st.buf[0].Msg.Payload))
		st.buf = st.buf[1:]
	}
	st.buf = append(st.buf, d)
	st.bytes += int64(len(d.Msg.Payload))
}

// evictStalestLocked drops the stream silent the longest: the root of
// the silence heap, in O(log n).
func (o *Orphanage) evictStalestLocked() {
	if len(o.silence) == 0 {
		return
	}
	st := heap.Pop(&o.silence).(*orphanStream)
	delete(o.streams, st.id)
	o.evicted.Inc()
}

// Claim atomically removes and returns the buffered backlog for a stream,
// oldest first. A late subscriber calls this (via the middleware facade)
// to recover data produced before it subscribed. ok is false when the
// stream is not held.
func (o *Orphanage) Claim(id wire.StreamID) (backlog []filtering.Delivery, ok bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.streams[id]
	if !ok {
		return nil, false
	}
	delete(o.streams, id)
	heap.Remove(&o.silence, st.heapIdx)
	o.claims.Inc()
	return st.buf, true
}

// Streams lists every held stream with its analysis, sorted by id.
func (o *Orphanage) Streams() []Info {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]Info, 0, len(o.streams))
	for id, st := range o.streams {
		out = append(out, o.infoLocked(id, st))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stream < out[j].Stream })
	return out
}

// StreamInfo returns the analysis for one stream.
func (o *Orphanage) StreamInfo(id wire.StreamID) (Info, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.streams[id]
	if !ok {
		return Info{}, false
	}
	return o.infoLocked(id, st), true
}

func (o *Orphanage) infoLocked(id wire.StreamID, st *orphanStream) Info {
	info := Info{
		Stream:    id,
		Seen:      st.seen,
		Buffered:  len(st.buf),
		Bytes:     st.bytes,
		FirstSeen: st.firstSeen,
		LastSeen:  st.lastSeen,
	}
	if st.seen >= 2 {
		if span := st.lastSeen.Sub(st.firstSeen).Seconds(); span > 0 {
			info.Rate = float64(st.seen-1) / span
		}
	}
	return info
}

// EvictBefore discards every stream whose last message predates cutoff,
// returning the number evicted. A deployment policy typically calls this
// periodically. The silence heap yields victims oldest first, so the
// call costs O(evicted · log n) rather than a scan of every held stream.
func (o *Orphanage) EvictBefore(cutoff time.Time) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for len(o.silence) > 0 && o.silence[0].lastSeen.Before(cutoff) {
		o.evictStalestLocked()
		n++
	}
	return n
}

// Stats returns an aggregate snapshot.
func (o *Orphanage) Stats() Stats {
	o.mu.Lock()
	held := 0
	for _, st := range o.streams {
		held += len(st.buf)
	}
	streams := len(o.streams)
	o.mu.Unlock()
	return Stats{
		StreamsHeld:     streams,
		MessagesHeld:    held,
		TotalSeen:       o.totalSeen.Value(),
		MessagesDropped: o.dropped.Value(),
		StreamsEvicted:  o.evicted.Value(),
		Claims:          o.claims.Value(),
	}
}

// Package orphanage implements the Orphanage of §4.2: “a default consumer
// process which receives un-configured data. There, data messages are
// analysed and potentially stored.”
//
// The Orphanage no longer buffers payloads itself: retained deliveries
// live in the Stream Store (internal/store), and the Orphanage is a thin
// policy view over it — per unclaimed stream it keeps arrival statistics
// (the analysis a policy layer can act on) and a backlog window expressed
// as a pair of store sequence cursors. Claiming a stream is a cursor
// hand-off: the window is read out of the store (or, via ClaimCursor,
// handed to the replay machinery without materialising anything) and the
// view is dropped; there is no second buffer to copy or invalidate. The
// silence min-heap drives stream-level eviction (MaxStreams pressure and
// EvictBefore age sweeps), and an evicted stream's retained data is
// forgotten in the store — the Orphanage is the garbage collector for
// unclaimed-stream retention.
package orphanage

import (
	"container/heap"
	"sort"
	"sync"
	"time"

	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/store"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Defaults for Options.
const (
	DefaultPerStreamCapacity = 128
	DefaultMaxStreams        = 1024
)

// Options configures an Orphanage. The zero value uses the defaults above
// with no age-based eviction.
type Options struct {
	// PerStreamCapacity bounds the backlog window per stream; the oldest
	// messages fall out of the window first. The backing store must
	// retain at least this many messages per stream for claims to return
	// the full window (the deployment floors the store's count bound to
	// guarantee it; a store-level byte or age bound can still shrink a
	// window, and Info/Stats report the shrunken truth).
	PerStreamCapacity int
	// MaxStreams bounds the number of simultaneously held streams; the
	// stream silent the longest is evicted first.
	MaxStreams int
}

// Info describes one orphaned stream (the Orphanage's analysis output).
type Info struct {
	Stream    wire.StreamID
	Seen      int64 // total messages observed
	Buffered  int   // messages currently in the backlog window
	Bytes     int64 // payload bytes currently in the window
	FirstSeen time.Time
	LastSeen  time.Time
	// Rate is the observed mean message rate in messages/second, or 0
	// when fewer than two messages have been seen.
	Rate float64
}

// Stats is an aggregate snapshot.
type Stats struct {
	StreamsHeld     int
	MessagesHeld    int
	TotalSeen       int64
	MessagesDropped int64 // fell out of a per-stream backlog window
	StreamsEvicted  int64 // discarded by MaxStreams pressure or EvictBefore
	Claims          int64
}

// orphanStream is the per-stream view: one allocation per unclaimed
// stream held, so the narrow fields — the 32-bit id, the window count
// and the heap index, none of which can approach 2³¹ under the
// MaxStreams/PerStreamCapacity bounds — pack together at the tail
// rather than each paying a word. The footprint test pins the ceiling.
type orphanStream struct {
	firstExt  uint64 // store seq of the oldest message in the window
	lastExt   uint64 // store seq of the newest message in the window
	seen      int64
	firstSeen time.Time
	lastSeen  time.Time
	id        wire.StreamID
	// buffered is the policy count driving window advancement; what the
	// window actually holds is read back from the store (Info, Stats),
	// so store-side byte/age eviction inside the window can never make
	// the view overstate a claim.
	buffered int32
	heapIdx  int32 // position in the silence heap
}

// silenceHeap orders held streams by lastSeen (oldest-silent first), so
// MaxStreams eviction pops its victim in O(log n) instead of scanning
// every held stream.
type silenceHeap []*orphanStream

func (h silenceHeap) Len() int           { return len(h) }
func (h silenceHeap) Less(i, j int) bool { return h[i].lastSeen.Before(h[j].lastSeen) }
func (h silenceHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = int32(i)
	h[j].heapIdx = int32(j)
}
func (h *silenceHeap) Push(x any) {
	st := x.(*orphanStream)
	st.heapIdx = int32(len(*h))
	*h = append(*h, st)
}
func (h *silenceHeap) Pop() any {
	old := *h
	n := len(old)
	st := old[n-1]
	old[n-1] = nil
	st.heapIdx = -1
	*h = old[:n-1]
	return st
}

// Orphanage is the default consumer for unclaimed data.
type Orphanage struct {
	opts Options
	st   *store.Store
	// owns marks a private store created by New for standalone use: the
	// Orphanage then also drives the store's per-message eviction
	// (EvictTo as the window advances, eviction after a materialised
	// claim). A shared deployment store keeps data beyond the orphan
	// window so late subscribers can replay more than the backlog.
	owns bool

	mu      sync.Mutex
	streams map[wire.StreamID]*orphanStream
	silence silenceHeap // same streams, keyed by lastSeen

	totalSeen metrics.Counter
	dropped   metrics.Counter
	evicted   metrics.Counter
	claims    metrics.Counter
}

// New creates a standalone Orphanage backed by a private Stream Store
// sized to the per-stream capacity. Deployments share the middleware-wide
// store instead via NewWithStore.
func New(opts Options) *Orphanage {
	opts = withDefaults(opts)
	st := store.New(store.Options{
		Shards: 1,
		// Twice the window: claims hand off cursors before eviction
		// catches up, so the store's own count bound must never fire
		// inside a live window.
		MaxMessages: 2 * opts.PerStreamCapacity,
	})
	o := newWith(opts, st)
	o.owns = true
	return o
}

// NewWithStore creates an Orphanage as a policy view over st. Deliveries
// handed to Consume must already carry their store sequence
// (Delivery.StoreSeq), as the core deployment's store tee guarantees.
func NewWithStore(opts Options, st *store.Store) *Orphanage {
	return newWith(withDefaults(opts), st)
}

func withDefaults(opts Options) Options {
	if opts.PerStreamCapacity <= 0 {
		opts.PerStreamCapacity = DefaultPerStreamCapacity
	}
	if opts.MaxStreams <= 0 {
		opts.MaxStreams = DefaultMaxStreams
	}
	return opts
}

func newWith(opts Options, st *store.Store) *Orphanage {
	return &Orphanage{
		opts:    opts,
		st:      st,
		streams: make(map[wire.StreamID]*orphanStream),
	}
}

// Name implements dispatch.Consumer.
func (o *Orphanage) Name() string { return "orphanage" }

// Consume notes one unclaimed delivery and advances the stream's backlog
// window. It is the Dispatcher's orphan sink and also satisfies
// dispatch.Consumer. Deliveries without a store sequence (standalone use,
// outside a deployment's store tee) are appended to the Orphanage's own
// store first.
func (o *Orphanage) Consume(d filtering.Delivery) {
	if d.StoreSeq == 0 {
		d.StoreSeq = o.st.Append(d)
	}
	o.totalSeen.Inc()
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.streams[d.Msg.Stream]
	if !ok {
		if len(o.streams) >= o.opts.MaxStreams {
			o.evictStalestLocked()
		}
		st = &orphanStream{
			id:       d.Msg.Stream,
			firstExt: d.StoreSeq, lastExt: d.StoreSeq,
			firstSeen: d.At, lastSeen: d.At,
		}
		o.streams[d.Msg.Stream] = st
		heap.Push(&o.silence, st)
	}
	st.seen++
	st.lastSeen = d.At
	heap.Fix(&o.silence, int(st.heapIdx))
	if d.StoreSeq < st.firstExt {
		st.firstExt = d.StoreSeq // late out-of-order fill extends the window down
	}
	if d.StoreSeq > st.lastExt {
		st.lastExt = d.StoreSeq
	}
	st.buffered++
	if int(st.buffered) > o.opts.PerStreamCapacity {
		// Advance the window past the oldest retained message.
		o.dropped.Inc()
		if seq, _, ok := o.st.OldestSince(st.id, st.firstExt); ok {
			st.firstExt = seq + 1
		}
		st.buffered--
		if o.owns {
			o.st.EvictTo(st.id, st.firstExt)
		}
	}
}

// evictStalestLocked drops the stream silent the longest — the root of
// the silence heap, in O(log n) — and forgets its retained data.
func (o *Orphanage) evictStalestLocked() {
	if len(o.silence) == 0 {
		return
	}
	st := heap.Pop(&o.silence).(*orphanStream)
	delete(o.streams, st.id)
	o.evicted.Inc()
	o.st.Forget(st.id)
}

// Claim atomically removes the stream's view and returns the backlog
// window materialised from the store, oldest first. A late subscriber
// calls this (via the middleware facade) to recover data produced before
// it subscribed. ok is false when the stream is not held.
func (o *Orphanage) Claim(id wire.StreamID) (backlog []filtering.Delivery, ok bool) {
	from, to, _, ok := o.claimCursor(id)
	if !ok {
		return nil, false
	}
	backlog = o.st.Range(id, from, to)
	if o.owns {
		o.st.EvictTo(id, to+1)
	}
	return backlog, true
}

// ClaimCursor removes the stream's view and hands back its backlog window
// as store-sequence cursors — the zero-copy claim the replay machinery
// uses: nothing is materialised, the caller replays [from, to] straight
// out of the store. n is the window's message count; ok is false when the
// stream is not held.
func (o *Orphanage) ClaimCursor(id wire.StreamID) (from, to uint64, n int, ok bool) {
	return o.claimCursor(id)
}

// PeekCursor is ClaimCursor without the hand-off: the view stays held.
// Callers that must not lose the backlog on a downstream failure peek
// first and claim only once the hand-off has succeeded.
func (o *Orphanage) PeekCursor(id wire.StreamID) (from, to uint64, n int, ok bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.streams[id]
	if !ok {
		return 0, 0, 0, false
	}
	return st.firstExt, st.lastExt, int(st.buffered), true
}

func (o *Orphanage) claimCursor(id wire.StreamID) (from, to uint64, n int, ok bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.streams[id]
	if !ok {
		return 0, 0, 0, false
	}
	delete(o.streams, id)
	heap.Remove(&o.silence, int(st.heapIdx))
	o.claims.Inc()
	return st.firstExt, st.lastExt, int(st.buffered), true
}

// Streams lists every held stream with its analysis, sorted by id. The
// store is queried for each stream's window after the view lock is
// released, so a big analysis dump never stalls the orphan data path.
func (o *Orphanage) Streams() []Info {
	o.mu.Lock()
	out := make([]Info, 0, len(o.streams))
	windows := make([]seqWindow, 0, len(o.streams))
	for id, st := range o.streams {
		out = append(out, o.infoLocked(id, st))
		windows = append(windows, seqWindow{st.firstExt, st.lastExt})
	}
	o.mu.Unlock()
	for i := range out {
		out[i].Buffered, out[i].Bytes = o.st.WindowStats(out[i].Stream, windows[i].from, windows[i].to)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stream < out[j].Stream })
	return out
}

type seqWindow struct{ from, to uint64 }

// StreamInfo returns the analysis for one stream.
func (o *Orphanage) StreamInfo(id wire.StreamID) (Info, bool) {
	o.mu.Lock()
	st, ok := o.streams[id]
	if !ok {
		o.mu.Unlock()
		return Info{}, false
	}
	info := o.infoLocked(id, st)
	win := seqWindow{st.firstExt, st.lastExt}
	o.mu.Unlock()
	info.Buffered, info.Bytes = o.st.WindowStats(id, win.from, win.to)
	return info, true
}

// infoLocked fills everything except Buffered/Bytes, which the callers
// read back from the store outside the view lock — they are then exactly
// what a Claim would materialise, even when a store-level byte or age
// bound has evicted inside the window.
func (o *Orphanage) infoLocked(id wire.StreamID, st *orphanStream) Info {
	info := Info{
		Stream:    id,
		Seen:      st.seen,
		FirstSeen: st.firstSeen,
		LastSeen:  st.lastSeen,
	}
	if st.seen >= 2 {
		if span := st.lastSeen.Sub(st.firstSeen).Seconds(); span > 0 {
			info.Rate = float64(st.seen-1) / span
		}
	}
	return info
}

// EvictBefore discards every stream whose last message predates cutoff,
// returning the number evicted. A deployment policy typically calls this
// periodically: the silence heap yields victims oldest first, so the call
// costs O(evicted · log n) rather than a scan of every held stream, and
// each victim's retained data is forgotten in the store — the heap-driven
// sweep is what ages unclaimed data out of the retention layer.
func (o *Orphanage) EvictBefore(cutoff time.Time) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for len(o.silence) > 0 && o.silence[0].lastSeen.Before(cutoff) {
		o.evictStalestLocked()
		n++
	}
	return n
}

// Stats returns an aggregate snapshot. MessagesHeld sums the policy
// window counts in O(held streams) — under a store-level byte or age
// bound it can overstate what claims will materialise; the per-stream
// Info views report the store-read truth.
func (o *Orphanage) Stats() Stats {
	o.mu.Lock()
	held := 0
	for _, st := range o.streams {
		held += int(st.buffered)
	}
	streams := len(o.streams)
	o.mu.Unlock()
	return Stats{
		StreamsHeld:     streams,
		MessagesHeld:    held,
		TotalSeen:       o.totalSeen.Value(),
		MessagesDropped: o.dropped.Value(),
		StreamsEvicted:  o.evicted.Value(),
		Claims:          o.claims.Value(),
	}
}

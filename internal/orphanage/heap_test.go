package orphanage

import (
	"math/rand"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/wire"
)

// Eviction-order regression for the silence min-heap: under MaxStreams
// pressure the victim is always the stream silent the longest, with
// touches (which re-heap the stream towards the back) and claims (which
// remove arbitrary heap positions) interleaved.
func TestEvictionOrderFollowsSilence(t *testing.T) {
	o := New(Options{MaxStreams: 3})
	s := func(n wire.SensorID) wire.StreamID { return wire.MustStreamID(n, 0) }
	at := func(sec int) time.Time { return epoch.Add(time.Duration(sec) * time.Second) }

	o.Consume(del(s(1), 0, at(0), nil))
	o.Consume(del(s(2), 0, at(1), nil))
	o.Consume(del(s(3), 0, at(2), nil))
	o.Consume(del(s(1), 1, at(3), nil)) // touch 1: now 2 is the oldest-silent

	o.Consume(del(s(4), 0, at(4), nil)) // evicts 2, not 1
	if _, held := o.StreamInfo(s(2)); held {
		t.Fatal("stream 2 should have been evicted (oldest silent)")
	}
	if _, held := o.StreamInfo(s(1)); !held {
		t.Fatal("stream 1 was touched and must survive the eviction")
	}

	if _, ok := o.Claim(s(3)); !ok { // remove a middle heap position
		t.Fatal("claim of held stream failed")
	}
	o.Consume(del(s(5), 0, at(5), nil)) // fills the claimed slot, no eviction
	o.Consume(del(s(6), 0, at(6), nil)) // evicts 1 (silent since t3)
	if _, held := o.StreamInfo(s(1)); held {
		t.Fatal("stream 1 should now be the eviction victim")
	}
	for _, want := range []wire.SensorID{4, 5, 6} {
		if _, held := o.StreamInfo(s(want)); !held {
			t.Fatalf("stream %d should be held", want)
		}
	}
	if st := o.Stats(); st.StreamsEvicted != 2 || st.Claims != 1 || st.StreamsHeld != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// Differential check: the heap-based eviction picks the same victims as a
// brute-force oldest-silent scan over random workloads of consumes,
// claims and age-based sweeps.
func TestEvictionHeapMatchesScanProperty(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		const maxStreams = 8
		o := New(Options{MaxStreams: maxStreams})
		ref := map[wire.StreamID]time.Time{} // stream → lastSeen, maintained brute-force
		now := epoch
		for step := 0; step < 400; step++ {
			now = now.Add(time.Duration(rng.Intn(1000)+1) * time.Millisecond)
			id := wire.MustStreamID(wire.SensorID(rng.Intn(24)+1), 0)
			switch k := rng.Intn(10); {
			case k < 7:
				if _, held := ref[id]; !held && len(ref) >= maxStreams {
					// Brute-force victim: oldest lastSeen.
					var victim wire.StreamID
					first := true
					var oldest time.Time
					for vid, seen := range ref {
						if first || seen.Before(oldest) {
							victim, oldest, first = vid, seen, false
						}
					}
					delete(ref, victim)
				}
				ref[id] = now
				o.Consume(del(id, wire.Seq(step), now, nil))
			case k < 8:
				_, refHeld := ref[id]
				if _, held := o.Claim(id); held != refHeld {
					t.Fatalf("trial %d step %d: Claim(%v) held=%v, reference %v", trial, step, id, held, refHeld)
				}
				delete(ref, id)
			default:
				cutoff := now.Add(-time.Duration(rng.Intn(4000)) * time.Millisecond)
				want := 0
				for vid, seen := range ref {
					if seen.Before(cutoff) {
						delete(ref, vid)
						want++
					}
				}
				if got := o.EvictBefore(cutoff); got != want {
					t.Fatalf("trial %d step %d: EvictBefore evicted %d, reference %d", trial, step, got, want)
				}
			}
			// The held stream sets must agree exactly.
			if st := o.Stats(); st.StreamsHeld != len(ref) {
				t.Fatalf("trial %d step %d: holds %d streams, reference %d", trial, step, st.StreamsHeld, len(ref))
			}
			for vid := range ref {
				if _, held := o.StreamInfo(vid); !held {
					t.Fatalf("trial %d step %d: stream %v missing", trial, step, vid)
				}
			}
		}
	}
}

// Package coordinator implements the Super Coordinator of §4.2: “suitably
// sophisticated consumer processes may forward state-change details to the
// Super Coordinator, which eventually amasses a global view of these
// consumers. In response to (or in anticipation of) global consumer
// states, the Super Coordinator may invoke policy changes in the strategy
// used by the Resource Manager.”
//
// Trusted consumers register a state machine annotated with the resource
// demands each state implies. On every state report the coordinator
// replaces the consumer's standing demands; a predictive policy
// additionally learns empirical transition probabilities and dwell times
// and pre-arms the demands of the anticipated next state shortly before
// the transition is expected — “reducing the effect of latencies arising
// from message-handling” (§6), which experiment E8 quantifies.
package coordinator

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/garnet-middleware/garnet/internal/metrics"
	"github.com/garnet-middleware/garnet/internal/resource"
	"github.com/garnet-middleware/garnet/internal/sim"
)

// DemandSink receives the demand changes the coordinator decides on. The
// deployment core implements it with resource.Manager.Apply, which fans
// the replacement out per ledger shard — the mutation work runs under
// the shard-local locks of the touched shards only, so a state report
// never serialises behind unrelated owners' demands — and actuates the
// changed decisions.
type DemandSink interface {
	// Apply replaces owner's standing demands with demands.
	Apply(owner string, demands []resource.Demand)
}

// DemandSinkFunc adapts a function to DemandSink.
type DemandSinkFunc func(owner string, demands []resource.Demand)

// Apply implements DemandSink.
func (f DemandSinkFunc) Apply(owner string, demands []resource.Demand) { f(owner, demands) }

// Mode selects reactive or predictive coordination.
type Mode int

const (
	// ModeReactive applies a state's demands when the state is reported.
	ModeReactive Mode = iota + 1
	// ModePredictive additionally pre-arms the predicted next state's
	// demands ahead of the expected transition.
	ModePredictive
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeReactive:
		return "reactive"
	case ModePredictive:
		return "predictive"
	default:
		return "mode(?)"
	}
}

// Options configures a Coordinator.
type Options struct {
	Mode Mode
	// Horizon is how far before the predicted transition the next state's
	// demands are pre-armed. Default 2s.
	Horizon time.Duration
	// MinConfidence gates predictions: transitions observed with lower
	// empirical probability are not acted on. Default 0.6.
	MinConfidence float64
	// MinObservations is how many departures from a state must be seen
	// before predictions from it are trusted. Default 2.
	MinObservations int
	// PolicySelector, when set, is consulted with the global state census
	// after every report; a non-zero result is pushed through SetPolicy —
	// the §4.2 hook by which the coordinator “may invoke policy changes in
	// the strategy used by the Resource Manager”.
	PolicySelector func(census map[string]int) resource.Policy
	// SetPolicy receives policy changes decided by PolicySelector; the
	// deployment core wires it to the Resource Manager.
	SetPolicy func(resource.Policy)
}

// Prediction is the coordinator's expectation for a consumer's next state.
type Prediction struct {
	Consumer   string
	Current    string
	Next       string
	Confidence float64       // empirical transition probability
	ExpectedIn time.Duration // expected remaining dwell from now
}

// ConsumerState is one entry of the global view.
type ConsumerState struct {
	Consumer string
	State    string
	Since    time.Time
	Reports  int64
}

// Stats is a snapshot of coordinator counters.
type Stats struct {
	Reports        int64
	Applications   int64 // demand-set applications pushed to the sink
	Predictions    int64 // predictions acted on (pre-arms scheduled)
	PreArms        int64 // pre-arms that fired
	Hits           int64 // predicted state matched the next report
	Misses         int64 // predicted state did not match
	PolicyChanges  int64 // resource-manager strategy switches invoked
	RegisteredApps int
}

// Coordinator is the Super Coordinator.
type Coordinator struct {
	clock sim.Clock
	sink  DemandSink
	opts  Options

	mu         sync.Mutex
	consumers  map[string]*consumerTrack
	lastPolicy resource.Policy

	reports       metrics.Counter
	applies       metrics.Counter
	predictions   metrics.Counter
	prearms       metrics.Counter
	hits          metrics.Counter
	misses        metrics.Counter
	policyChanges metrics.Counter
}

type consumerTrack struct {
	demands map[string][]resource.Demand // state → demands
	state   string
	since   time.Time
	reports int64

	// Empirical model.
	transitions map[string]map[string]int // from → to → count
	dwellTotal  map[string]time.Duration  // from → summed dwell
	dwellCount  map[string]int

	// Predictive machinery.
	prearmTimer   sim.Timer
	predictedNext string
	prearmedState string // state whose demands are currently applied (may lead the report)
}

// Coordinator errors.
var (
	ErrUnknownConsumer = errors.New("coordinator: unknown consumer")
	ErrUnknownState    = errors.New("coordinator: state not in registered model")
	ErrAlreadyExists   = errors.New("coordinator: consumer already registered")
)

// New creates a Coordinator pushing demand changes into sink.
// New panics on a nil sink (programming error).
func New(clock sim.Clock, sink DemandSink, opts Options) *Coordinator {
	if sink == nil {
		panic("coordinator: nil sink")
	}
	if opts.Mode == 0 {
		opts.Mode = ModeReactive
	}
	if opts.Horizon <= 0 {
		opts.Horizon = 2 * time.Second
	}
	if opts.MinConfidence <= 0 {
		opts.MinConfidence = 0.6
	}
	if opts.MinObservations <= 0 {
		opts.MinObservations = 2
	}
	return &Coordinator{
		clock:     clock,
		sink:      sink,
		opts:      opts,
		consumers: make(map[string]*consumerTrack),
	}
}

// Register teaches the coordinator a trusted consumer's state machine:
// for each state, the standing resource demands that state implies. States
// absent from the map imply no demands.
func (c *Coordinator) Register(name string, demandsByState map[string][]resource.Demand) error {
	if name == "" {
		return fmt.Errorf("%w: empty name", ErrUnknownConsumer)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.consumers[name]; dup {
		return fmt.Errorf("%w: %q", ErrAlreadyExists, name)
	}
	demands := make(map[string][]resource.Demand, len(demandsByState))
	for state, ds := range demandsByState {
		cp := make([]resource.Demand, len(ds))
		copy(cp, ds)
		demands[state] = cp
	}
	c.consumers[name] = &consumerTrack{
		demands:     demands,
		transitions: make(map[string]map[string]int),
		dwellTotal:  make(map[string]time.Duration),
		dwellCount:  make(map[string]int),
	}
	return nil
}

// ReportState records a consumer's state change, updates the global view
// and the empirical model, applies the new state's demands (unless a
// correct prediction already pre-armed them), and — in predictive mode —
// schedules pre-arming for the anticipated next state.
func (c *Coordinator) ReportState(name, state string) error {
	c.mu.Lock()
	tr, ok := c.consumers[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownConsumer, name)
	}
	if _, known := tr.demands[state]; !known {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q for %q", ErrUnknownState, state, name)
	}
	now := c.clock.Now()
	c.reports.Inc()
	tr.reports++

	// Update the empirical model from the previous state.
	if tr.state != "" && tr.state != state {
		m := tr.transitions[tr.state]
		if m == nil {
			m = make(map[string]int)
			tr.transitions[tr.state] = m
		}
		m[state]++
		tr.dwellTotal[tr.state] += now.Sub(tr.since)
		tr.dwellCount[tr.state]++
	}

	// Score an outstanding prediction.
	if tr.predictedNext != "" && tr.state != state {
		if tr.predictedNext == state {
			c.hits.Inc()
		} else {
			c.misses.Inc()
		}
		tr.predictedNext = ""
	}
	if tr.prearmTimer != nil {
		tr.prearmTimer.Stop()
		tr.prearmTimer = nil
	}

	prev := tr.state
	tr.state = state
	tr.since = now

	// Apply the state's demands unless a pre-arm already did.
	needApply := tr.prearmedState != state
	tr.prearmedState = state
	demands := tr.demands[state]

	var prediction *Prediction
	if c.opts.Mode == ModePredictive && prev != state {
		if p, ok := c.predictLocked(name, tr); ok {
			prediction = &p
		}
	}
	// Census-driven strategy changes for the Resource Manager (§4.2).
	var newPolicy resource.Policy
	if c.opts.PolicySelector != nil && c.opts.SetPolicy != nil {
		census := make(map[string]int)
		for _, t := range c.consumers {
			if t.state != "" {
				census[t.state]++
			}
		}
		if p := c.opts.PolicySelector(census); p != 0 && p != c.lastPolicy {
			c.lastPolicy = p
			newPolicy = p
		}
	}
	c.mu.Unlock()

	if needApply {
		c.applies.Inc()
		c.sink.Apply(ownerName(name), demands)
	}
	if newPolicy != 0 {
		c.policyChanges.Inc()
		c.opts.SetPolicy(newPolicy)
	}
	if prediction != nil {
		c.schedulePrearm(name, *prediction)
	}
	return nil
}

// ownerName is the ledger identity under which the coordinator manages a
// consumer's demands.
func ownerName(consumer string) string { return "sc/" + consumer }

// predictLocked builds a prediction for the consumer's next state from the
// empirical model, if it clears the confidence and observation gates.
func (c *Coordinator) predictLocked(_ string, tr *consumerTrack) (Prediction, bool) {
	trans := tr.transitions[tr.state]
	total := 0
	for _, n := range trans {
		total += n
	}
	if total < c.opts.MinObservations {
		return Prediction{}, false
	}
	// Most frequent successor; ties resolved lexicographically for
	// determinism.
	succs := make([]string, 0, len(trans))
	for s := range trans {
		succs = append(succs, s)
	}
	sort.Strings(succs)
	best, bestN := "", -1
	for _, s := range succs {
		if trans[s] > bestN {
			best, bestN = s, trans[s]
		}
	}
	conf := float64(bestN) / float64(total)
	if conf < c.opts.MinConfidence {
		return Prediction{}, false
	}
	meanDwell := tr.dwellTotal[tr.state] / time.Duration(tr.dwellCount[tr.state])
	return Prediction{
		Current:    tr.state,
		Next:       best,
		Confidence: conf,
		ExpectedIn: meanDwell,
	}, true
}

// schedulePrearm arms a timer to apply the predicted next state's demands
// Horizon before the expected transition.
func (c *Coordinator) schedulePrearm(name string, p Prediction) {
	delay := p.ExpectedIn - c.opts.Horizon
	if delay < 0 {
		delay = 0
	}
	c.mu.Lock()
	tr, ok := c.consumers[name]
	if !ok {
		c.mu.Unlock()
		return
	}
	tr.predictedNext = p.Next
	c.predictions.Inc()
	tr.prearmTimer = c.clock.AfterFunc(delay, func() {
		c.mu.Lock()
		tr, ok := c.consumers[name]
		if !ok || tr.predictedNext != p.Next || tr.state != p.Current {
			c.mu.Unlock()
			return
		}
		tr.prearmedState = p.Next
		demands := tr.demands[p.Next]
		c.mu.Unlock()
		c.prearms.Inc()
		c.applies.Inc()
		c.sink.Apply(ownerName(name), demands)
	})
	c.mu.Unlock()
}

// PredictNext exposes the current prediction for a consumer (for
// diagnostics and the experiment harness).
func (c *Coordinator) PredictNext(name string) (Prediction, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tr, ok := c.consumers[name]
	if !ok || tr.state == "" {
		return Prediction{}, false
	}
	p, ok := c.predictLocked(name, tr)
	if !ok {
		return Prediction{}, false
	}
	p.Consumer = name
	// Remaining dwell from now.
	elapsed := c.clock.Now().Sub(tr.since)
	p.ExpectedIn -= elapsed
	if p.ExpectedIn < 0 {
		p.ExpectedIn = 0
	}
	return p, true
}

// View returns the global consumer-state view, sorted by consumer name.
func (c *Coordinator) View() []ConsumerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ConsumerState, 0, len(c.consumers))
	for name, tr := range c.consumers {
		out = append(out, ConsumerState{Consumer: name, State: tr.state, Since: tr.since, Reports: tr.reports})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Consumer < out[j].Consumer })
	return out
}

// Census counts consumers per state — the aggregate the paper's
// policy-driven infrastructure reasons over.
func (c *Coordinator) Census() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int)
	for _, tr := range c.consumers {
		if tr.state != "" {
			out[tr.state]++
		}
	}
	return out
}

// Deregister removes a consumer, cancels any pre-arm, and clears its
// demands through the sink.
func (c *Coordinator) Deregister(name string) bool {
	c.mu.Lock()
	tr, ok := c.consumers[name]
	if ok {
		if tr.prearmTimer != nil {
			tr.prearmTimer.Stop()
		}
		delete(c.consumers, name)
	}
	c.mu.Unlock()
	if ok {
		c.sink.Apply(ownerName(name), nil)
	}
	return ok
}

// Stats returns a snapshot of coordinator counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	registered := len(c.consumers)
	c.mu.Unlock()
	return Stats{
		Reports:        c.reports.Value(),
		Applications:   c.applies.Value(),
		Predictions:    c.predictions.Value(),
		PreArms:        c.prearms.Value(),
		Hits:           c.hits.Value(),
		Misses:         c.misses.Value(),
		PolicyChanges:  c.policyChanges.Value(),
		RegisteredApps: registered,
	}
}

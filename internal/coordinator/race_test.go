package coordinator

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/resource"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// TestPrearmRacesReportState pins the predictive pre-arm path against
// concurrent state reports: one goroutine advances the virtual clock in
// small steps (firing pre-arm timers) while another keeps reporting state
// changes, so a timer routinely fires while ReportState is mid-flight.
// Run with -race. The invariant under any interleaving: the demand sink
// only ever receives one of the registered states' demand sets, and the
// coordinator's counters balance (every scored prediction is a hit or a
// miss, pre-arms never exceed predictions).
func TestPrearmRacesReportState(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	target := wire.MustStreamID(1, 0)
	rateOf := map[string]uint32{"calm": 100, "storm": 5000}

	var mu sync.Mutex
	applies := 0
	sink := DemandSinkFunc(func(owner string, demands []resource.Demand) {
		mu.Lock()
		defer mu.Unlock()
		applies++
		if owner != "sc/app" {
			t.Errorf("owner = %q", owner)
		}
		if len(demands) != 1 || rateOf[demandState(demands[0])] == 0 {
			t.Errorf("unexpected demand set %+v", demands)
		}
	})
	c := New(clock, sink, Options{
		Mode:            ModePredictive,
		Horizon:         40 * time.Millisecond,
		MinConfidence:   0.5,
		MinObservations: 1,
	})
	model := map[string][]resource.Demand{}
	for state, rate := range rateOf {
		model[state] = []resource.Demand{{Target: target, Op: wire.OpSetRate, Value: rate}}
	}
	if err := c.Register("app", model); err != nil {
		t.Fatal(err)
	}

	// Teach the model a calm↔storm oscillation with a short dwell, so a
	// prediction (and a pre-arm timer) is outstanding almost always.
	states := []string{"calm", "storm"}
	for i := 0; i < 6; i++ {
		if err := c.ReportState("app", states[i%2]); err != nil {
			t.Fatal(err)
		}
		clock.Advance(50 * time.Millisecond)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // clock driver: fires pre-arm timers mid-report
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 400; i++ {
			clock.Advance(time.Duration(rng.Intn(20)+1) * time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() { // reporter: races the firing timers
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 400; i++ {
			if err := c.ReportState("app", states[rng.Intn(2)]); err != nil {
				t.Errorf("report: %v", err)
				return
			}
			if i%16 == 0 {
				_, _ = c.PredictNext("app")
				_ = c.Census()
			}
		}
	}()
	wg.Wait()

	st := c.Stats()
	if st.Hits+st.Misses > st.Predictions {
		t.Fatalf("scored %d predictions but only %d were made: %+v", st.Hits+st.Misses, st.Predictions, st)
	}
	if st.PreArms > st.Predictions {
		t.Fatalf("pre-arms %d exceed predictions %d: %+v", st.PreArms, st.Predictions, st)
	}
	mu.Lock()
	defer mu.Unlock()
	if int64(applies) != st.Applications {
		t.Fatalf("sink saw %d applications, coordinator counted %d", applies, st.Applications)
	}
}

// demandState recovers which registered state a demand set belongs to.
func demandState(d resource.Demand) string {
	switch d.Value {
	case 100:
		return "calm"
	case 5000:
		return "storm"
	default:
		return ""
	}
}

package coordinator

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/resource"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

type sinkRecorder struct {
	mu      sync.Mutex
	applies []applyCall
}

type applyCall struct {
	owner   string
	demands []resource.Demand
	at      time.Time
}

func (s *sinkRecorder) record(clock sim.Clock) DemandSink {
	return DemandSinkFunc(func(owner string, demands []resource.Demand) {
		s.mu.Lock()
		s.applies = append(s.applies, applyCall{owner: owner, demands: demands, at: clock.Now()})
		s.mu.Unlock()
	})
}

func (s *sinkRecorder) last() (applyCall, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.applies) == 0 {
		return applyCall{}, false
	}
	return s.applies[len(s.applies)-1], true
}

func (s *sinkRecorder) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.applies)
}

var (
	calmDemands  = []resource.Demand{{Target: wire.MustStreamID(1, 0), Op: wire.OpSetRate, Value: 100}}
	floodDemands = []resource.Demand{{Target: wire.MustStreamID(1, 0), Op: wire.OpSetRate, Value: 5000}}
)

func waterModel() map[string][]resource.Demand {
	return map[string][]resource.Demand{
		"calm":   calmDemands,
		"rising": {{Target: wire.MustStreamID(1, 0), Op: wire.OpSetRate, Value: 1000}},
		"flood":  floodDemands,
	}
}

func TestRegisterValidation(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	c := New(clock, DemandSinkFunc(func(string, []resource.Demand) {}), Options{})
	if err := c.Register("", nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := c.Register("app", waterModel()); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("app", waterModel()); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("duplicate register: %v", err)
	}
}

func TestReportStateAppliesDemands(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var rec sinkRecorder
	c := New(clock, rec.record(clock), Options{})
	if err := c.Register("app", waterModel()); err != nil {
		t.Fatal(err)
	}
	if err := c.ReportState("app", "calm"); err != nil {
		t.Fatal(err)
	}
	call, ok := rec.last()
	if !ok {
		t.Fatal("no demands applied")
	}
	if call.owner != "sc/app" {
		t.Fatalf("owner = %q", call.owner)
	}
	if len(call.demands) != 1 || call.demands[0].Value != 100 {
		t.Fatalf("demands = %+v", call.demands)
	}
}

func TestReportStateErrors(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	c := New(clock, DemandSinkFunc(func(string, []resource.Demand) {}), Options{})
	if err := c.ReportState("ghost", "calm"); !errors.Is(err, ErrUnknownConsumer) {
		t.Fatalf("err = %v", err)
	}
	if err := c.Register("app", waterModel()); err != nil {
		t.Fatal(err)
	}
	if err := c.ReportState("app", "tsunami"); !errors.Is(err, ErrUnknownState) {
		t.Fatalf("err = %v", err)
	}
}

func TestGlobalViewAndCensus(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	c := New(clock, DemandSinkFunc(func(string, []resource.Demand) {}), Options{})
	for _, name := range []string{"b-app", "a-app", "c-app"} {
		if err := c.Register(name, waterModel()); err != nil {
			t.Fatal(err)
		}
	}
	mustReport(t, c, "a-app", "calm")
	mustReport(t, c, "b-app", "calm")
	mustReport(t, c, "c-app", "flood")

	view := c.View()
	if len(view) != 3 || view[0].Consumer != "a-app" {
		t.Fatalf("view = %+v", view)
	}
	census := c.Census()
	if census["calm"] != 2 || census["flood"] != 1 {
		t.Fatalf("census = %v", census)
	}
}

func mustReport(t *testing.T, c *Coordinator, name, state string) {
	t.Helper()
	if err := c.ReportState(name, state); err != nil {
		t.Fatal(err)
	}
}

// drive walks a consumer through the cycle calm→rising→flood→calm with
// fixed dwells, n times.
func drive(t *testing.T, clock *sim.VirtualClock, c *Coordinator, name string, n int, dwell time.Duration) {
	t.Helper()
	for i := 0; i < n; i++ {
		mustReport(t, c, name, "calm")
		clock.Advance(dwell)
		mustReport(t, c, name, "rising")
		clock.Advance(dwell)
		mustReport(t, c, name, "flood")
		clock.Advance(dwell)
	}
}

func TestPredictNextLearnsCycle(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	c := New(clock, DemandSinkFunc(func(string, []resource.Demand) {}), Options{Mode: ModePredictive, MinObservations: 2})
	if err := c.Register("app", waterModel()); err != nil {
		t.Fatal(err)
	}
	drive(t, clock, c, "app", 3, 10*time.Second)
	mustReport(t, c, "app", "calm")

	p, ok := c.PredictNext("app")
	if !ok {
		t.Fatal("no prediction after 3 full cycles")
	}
	if p.Next != "rising" || p.Confidence < 0.99 {
		t.Fatalf("prediction = %+v", p)
	}
	// Expected dwell is 10s; called right after entry.
	if p.ExpectedIn < 9*time.Second || p.ExpectedIn > 10*time.Second {
		t.Fatalf("ExpectedIn = %v", p.ExpectedIn)
	}
}

func TestPredictionNeedsObservations(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	c := New(clock, DemandSinkFunc(func(string, []resource.Demand) {}), Options{Mode: ModePredictive, MinObservations: 3})
	if err := c.Register("app", waterModel()); err != nil {
		t.Fatal(err)
	}
	mustReport(t, c, "app", "calm")
	clock.Advance(time.Second)
	mustReport(t, c, "app", "rising")
	clock.Advance(time.Second)
	mustReport(t, c, "app", "calm")
	if _, ok := c.PredictNext("app"); ok {
		t.Fatal("prediction produced below MinObservations")
	}
}

func TestPredictivePreArmsBeforeTransition(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var rec sinkRecorder
	c := New(clock, rec.record(clock), Options{
		Mode:            ModePredictive,
		Horizon:         2 * time.Second,
		MinObservations: 2,
	})
	if err := c.Register("app", waterModel()); err != nil {
		t.Fatal(err)
	}
	drive(t, clock, c, "app", 2, 10*time.Second)

	// Enter calm; the model says rising follows after ~10s. The pre-arm
	// should fire at ~8s (horizon 2s), applying rising's demands early.
	mustReport(t, c, "app", "calm")
	before := rec.count()
	clock.Advance(8100 * time.Millisecond)
	call, ok := rec.last()
	if !ok || rec.count() <= before {
		t.Fatal("no pre-arm fired")
	}
	if !call.at.After(epoch) || len(call.demands) != 1 || call.demands[0].Value != 1000 {
		t.Fatalf("pre-arm call = %+v", call)
	}
	firedAt := call.at.Sub(clock.Now().Add(-8100 * time.Millisecond))
	if firedAt < 7*time.Second || firedAt > 9*time.Second {
		t.Fatalf("pre-arm fired at +%v, want ≈8s", firedAt)
	}

	// When the real transition arrives, demands are already in place: the
	// report itself must not re-apply.
	countBefore := rec.count()
	clock.Advance(1900 * time.Millisecond)
	mustReport(t, c, "app", "rising")
	if rec.count() != countBefore {
		t.Fatalf("correct prediction still re-applied demands (%d→%d)", countBefore, rec.count())
	}
	st := c.Stats()
	if st.PreArms == 0 || st.Hits == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMispredictionCorrected(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var rec sinkRecorder
	c := New(clock, rec.record(clock), Options{
		Mode:            ModePredictive,
		Horizon:         time.Second,
		MinObservations: 2,
	})
	model := waterModel()
	model["dry"] = nil
	if err := c.Register("app", model); err != nil {
		t.Fatal(err)
	}
	drive(t, clock, c, "app", 2, 5*time.Second)

	mustReport(t, c, "app", "calm")
	clock.Advance(4500 * time.Millisecond) // pre-arm for "rising" fired
	// Actual transition goes to "dry" instead.
	mustReport(t, c, "app", "dry")
	call, ok := rec.last()
	if !ok {
		t.Fatal("no applies")
	}
	if len(call.demands) != 0 {
		t.Fatalf("after misprediction the real state's demands must apply: %+v", call.demands)
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReactiveModeNeverPreArms(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var rec sinkRecorder
	c := New(clock, rec.record(clock), Options{Mode: ModeReactive})
	if err := c.Register("app", waterModel()); err != nil {
		t.Fatal(err)
	}
	drive(t, clock, c, "app", 3, 5*time.Second)
	mustReport(t, c, "app", "calm")
	n := rec.count()
	clock.Advance(time.Minute)
	if rec.count() != n {
		t.Fatal("reactive mode applied demands without a report")
	}
	if st := c.Stats(); st.Predictions != 0 || st.PreArms != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRepeatedSameStateReportIsIdempotent(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var rec sinkRecorder
	c := New(clock, rec.record(clock), Options{})
	if err := c.Register("app", waterModel()); err != nil {
		t.Fatal(err)
	}
	mustReport(t, c, "app", "calm")
	n := rec.count()
	mustReport(t, c, "app", "calm")
	if rec.count() != n {
		t.Fatal("same-state report re-applied demands")
	}
}

func TestDeregisterClearsDemands(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var rec sinkRecorder
	c := New(clock, rec.record(clock), Options{})
	if err := c.Register("app", waterModel()); err != nil {
		t.Fatal(err)
	}
	mustReport(t, c, "app", "flood")
	if !c.Deregister("app") {
		t.Fatal("Deregister returned false")
	}
	if c.Deregister("app") {
		t.Fatal("second Deregister returned true")
	}
	call, _ := rec.last()
	if len(call.demands) != 0 {
		t.Fatalf("final apply should clear demands: %+v", call.demands)
	}
	if err := c.ReportState("app", "calm"); !errors.Is(err, ErrUnknownConsumer) {
		t.Fatalf("report after deregister: %v", err)
	}
}

func TestPredictionAccuracyTracking(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	c := New(clock, DemandSinkFunc(func(string, []resource.Demand) {}), Options{
		Mode:            ModePredictive,
		MinObservations: 2,
		Horizon:         time.Second,
	})
	if err := c.Register("app", waterModel()); err != nil {
		t.Fatal(err)
	}
	drive(t, clock, c, "app", 4, 5*time.Second)
	st := c.Stats()
	if st.Hits == 0 {
		t.Fatalf("deterministic cycle produced no hits: %+v", st)
	}
	if st.Misses != 0 {
		t.Fatalf("deterministic cycle produced misses: %+v", st)
	}
}

func TestCensusDrivenPolicyChanges(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	var applied []resource.Policy
	c := New(clock, DemandSinkFunc(func(string, []resource.Demand) {}), Options{
		PolicySelector: func(census map[string]int) resource.Policy {
			if census["flood"] > 0 {
				return resource.PolicyMostDemanding
			}
			return resource.PolicyLeastDemanding
		},
		SetPolicy: func(p resource.Policy) { applied = append(applied, p) },
	})
	for _, name := range []string{"a", "b"} {
		if err := c.Register(name, waterModel()); err != nil {
			t.Fatal(err)
		}
	}
	mustReport(t, c, "a", "calm")  // census calm → least-demanding
	mustReport(t, c, "b", "calm")  // unchanged → no second call
	mustReport(t, c, "a", "flood") // flood appears → most-demanding
	mustReport(t, c, "a", "calm")  // flood gone → least-demanding again

	want := []resource.Policy{
		resource.PolicyLeastDemanding,
		resource.PolicyMostDemanding,
		resource.PolicyLeastDemanding,
	}
	if len(applied) != len(want) {
		t.Fatalf("policy changes = %v, want %v", applied, want)
	}
	for i := range want {
		if applied[i] != want[i] {
			t.Fatalf("policy changes = %v, want %v", applied, want)
		}
	}
	if st := c.Stats(); st.PolicyChanges != 3 {
		t.Fatalf("PolicyChanges = %d, want 3", st.PolicyChanges)
	}
}

func TestPolicySelectorWithoutSinkIsInert(t *testing.T) {
	clock := sim.NewVirtualClock(epoch)
	c := New(clock, DemandSinkFunc(func(string, []resource.Demand) {}), Options{
		PolicySelector: func(map[string]int) resource.Policy { return resource.PolicyPriority },
	})
	if err := c.Register("a", waterModel()); err != nil {
		t.Fatal(err)
	}
	mustReport(t, c, "a", "calm")
	if st := c.Stats(); st.PolicyChanges != 0 {
		t.Fatal("selector fired without a SetPolicy sink")
	}
}

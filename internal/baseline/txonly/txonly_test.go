package txonly

import (
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/sensor"
)

func workload() Workload {
	return Workload{
		BusyPeriod:      30 * time.Second,
		IdlePeriod:      90 * time.Second,
		Cycles:          4,
		BusyRateMilliHz: 2000, // 2 Hz while interested
		IdleRateMilliHz: 100,  // 0.1 Hz keep-alive
		PayloadBytes:    16,
		Energy:          sensor.EnergyParams{TxBase: 1, TxPerByte: 0.01, PerSample: 0.1},
	}
}

func TestTransmitOnlyWastesEnergy(t *testing.T) {
	w := workload()
	fixed, err := Run(w, false)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Run(w, true)
	if err != nil {
		t.Fatal(err)
	}

	// The transmit-only arm samples at the busy rate forever.
	if fixed.WastedSamples == 0 {
		t.Fatal("transmit-only arm wasted nothing — schedule broken")
	}
	// The adaptive arm spends materially less sensor energy…
	if adaptive.SensorEnergy >= fixed.SensorEnergy*0.7 {
		t.Fatalf("adaptive energy %v not well below fixed %v", adaptive.SensorEnergy, fixed.SensorEnergy)
	}
	// …while still delivering (almost all of) the useful samples. The
	// adaptive arm loses at most the first busy window of the first cycle
	// to actuation latency.
	if adaptive.UsefulSamples < fixed.UsefulSamples*8/10 {
		t.Fatalf("adaptive useful %d too far below fixed %d", adaptive.UsefulSamples, fixed.UsefulSamples)
	}
	// Figure of merit: energy per useful sample.
	if adaptive.EnergyPerUsefulSample >= fixed.EnergyPerUsefulSample {
		t.Fatalf("energy/useful: adaptive %v, fixed %v", adaptive.EnergyPerUsefulSample, fixed.EnergyPerUsefulSample)
	}
}

func TestAccounting(t *testing.T) {
	w := workload()
	fixed, err := Run(w, false)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect channel: every sample is delivered either usefully or not.
	if fixed.UsefulSamples+fixed.WastedSamples != fixed.SamplesTaken {
		t.Fatalf("accounting: useful %d + wasted %d != taken %d",
			fixed.UsefulSamples, fixed.WastedSamples, fixed.SamplesTaken)
	}
	// 2 Hz over 4×(30+90)s = 480 s ⇒ 960 samples.
	if fixed.SamplesTaken != 960 {
		t.Fatalf("samples = %d, want 960", fixed.SamplesTaken)
	}
}

func TestModeLabels(t *testing.T) {
	w := workload()
	fixed, err := Run(w, false)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Run(w, true)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Mode != "transmit-only" || adaptive.Mode != "garnet-adaptive" {
		t.Fatalf("modes = %q, %q", fixed.Mode, adaptive.Mode)
	}
}

// Package txonly implements the transmit-only baseline motivating the
// paper's return path (§2): a deployment whose sensors cannot receive
// control messages. Consumers' interest in a stream varies over time, but
// a transmit-only field must keep sampling at the rate the most demanding
// phase requires — it cannot be told to slow down — so it burns energy
// producing samples nobody wants. With Garnet's actuation path the same
// consumers lower the rate whenever their interest lapses.
//
// Both arms run on the real middleware substrate with identical sensors,
// energy model and interest schedule.
package txonly

import (
	"time"

	"github.com/garnet-middleware/garnet/internal/core"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/field"
	"github.com/garnet-middleware/garnet/internal/filtering"
	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/resource"
	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/transmit"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Workload parameterises one comparison run.
type Workload struct {
	// BusyPeriod / IdlePeriod alternate: the consumer is interested during
	// busy windows only.
	BusyPeriod, IdlePeriod time.Duration
	Cycles                 int
	// BusyRateMilliHz is the sampling rate consumers need while
	// interested; IdleRateMilliHz is the keep-alive rate the adaptive arm
	// drops to in between.
	BusyRateMilliHz, IdleRateMilliHz uint32
	PayloadBytes                     int
	Energy                           sensor.EnergyParams
}

// Result summarises one arm.
type Result struct {
	Mode          string
	SamplesTaken  int64
	UsefulSamples int64 // deliveries during interested windows
	WastedSamples int64 // deliveries while nobody cared
	SensorEnergy  float64
	// EnergyPerUsefulSample is the figure of merit: mJ spent per sample a
	// consumer actually wanted.
	EnergyPerUsefulSample float64
}

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

// Run executes one arm. adaptive selects the Garnet return-path arm.
func Run(w Workload, adaptive bool) (Result, error) {
	clock := sim.NewVirtualClock(epoch)
	d := core.New(core.Config{Clock: clock, Secret: []byte("bench")})
	defer d.Stop()
	d.AddReceiver(receiver.Config{Name: "rx", Position: geo.Pt(0, 0), Radius: 1000})
	d.AddTransmitter(transmit.Config{Name: "tx", Position: geo.Pt(0, 0), Range: 1000})

	caps := sensor.Capability(0)
	if adaptive {
		caps = sensor.CapReceive
	}
	busyPeriod := rateToPeriod(w.BusyRateMilliHz)
	node, err := d.AddSensor(sensor.Config{
		ID:           1,
		Capabilities: caps,
		Mobility:     field.Static{P: geo.Pt(10, 0)},
		TxRange:      1000,
		Streams: []sensor.StreamConfig{{
			Index:   0,
			Sampler: sensor.SizedSampler(w.PayloadBytes),
			Period:  busyPeriod, // transmit-only fields must assume the worst case
			Enabled: true,
		}},
		Energy: w.Energy,
	})
	if err != nil {
		return Result{}, err
	}

	interested := true
	var useful, wasted int64
	gate := &dispatch.ConsumerFunc{ConsumerName: "interest", Fn: func(filtering.Delivery) {
		if interested {
			useful++
		} else {
			wasted++
		}
	}}
	if _, err := d.Dispatcher().Subscribe(gate, dispatch.Exact(wire.MustStreamID(1, 0))); err != nil {
		return Result{}, err
	}
	d.Start()

	target := wire.MustStreamID(1, 0)
	for c := 0; c < w.Cycles; c++ {
		interested = true
		if adaptive {
			if _, err := d.SubmitDemand(resource.Demand{
				Consumer: "app", Target: target, Op: wire.OpSetRate, Value: w.BusyRateMilliHz,
			}); err != nil {
				return Result{}, err
			}
		}
		clock.Advance(w.BusyPeriod)

		interested = false
		if adaptive {
			if _, err := d.SubmitDemand(resource.Demand{
				Consumer: "app", Target: target, Op: wire.OpSetRate, Value: w.IdleRateMilliHz,
			}); err != nil {
				return Result{}, err
			}
		}
		clock.Advance(w.IdlePeriod)
	}
	d.Stop()

	st := node.Stats()
	res := Result{
		Mode:          "transmit-only",
		SamplesTaken:  st.SamplesTaken,
		UsefulSamples: useful,
		WastedSamples: wasted,
		SensorEnergy:  st.EnergyUsed,
	}
	if adaptive {
		res.Mode = "garnet-adaptive"
	}
	if useful > 0 {
		res.EnergyPerUsefulSample = st.EnergyUsed / float64(useful)
	}
	return res, nil
}

func rateToPeriod(mHz uint32) time.Duration {
	return time.Duration(float64(time.Second) * 1000.0 / float64(mHz))
}

package directpoll

import (
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/sensor"
)

func workload(queries int) Workload {
	return Workload{
		Queries:      queries,
		SamplePeriod: time.Second,
		Duration:     60 * time.Second,
		PayloadBytes: 16,
		Energy:       sensor.EnergyParams{TxBase: 1, TxPerByte: 0.01},
		Seed:         1,
	}
}

func TestSharedStreamTransmissionsIndependentOfQueries(t *testing.T) {
	r1, err := SharedStream(workload(1))
	if err != nil {
		t.Fatal(err)
	}
	r16, err := SharedStream(workload(16))
	if err != nil {
		t.Fatal(err)
	}
	if r1.SensorTransmissions != r16.SensorTransmissions {
		t.Fatalf("shared arm transmissions changed with query count: %d vs %d",
			r1.SensorTransmissions, r16.SensorTransmissions)
	}
	if r1.SensorTransmissions != 60 {
		t.Fatalf("transmissions = %d, want 60 (1 Hz × 60 s)", r1.SensorTransmissions)
	}
	// But deliveries scale with queries (fan-out at the fixed network).
	if r16.ConsumerDeliveries != 16*60 {
		t.Fatalf("deliveries = %d, want 960", r16.ConsumerDeliveries)
	}
}

func TestDirectPollingScalesWithQueries(t *testing.T) {
	r4, err := DirectPolling(workload(4))
	if err != nil {
		t.Fatal(err)
	}
	if r4.SensorTransmissions != 4*60 {
		t.Fatalf("direct transmissions = %d, want 240", r4.SensorTransmissions)
	}
	if r4.ConsumerDeliveries != 4*60 {
		t.Fatalf("direct deliveries = %d, want 240", r4.ConsumerDeliveries)
	}
}

func TestSharedBeatsDirectOnSensorEnergy(t *testing.T) {
	for _, q := range []int{2, 8, 32} {
		shared, err := SharedStream(workload(q))
		if err != nil {
			t.Fatal(err)
		}
		direct, err := DirectPolling(workload(q))
		if err != nil {
			t.Fatal(err)
		}
		if shared.SensorEnergy >= direct.SensorEnergy {
			t.Fatalf("q=%d: shared energy %v not below direct %v", q, shared.SensorEnergy, direct.SensorEnergy)
		}
		// The saving factor approaches q.
		factor := direct.SensorEnergy / shared.SensorEnergy
		if factor < float64(q)*0.9 {
			t.Fatalf("q=%d: saving factor %v, want ≈%d", q, factor, q)
		}
		// Both arms deliver the same data to consumers.
		if shared.ConsumerDeliveries != direct.ConsumerDeliveries {
			t.Fatalf("q=%d: deliveries differ: %d vs %d", q, shared.ConsumerDeliveries, direct.ConsumerDeliveries)
		}
	}
}

func TestQueryCountValidation(t *testing.T) {
	if _, err := DirectPolling(workload(0)); err == nil {
		t.Error("zero queries accepted")
	}
	if _, err := DirectPolling(workload(251)); err == nil {
		t.Error("more queries than stream indices accepted")
	}
}

// Package directpoll implements the baseline behind the paper's §7
// comparison with Madden & Franklin's Fjords: queries that each access the
// sensor directly, without a shared reconstructed stream. Fjords showed
// that letting “a set of queries … operate over the same sensor stream”
// yields “significant improvements to their ability to handle simultaneous
// queries”; Garnet's Dispatching Service provides the same sharing for
// mutually-unaware consumers.
//
// Both arms run on the real middleware substrate with the same energy
// model and virtual clock:
//
//   - Direct polling: each of the N queries is served by its own private
//     sensor stream (the sensor transmits N times per sample period) —
//     the per-query sensor access Fjords replaced.
//   - Shared stream: the sensor transmits once per period; the Dispatching
//     Service fans the stream out to the N subscribed consumers.
package directpoll

import (
	"fmt"
	"time"

	"github.com/garnet-middleware/garnet/internal/consumer"
	"github.com/garnet-middleware/garnet/internal/core"
	"github.com/garnet-middleware/garnet/internal/dispatch"
	"github.com/garnet-middleware/garnet/internal/field"
	"github.com/garnet-middleware/garnet/internal/geo"
	"github.com/garnet-middleware/garnet/internal/receiver"
	"github.com/garnet-middleware/garnet/internal/sensor"
	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// Workload parameterises one comparison run.
type Workload struct {
	Queries      int           // simultaneous consumers
	SamplePeriod time.Duration // per-query data period
	Duration     time.Duration // simulated time
	PayloadBytes int
	Energy       sensor.EnergyParams
	Seed         uint64
}

// Result summarises one arm of the comparison.
type Result struct {
	Mode                string
	SensorTransmissions int64
	SensorBytes         int64
	SensorEnergy        float64 // millijoules
	ConsumerDeliveries  int64   // messages received across all queries
}

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

// run executes one arm: streams is the number of private per-query
// streams on the sensor (Queries for direct polling, 1 for shared).
func run(w Workload, shared bool) (Result, error) {
	if w.Queries < 1 || w.Queries > 250 {
		return Result{}, fmt.Errorf("directpoll: queries %d out of range", w.Queries)
	}
	clock := sim.NewVirtualClock(epoch)
	d := core.New(core.Config{Clock: clock, Secret: []byte("bench")})
	defer d.Stop()
	d.AddReceiver(receiver.Config{Name: "rx", Position: geo.Pt(0, 0), Radius: 1000})

	streams := w.Queries
	if shared {
		streams = 1
	}
	cfgs := make([]sensor.StreamConfig, 0, streams)
	for i := 0; i < streams; i++ {
		cfgs = append(cfgs, sensor.StreamConfig{
			Index:   wire.StreamIndex(i),
			Sampler: sensor.SizedSampler(w.PayloadBytes),
			Period:  w.SamplePeriod,
			Enabled: true,
		})
	}
	node, err := d.AddSensor(sensor.Config{
		ID:       1,
		Mobility: field.Static{P: geo.Pt(10, 0)},
		TxRange:  1000,
		Streams:  cfgs,
		Energy:   w.Energy,
	})
	if err != nil {
		return Result{}, err
	}

	recorders := make([]*consumer.Recorder, w.Queries)
	for q := 0; q < w.Queries; q++ {
		recorders[q] = consumer.NewRecorder(fmt.Sprintf("query-%d", q), 1)
		index := wire.StreamIndex(0)
		if !shared {
			index = wire.StreamIndex(q)
		}
		if _, err := d.Dispatcher().Subscribe(recorders[q], dispatch.Exact(wire.MustStreamID(1, index))); err != nil {
			return Result{}, err
		}
	}
	d.Start()
	clock.RunUntil(epoch.Add(w.Duration))
	d.Stop()

	st := node.Stats()
	var delivered int64
	for _, r := range recorders {
		delivered += r.Count()
	}
	mode := "direct-poll"
	if shared {
		mode = "garnet-shared"
	}
	return Result{
		Mode:                mode,
		SensorTransmissions: st.MessagesSent,
		SensorBytes:         st.BytesSent,
		SensorEnergy:        st.EnergyUsed,
		ConsumerDeliveries:  delivered,
	}, nil
}

// DirectPolling runs the per-query-access arm.
func DirectPolling(w Workload) (Result, error) { return run(w, false) }

// SharedStream runs the Garnet shared-stream arm.
func SharedStream(w Workload) (Result, error) { return run(w, true) }

package retri

import (
	"math"
	"testing"
)

func TestHeaderBytes(t *testing.T) {
	tests := []struct {
		idBits int
		want   int
	}{
		{8, 1 + 1 + 2 + 2},
		{16, 1 + 2 + 2 + 2},
		{24, 1 + 3 + 2 + 2},
	}
	for _, tt := range tests {
		if got := HeaderBytes(tt.idBits); got != tt.want {
			t.Errorf("HeaderBytes(%d) = %d, want %d", tt.idBits, got, tt.want)
		}
	}
	if got := GarnetHeaderBytes(); got != 11 {
		t.Errorf("GarnetHeaderBytes = %d, want 11 (9-byte Figure 2 header + checksum)", got)
	}
}

func TestRETRISavesHeaderBytes(t *testing.T) {
	// The whole point of RETRI: fewer header bytes than Garnet's fixed ids.
	for _, bits := range []int{8, 16, 24} {
		if HeaderBytes(bits) >= GarnetHeaderBytes() {
			t.Errorf("RETRI %d-bit header (%d B) not smaller than Garnet (%d B)",
				bits, HeaderBytes(bits), GarnetHeaderBytes())
		}
	}
	if s := HeaderSavingPercent(8, 16); s <= 0 || s >= 100 {
		t.Errorf("HeaderSavingPercent = %v", s)
	}
	// Savings shrink as payloads grow.
	if HeaderSavingPercent(8, 1024) >= HeaderSavingPercent(8, 16) {
		t.Error("saving should shrink with payload size")
	}
}

func TestAnalyticCollisionProb(t *testing.T) {
	if p := AnalyticCollisionProb(16, 1); p != 0 {
		t.Errorf("single transaction collides with itself: %v", p)
	}
	// Monotone in density, decreasing in id width.
	if AnalyticCollisionProb(8, 10) <= AnalyticCollisionProb(8, 5) {
		t.Error("not monotone in density")
	}
	if AnalyticCollisionProb(16, 10) >= AnalyticCollisionProb(8, 10) {
		t.Error("not decreasing in id width")
	}
	// Birthday sanity: 20 transactions over 8 bits collide with p≈0.52.
	if p := AnalyticCollisionProb(8, 20); p < 0.4 || p < 0 || p > 0.7 {
		t.Errorf("AnalyticCollisionProb(8, 20) = %v, want ≈0.52", p)
	}
}

func TestSimulatedMatchesAnalytic(t *testing.T) {
	for _, tt := range []struct {
		bits, concurrent int
	}{{8, 10}, {8, 20}, {16, 100}} {
		analytic := AnalyticCollisionProb(tt.bits, tt.concurrent)
		simulated := SimulateCollisionRate(7, tt.bits, tt.concurrent, 5000)
		if math.Abs(analytic-simulated) > 0.05 {
			t.Errorf("bits=%d n=%d: analytic %v vs simulated %v", tt.bits, tt.concurrent, analytic, simulated)
		}
	}
}

func TestMisattributionGrowsWithDensity(t *testing.T) {
	low := SimulateMisattribution(3, 16, 10, 10, 2000)
	high := SimulateMisattribution(3, 16, 500, 10, 200)
	if high <= low {
		t.Errorf("misattribution should grow with density: %v then %v", low, high)
	}
	// Garnet's unique 24-bit sensor ids have zero misattribution by
	// construction; RETRI's must be non-zero at high density.
	if high == 0 {
		t.Error("dense RETRI field shows no stream corruption — simulation broken")
	}
}

func TestBytesOnAir(t *testing.T) {
	if got := BytesOnAir(5, 16, 100); got != 2100 {
		t.Errorf("BytesOnAir = %d, want 2100", got)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := SimulateCollisionRate(11, 8, 20, 1000)
	b := SimulateCollisionRate(11, 8, 20, 1000)
	if a != b {
		t.Error("simulation not deterministic for same seed")
	}
}

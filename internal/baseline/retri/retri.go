// Package retri implements the baseline the paper compares against in §7:
// Elson & Estrin's Random, Ephemeral TRansaction Identifiers (RETRI,
// ICDCS-21). RETRI replaces large pre-defined sensor/stream identifier
// header fields with a small random identifier drawn fresh per
// transaction, so header cost scales “with the increasing transaction
// density and not the sheer size of the network”.
//
// The package quantifies both sides of the paper's argument:
//
//   - the bytes-on-air saving RETRI achieves over Garnet's fixed 32-bit
//     StreamID + 16-bit sequence header, and
//   - the identifier-collision probability that makes ephemeral ids
//     unsuitable for Garnet, which “depends on unique consistent stream
//     IDs” — a collision splices two sensors' messages into one stream.
package retri

import (
	"math"

	"github.com/garnet-middleware/garnet/internal/sim"
	"github.com/garnet-middleware/garnet/internal/wire"
)

// HeaderBytes returns the RETRI frame overhead for an id of idBits bits:
// one version/flags byte, the identifier, a 16-bit payload size and the
// 16-bit checksum (kept identical to Garnet's so the comparison isolates
// the identifier cost).
func HeaderBytes(idBits int) int {
	return 1 + (idBits+7)/8 + 2 + wire.ChecksumSize
}

// GarnetHeaderBytes is Garnet's per-message overhead: the 9-byte Figure 2
// header plus the checksum.
func GarnetHeaderBytes() int { return wire.HeaderSize + wire.ChecksumSize }

// AnalyticCollisionProb returns the birthday-bound probability that at
// least two of `concurrent` simultaneously active transactions share an
// idBits-bit random identifier: 1 - exp(-n(n-1) / 2^(b+1)).
func AnalyticCollisionProb(idBits, concurrent int) float64 {
	n := float64(concurrent)
	space := math.Pow(2, float64(idBits))
	return 1 - math.Exp(-n*(n-1)/(2*space))
}

// SimulateCollisionRate draws `rounds` independent sets of `concurrent`
// random idBits-bit identifiers and returns the fraction of rounds in
// which at least one collision occurred — the empirical counterpart of
// AnalyticCollisionProb.
func SimulateCollisionRate(seed uint64, idBits, concurrent, rounds int) float64 {
	rng := sim.NewRand(sim.SubSeed(seed, "retri.collisions"))
	space := uint64(1) << uint(idBits)
	collided := 0
	seen := make(map[uint64]struct{}, concurrent)
	for r := 0; r < rounds; r++ {
		clear(seen)
		hit := false
		for i := 0; i < concurrent; i++ {
			id := rng.Uint64N(space)
			if _, dup := seen[id]; dup {
				hit = true
				break
			}
			seen[id] = struct{}{}
		}
		if hit {
			collided++
		}
	}
	return float64(collided) / float64(rounds)
}

// SimulateMisattribution measures the stream-corruption consequence of
// ephemeral ids for Garnet-style stream reconstruction: `concurrent`
// sensors each transmit msgsPerSensor messages under one ephemeral id per
// sensor; any two sensors sharing an id have their streams spliced
// together. It returns the fraction of messages attributed to a stream
// that another sensor also claims.
func SimulateMisattribution(seed uint64, idBits, concurrent, msgsPerSensor, rounds int) float64 {
	rng := sim.NewRand(sim.SubSeed(seed, "retri.misattribution"))
	space := uint64(1) << uint(idBits)
	var corrupted, total int64
	owners := make(map[uint64]int, concurrent)
	for r := 0; r < rounds; r++ {
		clear(owners)
		for s := 0; s < concurrent; s++ {
			owners[rng.Uint64N(space)]++
		}
		for _, n := range owners {
			if n > 1 {
				corrupted += int64(n) * int64(msgsPerSensor)
			}
		}
		total += int64(concurrent) * int64(msgsPerSensor)
	}
	return float64(corrupted) / float64(total)
}

// BytesOnAir returns the total bytes transmitted for `messages` messages
// of payloadBytes each under the given per-message header overhead.
func BytesOnAir(headerBytes, payloadBytes int, messages int64) int64 {
	return int64(headerBytes+payloadBytes) * messages
}

// HeaderSavingPercent returns RETRI's relative header saving over Garnet
// for a given id width and payload size, in percent of total frame bytes.
func HeaderSavingPercent(idBits, payloadBytes int) float64 {
	g := float64(GarnetHeaderBytes() + payloadBytes)
	r := float64(HeaderBytes(idBits) + payloadBytes)
	return (g - r) / g * 100
}

package registry

import (
	"errors"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/garnet-middleware/garnet/internal/sim"
)

var epoch = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

func newRegistry() *Registry {
	return New([]byte("deployment-secret"), sim.NewVirtualClock(epoch))
}

func TestRegisterAndAuthenticate(t *testing.T) {
	r := newRegistry()
	tok, err := r.Register("habitat-app", PermSubscribe|PermActuate)
	if err != nil {
		t.Fatal(err)
	}
	id, err := r.Authenticate(tok)
	if err != nil {
		t.Fatal(err)
	}
	if id.Name != "habitat-app" || !id.Permissions.Has(PermSubscribe|PermActuate) {
		t.Fatalf("identity = %+v", id)
	}
	if !id.RegisteredAt.Equal(epoch) {
		t.Fatalf("RegisteredAt = %v", id.RegisteredAt)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	r := newRegistry()
	if _, err := r.Register("app", PermSubscribe); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("app", PermSubscribe); !errors.Is(err, ErrNameTaken) {
		t.Fatalf("err = %v, want ErrNameTaken", err)
	}
}

func TestEmptyNameRejected(t *testing.T) {
	r := newRegistry()
	if _, err := r.Register("", PermSubscribe); !errors.Is(err, ErrEmptyName) {
		t.Fatalf("err = %v, want ErrEmptyName", err)
	}
}

func TestForgedTokenRejected(t *testing.T) {
	r := newRegistry()
	tok, err := r.Register("app", PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		tok  Token
	}{
		{"garbage", Token("not-a-token")},
		{"two parts", Token("aaaa.bbbb")},
		{"flipped mac byte", flipLastChar(tok)},
		{"empty", Token("")},
		{"bad base64 body", Token("!!!!." + strings.Split(string(tok), ".")[1] + "." + strings.Split(string(tok), ".")[2])},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := r.Authenticate(tt.tok); !errors.Is(err, ErrBadToken) {
				t.Errorf("err = %v, want ErrBadToken", err)
			}
		})
	}
}

func flipLastChar(tok Token) Token {
	b := []byte(tok)
	if b[len(b)-1] == 'A' {
		b[len(b)-1] = 'B'
	} else {
		b[len(b)-1] = 'A'
	}
	return Token(b)
}

func TestTokenFromDifferentSecretRejected(t *testing.T) {
	r1 := newRegistry()
	r2 := New([]byte("other-secret"), sim.NewVirtualClock(epoch))
	tok, err := r1.Register("app", PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Register("app", PermSubscribe); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Authenticate(tok); !errors.Is(err, ErrBadToken) {
		t.Fatalf("cross-deployment token accepted: %v", err)
	}
}

func TestPermissionEscalationRejected(t *testing.T) {
	r := newRegistry()
	tok, err := r.Register("app", PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	// An attacker re-encodes the body claiming PermTrusted but cannot forge
	// the mac.
	parts := strings.Split(string(tok), ".")
	forged := Token(parts[0] + "." + "HQ" + "." + parts[2]) // body changed, mac stale
	if _, err := r.Authenticate(forged); !errors.Is(err, ErrBadToken) {
		t.Fatalf("escalated token accepted: %v", err)
	}
}

func TestRevoke(t *testing.T) {
	r := newRegistry()
	tok, err := r.Register("app", PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Revoke("app") {
		t.Fatal("Revoke returned false")
	}
	if r.Revoke("app") {
		t.Fatal("second Revoke returned true")
	}
	if _, err := r.Authenticate(tok); !errors.Is(err, ErrRevoked) {
		t.Fatalf("err = %v, want ErrRevoked", err)
	}
}

func TestRequire(t *testing.T) {
	r := newRegistry()
	tok, err := r.Register("app", PermSubscribe|PermHint)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Require(tok, PermSubscribe); err != nil {
		t.Fatalf("Require(subscribe) = %v", err)
	}
	if _, err := r.Require(tok, PermSubscribe|PermHint); err != nil {
		t.Fatalf("Require(both) = %v", err)
	}
	if _, err := r.Require(tok, PermActuate); !errors.Is(err, ErrPermission) {
		t.Fatalf("Require(actuate) = %v, want ErrPermission", err)
	}
	if _, err := r.Require(tok, PermTrusted); !errors.Is(err, ErrPermission) {
		t.Fatalf("Require(trusted) = %v, want ErrPermission", err)
	}
}

func TestLookupAndIdentities(t *testing.T) {
	r := newRegistry()
	names := []string{"zeta", "alpha", "mid"}
	for _, n := range names {
		if _, err := r.Register(n, PermSubscribe); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := r.Lookup("alpha"); !ok {
		t.Fatal("Lookup failed")
	}
	if _, ok := r.Lookup("ghost"); ok {
		t.Fatal("Lookup of unknown name succeeded")
	}
	ids := r.Identities()
	if len(ids) != 3 {
		t.Fatalf("Identities = %d", len(ids))
	}
	if ids[0].Name != "alpha" || ids[1].Name != "mid" || ids[2].Name != "zeta" {
		t.Fatalf("not sorted: %v", ids)
	}
}

func TestPermissionString(t *testing.T) {
	tests := []struct {
		p    Permission
		want string
	}{
		{0, "none"},
		{PermSubscribe, "subscribe"},
		{PermSubscribe | PermActuate, "subscribe|actuate"},
		{PermTrusted, "trusted"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("Permission(%d).String() = %q, want %q", tt.p, got, tt.want)
		}
	}
}

func TestNewPanicsOnEmptySecret(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(nil, sim.NewVirtualClock(epoch))
}

func TestSecretIsCopied(t *testing.T) {
	secret := []byte("mutable")
	r := New(secret, sim.NewVirtualClock(epoch))
	tok, err := r.Register("app", PermSubscribe)
	if err != nil {
		t.Fatal(err)
	}
	secret[0] = 'X' // caller mutates its buffer
	if _, err := r.Authenticate(tok); err != nil {
		t.Fatal("registry aliased the caller's secret buffer")
	}
}

// BenchmarkRegistryAuthenticate measures concurrent token verification —
// every privileged facade call authenticates, so the HMAC must run
// outside the registry mutex or all authentications serialise.
func BenchmarkRegistryAuthenticate(b *testing.B) {
	r := newRegistry()
	tok, err := r.Register("bench-app", PermSubscribe|PermActuate|PermTrusted)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := r.Authenticate(tok); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkRegistryRegister measures registration (mint under load):
// minting happens after the lock is released, so concurrent registrations
// only serialise on the identity-map insert.
func BenchmarkRegistryRegister(b *testing.B) {
	r := newRegistry()
	var n atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			name := "app-" + strconv.FormatInt(n.Add(1), 10)
			if _, err := r.Register(name, PermSubscribe); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
